package repro

import (
	"bytes"
	"testing"
)

func facadeData(t *testing.T) (Dataset, Dataset) {
	t.Helper()
	trainSet, testSet, err := SynthDataset(SynthConfig{
		Classes: 4, Train: 160, Test: 80, Size: 12, Seed: 9, Noise: 0.4,
	})
	if err != nil {
		t.Fatalf("SynthDataset: %v", err)
	}
	return trainSet, testSet
}

func facadeModel(t *testing.T) *Model {
	t.Helper()
	m, err := SmallCNN(ModelConfig{Classes: 4, InputSize: 12, Seed: 3})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	return m
}

func TestNewValidatesConfig(t *testing.T) {
	trainSet, testSet := facadeData(t)
	if _, err := New(Config{Train: trainSet, Test: testSet}); err == nil {
		t.Error("missing model did not error")
	}
	if _, err := New(Config{Model: facadeModel(t), Test: testSet}); err == nil {
		t.Error("missing train set did not error")
	}
	if _, err := New(Config{Model: facadeModel(t), Train: trainSet, Test: testSet, Mode: Mode(99)}); err == nil {
		t.Error("unknown mode did not error")
	}
}

func TestSessionModesRun(t *testing.T) {
	trainSet, testSet := facadeData(t)
	for _, tc := range []struct {
		name string
		mode Mode
		bits int
	}{
		{"apt", ModeAPT, 0},
		{"fixed8", ModeFixed, 8},
		{"fp32", ModeFP32, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sess, err := New(Config{
				Model: facadeModel(t), Train: trainSet, Test: testSet,
				Epochs: 2, BatchSize: 32, Mode: tc.mode, FixedBits: tc.bits, Seed: 4,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			hist, err := sess.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if len(hist.Epochs) != 2 {
				t.Fatalf("history has %d epochs, want 2", len(hist.Epochs))
			}
			if tc.mode == ModeAPT && sess.Controller() == nil {
				t.Error("APT session has no controller")
			}
			if tc.mode != ModeAPT && sess.Controller() != nil {
				t.Error("non-APT session has a controller")
			}
		})
	}
}

func TestSessionAPTSavesResources(t *testing.T) {
	trainSet, testSet := facadeData(t)
	sess, err := New(Config{
		Model: facadeModel(t), Train: trainSet, Test: testSet,
		Epochs: 3, BatchSize: 32, Mode: ModeAPT, Tmin: 6, Seed: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hist, err := sess.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ne := hist.NormalizedEnergy(); ne <= 0 || ne >= 1 {
		t.Errorf("normalized energy = %v, want in (0,1)", ne)
	}
	if ns := hist.NormalizedSize(); ns <= 0 || ns >= 1 {
		t.Errorf("normalized size = %v, want in (0,1)", ns)
	}
}

func TestAugmentFacade(t *testing.T) {
	trainSet, _ := facadeData(t)
	aug, err := Augment(trainSet, 2, 12, 1)
	if err != nil {
		t.Fatalf("Augment: %v", err)
	}
	if aug.Len() != trainSet.Len() {
		t.Error("Augment changed dataset length")
	}
	img, _ := aug.Sample(0)
	if s := img.Shape(); s[1] != 12 || s[2] != 12 {
		t.Errorf("augmented shape %v", s)
	}
}

func TestSaveLoadModelFacade(t *testing.T) {
	trainSet, testSet := facadeData(t)
	m := facadeModel(t)
	sess, err := New(Config{
		Model: m, Train: trainSet, Test: testSet,
		Epochs: 1, BatchSize: 32, Mode: ModeAPT, Tmin: 4, Seed: 4,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := sess.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatalf("SaveModel: %v", err)
	}
	fresh := facadeModel(t)
	if err := LoadModel(&buf, fresh); err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	// The loaded model must carry the trained bitwidths.
	orig, got := m.Params(), fresh.Params()
	for i := range orig {
		if orig[i].Bits() != got[i].Bits() {
			t.Errorf("%s bits %d != %d after load", orig[i].Name, got[i].Bits(), orig[i].Bits())
		}
	}
}

func TestDefaultsFilledIn(t *testing.T) {
	trainSet, testSet := facadeData(t)
	sess, err := New(Config{Model: facadeModel(t), Train: trainSet, Test: testSet, Epochs: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if sess.cfg.BatchSize != 64 || sess.cfg.LR != 0.1 || sess.cfg.Seed != 1 {
		t.Errorf("defaults not applied: %+v", sess.cfg)
	}
	if len(sess.cfg.Milestones) == 0 {
		t.Error("milestones not defaulted")
	}
}
