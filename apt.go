// Package repro is a from-scratch Go reproduction of "Adaptive Precision
// Training for Resource Constrained Devices" (Huang, Luo, Zhou — ICDCS
// 2020, arXiv:2012.12775).
//
// APT trains a DNN whose weights are stored quantized in both the forward
// and the backward pass — no fp32 master copy — and dynamically
// re-allocates per-layer bitwidth during training from the
// quantization-underflow metric Gavg = mean |g/ε| (Eq. 4 of the paper).
// Layers whose Gavg falls below Tmin are starving (their updates underflow
// the grid) and gain a bit; layers above Tmax shed one.
//
// This root package is the stable facade over the implementation
// packages:
//
//   - New/Trainer: assemble and run an APT training session;
//   - Models: the paper's backbones (ResNet-20/110, MobileNetV2) plus
//     baselines' backbones (CifarNet, VGG-small) and a fast SmallCNN;
//   - SynthDataset: the procedural CIFAR stand-in used when the real
//     archives are unavailable;
//   - the re-exported aliases give direct access to the layer framework
//     (nn), quantization math (quant), controller (core), cost model
//     (energy) and experiment harness (experiments).
//
// Quickstart:
//
//	train, test, _ := repro.SynthDataset(repro.SynthConfig{
//		Classes: 10, Train: 1024, Test: 256, Seed: 1,
//	})
//	model, _ := repro.ResNet20(repro.ModelConfig{Classes: 10, InputSize: 32})
//	sess, _ := repro.New(repro.Config{
//		Model: model, Train: train, Test: test,
//		Epochs: 30, BatchSize: 64, Tmin: 6,
//	})
//	hist, _ := sess.Run()
//	fmt.Println(hist.FinalAcc(), hist.NormalizedEnergy(), hist.NormalizedSize())
package repro

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// Re-exported configuration and result types.
type (
	// ModelConfig selects a backbone instantiation.
	ModelConfig = models.Config
	// Model couples a network with its input geometry.
	Model = models.Model
	// SynthConfig configures the procedural dataset generator.
	SynthConfig = data.SynthConfig
	// Dataset is the supervised image-classification interface.
	Dataset = data.Dataset
	// History is the per-epoch record of a training run.
	History = train.History
	// APTConfig is the controller configuration (thresholds, interval...).
	APTConfig = core.Config
	// CalibrationPoint feeds the AutoTmin selector.
	CalibrationPoint = core.CalibrationPoint
)

// Backbone constructors re-exported from internal/models.
var (
	ResNet20    = models.ResNet20
	ResNet110   = models.ResNet110
	MobileNetV2 = models.MobileNetV2
	CifarNet    = models.CifarNet
	VGGSmall    = models.VGGSmall
	SmallCNN    = models.SmallCNN
	// SmallCNNQuantAct additionally quantizes activations with learnable,
	// APT-managed clipping points (§III-B's extension).
	SmallCNNQuantAct = models.SmallCNNQuantAct
)

// AutoTmin picks the knee-point Tmin from a calibration sweep (the
// paper's future-work extension).
var AutoTmin = core.AutoTmin

// SynthDataset generates the SynthCIFAR train/test splits.
func SynthDataset(cfg SynthConfig) (trainSet, testSet Dataset, err error) {
	return data.NewSynth(cfg)
}

// Augment wraps a training dataset with the paper's augmentation: pad by
// pad pixels, randomly crop back to size, and randomly flip horizontally.
func Augment(ds Dataset, pad, size int, seed uint64) (Dataset, error) {
	return data.NewAugmented(ds, pad, size, tensor.NewRNG(seed))
}

// SaveModel writes a model checkpoint to w with quantized parameters
// stored bit-packed (a 6-bit layer costs 6 bits per weight on the wire,
// the on-device storage story of the paper). LoadModel restores it into a
// same-architecture model; LoadModelAuto rebuilds the architecture the
// checkpoint header names (arch/width arguments override it).
var (
	SaveModel     = models.Save
	LoadModel     = models.Load
	LoadModelAuto = models.LoadAuto
)

// Config assembles a training session on the facade level.
type Config struct {
	Model *Model
	Train Dataset
	Test  Dataset

	Epochs    int
	BatchSize int

	// LR is the base learning rate (default 0.1); Milestones divide it by
	// 10 at the given epochs (paper: 100 and 150 of 200).
	LR         float64
	Milestones []int

	// Mode selects the precision regime. The zero value ModeAPT trains
	// with the adaptive controller; ModeFixed uses FixedBits throughout;
	// ModeFP32 disables quantization.
	Mode Mode
	// FixedBits is the bitwidth for ModeFixed (default 8).
	FixedBits int

	// Tmin/Tmax are the controller thresholds for ModeAPT (defaults 6.0
	// and +Inf, the paper's headline setting); InitBits is the starting
	// bitwidth (default 6).
	Tmin     float64
	Tmax     float64
	InitBits int

	// Seed drives every random choice (default 1).
	Seed uint64
	// Log receives one line per epoch when non-nil.
	Log io.Writer
}

// Mode is the precision regime of a session.
type Mode int

// Session precision modes.
const (
	// ModeAPT trains with the adaptive precision controller.
	ModeAPT Mode = iota
	// ModeFixed trains with a static bitwidth in FPROP and BPROP.
	ModeFixed
	// ModeFP32 trains in full precision.
	ModeFP32
)

// Session is a configured training run.
type Session struct {
	cfg  Config
	ctrl *core.Controller
}

// New validates the configuration and prepares a session, initializing
// the model's parameters for the selected mode.
func New(cfg Config) (*Session, error) {
	if cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("repro: Model, Train and Test are required")
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.LR == 0 {
		cfg.LR = 0.1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if len(cfg.Milestones) == 0 {
		cfg.Milestones = []int{cfg.Epochs * 2 / 3, cfg.Epochs * 13 / 15}
	}
	s := &Session{cfg: cfg}
	switch cfg.Mode {
	case ModeAPT:
		c := core.DefaultConfig()
		if cfg.Tmin != 0 {
			c.Tmin = cfg.Tmin
		}
		if cfg.Tmax != 0 {
			c.Tmax = cfg.Tmax
		} else {
			c.Tmax = math.Inf(1)
		}
		if cfg.InitBits != 0 {
			c.InitBits = cfg.InitBits
		}
		batches := (cfg.Train.Len() + cfg.BatchSize - 1) / cfg.BatchSize
		if c.Interval = batches / 4; c.Interval < 1 {
			c.Interval = 1
		}
		ctrl, err := core.NewController(c, cfg.Model.Params())
		if err != nil {
			return nil, fmt.Errorf("repro: %w", err)
		}
		s.ctrl = ctrl
	case ModeFixed:
		bits := cfg.FixedBits
		if bits == 0 {
			bits = 8
		}
		for _, p := range cfg.Model.Params() {
			if err := p.SetBits(bits); err != nil {
				return nil, fmt.Errorf("repro: %w", err)
			}
		}
	case ModeFP32:
		for _, p := range cfg.Model.Params() {
			p.Q = nil
			p.Master = nil
		}
	default:
		return nil, fmt.Errorf("repro: unknown mode %d", cfg.Mode)
	}
	return s, nil
}

// Controller exposes the APT controller of a ModeAPT session (nil
// otherwise) for trace inspection.
func (s *Session) Controller() *core.Controller { return s.ctrl }

// Run trains to completion and returns the history.
func (s *Session) Run() (*History, error) {
	return train.Run(train.Config{
		Model: s.cfg.Model, Train: s.cfg.Train, Test: s.cfg.Test,
		BatchSize: s.cfg.BatchSize, Epochs: s.cfg.Epochs,
		Schedule: optim.StepSchedule{
			Base: s.cfg.LR, Milestones: s.cfg.Milestones, Factor: 0.1,
		},
		Momentum: 0.9, WeightDecay: 1e-4,
		APT:  s.ctrl,
		Seed: s.cfg.Seed, Log: s.cfg.Log,
	})
}
