package baselines

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func testModel(t *testing.T) *models.Model {
	t.Helper()
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 3})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	return m
}

func TestFP32ClearsQuantState(t *testing.T) {
	m := testModel(t)
	for _, p := range m.Params() {
		if err := p.SetBits(4); err != nil {
			t.Fatalf("SetBits: %v", err)
		}
		p.EnableMaster()
	}
	s, err := FP32(m.Params())
	if err != nil {
		t.Fatalf("FP32: %v", err)
	}
	if s.BPROPPrecision != "FP32" {
		t.Errorf("BPROP precision %q", s.BPROPPrecision)
	}
	for _, p := range m.Params() {
		if p.Q != nil || p.Master != nil {
			t.Errorf("%s retained quantization state", p.Name)
		}
	}
}

func TestFixedBitsSetsEveryParam(t *testing.T) {
	m := testModel(t)
	s, err := FixedBits(m.Params(), 12)
	if err != nil {
		t.Fatalf("FixedBits: %v", err)
	}
	if s.Name != "12-bit fixed" || s.BPROPPrecision != "12-bit" {
		t.Errorf("setup metadata: %+v", s)
	}
	for _, p := range m.Params() {
		if p.Bits() != 12 {
			t.Errorf("%s bits = %d, want 12", p.Name, p.Bits())
		}
		if p.Master != nil {
			t.Errorf("%s has a master copy; fixed mode must not", p.Name)
		}
	}
	if _, err := FixedBits(m.Params(), 1); err == nil {
		t.Error("bitwidth 1 did not error")
	}
}

func TestBNNBinarizesWeights(t *testing.T) {
	m := testModel(t)
	s, err := BNN(m.Params())
	if err != nil {
		t.Fatalf("BNN: %v", err)
	}
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			continue // biases/BN stay fp32
		}
		if p.Master == nil {
			t.Fatalf("%s has no master copy", p.Name)
		}
		alpha := float32(p.Master.AbsMean())
		for _, v := range p.Value.Data() {
			if v != alpha && v != -alpha {
				t.Fatalf("%s value %v not in {±%v}", p.Name, v, alpha)
			}
		}
	}
	if s.PostStepHook == nil {
		t.Error("BNN setup lacks a post-step hook")
	}
}

func TestTWNTernarizesWeights(t *testing.T) {
	m := testModel(t)
	if _, err := TWN(m.Params()); err != nil {
		t.Fatalf("TWN: %v", err)
	}
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			continue
		}
		levels := make(map[float32]bool)
		for _, v := range p.Value.Data() {
			levels[v] = true
		}
		if len(levels) > 3 {
			t.Fatalf("%s has %d levels, want <= 3 (ternary)", p.Name, len(levels))
		}
		if !levels[0] {
			t.Errorf("%s ternary code has no zero level", p.Name)
		}
	}
}

func TestTTQUsesAsymmetricScales(t *testing.T) {
	m := testModel(t)
	if _, err := TTQ(m.Params()); err != nil {
		t.Fatalf("TTQ: %v", err)
	}
	asymFound := false
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			continue
		}
		var pos, neg float32
		for _, v := range p.Value.Data() {
			if v > 0 {
				pos = v
			}
			if v < 0 {
				neg = v
			}
		}
		if pos != 0 && neg != 0 && pos != -neg {
			asymFound = true
		}
	}
	if !asymFound {
		t.Error("no layer shows asymmetric positive/negative scales")
	}
}

func TestDoReFaQuantizesGradients(t *testing.T) {
	m := testModel(t)
	s, err := DoReFa(m.Params(), 4)
	if err != nil {
		t.Fatalf("DoReFa: %v", err)
	}
	rng := tensor.NewRNG(5)
	for _, p := range m.Params() {
		p.Grad.FillNormal(rng, 0, 1)
	}
	if err := s.GradHook(m.Params()); err != nil {
		t.Fatalf("GradHook: %v", err)
	}
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			continue
		}
		levels := make(map[float32]bool)
		for _, v := range p.Grad.Data() {
			levels[v] = true
		}
		if len(levels) > 16 {
			t.Fatalf("%s gradient has %d levels after 4-bit quantization", p.Name, len(levels))
		}
	}
}

func TestTernGradTernarizesGradients(t *testing.T) {
	m := testModel(t)
	s, err := TernGrad(m.Params(), tensor.NewRNG(7))
	if err != nil {
		t.Fatalf("TernGrad: %v", err)
	}
	rng := tensor.NewRNG(8)
	for _, p := range m.Params() {
		p.Grad.FillNormal(rng, 0, 1)
	}
	if err := s.GradHook(m.Params()); err != nil {
		t.Fatalf("GradHook: %v", err)
	}
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			continue
		}
		levels := make(map[float32]bool)
		for _, v := range p.Grad.Data() {
			levels[v] = true
		}
		if len(levels) > 3 {
			t.Fatalf("%s gradient has %d levels, want <= 3", p.Name, len(levels))
		}
		// Weights remain fp32.
		if p.Q != nil {
			t.Errorf("%s weights are quantized; TernGrad keeps fp32 weights", p.Name)
		}
	}
}

func TestTernGradPreservesExpectedMagnitude(t *testing.T) {
	// Stochastic ternarization is unbiased: E[output] = input. Check the
	// aggregate magnitude is preserved within sampling error.
	g := tensor.New(20000)
	g.FillNormal(tensor.NewRNG(9), 0, 0.1)
	n := float64(g.Len())
	min, max := g.MinMax()
	s := math.Max(math.Abs(float64(min)), math.Abs(float64(max)))
	// Each element's ternarized variance is ~ s·|g|, so the sum's standard
	// deviation is sqrt(n·s·mean|g|); allow 5 sigma.
	tol := 5 * math.Sqrt(n*s*g.AbsMean())
	sumBefore := g.Sum()
	ternarizeGrad(g, tensor.NewRNG(10))
	sumAfter := g.Sum()
	if math.Abs(sumAfter-sumBefore) > tol {
		t.Errorf("ternarized gradient sum %v deviates from original %v by more than %v", sumAfter, sumBefore, tol)
	}
}

func TestWAGEIsEightBitNoMaster(t *testing.T) {
	m := testModel(t)
	s, err := WAGE(m.Params())
	if err != nil {
		t.Fatalf("WAGE: %v", err)
	}
	if s.BPROPPrecision != "8-bit" {
		t.Errorf("WAGE BPROP precision %q", s.BPROPPrecision)
	}
	for _, p := range m.Params() {
		if p.Bits() != 8 || p.Master != nil {
			t.Errorf("%s: bits=%d master=%v, want 8-bit no master", p.Name, p.Bits(), p.Master != nil)
		}
	}
}

func TestE2TrainDropsBatches(t *testing.T) {
	m := testModel(t)
	s, err := E2Train(m.Params(), 0.5, tensor.NewRNG(11))
	if err != nil {
		t.Fatalf("E2Train: %v", err)
	}
	dropped, kept := 0, 0
	for trial := 0; trial < 200; trial++ {
		for _, p := range m.Params() {
			p.Grad.Fill(1)
		}
		if err := s.GradHook(m.Params()); err != nil {
			t.Fatalf("GradHook: %v", err)
		}
		if m.Params()[0].Grad.Data()[0] == 0 {
			dropped++
		} else {
			kept++
		}
	}
	if dropped < 60 || dropped > 140 {
		t.Errorf("dropped %d/200 batches at p=0.5, want ~100", dropped)
	}
	if kept == 0 {
		t.Error("every batch dropped")
	}
	if _, err := E2Train(m.Params(), 1.0, tensor.NewRNG(1)); err == nil {
		t.Error("drop probability 1.0 did not error")
	}
}

func TestMasterQuantLeavesBiasesFP32(t *testing.T) {
	m := testModel(t)
	if _, err := BNN(m.Params()); err != nil {
		t.Fatalf("BNN: %v", err)
	}
	for _, p := range m.Params() {
		if p.Value.Rank() <= 1 {
			if p.Q != nil || p.Master != nil {
				t.Errorf("rank-1 param %s was quantized", p.Name)
			}
		}
	}
}

func TestMemoryAccountingMatchesTable1Claims(t *testing.T) {
	// Master-copy methods must show >= fp32 memory; WAGE ~ 25%.
	m1 := testModel(t)
	if _, err := TWN(m1.Params()); err != nil {
		t.Fatalf("TWN: %v", err)
	}
	var twn, fp32 int64
	for _, p := range m1.Params() {
		twn += p.SizeBits()
		fp32 += int64(p.Value.Len()) * int64(quant.MaxBits)
	}
	if twn < fp32 {
		t.Errorf("TWN training memory %d < fp32 %d; master copies must not save memory", twn, fp32)
	}

	m2 := testModel(t)
	if _, err := WAGE(m2.Params()); err != nil {
		t.Fatalf("WAGE: %v", err)
	}
	var wage int64
	for _, p := range m2.Params() {
		wage += p.SizeBits()
	}
	ratio := float64(wage) / float64(fp32)
	if math.Abs(ratio-0.25) > 1e-9 {
		t.Errorf("WAGE memory ratio = %v, want 0.25", ratio)
	}
}

var _ = nn.Param{} // document the package under test's dependency
