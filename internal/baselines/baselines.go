// Package baselines implements the training-method comparators of the
// paper's Table I and Figures 2/4 on top of the shared framework:
//
//   - fixed-bitwidth quantized SGD (the 8/12/14/16-bit bars of Figure 4),
//     quantized in both FPROP and BPROP exactly like APT but static;
//   - plain fp32 SGD;
//   - methods that keep an fp32 master copy of the weights and quantize
//     only the view used in FPROP: BNN (binary), TWN (ternary), TTQ
//     (trained ternary, asymmetric scales), DoReFa (k-bit weights and
//     k-bit gradients), TernGrad (fp32 weights, ternary gradients),
//     WAGE-style (8-bit weights, no master copy), and an E2-Train-style
//     stochastic mini-batch-skipping fp32 run.
//
// Each setup function mutates the model's parameters (bitwidth, master
// copy) and returns the training hooks that realize the method's update
// rule, so internal/train runs every method through one loop.
package baselines

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Setup captures everything a method needs beyond the common loop.
type Setup struct {
	// Name is the method's display name in tables.
	Name string
	// BPROPPrecision is the representation used for weight updates, as
	// reported in Table I's "Model Precision in BPROP" column.
	BPROPPrecision string
	// GradHook and PostStepHook plug into train.Config's hooks (the
	// unnamed signature keeps this package independent of the training
	// loop).
	GradHook     func(params []*nn.Param) error
	PostStepHook func(params []*nn.Param) error
}

// FP32 leaves every parameter at full precision.
func FP32(params []*nn.Param) (Setup, error) {
	for _, p := range params {
		p.Q = nil
		p.Master = nil
	}
	return Setup{Name: "FP32 SGD", BPROPPrecision: "FP32"}, nil
}

// FixedBits quantizes every parameter to k bits with no master copy: the
// same k-bit tensor serves FPROP and BPROP, updated with the truncated
// rule — APT's setting minus the adaptation.
func FixedBits(params []*nn.Param, k int) (Setup, error) {
	for _, p := range params {
		p.Master = nil
		if err := p.SetBits(k); err != nil {
			return Setup{}, fmt.Errorf("baselines: fixed %d-bit: %w", k, err)
		}
	}
	return Setup{
		Name:           fmt.Sprintf("%d-bit fixed", k),
		BPROPPrecision: fmt.Sprintf("%d-bit", k),
	}, nil
}

// masterQuant puts every weight parameter (rank > 1; biases and BN stay
// fp32, as in the original methods) into fp32-master mode at k bits.
func masterQuant(params []*nn.Param, k int) error {
	for _, p := range params {
		if p.Value.Rank() <= 1 {
			p.Q = nil
			p.Master = nil
			continue
		}
		p.EnableMaster()
		if err := p.SetBits(k); err != nil {
			return err
		}
	}
	return nil
}

// weightParams filters the convolutional/linear weights.
func weightParams(params []*nn.Param) []*nn.Param {
	var ws []*nn.Param
	for _, p := range params {
		if p.Value.Rank() > 1 {
			ws = append(ws, p)
		}
	}
	return ws
}

// BNN binarizes weights to ±α (α = mean |master|) in FPROP while updating
// an fp32 master in BPROP (Hubara et al.). Storage is counted at the
// 2-bit floor of Algorithm 1's range.
func BNN(params []*nn.Param) (Setup, error) {
	if err := masterQuant(params, quant.MinBits); err != nil {
		return Setup{}, fmt.Errorf("baselines: BNN: %w", err)
	}
	ws := weightParams(params)
	post := func([]*nn.Param) error {
		for _, p := range ws {
			alpha := float32(p.Master.AbsMean())
			md, vd := p.Master.Data(), p.Value.Data()
			for i, m := range md {
				if m >= 0 {
					vd[i] = alpha
				} else {
					vd[i] = -alpha
				}
			}
		}
		return nil
	}
	if err := post(nil); err != nil {
		return Setup{}, err
	}
	return Setup{Name: "BNN", BPROPPrecision: "FP32", PostStepHook: post}, nil
}

// TWN quantizes weights to {−α, 0, +α} with the Li et al. threshold
// Δ = 0.7·mean|w| and α = mean |w| over the live region, master in fp32.
func TWN(params []*nn.Param) (Setup, error) {
	if err := masterQuant(params, quant.MinBits); err != nil {
		return Setup{}, fmt.Errorf("baselines: TWN: %w", err)
	}
	ws := weightParams(params)
	post := func([]*nn.Param) error {
		for _, p := range ws {
			ternarize(p, 1, 1)
		}
		return nil
	}
	if err := post(nil); err != nil {
		return Setup{}, err
	}
	return Setup{Name: "TWN", BPROPPrecision: "FP32", PostStepHook: post}, nil
}

// TTQ is trained ternary quantization (Zhu et al.): like TWN but with
// independent positive and negative scales estimated from each side's
// live magnitudes.
func TTQ(params []*nn.Param) (Setup, error) {
	if err := masterQuant(params, quant.MinBits); err != nil {
		return Setup{}, fmt.Errorf("baselines: TTQ: %w", err)
	}
	ws := weightParams(params)
	post := func([]*nn.Param) error {
		for _, p := range ws {
			ternarizeAsym(p)
		}
		return nil
	}
	if err := post(nil); err != nil {
		return Setup{}, err
	}
	return Setup{Name: "TTQ", BPROPPrecision: "FP32", PostStepHook: post}, nil
}

// ternarize maps Value = scalePos·𝟙[master > Δ] − scaleNeg·𝟙[master < −Δ]
// with shared scale (scalePos = scaleNeg when symmetric).
func ternarize(p *nn.Param, symPos, symNeg float64) {
	md, vd := p.Master.Data(), p.Value.Data()
	delta := 0.7 * float32(p.Master.AbsMean())
	var sum float64
	var n int
	for _, m := range md {
		if m > delta || m < -delta {
			sum += math.Abs(float64(m))
			n++
		}
	}
	alpha := float32(0)
	if n > 0 {
		alpha = float32(sum / float64(n))
	}
	for i, m := range md {
		switch {
		case m > delta:
			vd[i] = alpha * float32(symPos)
		case m < -delta:
			vd[i] = -alpha * float32(symNeg)
		default:
			vd[i] = 0
		}
	}
}

func ternarizeAsym(p *nn.Param) {
	md, vd := p.Master.Data(), p.Value.Data()
	delta := 0.7 * float32(p.Master.AbsMean())
	var sumP, sumN float64
	var nP, nN int
	for _, m := range md {
		if m > delta {
			sumP += float64(m)
			nP++
		} else if m < -delta {
			sumN -= float64(m)
			nN++
		}
	}
	aP, aN := float32(0), float32(0)
	if nP > 0 {
		aP = float32(sumP / float64(nP))
	}
	if nN > 0 {
		aN = float32(sumN / float64(nN))
	}
	for i, m := range md {
		switch {
		case m > delta:
			vd[i] = aP
		case m < -delta:
			vd[i] = -aN
		default:
			vd[i] = 0
		}
	}
}

// DoReFa quantizes weights to k bits in FPROP (tanh-normalized affine
// code, per Zhou et al.) and gradients to k bits with stochastic-free
// midtread rounding, while keeping fp32 masters for the update.
func DoReFa(params []*nn.Param, k int) (Setup, error) {
	if err := masterQuant(params, k); err != nil {
		return Setup{}, fmt.Errorf("baselines: DoReFa: %w", err)
	}
	ws := weightParams(params)
	grad := func([]*nn.Param) error {
		for _, p := range ws {
			quantizeGradAffine(p.Grad, k)
		}
		return nil
	}
	return Setup{
		Name:           fmt.Sprintf("DoReFa-%d", k),
		BPROPPrecision: "FP32",
		GradHook:       grad,
	}, nil
}

// TernGrad keeps weights in fp32 and ternarizes gradients to
// {−s, 0, +s}·max|g| with probabilistic selection replaced by the
// deterministic expectation (Wen et al. use stochastic rounding; the
// expectation preserves the method's compression semantics without
// injecting a second RNG into the comparison).
func TernGrad(params []*nn.Param, rng *tensor.RNG) (Setup, error) {
	for _, p := range params {
		p.Q = nil
		p.Master = nil
	}
	ws := weightParams(params)
	grad := func([]*nn.Param) error {
		for _, p := range ws {
			ternarizeGrad(p.Grad, rng)
		}
		return nil
	}
	return Setup{Name: "TernGrad", BPROPPrecision: "FP32", GradHook: grad}, nil
}

// ternarizeGrad maps each gradient element to {−s, 0, +s} with
// s = max|g| and stochastic selection P(±s) = |g|/s, matching TernGrad's
// unbiased ternarization.
func ternarizeGrad(g *tensor.Tensor, rng *tensor.RNG) {
	min, max := g.MinMax()
	s := float32(math.Max(math.Abs(float64(min)), math.Abs(float64(max))))
	if s == 0 {
		return
	}
	d := g.Data()
	for i, v := range d {
		p := float64(v) / float64(s)
		mag := math.Abs(p)
		if rng.Float64() < mag {
			if p >= 0 {
				d[i] = s
			} else {
				d[i] = -s
			}
		} else {
			d[i] = 0
		}
	}
}

// quantizeGradAffine snaps a gradient tensor onto a k-bit affine grid over
// its live range.
func quantizeGradAffine(g *tensor.Tensor, k int) {
	min, max := g.MinMax()
	eps := quant.Epsilon(min, max, k)
	if eps == 0 {
		return
	}
	d := g.Data()
	for i, v := range d {
		q := float32(math.Round(float64(v-min) / float64(eps)))
		d[i] = min + q*eps
	}
}

// WAGE trains with 8-bit weights and no fp32 master, mirroring Wu et
// al.'s integer-only pipeline within our affine scheme. It is the one
// prior method in Table I that, like APT, saves training memory.
func WAGE(params []*nn.Param) (Setup, error) {
	s, err := FixedBits(params, 8)
	if err != nil {
		return Setup{}, err
	}
	s.Name = "WAGE-style"
	s.BPROPPrecision = "8-bit"
	return s, nil
}

// E2Train keeps fp32 precision but stochastically skips a fraction of
// mini-batch updates (Wang et al.'s stochastic mini-batch dropping),
// modelling its energy saving as compute skipped rather than precision
// reduced.
func E2Train(params []*nn.Param, dropProb float64, rng *tensor.RNG) (Setup, error) {
	if dropProb < 0 || dropProb >= 1 {
		return Setup{}, fmt.Errorf("baselines: E2Train drop probability %g outside [0, 1)", dropProb)
	}
	for _, p := range params {
		p.Q = nil
		p.Master = nil
	}
	grad := func(ps []*nn.Param) error {
		if rng.Float64() < dropProb {
			for _, p := range ps {
				p.Grad.Zero()
			}
		}
		return nil
	}
	return Setup{Name: "E2-Train-style", BPROPPrecision: "FP32", GradHook: grad}, nil
}
