// Package dist trains data-parallel through a parameter server with
// compressed links — the deployment setting TernGrad (one of Table I's
// comparison methods) was designed for, and the one APT's own precision
// state makes cheaper on the wire. Workers each own a full model replica,
// compute gradients on disjoint mini-batch shards, push them through a
// GradCodec (fp32, k-bit affine, or ternary), and the server averages the
// decoded gradients, applies the SGD step, and broadcasts weights back.
//
// Two engines share one server core (so they execute the same
// floating-point operations in the same order):
//
//   - the sequential reference (Config.Concurrent = false) runs the
//     workers one after another on a single shared replica — weights are
//     identical across replicas between rounds, so the computed gradients
//     match a true multi-process run exactly;
//   - the concurrent engine (Config.Concurrent = true) runs one goroutine
//     per worker, each owning a private replica kept bit-identical to the
//     server through the nn.SyncParams broadcast path. At Workers = 1 its
//     trajectory is bit-identical to the sequential reference; at any
//     worker count it is deterministic for a fixed seed.
//
// When the server runs an APT controller (Config.APT), the downlink can be
// bitwidth-aware (Config.QuantBroadcast): each layer's weights ship
// bit-packed at the layer's current APT bitwidth instead of fp32, so the
// broadcast traffic shrinks as APT keeps layers at low precision — the
// scenario the paper motivates for resource-constrained deployments.
//
// The concurrent engine additionally survives worker failure: with
// Config.HeartbeatTimeout set, workers that stall past the timeout are
// expelled from the gradient barrier (the round's average re-weights over
// the live contributors), optionally respawned from the server's replica
// state, and late gradients fold in under a bounded-staleness policy or
// are dropped and counted (Config.MinShards, Config.MaxStaleness,
// Config.MaxRespawns). Runs checkpoint their complete state periodically
// (Config.CheckpointPath) and resume from it (Config.Resume) — in
// strict-barrier mode bit-identically — and publish crash-consistent
// serving checkpoints (Config.PublishPath) a serving process can watch.
package dist

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/train"
)

// GradCodec compresses one worker→server gradient push. Encode replaces
// g's contents with the values the server decodes (simulating the lossy
// wire format) and returns the number of bytes the push costs. Codecs run
// in the server's ingest path, in worker order, so stateful codecs (the
// ternary sampler) stay deterministic under the concurrent engine.
type GradCodec interface {
	Name() string
	Encode(g *tensor.Tensor) int64
}

// FP32Codec transmits gradients uncompressed.
type FP32Codec struct{}

// Name implements GradCodec.
func (FP32Codec) Name() string { return "fp32" }

// Encode implements GradCodec: identity, 4 bytes per element.
func (FP32Codec) Encode(g *tensor.Tensor) int64 { return int64(g.Len()) * 4 }

// KBitCodec quantizes each gradient tensor onto a k-bit affine grid over
// its live range (DoReFa-style gradient quantization). Re-encoding a
// tensor that is already snapped onto its grid is lossless.
type KBitCodec struct {
	Bits int
}

// Name implements GradCodec.
func (c KBitCodec) Name() string { return fmt.Sprintf("%d-bit", c.Bits) }

// Encode implements GradCodec.
func (c KBitCodec) Encode(g *tensor.Tensor) int64 {
	st := quant.State{Bits: c.Bits}
	st.Refresh(g)
	st.SnapInPlace(g)
	// Payload: packed k-bit codes plus the fp32 range pair.
	return (int64(g.Len())*int64(c.Bits)+7)/8 + 8
}

// TernaryCodec implements TernGrad's stochastic ternarization: each
// element becomes sign(g)·s·b with s = max|g| and b ~ Bernoulli(|g|/s),
// which is an unbiased estimator of g on a three-level code.
type TernaryCodec struct {
	rng *tensor.RNG
}

// NewTernaryCodec seeds the codec's Bernoulli sampling.
func NewTernaryCodec(seed uint64) *TernaryCodec {
	return &TernaryCodec{rng: tensor.NewRNG(seed)}
}

// Name implements GradCodec.
func (*TernaryCodec) Name() string { return "ternary" }

// Encode implements GradCodec.
func (t *TernaryCodec) Encode(g *tensor.Tensor) int64 {
	d := g.Data()
	var s float64
	for _, v := range d {
		if a := math.Abs(float64(v)); a > s {
			s = a
		}
	}
	if s > 0 {
		for i, v := range d {
			p := math.Abs(float64(v)) / s
			switch {
			case t.rng.Float64() >= p:
				d[i] = 0
			case v > 0:
				d[i] = float32(s)
			default:
				d[i] = -float32(s)
			}
		}
	}
	// Payload: 2 bits per element plus the fp32 scale.
	return (int64(g.Len())*2+7)/8 + 4
}

// statefulCodec is implemented by codecs whose encoding draws randomness.
// Their RNG cursor must travel with training checkpoints, or a resumed
// run would re-draw the Bernoulli samples differently and diverge from
// the uninterrupted trajectory.
type statefulCodec interface {
	RNGState() uint64
	SetRNGState(uint64)
}

// RNGState exposes the codec's sampling cursor for checkpointing.
func (t *TernaryCodec) RNGState() uint64 { return t.rng.State() }

// SetRNGState restores a sampling cursor captured by RNGState.
func (t *TernaryCodec) SetRNGState(s uint64) { t.rng.SetState(s) }

// Config assembles one data-parallel run.
type Config struct {
	Workers   int
	Build     func() (*models.Model, error)
	Train     data.Dataset
	Test      data.Dataset
	BatchSize int // per-worker shard size
	Epochs    int
	LR        float64
	Momentum  float64
	Codec     GradCodec
	Seed      uint64

	// Concurrent selects the goroutine-per-worker engine; false runs the
	// sequential reference implementation on one shared replica.
	Concurrent bool

	// APT, when non-nil, runs a precision controller on the server: it
	// observes the averaged gradients each round and adjusts per-layer
	// bitwidths at epoch boundaries.
	APT *core.Config

	// QuantBroadcast ships weights bit-packed at each layer's current APT
	// bitwidth instead of fp32 (requires APT). The packed wire format is
	// authoritative: the server snaps its own weights onto the broadcast
	// grid so server and replicas stay bit-identical.
	QuantBroadcast bool

	// --- Elastic membership (concurrent engine only) ---

	// HeartbeatTimeout enables elastic membership: a worker that holds a
	// shard longer than this is declared dead, expelled from the gradient
	// barrier, and (budget permitting) respawned. Zero keeps the strict
	// barrier — the server waits for every dispatched shard, and healthy
	// runs stay bit-identical to the sequential reference.
	HeartbeatTimeout time.Duration
	// MinShards lets the server step with K-of-N gradients: once the
	// heartbeat grace period expires, a round with at least MinShards
	// contributions steps without waiting for stragglers. Zero means all
	// dispatched shards are required (deaths still shrink the barrier).
	MinShards int
	// MaxStaleness bounds how old a straggler's gradient may be and still
	// fold into the current round's average (in rounds). Zero drops every
	// late gradient; the drop is counted in Stats.StaleDropped.
	MaxStaleness int
	// MaxRespawns bounds how many replacement workers the run may spawn.
	// A respawn clones the server's replica state and re-runs the dead
	// worker's shard. Past the budget, a death permanently shrinks the
	// worker pool.
	MaxRespawns int
	// Fault injects scripted worker failures for the chaos tests.
	Fault *FaultPlan

	// --- Checkpoint / resume / publish ---

	// CheckpointPath, when set, enables TrainState snapshots: a complete,
	// resumable image of the run written atomically (temp file + rename,
	// version/CRC trailer). CheckpointEvery is the cadence in server
	// rounds; with cadence 0 a checkpoint is still written at halt and at
	// the end of the run.
	CheckpointPath  string
	CheckpointEvery int
	// PublishPath, when set, periodically publishes a bit-packed serving
	// checkpoint (models.SaveFileAtomic) every PublishEvery rounds, and
	// once more at the end of the run — the file a serving process watches
	// and hot-reloads. Versions increase monotonically across resumes.
	PublishPath  string
	PublishEvery int
	// HaltAfterRounds stops the run cleanly once this many total rounds
	// have stepped, writing a final checkpoint — a deterministic stand-in
	// for a process kill in resume tests and CI.
	HaltAfterRounds int
	// Resume restarts the run from a TrainState snapshot instead of from
	// scratch. The configuration must match the checkpointed run (same
	// architecture, seed, batch size, worker count); in strict-barrier
	// mode the resumed trajectory is bit-identical to the uninterrupted
	// one.
	Resume *models.TrainState
	// CheckpointRNGs are auxiliary RNG streams (data augmentation, for
	// example) whose cursors must travel with checkpoints. Captured and
	// restored in slice order; the codec's own stream, if any, is handled
	// automatically.
	CheckpointRNGs []*tensor.RNG
}

// Stats records the outcome of a run.
type Stats struct {
	// UpBytes is the total worker→server gradient traffic.
	UpBytes int64
	// DownBytes is the total server→worker weight broadcast traffic
	// (fp32, or bit-packed when QuantBroadcast is set).
	DownBytes int64
	// Rounds is the number of parameter-server update rounds.
	Rounds int
	// Accs is the test accuracy after each epoch.
	Accs []float64
	// MeanBits is the final parameter-weighted mean bitwidth of the
	// server model (32 without APT).
	MeanBits float64
	// Final is the final state of the evaluation model (the shared
	// replica for the sequential engine, worker 0's replica for the
	// concurrent one), for checkpointing and equivalence tests.
	Final *nn.NetState

	// --- Elastic membership accounting ---

	// WorkersLost counts workers declared dead after missing a heartbeat.
	WorkersLost int
	// Respawns counts replacement workers spawned for dead ones.
	Respawns int
	// Rejoins counts declared-dead workers that delivered after all and
	// re-entered the membership (possible only when not yet replaced).
	Rejoins int
	// WorkerErrors counts worker step failures (recovered panics)
	// tolerated under elastic membership.
	WorkerErrors int
	// StaleFolded counts late gradients folded into a newer round under
	// the MaxStaleness bound; StaleDropped counts late gradients
	// discarded (too old, or from a replaced worker).
	StaleFolded  int
	StaleDropped int
	// PartialRounds counts rounds that stepped with fewer gradients than
	// were dispatched; SkippedRounds counts rounds abandoned with no
	// usable gradient at all.
	PartialRounds int
	SkippedRounds int

	// --- Checkpoint / publish accounting ---

	// Checkpoints counts TrainState snapshots written this run (not
	// carried across resumes). Publishes is the version of the last
	// published serving checkpoint (monotonic across resumes).
	Checkpoints int
	Publishes   uint64
	// Halted reports the run stopped at HaltAfterRounds rather than
	// completing its epoch budget.
	Halted bool
}

// FinalAcc returns the last epoch's test accuracy (0 for an empty run).
func (s *Stats) FinalAcc() float64 {
	if len(s.Accs) == 0 {
		return 0
	}
	return s.Accs[len(s.Accs)-1]
}

// server owns the canonical model replica, the optimizer, the codec and
// (optionally) the APT precision controller. Both engines drive rounds
// through it, which is what makes the Workers=1 trajectories bit-identical
// across engines: the per-round arithmetic and its order live here once.
type server struct {
	cfg    Config
	m      *models.Model
	params []*nn.Param
	opt    *optim.SGD
	ctrl   *core.Controller
	codec  GradCodec
	sum    []*tensor.Tensor // per-parameter gradient accumulator
	st     *Stats
}

func newServer(cfg Config) (*server, error) {
	m, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("dist: build: %w", err)
	}
	s := &server{
		cfg:    cfg,
		m:      m,
		params: m.Params(),
		opt:    optim.NewSGD(cfg.LR, cfg.Momentum, 0),
		codec:  cfg.Codec,
		st:     &Stats{},
	}
	if cfg.APT != nil {
		ctrl, err := core.NewController(*cfg.APT, s.params)
		if err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		s.ctrl = ctrl
	}
	s.sum = make([]*tensor.Tensor, len(s.params))
	for i, p := range s.params {
		s.sum[i] = tensor.New(p.Value.Shape()...)
	}
	return s, nil
}

// beginRound zeroes the gradient accumulator.
func (s *server) beginRound() {
	for _, t := range s.sum {
		t.Zero()
	}
}

// ingest models one worker→server push: the staged gradients pass through
// the codec (which rewrites them to the decoded wire values and prices the
// uplink) and accumulate into the round sum.
func (s *server) ingest(stage []*tensor.Tensor) error {
	for i := range s.params {
		s.st.UpBytes += s.codec.Encode(stage[i])
		if err := s.sum[i].Add(stage[i]); err != nil {
			return fmt.Errorf("dist: %s: %w", s.params[i].Name, err)
		}
	}
	return nil
}

// finishRound averages the decoded gradients, lets the APT controller
// observe them, applies the SGD step, and charges the downlink for shards
// weight pulls.
func (s *server) finishRound(shards int) error {
	inv := 1 / float32(shards)
	for i, p := range s.params {
		s.sum[i].Scale(inv)
		if err := p.Grad.CopyFrom(s.sum[i]); err != nil {
			return fmt.Errorf("dist: %s: %w", p.Name, err)
		}
	}
	if s.ctrl != nil {
		s.ctrl.ObserveBatch()
	}
	if err := s.opt.Step(s.params); err != nil {
		return fmt.Errorf("dist: step: %w", err)
	}
	per, err := s.broadcastBytes()
	if err != nil {
		return err
	}
	s.st.DownBytes += per * int64(shards)
	s.st.Rounds++
	return nil
}

// broadcastBytes prices one worker's weight pull. fp32 mode ships every
// tensor raw. Quantized mode ships each quantized tensor bit-packed at its
// current bitwidth (payload plus an 8-byte grid header); the pack→unpack
// round trip is applied to the server's own weights too, so the wire
// format is authoritative and server and replicas cannot drift.
func (s *server) broadcastBytes() (int64, error) {
	var bytes int64
	for _, p := range s.params {
		if s.cfg.QuantBroadcast && p.Q != nil && !p.Q.FullPrecision() && p.Q.Eps > 0 {
			packed, err := quant.Pack(p.Value, p.Q)
			if err != nil {
				return 0, fmt.Errorf("dist: broadcast %s: %w", p.Name, err)
			}
			dec, err := packed.Unpack(p.Value.Shape()...)
			if err != nil {
				return 0, fmt.Errorf("dist: broadcast %s: %w", p.Name, err)
			}
			if err := p.Value.CopyFrom(dec); err != nil {
				return 0, fmt.Errorf("dist: broadcast %s: %w", p.Name, err)
			}
			bytes += int64(packed.SizeBytes()) + 8
		} else {
			bytes += int64(p.Value.Len()) * 4
		}
	}
	return bytes, nil
}

// finishEpoch runs the epoch-boundary APT precision adjustment (a
// server-side requantization of the canonical weights).
func (s *server) finishEpoch() error {
	if s.ctrl == nil {
		return nil
	}
	if _, err := s.ctrl.AdjustEpoch(); err != nil {
		return fmt.Errorf("dist: adjust: %w", err)
	}
	return nil
}

func (s *server) finalize(evalModel *models.Model) {
	s.st.MeanBits = meanBits(s.params)
	s.st.Final = nn.CaptureState(evalModel.Layers())
}

// rngStates collects the auxiliary RNG cursors that travel with a
// checkpoint: the caller-registered streams in order, then the codec's
// sampling stream if it has one. restoreRNGs is the exact inverse.
func (s *server) rngStates() []uint64 {
	var out []uint64
	for _, r := range s.cfg.CheckpointRNGs {
		out = append(out, r.State())
	}
	if sc, ok := s.codec.(statefulCodec); ok {
		out = append(out, sc.RNGState())
	}
	return out
}

func (s *server) restoreRNGs(states []uint64) error {
	want := len(s.cfg.CheckpointRNGs)
	sc, stateful := s.codec.(statefulCodec)
	if stateful {
		want++
	}
	if len(states) != want {
		return fmt.Errorf("dist: resume: checkpoint has %d RNG streams, run has %d", len(states), want)
	}
	for i, r := range s.cfg.CheckpointRNGs {
		r.SetState(states[i])
	}
	if stateful {
		sc.SetRNGState(states[len(states)-1])
	}
	return nil
}

// captureTrainState assembles a complete resumable snapshot: the server
// replica, optimizer and controller state, the loader's batch cursor,
// auxiliary RNG cursors, and the run's cumulative accounting. epoch is
// the epoch in progress (epoch+1 at an epoch boundary — the loader has
// already drawn the next epoch's order by then); replicas carries
// per-worker state from the concurrent engine, nil otherwise.
func (s *server) captureTrainState(epoch int, loader *data.Loader, replicas []*nn.NetState) *models.TrainState {
	st := &models.TrainState{
		Arch:      s.m.Name,
		Width:     s.m.Width,
		Seed:      s.cfg.Seed,
		Epoch:     epoch,
		Loader:    loader.Cursor(),
		Net:       nn.CaptureState(s.m.Layers()),
		Replicas:  replicas,
		Opt:       s.opt.CaptureState(s.params),
		RNGs:      s.rngStates(),
		Rounds:    s.st.Rounds,
		UpBytes:   s.st.UpBytes,
		DownBytes: s.st.DownBytes,
		Accs:      append([]float64(nil), s.st.Accs...),
		Publishes: s.st.Publishes,
	}
	if s.ctrl != nil {
		st.Ctrl = s.ctrl.CaptureState()
	}
	return st
}

// checkpoint writes a TrainState snapshot to cfg.CheckpointPath.
func (s *server) checkpoint(epoch int, loader *data.Loader, replicas []*nn.NetState) error {
	st := s.captureTrainState(epoch, loader, replicas)
	if err := models.SaveTrainState(s.cfg.CheckpointPath, st); err != nil {
		return fmt.Errorf("dist: checkpoint: %w", err)
	}
	s.st.Checkpoints++
	return nil
}

// shouldCheckpoint reports whether the periodic cadence lands on the
// current round. (Halt and end-of-run checkpoints bypass the cadence.)
func (s *server) shouldCheckpoint() bool {
	return s.cfg.CheckpointPath != "" && s.cfg.CheckpointEvery > 0 &&
		s.st.Rounds%s.cfg.CheckpointEvery == 0
}

func (s *server) timeToPublish() bool {
	return s.cfg.PublishPath != "" && s.cfg.PublishEvery > 0 &&
		s.st.Rounds%s.cfg.PublishEvery == 0
}

// publish writes m as a bit-packed serving checkpoint to cfg.PublishPath
// with the next monotonic version — atomically, so a serving process
// polling the path never observes a torn file.
func (s *server) publish(m *models.Model) error {
	v := s.st.Publishes + 1
	if err := models.SaveFileAtomic(s.cfg.PublishPath, m, v); err != nil {
		return fmt.Errorf("dist: publish: %w", err)
	}
	s.st.Publishes = v
	return nil
}

// restore imports a TrainState snapshot into a freshly built server and
// its loader, returning the epoch to continue from. Order matters:
// nn.RestoreState must run after the controller was constructed (the
// controller's constructor stamps InitBits onto every parameter; the
// snapshot's quant grids must win), and the controller and optimizer
// restore against the restored parameters.
func (s *server) restore(st *models.TrainState, loader *data.Loader) (int, error) {
	if st.Arch != s.m.Name {
		return 0, fmt.Errorf("dist: resume: checkpoint is for %q, run builds %q", st.Arch, s.m.Name)
	}
	if st.Width != s.m.Width {
		return 0, fmt.Errorf("dist: resume: checkpoint width %g, run width %g", st.Width, s.m.Width)
	}
	if st.Seed != s.cfg.Seed {
		return 0, fmt.Errorf("dist: resume: checkpoint seed %d, run seed %d", st.Seed, s.cfg.Seed)
	}
	if st.Net == nil || st.Opt == nil {
		return 0, fmt.Errorf("dist: resume: incomplete checkpoint")
	}
	if err := nn.RestoreState(s.m.Layers(), st.Net); err != nil {
		return 0, fmt.Errorf("dist: resume: %w", err)
	}
	switch {
	case s.ctrl != nil && st.Ctrl != nil:
		if err := s.ctrl.RestoreState(st.Ctrl); err != nil {
			return 0, fmt.Errorf("dist: resume: %w", err)
		}
	case s.ctrl != nil:
		return 0, fmt.Errorf("dist: resume: run has an APT controller, checkpoint has no controller state")
	case st.Ctrl != nil:
		return 0, fmt.Errorf("dist: resume: checkpoint has APT controller state, run has no controller")
	}
	if err := s.opt.RestoreState(s.params, st.Opt); err != nil {
		return 0, fmt.Errorf("dist: resume: %w", err)
	}
	if err := loader.Seek(st.Loader); err != nil {
		return 0, fmt.Errorf("dist: resume: %w", err)
	}
	if err := s.restoreRNGs(st.RNGs); err != nil {
		return 0, err
	}
	s.st.Rounds = st.Rounds
	s.st.UpBytes = st.UpBytes
	s.st.DownBytes = st.DownBytes
	s.st.Accs = append([]float64(nil), st.Accs...)
	s.st.Publishes = st.Publishes
	return st.Epoch, nil
}

func meanBits(params []*nn.Param) float64 {
	var bits, n float64
	for _, p := range params {
		w := float64(p.Value.Len())
		bits += w * float64(p.Bits())
		n += w
	}
	if n == 0 {
		return 0
	}
	return bits / n
}

func (c *Config) validate() error {
	if c.Workers <= 0 || c.Build == nil || c.Train == nil || c.Test == nil {
		return fmt.Errorf("dist: workers, build and datasets are required")
	}
	if c.BatchSize <= 0 || c.Epochs <= 0 {
		return fmt.Errorf("dist: batch size %d and epochs %d must be positive", c.BatchSize, c.Epochs)
	}
	if c.QuantBroadcast && c.APT == nil {
		return fmt.Errorf("dist: QuantBroadcast requires an APT controller config")
	}
	if !c.Concurrent && (c.HeartbeatTimeout != 0 || c.MinShards != 0 || c.MaxStaleness != 0 || c.MaxRespawns != 0 || c.Fault != nil) {
		return fmt.Errorf("dist: elastic membership and fault injection require the concurrent engine")
	}
	if c.HeartbeatTimeout == 0 && (c.MinShards != 0 || c.MaxStaleness != 0 || c.MaxRespawns != 0) {
		return fmt.Errorf("dist: MinShards, MaxStaleness and MaxRespawns require HeartbeatTimeout > 0")
	}
	if c.MinShards < 0 || c.MinShards > c.Workers {
		return fmt.Errorf("dist: MinShards %d outside [0, %d workers]", c.MinShards, c.Workers)
	}
	if c.MaxStaleness < 0 || c.MaxRespawns < 0 || c.CheckpointEvery < 0 || c.PublishEvery < 0 || c.HaltAfterRounds < 0 {
		return fmt.Errorf("dist: negative cadence or budget")
	}
	if c.CheckpointEvery > 0 && c.CheckpointPath == "" {
		return fmt.Errorf("dist: CheckpointEvery requires CheckpointPath")
	}
	if c.PublishEvery > 0 && c.PublishPath == "" {
		return fmt.Errorf("dist: PublishEvery requires PublishPath")
	}
	if c.Codec == nil {
		c.Codec = FP32Codec{}
	}
	return nil
}

// Run executes the data-parallel training loop with the engine selected by
// cfg.Concurrent.
func Run(cfg Config) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Concurrent {
		return runConcurrent(cfg)
	}
	return runSequential(cfg)
}

// runSequential is the reference implementation: the workers run one after
// another against a single shared model replica. Weights are identical
// across replicas between rounds, so the computed gradients match a true
// multi-process run exactly; batch-norm running statistics accumulate over
// every shard (the one observable difference from the concurrent engine at
// Workers > 1, where they are worker-local).
func runSequential(cfg Config) (*Stats, error) {
	srv, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xD157)
	loader, err := data.NewLoader(cfg.Train, cfg.BatchSize, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	startEpoch := 0
	if cfg.Resume != nil {
		if startEpoch, err = srv.restore(cfg.Resume, loader); err != nil {
			return nil, err
		}
	}
	loss := nn.SoftmaxCrossEntropy{}

	// Reusable staging tensors for the codec, allocated once.
	stage := make([]*tensor.Tensor, len(srv.params))
	for i, p := range srv.params {
		stage[i] = tensor.New(p.Value.Shape()...)
	}

	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		// The inner loop runs rounds until the loader signals end of epoch.
		// The signal can arrive mid-round (batch count not divisible by the
		// worker count); the partial round still trains, and the exhausted
		// flag ends the epoch afterwards.
		for exhausted := false; !exhausted; {
			// One round: up to cfg.Workers shards, one per worker.
			srv.beginRound()
			shards := 0
			for w := 0; w < cfg.Workers; w++ {
				batch, labels, ok := loader.Next()
				if !ok {
					exhausted = true
					break
				}
				logits, err := srv.m.Net.Forward(batch, true)
				if err != nil {
					return nil, fmt.Errorf("dist: epoch %d forward: %w", epoch, err)
				}
				_, dlogits, err := loss.Forward(logits, labels)
				if err != nil {
					return nil, fmt.Errorf("dist: epoch %d loss: %w", epoch, err)
				}
				if _, err := srv.m.Net.Backward(dlogits); err != nil {
					return nil, fmt.Errorf("dist: epoch %d backward: %w", epoch, err)
				}
				for i, p := range srv.params {
					if err := stage[i].CopyFrom(p.Grad); err != nil {
						return nil, fmt.Errorf("dist: %s: %w", p.Name, err)
					}
					p.ZeroGrad()
				}
				if err := srv.ingest(stage); err != nil {
					return nil, err
				}
				shards++
			}
			if shards == 0 {
				break // epoch exhausted
			}
			if err := srv.finishRound(shards); err != nil {
				return nil, err
			}
			if exhausted {
				// The loader already reshuffled for the next epoch;
				// a checkpoint here could not name this position.
				// The epoch-boundary checkpoint below covers it.
				continue
			}
			if srv.shouldCheckpoint() {
				if err := srv.checkpoint(epoch, loader, nil); err != nil {
					return nil, err
				}
			}
			if srv.timeToPublish() {
				if err := srv.publish(srv.m); err != nil {
					return nil, err
				}
			}
			if cfg.HaltAfterRounds > 0 && srv.st.Rounds >= cfg.HaltAfterRounds {
				if cfg.CheckpointPath != "" {
					if err := srv.checkpoint(epoch, loader, nil); err != nil {
						return nil, err
					}
				}
				srv.st.Halted = true
				srv.finalize(srv.m)
				return srv.st, nil
			}
		}
		if err := srv.finishEpoch(); err != nil {
			return nil, err
		}
		acc, err := train.Evaluate(srv.m, cfg.Test, cfg.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("dist: epoch %d eval: %w", epoch, err)
		}
		srv.st.Accs = append(srv.st.Accs, acc)
		haltNow := cfg.HaltAfterRounds > 0 && srv.st.Rounds >= cfg.HaltAfterRounds
		if cfg.CheckpointPath != "" && (cfg.CheckpointEvery > 0 || haltNow) {
			if err := srv.checkpoint(epoch+1, loader, nil); err != nil {
				return nil, err
			}
		}
		if haltNow {
			srv.st.Halted = true
			srv.finalize(srv.m)
			return srv.st, nil
		}
	}
	if cfg.CheckpointPath != "" {
		if err := srv.checkpoint(cfg.Epochs, loader, nil); err != nil {
			return nil, err
		}
	}
	if cfg.PublishPath != "" {
		if err := srv.publish(srv.m); err != nil {
			return nil, err
		}
	}
	srv.finalize(srv.m)
	return srv.st, nil
}
