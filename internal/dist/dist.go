// Package dist simulates data-parallel training through a parameter
// server with compressed gradient links — the deployment setting TernGrad
// (one of Table I's comparison methods) was designed for. Workers compute
// gradients on disjoint mini-batch shards, push them through a GradCodec
// (fp32, k-bit affine, or ternary), and the server averages the decoded
// gradients, applies the SGD step, and broadcasts fp32 weights back.
//
// The simulation runs the workers sequentially against one shared model
// replica (weights are identical across replicas between rounds, so the
// computed gradients match a true multi-process run exactly); what it tracks
// faithfully is the learning trajectory under lossy gradient codes and
// the wire traffic each link spends.
package dist

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// GradCodec compresses one worker→server gradient push. Encode replaces
// g's contents with the values the server decodes (simulating the lossy
// wire format) and returns the number of bytes the push costs.
type GradCodec interface {
	Name() string
	Encode(g *tensor.Tensor) int64
}

// FP32Codec transmits gradients uncompressed.
type FP32Codec struct{}

// Name implements GradCodec.
func (FP32Codec) Name() string { return "fp32" }

// Encode implements GradCodec: identity, 4 bytes per element.
func (FP32Codec) Encode(g *tensor.Tensor) int64 { return int64(g.Len()) * 4 }

// KBitCodec quantizes each gradient tensor onto a k-bit affine grid over
// its live range (DoReFa-style gradient quantization).
type KBitCodec struct {
	Bits int
}

// Name implements GradCodec.
func (c KBitCodec) Name() string { return fmt.Sprintf("%d-bit", c.Bits) }

// Encode implements GradCodec.
func (c KBitCodec) Encode(g *tensor.Tensor) int64 {
	lo, hi := g.MinMax()
	span := float64(hi) - float64(lo)
	levels := float64(int64(1)<<uint(c.Bits) - 1)
	if span > 0 {
		eps := span / levels
		d := g.Data()
		for i, v := range d {
			q := math.Round((float64(v) - float64(lo)) / eps)
			d[i] = lo + float32(q*eps)
		}
	}
	// Payload: packed k-bit codes plus the fp32 range pair.
	return (int64(g.Len())*int64(c.Bits)+7)/8 + 8
}

// TernaryCodec implements TernGrad's stochastic ternarization: each
// element becomes sign(g)·s·b with s = max|g| and b ~ Bernoulli(|g|/s),
// which is an unbiased estimator of g on a three-level code.
type TernaryCodec struct {
	rng *tensor.RNG
}

// NewTernaryCodec seeds the codec's Bernoulli sampling.
func NewTernaryCodec(seed uint64) *TernaryCodec {
	return &TernaryCodec{rng: tensor.NewRNG(seed)}
}

// Name implements GradCodec.
func (*TernaryCodec) Name() string { return "ternary" }

// Encode implements GradCodec.
func (t *TernaryCodec) Encode(g *tensor.Tensor) int64 {
	d := g.Data()
	var s float64
	for _, v := range d {
		if a := math.Abs(float64(v)); a > s {
			s = a
		}
	}
	if s > 0 {
		for i, v := range d {
			p := math.Abs(float64(v)) / s
			switch {
			case t.rng.Float64() >= p:
				d[i] = 0
			case v > 0:
				d[i] = float32(s)
			default:
				d[i] = -float32(s)
			}
		}
	}
	// Payload: 2 bits per element plus the fp32 scale.
	return (int64(g.Len())*2+7)/8 + 4
}

// Config assembles one simulated data-parallel run.
type Config struct {
	Workers   int
	Build     func() (*models.Model, error)
	Train     data.Dataset
	Test      data.Dataset
	BatchSize int // per-worker shard size
	Epochs    int
	LR        float64
	Momentum  float64
	Codec     GradCodec
	Seed      uint64
}

// Stats records the outcome of a run.
type Stats struct {
	// UpBytes is the total worker→server gradient traffic.
	UpBytes int64
	// DownBytes is the total server→worker fp32 weight broadcast traffic.
	DownBytes int64
	// Rounds is the number of parameter-server update rounds.
	Rounds int
	// Accs is the test accuracy after each epoch.
	Accs []float64
}

// FinalAcc returns the last epoch's test accuracy (0 for an empty run).
func (s *Stats) FinalAcc() float64 {
	if len(s.Accs) == 0 {
		return 0
	}
	return s.Accs[len(s.Accs)-1]
}

// Run executes the simulated parameter-server training loop.
func Run(cfg Config) (*Stats, error) {
	if cfg.Workers <= 0 || cfg.Build == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("dist: workers, build and datasets are required")
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("dist: batch size %d and epochs %d must be positive", cfg.BatchSize, cfg.Epochs)
	}
	if cfg.Codec == nil {
		cfg.Codec = FP32Codec{}
	}
	m, err := cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("dist: build: %w", err)
	}
	params := m.Params()
	rng := tensor.NewRNG(cfg.Seed ^ 0xD157)
	loader, err := data.NewLoader(cfg.Train, cfg.BatchSize, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	opt := optim.NewSGD(cfg.LR, cfg.Momentum, 0)
	loss := nn.SoftmaxCrossEntropy{}

	// Per-parameter accumulator for the averaged worker gradients and a
	// reusable staging tensor for the codec, allocated once.
	sum := make([]*tensor.Tensor, len(params))
	stage := make([]*tensor.Tensor, len(params))
	for i, p := range params {
		sum[i] = tensor.New(p.Value.Shape()...)
		stage[i] = tensor.New(p.Value.Shape()...)
	}
	weightBytes := int64(0)
	for _, p := range params {
		weightBytes += int64(p.Value.Len()) * 4
	}

	st := &Stats{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for {
			// One round: up to cfg.Workers shards, one per worker. Weights
			// are identical across replicas between rounds, so running the
			// workers sequentially on the shared model computes the same
			// gradients a real deployment would.
			shards := 0
			for i := range sum {
				sum[i].Zero()
			}
			for w := 0; w < cfg.Workers; w++ {
				batch, labels, ok := loader.Next()
				if !ok {
					break
				}
				logits, err := m.Net.Forward(batch, true)
				if err != nil {
					return nil, fmt.Errorf("dist: epoch %d forward: %w", epoch, err)
				}
				_, dlogits, err := loss.Forward(logits, labels)
				if err != nil {
					return nil, fmt.Errorf("dist: epoch %d loss: %w", epoch, err)
				}
				if _, err := m.Net.Backward(dlogits); err != nil {
					return nil, fmt.Errorf("dist: epoch %d backward: %w", epoch, err)
				}
				for i, p := range params {
					if err := stage[i].CopyFrom(p.Grad); err != nil {
						return nil, fmt.Errorf("dist: %s: %w", p.Name, err)
					}
					p.ZeroGrad()
					st.UpBytes += cfg.Codec.Encode(stage[i])
					if err := sum[i].Add(stage[i]); err != nil {
						return nil, fmt.Errorf("dist: %s: %w", p.Name, err)
					}
				}
				shards++
			}
			if shards == 0 {
				break // epoch exhausted
			}
			// Server: average the decoded gradients and take the SGD step.
			inv := 1 / float32(shards)
			for i, p := range params {
				sum[i].Scale(inv)
				if err := p.Grad.CopyFrom(sum[i]); err != nil {
					return nil, fmt.Errorf("dist: %s: %w", p.Name, err)
				}
			}
			if err := opt.Step(params); err != nil {
				return nil, fmt.Errorf("dist: step: %w", err)
			}
			// Broadcast: every worker pulls the fresh fp32 weights.
			st.DownBytes += weightBytes * int64(shards)
			st.Rounds++
		}
		acc, err := train.Evaluate(m, cfg.Test, cfg.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("dist: epoch %d eval: %w", epoch, err)
		}
		st.Accs = append(st.Accs, acc)
	}
	return st, nil
}
