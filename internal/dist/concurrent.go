package dist

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The concurrent engine: one goroutine per worker, each owning a full
// model replica, with the main goroutine acting as the parameter server.
//
// Synchronization model (kept deliberately narrow so the whole engine is
// provably race-free and deterministic):
//
//   - A worker touches only its own replica, its own gradient staging
//     tensors, and the batch it was handed. It never reads server state.
//   - The server touches worker-owned state (staged gradients, replica
//     weights during a sync) only while the worker is parked between jobs.
//     The job/done channel pair provides the happens-before edges.
//   - Codec encoding, gradient averaging and weight syncs all run on the
//     server goroutine in fixed worker order, so every floating-point
//     reduction has a scheduling-independent order. Worker forward and
//     backward passes are the only concurrently-executing compute, and
//     each one is deterministic in isolation (tensor.ParallelFor executes
//     every index exactly once regardless of scheduling).
//
// Together with the shared server core in dist.go this makes a Workers=1
// concurrent run bit-identical to the sequential reference, and any
// worker count seed-deterministic.
//
// Batch-norm running statistics are worker-local (as in a real data
// deployment); evaluation uses worker 0's replica, which at Workers=1 has
// seen exactly the shards the sequential reference's shared model saw.

// job is one shard assignment for a worker round.
type job struct {
	batch  *tensor.Tensor
	labels []int
}

// replica is one worker: a private model copy plus gradient staging.
type replica struct {
	id     int
	m      *models.Model
	params []*nn.Param
	stage  []*tensor.Tensor
	jobs   chan job
	done   chan error // buffered: a worker never blocks publishing a result
}

func (r *replica) loop() {
	loss := nn.SoftmaxCrossEntropy{}
	for jb := range r.jobs {
		r.done <- r.step(loss, jb)
	}
}

// step runs one forward/backward on the replica and stages the gradients
// for the server to ingest.
func (r *replica) step(loss nn.SoftmaxCrossEntropy, jb job) error {
	logits, err := r.m.Net.Forward(jb.batch, true)
	if err != nil {
		return fmt.Errorf("dist: worker %d forward: %w", r.id, err)
	}
	_, dlogits, err := loss.Forward(logits, jb.labels)
	if err != nil {
		return fmt.Errorf("dist: worker %d loss: %w", r.id, err)
	}
	if _, err := r.m.Net.Backward(dlogits); err != nil {
		return fmt.Errorf("dist: worker %d backward: %w", r.id, err)
	}
	for i, p := range r.params {
		if err := r.stage[i].CopyFrom(p.Grad); err != nil {
			return fmt.Errorf("dist: worker %d %s: %w", r.id, p.Name, err)
		}
		p.ZeroGrad()
	}
	return nil
}

// runConcurrent executes the goroutine-per-worker engine.
func runConcurrent(cfg Config) (*Stats, error) {
	srv, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	// Build one full replica per worker and align it bit-for-bit with the
	// server: weights, quant grids, masters and batch-norm statistics.
	// This initial ship is uncharged (in a deployment the initial weights
	// travel with the job submission, not over the training-round links).
	snap := nn.CaptureState(srv.m.Layers())
	replicas := make([]*replica, cfg.Workers)
	for w := range replicas {
		m, err := cfg.Build()
		if err != nil {
			return nil, fmt.Errorf("dist: build worker %d: %w", w, err)
		}
		if err := nn.RestoreState(m.Layers(), snap); err != nil {
			return nil, fmt.Errorf("dist: worker %d: %w", w, err)
		}
		r := &replica{
			id:     w,
			m:      m,
			params: m.Params(),
			jobs:   make(chan job),
			done:   make(chan error, 1),
		}
		r.stage = make([]*tensor.Tensor, len(r.params))
		for i, p := range r.params {
			r.stage[i] = tensor.New(p.Value.Shape()...)
		}
		replicas[w] = r
		go r.loop()
	}
	defer func() {
		for _, r := range replicas {
			close(r.jobs)
		}
	}()

	rng := tensor.NewRNG(cfg.Seed ^ 0xD157)
	loader, err := data.NewLoader(cfg.Train, cfg.BatchSize, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// As in the sequential engine, end-of-epoch can arrive mid-round;
		// the partial round still trains and the flag ends the epoch.
		for exhausted := false; !exhausted; {
			srv.beginRound()
			dispatched := 0
			for _, r := range replicas {
				batch, labels, ok := loader.Next()
				if !ok {
					exhausted = true
					break
				}
				r.jobs <- job{batch: batch, labels: labels}
				dispatched++
			}
			if dispatched == 0 {
				break // epoch exhausted
			}
			var firstErr error
			for w := 0; w < dispatched; w++ {
				if err := <-replicas[w].done; err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if firstErr != nil {
				return nil, firstErr
			}
			// All dispatched workers are parked: the server owns every
			// staged gradient until the next dispatch.
			for w := 0; w < dispatched; w++ {
				if err := srv.ingest(replicas[w].stage); err != nil {
					return nil, err
				}
			}
			if err := srv.finishRound(dispatched); err != nil {
				return nil, err
			}
			// Broadcast: every worker pulls the fresh weights (and, in
			// quantized mode, the grids they were packed on). Replicas
			// that sat out a partial round still sync so all replicas
			// enter the next round identical; only the pulls of the
			// workers that trained are charged (in finishRound).
			for _, r := range replicas {
				if err := nn.SyncParams(r.params, srv.params); err != nil {
					return nil, fmt.Errorf("dist: worker %d: %w", r.id, err)
				}
			}
		}
		if err := srv.finishEpoch(); err != nil {
			return nil, err
		}
		if srv.ctrl != nil {
			// The epoch-boundary precision adjustment requantized the
			// server's weights; realign the replicas before evaluation
			// and the next epoch. Uncharged, mirroring the sequential
			// reference where the adjustment mutates the shared replica
			// in place.
			for _, r := range replicas {
				if err := nn.SyncParams(r.params, srv.params); err != nil {
					return nil, fmt.Errorf("dist: worker %d: %w", r.id, err)
				}
			}
		}
		acc, err := train.Evaluate(replicas[0].m, cfg.Test, cfg.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("dist: epoch %d eval: %w", epoch, err)
		}
		srv.st.Accs = append(srv.st.Accs, acc)
	}
	srv.finalize(replicas[0].m)
	return srv.st, nil
}
