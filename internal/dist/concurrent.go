package dist

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The concurrent engine: one goroutine per worker, each owning a full
// model replica, with the main goroutine acting as the parameter server.
//
// Synchronization model (kept deliberately narrow so the whole engine is
// provably race-free and deterministic):
//
//   - A worker touches only its own replica, its own gradient staging
//     tensors, and the batch it was handed. It never reads server state.
//   - The server touches worker-owned state (staged gradients, replica
//     weights during a sync) only while the worker is parked between jobs.
//     The job dispatch and result delivery channels provide the
//     happens-before edges.
//   - Codec encoding, gradient averaging and weight syncs all run on the
//     server goroutine, so every floating-point reduction has a
//     scheduling-independent order under the strict barrier. Worker
//     forward and backward passes are the only concurrently-executing
//     compute, and each one is deterministic in isolation.
//
// Membership has two modes:
//
//   - Strict barrier (HeartbeatTimeout == 0): every round waits for every
//     dispatched shard and ingests them in slot order. Together with the
//     shared server core in dist.go this makes a Workers=1 run
//     bit-identical to the sequential reference, and any worker count
//     seed-deterministic. A worker error aborts the run.
//   - Elastic (HeartbeatTimeout > 0): a worker that holds a shard past
//     the timeout is declared dead and expelled from the barrier; the
//     round's average re-weights over the gradients that did arrive.
//     Dead workers are respawned from the server's replica state while
//     the MaxRespawns budget lasts (the lost shard is re-dispatched to
//     the replacement); past it, the pool shrinks. With MinShards set the
//     server steps on a K-of-N quorum once the grace period expires, and
//     stragglers' late gradients fold into the round in progress while no
//     more than MaxStaleness rounds old — older ones (and deliveries from
//     replaced workers) are dropped and counted. Gradients ingest in
//     arrival order, so elastic runs are not bit-reproducible; they trade
//     that for liveness under failure.
//
// Liveness under injected faults is structural: a hung worker sleeps in a
// select that also watches the engine's quit channel, every result send
// does the same, and the collect loop's heartbeat timer bounds every
// wait. No failure mode leaves the server blocked or a goroutine leaked
// past the run's end.
//
// Batch-norm running statistics are worker-local (as in a real data
// deployment); evaluation uses worker 0's replica under the strict
// barrier, and any parked live replica (freshly synced) in elastic mode.

// job is one shard assignment for a worker round.
type job struct {
	round  int // 1-based global dispatch round, for staleness accounting
	batch  *tensor.Tensor
	labels []int
}

// result is one worker's round outcome, delivered on the engine's shared
// results channel. The replica pointer identifies the sender generation:
// a delivery from a replaced replica no longer matches its slot.
type result struct {
	r     *replica
	round int
	err   error
}

// replica is one worker: a private model copy plus gradient staging.
type replica struct {
	id     int // membership slot
	m      *models.Model
	params []*nn.Param
	stage  []*tensor.Tensor
	jobs   chan job
	// beat is the worker's heartbeat: UnixNano of its last liveness
	// signal (job receipt, step completion). The server reads it to
	// decide whether a busy worker is merely slow or gone.
	beat atomic.Int64
}

// loop is the worker goroutine: take a job, run it, deliver the result.
// Every blocking point watches quit, so the engine's exit releases even a
// worker hung in an injected fault.
func (r *replica) loop(quit <-chan struct{}, results chan<- result, plan *FaultPlan) {
	loss := nn.SoftmaxCrossEntropy{}
	for {
		var jb job
		var ok bool
		select {
		case <-quit:
			return
		case jb, ok = <-r.jobs:
			if !ok {
				return
			}
		}
		r.beat.Store(time.Now().UnixNano())
		f := plan.take(r.id, jb.round)
		if f != nil && f.Kind == FaultHang {
			select {
			case <-quit:
				return
			case <-time.After(f.Delay):
			}
		}
		err := r.run(loss, jb, f)
		r.beat.Store(time.Now().UnixNano())
		select {
		case <-quit:
			return
		case results <- result{r: r, round: jb.round, err: err}:
		}
	}
}

// run executes one shard with panic isolation: a panic in the model code
// (or an injected fault) is recovered into an error, so one worker's
// crash cannot take down the training process.
func (r *replica) run(loss nn.SoftmaxCrossEntropy, jb job, f *Fault) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("dist: worker %d panic: %v", r.id, p)
		}
	}()
	if f != nil && f.Kind == FaultPanic {
		panic(fmt.Sprintf("injected fault (worker %d, round %d)", r.id, jb.round))
	}
	return r.step(loss, jb)
}

// step runs one forward/backward on the replica and stages the gradients
// for the server to ingest.
func (r *replica) step(loss nn.SoftmaxCrossEntropy, jb job) error {
	logits, err := r.m.Net.Forward(jb.batch, true)
	if err != nil {
		return fmt.Errorf("dist: worker %d forward: %w", r.id, err)
	}
	_, dlogits, err := loss.Forward(logits, jb.labels)
	if err != nil {
		return fmt.Errorf("dist: worker %d loss: %w", r.id, err)
	}
	if _, err := r.m.Net.Backward(dlogits); err != nil {
		return fmt.Errorf("dist: worker %d backward: %w", r.id, err)
	}
	for i, p := range r.params {
		if err := r.stage[i].CopyFrom(p.Grad); err != nil {
			return fmt.Errorf("dist: worker %d %s: %w", r.id, p.Name, err)
		}
		p.ZeroGrad()
	}
	return nil
}

// slot is the server-side view of one membership slot: the replica
// currently occupying it plus its scheduling state. Slots are touched
// only by the server goroutine.
type slot struct {
	r        *replica
	alive    bool // member of the gradient barrier
	busy     bool // has an outstanding job
	round    int  // round of the outstanding job
	job      job  // the outstanding job, kept for re-dispatch on respawn
	needSync bool // must pull fresh weights before its next job
}

// engine is the concurrent parameter-server run: the shared server core,
// the membership slots, and the round bookkeeping.
type engine struct {
	cfg      Config
	srv      *server
	loader   *data.Loader
	slots    []*slot
	results  chan result
	quit     chan struct{}
	strict   bool
	roundSeq int
	respawns int
	// per-round collect state
	got     int // gradients ingested this round (fresh + folded stale)
	pending int // current-round shards still outstanding
}

// runConcurrent executes the goroutine-per-worker engine.
func runConcurrent(cfg Config) (*Stats, error) {
	srv, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed ^ 0xD157)
	loader, err := data.NewLoader(cfg.Train, cfg.BatchSize, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("dist: %w", err)
	}
	startEpoch := 0
	if cfg.Resume != nil {
		if startEpoch, err = srv.restore(cfg.Resume, loader); err != nil {
			return nil, err
		}
	}
	e := &engine{
		cfg:    cfg,
		srv:    srv,
		loader: loader,
		// Buffered past the largest possible sender population so
		// deliveries from replaced replicas never contend.
		results: make(chan result, cfg.Workers+cfg.MaxRespawns+4),
		quit:    make(chan struct{}),
		strict:  cfg.HeartbeatTimeout <= 0,
	}
	defer close(e.quit)

	// Build one full replica per worker and align it bit-for-bit with the
	// server: weights, quant grids, masters and batch-norm statistics.
	// This initial ship is uncharged (in a deployment the initial weights
	// travel with the job submission, not over the training-round links).
	snap := nn.CaptureState(srv.m.Layers())
	e.slots = make([]*slot, cfg.Workers)
	for w := range e.slots {
		r, err := e.spawn(w, snap)
		if err != nil {
			return nil, err
		}
		e.slots[w] = &slot{r: r, alive: true}
	}
	// On resume, replicas recover their worker-local batch-norm history
	// where the checkpoint captured it (a nil entry means that worker was
	// mid-shard at checkpoint time; its replacement keeps the server
	// clone).
	if cfg.Resume != nil && len(cfg.Resume.Replicas) == len(e.slots) {
		for w, rs := range cfg.Resume.Replicas {
			if rs == nil {
				continue
			}
			if err := nn.RestoreState(e.slots[w].r.m.Layers(), rs); err != nil {
				return nil, fmt.Errorf("dist: resume worker %d: %w", w, err)
			}
		}
	}
	return e.run(startEpoch)
}

// spawn builds a fresh replica for a slot from a server-state snapshot
// and starts its goroutine.
func (e *engine) spawn(id int, snap *nn.NetState) (*replica, error) {
	m, err := e.cfg.Build()
	if err != nil {
		return nil, fmt.Errorf("dist: build worker %d: %w", id, err)
	}
	if err := nn.RestoreState(m.Layers(), snap); err != nil {
		return nil, fmt.Errorf("dist: worker %d: %w", id, err)
	}
	r := &replica{
		id:     id,
		m:      m,
		params: m.Params(),
		// One-deep so dispatch to a parked worker never blocks the server.
		jobs: make(chan job, 1),
	}
	r.stage = make([]*tensor.Tensor, len(r.params))
	for i, p := range r.params {
		r.stage[i] = tensor.New(p.Value.Shape()...)
	}
	r.beat.Store(time.Now().UnixNano())
	go r.loop(e.quit, e.results, e.cfg.Fault)
	return r, nil
}

// run drives the epoch/round loop.
func (e *engine) run(startEpoch int) (*Stats, error) {
	cfg, srv := e.cfg, e.srv
	for epoch := startEpoch; epoch < cfg.Epochs; epoch++ {
		// As in the sequential engine, end-of-epoch can arrive mid-round;
		// the partial round still trains and the flag ends the epoch.
		for exhausted := false; !exhausted; {
			stepped, ex, err := e.round()
			if err != nil {
				return nil, err
			}
			exhausted = ex
			if !stepped {
				continue
			}
			// Broadcast: every worker pulls the fresh weights (and, in
			// quantized mode, the grids they were packed on). The strict
			// barrier syncs replicas in place — they are all parked —
			// while elastic mode defers each sync to the slot's next
			// dispatch, since a straggler's replica may not be touched
			// mid-flight. Only the pulls of the workers that trained are
			// charged (in finishRound).
			if err := e.distribute(); err != nil {
				return nil, err
			}
			if exhausted {
				// The loader already reshuffled for the next epoch; the
				// epoch-boundary checkpoint below covers this position.
				continue
			}
			if srv.shouldCheckpoint() {
				if err := e.checkpoint(epoch); err != nil {
					return nil, err
				}
			}
			if srv.timeToPublish() {
				m, err := e.evalModel()
				if err != nil {
					return nil, err
				}
				if err := srv.publish(m); err != nil {
					return nil, err
				}
			}
			if cfg.HaltAfterRounds > 0 && srv.st.Rounds >= cfg.HaltAfterRounds {
				if cfg.CheckpointPath != "" {
					if err := e.checkpoint(epoch); err != nil {
						return nil, err
					}
				}
				return e.finish(true)
			}
		}
		if err := srv.finishEpoch(); err != nil {
			return nil, err
		}
		if srv.ctrl != nil {
			// The epoch-boundary precision adjustment requantized the
			// server's weights; realign the replicas before evaluation
			// and the next epoch. Uncharged, mirroring the sequential
			// reference where the adjustment mutates the shared replica
			// in place.
			if err := e.distribute(); err != nil {
				return nil, err
			}
		}
		m, err := e.evalModel()
		if err != nil {
			return nil, err
		}
		acc, err := train.Evaluate(m, cfg.Test, cfg.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("dist: epoch %d eval: %w", epoch, err)
		}
		srv.st.Accs = append(srv.st.Accs, acc)
		haltNow := cfg.HaltAfterRounds > 0 && srv.st.Rounds >= cfg.HaltAfterRounds
		if cfg.CheckpointPath != "" && (cfg.CheckpointEvery > 0 || haltNow) {
			if err := e.checkpoint(epoch + 1); err != nil {
				return nil, err
			}
		}
		if haltNow {
			return e.finish(true)
		}
	}
	if cfg.CheckpointPath != "" {
		if err := e.checkpoint(cfg.Epochs); err != nil {
			return nil, err
		}
	}
	if cfg.PublishPath != "" {
		m, err := e.evalModel()
		if err != nil {
			return nil, err
		}
		if err := e.srv.publish(m); err != nil {
			return nil, err
		}
	}
	return e.finish(false)
}

func (e *engine) finish(halted bool) (*Stats, error) {
	m, err := e.evalModel()
	if err != nil {
		return nil, err
	}
	e.srv.st.Halted = halted
	e.srv.finalize(m)
	return e.srv.st, nil
}

// round runs one dispatch/collect/step cycle. stepped reports whether the
// server applied an update; exhausted reports end of epoch.
func (e *engine) round() (stepped, exhausted bool, err error) {
	srv := e.srv
	srv.beginRound()
	e.roundSeq++
	e.got, e.pending = 0, 0
	round := e.roundSeq
	dispatched := 0
	for {
		for _, s := range e.slots {
			if !s.alive || s.busy {
				continue
			}
			batch, labels, ok := e.loader.Next()
			if !ok {
				exhausted = true
				break
			}
			if err := e.dispatch(s, job{round: round, batch: batch, labels: labels}); err != nil {
				return false, false, err
			}
			dispatched++
			e.pending++
		}
		if dispatched > 0 || exhausted {
			break
		}
		// No live slot was free: every member is either dead or a busy
		// straggler. Wait for one event (a delivery or a heartbeat
		// expiry) and retry; with no live members at all the run is lost.
		if !e.anyAlive() {
			return false, false, fmt.Errorf("dist: all %d workers lost", len(e.slots))
		}
		if err := e.awaitOne(round); err != nil {
			return false, false, err
		}
	}
	if dispatched == 0 && e.got == 0 {
		return false, exhausted, nil
	}
	if e.strict {
		if err := e.collectStrict(dispatched); err != nil {
			return false, exhausted, err
		}
	} else {
		if err := e.collectElastic(round); err != nil {
			return false, exhausted, err
		}
	}
	if e.got == 0 {
		srv.st.SkippedRounds++
		return false, exhausted, nil
	}
	if e.got < dispatched {
		srv.st.PartialRounds++
	}
	if err := srv.finishRound(e.got); err != nil {
		return false, exhausted, err
	}
	return true, exhausted, nil
}

// dispatch hands a job to a parked live slot, syncing its replica first
// if it missed a broadcast.
func (e *engine) dispatch(s *slot, jb job) error {
	if s.needSync {
		if err := nn.SyncParams(s.r.params, e.srv.params); err != nil {
			return fmt.Errorf("dist: worker %d: %w", s.r.id, err)
		}
		s.needSync = false
	}
	s.busy = true
	s.round = jb.round
	s.job = jb
	s.r.jobs <- jb
	return nil
}

// collectStrict is the strict barrier: wait for every dispatched shard,
// then ingest in slot order — the exact arithmetic (and codec ordering)
// of the sequential reference. A worker error aborts the run.
func (e *engine) collectStrict(dispatched int) error {
	var firstErr error
	for e.pending > 0 {
		res := <-e.results
		e.slots[res.r.id].busy = false
		e.pending--
		if res.err != nil && firstErr == nil {
			firstErr = res.err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	// Under the strict barrier every slot is always alive, so the round
	// dispatched to slots 0..dispatched-1 in order.
	for w := 0; w < dispatched; w++ {
		if err := e.srv.ingest(e.slots[w].r.stage); err != nil {
			return err
		}
		e.got++
	}
	return nil
}

// collectElastic gathers the round's gradients under elastic membership:
// results ingest as they arrive, the heartbeat timer expels workers that
// stall past the timeout (respawning them while the budget lasts), and
// once the grace period has expired a MinShards quorum lets the round
// step without its stragglers.
func (e *engine) collectElastic(round int) error {
	timer := time.NewTimer(e.cfg.HeartbeatTimeout)
	defer timer.Stop()
	for e.pending > 0 {
		select {
		case res := <-e.results:
			if err := e.handleResult(res, round); err != nil {
				return err
			}
		case <-timer.C:
			if err := e.reapDead(round); err != nil {
				return err
			}
			if e.cfg.MinShards > 0 && e.got >= e.cfg.MinShards {
				// Quorum reached and grace expired: step now. The
				// stragglers stay busy; their gradients arrive in a
				// later round as stale.
				return nil
			}
			timer.Reset(e.cfg.HeartbeatTimeout)
		}
	}
	return nil
}

// awaitOne blocks for a single membership event — used when a new round
// cannot dispatch because every live member is a busy straggler.
func (e *engine) awaitOne(round int) error {
	timer := time.NewTimer(e.cfg.HeartbeatTimeout)
	defer timer.Stop()
	select {
	case res := <-e.results:
		return e.handleResult(res, round)
	case <-timer.C:
		return e.reapDead(round)
	}
}

// handleResult folds one delivery into the round: a fresh gradient
// ingests directly, a stale one ingests under the MaxStaleness bound or
// is dropped and counted, a worker error marks the replica for resync. A
// delivery also revives a slot that was declared dead but not yet
// replaced — the worker was slow, not gone.
func (e *engine) handleResult(res result, round int) error {
	s := e.slots[res.r.id]
	if s.r != res.r {
		// A replaced replica's delivery: its slot moved on without it.
		e.srv.st.StaleDropped++
		return nil
	}
	if !s.alive {
		s.alive = true
		e.srv.st.Rejoins++
	}
	s.busy = false
	s.needSync = true
	if res.round == round {
		e.pending--
	}
	if res.err != nil {
		e.srv.st.WorkerErrors++
		return nil
	}
	if res.round != round {
		if e.cfg.MaxStaleness <= 0 || round-res.round > e.cfg.MaxStaleness {
			e.srv.st.StaleDropped++
			return nil
		}
		e.srv.st.StaleFolded++
	}
	if err := e.srv.ingest(res.r.stage); err != nil {
		return err
	}
	e.got++
	return nil
}

// reapDead expels busy workers whose heartbeat is older than the timeout
// and, while the respawn budget lasts, replaces them with a fresh clone
// of the server replica and re-dispatches the shard they were holding.
func (e *engine) reapDead(round int) error {
	now := time.Now().UnixNano()
	cut := e.cfg.HeartbeatTimeout.Nanoseconds()
	for _, s := range e.slots {
		if !s.alive || !s.busy || now-s.r.beat.Load() <= cut {
			continue
		}
		s.alive = false
		s.busy = false
		e.srv.st.WorkersLost++
		if s.round == round {
			e.pending--
		}
		if e.respawns >= e.cfg.MaxRespawns {
			continue // budget exhausted: the pool shrinks
		}
		e.respawns++
		e.srv.st.Respawns++
		r, err := e.spawn(s.r.id, nn.CaptureState(e.srv.m.Layers()))
		if err != nil {
			return err
		}
		s.r = r
		s.alive = true
		s.needSync = false
		held := s.job
		if err := e.dispatch(s, held); err != nil {
			return err
		}
		if s.round == round {
			e.pending++
		}
	}
	return nil
}

// distribute pushes the server's fresh weights to the replicas: in place
// for the strict barrier (all workers parked), deferred to each slot's
// next dispatch in elastic mode.
func (e *engine) distribute() error {
	if e.strict {
		for _, s := range e.slots {
			if err := nn.SyncParams(s.r.params, e.srv.params); err != nil {
				return fmt.Errorf("dist: worker %d: %w", s.r.id, err)
			}
		}
		return nil
	}
	for _, s := range e.slots {
		s.needSync = true
	}
	return nil
}

func (e *engine) anyAlive() bool {
	for _, s := range e.slots {
		if s.alive {
			return true
		}
	}
	return false
}

// evalModel picks the model to evaluate, publish and finalize on: worker
// 0's replica under the strict barrier (always parked between rounds), a
// freshly synced parked live replica in elastic mode, or — degraded, when
// every member is busy or dead — the server model itself (whose
// batch-norm statistics are the initial ones, as the server never runs a
// forward pass).
func (e *engine) evalModel() (*models.Model, error) {
	if e.strict {
		return e.slots[0].r.m, nil
	}
	for _, s := range e.slots {
		if !s.alive || s.busy {
			continue
		}
		if s.needSync {
			if err := nn.SyncParams(s.r.params, e.srv.params); err != nil {
				return nil, fmt.Errorf("dist: worker %d: %w", s.r.id, err)
			}
			s.needSync = false
		}
		return s.r.m, nil
	}
	return e.srv.m, nil
}

// replicaStates snapshots each parked replica for a checkpoint (a busy
// straggler cannot be touched; its entry stays nil and resume falls back
// to a server clone for that slot).
func (e *engine) replicaStates() []*nn.NetState {
	out := make([]*nn.NetState, len(e.slots))
	for i, s := range e.slots {
		if s.busy {
			continue
		}
		out[i] = nn.CaptureState(s.r.m.Layers())
	}
	return out
}

func (e *engine) checkpoint(epoch int) error {
	return e.srv.checkpoint(epoch, e.loader, e.replicaStates())
}
