package dist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/models"
	"repro/internal/tensor"
)

// haltResume runs mk()'s configuration in two legs — halted after haltAt
// rounds with a checkpoint, then resumed from that checkpoint to
// completion — and returns the resumed leg's stats. The combined
// trajectory must be indistinguishable from an uninterrupted run.
func haltResume(t *testing.T, mk func() Config, haltAt int) *Stats {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.state")
	cfg := mk()
	cfg.CheckpointPath = path
	cfg.HaltAfterRounds = haltAt
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("halt=%d: halted leg: %v", haltAt, err)
	}
	if !st.Halted {
		t.Fatalf("halt=%d: run did not report Halted", haltAt)
	}
	if st.Rounds != haltAt {
		t.Fatalf("halt=%d: halted leg stopped at %d rounds", haltAt, st.Rounds)
	}
	ts, err := models.LoadTrainState(path)
	if err != nil {
		t.Fatalf("halt=%d: LoadTrainState: %v", haltAt, err)
	}
	if ts.Rounds != haltAt {
		t.Fatalf("halt=%d: checkpoint records %d rounds", haltAt, ts.Rounds)
	}
	cfg = mk()
	cfg.CheckpointPath = path
	cfg.Resume = ts
	st, err = Run(cfg)
	if err != nil {
		t.Fatalf("halt=%d: resumed leg: %v", haltAt, err)
	}
	if st.Halted {
		t.Fatalf("halt=%d: resumed leg reported Halted", haltAt)
	}
	return st
}

// TestKillResumeBitIdenticalSequential is the resume acceptance
// criterion: killing a run at any round and resuming from its checkpoint
// reproduces the uninterrupted run's traffic, accuracies and final
// weights bit-exactly. Halts at rounds 1 and 3 land mid-epoch; round 2
// lands on the epoch boundary (the loader's cursor sits at the end of
// the epoch's order, not yet reshuffled).
func TestKillResumeBitIdenticalSequential(t *testing.T) {
	mk := func() Config { return testConfig(t, 2, 2) }
	base, err := Run(mk())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for _, halt := range []int{1, 2, 3} {
		resumed := haltResume(t, mk, halt)
		assertIdenticalRuns(t, base, resumed, fmt.Sprintf("sequential halt=%d", halt))
	}
}

// TestKillResumeBitIdenticalSequentialAPT repeats the round trip with
// every piece of optional trajectory state live: the APT controller's
// gradient history, the ternary codec's sampling RNG, quantized grids
// with fp32 masters, and the bitwidth-aware broadcast.
func TestKillResumeBitIdenticalSequentialAPT(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t, 2, 2)
		cfg.Codec = NewTernaryCodec(99)
		cfg.APT = aptConfig()
		cfg.QuantBroadcast = true
		return cfg
	}
	base, err := Run(mk())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for _, halt := range []int{1, 3} {
		resumed := haltResume(t, mk, halt)
		assertIdenticalRuns(t, base, resumed, fmt.Sprintf("sequential APT halt=%d", halt))
	}
}

// TestKillResumeBitIdenticalConcurrent runs the round trip through the
// concurrent engine's strict barrier, which additionally checkpoints and
// restores per-worker replica state (worker-local batch-norm history).
func TestKillResumeBitIdenticalConcurrent(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t, 2, 2)
		cfg.Concurrent = true
		return cfg
	}
	base, err := Run(mk())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	for _, halt := range []int{1, 2, 3} {
		resumed := haltResume(t, mk, halt)
		assertIdenticalRuns(t, base, resumed, fmt.Sprintf("concurrent halt=%d", halt))
	}
}

func TestKillResumeBitIdenticalConcurrentAPT(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t, 2, 2)
		cfg.Concurrent = true
		cfg.Codec = NewTernaryCodec(99)
		cfg.APT = aptConfig()
		cfg.QuantBroadcast = true
		return cfg
	}
	base, err := Run(mk())
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	resumed := haltResume(t, mk, 3)
	assertIdenticalRuns(t, base, resumed, "concurrent APT halt=3")
}

// TestKillResumeAuxiliaryRNG: a caller-registered RNG stream (data
// augmentation in apttrain) must come back at its checkpointed cursor,
// not at whatever position the dying process left it.
func TestKillResumeAuxiliaryRNG(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	aux := tensor.NewRNG(7)
	cfg := testConfig(t, 1, 1)
	cfg.CheckpointRNGs = []*tensor.RNG{aux}
	cfg.CheckpointPath = path
	cfg.HaltAfterRounds = 2
	if _, err := Run(cfg); err != nil {
		t.Fatalf("halted leg: %v", err)
	}
	want := aux.State()
	aux.Float64() // the dying process drew past the checkpoint

	ts, err := models.LoadTrainState(path)
	if err != nil {
		t.Fatalf("LoadTrainState: %v", err)
	}
	cfg = testConfig(t, 1, 1)
	cfg.CheckpointRNGs = []*tensor.RNG{aux}
	cfg.Resume = ts
	if _, err := Run(cfg); err != nil {
		t.Fatalf("resumed leg: %v", err)
	}
	if aux.State() == want {
		return
	}
	t.Errorf("auxiliary RNG state not restored from checkpoint")
}

// TestCheckpointPublishCadence pins the snapshot and publish schedule:
// with cadence 1 on the 2-round single-epoch run, both engines write one
// checkpoint per round, one at the epoch boundary and one at the end,
// and publish one serving checkpoint per round plus the final one.
func TestCheckpointPublishCadence(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		dir := t.TempDir()
		ckpt := filepath.Join(dir, "run.state")
		pub := filepath.Join(dir, "model.apt")
		cfg := testConfig(t, 2, 1)
		cfg.Concurrent = concurrent
		cfg.CheckpointPath = ckpt
		cfg.CheckpointEvery = 1
		cfg.PublishPath = pub
		cfg.PublishEvery = 1
		st, err := Run(cfg)
		if err != nil {
			t.Fatalf("concurrent=%v: %v", concurrent, err)
		}
		if st.Checkpoints != 4 {
			t.Errorf("concurrent=%v: Checkpoints = %d, want 4 (2 rounds + boundary + final)", concurrent, st.Checkpoints)
		}
		if st.Publishes != 3 {
			t.Errorf("concurrent=%v: Publishes = %d, want 3 (2 rounds + final)", concurrent, st.Publishes)
		}
		v, ok, err := models.CheckpointVersion(pub)
		if err != nil || !ok || v != st.Publishes {
			t.Errorf("concurrent=%v: published version = (%d, %v, %v), want (%d, true, nil)",
				concurrent, v, ok, err, st.Publishes)
		}
		if _, err := models.LoadAutoFile(pub, "", 0, models.Config{Classes: 3, InputSize: 8, Seed: 1}); err != nil {
			t.Errorf("concurrent=%v: published checkpoint does not load: %v", concurrent, err)
		}
		ts, err := models.LoadTrainState(ckpt)
		if err != nil {
			t.Fatalf("concurrent=%v: LoadTrainState: %v", concurrent, err)
		}
		if ts.Epoch != cfg.Epochs || ts.Rounds != st.Rounds {
			t.Errorf("concurrent=%v: final checkpoint at epoch %d round %d, want epoch %d round %d",
				concurrent, ts.Epoch, ts.Rounds, cfg.Epochs, st.Rounds)
		}
	}
}

// TestResumeValidation: a checkpoint must refuse to resume into a run
// whose trajectory-relevant configuration differs, and a torn or
// truncated checkpoint file must be rejected outright.
func TestResumeValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	cfg := testConfig(t, 2, 2)
	cfg.CheckpointPath = path
	cfg.HaltAfterRounds = 1
	if _, err := Run(cfg); err != nil {
		t.Fatalf("halted leg: %v", err)
	}
	ts, err := models.LoadTrainState(path)
	if err != nil {
		t.Fatalf("LoadTrainState: %v", err)
	}

	bad := testConfig(t, 2, 2)
	bad.Seed = 999
	bad.Resume = ts
	if _, err := Run(bad); err == nil {
		t.Error("seed mismatch did not error")
	}

	bad = testConfig(t, 2, 2)
	bad.APT = aptConfig() // checkpoint has no controller state
	bad.Resume = ts
	if _, err := Run(bad); err == nil {
		t.Error("controller mismatch did not error")
	}

	bad = testConfig(t, 2, 2)
	bad.Codec = NewTernaryCodec(1) // checkpoint has no codec RNG stream
	bad.Resume = ts
	if _, err := Run(bad); err == nil {
		t.Error("RNG stream count mismatch did not error")
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := models.LoadTrainState(path); !errors.Is(err, models.ErrCorruptCheckpoint) {
		t.Errorf("corrupt checkpoint: err = %v, want ErrCorruptCheckpoint", err)
	}

	// Truncation tears off the trailer: no longer a train-state file.
	if err := os.WriteFile(path, raw[:len(raw)-24], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := models.LoadTrainState(path); err == nil {
		t.Error("truncated checkpoint loaded")
	}
}
