package dist

import (
	"sync"
	"time"
)

// Fault injection for the concurrent engine. A FaultPlan scripts worker
// failures — hangs past the heartbeat timeout, panics mid-gradient — at
// exact (worker, round) coordinates, which is what makes the chaos suite
// deterministic enough to assert on: a test knows exactly which round
// loses which shard and can check the accounting the engine reports.
// Production runs leave Config.Fault nil; every injection point is
// nil-safe and compiles to a single pointer check.

// FaultKind selects the failure a Fault injects.
type FaultKind int

const (
	// FaultHang delays the worker by Delay before it computes its shard.
	// With Delay longer than the heartbeat timeout it simulates a stalled
	// worker: the server expels it from the barrier and the (very) late
	// result arrives as a stale gradient.
	FaultHang FaultKind = iota
	// FaultPanic panics inside the worker's step. The worker's recovery
	// wrapper turns it into a worker error: fatal under the strict
	// barrier, tolerated (resync and continue) under elastic membership.
	FaultPanic
)

// Fault is one scripted failure.
type Fault struct {
	// Worker is the membership slot the fault targets.
	Worker int
	// Round is the 1-based global dispatch round the fault fires in.
	Round int
	// Kind is what happens.
	Kind FaultKind
	// Delay is the hang duration for FaultHang.
	Delay time.Duration
}

// FaultPlan is a set of scripted failures. Each fault fires at most once:
// a respawned worker re-running the same (worker, round) coordinates does
// not re-trigger it, so a respawn-and-retry always makes progress.
type FaultPlan struct {
	mu     sync.Mutex
	faults []Fault
	fired  []bool
}

// NewFaultPlan scripts the given failures.
func NewFaultPlan(faults ...Fault) *FaultPlan {
	return &FaultPlan{faults: faults, fired: make([]bool, len(faults))}
}

// take returns the first unfired fault for (worker, round) and marks it
// fired, or nil. Safe for concurrent use from worker goroutines, and safe
// on a nil plan.
func (p *FaultPlan) take(worker, round int) *Fault {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.faults {
		f := &p.faults[i]
		if !p.fired[i] && f.Worker == worker && f.Round == round {
			p.fired[i] = true
			return f
		}
	}
	return nil
}
