package dist

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/tensor"
)

// testConfig builds a tiny SmallCNN run: 64 train samples, batch 16 gives
// 4 shards per epoch (2 rounds at Workers=2).
func testConfig(t *testing.T, workers, epochs int) Config {
	t.Helper()
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: 3, Train: 64, Test: 32, Size: 8, Seed: 17, Noise: 0.4,
	})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	return Config{
		Workers: workers,
		Build: func() (*models.Model, error) {
			return models.SmallCNN(models.Config{Classes: 3, InputSize: 8, Seed: 5})
		},
		Train: tr, Test: te,
		BatchSize: 16, Epochs: epochs,
		LR: 0.05, Momentum: 0.9,
		Seed: 23,
	}
}

func aptConfig() *core.Config {
	c := core.DefaultConfig()
	c.Interval = 1 // observe every round; rounds per epoch are few here
	return &c
}

// --- codecs -----------------------------------------------------------------

func TestKBitCodecIdempotent(t *testing.T) {
	for _, bits := range []int{2, 4, 8} {
		c := KBitCodec{Bits: bits}
		g := tensor.New(257)
		g.FillNormal(tensor.NewRNG(uint64(bits)), 0, 1)

		b1 := c.Encode(g)
		once := append([]float32(nil), g.Data()...)
		b2 := c.Encode(g)
		for i, v := range g.Data() {
			if v != once[i] {
				t.Fatalf("bits=%d: re-encode moved element %d: %v -> %v", bits, i, once[i], v)
			}
		}
		if b1 != b2 {
			t.Errorf("bits=%d: byte cost changed on re-encode: %d vs %d", bits, b1, b2)
		}
		want := (int64(g.Len())*int64(bits)+7)/8 + 8
		if b1 != want {
			t.Errorf("bits=%d: cost = %d, want %d", bits, b1, want)
		}
	}
}

func TestTernaryCodecLevels(t *testing.T) {
	c := NewTernaryCodec(41)
	g := tensor.New(512)
	g.FillNormal(tensor.NewRNG(9), 0, 0.3)
	var s float32
	for _, v := range g.Data() {
		if a := float32(math.Abs(float64(v))); a > s {
			s = a
		}
	}
	bytes := c.Encode(g)
	nonzero := 0
	for i, v := range g.Data() {
		if v != 0 && v != s && v != -s {
			t.Fatalf("element %d = %v, want one of {%v, 0, %v}", i, v, -s, s)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Error("ternary code zeroed every element")
	}
	if want := (int64(g.Len())*2+7)/8 + 4; bytes != want {
		t.Errorf("cost = %d, want %d", bytes, want)
	}
}

func TestTernaryCodecZeroTensor(t *testing.T) {
	c := NewTernaryCodec(1)
	g := tensor.New(10)
	if b := c.Encode(g); b <= 0 {
		t.Errorf("zero tensor cost = %d, want > 0", b)
	}
	for i, v := range g.Data() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

// --- traffic accounting -----------------------------------------------------

// paramElems returns the total learnable element count of the test model.
func paramElems(t *testing.T, cfg Config) int64 {
	t.Helper()
	m, err := cfg.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var n int64
	for _, p := range m.Params() {
		n += int64(p.Value.Len())
	}
	return n
}

// paramCount returns the number of learnable tensors of the test model.
func paramCount(t *testing.T, cfg Config) int64 {
	t.Helper()
	m, err := cfg.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return int64(len(m.Params()))
}

func TestTrafficAccountingExact(t *testing.T) {
	// 64 samples / batch 16 = 4 shards per epoch; 2 workers = 2 rounds.
	for _, concurrent := range []bool{false, true} {
		cfg := testConfig(t, 2, 2)
		cfg.Concurrent = concurrent
		st, err := Run(cfg)
		if err != nil {
			t.Fatalf("concurrent=%v: %v", concurrent, err)
		}
		elems := paramElems(t, cfg)
		const shardsPerEpoch, rounds = 4, 4 // 2 epochs x 2 rounds
		if st.Rounds != rounds {
			t.Errorf("concurrent=%v: rounds = %d, want %d", concurrent, st.Rounds, rounds)
		}
		wantUp := elems * 4 * shardsPerEpoch * int64(cfg.Epochs)
		if st.UpBytes != wantUp {
			t.Errorf("concurrent=%v: UpBytes = %d, want %d", concurrent, st.UpBytes, wantUp)
		}
		wantDown := elems * 4 * shardsPerEpoch * int64(cfg.Epochs)
		if st.DownBytes != wantDown {
			t.Errorf("concurrent=%v: DownBytes = %d, want %d", concurrent, st.DownBytes, wantDown)
		}
	}
}

func TestTrafficAccountingKBitUplink(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		cfg := testConfig(t, 2, 1)
		cfg.Concurrent = concurrent
		cfg.Codec = KBitCodec{Bits: 8}
		st, err := Run(cfg)
		if err != nil {
			t.Fatalf("concurrent=%v: %v", concurrent, err)
		}
		elems := paramElems(t, cfg)
		tensors := paramCount(t, cfg)
		const shards = 4
		// Per shard: one byte per element (8-bit) plus the 8-byte range
		// header per tensor. SmallCNN's per-tensor element counts are all
		// multiples of 8, so the ceiling division is exact.
		wantUp := (elems + 8*tensors) * shards
		if st.UpBytes != wantUp {
			t.Errorf("concurrent=%v: UpBytes = %d, want %d", concurrent, st.UpBytes, wantUp)
		}
	}
}

// --- engine equivalence -----------------------------------------------------

// finalWeights flattens the final parameter values of a run.
func finalWeights(st *Stats) []float32 {
	var out []float32
	for _, p := range st.Final.Params {
		out = append(out, p.Value...)
	}
	return out
}

func runPair(t *testing.T, mk func() Config) (seq, conc *Stats) {
	t.Helper()
	cfg := mk()
	cfg.Concurrent = false
	seq, err := Run(cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg = mk()
	cfg.Concurrent = true
	conc, err = Run(cfg)
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	return seq, conc
}

func assertIdenticalRuns(t *testing.T, a, b *Stats, what string) {
	t.Helper()
	if a.UpBytes != b.UpBytes || a.DownBytes != b.DownBytes || a.Rounds != b.Rounds {
		t.Errorf("%s: traffic differs: up %d/%d down %d/%d rounds %d/%d",
			what, a.UpBytes, b.UpBytes, a.DownBytes, b.DownBytes, a.Rounds, b.Rounds)
	}
	if len(a.Accs) != len(b.Accs) {
		t.Fatalf("%s: %d vs %d epochs", what, len(a.Accs), len(b.Accs))
	}
	for e := range a.Accs {
		if a.Accs[e] != b.Accs[e] {
			t.Errorf("%s: epoch %d accuracy %v vs %v", what, e, a.Accs[e], b.Accs[e])
		}
	}
	wa, wb := finalWeights(a), finalWeights(b)
	if len(wa) != len(wb) {
		t.Fatalf("%s: weight counts differ", what)
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("%s: weight %d = %v vs %v (trajectories diverged)", what, i, wa[i], wb[i])
		}
	}
}

// TestConcurrentMatchesSequentialOneWorker is the acceptance criterion:
// at Workers=1 the concurrent engine must retrace the sequential
// reference bit for bit — same accuracies, same traffic, same final
// weights — in both fp32 and APT/quantized-broadcast modes.
func TestConcurrentMatchesSequentialOneWorker(t *testing.T) {
	seq, conc := runPair(t, func() Config {
		return testConfig(t, 1, 2)
	})
	assertIdenticalRuns(t, seq, conc, "fp32")

	seq, conc = runPair(t, func() Config {
		cfg := testConfig(t, 1, 2)
		cfg.Codec = KBitCodec{Bits: 8}
		cfg.APT = aptConfig()
		cfg.QuantBroadcast = true
		return cfg
	})
	assertIdenticalRuns(t, seq, conc, "apt+quant-broadcast")
}

// TestConcurrentSeedStable: at Workers>1 the engine must be deterministic
// for a fixed seed regardless of goroutine scheduling.
func TestConcurrentSeedStable(t *testing.T) {
	mk := func() Config {
		cfg := testConfig(t, 3, 2)
		cfg.Concurrent = true
		cfg.Codec = NewTernaryCodec(77)
		cfg.APT = aptConfig()
		cfg.QuantBroadcast = true
		return cfg
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	assertIdenticalRuns(t, a, b, "workers=3 repeat")
}

// TestQuantBroadcastShrinksDownlink demonstrates the tentpole scenario:
// with the server running APT at 6-bit init, the bitwidth-aware broadcast
// must spend well under half the fp32 downlink.
func TestQuantBroadcastShrinksDownlink(t *testing.T) {
	mk := func(quantBcast bool) Config {
		cfg := testConfig(t, 2, 2)
		cfg.Concurrent = true
		cfg.APT = aptConfig()
		cfg.QuantBroadcast = quantBcast
		return cfg
	}
	full, err := Run(mk(false))
	if err != nil {
		t.Fatalf("fp32 broadcast: %v", err)
	}
	packed, err := Run(mk(true))
	if err != nil {
		t.Fatalf("quant broadcast: %v", err)
	}
	if full.DownBytes == 0 || packed.DownBytes == 0 {
		t.Fatal("no downlink traffic recorded")
	}
	if ratio := float64(packed.DownBytes) / float64(full.DownBytes); ratio >= 0.5 {
		t.Errorf("quantized downlink ratio = %.3f, want < 0.5 (packed %d vs fp32 %d)",
			ratio, packed.DownBytes, full.DownBytes)
	}
	if packed.UpBytes != full.UpBytes {
		t.Errorf("uplink changed with broadcast mode: %d vs %d", packed.UpBytes, full.UpBytes)
	}
	if packed.MeanBits >= 32 {
		t.Errorf("mean bits = %.1f, want < 32 under APT", packed.MeanBits)
	}
}

// TestRunTrainsAndImproves sanity-checks that the concurrent engine
// actually learns on the easy synthetic task.
func TestRunTrainsAndImproves(t *testing.T) {
	cfg := testConfig(t, 2, 3)
	cfg.Concurrent = true
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.FinalAcc() <= 1.0/3+0.05 {
		t.Errorf("final accuracy %.3f is not above chance", st.FinalAcc())
	}
}

func TestRunValidation(t *testing.T) {
	cfg := testConfig(t, 0, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("zero workers did not error")
	}
	cfg = testConfig(t, 1, 1)
	cfg.QuantBroadcast = true // without APT
	if _, err := Run(cfg); err == nil {
		t.Error("QuantBroadcast without APT did not error")
	}
	cfg = testConfig(t, 1, 1)
	cfg.BatchSize = 0
	if _, err := Run(cfg); err == nil {
		t.Error("zero batch size did not error")
	}
}
