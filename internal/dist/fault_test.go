package dist

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

// The chaos suite: scripted worker failures injected through FaultPlan,
// run under -race in CI. The heartbeat timeouts are generous (hundreds of
// milliseconds against single-digit-millisecond healthy shards) so a
// loaded machine cannot reap a merely slow healthy worker and break the
// deterministic accounting these tests pin down.

const testHeartbeat = 300 * time.Millisecond

// waitGoroutines polls until the goroutine count returns to its level
// before the run: hung workers must wake on the engine's quit channel and
// exit, never leak.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d before run, %d after", before, runtime.NumGoroutine())
}

// TestHangRespawnCompletes: a worker that hangs past the heartbeat
// timeout is expelled, respawned from the server's state, and its shard
// re-dispatched — the run completes with every round at full strength.
func TestHangRespawnCompletes(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t, 2, 2)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = testHeartbeat
	cfg.MaxRespawns = 2
	cfg.Fault = NewFaultPlan(Fault{Worker: 1, Round: 1, Kind: FaultHang, Delay: time.Hour})
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", st.WorkersLost)
	}
	if st.Respawns != 1 {
		t.Errorf("Respawns = %d, want 1", st.Respawns)
	}
	if st.Rounds != 4 {
		t.Errorf("Rounds = %d, want 4", st.Rounds)
	}
	if st.PartialRounds != 0 {
		t.Errorf("PartialRounds = %d, want 0 (the respawn recovered the shard)", st.PartialRounds)
	}
	if len(st.Accs) != 2 {
		t.Errorf("epochs evaluated = %d, want 2", len(st.Accs))
	}
	waitGoroutines(t, before)
}

// TestHangPoolShrinks: past the respawn budget a death permanently
// shrinks the pool; the round that lost its shard steps partial and the
// survivors carry the rest of the epoch.
func TestHangPoolShrinks(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = testHeartbeat
	cfg.Fault = NewFaultPlan(Fault{Worker: 1, Round: 1, Kind: FaultHang, Delay: time.Hour})
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.WorkersLost != 1 || st.Respawns != 0 {
		t.Errorf("WorkersLost = %d, Respawns = %d, want 1, 0", st.WorkersLost, st.Respawns)
	}
	if st.PartialRounds != 1 {
		t.Errorf("PartialRounds = %d, want 1", st.PartialRounds)
	}
	// 4 shards: round 1 steps on one of two, the survivor takes the
	// remaining two shards one round each.
	if st.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", st.Rounds)
	}
	if len(st.Accs) != 1 {
		t.Errorf("epochs evaluated = %d, want 1", len(st.Accs))
	}
	waitGoroutines(t, before)
}

// TestPanicToleratedElastic: a worker panic mid-gradient is recovered
// into an error; under elastic membership the round steps without that
// shard and the worker stays in the pool (resynced before its next job).
func TestPanicToleratedElastic(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = time.Hour // never reaps: the panic returns promptly
	cfg.Fault = NewFaultPlan(Fault{Worker: 1, Round: 1, Kind: FaultPanic})
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.WorkerErrors != 1 {
		t.Errorf("WorkerErrors = %d, want 1", st.WorkerErrors)
	}
	if st.WorkersLost != 0 {
		t.Errorf("WorkersLost = %d, want 0 (an error is not a death)", st.WorkersLost)
	}
	if st.PartialRounds != 1 {
		t.Errorf("PartialRounds = %d, want 1", st.PartialRounds)
	}
	if st.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 (the worker rejoined for round 2)", st.Rounds)
	}
}

// TestPanicAbortsStrict: the strict barrier has no tolerance policy — a
// worker panic surfaces as a run error, recovered, never a crash.
func TestPanicAbortsStrict(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.Fault = NewFaultPlan(Fault{Worker: 0, Round: 1, Kind: FaultPanic})
	_, err := Run(cfg)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("strict run with panicking worker: err = %v, want a recovered panic error", err)
	}
}

// TestAllWorkersLost: when every worker dies and the respawn budget is
// exhausted the run must error out promptly, not hang on a barrier that
// can never fill.
func TestAllWorkersLost(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = 100 * time.Millisecond
	cfg.Fault = NewFaultPlan(
		Fault{Worker: 0, Round: 1, Kind: FaultHang, Delay: time.Hour},
		Fault{Worker: 1, Round: 1, Kind: FaultHang, Delay: time.Hour},
	)
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "workers lost") {
			t.Errorf("err = %v, want all-workers-lost error", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run with every worker dead hung instead of erroring")
	}
	waitGoroutines(t, before)
}

// TestQuorumStepsPastStraggler: with MinShards set, a round whose
// straggler (and its equally doomed replacement) never delivers steps on
// its K-of-N quorum once the heartbeat grace expires, leaving the
// replacement's shard in flight rather than blocking on it.
func TestQuorumStepsPastStraggler(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig(t, 3, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = testHeartbeat
	cfg.MinShards = 2
	cfg.MaxStaleness = 8
	cfg.MaxRespawns = 1
	cfg.Fault = NewFaultPlan(
		Fault{Worker: 2, Round: 1, Kind: FaultHang, Delay: time.Hour},
		Fault{Worker: 2, Round: 1, Kind: FaultHang, Delay: time.Hour},
	)
	st, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Whether the grace period expires while the straggler's heartbeat is
	// still fresh (quorum exit, worker left in flight) or already stale
	// (reap and respawn of an equally doomed replacement) is a timing race
	// the policy absorbs either way: round 1 must step on its 2-of-3
	// quorum and the epoch must finish without the straggler's shard.
	if st.PartialRounds != 1 {
		t.Errorf("PartialRounds = %d, want 1 (round 1 stepped 2-of-3)", st.PartialRounds)
	}
	if st.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", st.Rounds)
	}
	elems := paramElems(t, cfg)
	if want := elems * 4 * 3; st.UpBytes != want {
		t.Errorf("UpBytes = %d, want %d (3 of 4 shards ingested)", st.UpBytes, want)
	}
	if len(st.Accs) != 1 {
		t.Errorf("epochs evaluated = %d, want 1", len(st.Accs))
	}
	waitGoroutines(t, before)
}

// parkedReplica builds a replica without starting its goroutine, for
// driving the server-side bookkeeping directly.
func parkedReplica(t *testing.T, cfg Config, id int) *replica {
	t.Helper()
	m, err := cfg.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	r := &replica{id: id, m: m, params: m.Params(), jobs: make(chan job, 1)}
	r.stage = make([]*tensor.Tensor, len(r.params))
	for i, p := range r.params {
		r.stage[i] = tensor.New(p.Value.Shape()...)
	}
	return r
}

// TestStaleAccounting drives handleResult directly — no goroutines, no
// timing — to pin the stale-gradient policy: fresh deliveries ingest,
// stale ones fold under the MaxStaleness bound or are dropped and
// counted, deliveries from replaced replicas are always dropped, a
// declared-dead worker that delivers rejoins, and a worker error marks
// the replica for resync without ingesting.
func TestStaleAccounting(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = time.Hour
	cfg.MaxStaleness = 2
	if err := cfg.validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	e := &engine{cfg: cfg, srv: srv}
	r0, r1 := parkedReplica(t, cfg, 0), parkedReplica(t, cfg, 1)
	e.slots = []*slot{
		{r: r0, alive: true, busy: true},
		{r: r1, alive: true, busy: true},
	}
	srv.beginRound()
	const round = 5
	e.pending = 2

	// A current-round delivery ingests and retires its shard.
	if err := e.handleResult(result{r: r0, round: round}, round); err != nil {
		t.Fatalf("fresh delivery: %v", err)
	}
	if e.got != 1 || e.pending != 1 {
		t.Errorf("after fresh delivery: got %d pending %d, want 1, 1", e.got, e.pending)
	}

	// A stale delivery within the bound folds in; it retires no
	// current-round shard.
	if err := e.handleResult(result{r: r1, round: round - 2}, round); err != nil {
		t.Fatalf("stale fold: %v", err)
	}
	if srv.st.StaleFolded != 1 || e.got != 2 || e.pending != 1 {
		t.Errorf("after stale fold: folded %d got %d pending %d, want 1, 2, 1",
			srv.st.StaleFolded, e.got, e.pending)
	}

	// Past the bound it is dropped.
	e.slots[1].busy = true
	if err := e.handleResult(result{r: r1, round: round - 3}, round); err != nil {
		t.Fatalf("stale drop: %v", err)
	}
	if srv.st.StaleDropped != 1 || e.got != 2 {
		t.Errorf("after stale drop: dropped %d got %d, want 1, 2", srv.st.StaleDropped, e.got)
	}

	// A replaced replica's delivery is always dropped and does not touch
	// the slot its successor now occupies.
	ghost := parkedReplica(t, cfg, 0)
	e.slots[0].busy = true
	if err := e.handleResult(result{r: ghost, round: round}, round); err != nil {
		t.Fatalf("replaced delivery: %v", err)
	}
	if srv.st.StaleDropped != 2 || !e.slots[0].busy || e.pending != 1 {
		t.Errorf("after replaced delivery: dropped %d busy %v pending %d, want 2, true, 1",
			srv.st.StaleDropped, e.slots[0].busy, e.pending)
	}

	// A declared-dead worker that delivers after all rejoins the pool.
	e.slots[1].alive = false
	e.slots[1].busy = true
	if err := e.handleResult(result{r: r1, round: round}, round); err != nil {
		t.Fatalf("rejoin delivery: %v", err)
	}
	if srv.st.Rejoins != 1 || !e.slots[1].alive {
		t.Errorf("after rejoin: rejoins %d alive %v, want 1, true", srv.st.Rejoins, e.slots[1].alive)
	}
	if e.got != 3 || e.pending != 0 {
		t.Errorf("after rejoin: got %d pending %d, want 3, 0", e.got, e.pending)
	}

	// A worker error ingests nothing and flags the replica for resync.
	e.slots[0].busy = true
	e.slots[0].needSync = false
	e.pending = 1
	if err := e.handleResult(result{r: r0, round: round, err: errors.New("boom")}, round); err != nil {
		t.Fatalf("error delivery: %v", err)
	}
	if srv.st.WorkerErrors != 1 || e.got != 3 || e.pending != 0 || !e.slots[0].needSync {
		t.Errorf("after error delivery: errors %d got %d pending %d needSync %v, want 1, 3, 0, true",
			srv.st.WorkerErrors, e.got, e.pending, e.slots[0].needSync)
	}
}

func TestElasticValidation(t *testing.T) {
	cfg := testConfig(t, 2, 1)
	cfg.HeartbeatTimeout = time.Second // sequential engine
	if _, err := Run(cfg); err == nil {
		t.Error("elastic knobs on the sequential engine did not error")
	}

	cfg = testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.MinShards = 1 // no heartbeat timeout
	if _, err := Run(cfg); err == nil {
		t.Error("MinShards without HeartbeatTimeout did not error")
	}

	cfg = testConfig(t, 2, 1)
	cfg.Concurrent = true
	cfg.HeartbeatTimeout = time.Second
	cfg.MinShards = 3 // more than Workers
	if _, err := Run(cfg); err == nil {
		t.Error("MinShards > Workers did not error")
	}

	cfg = testConfig(t, 2, 1)
	cfg.CheckpointEvery = 2 // no path
	if _, err := Run(cfg); err == nil {
		t.Error("CheckpointEvery without CheckpointPath did not error")
	}
}
