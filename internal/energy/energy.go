// Package energy implements the analytical training-cost model that stands
// in for the paper's hardware energy measurements (see DESIGN.md §1). The
// paper reports training energy and training-time model size normalized to
// the fp32 run of the same workload; this package reproduces exactly those
// normalized quantities.
//
// Cost model. One multiply-accumulate on k-bit operands costs
//
//	e(k) = (k/32)² · MACWeight + (k/32) · MoveWeight
//
// relative cost units: the quadratic term models the multiplier array
// (silicon multiplier energy grows ~quadratically with operand width), the
// linear term models operand movement (memory traffic grows linearly with
// width). A training iteration charges every layer's forward MACs once at
// the layer's weight bitwidth and its backward MACs twice (dX and dW
// GEMMs), which is the standard 1:2 FPROP:BPROP cost ratio. Methods that
// keep an fp32 master copy additionally pay 32-bit movement for the master
// update traffic.
package energy

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/quant"
)

// Model holds the cost-model coefficients. The zero value is not useful;
// use DefaultModel (the coefficients used in every experiment) or build
// your own for ablations.
type Model struct {
	// MACWeight scales the quadratic (multiplier) term.
	MACWeight float64
	// MoveWeight scales the linear (data-movement) term.
	MoveWeight float64
	// BackwardFactor is the BPROP:FPROP MAC ratio (2 for the dX+dW GEMMs).
	BackwardFactor float64
	// MasterMovePenalty charges, per parameter per iteration, the extra
	// 32-bit traffic of updating an fp32 master copy (in units of one
	// 32-bit MAC's movement cost).
	MasterMovePenalty float64
}

// DefaultModel returns the coefficients used throughout the experiments.
func DefaultModel() Model {
	return Model{
		MACWeight:         1.0,
		MoveWeight:        0.5,
		BackwardFactor:    2.0,
		MasterMovePenalty: 1.0,
	}
}

// MACCost returns the relative cost of one MAC at bitwidth k.
func (m Model) MACCost(k int) float64 {
	r := float64(k) / 32.0
	return r*r*m.MACWeight + r*m.MoveWeight
}

// LayerCost describes one layer's contribution to an iteration.
type LayerCost struct {
	Name   string
	MACs   int64
	Bits   int
	Params int64
	Master bool
}

// IterationEnergy returns the relative energy of one training iteration
// (forward + backward) over a single sample for the given layer costs.
// Multiply by the batch size for a mini-batch.
func (m Model) IterationEnergy(layers []LayerCost) float64 {
	var e float64
	for _, lc := range layers {
		macs := float64(lc.MACs)
		e += macs * (1 + m.BackwardFactor) * m.MACCost(lc.Bits)
		if lc.Master {
			e += float64(lc.Params) * m.MasterMovePenalty * m.MACCost(32) * m.MoveWeight
		}
	}
	return e
}

// ModelSizeBits returns the training-time parameter storage in bits,
// counting quantized working copies at their bitwidth and fp32 masters at
// 32 bits (the paper's Figure 5 "model size for training").
func ModelSizeBits(params []*nn.Param) int64 {
	var bits int64
	for _, p := range params {
		bits += p.SizeBits()
	}
	return bits
}

// Snapshot captures the per-layer cost inputs from a live model: each
// parameter-bearing layer contributes its MACs at the bitwidth of its
// weight parameter. Layers without a Coster (activations, pooling) are
// free in this model, as their cost neither depends on weight precision
// nor differs between methods.
func Snapshot(layers []nn.Layer) []LayerCost {
	var out []LayerCost
	for _, l := range layers {
		out = append(out, snapshotOne(l)...)
	}
	return out
}

func snapshotOne(l nn.Layer) []LayerCost {
	// Containers recurse so per-layer bitwidths inside blocks are honored.
	switch v := l.(type) {
	case *nn.Sequential:
		var out []LayerCost
		for _, inner := range v.Layers() {
			out = append(out, snapshotOne(inner)...)
		}
		return out
	case *nn.Residual:
		var out []LayerCost
		for _, inner := range v.Inner() {
			out = append(out, snapshotOne(inner)...)
		}
		return out
	}
	c, ok := l.(nn.Coster)
	if !ok {
		return nil
	}
	ps := l.Params()
	lc := LayerCost{Name: l.Name(), MACs: c.MACs(), Bits: 32}
	for _, p := range ps {
		lc.Params += int64(p.Value.Len())
	}
	if len(ps) > 0 {
		lc.Bits = ps[0].Bits()
		lc.Master = ps[0].Master != nil
	}
	return []LayerCost{lc}
}

// Meter accumulates training energy across iterations.
type Meter struct {
	model Model
	total float64
}

// NewMeter returns a meter using the given cost model.
func NewMeter(model Model) *Meter { return &Meter{model: model} }

// Charge adds the cost of batchSize samples through the given layer costs.
func (m *Meter) Charge(layers []LayerCost, batchSize int) {
	m.total += m.model.IterationEnergy(layers) * float64(batchSize)
}

// Total returns the accumulated relative energy.
func (m *Meter) Total() float64 { return m.total }

// Reset clears the accumulator.
func (m *Meter) Reset() { m.total = 0 }

// Model returns the meter's cost model.
func (m *Meter) Model() Model { return m.model }

// FP32Reference computes the energy an fp32 run of the same geometry
// would spend over the given number of samples: every layer at 32 bits.
func (m Model) FP32Reference(layers []LayerCost, samples int64) float64 {
	ref := make([]LayerCost, len(layers))
	copy(ref, layers)
	for i := range ref {
		ref[i].Bits = 32
		ref[i].Master = false
	}
	return m.IterationEnergy(ref) * float64(samples)
}

// FP32SizeBits returns the fp32 model size in bits for normalization.
func FP32SizeBits(params []*nn.Param) int64 {
	var n int64
	for _, p := range params {
		n += int64(p.Value.Len())
	}
	return n * int64(quant.MaxBits)
}

// Normalized returns value/reference, guarding against a zero reference.
func Normalized(value, reference float64) (float64, error) {
	if reference == 0 {
		return 0, fmt.Errorf("energy: zero reference")
	}
	return value / reference, nil
}
