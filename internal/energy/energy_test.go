package energy

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestMACCostMonotoneAndNormalized(t *testing.T) {
	m := DefaultModel()
	prev := 0.0
	for k := 2; k <= 32; k++ {
		c := m.MACCost(k)
		if c <= prev {
			t.Fatalf("MACCost(%d) = %v not increasing", k, c)
		}
		prev = c
	}
	// The quadratic term dominates: halving the bitwidth must save more
	// than half the energy.
	if m.MACCost(16) >= m.MACCost(32)/2 {
		t.Errorf("MACCost(16) = %v, want < half of MACCost(32) = %v", m.MACCost(16), m.MACCost(32))
	}
}

// Property: iteration energy is monotone in bitwidth for any single layer.
func TestIterationEnergyMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		macs := int64(1 + rng.Intn(100000))
		prev := -1.0
		for k := 2; k <= 32; k++ {
			e := m.IterationEnergy([]LayerCost{{MACs: macs, Bits: k}})
			if e <= prev {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMasterPenaltyIncreasesEnergy(t *testing.T) {
	m := DefaultModel()
	base := []LayerCost{{MACs: 1000, Bits: 8, Params: 500}}
	withMaster := []LayerCost{{MACs: 1000, Bits: 8, Params: 500, Master: true}}
	if m.IterationEnergy(withMaster) <= m.IterationEnergy(base) {
		t.Error("master copy did not add energy cost")
	}
}

func TestFP32ReferenceIgnoresQuantization(t *testing.T) {
	m := DefaultModel()
	quantized := []LayerCost{{MACs: 1000, Bits: 4, Params: 100, Master: true}}
	full := []LayerCost{{MACs: 1000, Bits: 32, Params: 100}}
	refQ := m.FP32Reference(quantized, 10)
	refF := m.FP32Reference(full, 10)
	if refQ != refF {
		t.Errorf("FP32Reference depends on input precision: %v vs %v", refQ, refF)
	}
	if refQ != m.IterationEnergy(full)*10 {
		t.Errorf("FP32Reference = %v, want %v", refQ, m.IterationEnergy(full)*10)
	}
}

func TestModelSizeBits(t *testing.T) {
	rng := tensor.NewRNG(1)
	a := tensor.New(100)
	a.FillNormal(rng, 0, 1)
	b := tensor.New(50)
	b.FillNormal(rng, 0, 1)
	pa, pb := nn.NewParam("a", a), nn.NewParam("b", b)
	if err := pa.SetBits(8); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	// pb stays fp32.
	got := ModelSizeBits([]*nn.Param{pa, pb})
	want := int64(100*8 + 50*32)
	if got != want {
		t.Errorf("ModelSizeBits = %d, want %d", got, want)
	}
	if fp := FP32SizeBits([]*nn.Param{pa, pb}); fp != int64(150*32) {
		t.Errorf("FP32SizeBits = %d, want %d", fp, 150*32)
	}
}

func TestSnapshotWalksResNetPerLayer(t *testing.T) {
	m, err := models.ResNet20(models.Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	snap := Snapshot(m.Layers())
	// ResNet-20 has 21 conv layers (stem + 18 block convs + 2 downsample)
	// plus the classifier = 22 parameterized cost entries.
	var withParams int
	var totalMACs int64
	for _, lc := range snap {
		if lc.Params > 0 {
			withParams++
		}
		totalMACs += lc.MACs
	}
	if withParams < 20 {
		t.Errorf("snapshot found %d parameterized layers, want >= 20 (per-layer recursion into blocks)", withParams)
	}
	if totalMACs != m.Net.MACs() {
		t.Errorf("snapshot MACs %d != model MACs %d", totalMACs, m.Net.MACs())
	}
}

func TestSnapshotReflectsBitChanges(t *testing.T) {
	m, err := models.ResNet20(models.Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	em := DefaultModel()
	before := em.IterationEnergy(Snapshot(m.Layers()))
	for _, p := range m.Params() {
		if err := p.SetBits(6); err != nil {
			t.Fatalf("SetBits: %v", err)
		}
	}
	after := em.IterationEnergy(Snapshot(m.Layers()))
	if after >= before {
		t.Errorf("6-bit energy %v >= fp32 energy %v", after, before)
	}
	if after > before*0.2 {
		t.Errorf("6-bit energy %v more than 20%% of fp32 %v; quadratic term should dominate", after, before)
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(DefaultModel())
	lc := []LayerCost{{MACs: 100, Bits: 32}}
	m.Charge(lc, 2)
	m.Charge(lc, 3)
	want := DefaultModel().IterationEnergy(lc) * 5
	if math.Abs(m.Total()-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", m.Total(), want)
	}
	m.Reset()
	if m.Total() != 0 {
		t.Error("Reset did not clear the meter")
	}
}

func TestNormalized(t *testing.T) {
	if _, err := Normalized(1, 0); err == nil {
		t.Error("zero reference did not error")
	}
	v, err := Normalized(1, 4)
	if err != nil || v != 0.25 {
		t.Errorf("Normalized = %v, %v", v, err)
	}
}
