package quant

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNewStateValidation(t *testing.T) {
	for _, k := range []int{MinBits, 8, MaxBits} {
		if _, err := NewState(k); err != nil {
			t.Errorf("NewState(%d): %v", k, err)
		}
	}
	for _, k := range []int{0, 1, 33, -4} {
		if _, err := NewState(k); !errors.Is(err, ErrBits) {
			t.Errorf("NewState(%d) err = %v, want ErrBits", k, err)
		}
	}
}

func TestEpsilonEq2(t *testing.T) {
	// Eq. 2: eps = (max - min) / (2^k - 1)
	cases := []struct {
		min, max float32
		k        int
		want     float64
	}{
		{0, 1, 2, 1.0 / 3},
		{-1, 1, 2, 2.0 / 3},
		{-1, 1, 8, 2.0 / 255},
		{0, 255, 8, 1},
		{-1, 1, 32, 0}, // full precision
		{1, 1, 8, 0},   // degenerate range
		{2, 1, 8, 0},   // inverted range
	}
	for _, tc := range cases {
		got := float64(Epsilon(tc.min, tc.max, tc.k))
		if math.Abs(got-tc.want) > 1e-6 {
			t.Errorf("Epsilon(%v, %v, %d) = %v, want %v", tc.min, tc.max, tc.k, got, tc.want)
		}
	}
}

// Property: eps is monotone non-increasing in k — more bits, finer grid.
func TestEpsilonMonotoneInBitsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		min := float32(rng.Norm())
		max := min + float32(math.Abs(rng.Norm())) + 0.01
		prev := math.Inf(1)
		for k := MinBits; k < MaxBits; k++ {
			e := float64(Epsilon(min, max, k))
			if e > prev {
				return false
			}
			if e <= 0 {
				return false // non-degenerate range must give positive eps below 32 bits
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: snapping is idempotent and bounds the round-off by eps/2
// (interior points) while clamping to [min, max].
func TestSnapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		k := MinBits + rng.Intn(10)
		st, err := NewState(k)
		if err != nil {
			return false
		}
		v := tensor.New(64)
		v.FillNormal(rng, 0, 1)
		orig := v.Clone()
		st.Quantize(v)
		eps := float64(st.Eps)
		if eps <= 0 {
			return false
		}
		for i, q := range v.Data() {
			o := float64(orig.Data()[i])
			if o >= float64(st.Min) && o <= float64(st.Max) {
				if math.Abs(float64(q)-o) > eps/2+1e-6 {
					return false
				}
			}
			if float64(q) < float64(st.Min)-1e-6 || float64(q) > float64(st.Max)+1e-6 {
				return false
			}
		}
		// Idempotence: snapping snapped values changes nothing.
		snapped := v.Clone()
		st.SnapInPlace(snapped)
		for i := range v.Data() {
			if math.Abs(float64(snapped.Data()[i]-v.Data()[i])) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGridLevelCount(t *testing.T) {
	// A k-bit grid over the live range must contain at most 2^k distinct values.
	rng := tensor.NewRNG(44)
	for _, k := range []int{2, 3, 4, 6} {
		st, err := NewState(k)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		v := tensor.New(4096)
		v.FillNormal(rng, 0, 1)
		st.Quantize(v)
		distinct := make(map[float32]bool)
		for _, x := range v.Data() {
			distinct[x] = true
		}
		if len(distinct) > 1<<k {
			t.Errorf("k=%d produced %d distinct levels, want <= %d", k, len(distinct), 1<<k)
		}
	}
}

func TestUpdateInPlaceEq3(t *testing.T) {
	// Weight grid [0, 1] at 2 bits: eps = 1/3. An update of 0.5 must move
	// the weight by exactly trunc(0.5/eps)*eps = 1*eps; an update of 0.2
	// (< eps) must be dropped.
	st := &State{Bits: 2, Min: 0, Max: 1, Eps: 1.0 / 3}
	w := tensor.MustFromSlice([]float32{2.0 / 3, 2.0 / 3, 2.0 / 3}, 3)
	up := tensor.MustFromSlice([]float32{0.5, 0.2, -0.2}, 3)
	uf, err := st.UpdateInPlace(w, up)
	if err != nil {
		t.Fatalf("UpdateInPlace: %v", err)
	}
	if uf != 2 {
		t.Errorf("underflowed = %d, want 2", uf)
	}
	if math.Abs(float64(w.Data()[0])-(2.0/3-1.0/3)) > 1e-6 {
		t.Errorf("w[0] = %v, want 1/3", w.Data()[0])
	}
	if w.Data()[1] != 2.0/3 || w.Data()[2] != 2.0/3 {
		t.Errorf("underflowed updates moved the weight: %v", w.Data())
	}
}

func TestUpdateInPlaceFullPrecision(t *testing.T) {
	var st *State // nil = fp32
	w := tensor.MustFromSlice([]float32{1, 2}, 2)
	up := tensor.MustFromSlice([]float32{0.25, -0.25}, 2)
	uf, err := st.UpdateInPlace(w, up)
	if err != nil {
		t.Fatalf("UpdateInPlace: %v", err)
	}
	if uf != 0 {
		t.Errorf("fp32 underflow count = %d, want 0", uf)
	}
	if w.Data()[0] != 0.75 || w.Data()[1] != 2.25 {
		t.Errorf("fp32 update wrong: %v", w.Data())
	}
}

// TestUpdateInPlaceClampsToRange is the regression test for the missing
// clamp: the doc contract says updated values are "clamped onto the affine
// range", so no update — however large — may push an element off
// [Min, Max].
func TestUpdateInPlaceClampsToRange(t *testing.T) {
	// Grid [0, 3] at 2 bits: eps = 1. Updates of ±10 would land at −7 and
	// +13 without the clamp.
	st := &State{Bits: 2, Min: 0, Max: 3, Eps: 1}
	w := tensor.MustFromSlice([]float32{3, 0, 2}, 3)
	up := tensor.MustFromSlice([]float32{-10, 10, 1}, 3)
	uf, err := st.UpdateInPlace(w, up)
	if err != nil {
		t.Fatalf("UpdateInPlace: %v", err)
	}
	if uf != 0 {
		t.Errorf("underflowed = %d, want 0", uf)
	}
	if got := w.Data()[0]; got != st.Max {
		t.Errorf("w[0] = %v, want clamp to Max %v", got, st.Max)
	}
	if got := w.Data()[1]; got != st.Min {
		t.Errorf("w[1] = %v, want clamp to Min %v", got, st.Min)
	}
	if got := w.Data()[2]; got != 1 {
		t.Errorf("w[2] = %v, want in-range step to 1", got)
	}
	for i, v := range w.Data() {
		if v < st.Min || v > st.Max {
			t.Errorf("w[%d] = %v escaped [%v, %v]", i, v, st.Min, st.Max)
		}
	}
}

func TestUpdateInPlaceShapeError(t *testing.T) {
	st := &State{Bits: 8, Min: 0, Max: 1, Eps: 1.0 / 255}
	w := tensor.New(3)
	up := tensor.New(4)
	if _, err := st.UpdateInPlace(w, up); err == nil {
		t.Error("shape-mismatched update did not error")
	}
}

// Property: quantized updates leave weights on the grid spanned by eps:
// each weight moves by an integer multiple of eps.
func TestUpdateStaysOnGridProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		k := MinBits + rng.Intn(8)
		st, err := NewState(k)
		if err != nil {
			return false
		}
		w := tensor.New(32)
		w.FillNormal(rng, 0, 1)
		st.Quantize(w)
		if st.Eps == 0 {
			return true
		}
		before := w.Clone()
		up := tensor.New(32)
		up.FillNormal(rng, 0, 0.3)
		if _, err := st.UpdateInPlace(w, up); err != nil {
			return false
		}
		for i := range w.Data() {
			delta := float64(w.Data()[i] - before.Data()[i])
			steps := delta / float64(st.Eps)
			if math.Abs(steps-math.Round(steps)) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGavgEq4(t *testing.T) {
	g := tensor.MustFromSlice([]float32{0.1, -0.2, 0.3, -0.4}, 4)
	got := Gavg(g, 0.1)
	want := (1 + 2 + 3 + 4) / 4.0
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Gavg = %v, want %v", got, want)
	}
	if Gavg(g, 0) != GavgFullPrecision {
		t.Error("Gavg with eps=0 should return the full-precision sentinel")
	}
	empty := tensor.New(1)
	empty.Data()[0] = 0
	if Gavg(empty, 0.5) != 0 {
		t.Error("Gavg of zero gradient should be 0")
	}
}

// Property: Gavg scales inversely with eps and is monotone in precision:
// for the same gradients, a higher-precision grid (smaller eps) gives a
// strictly larger Gavg.
func TestGavgMonotoneInPrecisionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		g := tensor.New(16)
		g.FillNormal(rng, 0, 1)
		if g.AbsMean() == 0 {
			return true
		}
		prev := -1.0
		for k := MinBits; k <= 16; k++ {
			eps := Epsilon(-1, 1, k)
			v := Gavg(g, eps)
			if v <= prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnderflowFraction(t *testing.T) {
	g := tensor.MustFromSlice([]float32{0.05, -0.05, 0.5, -0.5}, 4)
	if got := UnderflowFraction(g, 0.1); got != 0.5 {
		t.Errorf("UnderflowFraction = %v, want 0.5", got)
	}
	if got := UnderflowFraction(g, 0); got != 0 {
		t.Errorf("UnderflowFraction(eps=0) = %v, want 0", got)
	}
}

func TestScaleZeroPoint(t *testing.T) {
	st, err := NewState(8)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	v := tensor.MustFromSlice([]float32{-1, 0, 1}, 3)
	st.Refresh(v)
	s, z := st.Scale()
	if s != st.Eps {
		t.Errorf("Scale S = %v, want eps %v", s, st.Eps)
	}
	// r = S(q - Z): q = Z must map to ~min + Z*eps... check Z maps 0 near range.
	r0 := float64(s) * float64(0-z)
	if math.Abs(r0-float64(st.Min)) > float64(st.Eps) {
		t.Errorf("zero point inconsistent: S(0-Z) = %v, min = %v", r0, st.Min)
	}
}

func TestSizeBits(t *testing.T) {
	if got := SizeBits(100, 6); got != 600 {
		t.Errorf("SizeBits = %d, want 600", got)
	}
	if got := SizeBits(0, 32); got != 0 {
		t.Errorf("SizeBits(0) = %d, want 0", got)
	}
}

func TestNaNGradientDoesNotPoisonUpdate(t *testing.T) {
	// Failure injection: a NaN gradient element must not move other
	// weights; the NaN element's own weight becomes NaN only through the
	// plain fp32 path, while the quantized path drops it (trunc(NaN) -> NaN
	// steps... guard documents actual behaviour).
	st := &State{Bits: 4, Min: -1, Max: 1, Eps: 2.0 / 15}
	w := tensor.MustFromSlice([]float32{0, 0.5}, 2)
	up := tensor.MustFromSlice([]float32{float32(math.NaN()), 0.5}, 2)
	if _, err := st.UpdateInPlace(w, up); err != nil {
		t.Fatalf("UpdateInPlace: %v", err)
	}
	if w.Data()[1] == 0.5 {
		t.Error("healthy element did not update alongside NaN neighbour")
	}
}
