// Package quant implements the affine quantization scheme the paper adopts
// from Jacob et al. (CVPR 2018) together with the quantization-underflow
// machinery that Adaptive Precision Training is built on:
//
//   - the affine map r = S·(q − Z) with a per-tensor scale S and zero
//     point Z (§III);
//   - the minimum representable update ε_i = (max Wᵢ − min Wᵢ)/(2^k − 1)
//     (Eq. 2);
//   - the quantized weight-update rule w := w − ⌊lr·g/ε⌋·ε (Eq. 3), whose
//     truncation drops any update smaller than ε — the underflow APT
//     detects and corrects;
//   - the underflow metric Gavg = (1/N)·Σ|g/ε| (Eq. 4).
//
// Quantization is simulated on the float32 grid: a quantized tensor holds
// float32 values that always lie on the affine grid of its current state.
// This is numerically identical to integer storage for every quantity the
// paper studies while keeping the tensor engine uniform, and it is how the
// reference TensorFlow/PyTorch "fake quant" training paths work as well.
package quant

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Bitwidth limits from Algorithm 1: precision never leaves [MinBits,
// MaxBits]. At MaxBits (32) a tensor is treated as full precision.
const (
	MinBits = 2
	MaxBits = 32
)

// ErrBits is returned for bitwidths outside [MinBits, MaxBits].
var ErrBits = errors.New("quant: bitwidth out of range")

// State carries the affine quantization parameters of one tensor: the
// bitwidth k and the grid derived from the tensor's live value range. A nil
// *State means "full precision fp32".
type State struct {
	Bits int     // k: number of bits, in [MinBits, MaxBits]
	Min  float32 // live minimum of the tensor when the grid was refreshed
	Max  float32 // live maximum of the tensor when the grid was refreshed
	Eps  float32 // ε = (Max−Min)/(2^k −1); 0 means full precision
}

// NewState returns a state with bitwidth k and an empty grid; call Refresh
// before use. An error is returned for k outside [MinBits, MaxBits].
func NewState(k int) (*State, error) {
	if k < MinBits || k > MaxBits {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBits, k, MinBits, MaxBits)
	}
	return &State{Bits: k}, nil
}

// FullPrecision reports whether the state behaves as fp32 (k == MaxBits or
// a degenerate grid).
func (s *State) FullPrecision() bool {
	return s == nil || s.Bits >= MaxBits
}

// Epsilon computes Eq. 2 for an explicit range and bitwidth: the minimum
// resolution of a k-bit tensor spanning [min, max]. A degenerate range
// (max <= min) yields 0, which callers must treat as "no grid yet".
func Epsilon(min, max float32, k int) float32 {
	if k >= MaxBits {
		return 0
	}
	span := float64(max) - float64(min)
	if span <= 0 {
		return 0
	}
	// k < MaxBits here, so the shift fits in int64; the integer expression
	// replaces a math.Pow call that ran on every grid refresh of every
	// layer.
	levels := float64(int64(1)<<uint(k) - 1)
	return float32(span / levels)
}

// Refresh recomputes the grid (Min, Max, Eps) from the live values of t.
// The paper re-derives S and Z from the tensor range; we do the same every
// time precision changes or the range drifts.
func (s *State) Refresh(t *tensor.Tensor) {
	min, max := t.MinMax()
	s.Min, s.Max = min, max
	s.Eps = Epsilon(min, max, s.Bits)
}

// Scale returns the affine scale S (identical to Eps for the per-tensor
// min/max scheme) and the zero point Z such that r = S(q − Z) maps
// q ∈ [0, 2^k−1] onto [Min, Max].
func (s *State) Scale() (S float32, Z int32) {
	if s.FullPrecision() || s.Eps == 0 {
		return 1, 0
	}
	return s.Eps, int32(math.Round(float64(-s.Min) / float64(s.Eps)))
}

// SnapInPlace projects every element of t onto the current grid:
// r ↦ Min + round((r−Min)/ε)·ε, clamped to [Min, Max]. With a degenerate
// or full-precision grid it is a no-op.
//
// The snap is an exact projection: the grid arithmetic runs in float64 and
// the two endpoint levels map to Min and Max bit-exactly, so re-deriving
// the grid from a snapped tensor (Refresh) reproduces the same (Min, Max,
// Eps) and a second snap is the identity. Codecs and the broadcast packer
// rely on this idempotence.
func (s *State) SnapInPlace(t *tensor.Tensor) {
	if s.FullPrecision() || s.Eps == 0 {
		return
	}
	lo, hi := float64(s.Min), float64(s.Max)
	levels := float64(int64(1)<<uint(s.Bits) - 1)
	eps := (hi - lo) / levels
	d := t.Data()
	for i, v := range d {
		q := math.Round((float64(v) - lo) / eps)
		switch {
		case q <= 0:
			d[i] = s.Min
		case q >= levels:
			d[i] = s.Max
		default:
			d[i] = float32(lo + q*eps)
		}
	}
}

// Quantize refreshes the grid from t's live range and snaps t onto it.
// This is the entry point used when a layer's bitwidth changes.
func (s *State) Quantize(t *tensor.Tensor) {
	s.Refresh(t)
	s.SnapInPlace(t)
}

// UpdateInPlace applies the paper's Eq. 3 to a weight tensor: each element
// moves by trunc(update/ε)·ε, so any |update| < ε is silently dropped —
// quantization underflow. update is the full already-composed step
// (learning rate, momentum and weight decay folded in by the optimizer),
// applied as w := w − step. After the update the values are clamped onto
// the affine range; the range itself is re-derived lazily by the caller
// via Refresh (mirroring the paper, which recomputes S and Z per tensor).
//
// Note the consequence of the clamp in master-less mode: a k-bit tensor
// cannot represent values off its grid, so the live range is
// non-expanding — Refresh can shrink it but never grow it past the
// initial span. This is the faithful simulation of real k-bit integer
// storage; baselines that need unbounded fp32 drift use the master-copy
// mode, where the clamp never applies.
//
// With a full-precision state the update degenerates to plain SGD.
// It returns the number of elements whose update underflowed to zero.
func (s *State) UpdateInPlace(w, update *tensor.Tensor) (underflowed int, err error) {
	if !w.SameShape(update) {
		return 0, fmt.Errorf("quant: update shape %v does not match weight %v", update.Shape(), w.Shape())
	}
	wd, ud := w.Data(), update.Data()
	if s.FullPrecision() || s.Eps == 0 {
		for i := range wd {
			wd[i] -= ud[i]
		}
		return 0, nil
	}
	eps := float64(s.Eps)
	for i := range wd {
		steps := math.Trunc(float64(ud[i]) / eps) // Eq. 3: ⌊lr·g/ε⌋, toward zero
		if steps == 0 {
			if ud[i] != 0 {
				underflowed++
			}
			continue
		}
		v := wd[i] - float32(steps*eps)
		// Clamp onto the affine range, matching SnapInPlace: Min and Max
		// sit on the grid, so a clamped element stays on it.
		if v < s.Min {
			v = s.Min
		} else if v > s.Max {
			v = s.Max
		}
		wd[i] = v
	}
	return underflowed, nil
}

// Gavg computes Eq. 4 for a gradient tensor under resolution eps: the mean
// of |g/ε| over all elements. It returns +Inf conceptually when eps is 0
// (full precision never underflows); we report a large sentinel instead so
// downstream arithmetic (moving averages, comparisons against thresholds)
// stays finite.
func Gavg(g *tensor.Tensor, eps float32) float64 {
	if g.Len() == 0 {
		return 0
	}
	if eps <= 0 {
		return GavgFullPrecision
	}
	return g.AbsMean() / float64(eps)
}

// GavgFullPrecision is the sentinel Gavg value reported for full-precision
// tensors (ε → 0 ⇒ Gavg → ∞). It is far above any plausible Tmax.
const GavgFullPrecision = 1e12

// UnderflowFraction reports the fraction of elements of g whose scaled
// update |g/ε| falls below 1, i.e. would be dropped by Eq. 3 at unit
// learning rate. This is the alternative metric used by the ablation
// benchmarks.
func UnderflowFraction(g *tensor.Tensor, eps float32) float64 {
	n := g.Len()
	if n == 0 || eps <= 0 {
		return 0
	}
	cnt := 0
	e := float64(eps)
	for _, v := range g.Data() {
		if math.Abs(float64(v)) < e {
			cnt++
		}
	}
	return float64(cnt) / float64(n)
}

// SizeBits returns the storage cost, in bits, of n parameters held at
// bitwidth k (k = 32 for fp32).
func SizeBits(n int, k int) int64 {
	return int64(n) * int64(k)
}
