package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPackRejectsFullPrecision(t *testing.T) {
	v := tensor.New(4)
	if _, err := Pack(v, nil); err == nil {
		t.Error("nil state did not error")
	}
	st := &State{Bits: 32}
	if _, err := Pack(v, st); err == nil {
		t.Error("32-bit state did not error")
	}
}

func TestPackUnpackRoundTripExact(t *testing.T) {
	rng := tensor.NewRNG(5)
	for _, k := range []int{2, 3, 5, 8, 13} {
		st, err := NewState(k)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		v := tensor.New(4, 9) // deliberately non-multiple-of-8 element count
		v.FillNormal(rng, 0, 1)
		st.Quantize(v) // snap onto the grid first
		p, err := Pack(v, st)
		if err != nil {
			t.Fatalf("Pack(k=%d): %v", k, err)
		}
		back, err := p.Unpack(4, 9)
		if err != nil {
			t.Fatalf("Unpack(k=%d): %v", k, err)
		}
		for i := range v.Data() {
			if math.Abs(float64(v.Data()[i]-back.Data()[i])) > 1e-6 {
				t.Fatalf("k=%d round-trip mismatch at %d: %v vs %v",
					k, i, v.Data()[i], back.Data()[i])
			}
		}
	}
}

func TestPackedSizeMatchesAccounting(t *testing.T) {
	// The Packed payload must be exactly ceil(n*k/8) bytes — the number
	// SizeBits/8 rounds to — pinning the simulated accounting to reality.
	rng := tensor.NewRNG(6)
	for _, tc := range []struct{ n, k int }{
		{100, 6}, {64, 8}, {33, 3}, {2, 2}, {1000, 13},
	} {
		st, err := NewState(tc.k)
		if err != nil {
			t.Fatalf("NewState: %v", err)
		}
		v := tensor.New(tc.n)
		v.FillNormal(rng, 0, 1)
		st.Quantize(v)
		p, err := Pack(v, st)
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		wantBytes := (tc.n*tc.k + 7) / 8
		if p.SizeBytes() != wantBytes {
			t.Errorf("n=%d k=%d payload %dB, want %dB", tc.n, tc.k, p.SizeBytes(), wantBytes)
		}
		simBits := SizeBits(tc.n, tc.k)
		if int64(p.SizeBytes()) < simBits/8 || int64(p.SizeBytes()) > simBits/8+1 {
			t.Errorf("packed size %dB inconsistent with SizeBits %d", p.SizeBytes(), simBits)
		}
	}
}

func TestUnpackShapeMismatch(t *testing.T) {
	rng := tensor.NewRNG(7)
	st, err := NewState(4)
	if err != nil {
		t.Fatalf("NewState: %v", err)
	}
	v := tensor.New(10)
	v.FillNormal(rng, 0, 1)
	st.Quantize(v)
	p, err := Pack(v, st)
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	if _, err := p.Unpack(3, 3); err == nil {
		t.Error("wrong-shape unpack did not error")
	}
}

// Property: pack∘unpack is the identity on any grid-snapped tensor for
// arbitrary bitwidths and sizes.
func TestPackRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		k := MinBits + rng.Intn(14)
		n := 1 + rng.Intn(200)
		st, err := NewState(k)
		if err != nil {
			return false
		}
		v := tensor.New(n)
		v.FillNormal(rng, 0, 1)
		st.Quantize(v)
		if st.Eps == 0 {
			return true
		}
		p, err := Pack(v, st)
		if err != nil {
			return false
		}
		back, err := p.Unpack(n)
		if err != nil {
			return false
		}
		for i := range v.Data() {
			if math.Abs(float64(v.Data()[i]-back.Data()[i])) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitStreamHelpers(t *testing.T) {
	buf := make([]byte, 8)
	writeBits(buf, 0, 0b101, 3)
	writeBits(buf, 3, 0b11111, 5)
	writeBits(buf, 8, 0x3FF, 10)
	if got := readBits(buf, 0, 3); got != 0b101 {
		t.Errorf("readBits(0,3) = %b", got)
	}
	if got := readBits(buf, 3, 5); got != 0b11111 {
		t.Errorf("readBits(3,5) = %b", got)
	}
	if got := readBits(buf, 8, 10); got != 0x3FF {
		t.Errorf("readBits(8,10) = %x", got)
	}
}
