package quant

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Bit packing. The training path simulates quantization on the float grid
// (see the package comment), but the memory claim of the paper is about
// *storage*: a k-bit tensor occupies k bits per element. This file makes
// that concrete — it packs a quantized tensor's grid indices into a dense
// bit stream and restores them — and is used by the checkpoint format in
// internal/models and by tests that pin the simulated-size accounting to
// the real encoded size.

// Packed is a bit-packed quantized tensor: ⌈n·k/8⌉ bytes of payload plus
// the affine grid needed to decode. The grid travels as its (Min, Max)
// endpoints so the decoder re-derives the same float64 level spacing the
// snap used — a packed tensor that was on its grid decodes bit-exactly.
type Packed struct {
	Bits  int
	Min   float32
	Max   float32
	Eps   float32 // float32 summary of the spacing; 0 marks a degenerate grid
	Count int
	Data  []byte
}

// Pack encodes t's elements as k-bit grid indices relative to st's grid.
// The tensor must already be snapped onto the grid (indices are derived
// by rounding; values off-grid round to the nearest level). Full-precision
// states cannot be packed. A degenerate grid (constant tensor, ε = 0)
// packs to an empty payload: every element equals Min.
func Pack(t *tensor.Tensor, st *State) (*Packed, error) {
	if st == nil || st.FullPrecision() {
		return nil, fmt.Errorf("quant: cannot bit-pack a full-precision tensor")
	}
	if st.Eps == 0 {
		return &Packed{Bits: st.Bits, Min: st.Min, Max: st.Max, Eps: 0, Count: t.Len()}, nil
	}
	k := st.Bits
	n := t.Len()
	p := &Packed{
		Bits:  k,
		Min:   st.Min,
		Max:   st.Max,
		Eps:   st.Eps,
		Count: n,
		Data:  make([]byte, (n*k+7)/8),
	}
	levels := uint64(1)<<uint(k) - 1
	// The same float64 spacing SnapInPlace projects with, so snapped
	// values recover their level index exactly.
	eps := (float64(st.Max) - float64(st.Min)) / float64(levels)
	lo := float64(st.Min)
	bitPos := 0
	for _, v := range t.Data() {
		q := math.Round((float64(v) - lo) / eps)
		if q < 0 {
			q = 0
		}
		if q > float64(levels) {
			q = float64(levels)
		}
		writeBits(p.Data, bitPos, uint64(q), k)
		bitPos += k
	}
	return p, nil
}

// Unpack decodes the payload back into a float tensor with the given
// shape. The element count must match.
func (p *Packed) Unpack(shape ...int) (*tensor.Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != p.Count {
		return nil, fmt.Errorf("quant: unpack shape %v wants %d elements, packed %d", shape, n, p.Count)
	}
	out := tensor.New(shape...)
	d := out.Data()
	if p.Eps == 0 {
		for i := range d {
			d[i] = p.Min
		}
		return out, nil
	}
	levels := uint64(1)<<uint(p.Bits) - 1
	lo := float64(p.Min)
	eps := (float64(p.Max) - lo) / float64(levels)
	// Integrity check: the float32 Eps summary must agree with the grid
	// the endpoints span. A mismatch means a corrupt record — or one
	// written by the pre-Max format, whose gob decoding leaves Max = 0.
	if rel := math.Abs(eps-float64(p.Eps)) / float64(p.Eps); rel > 1e-3 {
		return nil, fmt.Errorf("quant: unpack: grid endpoints [%v, %v] disagree with eps %v (corrupt or pre-Max-format record)",
			p.Min, p.Max, p.Eps)
	}
	bitPos := 0
	for i := 0; i < p.Count; i++ {
		q := readBits(p.Data, bitPos, p.Bits)
		switch {
		case q == 0:
			d[i] = p.Min
		case q >= levels:
			d[i] = p.Max
		default:
			d[i] = float32(lo + float64(q)*eps)
		}
		bitPos += p.Bits
	}
	return out, nil
}

// SizeBytes returns the payload size.
func (p *Packed) SizeBytes() int { return len(p.Data) }

// writeBits stores the low k bits of v starting at bit position pos
// (little-endian within the byte stream).
func writeBits(buf []byte, pos int, v uint64, k int) {
	for i := 0; i < k; i++ {
		if v&(1<<uint(i)) != 0 {
			buf[(pos+i)/8] |= 1 << uint((pos+i)%8)
		}
	}
}

// readBits extracts k bits starting at bit position pos.
func readBits(buf []byte, pos int, k int) uint64 {
	var v uint64
	for i := 0; i < k; i++ {
		if buf[(pos+i)/8]&(1<<uint((pos+i)%8)) != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}
