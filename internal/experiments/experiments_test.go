package experiments

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every paper artefact must be registered: Figures 1-5 and Table I.
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "table1"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	for _, id := range want {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("fig9"); err == nil {
		t.Error("unknown id did not error")
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"micro", "ci", "paper"} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Errorf("ScaleByName(%s): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("ScaleByName(%s).Name = %s", name, s.Name)
		}
	}
	if s, err := ScaleByName(""); err != nil || s.Name != "ci" {
		t.Errorf("empty scale = (%v, %v), want ci default", s.Name, err)
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale did not error")
	}
}

func TestScaleProfilesAreOrdered(t *testing.T) {
	m, c, p := Micro(), CI(), Paper()
	if !(m.TrainN < c.TrainN && c.TrainN < p.TrainN) {
		t.Error("train sizes not increasing across profiles")
	}
	if !(m.Epochs < c.Epochs && c.Epochs < p.Epochs) {
		t.Error("epochs not increasing across profiles")
	}
	if p.Epochs != 200 || p.InputSize != 32 || p.Width != 1.0 {
		t.Errorf("paper profile deviates from §IV geometry: %+v", p)
	}
	if p.Milestones[0] != 100 || p.Milestones[1] != 150 {
		t.Errorf("paper milestones %v, want [100 150]", p.Milestones)
	}
	if p.Pad != 4 {
		t.Errorf("paper augmentation pad %d, want 4", p.Pad)
	}
}

func TestScaleBuilders(t *testing.T) {
	s := Micro()
	tr, te, err := s.Dataset(10, 0)
	if err != nil {
		t.Fatalf("Dataset: %v", err)
	}
	if tr.Len() != s.TrainN || te.Len() != s.TestN {
		t.Errorf("dataset sizes (%d, %d)", tr.Len(), te.Len())
	}
	if _, err := s.ResNet20(10); err != nil {
		t.Errorf("ResNet20: %v", err)
	}
	if _, err := s.MobileNetV2(10); err != nil {
		t.Errorf("MobileNetV2: %v", err)
	}
	if _, err := s.SmallCNN(10); err != nil {
		t.Errorf("SmallCNN: %v", err)
	}
	if lr := s.Schedule().LR(0); lr != s.LR {
		t.Errorf("schedule base LR = %v", lr)
	}
	if lr := s.ScheduleWarmup().LR(0); lr != 0.01 {
		t.Errorf("warmup LR = %v, want 0.01", lr)
	}
}

func TestClasses100Scaling(t *testing.T) {
	if got := Micro().classes100(); got != 10 {
		t.Errorf("micro classes100 = %d, want 10", got)
	}
	if got := CI().classes100(); got != 20 {
		t.Errorf("ci classes100 = %d, want 20", got)
	}
	if got := Paper().classes100(); got != 100 {
		t.Errorf("paper classes100 = %d, want 100", got)
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	r := NewReport("figX", "A Title", "col1", "column2")
	r.AddRow("a", "1")
	r.AddRow("bb", "2,3")
	r.AddNote("hello %d", 42)
	r.SetSeries("s", []float64{1, 2})

	out := r.Render()
	for _, want := range []string{"figX", "A Title", "col1", "column2", "bb", "note: hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := r.CSV()
	if !strings.Contains(csv, "col1,column2") {
		t.Errorf("CSV header missing: %q", csv)
	}
	if !strings.Contains(csv, `"2,3"`) {
		t.Errorf("CSV did not quote comma cell: %q", csv)
	}
	if len(r.Series["s"]) != 2 {
		t.Error("series not stored")
	}
}

func TestIsWeight(t *testing.T) {
	if !isWeight("resnet20.stem.conv.weight") {
		t.Error("conv weight not recognized")
	}
	if isWeight("resnet20.stem.bn.gamma") || isWeight("weight") {
		t.Error("non-weight recognized")
	}
}

// TestFig1MicroShape runs the cheapest full experiment end-to-end and
// checks the paper's qualitative shape: layer A starts below Tmin, gains
// bits monotonically while starving, and its Gavg recovers toward the
// threshold. Skipped in -short mode (a few seconds of training).
func TestFig1MicroShape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	rep, err := Fig1(Micro(), io.Discard)
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	ga := rep.Series["gavgA"]
	ba := rep.Series["bitsA"]
	if len(ga) != Micro().Epochs || len(ba) != len(ga) {
		t.Fatalf("trace lengths %d/%d, want %d", len(ga), len(ba), Micro().Epochs)
	}
	if ga[0] >= 1.0 {
		t.Errorf("layer A first Gavg = %v, want < Tmin=1 (starving layer)", ga[0])
	}
	// Bits never decrease with Tmax = inf.
	for i := 1; i < len(ba); i++ {
		if ba[i] < ba[i-1] {
			t.Fatalf("bits decreased at epoch %d with Tmax=inf", i)
		}
	}
	if ba[len(ba)-1] <= ba[0] {
		t.Error("starving layer gained no bits")
	}
	// Gavg of layer A improves as precision rises.
	if ga[len(ga)-1] <= ga[0] {
		t.Errorf("layer A Gavg did not recover: %v -> %v", ga[0], ga[len(ga)-1])
	}
}

// TestDistMicroTraffic runs the dist extension end-to-end at Micro scale
// and checks the traffic shape: compressed uplinks beat fp32, and the
// bitwidth-aware broadcast beats the fp32 downlink. Skipped in -short
// mode (a few seconds of training).
func TestDistMicroTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	rep, err := Dist(Micro(), io.Discard)
	if err != nil {
		t.Fatalf("Dist: %v", err)
	}
	traffic := func(label string) (up, down float64) {
		s := rep.Series[label+" traffic"]
		if len(s) != 2 {
			t.Fatalf("missing traffic series for %q", label)
		}
		return s[0], s[1]
	}
	upFP32, downFP32 := traffic("fp32 up / fp32 down")
	up8, _ := traffic("8-bit up / fp32 down")
	upTern, _ := traffic("ternary up / fp32 down")
	_, downAPT := traffic("8-bit up / APT down")
	if !(up8 < upFP32/3) {
		t.Errorf("8-bit uplink %v not well under fp32 %v", up8, upFP32)
	}
	if !(upTern < up8) {
		t.Errorf("ternary uplink %v not under 8-bit %v", upTern, up8)
	}
	if !(downAPT < downFP32/2) {
		t.Errorf("APT downlink %v not under half of fp32 %v", downAPT, downFP32)
	}
}

// TestInferMicroBench runs the serving benchmark extension end-to-end at
// Micro scale: the engine paths must produce positive timings, the
// micro-batching server must coalesce requests, and the JSON report must
// land on disk. Skipped in -short mode (a training run plus benching).
func TestInferMicroBench(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	prev := InferBenchPath
	InferBenchPath = filepath.Join(t.TempDir(), "BENCH_infer.json")
	defer func() { InferBenchPath = prev }()
	rep, err := Infer(Micro(), io.Discard)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	for _, name := range []string{
		"int8_engine_forward_b1", "int8_engine_forward_b4",
		"int8_engine_forward_b16", "int8_engine_forward_b64",
		"float_model_forward_b1", "float_model_forward_b4",
		"float_model_forward_b16", "float_model_forward_b64",
	} {
		s := rep.Series[name]
		if len(s) != 2 || s[0] <= 0 || s[1] <= 0 {
			t.Errorf("series %q = %v, want positive (ns, samples/s)", name, s)
		}
	}
	sv := rep.Series["serving"]
	if len(sv) != 4 {
		t.Fatalf("serving series = %v", sv)
	}
	if sv[3] <= 1 {
		t.Errorf("serving mean batch %v, want > 1 (micro-batching coalesces)", sv[3])
	}
	raw, err := os.ReadFile(InferBenchPath)
	if err != nil {
		t.Fatalf("JSON report not written: %v", err)
	}
	var doc struct {
		Rows    []struct{ Name string } `json:"rows"`
		Serving struct {
			Requests uint64 `json:"requests"`
		} `json:"serving"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("JSON report invalid: %v", err)
	}
	// The int8 and float batch sweeps, 1/4/16/64 each.
	if len(doc.Rows) != 8 || doc.Serving.Requests == 0 {
		t.Errorf("JSON report shape: %d rows, %d served requests", len(doc.Rows), doc.Serving.Requests)
	}
}
