package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// InferBenchPath is where the Infer experiment writes its JSON report.
var InferBenchPath = "BENCH_infer.json"

// inferBenchRow is one measured configuration of the serving report.
type inferBenchRow struct {
	Name string `json:"name"`
	// NsPerOp is the wall time of one Forward call at this batch size.
	NsPerOp float64 `json:"ns_per_op"`
	Batch   int     `json:"batch"`
	// SamplesPerSec is the resulting single-engine throughput.
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// inferLoopShare is the per-stage decomposition of one batch-64 int8
// forward (infer.Engine.ForwardProfile): wall time split into the
// im2col gather/pack, the packed GEMM, the requant epilogue and
// everything else. Best-of-N profiled forwards, since the shared
// reference machine is noisy and the floor is the honest kernel cost.
type inferLoopShare struct {
	Batch     int     `json:"batch"`
	Runs      int     `json:"runs"`
	TotalNs   float64 `json:"total_ns"`
	Im2colNs  float64 `json:"im2col_ns"`
	GEMMNs    float64 `json:"gemm_ns"`
	RequantNs float64 `json:"requant_ns"`
	OtherNs   float64 `json:"other_ns"`
}

// inferConvLowering records one conv layer's compile-time lowering
// decision (implicit vs materialized im2col) and the rule that made it.
type inferConvLowering struct {
	Layer string `json:"layer"`
	Mode  string `json:"mode"`
	Why   string `json:"why"`
}

// inferServingStats is the micro-batching server section.
type inferServingStats struct {
	Workers       int     `json:"workers"`
	Clients       int     `json:"clients"`
	Requests      uint64  `json:"requests"`
	Batches       uint64  `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
}

// inferSIMDInfo records the kernel dispatch the numbers were measured
// under; without it a portable-fallback run is indistinguishable from an
// assembly-path regression when comparing reports across machines.
type inferSIMDInfo struct {
	Active   bool   `json:"active"`
	Features string `json:"features"`
}

// inferBenchReport is the BENCH_infer.json document.
type inferBenchReport struct {
	Generated  string          `json:"generated"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	SIMD       inferSIMDInfo   `json:"simd"`
	Scale      string          `json:"scale"`
	Rows       []inferBenchRow `json:"rows"`
	// LoopShare and ConvLowerings track where the batch-64 forward
	// spends its time and which im2col lowering each conv layer
	// compiled onto — the machine-readable form of the "kernel-bound,
	// not packer-bound" claim.
	LoopShare     inferLoopShare      `json:"loop_share"`
	ConvLowerings []inferConvLowering `json:"conv_lowerings"`
	Serving       inferServingStats   `json:"serving"`
	// SeedBaseline freezes the seed commit's per-sample interpreter on
	// the same workload (dc0a200, 1-core reference machine), so the
	// speedup trajectory stays machine-readable.
	SeedBaseline []inferBenchRow `json:"seed_baseline"`
}

// seedInferBaseline: seed per-sample interpreter, SmallCNN @16×16,
// batch 64, measured on the 1-core reference Xeon @ 2.10GHz.
var seedInferBaseline = []inferBenchRow{
	{Name: "seed_interpreter_forward", NsPerOp: 161930599, Batch: 64, SamplesPerSec: 64 / 0.161930599},
}

// Infer is an extension artefact (not a paper figure): inference and
// serving benchmarks for the int8 engine — single-sample latency, batched
// throughput, int8-vs-float comparison, and the micro-batching server
// under concurrent clients. Writes BENCH_infer.json next to the text
// table. Regenerate the PERF.md serving section with
//
//	aptbench -exp infer -scale ci
func Infer(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(4, 9)
	if err != nil {
		return nil, err
	}
	m, err := s.SmallCNN(4)
	if err != nil {
		return nil, err
	}
	if log != nil {
		fmt.Fprintf(log, "-- infer: training smallcnn at %s scale --\n", s.Name)
	}
	if _, err := s.execute(runSpec{model: m, train: tr, test: te, seed: 977}, log); err != nil {
		return nil, err
	}
	calibN := 64
	if calibN > tr.Len() {
		calibN = tr.Len()
	}
	calib, _, err := data.PackBatch(tr, calibN)
	if err != nil {
		return nil, err
	}
	eng, err := infer.Compile(m, infer.Config{Calibration: calib})
	if err != nil {
		return nil, err
	}

	const batch = 64
	x, _, err := data.PackBatch(te, batch)
	if err != nil {
		return nil, err
	}
	one, err := tensor.FromSlice(x.Data()[:3*s.InputSize*s.InputSize], 1, 3, s.InputSize, s.InputSize)
	if err != nil {
		return nil, err
	}

	rep := NewReport("infer", fmt.Sprintf("int8 serving engine, SmallCNN on SynthCIFAR4 (%d×%d)", s.InputSize, s.InputSize),
		"path", "batch", "latency", "samples/s")
	jrep := inferBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       inferSIMDInfo{Active: tensor.SIMDActive(), Features: tensor.SIMDFeatures()},
		Scale:      s.Name,
	}
	measure := func(name string, n int, f func() error) (float64, error) {
		ns, err := benchNs(f)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", name, err)
		}
		sps := float64(n) / (ns / 1e9)
		jrep.Rows = append(jrep.Rows, inferBenchRow{Name: name, NsPerOp: ns, Batch: n, SamplesPerSec: sps})
		rep.AddRow(name, fmt.Sprintf("%d", n), time.Duration(ns).Round(time.Microsecond).String(), fmt.Sprintf("%.0f", sps))
		rep.SetSeries(fmt.Sprintf("%s_b%d", name, n), []float64{ns, sps})
		return ns, nil
	}

	// Batch-size latency sweep: the serving latency curve (how micro-batch
	// coalescing amortizes the per-call cost) as machine-readable rows,
	// not just the two endpoints.
	var int1, int64ns float64
	for _, bs := range []int{1, 4, 16, 64} {
		xb := one
		if bs > 1 {
			xb, err = tensor.FromSlice(x.Data()[:bs*3*s.InputSize*s.InputSize], bs, 3, s.InputSize, s.InputSize)
			if err != nil {
				return nil, err
			}
		}
		ns, err := measure("int8_engine_forward", bs, func() error { _, err := eng.Forward(xb); return err })
		if err != nil {
			return nil, err
		}
		switch bs {
		case 1:
			int1 = ns
		case batch:
			int64ns = ns
		}
	}
	// Float baseline over the same batch grid, so every int8 row has a
	// like-for-like float partner in the report.
	var f64 float64
	for _, bs := range []int{1, 4, 16, 64} {
		xb := one
		if bs > 1 {
			xb, err = tensor.FromSlice(x.Data()[:bs*3*s.InputSize*s.InputSize], bs, 3, s.InputSize, s.InputSize)
			if err != nil {
				return nil, err
			}
		}
		ns, err := measure("float_model_forward", bs, func() error { _, err := m.Net.Forward(xb, false); return err })
		if err != nil {
			return nil, err
		}
		if bs == batch {
			f64 = ns
		}
	}

	// Per-stage loop share of the batch-64 int8 forward, plus each conv
	// layer's compile-time lowering decision.
	x64, err := tensor.FromSlice(x.Data()[:batch*3*s.InputSize*s.InputSize], batch, 3, s.InputSize, s.InputSize)
	if err != nil {
		return nil, err
	}
	const profRuns = 12
	var prof *infer.ForwardProfile
	for r := 0; r < profRuns; r++ {
		_, p, err := eng.ForwardProfile(x64)
		if err != nil {
			return nil, fmt.Errorf("profile forward: %w", err)
		}
		if prof == nil || p.Total < prof.Total {
			prof = p
		}
	}
	jrep.LoopShare = inferLoopShare{
		Batch: batch, Runs: profRuns,
		TotalNs:   float64(prof.Total.Nanoseconds()),
		Im2colNs:  float64(prof.Im2col.Nanoseconds()),
		GEMMNs:    float64(prof.GEMM.Nanoseconds()),
		RequantNs: float64(prof.Requant.Nanoseconds()),
		OtherNs:   float64(prof.Other.Nanoseconds()),
	}
	lows := eng.ConvLowerings()
	lowParts := make([]string, 0, len(lows))
	for _, l := range lows {
		jrep.ConvLowerings = append(jrep.ConvLowerings, inferConvLowering{Layer: l.Layer, Mode: l.Mode, Why: l.Why})
		lowParts = append(lowParts, fmt.Sprintf("%s=%s", l.Layer, l.Mode))
	}
	pct := func(d time.Duration) float64 { return 100 * float64(d) / float64(prof.Total) }
	rep.AddNote("loop share at batch %d (best of %d profiled forwards): im2col %.0f%%, GEMM %.0f%%, requant %.0f%%, other %.0f%% of %.2fms.",
		batch, profRuns, pct(prof.Im2col), pct(prof.GEMM), pct(prof.Requant), pct(prof.Other),
		float64(prof.Total.Nanoseconds())/1e6)
	rep.AddNote("conv lowerings: %s (reasons in %s).", strings.Join(lowParts, ", "), InferBenchPath)
	rep.SetSeries("loop_share_b64", []float64{
		jrep.LoopShare.TotalNs, jrep.LoopShare.Im2colNs, jrep.LoopShare.GEMMNs,
		jrep.LoopShare.RequantNs, jrep.LoopShare.OtherNs,
	})

	// Micro-batching server under concurrent clients.
	workers := runtime.GOMAXPROCS(0)
	if workers > 4 {
		workers = 4
	}
	srv, err := serve.New(serve.Config{
		Engine:  eng, // sample geometry defaults from eng.InputShape
		Workers: workers, MaxBatch: batch, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	const clients, perClient = 16, 24
	var wg sync.WaitGroup
	wg.Add(clients)
	serveErrs := make(chan error, clients)
	sampleLen := 3 * s.InputSize * s.InputSize
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				img := x.Data()[((c*perClient+r)%batch)*sampleLen:][:sampleLen]
				if _, err := srv.Classify(img); err != nil {
					serveErrs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(serveErrs)
	for err := range serveErrs {
		srv.Close()
		return nil, fmt.Errorf("serving clients: %w", err)
	}
	st := srv.Stats()
	srv.Close()
	jrep.Serving = inferServingStats{
		Workers: workers, Clients: clients,
		Requests: st.Requests, Batches: st.Batches, MeanBatch: st.MeanBatch,
		P50Ms: st.P50Ms, P99Ms: st.P99Ms, ThroughputRPS: st.Throughput,
	}
	rep.AddRow("serve (16 clients)", fmt.Sprintf("%.1f", st.MeanBatch),
		fmt.Sprintf("p50 %.1fms p99 %.1fms", st.P50Ms, st.P99Ms),
		fmt.Sprintf("%.0f", st.Throughput))
	rep.SetSeries("serving", []float64{st.P50Ms, st.P99Ms, st.Throughput, st.MeanBatch})

	jrep.SeedBaseline = seedInferBaseline
	if s.InputSize == 16 {
		rep.AddNote("vs seed per-sample interpreter (batch %d): %.1fx faster (%.1fms -> %.1fms).",
			batch, seedInferBaseline[0].NsPerOp/int64ns, seedInferBaseline[0].NsPerOp/1e6, int64ns/1e6)
	}
	dispatch := "portable Go kernels (no SIMD dispatch)"
	if tensor.SIMDActive() {
		dispatch = fmt.Sprintf("both paths on %s assembly kernels", tensor.SIMDFeatures())
	}
	rep.AddNote("int8 vs float forward at batch %d: %.2fx (%s).", batch, f64/int64ns, dispatch)
	rep.AddNote("single-sample int8 latency %.2fms; micro-batching amortizes it to %.0f samples/s at mean batch %.1f.",
		int1/1e6, st.Throughput, st.MeanBatch)

	data, err := json.MarshalIndent(jrep, "", "  ")
	if err != nil {
		return nil, err
	}
	data = append(data, '\n')
	if err := os.WriteFile(InferBenchPath, data, 0o644); err != nil {
		return nil, fmt.Errorf("write %s: %w", InferBenchPath, err)
	}
	rep.AddNote("wrote %s.", InferBenchPath)
	return rep, nil
}

// benchNs times f, warming up once and then averaging over enough
// iterations to cover ~300ms of wall time.
func benchNs(f func() error) (float64, error) {
	if err := f(); err != nil {
		return 0, err
	}
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	per := time.Since(start)
	iters := int(300 * time.Millisecond / (per + 1))
	if iters < 3 {
		iters = 3
	}
	if iters > 10000 {
		iters = 10000
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
}
