package experiments

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/train"
)

// Runner regenerates one paper artefact at a given scale.
type Runner func(s Scale, log io.Writer) (*Report, error)

// Registry maps experiment ids to runners.
var registry = map[string]Runner{
	"fig1":   Fig1,
	"fig2":   Fig2,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"table1": Table1,
	// ablate, dist and infer are extensions (not paper artefacts); they
	// are excluded from -all and run only when requested by id.
	"ablate": Ablate,
	"dist":   Dist,
	"infer":  Infer,
}

// extensionIDs are registered runners that are not paper artefacts; -all
// skips them.
var extensionIDs = map[string]bool{"ablate": true, "dist": true, "infer": true}

// IDs returns the paper-artefact experiment ids in order (extensions such
// as "ablate" are addressable via ByID but excluded here so -all
// reproduces exactly the paper's evaluation).
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		if !extensionIDs[id] {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// ByID resolves an experiment id.
func ByID(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// runSpec is one training run within an experiment.
type runSpec struct {
	model    *models.Model
	train    data.Dataset
	test     data.Dataset
	apt      *core.Controller
	schedule optim.Schedule
	gradHook train.Hook
	postHook train.Hook
	seed     uint64
}

// execute runs a spec under a scale's common hyper-parameters (the
// paper's SGD with momentum 0.9 and weight decay 1e-4).
func (s Scale) execute(spec runSpec, log io.Writer) (*train.History, error) {
	sched := spec.schedule
	if sched == nil {
		sched = s.Schedule()
	}
	return train.Run(train.Config{
		Model: spec.model, Train: spec.train, Test: spec.test,
		BatchSize: s.Batch, Epochs: s.Epochs,
		Schedule: sched, Momentum: 0.9, WeightDecay: 1e-4,
		APT:      spec.apt,
		GradHook: spec.gradHook, PostStepHook: spec.postHook,
		Seed: s.Seed ^ spec.seed, Log: log,
	})
}

// aptController builds a controller with the paper's defaults overridden
// by tmin/tmax. The profiling interval follows Algorithm 2's guidance — "a
// few times in each epoch suffice" — by sampling four times per epoch at
// the profile's batch geometry.
func (s Scale) aptController(m *models.Model, tmin, tmax float64, initBits int) (*core.Controller, error) {
	cfg := core.DefaultConfig()
	cfg.Tmin = tmin
	if tmax != 0 {
		cfg.Tmax = tmax
	}
	if initBits != 0 {
		cfg.InitBits = initBits
	}
	batches := (s.TrainN + s.Batch - 1) / s.Batch
	cfg.Interval = batches / 4
	if cfg.Interval < 1 {
		cfg.Interval = 1
	}
	return core.NewController(cfg, m.Params())
}

// accSeries extracts the per-epoch test accuracies from a history.
func accSeries(h *train.History) []float64 {
	out := make([]float64, len(h.Epochs))
	for i, e := range h.Epochs {
		out[i] = e.TestAcc
	}
	return out
}

// gavgSeries extracts the per-epoch mean Gavg from a history.
func gavgSeries(h *train.History) []float64 {
	out := make([]float64, len(h.Epochs))
	for i, e := range h.Epochs {
		out[i] = e.MeanGavg
	}
	return out
}
