package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
)

// Dist is an extension artefact (not a paper figure): parameter-server
// traffic accounting for the deployment setting TernGrad targets, run on
// the concurrent data-parallel engine. It sweeps the uplink gradient
// codec (fp32, 8-bit affine, ternary) with fp32 weight broadcast, then
// adds APT on the server with the bitwidth-aware broadcast — the
// scenario where the downlink shrinks with the layers' precision state.
// Regenerate the PERF.md traffic table with
//
//	aptbench -exp dist -scale ci
func Dist(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(4, 5)
	if err != nil {
		return nil, err
	}
	build := func() (*models.Model, error) {
		return models.SmallCNN(models.Config{Classes: 4, InputSize: s.InputSize, Width: 1, Seed: s.Seed + 113})
	}
	const workers = 4

	type scenario struct {
		label      string
		codec      func() dist.GradCodec
		apt        bool
		quantBcast bool
	}
	scenarios := []scenario{
		{"fp32 up / fp32 down", func() dist.GradCodec { return dist.FP32Codec{} }, false, false},
		{"8-bit up / fp32 down", func() dist.GradCodec { return dist.KBitCodec{Bits: 8} }, false, false},
		{"ternary up / fp32 down", func() dist.GradCodec { return dist.NewTernaryCodec(s.Seed ^ 0x7E1) }, false, false},
		{"8-bit up / APT down", func() dist.GradCodec { return dist.KBitCodec{Bits: 8} }, true, true},
	}

	rep := NewReport("dist", fmt.Sprintf("Parameter-server traffic, %d concurrent workers, SmallCNN on SynthCIFAR4", workers),
		"scenario", "accuracy", "up bytes", "down bytes", "rounds", "mean bits")
	var fp32Down, aptDown int64
	for _, sc := range scenarios {
		cfg := dist.Config{
			Workers: workers, Build: build, Train: tr, Test: te,
			BatchSize: s.Batch, Epochs: s.Epochs, LR: s.LR, Momentum: 0.9,
			Codec: sc.codec(), Seed: s.Seed, Concurrent: true,
		}
		if sc.apt {
			aptCfg := core.DefaultConfig()
			aptCfg.Interval = 1 // observe every parameter-server round
			cfg.APT = &aptCfg
			cfg.QuantBroadcast = sc.quantBcast
		}
		if log != nil {
			fmt.Fprintf(log, "-- dist: %s --\n", sc.label)
		}
		st, err := dist.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("dist %s: %w", sc.label, err)
		}
		rep.AddRow(sc.label,
			fmtPct(st.FinalAcc()),
			fmt.Sprintf("%d", st.UpBytes),
			fmt.Sprintf("%d", st.DownBytes),
			fmt.Sprintf("%d", st.Rounds),
			fmt.Sprintf("%.2f", st.MeanBits))
		rep.SetSeries(sc.label+" acc", st.Accs)
		rep.SetSeries(sc.label+" traffic", []float64{float64(st.UpBytes), float64(st.DownBytes)})
		if !sc.apt {
			if sc.label == "fp32 up / fp32 down" {
				fp32Down = st.DownBytes
			}
		} else if sc.quantBcast {
			aptDown = st.DownBytes
		}
	}
	if fp32Down > 0 && aptDown > 0 {
		rep.AddNote("bitwidth-aware broadcast spends %.2fx the fp32 downlink (%d vs %d bytes): weights ship bit-packed at each layer's current APT bitwidth.",
			float64(aptDown)/float64(fp32Down), aptDown, fp32Down)
	}
	rep.AddNote("uplink codecs run in the server ingest path; worker forward/backward passes run concurrently (one goroutine per worker).")

	faults, err := distFaultSweep(s, build, tr, te, log)
	if err != nil {
		return nil, err
	}
	rep.SetArtifact("dist_faults", faults)
	for _, row := range faults.Rows {
		rep.AddNote("fault sweep: %d injected straggler(s) -> %.1f steps/s (%d rounds, %d lost, %d respawned)",
			row.Stragglers, row.StepsPerSec, row.Rounds, row.WorkersLost, row.Respawns)
	}
	return rep, nil
}

// DistFaultRow is one fault-sweep measurement: training throughput with a
// fixed number of injected stragglers, as recorded into the benchmark
// JSON under "dist_faults".
type DistFaultRow struct {
	Stragglers    int     `json:"stragglers"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	Rounds        int64   `json:"rounds"`
	WorkersLost   int64   `json:"workers_lost"`
	Respawns      int64   `json:"respawns"`
	PartialRounds int64   `json:"partial_rounds"`
	WallMS        float64 `json:"wall_ms"`
}

// DistFaultSweep is the "dist_faults" artifact: elastic-membership
// throughput under 0, 1 and 2 injected stragglers.
type DistFaultSweep struct {
	Workers     int            `json:"workers"`
	HeartbeatMS float64        `json:"heartbeat_ms"`
	Rows        []DistFaultRow `json:"rows"`
}

// distFaultSweep measures elastic-membership throughput degradation:
// the same fp32 run with 0, 1 and 2 workers scripted to hang forever in
// round 1. Each straggler costs roughly one heartbeat timeout (detection)
// plus a respawn resync; rounds stay full-strength because the respawn
// budget matches the injected faults.
func distFaultSweep(s Scale, build func() (*models.Model, error), tr, te data.Dataset, log io.Writer) (*DistFaultSweep, error) {
	const workers = 4
	const heartbeat = 250 * time.Millisecond
	sweep := &DistFaultSweep{Workers: workers, HeartbeatMS: float64(heartbeat) / float64(time.Millisecond)}
	for nf := 0; nf <= 2; nf++ {
		var faults []dist.Fault
		for w := 1; w <= nf; w++ {
			faults = append(faults, dist.Fault{Worker: w, Round: 1, Kind: dist.FaultHang, Delay: time.Hour})
		}
		cfg := dist.Config{
			Workers: workers, Build: build, Train: tr, Test: te,
			BatchSize: s.Batch, Epochs: s.Epochs, LR: s.LR, Momentum: 0.9,
			Codec: dist.FP32Codec{}, Seed: s.Seed, Concurrent: true,
			HeartbeatTimeout: heartbeat, MaxRespawns: nf,
			Fault: dist.NewFaultPlan(faults...),
		}
		if log != nil {
			fmt.Fprintf(log, "-- dist fault sweep: %d straggler(s) --\n", nf)
		}
		start := time.Now()
		st, err := dist.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("dist fault sweep (%d stragglers): %w", nf, err)
		}
		wall := time.Since(start)
		sweep.Rows = append(sweep.Rows, DistFaultRow{
			Stragglers:    nf,
			StepsPerSec:   float64(st.Rounds) / wall.Seconds(),
			Rounds:        int64(st.Rounds),
			WorkersLost:   int64(st.WorkersLost),
			Respawns:      int64(st.Respawns),
			PartialRounds: int64(st.PartialRounds),
			WallMS:        float64(wall) / float64(time.Millisecond),
		})
	}
	return sweep, nil
}
