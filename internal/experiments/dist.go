package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/models"
)

// Dist is an extension artefact (not a paper figure): parameter-server
// traffic accounting for the deployment setting TernGrad targets, run on
// the concurrent data-parallel engine. It sweeps the uplink gradient
// codec (fp32, 8-bit affine, ternary) with fp32 weight broadcast, then
// adds APT on the server with the bitwidth-aware broadcast — the
// scenario where the downlink shrinks with the layers' precision state.
// Regenerate the PERF.md traffic table with
//
//	aptbench -exp dist -scale ci
func Dist(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(4, 5)
	if err != nil {
		return nil, err
	}
	build := func() (*models.Model, error) {
		return models.SmallCNN(models.Config{Classes: 4, InputSize: s.InputSize, Width: 1, Seed: s.Seed + 113})
	}
	const workers = 4

	type scenario struct {
		label      string
		codec      func() dist.GradCodec
		apt        bool
		quantBcast bool
	}
	scenarios := []scenario{
		{"fp32 up / fp32 down", func() dist.GradCodec { return dist.FP32Codec{} }, false, false},
		{"8-bit up / fp32 down", func() dist.GradCodec { return dist.KBitCodec{Bits: 8} }, false, false},
		{"ternary up / fp32 down", func() dist.GradCodec { return dist.NewTernaryCodec(s.Seed ^ 0x7E1) }, false, false},
		{"8-bit up / APT down", func() dist.GradCodec { return dist.KBitCodec{Bits: 8} }, true, true},
	}

	rep := NewReport("dist", fmt.Sprintf("Parameter-server traffic, %d concurrent workers, SmallCNN on SynthCIFAR4", workers),
		"scenario", "accuracy", "up bytes", "down bytes", "rounds", "mean bits")
	var fp32Down, aptDown int64
	for _, sc := range scenarios {
		cfg := dist.Config{
			Workers: workers, Build: build, Train: tr, Test: te,
			BatchSize: s.Batch, Epochs: s.Epochs, LR: s.LR, Momentum: 0.9,
			Codec: sc.codec(), Seed: s.Seed, Concurrent: true,
		}
		if sc.apt {
			aptCfg := core.DefaultConfig()
			aptCfg.Interval = 1 // observe every parameter-server round
			cfg.APT = &aptCfg
			cfg.QuantBroadcast = sc.quantBcast
		}
		if log != nil {
			fmt.Fprintf(log, "-- dist: %s --\n", sc.label)
		}
		st, err := dist.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("dist %s: %w", sc.label, err)
		}
		rep.AddRow(sc.label,
			fmtPct(st.FinalAcc()),
			fmt.Sprintf("%d", st.UpBytes),
			fmt.Sprintf("%d", st.DownBytes),
			fmt.Sprintf("%d", st.Rounds),
			fmt.Sprintf("%.2f", st.MeanBits))
		rep.SetSeries(sc.label+" acc", st.Accs)
		rep.SetSeries(sc.label+" traffic", []float64{float64(st.UpBytes), float64(st.DownBytes)})
		if !sc.apt {
			if sc.label == "fp32 up / fp32 down" {
				fp32Down = st.DownBytes
			}
		} else if sc.quantBcast {
			aptDown = st.DownBytes
		}
	}
	if fp32Down > 0 && aptDown > 0 {
		rep.AddNote("bitwidth-aware broadcast spends %.2fx the fp32 downlink (%d vs %d bytes): weights ship bit-packed at each layer's current APT bitwidth.",
			float64(aptDown)/float64(fp32Down), aptDown, fp32Down)
	}
	rep.AddNote("uplink codecs run in the server ingest path; worker forward/backward passes run concurrently (one goroutine per worker).")
	return rep, nil
}
