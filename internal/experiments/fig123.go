package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
)

// Fig1 reproduces Figure 1: the Gavg trajectory of two layers over the
// epochs of an APT run with Tmin = 1.0 and Tmax = ∞ — one layer that
// starts below the threshold (underflowing, so APT lifts its bitwidth
// until Gavg clears Tmin) and one that starts comfortably above it and is
// topped up whenever it decays to the threshold.
func Fig1(s Scale, log io.Writer) (*Report, error) {
	m, err := s.ResNet20(10)
	if err != nil {
		return nil, err
	}
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	const tmin = 1.0
	ctrl, err := s.aptController(m, tmin, math.Inf(1), 6)
	if err != nil {
		return nil, err
	}
	if _, err := s.execute(runSpec{model: m, train: tr, test: te, apt: ctrl, seed: 0xF16_1}, log); err != nil {
		return nil, err
	}

	// Pick the traced layers: the weight parameter whose first recorded
	// Gavg is lowest (layer A, under threshold) and the one whose first
	// Gavg is highest (layer B, easy to update).
	var nameA, nameB string
	lowest, highest := math.Inf(1), math.Inf(-1)
	for _, name := range ctrl.TracedParams() {
		tr := ctrl.GavgTrace(name)
		if len(tr) == 0 || !isWeight(name) {
			continue
		}
		if tr[0] < lowest {
			lowest, nameA = tr[0], name
		}
		if tr[0] > highest && tr[0] < 1e9 {
			highest, nameB = tr[0], name
		}
	}
	if nameA == "" || nameB == "" {
		return nil, fmt.Errorf("experiments: fig1 found no traced weight layers")
	}

	rep := NewReport("fig1", "Gavg v.s. Epoch for two layers (APT, Tmin=1.0, Tmax=inf)",
		"epoch", "Gavg layer A ("+nameA+")", "bits A", "Gavg layer B ("+nameB+")", "bits B")
	ga, gb := ctrl.GavgTrace(nameA), ctrl.GavgTrace(nameB)
	ba, bb := ctrl.BitsTrace(nameA), ctrl.BitsTrace(nameB)
	for e := range ga {
		rep.AddRow(fmt.Sprintf("%d", e),
			fmt.Sprintf("%.3f", ga[e]), fmt.Sprintf("%d", ba[e]),
			fmt.Sprintf("%.3f", gb[e]), fmt.Sprintf("%d", bb[e]))
	}
	rep.SetSeries("gavgA", ga)
	rep.SetSeries("gavgB", gb)
	rep.SetSeries("bitsA", intsToFloats(ba))
	rep.SetSeries("bitsB", intsToFloats(bb))
	rep.AddNote("Tmin=%.1f; layer A starts under the threshold and gains bits until Gavg clears it; layer B is topped up whenever decay pulls it to the threshold.", tmin)
	return rep, nil
}

// Fig2 reproduces Figure 2: test accuracy vs epoch for ResNet-20 on
// SynthCIFAR-10 under fp32, 16-bit fixed, 8-bit fixed and APT starting at
// 6 bits. It also verifies the paper's diagnosis that the 8-bit model's
// Gavg collapses by an order of magnitude within the first quarter of
// training.
func Fig2(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	type variant struct {
		label string
		bits  int // 0 = fp32, -1 = APT
	}
	variants := []variant{
		{"fp32", 0},
		{"16-bit", 16},
		{"8-bit", 8},
		{"APT (init 6-bit)", -1},
	}
	series := make(map[string][]float64, len(variants))
	gavg8 := []float64(nil)
	header := []string{"epoch"}
	for _, v := range variants {
		header = append(header, v.label)
	}
	rep := NewReport("fig2", "Test Accuracy v.s. Epoch for ResNet20 on SynthCIFAR10", header...)

	for _, v := range variants {
		m, err := s.ResNet20(10)
		if err != nil {
			return nil, err
		}
		spec := runSpec{model: m, train: tr, test: te, seed: 0xF16_2}
		switch {
		case v.bits == -1:
			ctrl, err := s.aptController(m, 6.0, math.Inf(1), 6)
			if err != nil {
				return nil, err
			}
			spec.apt = ctrl
		case v.bits > 0:
			if _, err := baselines.FixedBits(m.Params(), v.bits); err != nil {
				return nil, err
			}
		default:
			if _, err := baselines.FP32(m.Params()); err != nil {
				return nil, err
			}
		}
		if log != nil {
			fmt.Fprintf(log, "-- fig2: %s --\n", v.label)
		}
		h, err := s.execute(spec, log)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", v.label, err)
		}
		series[v.label] = accSeries(h)
		if v.bits == 8 {
			gavg8 = gavgSeries(h)
		}
	}
	for e := 0; e < s.Epochs; e++ {
		row := []string{fmt.Sprintf("%d", e)}
		for _, v := range variants {
			row = append(row, fmtPct(series[v.label][e]))
		}
		rep.AddRow(row...)
	}
	for _, v := range variants {
		rep.SetSeries(v.label, series[v.label])
	}
	rep.SetSeries("gavg8bit", gavg8)
	if len(gavg8) > 1 {
		rep.AddNote("8-bit Gavg decayed from %.3g to %.3g (paper: from ~1 to ~1e-1 within the first 50 of 200 epochs) — model-wide quantization underflow slows the 8-bit run.",
			gavg8[0], gavg8[len(gavg8)-1])
	}
	return rep, nil
}

// Fig3 reproduces Figure 3: per-layer bitwidth vs epoch for the APT run —
// the first conv, the classifier and two middle layers, showing layer-wise
// heterogeneous precision growth that accelerates after the LR decay.
func Fig3(s Scale, log io.Writer) (*Report, error) {
	m, err := s.ResNet20(10)
	if err != nil {
		return nil, err
	}
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	ctrl, err := s.aptController(m, 6.0, math.Inf(1), 6)
	if err != nil {
		return nil, err
	}
	if _, err := s.execute(runSpec{model: m, train: tr, test: te, apt: ctrl, seed: 0xF16_3}, log); err != nil {
		return nil, err
	}
	var weights []string
	for _, name := range ctrl.TracedParams() {
		if isWeight(name) && len(ctrl.BitsTrace(name)) > 0 {
			weights = append(weights, name)
		}
	}
	if len(weights) < 4 {
		return nil, fmt.Errorf("experiments: fig3 needs >= 4 weight layers, have %d", len(weights))
	}
	picks := []string{
		weights[0],
		weights[len(weights)/3],
		weights[2*len(weights)/3],
		weights[len(weights)-1],
	}
	rep := NewReport("fig3", "Layer-wise Bitwidth v.s. Epoch for ResNet20 on SynthCIFAR10 (APT)",
		append([]string{"epoch"}, picks...)...)
	epochs := len(ctrl.BitsTrace(picks[0]))
	for e := 0; e < epochs; e++ {
		row := []string{fmt.Sprintf("%d", e)}
		for _, name := range picks {
			row = append(row, fmt.Sprintf("%d", ctrl.BitsTrace(name)[e]))
		}
		rep.AddRow(row...)
	}
	for _, name := range picks {
		rep.SetSeries(name, intsToFloats(ctrl.BitsTrace(name)))
	}
	rep.AddNote("LR decays at epochs %v; falling loss shrinks gradients, pushing Gavg under Tmin and driving late-epoch bit growth (the paper's first/last layers reach 13 bits by epoch 100 of 200).", s.Milestones)
	return rep, nil
}

func isWeight(name string) bool {
	n := len(name)
	const suffix = ".weight"
	return n > len(suffix) && name[n-len(suffix):] == suffix
}

func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
