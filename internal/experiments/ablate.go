package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// Ablate is an extension beyond the paper's artefacts: a grid over APT's
// design choices (DESIGN.md §5) — policy step size, EMA decay, metric
// variant and profiling interval — each trained on the shared workload
// and reported with final accuracy, energy and memory. It quantifies how
// sensitive the headline result is to the pieces Algorithm 1 and 2 fix by
// fiat.
func Ablate(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	type variant struct {
		label  string
		mutate func(*core.Config)
	}
	variants := []variant{
		{"baseline (paper)", func(*core.Config) {}},
		{"step=2", func(c *core.Config) { c.Step = 2 }},
		{"ema=0.9 (fast)", func(c *core.Config) { c.EMADecay = 0.9 }},
		{"ema=0.1 (slow)", func(c *core.Config) { c.EMADecay = 0.1 }},
		{"metric=underflow-fraction", func(c *core.Config) { c.Metric = core.MetricUnderflowFraction }},
		{"interval=1 (every iter)", func(c *core.Config) { c.Interval = 1 }},
		{"init=4-bit", func(c *core.Config) { c.InitBits = 4 }},
		{"init=8-bit", func(c *core.Config) { c.InitBits = 8 }},
	}
	rep := NewReport("ablate", "APT design-choice ablations (extension, not a paper artefact)",
		"variant", "best accuracy", "normalized energy", "normalized memory", "mean bits")
	var accs []float64
	for _, v := range variants {
		m, err := s.ResNet20(10)
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig()
		cfg.Tmin = 6.0
		cfg.Tmax = math.Inf(1)
		batches := (s.TrainN + s.Batch - 1) / s.Batch
		if cfg.Interval = batches / 4; cfg.Interval < 1 {
			cfg.Interval = 1
		}
		v.mutate(&cfg)
		ctrl, err := core.NewController(cfg, m.Params())
		if err != nil {
			return nil, err
		}
		if log != nil {
			fmt.Fprintf(log, "-- ablate: %s --\n", v.label)
		}
		h, err := s.execute(runSpec{model: m, train: tr, test: te, apt: ctrl, seed: 0xAB1A7E}, log)
		if err != nil {
			return nil, fmt.Errorf("ablate %s: %w", v.label, err)
		}
		accs = append(accs, h.BestAcc())
		rep.AddRow(v.label, fmtPct(h.BestAcc()), fmtNorm(h.NormalizedEnergy()),
			fmtNorm(h.NormalizedSize()), fmt.Sprintf("%.2f", ctrl.MeanBits()))
	}
	rep.SetSeries("accuracy", accs)
	rep.AddNote("§IV-A claims the initial bitwidth barely matters (\"an initial bitwidth other than 6 leads to similar results\") — compare the init=4/init=8 rows against the baseline.")
	return rep, nil
}
