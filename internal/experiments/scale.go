// Package experiments regenerates every table and figure of the paper's
// evaluation section (Figures 1–5 and Table I) on the SynthCIFAR
// workloads, at three scales: Micro (seconds; unit tests and testing.B
// benchmarks), CI (minutes on one CPU; the default for cmd/aptbench) and
// Paper (the full 200-epoch geometry for machines with time to spare).
// Each runner returns a Report whose rows mirror the paper's artefact and
// whose raw series feed the shape-check tests.
package experiments

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Scale is an experiment size profile.
type Scale struct {
	Name      string
	TrainN    int
	TestN     int
	InputSize int
	Width     float64 // backbone width multiplier
	Epochs    int
	Batch     int
	Noise     float64
	Seed      uint64
	LR        float64
	// Milestones are the step-schedule epochs (the paper's 100/150 scaled
	// to the epoch budget).
	Milestones []int
	// Pad is the augmentation padding (the paper's 4, scaled).
	Pad int
}

// Micro is the smallest profile: a few seconds per run. The precision
// ramp has little room in eight epochs, so Micro checks mechanics rather
// than end-accuracy shape.
func Micro() Scale {
	return Scale{
		Name: "micro", TrainN: 256, TestN: 128, InputSize: 12, Width: 0.25,
		Epochs: 8, Batch: 32, Noise: 0.5, Seed: 11, LR: 0.1,
		Milestones: []int{5, 7}, Pad: 1,
	}
}

// CI is the default profile: a minute or two per run on one CPU. The
// milestones sit late (2/3 and 13/15 of the budget) so APT's precision
// ramp — ~6 epochs from the 6-bit start — still leaves most of the
// high-LR phase at usable precision, preserving the paper's ratio of
// ramp to schedule.
func CI() Scale {
	return Scale{
		Name: "ci", TrainN: 1024, TestN: 384, InputSize: 16, Width: 0.25,
		Epochs: 30, Batch: 64, Noise: 0.8, Seed: 11, LR: 0.1,
		Milestones: []int{20, 26}, Pad: 2,
	}
}

// Paper is the full geometry of §IV: 32×32 inputs, full-width backbones,
// 200 epochs, LR decay at 100/150 and pad-4 crop augmentation.
func Paper() Scale {
	return Scale{
		Name: "paper", TrainN: 50000, TestN: 10000, InputSize: 32, Width: 1.0,
		Epochs: 200, Batch: 128, Noise: 0.8, Seed: 11, LR: 0.1,
		Milestones: []int{100, 150}, Pad: 4,
	}
}

// ScaleByName resolves a profile name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "micro":
		return Micro(), nil
	case "ci", "":
		return CI(), nil
	case "paper":
		return Paper(), nil
	default:
		return Scale{}, fmt.Errorf("experiments: unknown scale %q (want micro, ci or paper)", name)
	}
}

// Dataset builds the SynthCIFAR task with the given class count, wrapping
// the training split in the paper's pad/crop/flip augmentation.
func (s Scale) Dataset(classes int, seedOffset uint64) (train, test data.Dataset, err error) {
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: classes, Train: s.TrainN, Test: s.TestN,
		Size: s.InputSize, Seed: s.Seed + seedOffset, Noise: s.Noise,
	})
	if err != nil {
		return nil, nil, err
	}
	aug, err := data.NewAugmented(tr, s.Pad, s.InputSize, tensor.NewRNG(s.Seed^0x5EED+seedOffset))
	if err != nil {
		return nil, nil, err
	}
	return aug, te, nil
}

// ResNet20 builds the scaled ResNet-20.
func (s Scale) ResNet20(classes int) (*models.Model, error) {
	return models.ResNet20(models.Config{
		Classes: classes, InputSize: s.InputSize, Width: s.Width, Seed: s.Seed + 101,
	})
}

// ResNet110 builds the scaled ResNet-110.
func (s Scale) ResNet110(classes int) (*models.Model, error) {
	return models.ResNet110(models.Config{
		Classes: classes, InputSize: s.InputSize, Width: s.Width, Seed: s.Seed + 103,
	})
}

// MobileNetV2 builds the scaled MobileNetV2.
func (s Scale) MobileNetV2(classes int) (*models.Model, error) {
	return models.MobileNetV2(models.Config{
		Classes: classes, InputSize: s.InputSize, Width: s.Width, Seed: s.Seed + 107,
	})
}

// SmallCNN builds the compact backbone (used by Micro-scale artefacts
// where a 20-layer network would not fit the time budget).
func (s Scale) SmallCNN(classes int) (*models.Model, error) {
	return models.SmallCNN(models.Config{
		Classes: classes, InputSize: s.InputSize, Width: 1, Seed: s.Seed + 109,
	})
}

// Schedule returns the paper's step schedule scaled to the profile.
func (s Scale) Schedule() optim.Schedule {
	return optim.StepSchedule{Base: s.LR, Milestones: s.Milestones, Factor: 0.1}
}

// ScheduleWarmup returns the paper's CIFAR-100 warm-up schedule (§IV):
// LR 0.01 for the first two epochs, then the step schedule.
func (s Scale) ScheduleWarmup() optim.Schedule {
	warm := 2
	if s.Epochs < 10 {
		warm = 1
	}
	return optim.WarmupSchedule{Warm: 0.01, WarmEpochs: warm, Inner: s.Schedule()}
}
