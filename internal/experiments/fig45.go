package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
	"repro/internal/train"
)

// Fig4 reproduces Figure 4: normalized training energy to reach each of a
// ladder of target accuracies, for fixed 12/14/16/32-bit training and APT
// (Tmin = 6.0, init 6-bit). As in the paper, energies are normalized to
// the 32-bit run's full-training cost; low-bitwidth fixed models miss the
// highest targets entirely (the paper's 12-bit column is absent at 91.75%
// and 92%).
func Fig4(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	type variant struct {
		label string
		bits  int // 0 = fp32, -1 = APT
	}
	variants := []variant{
		{"12-bit", 12}, {"14-bit", 14}, {"16-bit", 16}, {"32-bit", 0}, {"APT", -1},
	}
	hists := make(map[string]*train.History, len(variants))
	var fp32Hist *train.History
	for _, v := range variants {
		m, err := s.ResNet20(10)
		if err != nil {
			return nil, err
		}
		spec := runSpec{model: m, train: tr, test: te, seed: 0xF16_4}
		switch {
		case v.bits == -1:
			ctrl, err := s.aptController(m, 6.0, math.Inf(1), 6)
			if err != nil {
				return nil, err
			}
			spec.apt = ctrl
		case v.bits > 0:
			if _, err := baselines.FixedBits(m.Params(), v.bits); err != nil {
				return nil, err
			}
		default:
			if _, err := baselines.FP32(m.Params()); err != nil {
				return nil, err
			}
		}
		if log != nil {
			fmt.Fprintf(log, "-- fig4: %s --\n", v.label)
		}
		h, err := s.execute(spec, log)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", v.label, err)
		}
		hists[v.label] = h
		if v.bits == 0 {
			fp32Hist = h
		}
	}

	// The paper's x-axis spans 91%–92% in 0.25% steps — the upper band of
	// what the workload can reach. We map that to four targets ending at
	// the best accuracy the fp32 run sustains, spaced like the paper's.
	best := fp32Hist.BestAcc()
	step := 0.01
	if s.Epochs <= 8 {
		step = 0.02 // micro runs are noisier; widen the ladder
	}
	targets := []float64{best - 3*step, best - 2*step, best - step, best}

	header := []string{"target accuracy"}
	for _, v := range variants {
		header = append(header, v.label)
	}
	rep := NewReport("fig4", "Normalized Training Energy v.s. Bitwidth for ResNet20 on SynthCIFAR10", header...)
	ref := fp32Hist.FP32Energy
	var aptEnergies, e12 []float64
	for _, t := range targets {
		row := []string{fmtPct(t)}
		for _, v := range variants {
			h := hists[v.label]
			cum, _, reached := h.EnergyAtEpochTo(t)
			if !reached {
				row = append(row, "—")
				if v.label == "APT" {
					aptEnergies = append(aptEnergies, math.NaN())
				}
				if v.label == "12-bit" {
					e12 = append(e12, math.NaN())
				}
				continue
			}
			norm := cum / ref
			row = append(row, fmtNorm(norm))
			if v.label == "APT" {
				aptEnergies = append(aptEnergies, norm)
			}
			if v.label == "12-bit" {
				e12 = append(e12, norm)
			}
		}
		rep.AddRow(row...)
	}
	rep.SetSeries("targets", targets)
	rep.SetSeries("apt", aptEnergies)
	rep.SetSeries("12bit", e12)
	for _, v := range variants {
		rep.SetSeries("acc/"+v.label, accSeries(hists[v.label]))
		final := hists[v.label].Epochs[len(hists[v.label].Epochs)-1].CumEnergy / ref
		rep.SetSeries("fullenergy/"+v.label, []float64{final})
	}
	rep.AddNote("energies normalized to the 32-bit run's full-training cost (paper Fig. 4); '—' = target not reached within the epoch budget.")
	return rep, nil
}

// Fig5 reproduces Figure 5: the (accuracy, normalized energy) and
// (accuracy, normalized training model size) scatter obtained by sweeping
// the Gavg threshold Tmin across 0.1–100 for full-length APT runs.
func Fig5(s Scale, log io.Writer) (*Report, error) {
	tr, te, err := s.Dataset(10, 2)
	if err != nil {
		return nil, err
	}
	tmins := []float64{0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0}
	if s.Epochs <= 8 {
		tmins = []float64{0.1, 1.0, 10.0, 100.0}
	}
	rep := NewReport("fig5", "Resource Consumption for Training v.s. Test Accuracy (Tmin sweep)",
		"Tmin", "test accuracy", "normalized energy", "normalized model size", "mean bits")
	var accs, energies, sizes []float64
	for _, tmin := range tmins {
		m, err := s.ResNet20(10)
		if err != nil {
			return nil, err
		}
		ctrl, err := s.aptController(m, tmin, math.Inf(1), 6)
		if err != nil {
			return nil, err
		}
		if log != nil {
			fmt.Fprintf(log, "-- fig5: Tmin=%g --\n", tmin)
		}
		h, err := s.execute(runSpec{model: m, train: tr, test: te, apt: ctrl, seed: 0xF16_5}, log)
		if err != nil {
			return nil, fmt.Errorf("fig5 Tmin=%g: %w", tmin, err)
		}
		acc := h.BestAcc()
		ne := h.NormalizedEnergy()
		ns := h.NormalizedSize()
		accs = append(accs, acc)
		energies = append(energies, ne)
		sizes = append(sizes, ns)
		rep.AddRow(fmt.Sprintf("%g", tmin), fmtPct(acc), fmtNorm(ne), fmtNorm(ns),
			fmt.Sprintf("%.2f", ctrl.MeanBits()))
	}
	rep.SetSeries("tmin", tmins)
	rep.SetSeries("accuracy", accs)
	rep.SetSeries("energy", energies)
	rep.SetSeries("size", sizes)
	rep.AddNote("higher Tmin buys accuracy with energy/memory; the paper reports a plateau past Tmin≈1 where extra energy brings little improvement, and memory follows the energy trend.")
	return rep, nil
}
