package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/baselines"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// classes100 returns the class count standing in for CIFAR-100 at this
// scale: the full 100 classes need tens of thousands of samples to be
// learnable, so the smaller profiles use a coarser many-class task with
// the same per-class sample budget.
func (s Scale) classes100() int {
	switch {
	case s.TrainN >= 20000:
		return 100
	case s.TrainN >= 1000:
		return 20
	default:
		return 10
	}
}

// table1Method is one comparison row.
type table1Method struct {
	label     string
	bprop     string
	paperOpt  string // the optimizer the original work used (Table I)
	runC100   bool   // also run the CIFAR-100 column (TWN, DoReFa, APT)
	construct func(params []*nn.Param, seed uint64) (baselines.Setup, error)
	apt       bool
}

// Table1 reproduces Table I: the quantization-method comparison. Every
// method trains with our common SGD loop (the paper's point is that APT
// matches master-copy methods without their memory cost); the paper's
// original optimizer is reported alongside. The added final column is the
// training-time memory relative to fp32, which the paper discusses in
// prose ("no savings in memory usage for training" for master-copy
// methods).
func Table1(s Scale, log io.Writer) (*Report, error) {
	methods := []table1Method{
		{label: "BNN", bprop: "FP32", paperOpt: "Adam",
			construct: func(ps []*nn.Param, _ uint64) (baselines.Setup, error) { return baselines.BNN(ps) }},
		{label: "TWN", bprop: "FP32", paperOpt: "BinaryRelax", runC100: true,
			construct: func(ps []*nn.Param, _ uint64) (baselines.Setup, error) { return baselines.TWN(ps) }},
		{label: "TTQ", bprop: "FP32", paperOpt: "Adam",
			construct: func(ps []*nn.Param, _ uint64) (baselines.Setup, error) { return baselines.TTQ(ps) }},
		{label: "DoReFa Net", bprop: "FP32", paperOpt: "Adam", runC100: true,
			construct: func(ps []*nn.Param, _ uint64) (baselines.Setup, error) { return baselines.DoReFa(ps, 8) }},
		{label: "TernGrad", bprop: "FP32*", paperOpt: "Adam",
			construct: func(ps []*nn.Param, seed uint64) (baselines.Setup, error) {
				return baselines.TernGrad(ps, tensor.NewRNG(seed))
			}},
		{label: "WAGE", bprop: "8-bit", paperOpt: "SGD",
			construct: func(ps []*nn.Param, _ uint64) (baselines.Setup, error) { return baselines.WAGE(ps) }},
		{label: "E2-Train", bprop: "FP32", paperOpt: "SGD",
			construct: func(ps []*nn.Param, seed uint64) (baselines.Setup, error) {
				return baselines.E2Train(ps, 0.2, tensor.NewRNG(seed))
			}},
		{label: "APT", bprop: "Adaptive", paperOpt: "SGD", runC100: true, apt: true},
	}

	tr10, te10, err := s.Dataset(10, 10)
	if err != nil {
		return nil, err
	}
	c100 := s.classes100()
	tr100, te100, err := s.Dataset(c100, 20)
	if err != nil {
		return nil, err
	}

	rep := NewReport("table1", "Comparison of Network Quantisation Methods",
		"Method", "BPROP precision", "Optimizer", "SynthCIFAR10", fmt.Sprintf("SynthCIFAR%d", c100), "train mem vs fp32")

	var accs10, mems []float64
	var labelsOrder []string
	for _, meth := range methods {
		backbone := func(classes int) (*models.Model, error) { return s.ResNet20(classes) }
		if s.Name == "paper" && meth.runC100 {
			// The paper's CIFAR-100 rows use ResNet-110; the smaller
			// profiles substitute ResNet-20 to stay within CPU budget.
			backbone = func(classes int) (*models.Model, error) { return s.ResNet20(classes) }
		}
		switch meth.label {
		case "TernGrad":
			backbone = func(classes int) (*models.Model, error) {
				return models.CifarNet(models.Config{Classes: classes, InputSize: s.InputSize, Width: s.Width, Seed: s.Seed + 211})
			}
		case "WAGE":
			backbone = func(classes int) (*models.Model, error) {
				return models.VGGSmall(models.Config{Classes: classes, InputSize: s.InputSize, Width: s.Width, Seed: s.Seed + 223})
			}
		}

		acc10, mem10, err := s.table1Run(meth, backbone, tr10, te10, 10, log)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", meth.label, err)
		}
		acc100Cell := "NA"
		if meth.runC100 {
			c100Backbone := backbone
			if s.Name == "paper" {
				c100Backbone = func(classes int) (*models.Model, error) { return s.ResNet110(classes) }
			}
			acc100, _, err := s.table1Run(meth, c100Backbone, tr100, te100, c100, log)
			if err != nil {
				return nil, fmt.Errorf("table1 %s (c%d): %w", meth.label, c100, err)
			}
			acc100Cell = fmtPct(acc100)
		}
		opt := "SGD"
		if meth.paperOpt != "SGD" {
			opt = fmt.Sprintf("SGD (orig: %s)", meth.paperOpt)
		}
		rep.AddRow(meth.label, meth.bprop, opt, fmtPct(acc10), acc100Cell, fmtNorm(mem10))
		accs10 = append(accs10, acc10)
		mems = append(mems, mem10)
		labelsOrder = append(labelsOrder, meth.label)
	}

	// APT on MobileNetV2, the paper's extra CIFAR-10 row (93.96%).
	mbv2, err := s.MobileNetV2(10)
	if err != nil {
		return nil, err
	}
	accMB, memMB, err := s.table1Run(table1Method{label: "APT (MobileNetV2)", apt: true},
		func(int) (*models.Model, error) { return mbv2, nil }, tr10, te10, 10, log)
	if err != nil {
		return nil, fmt.Errorf("table1 APT MobileNetV2: %w", err)
	}
	rep.AddRow("APT (MobileNetV2)", "Adaptive", "SGD", fmtPct(accMB), "NA", fmtNorm(memMB))
	accs10 = append(accs10, accMB)
	mems = append(mems, memMB)
	labelsOrder = append(labelsOrder, "APT (MobileNetV2)")

	rep.SetSeries("acc10", accs10)
	rep.SetSeries("mem", mems)
	for i, l := range labelsOrder {
		rep.SetSeries("acc10/"+l, []float64{accs10[i]})
		rep.SetSeries("mem/"+l, []float64{mems[i]})
	}
	rep.AddNote("FP32* — TernGrad's ternary gradients apply to worker-to-server traffic; weights accumulate in fp32.")
	rep.AddNote("'train mem vs fp32' counts working + master parameter copies (paper §IV-C: master-copy methods save no training memory; APT and WAGE do).")
	return rep, nil
}

// table1Run trains one method on one dataset pair and returns (best
// accuracy, normalized training memory).
func (s Scale) table1Run(meth table1Method, backbone func(classes int) (*models.Model, error),
	trd, ted data.Dataset, classes int, log io.Writer) (float64, float64, error) {

	m, err := backbone(classes)
	if err != nil {
		return 0, 0, err
	}
	spec := runSpec{model: m, train: trd, test: ted, seed: 0x7AB1e}
	var setup baselines.Setup
	if meth.apt {
		ctrl, err := s.aptController(m, 6.0, math.Inf(1), 6)
		if err != nil {
			return 0, 0, err
		}
		spec.apt = ctrl
	} else {
		setup, err = meth.construct(m.Params(), s.Seed^0xC0FFEE)
		if err != nil {
			return 0, 0, err
		}
		spec.gradHook = setup.GradHook
		spec.postHook = setup.PostStepHook
	}
	if classes > 10 {
		spec.schedule = s.ScheduleWarmup()
	}
	if log != nil {
		fmt.Fprintf(log, "-- table1: %s (%d classes, %s) --\n", meth.label, classes, m.Name)
	}
	h, err := s.execute(spec, log)
	if err != nil {
		return 0, 0, err
	}
	return h.BestAcc(), h.NormalizedSize(), nil
}
