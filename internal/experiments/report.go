package experiments

import (
	"fmt"
	"strings"
)

// Report is the rendered output of one experiment: a titled table whose
// rows mirror the paper's figure series or table rows, plus free-form
// notes and the raw numeric series used by the shape-check tests.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Series holds named numeric traces (e.g. per-epoch accuracy) for
	// programmatic assertions and CSV export.
	Series map[string][]float64
	// Artifacts holds machine-readable side outputs keyed by the
	// top-level JSON field they land in; the aptbench driver merges them
	// into the benchmark JSON report (BENCH_tensor.json), preserving
	// whatever else the file holds.
	Artifacts map[string]any
}

// NewReport constructs an empty report.
func NewReport(id, title string, header ...string) *Report {
	return &Report{ID: id, Title: title, Header: header, Series: make(map[string][]float64)}
}

// AddRow appends one table row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a free-form note rendered under the table.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// SetSeries stores a named numeric trace.
func (r *Report) SetSeries(name string, values []float64) { r.Series[name] = values }

// SetArtifact stores a machine-readable side output under the top-level
// JSON key the benchmark report will carry it as.
func (r *Report) SetArtifact(key string, v any) {
	if r.Artifacts == nil {
		r.Artifacts = make(map[string]any)
	}
	r.Artifacts[key] = v
}

// Render returns the report as an aligned text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the header and rows as comma-separated values (cells with
// commas are quoted).
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Header)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fmtPct(v float64) string  { return fmt.Sprintf("%.2f%%", 100*v) }
func fmtNorm(v float64) string { return fmt.Sprintf("%.3f", v) }
