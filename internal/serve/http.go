package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/tensor"
)

// HTTP surface: POST /classify, GET /healthz, GET /stats.
//
// /classify accepts one sample or a list; each sample travels through the
// micro-batching queue individually, so concurrent clients (and the
// samples of one multi-sample request) coalesce into shared engine
// batches:
//
//	{"input": [c·h·w floats]}        -> {"class": 3}
//	{"inputs": [[...], [...], ...]}  -> {"classes": [3, 1]}
//
// A full queue answers 503 (backpressure; clients retry), a bad payload
// 400, an engine failure 500. Admission is bounded before the queue is
// ever touched: request bodies are capped at maxBodyBytes and one
// request may carry at most maxInputsPerRequest samples, so an oversized
// POST cannot sidestep the queue's backpressure by sheer payload size.

const (
	// maxBodyBytes bounds a /classify request body (64 MiB ≈ a
	// 1024-sample batch of 128×128 RGB floats with JSON overhead).
	maxBodyBytes = 64 << 20
	// maxInputsPerRequest bounds the samples one request may fan out
	// into the queue.
	maxInputsPerRequest = 1024
)

// classifyRequest is the /classify payload.
type classifyRequest struct {
	Input  []float32   `json:"input,omitempty"`
	Inputs [][]float32 `json:"inputs,omitempty"`
}

type classifyResponse struct {
	Class   *int  `json:"class,omitempty"`
	Classes []int `json:"classes,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the HTTP mux for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	switch {
	case req.Input != nil && req.Inputs != nil:
		httpError(w, http.StatusBadRequest, `pass either "input" or "inputs", not both`)
	case len(req.Inputs) > maxInputsPerRequest:
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("request carries %d samples, max %d per request", len(req.Inputs), maxInputsPerRequest))
	case req.Input != nil:
		class, err := s.Classify(req.Input)
		if err != nil {
			httpError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{Class: &class})
	case req.Inputs != nil:
		classes, err := s.classifyMany(req.Inputs)
		if err != nil {
			httpError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{Classes: classes})
	default:
		httpError(w, http.StatusBadRequest, `missing "input" or "inputs"`)
	}
}

// classifyMany submits every sample concurrently so they can share
// micro-batches; the first error wins.
func (s *Server) classifyMany(inputs [][]float32) ([]int, error) {
	classes := make([]int, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	wg.Add(len(inputs))
	for i := range inputs {
		go func(i int) {
			defer wg.Done()
			classes[i], errs[i] = s.Classify(inputs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return classes, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, tensor.ErrShape):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
