package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/tensor"
)

// HTTP surface: POST /classify, GET /healthz, GET /readyz, GET /stats,
// POST /admin/reload.
//
// /classify accepts one sample or a list; each sample travels through the
// micro-batching queue individually, so concurrent clients (and the
// samples of one multi-sample request) coalesce into shared engine
// batches:
//
//	{"input": [c·h·w floats]}        -> {"class": 3}
//	{"inputs": [[...], [...], ...]}  -> {"classes": [3, 1]}
//
// Requests run under the client's connection context plus an optional
// deadline: a "deadline_ms" payload field (or Config.DefaultDeadline when
// the field is absent). A request whose deadline expires before its batch
// runs answers 504 and its queued work is dropped before the GEMM; a
// client that disconnects gets the nginx-convention 499 and is likewise
// lazily dropped.
//
// A full queue answers 503 (backpressure; clients retry), a bad payload
// 400, an engine failure or panic 500. Admission is bounded before the
// queue is ever touched: request bodies are capped at maxBodyBytes and
// one request may carry at most maxInputsPerRequest samples, so an
// oversized POST cannot sidestep the queue's backpressure by sheer
// payload size.

const (
	// maxBodyBytes bounds a /classify request body (64 MiB ≈ a
	// 1024-sample batch of 128×128 RGB floats with JSON overhead).
	maxBodyBytes = 64 << 20
	// maxInputsPerRequest bounds the samples one request may fan out
	// into the queue.
	maxInputsPerRequest = 1024
	// maxFanout bounds the goroutines one multi-sample request may hold
	// concurrently in the queue; remaining samples are submitted as
	// earlier ones complete.
	maxFanout = 64
	// statusClientClosedRequest is nginx's convention for "the client
	// went away before we could answer".
	statusClientClosedRequest = 499
)

// classifyRequest is the /classify payload.
type classifyRequest struct {
	Input  []float32   `json:"input,omitempty"`
	Inputs [][]float32 `json:"inputs,omitempty"`
	// DeadlineMs, when positive, bounds this request's total time in
	// milliseconds (queue wait + inference); expiry answers 504.
	DeadlineMs int `json:"deadline_ms,omitempty"`
}

type classifyResponse struct {
	Class   *int  `json:"class,omitempty"`
	Classes []int `json:"classes,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// reloadResponse is the /admin/reload success payload.
type reloadResponse struct {
	Version uint64 `json:"version"`
}

// Handler returns the HTTP mux for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/admin/reload", s.handleReload)
	return mux
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req classifyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	if req.DeadlineMs < 0 {
		httpError(w, http.StatusBadRequest, "negative deadline_ms")
		return
	}
	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMs > 0 {
		deadline = time.Duration(req.DeadlineMs) * time.Millisecond
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	switch {
	case req.Input != nil && req.Inputs != nil:
		httpError(w, http.StatusBadRequest, `pass either "input" or "inputs", not both`)
	case len(req.Inputs) > maxInputsPerRequest:
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("request carries %d samples, max %d per request", len(req.Inputs), maxInputsPerRequest))
	case req.Input != nil:
		class, err := s.ClassifyCtx(ctx, req.Input)
		if err != nil {
			httpError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{Class: &class})
	case req.Inputs != nil:
		classes, err := s.classifyMany(ctx, req.Inputs)
		if err != nil {
			httpError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, classifyResponse{Classes: classes})
	default:
		httpError(w, http.StatusBadRequest, `missing "input" or "inputs"`)
	}
}

// classifyMany submits the samples through a bounded worker pool (at
// most maxFanout concurrent queue entries, not one goroutine per sample)
// so they can share micro-batches; the first error wins and cancels the
// rest — once one sample bounces with ErrOverloaded the remaining ones
// are not submitted at all.
func (s *Server) classifyMany(ctx context.Context, inputs [][]float32) ([]int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	classes := make([]int, len(inputs))
	fanout := len(inputs)
	if fanout > maxFanout {
		fanout = maxFanout
	}
	var (
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	idx := make(chan int)
	wg.Add(fanout)
	for w := 0; w < fanout; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					// Fail fast: drain without submitting. The expiry must
					// still be recorded — otherwise a deadline that fires
					// while no worker is inside ClassifyCtx would leave
					// firstErr nil and the handler would answer 200 with
					// zero-valued classes for samples never classified. A
					// sibling's error still wins: errOnce was set before
					// its cancel() made ctx.Err() non-nil here.
					errOnce.Do(func() { firstErr = ctxErr(err) })
					continue
				}
				class, err := s.ClassifyCtx(ctx, inputs[i])
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					continue
				}
				classes[i] = class
			}
		}()
	}
	for i := range inputs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return classes, nil
}

// handleHealthz is the liveness probe: the process is worth keeping for
// every state except draining. The body carries the full health view so
// operators can see degraded/starting without a separate endpoint.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	h := s.Health()
	status := http.StatusOK
	if h.State == HealthDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

// handleReadyz is the readiness probe: 200 only when a load balancer
// should send traffic here (warmed up, not draining, not saturated).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	h := s.Health()
	status := http.StatusOK
	if !h.Ready() {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleReload hot-swaps a freshly loaded engine (Config.Reload) under
// load: POST /admin/reload -> {"version": N}. In-flight batches finish
// on the old engine.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.cfg.Reload == nil {
		httpError(w, http.StatusNotImplemented, "no reload function configured (aptserve wires one when serving a checkpoint)")
		return
	}
	version, err := s.Reload()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Version: version})
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrCanceled):
		return statusClientClosedRequest
	case errors.Is(err, tensor.ErrShape):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorResponse{Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
