package serve

// Fault-injection harness: faultClassifier is a test double that injects
// engine panics, errors, and latency spikes on a deterministic schedule,
// and the chaos suite drives it (plus hot swaps and draining) under
// concurrent load with -race. The properties pinned here are the
// robustness contract of the serving tier: no caller ever hangs past its
// deadline, no goroutines leak, capacity self-heals after panics, and a
// swapped-in engine serves without dropping in-flight batches.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
)

// errInjected is the scheduled engine error.
var errInjected = errors.New("injected engine error")

// faultClassifier answers every sample with its id, and misbehaves on a
// schedule: every panicEvery-th call panics, every errEvery-th call
// errors, every spikeEvery-th call sleeps an extra spike on top of the
// base delay. The schedules are atomics so a test can heal (or break)
// the engine mid-load.
type faultClassifier struct {
	id    int
	delay time.Duration
	spike time.Duration

	panicEvery atomic.Int64
	errEvery   atomic.Int64
	spikeEvery atomic.Int64

	calls   atomic.Int64
	samples atomic.Int64
}

func (f *faultClassifier) Classify(x *tensor.Tensor) ([]int, error) {
	c := f.calls.Add(1)
	f.samples.Add(int64(x.Dim(0)))
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	if n := f.spikeEvery.Load(); n > 0 && c%n == 0 {
		time.Sleep(f.spike)
	}
	if n := f.panicEvery.Load(); n > 0 && c%n == 0 {
		panic(fmt.Sprintf("injected engine panic at call %d", c))
	}
	if n := f.errEvery.Load(); n > 0 && c%n == 0 {
		return nil, errInjected
	}
	out := make([]int, x.Dim(0))
	for i := range out {
		out[i] = f.id
	}
	return out, nil
}

// checkGoroutines fails the test if the goroutine count does not return
// to (near) the baseline within a grace period — the leak detector for
// the chaos suite.
func checkGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// retryClassify retries transient rejections (a draining queue after a
// storm) for up to the grace period.
func retryClassify(t *testing.T, s *Server, img []float32, grace time.Duration) (int, error) {
	t.Helper()
	deadline := time.Now().Add(grace)
	for {
		class, err := s.Classify(img)
		if !errors.Is(err, ErrOverloaded) || time.Now().After(deadline) {
			return class, err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosStorm drives concurrent deadline-bounded load into an engine
// that panics, errors, and stalls on schedule. Every call must return
// promptly with a sane outcome, the workers must self-heal, and after
// the engine is healed the server must serve cleanly again.
func TestChaosStorm(t *testing.T) {
	base := runtime.NumGoroutine()
	fault := &faultClassifier{id: 7, delay: 100 * time.Microsecond, spike: 3 * time.Millisecond}
	fault.panicEvery.Store(3)
	fault.errEvery.Store(5)
	fault.spikeEvery.Store(11)
	s, err := New(Config{
		Engine: fault, InC: 1, InH: 2, InW: 2,
		Workers: 4, MaxBatch: 8, MaxDelay: 500 * time.Microsecond, QueueCap: 64,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const clients, perClient = 24, 20
	var wg sync.WaitGroup
	var unexpected atomic.Int64
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				class, err := s.ClassifyCtx(ctx, sample(1, 4))
				cancel()
				switch {
				case err == nil:
					if class != 7 {
						unexpected.Add(1)
					}
				case errors.Is(err, ErrEnginePanic),
					errors.Is(err, errInjected),
					errors.Is(err, ErrOverloaded),
					errors.Is(err, ErrDeadline),
					errors.Is(err, ErrCanceled):
					// expected storm outcomes
				default:
					t.Errorf("unexpected error: %v", err)
					unexpected.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := unexpected.Load(); n != 0 {
		t.Fatalf("%d calls had unexpected outcomes", n)
	}

	st := s.Stats()
	if st.Panics == 0 {
		t.Error("no panics recorded despite injected panics")
	}
	if st.LiveWorkers != 4 {
		t.Errorf("live workers = %d, want 4 (respawn must conserve capacity)", st.LiveWorkers)
	}

	// Heal the engine: the same server must serve cleanly again.
	fault.panicEvery.Store(0)
	fault.errEvery.Store(0)
	fault.spikeEvery.Store(0)
	for i := 0; i < 50; i++ {
		if class, err := retryClassify(t, s, sample(1, 4), 2*time.Second); err != nil || class != 7 {
			t.Fatalf("post-storm Classify = %d, %v; want 7, nil", class, err)
		}
	}
	if h := s.Health(); h.State != HealthOK {
		t.Errorf("post-storm health = %s (%s), want ok", h.State, h.Reason)
	}
	s.Close()
	checkGoroutines(t, base)
}

// TestPanicStormNeverStrandsCaller pins the worst case: an engine that
// panics on every call. Every caller must get ErrEnginePanic instead of
// hanging, and capacity must be intact once the engine heals.
func TestPanicStormNeverStrandsCaller(t *testing.T) {
	base := runtime.NumGoroutine()
	fault := &faultClassifier{id: 3}
	fault.panicEvery.Store(1)
	s, err := New(Config{
		Engine: fault, InC: 1, InH: 2, InW: 2,
		Workers: 2, MaxBatch: 4, MaxDelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 40; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_, err := s.ClassifyCtx(ctx, sample(1, 4))
		cancel()
		if !errors.Is(err, ErrEnginePanic) {
			t.Fatalf("call %d: err = %v, want ErrEnginePanic", i, err)
		}
	}
	st := s.Stats()
	if st.Panics < 40 {
		t.Errorf("panics = %d, want >= 40", st.Panics)
	}
	if st.LiveWorkers != 2 {
		t.Errorf("live workers = %d, want 2", st.LiveWorkers)
	}
	fault.panicEvery.Store(0)
	if class, err := s.Classify(sample(1, 4)); err != nil || class != 3 {
		t.Errorf("healed Classify = %d, %v; want 3, nil", class, err)
	}
	s.Close()
	checkGoroutines(t, base)
}

// TestHotSwapUnderLoad swaps the engine while concurrent load is in
// flight: no request may fail or see a class neither engine produces,
// and once the load settles new requests are answered by the new engine.
func TestHotSwapUnderLoad(t *testing.T) {
	oldEng := &faultClassifier{id: 1, delay: 200 * time.Microsecond}
	newEng := &faultClassifier{id: 2}
	s, err := New(Config{
		Engine: oldEng, InC: 1, InH: 2, InW: 2,
		Workers: 2, MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueCap: 256,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	var bad atomic.Int64
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				class, err := s.Classify(sample(1, 4))
				if errors.Is(err, ErrOverloaded) {
					continue
				}
				if err != nil || (class != 1 && class != 2) {
					bad.Add(1)
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	version, err := s.Swap(newEng)
	if err != nil {
		t.Fatalf("Swap: %v", err)
	}
	if version != 2 {
		t.Errorf("Swap version = %d, want 2", version)
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Errorf("%d requests failed or saw an impossible class during the swap", n)
	}
	if class, err := s.Classify(sample(1, 4)); err != nil || class != 2 {
		t.Errorf("post-swap Classify = %d, %v; want 2 (new engine)", class, err)
	}
	st := s.Stats()
	if st.Swaps != 1 || st.ModelVersion != 2 {
		t.Errorf("stats swaps/version = %d/%d, want 1/2", st.Swaps, st.ModelVersion)
	}
	if newEng.calls.Load() == 0 {
		t.Error("new engine never ran")
	}
}

// TestDeadlineLazyDrop pins that expired requests are dropped before
// they reach the engine: abandoned work never pays for a GEMM.
func TestDeadlineLazyDrop(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		Workers: 1, MaxBatch: 4, QueueCap: 8, MaxDelay: time.Millisecond,
	})
	// Occupy the only worker inside the gated engine.
	firstDone := make(chan error, 1)
	go func() {
		_, err := s.Classify(sample(1, 4))
		firstDone <- err
	}()
	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first request")
	}
	// Queue four requests with short deadlines; they expire while queued.
	const expiring = 4
	errs := make(chan error, expiring)
	for i := 0; i < expiring; i++ {
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			_, err := s.ClassifyCtx(ctx, sample(1, 4))
			errs <- err
		}()
	}
	for i := 0; i < expiring; i++ {
		if err := <-errs; !errors.Is(err, ErrDeadline) {
			t.Errorf("expired request %d: err = %v, want ErrDeadline", i, err)
		}
	}
	close(gate) // release the engine
	if err := <-firstDone; err != nil {
		t.Fatalf("first request: %v", err)
	}
	// A fresh request flushes the worker past the expired entries.
	if class, err := s.Classify(sample(1, 4)); err != nil || class != 1 {
		t.Fatalf("post-drop Classify = %d, %v; want 1, nil", class, err)
	}
	if got := stub.samplesSeen(); got != 2 {
		t.Errorf("engine saw %d samples, want 2 (expired work must never reach it)", got)
	}
	st := s.Stats()
	if st.Dropped != expiring {
		t.Errorf("dropped = %d, want %d", st.Dropped, expiring)
	}
	if st.Canceled != expiring {
		t.Errorf("canceled = %d, want %d", st.Canceled, expiring)
	}
}

// TestClassifyCtxCancelPrompt pins that cancellation releases the caller
// immediately even while its request is stuck behind a wedged engine.
func TestClassifyCtxCancelPrompt(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		Workers: 1, MaxBatch: 1, QueueCap: 4, MaxDelay: time.Millisecond,
	})
	go s.Classify(sample(1, 4)) // occupy the worker
	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never entered the engine")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.ClassifyCtx(ctx, sample(1, 4))
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let it queue
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("err = %v, want ErrCanceled", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("cancellation took %v, want immediate", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled caller still hanging")
	}
	close(gate)
}

// TestCloseUnderLoadAnswersEveryAccepted pins graceful drain: Close
// during sustained concurrent load answers every accepted request — the
// only outcomes are a result, ErrOverloaded, or ErrClosed, and no
// goroutine outlives the drain.
func TestCloseUnderLoadAnswersEveryAccepted(t *testing.T) {
	base := runtime.NumGoroutine()
	fault := &faultClassifier{id: 5, delay: 100 * time.Microsecond}
	s, err := New(Config{
		Engine: fault, InC: 1, InH: 2, InW: 2,
		Workers: 2, MaxBatch: 8, MaxDelay: 200 * time.Microsecond, QueueCap: 32,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var wg sync.WaitGroup
	var badOutcome atomic.Int64
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				class, err := s.Classify(sample(1, 4))
				switch {
				case err == nil:
					if class != 5 {
						badOutcome.Add(1)
					}
				case errors.Is(err, ErrOverloaded):
					// shed; try again
				case errors.Is(err, ErrClosed):
					return
				default:
					badOutcome.Add(1)
					return
				}
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	s.Close()
	wg.Wait()
	if n := badOutcome.Load(); n != 0 {
		t.Errorf("%d calls saw a wrong class or unexpected error during drain", n)
	}
	checkGoroutines(t, base)
}

// mismatchedStub reports a different input geometry than the server's.
type mismatchedStub struct{ stubClassifier }

func (*mismatchedStub) InputShape() (c, h, w int) { return 3, 2, 2 }

func TestSwapValidates(t *testing.T) {
	s, _ := newTestServer(t, Config{Engine: &shapedStub{}, MaxDelay: time.Millisecond})
	if _, err := s.Swap(nil); err == nil {
		t.Error("Swap(nil) did not error")
	}
	if _, err := s.Swap(&mismatchedStub{}); err == nil {
		t.Error("Swap with mismatched geometry did not error")
	}
	if v, err := s.Swap(&shapedStub{}); err != nil || v != 2 {
		t.Errorf("Swap = %d, %v; want 2, nil", v, err)
	}
}

// TestHealthStates walks the state machine: starting (warmup pending) →
// ok → degraded (queue saturated) → draining, with the HTTP probes
// agreeing at each step.
func TestHealthStates(t *testing.T) {
	// starting: a gated engine holds warmup open.
	warmGate := make(chan struct{})
	warmStub := &stubClassifier{gate: warmGate}
	s1, err := New(Config{
		Engine: warmStub, InC: 1, InH: 2, InW: 2, Warmup: true, MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	if h := s1.Health(); h.State != HealthStarting {
		t.Errorf("pre-warmup health = %s, want starting", h.State)
	}
	if code := getStatus(t, ts1.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while starting = %d, want 503", code)
	}
	if code := getStatus(t, ts1.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz while starting = %d, want 200", code)
	}
	close(warmGate)
	waitState(t, s1, HealthOK)
	if code := getStatus(t, ts1.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz when ok = %d, want 200", code)
	}
	ts1.Close()
	s1.Close()
	if h := s1.Health(); h.State != HealthDraining {
		t.Errorf("post-close health = %s, want draining", h.State)
	}

	// degraded: the only worker is wedged and the queue is full.
	gate := make(chan struct{})
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s2, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		Workers: 1, MaxBatch: 1, QueueCap: 1, MaxDelay: time.Millisecond,
		SaturationGrace: 5 * time.Millisecond,
	})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	go s2.Classify(sample(1, 4))
	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never entered the engine")
	}
	go s2.Classify(sample(1, 4)) // fills the one-slot queue
	deadline := time.After(5 * time.Second)
	for len(s2.queue) != 1 {
		select {
		case <-deadline:
			t.Fatal("queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// The first saturated observation must NOT degrade health — the grace
	// window keeps a momentary burst from flipping the replica not-ready.
	if h := s2.Health(); h.State != HealthOK {
		t.Errorf("instantaneously saturated health = %s (%s), want ok (inside grace window)", h.State, h.Reason)
	}
	// Saturation that persists past the grace window does degrade.
	waitState(t, s2, HealthDegraded)
	if h := s2.Health(); h.State != HealthDegraded || h.Reason != "queue saturated" {
		t.Errorf("sustained saturation health = %s (%s), want degraded (queue saturated)", h.State, h.Reason)
	}
	if code := getStatus(t, ts2.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz when saturated = %d, want 503", code)
	}
	if code := getStatus(t, ts2.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz when saturated = %d, want 200 (alive)", code)
	}
	close(gate)
	waitState(t, s2, HealthOK)
}

// TestAdminReload exercises the HTTP swap path: each POST /admin/reload
// loads a fresh engine and bumps the version; afterwards requests are
// served by the new engine.
func TestAdminReload(t *testing.T) {
	next := atomic.Int64{}
	next.Store(9) // reloaded engines answer 10, 11, ...
	cfg := Config{
		Engine: &faultClassifier{id: 1}, InC: 1, InH: 2, InW: 2, MaxDelay: time.Millisecond,
		Reload: func() (Classifier, error) {
			return &faultClassifier{id: int(next.Add(1))}, nil
		},
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, err := http.Get(ts.URL + "/admin/reload"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /admin/reload = %d, want 405", resp.StatusCode)
		}
	}
	for want := uint64(2); want <= 3; want++ {
		resp, err := http.Post(ts.URL+"/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		var got reloadResponse
		if err := jsonDecode(resp, &got); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK || got.Version != want {
			t.Errorf("reload -> status %d version %d, want 200 version %d", resp.StatusCode, got.Version, want)
		}
	}
	if class, err := s.Classify(sample(1, 4)); err != nil || class != 11 {
		t.Errorf("post-reload Classify = %d, %v; want 11 (second reloaded engine)", class, err)
	}

	// Without a reload function the endpoint is explicit about it.
	s2, _ := newTestServer(t, Config{MaxDelay: time.Millisecond})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp, err := http.Post(ts2.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload without function = %d, want 501", resp.StatusCode)
	}
}

// TestClassifyManyFailFast pins the bounded fan-out: a huge multi-sample
// request must not spawn a goroutine per sample, and once one sample is
// rejected the rest are not submitted.
func TestClassifyManyFailFast(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		Workers: 1, MaxBatch: 1, QueueCap: 1, MaxDelay: time.Millisecond,
	})
	base := runtime.NumGoroutine()
	inputs := make([][]float32, maxInputsPerRequest)
	for i := range inputs {
		inputs[i] = sample(1, 4)
	}
	peak := 0
	stop := make(chan struct{})
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	_, err := s.classifyMany(context.Background(), inputs)
	close(stop)
	<-monDone
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("classifyMany on a wedged server = %v, want ErrOverloaded", err)
	}
	if stub.samplesSeen() > 2 {
		t.Errorf("engine saw %d samples, want <= 2 (fail fast must stop submission)", stub.samplesSeen())
	}
	if peak > base+maxFanout+16 {
		t.Errorf("fan-out peaked at %d goroutines over a %d baseline, want <= baseline+%d+slack",
			peak, base, maxFanout)
	}
}

// TestClassifyManyExpiredCtxReportsError pins the regression where a
// context expiry observed while no fan-out worker was inside ClassifyCtx
// skipped the remaining samples without recording any error — classifyMany
// returned nil and the handler answered 200 OK with zero-valued classes
// for samples that were never classified.
func TestClassifyManyExpiredCtxReportsError(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxDelay: time.Millisecond})
	inputs := [][]float32{sample(1, 4), sample(1, 4), sample(1, 4)}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	classes, err := s.classifyMany(ctx, inputs)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("classifyMany with expired ctx = %v, %v; want nil classes and ErrDeadline", classes, err)
	}
}

// TestHTTPDeadline pins the HTTP deadline knob end to end: a request
// whose deadline_ms expires behind a wedged engine answers 504.
func TestHTTPDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		Workers: 1, MaxBatch: 1, QueueCap: 4, MaxDelay: time.Millisecond,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	go s.Classify(sample(1, 4)) // wedge the worker
	select {
	case <-stub.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never entered the engine")
	}
	resp, err := http.Post(ts.URL+"/classify", "application/json",
		bytes.NewBufferString(`{"input": [1,0,0,0], "deadline_ms": 25}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("expired request status = %d, want 504", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/classify", "application/json",
		bytes.NewBufferString(`{"input": [1,0,0,0], "deadline_ms": -3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative deadline status = %d, want 400", resp.StatusCode)
	}
}

// TestMethodChecks pins 405 on the read-only endpoints, consistent with
// /classify's method check.
func TestMethodChecks(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxDelay: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/healthz", "/readyz", "/stats"} {
		resp, err := http.Post(ts.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// getStatus fetches a URL and returns the status code.
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// waitState polls until the server reaches the wanted health state.
func waitState(t *testing.T, s *Server, want HealthState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if h := s.Health(); h.State == want {
			return
		}
		if time.Now().After(deadline) {
			h := s.Health()
			t.Fatalf("health stuck at %s (%s), want %s", h.State, h.Reason, want)
		}
		time.Sleep(time.Millisecond)
	}
}
