// Package serve turns a compiled inference engine into a concurrent
// classification service with dynamic micro-batching — the serving tier
// of the deployment story: the paper's integer quantization scheme was
// chosen for efficient inference, and efficient inference under load
// means batching many callers' samples into one integer GEMM.
//
// # Batching policy
//
// Requests enter one bounded queue. Each worker goroutine (one per engine
// replica lease) blocks for a first request, then keeps gathering until
// either the batch holds MaxBatch samples or MaxDelay has elapsed since
// the batch opened — the standard latency/throughput knob pair: MaxDelay
// bounds the extra latency the first request of a batch can pay, MaxBatch
// bounds how much work one GEMM fuses. A batch never waits for more than
// MaxDelay and never waits at all while the queue is non-empty and full
// batches are available. Batched execution is bit-identical to running
// each sample alone (the engine's integer arithmetic is batch-invariant),
// so batching is purely a throughput optimization.
//
// # Backpressure
//
// The queue is bounded at QueueCap. When it is full, Classify (and the
// HTTP /classify endpoint) fail fast with ErrOverloaded instead of
// queueing unboundedly — callers see 503 and retry against a healthy
// replica rather than stacking latency. Rejected requests are counted in
// Stats.
//
// # Fault tolerance
//
// The server is built to survive the failures a serving tier actually
// sees, not just the happy path:
//
//   - Deadlines & cancellation: ClassifyCtx threads a context through
//     the queue. A caller whose context expires returns immediately with
//     ErrDeadline/ErrCanceled; its queued work is lazily dropped by the
//     workers before it ever reaches the GEMM (Stats.Dropped).
//   - Panic isolation: a panicking engine cannot strand callers or
//     silently shrink capacity. The worker recovers, answers every
//     request of the failed batch with ErrEnginePanic, counts the event
//     in Stats.Panics, and respawns itself so the worker count is
//     conserved.
//   - Hot swap: Swap atomically replaces the engine under load
//     (in-flight batches finish on the old engine; see swap.go).
//   - Health: Health reports starting/ok/degraded/draining with the
//     live worker count and queue depth (see health.go).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Classifier is the engine-side contract: batched argmax classification.
// *infer.Engine satisfies it; tests inject stubs.
type Classifier interface {
	Classify(x *tensor.Tensor) ([]int, error)
}

// ErrOverloaded is returned when the request queue is full (backpressure:
// fail fast, let the caller retry or shed load).
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// ErrDeadline is returned when a request's context deadline expires
// before its micro-batch has run. The queued work is dropped before it
// reaches the engine.
var ErrDeadline = errors.New("serve: request deadline exceeded")

// ErrCanceled is returned when a request's context is canceled (the
// caller went away). The queued work is dropped before it reaches the
// engine.
var ErrCanceled = errors.New("serve: request canceled")

// ErrEnginePanic is the error every request of a batch receives when the
// engine panicked while classifying it. The worker that hit the panic
// respawns, so capacity is not lost.
var ErrEnginePanic = errors.New("serve: engine panicked")

// Config configures New.
type Config struct {
	// Engine classifies packed (N, C, H, W) batches. It must be safe for
	// concurrent calls when Workers > 1 (infer.Engine is). It can be
	// replaced at runtime with Server.Swap.
	Engine Classifier
	// InC, InH, InW is the per-sample input geometry. When all three are
	// zero and the engine reports its own geometry (infer.Engine does,
	// via InputShape), it is taken from the engine.
	InC, InH, InW int
	// Workers is the number of batching worker goroutines (engine
	// replicas served from the engine's scratch pool). Default 1.
	Workers int
	// MaxBatch is the largest batch one worker fuses. Default 32.
	MaxBatch int
	// MaxDelay is how long an open batch waits for more requests before
	// running. 0 runs greedily (batch = whatever is queued). Default 2ms.
	MaxDelay time.Duration
	// QueueCap bounds the request queue; a full queue rejects with
	// ErrOverloaded. Default 4·MaxBatch·Workers.
	QueueCap int
	// DefaultDeadline, when positive, bounds every HTTP /classify
	// request that does not carry its own deadline_ms. Zero means no
	// server-imposed deadline. ClassifyCtx is not affected — its context
	// is the caller's to bound.
	DefaultDeadline time.Duration
	// SaturationGrace is how long queue saturation (depth at or above
	// 90% of QueueCap) must persist — as observed by successive Health
	// probes — before Health reports degraded and /readyz drops to 503.
	// The hysteresis keeps a synchronized traffic burst from flipping
	// every replica not-ready at the same instant and ejecting the whole
	// fleet from the load balancer; momentary spikes are already handled
	// by per-request ErrOverloaded backpressure. Default 2s.
	SaturationGrace time.Duration
	// Reload, when set, enables POST /admin/reload and Server.Reload:
	// it produces a fresh Classifier (e.g. by re-reading a checkpoint)
	// which is then Swapped in atomically.
	Reload func() (Classifier, error)
	// ReloadRetries is how many extra attempts Server.Reload makes when
	// the reload function fails — a checkpoint caught mid-replace by a
	// non-atomic publisher, a transient read error — with jittered
	// backoff between attempts. 0 fails on the first error. Swap errors
	// (geometry mismatch) are permanent and never retried.
	ReloadRetries int
	// ReloadBackoff is the base delay between reload attempts; each wait
	// adds up to 50% random jitter so a fleet of replicas watching the
	// same checkpoint does not retry in lockstep. Default 50ms.
	ReloadBackoff time.Duration
	// Warmup, when true, runs one zero-sample classification through the
	// request queue in the background after New returns; Health reports
	// "starting" until it (or the first real batch) completes. Off by
	// default so unit tests with gated stub engines are not perturbed.
	Warmup bool
}

// request is one queued sample.
type request struct {
	img  []float32
	ctx  context.Context
	resp chan response // buffered 1; reply() sends at most once
	enq  time.Time

	abandoned atomic.Bool // caller returned (ctx expired); drop lazily
	answered  atomic.Bool // reply() guard
}

// reply delivers the response unless one was already delivered. The
// channel is buffered and written at most once, so reply never blocks
// even when the caller has abandoned the request.
func (r *request) reply(resp response) {
	if r.answered.CompareAndSwap(false, true) {
		r.resp <- resp
	}
}

// expired reports whether the request is not worth running: its caller
// has already returned, or its context is done.
func (r *request) expired() bool {
	if r.abandoned.Load() {
		return true
	}
	select {
	case <-r.ctx.Done():
		return true
	default:
		return false
	}
}

type response struct {
	class int
	err   error
}

// Server is a micro-batching classification server.
type Server struct {
	cfg    Config
	sample int
	queue  chan *request

	engine atomic.Pointer[engineBox] // current model; see swap.go
	swapMu sync.Mutex                // serializes Swap version bumps

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	wg    sync.WaitGroup
	start time.Time

	live  atomic.Int64 // worker slots currently alive (conserved by respawn)
	ready atomic.Bool  // warmup (or first batch) completed

	satMu    sync.Mutex
	satSince time.Time // first Health observation of queue saturation; zero when unsaturated

	requests atomic.Uint64
	batches  atomic.Uint64
	rejected atomic.Uint64
	errored  atomic.Uint64
	panics   atomic.Uint64
	dropped  atomic.Uint64 // expired requests discarded before the engine
	canceled atomic.Uint64 // callers that returned on ctx deadline/cancel
	swaps    atomic.Uint64

	latMu  sync.Mutex
	lat    [4096]int64 // ns, ring buffer
	latN   int
	latPos int
}

// New validates the configuration and starts the worker goroutines.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Engine is required")
	}
	if cfg.InC == 0 && cfg.InH == 0 && cfg.InW == 0 {
		if shaped, ok := cfg.Engine.(interface{ InputShape() (c, h, w int) }); ok {
			cfg.InC, cfg.InH, cfg.InW = shaped.InputShape()
		}
	}
	if cfg.InC <= 0 || cfg.InH <= 0 || cfg.InW <= 0 {
		return nil, fmt.Errorf("serve: input geometry (%d,%d,%d) must be positive", cfg.InC, cfg.InH, cfg.InW)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxDelay < 0 {
		return nil, fmt.Errorf("serve: negative MaxDelay")
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.MaxBatch * cfg.Workers
	}
	if cfg.DefaultDeadline < 0 {
		return nil, fmt.Errorf("serve: negative DefaultDeadline")
	}
	if cfg.SaturationGrace < 0 {
		return nil, fmt.Errorf("serve: negative SaturationGrace")
	}
	if cfg.SaturationGrace == 0 {
		cfg.SaturationGrace = 2 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		sample: cfg.InC * cfg.InH * cfg.InW,
		queue:  make(chan *request, cfg.QueueCap),
		start:  time.Now(),
	}
	s.engine.Store(&engineBox{c: cfg.Engine, version: 1})
	s.wg.Add(cfg.Workers)
	s.live.Add(int64(cfg.Workers))
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.Warmup {
		go s.warmup()
	} else {
		s.ready.Store(true)
	}
	return s, nil
}

// Classify submits one CHW sample and blocks until its micro-batch has
// run. It returns ErrOverloaded immediately when the queue is full. The
// sample slice is read until the call returns; the caller keeps ownership
// afterwards.
func (s *Server) Classify(img []float32) (int, error) {
	return s.ClassifyCtx(context.Background(), img)
}

// ClassifyCtx is Classify with a deadline/cancellation contract: when ctx
// expires before the sample's micro-batch has run, the call returns
// ErrDeadline (or ErrCanceled) immediately and the queued work is lazily
// dropped by the workers — abandoned samples never reach the GEMM. A ctx
// that expires while the batch is already running does not interrupt the
// engine; the result is returned if it is already available when the
// caller observes the expiry, and discarded otherwise.
func (s *Server) ClassifyCtx(ctx context.Context, img []float32) (int, error) {
	if len(img) != s.sample {
		return 0, fmt.Errorf("serve: %w: sample has %d values, want %d (C·H·W = %d·%d·%d)",
			tensor.ErrShape, len(img), s.sample, s.cfg.InC, s.cfg.InH, s.cfg.InW)
	}
	if err := ctx.Err(); err != nil {
		s.canceled.Add(1)
		return 0, ctxErr(err)
	}
	req := &request{img: img, ctx: ctx, resp: make(chan response, 1), enq: time.Now()}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return 0, ErrOverloaded
	}
	select {
	case r := <-req.resp:
		return r.class, r.err
	case <-ctx.Done():
		req.abandoned.Store(true)
		// When the response and the expiry race, prefer the response:
		// the batch ran and was counted as served, so answering
		// ErrDeadline here would report a completed request as failed.
		select {
		case r := <-req.resp:
			return r.class, r.err
		default:
		}
		s.canceled.Add(1)
		return 0, ctxErr(ctx.Err())
	}
}

// ctxErr maps a context error onto the service's sentinel errors.
func ctxErr(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadline
	}
	return ErrCanceled
}

// Close stops accepting requests, drains the queue, and waits for the
// workers to finish their in-flight batches. Every request accepted
// before Close is answered.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// isClosed reports whether Close has begun (the server is draining).
func (s *Server) isClosed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// warmup pushes one zero sample through the normal request queue so the
// first real request does not pay cold-start costs (page faults on packed
// panels, pool growth); Health reports "starting" until it completes.
// Going through the queue keeps the engine's concurrency contract intact
// (Config.Engine only promises concurrent safety when Workers > 1, and
// warmup must not be an extra concurrent caller) and hands a panicking or
// erroring engine to the worker's isolation path — the warmup result,
// whatever it is, is discarded.
func (s *Server) warmup() {
	defer s.ready.Store(true)
	_, _ = s.Classify(make([]float32, s.sample))
}

// worker is one batching loop: block for a request, gather until the
// batch is full or MaxDelay elapses, run the engine once for the whole
// batch, deliver per-request results.
//
// The loop is panic-isolated: if anything in the batch path panics
// (realistically the engine), the deferred recovery answers every
// request of the in-flight batch with ErrEnginePanic and respawns the
// worker. The respawned goroutine inherits this worker's WaitGroup slot,
// so Close still waits for exactly Workers exits and the live-worker
// gauge is conserved — capacity is never silently lost.
func (s *Server) worker() {
	var cur []*request // in-flight batch, visible to the recovery path
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			n := uint64(0)
			err := fmt.Errorf("%w: %v", ErrEnginePanic, r)
			for _, req := range cur {
				// reply is CAS-guarded: requests runBatch already
				// answered are skipped.
				if req.answered.CompareAndSwap(false, true) {
					req.resp <- response{err: err}
					n++
				}
			}
			s.requests.Add(n)
			s.errored.Add(n)
			s.batches.Add(1)
			go s.worker() // inherit the wg slot and live count
			return
		}
		s.live.Add(-1)
		s.wg.Done()
	}()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	buf := make([]float32, s.cfg.MaxBatch*s.sample)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		if first.expired() {
			s.drop(first)
			continue
		}
		cur = append(batch[:0], first)
		timer.Reset(s.cfg.MaxDelay)
		fired := false
	gather:
		for len(cur) < s.cfg.MaxBatch {
			select {
			case req, ok := <-s.queue:
				if !ok {
					break gather // closed: run what we have
				}
				if req.expired() {
					s.drop(req)
					continue
				}
				cur = append(cur, req)
			case <-timer.C:
				fired = true
				break gather
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		s.runBatch(cur, buf)
		batch = cur[:0]
		cur = nil // answered; recovery must not touch it
	}
}

// drop discards an expired request before it reaches the engine — the
// lazy half of the cancellation contract (the eager half is the caller's
// select in ClassifyCtx). The reply is a no-op when the caller is gone.
func (s *Server) drop(req *request) {
	s.dropped.Add(1)
	err := ErrDeadline
	if cerr := req.ctx.Err(); cerr != nil {
		err = ctxErr(cerr)
	}
	req.reply(response{err: err})
}

// runBatch packs the gathered samples into one tensor, classifies them
// with a single engine call, and answers every request. The engine is
// read once per batch from the atomic holder, so a concurrent Swap takes
// effect on the next batch while this one finishes on the old engine.
func (s *Server) runBatch(batch []*request, buf []float32) {
	n := len(batch)
	for i, req := range batch {
		copy(buf[i*s.sample:(i+1)*s.sample], req.img)
	}
	x, err := tensor.FromSlice(buf[:n*s.sample], n, s.cfg.InC, s.cfg.InH, s.cfg.InW)
	var preds []int
	if err == nil {
		preds, err = s.engine.Load().c.Classify(x)
		if err == nil && len(preds) != n {
			err = fmt.Errorf("serve: engine returned %d predictions for %d samples", len(preds), n)
		}
	}
	done := time.Now()
	s.batches.Add(1)
	s.requests.Add(uint64(n))
	if err != nil {
		s.errored.Add(uint64(n))
	} else {
		s.ready.Store(true)
	}
	s.latMu.Lock()
	for _, req := range batch {
		s.lat[s.latPos] = done.Sub(req.enq).Nanoseconds()
		s.latPos = (s.latPos + 1) % len(s.lat)
		if s.latN < len(s.lat) {
			s.latN++
		}
	}
	s.latMu.Unlock()
	for i, req := range batch {
		if err != nil {
			req.reply(response{err: err})
			continue
		}
		req.reply(response{class: preds[i]})
	}
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Requests uint64 `json:"requests"`
	Batches  uint64 `json:"batches"`
	Rejected uint64 `json:"rejected"`
	Errored  uint64 `json:"errored"`
	// Panics counts engine panics recovered by workers (each one failed
	// a batch and respawned the worker).
	Panics uint64 `json:"panics"`
	// Dropped counts expired requests discarded before reaching the
	// engine; Canceled counts callers that returned on context
	// deadline/cancellation.
	Dropped  uint64 `json:"dropped"`
	Canceled uint64 `json:"canceled"`
	// Swaps counts hot engine replacements; ModelVersion is the current
	// engine's version (1 = the engine the server started with).
	Swaps        uint64 `json:"swaps"`
	ModelVersion uint64 `json:"model_version"`
	// LiveWorkers is the number of batching workers currently alive;
	// respawn keeps it at the configured count.
	LiveWorkers int `json:"live_workers"`
	// MeanBatch is requests per engine call — the batching win.
	MeanBatch float64 `json:"mean_batch"`
	// P50/P99 request latency (queue wait + inference) over a sliding
	// window of recent requests, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Throughput is requests served per second of uptime.
	Throughput float64 `json:"throughput_rps"`
	UptimeSec  float64 `json:"uptime_sec"`
}

// Stats returns a snapshot of the server counters and latency quantiles.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:     s.requests.Load(),
		Batches:      s.batches.Load(),
		Rejected:     s.rejected.Load(),
		Errored:      s.errored.Load(),
		Panics:       s.panics.Load(),
		Dropped:      s.dropped.Load(),
		Canceled:     s.canceled.Load(),
		Swaps:        s.swaps.Load(),
		ModelVersion: s.engine.Load().version,
		LiveWorkers:  int(s.live.Load()),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	up := time.Since(s.start).Seconds()
	st.UptimeSec = up
	if up > 0 {
		st.Throughput = float64(st.Requests) / up
	}
	s.latMu.Lock()
	window := make([]int64, s.latN)
	if s.latN == len(s.lat) {
		copy(window, s.lat[:])
	} else {
		copy(window, s.lat[:s.latN])
	}
	s.latMu.Unlock()
	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		st.P50Ms = float64(window[len(window)/2]) / 1e6
		st.P99Ms = float64(window[len(window)*99/100]) / 1e6
	}
	return st
}
