// Package serve turns a compiled inference engine into a concurrent
// classification service with dynamic micro-batching — the serving tier
// of the deployment story: the paper's integer quantization scheme was
// chosen for efficient inference, and efficient inference under load
// means batching many callers' samples into one integer GEMM.
//
// # Batching policy
//
// Requests enter one bounded queue. Each worker goroutine (one per engine
// replica lease) blocks for a first request, then keeps gathering until
// either the batch holds MaxBatch samples or MaxDelay has elapsed since
// the batch opened — the standard latency/throughput knob pair: MaxDelay
// bounds the extra latency the first request of a batch can pay, MaxBatch
// bounds how much work one GEMM fuses. A batch never waits for more than
// MaxDelay and never waits at all while the queue is non-empty and full
// batches are available. Batched execution is bit-identical to running
// each sample alone (the engine's integer arithmetic is batch-invariant),
// so batching is purely a throughput optimization.
//
// # Backpressure
//
// The queue is bounded at QueueCap. When it is full, Classify (and the
// HTTP /classify endpoint) fail fast with ErrOverloaded instead of
// queueing unboundedly — callers see 503 and retry against a healthy
// replica rather than stacking latency. Rejected requests are counted in
// Stats.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Classifier is the engine-side contract: batched argmax classification.
// *infer.Engine satisfies it; tests inject stubs.
type Classifier interface {
	Classify(x *tensor.Tensor) ([]int, error)
}

// ErrOverloaded is returned when the request queue is full (backpressure:
// fail fast, let the caller retry or shed load).
var ErrOverloaded = errors.New("serve: queue full")

// ErrClosed is returned for requests submitted after Close.
var ErrClosed = errors.New("serve: server closed")

// Config configures New.
type Config struct {
	// Engine classifies packed (N, C, H, W) batches. It must be safe for
	// concurrent calls when Workers > 1 (infer.Engine is).
	Engine Classifier
	// InC, InH, InW is the per-sample input geometry. When all three are
	// zero and the engine reports its own geometry (infer.Engine does,
	// via InputShape), it is taken from the engine.
	InC, InH, InW int
	// Workers is the number of batching worker goroutines (engine
	// replicas served from the engine's scratch pool). Default 1.
	Workers int
	// MaxBatch is the largest batch one worker fuses. Default 32.
	MaxBatch int
	// MaxDelay is how long an open batch waits for more requests before
	// running. 0 runs greedily (batch = whatever is queued). Default 2ms.
	MaxDelay time.Duration
	// QueueCap bounds the request queue; a full queue rejects with
	// ErrOverloaded. Default 4·MaxBatch·Workers.
	QueueCap int
}

// request is one queued sample.
type request struct {
	img  []float32
	resp chan response
	enq  time.Time
}

type response struct {
	class int
	err   error
}

// Server is a micro-batching classification server.
type Server struct {
	cfg    Config
	sample int
	queue  chan *request

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool

	wg    sync.WaitGroup
	start time.Time

	requests atomic.Uint64
	batches  atomic.Uint64
	rejected atomic.Uint64
	errored  atomic.Uint64

	latMu  sync.Mutex
	lat    [4096]int64 // ns, ring buffer
	latN   int
	latPos int
}

// New validates the configuration and starts the worker goroutines.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: Engine is required")
	}
	if cfg.InC == 0 && cfg.InH == 0 && cfg.InW == 0 {
		if shaped, ok := cfg.Engine.(interface{ InputShape() (c, h, w int) }); ok {
			cfg.InC, cfg.InH, cfg.InW = shaped.InputShape()
		}
	}
	if cfg.InC <= 0 || cfg.InH <= 0 || cfg.InW <= 0 {
		return nil, fmt.Errorf("serve: input geometry (%d,%d,%d) must be positive", cfg.InC, cfg.InH, cfg.InW)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.MaxDelay < 0 {
		return nil, fmt.Errorf("serve: negative MaxDelay")
	}
	if cfg.MaxDelay == 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4 * cfg.MaxBatch * cfg.Workers
	}
	s := &Server{
		cfg:    cfg,
		sample: cfg.InC * cfg.InH * cfg.InW,
		queue:  make(chan *request, cfg.QueueCap),
		start:  time.Now(),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Classify submits one CHW sample and blocks until its micro-batch has
// run. It returns ErrOverloaded immediately when the queue is full. The
// sample slice is read until the call returns; the caller keeps ownership
// afterwards.
func (s *Server) Classify(img []float32) (int, error) {
	if len(img) != s.sample {
		return 0, fmt.Errorf("serve: %w: sample has %d values, want %d (C·H·W = %d·%d·%d)",
			tensor.ErrShape, len(img), s.sample, s.cfg.InC, s.cfg.InH, s.cfg.InW)
	}
	req := &request{img: img, resp: make(chan response, 1), enq: time.Now()}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return 0, ErrClosed
	}
	select {
	case s.queue <- req:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.rejected.Add(1)
		return 0, ErrOverloaded
	}
	r := <-req.resp
	return r.class, r.err
}

// Close stops accepting requests, drains the queue, and waits for the
// workers to finish their in-flight batches.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// worker is one batching loop: block for a request, gather until the
// batch is full or MaxDelay elapses, run the engine once for the whole
// batch, deliver per-request results.
func (s *Server) worker() {
	defer s.wg.Done()
	batch := make([]*request, 0, s.cfg.MaxBatch)
	buf := make([]float32, s.cfg.MaxBatch*s.sample)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], first)
		timer.Reset(s.cfg.MaxDelay)
		fired := false
	gather:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case req, ok := <-s.queue:
				if !ok {
					break gather // closed: run what we have
				}
				batch = append(batch, req)
			case <-timer.C:
				fired = true
				break gather
			}
		}
		if !fired && !timer.Stop() {
			<-timer.C
		}
		s.runBatch(batch, buf)
	}
}

// runBatch packs the gathered samples into one tensor, classifies them
// with a single engine call, and answers every request.
func (s *Server) runBatch(batch []*request, buf []float32) {
	n := len(batch)
	for i, req := range batch {
		copy(buf[i*s.sample:(i+1)*s.sample], req.img)
	}
	x, err := tensor.FromSlice(buf[:n*s.sample], n, s.cfg.InC, s.cfg.InH, s.cfg.InW)
	var preds []int
	if err == nil {
		preds, err = s.cfg.Engine.Classify(x)
		if err == nil && len(preds) != n {
			err = fmt.Errorf("serve: engine returned %d predictions for %d samples", len(preds), n)
		}
	}
	done := time.Now()
	s.batches.Add(1)
	s.requests.Add(uint64(n))
	if err != nil {
		s.errored.Add(uint64(n))
	}
	s.latMu.Lock()
	for _, req := range batch {
		s.lat[s.latPos] = done.Sub(req.enq).Nanoseconds()
		s.latPos = (s.latPos + 1) % len(s.lat)
		if s.latN < len(s.lat) {
			s.latN++
		}
	}
	s.latMu.Unlock()
	for i, req := range batch {
		if err != nil {
			req.resp <- response{err: err}
			continue
		}
		req.resp <- response{class: preds[i]}
	}
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	Requests uint64 `json:"requests"`
	Batches  uint64 `json:"batches"`
	Rejected uint64 `json:"rejected"`
	Errored  uint64 `json:"errored"`
	// MeanBatch is requests per engine call — the batching win.
	MeanBatch float64 `json:"mean_batch"`
	// P50/P99 request latency (queue wait + inference) over a sliding
	// window of recent requests, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Throughput is requests served per second of uptime.
	Throughput float64 `json:"throughput_rps"`
	UptimeSec  float64 `json:"uptime_sec"`
}

// Stats returns a snapshot of the server counters and latency quantiles.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests: s.requests.Load(),
		Batches:  s.batches.Load(),
		Rejected: s.rejected.Load(),
		Errored:  s.errored.Load(),
	}
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Requests) / float64(st.Batches)
	}
	up := time.Since(s.start).Seconds()
	st.UptimeSec = up
	if up > 0 {
		st.Throughput = float64(st.Requests) / up
	}
	s.latMu.Lock()
	window := make([]int64, s.latN)
	if s.latN == len(s.lat) {
		copy(window, s.lat[:])
	} else {
		copy(window, s.lat[:s.latN])
	}
	s.latMu.Unlock()
	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		st.P50Ms = float64(window[len(window)/2]) / 1e6
		st.P99Ms = float64(window[len(window)*99/100]) / 1e6
	}
	return st
}
