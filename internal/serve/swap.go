package serve

import (
	"fmt"
	"math/rand"
	"time"
)

// Hot model swap. The engine lives behind an atomic pointer that workers
// read once per batch, so replacing it is wait-free: in-flight batches
// finish on the engine they started with while new batches pick up the
// replacement. This is safe because a compiled infer.Engine is immutable
// after Compile — its packed weight panels are shared read-only across
// concurrent Forwards (ownership rules in PERF.md) — so the old engine
// stays fully functional until the last batch referencing it returns and
// the GC collects it. No locks, no drain, no dropped requests.

// engineBox pairs a Classifier with its swap version. Version 1 is the
// engine the server was constructed with; every successful Swap
// increments it.
type engineBox struct {
	c       Classifier
	version uint64
}

// Swap atomically replaces the serving engine and returns the new model
// version. The replacement must classify the same input geometry: when
// it reports an InputShape (infer.Engine does), the shape is validated
// against the server's; a mismatch leaves the current engine in place.
// In-flight batches finish on the old engine.
func (s *Server) Swap(c Classifier) (uint64, error) {
	if c == nil {
		return 0, fmt.Errorf("serve: Swap with nil engine")
	}
	if shaped, ok := c.(interface{ InputShape() (c, h, w int) }); ok {
		ic, ih, iw := shaped.InputShape()
		if ic != s.cfg.InC || ih != s.cfg.InH || iw != s.cfg.InW {
			return 0, fmt.Errorf("serve: Swap engine geometry (%d,%d,%d) does not match server (%d,%d,%d)",
				ic, ih, iw, s.cfg.InC, s.cfg.InH, s.cfg.InW)
		}
	}
	s.swapMu.Lock()
	box := &engineBox{c: c, version: s.engine.Load().version + 1}
	s.engine.Store(box)
	s.swapMu.Unlock()
	s.swaps.Add(1)
	return box.version, nil
}

// Reload produces a fresh engine via Config.Reload (re-reading a
// checkpoint, recompiling — whatever the operator wired up) and swaps it
// in. It backs POST /admin/reload, aptserve's SIGHUP handler, and the
// -watch checkpoint poller. A failing reload function is retried up to
// Config.ReloadRetries times with jittered backoff — the failure a
// watcher actually hits is a checkpoint caught mid-replace, which heals
// as soon as the publisher's rename lands — while Swap errors (geometry
// mismatch) are reported immediately: a wrong model never fixes itself.
func (s *Server) Reload() (uint64, error) {
	if s.cfg.Reload == nil {
		return 0, fmt.Errorf("serve: no reload function configured")
	}
	backoff := s.cfg.ReloadBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	var lastErr error
	for attempt := 0; attempt <= s.cfg.ReloadRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(backoff/2)+1)))
		}
		c, err := s.cfg.Reload()
		if err != nil {
			lastErr = err
			continue
		}
		return s.Swap(c)
	}
	return 0, fmt.Errorf("serve: reload (%d attempts): %w", s.cfg.ReloadRetries+1, lastErr)
}
