package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestReloadRetriesTransientFailure: the failure a checkpoint watcher
// actually hits is a file caught mid-replace, which heals on its own —
// Reload must retry through it and swap once the read succeeds.
func TestReloadRetriesTransientFailure(t *testing.T) {
	calls := 0
	s, _ := newTestServer(t, Config{
		Engine: &stubClassifier{},
		InC:    1, InH: 2, InW: 2,
		Reload: func() (Classifier, error) {
			calls++
			if calls < 3 {
				return nil, fmt.Errorf("torn write")
			}
			return &stubClassifier{}, nil
		},
		ReloadRetries: 3,
		ReloadBackoff: time.Millisecond,
	})
	v, err := s.Reload()
	if err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if v != 2 {
		t.Errorf("model version = %d, want 2", v)
	}
	if calls != 3 {
		t.Errorf("reload function called %d times, want 3", calls)
	}
}

func TestReloadExhaustsRetries(t *testing.T) {
	calls := 0
	s, _ := newTestServer(t, Config{
		Engine: &stubClassifier{},
		InC:    1, InH: 2, InW: 2,
		Reload: func() (Classifier, error) {
			calls++
			return nil, fmt.Errorf("checkpoint missing")
		},
		ReloadRetries: 2,
		ReloadBackoff: time.Millisecond,
	})
	_, err := s.Reload()
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("err = %v, want an error naming 3 attempts", err)
	}
	if calls != 3 {
		t.Errorf("reload function called %d times, want 3", calls)
	}
}

// TestReloadSwapErrorNotRetried: a geometry mismatch is permanent — a
// wrong model never fixes itself, so Reload must fail on the first
// attempt rather than burn the retry budget.
func TestReloadSwapErrorNotRetried(t *testing.T) {
	calls := 0
	s, _ := newTestServer(t, Config{
		Engine: &stubClassifier{},
		InC:    3, InH: 8, InW: 8,
		Reload: func() (Classifier, error) {
			calls++
			return &shapedStub{}, nil // reports (1, 2, 2)
		},
		ReloadRetries: 3,
		ReloadBackoff: time.Millisecond,
	})
	_, err := s.Reload()
	if err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Errorf("err = %v, want a geometry error", err)
	}
	if calls != 1 {
		t.Errorf("reload function called %d times, want 1 (Swap errors are permanent)", calls)
	}
}
