package serve

// Health states. The serving tier distinguishes liveness ("is the
// process worth keeping") from readiness ("should a load balancer send
// it traffic"); /healthz and /readyz map these states onto HTTP in
// http.go.
//
//	starting  warmup has not completed; accepting but cold
//	ok        full capacity, queue has headroom
//	degraded  workers lost or queue saturated; still serving
//	draining  Close has begun; rejects new work, finishes accepted work

// HealthState is the coarse serving state.
type HealthState string

const (
	HealthStarting HealthState = "starting"
	HealthOK       HealthState = "ok"
	HealthDegraded HealthState = "degraded"
	HealthDraining HealthState = "draining"
)

// Health is a point-in-time view of the server's serving capacity.
type Health struct {
	State HealthState `json:"state"`
	// Reason explains a non-ok state.
	Reason string `json:"reason,omitempty"`
	// Workers is the configured worker count; LiveWorkers is how many
	// are currently alive (panic respawn keeps them equal except for
	// the instants between a panic and its respawn, and during drain).
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// QueueLen/QueueCap expose queue pressure; QueueLen == QueueCap is
	// the saturation point where new requests bounce with ErrOverloaded.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// Panics and ModelVersion mirror the Stats counters most relevant
	// to an operator reading a health probe.
	Panics       uint64 `json:"panics"`
	ModelVersion uint64 `json:"model_version"`
}

// Ready reports whether a load balancer should route traffic here: the
// server is warmed up, not draining, and not saturated.
func (h Health) Ready() bool { return h.State == HealthOK }

// Health computes the current serving state.
func (s *Server) Health() Health {
	h := Health{
		Workers:      s.cfg.Workers,
		LiveWorkers:  int(s.live.Load()),
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Panics:       s.panics.Load(),
		ModelVersion: s.engine.Load().version,
	}
	switch {
	case s.isClosed():
		h.State = HealthDraining
		h.Reason = "close in progress; finishing accepted requests"
	case h.LiveWorkers < h.Workers:
		h.State = HealthDegraded
		h.Reason = "workers lost"
	case h.QueueLen >= h.QueueCap:
		h.State = HealthDegraded
		h.Reason = "queue saturated"
	case !s.ready.Load():
		h.State = HealthStarting
		h.Reason = "warming up"
	default:
		h.State = HealthOK
	}
	return h
}
