package serve

import "time"

// Health states. The serving tier distinguishes liveness ("is the
// process worth keeping") from readiness ("should a load balancer send
// it traffic"); /healthz and /readyz map these states onto HTTP in
// http.go.
//
//	starting  warmup has not completed; accepting but cold
//	ok        full capacity, queue has headroom
//	degraded  workers lost or queue saturated; still serving
//	draining  Close has begun; rejects new work, finishes accepted work
//
// Queue saturation only degrades health after it has persisted for
// Config.SaturationGrace across successive Health observations — a
// momentary burst sheds load via ErrOverloaded without flipping the
// replica not-ready (see Config.SaturationGrace).

// HealthState is the coarse serving state.
type HealthState string

const (
	HealthStarting HealthState = "starting"
	HealthOK       HealthState = "ok"
	HealthDegraded HealthState = "degraded"
	HealthDraining HealthState = "draining"
)

// Health is a point-in-time view of the server's serving capacity.
type Health struct {
	State HealthState `json:"state"`
	// Reason explains a non-ok state.
	Reason string `json:"reason,omitempty"`
	// Workers is the configured worker count; LiveWorkers is how many
	// are currently alive (panic respawn keeps them equal except for
	// the instants between a panic and its respawn, and during drain).
	Workers     int `json:"workers"`
	LiveWorkers int `json:"live_workers"`
	// QueueLen/QueueCap expose queue pressure; QueueLen == QueueCap is
	// the point where new requests bounce with ErrOverloaded. Health
	// counts the queue as saturated from 90% of cap, but only reports
	// degraded once saturation has persisted for Config.SaturationGrace.
	QueueLen int `json:"queue_len"`
	QueueCap int `json:"queue_cap"`
	// Panics and ModelVersion mirror the Stats counters most relevant
	// to an operator reading a health probe.
	Panics       uint64 `json:"panics"`
	ModelVersion uint64 `json:"model_version"`
}

// Ready reports whether a load balancer should route traffic here: the
// server is warmed up, not draining, and not saturated.
func (h Health) Ready() bool { return h.State == HealthOK }

// Health computes the current serving state.
func (s *Server) Health() Health {
	h := Health{
		Workers:      s.cfg.Workers,
		LiveWorkers:  int(s.live.Load()),
		QueueLen:     len(s.queue),
		QueueCap:     cap(s.queue),
		Panics:       s.panics.Load(),
		ModelVersion: s.engine.Load().version,
	}
	switch {
	case s.isClosed():
		h.State = HealthDraining
		h.Reason = "close in progress; finishing accepted requests"
	case h.LiveWorkers < h.Workers:
		h.State = HealthDegraded
		h.Reason = "workers lost"
	case s.sustainedSaturation(h.QueueLen, h.QueueCap):
		h.State = HealthDegraded
		h.Reason = "queue saturated"
	case !s.ready.Load():
		h.State = HealthStarting
		h.Reason = "warming up"
	default:
		h.State = HealthOK
	}
	return h
}

// sustainedSaturation reports whether the queue has been saturated (at or
// above 90% of cap) for at least Config.SaturationGrace, as observed by
// successive Health calls: the first saturated observation starts the
// clock, any unsaturated observation resets it. Health probes are the
// sampler, so "persisted" means every probe in the grace window saw a
// saturated queue — exactly the hysteresis a load balancer needs to avoid
// ejecting every replica on one synchronized burst.
func (s *Server) sustainedSaturation(queueLen, queueCap int) bool {
	saturated := queueLen*10 >= queueCap*9
	s.satMu.Lock()
	defer s.satMu.Unlock()
	if !saturated {
		s.satSince = time.Time{}
		return false
	}
	if s.satSince.IsZero() {
		s.satSince = time.Now()
	}
	return time.Since(s.satSince) >= s.cfg.SaturationGrace
}
