package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// stubClassifier classifies each sample by the sign of its first value —
// a deterministic per-sample rule, so batching must not change results.
// An optional gate blocks every Classify call until released, and an
// optional delay simulates engine latency.
type stubClassifier struct {
	gate    chan struct{}
	entered chan struct{} // signalled on every Classify entry
	delay   time.Duration
	mu      sync.Mutex
	batches []int // batch sizes seen
}

func (c *stubClassifier) Classify(x *tensor.Tensor) ([]int, error) {
	if c.entered != nil {
		select {
		case c.entered <- struct{}{}:
		default:
		}
	}
	if c.gate != nil {
		<-c.gate
	}
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	n := x.Dim(0)
	per := x.Len() / n
	c.mu.Lock()
	c.batches = append(c.batches, n)
	c.mu.Unlock()
	out := make([]int, n)
	for i := 0; i < n; i++ {
		if x.Data()[i*per] > 0 {
			out[i] = 1
		}
	}
	return out, nil
}

func (c *stubClassifier) batchSizes() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.batches...)
}

// samplesSeen is the total number of samples the engine has classified —
// the lazy-drop tests pin that expired work never inflates it.
func (c *stubClassifier) samplesSeen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.batches {
		total += n
	}
	return total
}

func sample(v float32, n int) []float32 {
	s := make([]float32, n)
	s[0] = v
	return s
}

func newTestServer(t *testing.T, cfg Config) (*Server, *stubClassifier) {
	t.Helper()
	stub, _ := cfg.Engine.(*stubClassifier)
	if cfg.Engine == nil {
		stub = &stubClassifier{}
		cfg.Engine = stub
	}
	if cfg.InC == 0 {
		cfg.InC, cfg.InH, cfg.InW = 1, 2, 2
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(s.Close)
	return s, stub
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing engine did not error")
	}
	if _, err := New(Config{Engine: &stubClassifier{}}); err == nil {
		t.Error("missing geometry did not error")
	}
	if _, err := New(Config{Engine: &stubClassifier{}, InC: 1, InH: 2, InW: 2, MaxDelay: -time.Second}); err == nil {
		t.Error("negative MaxDelay did not error")
	}
	if _, err := New(Config{Engine: &stubClassifier{}, InC: 1, InH: 2, InW: 2, SaturationGrace: -time.Second}); err == nil {
		t.Error("negative SaturationGrace did not error")
	}
}

// shapedStub is a stubClassifier that also reports its input geometry,
// like infer.Engine.
type shapedStub struct{ stubClassifier }

func (*shapedStub) InputShape() (c, h, w int) { return 1, 2, 2 }

func TestGeometryDefaultsFromEngine(t *testing.T) {
	s, err := New(Config{Engine: &shapedStub{}, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatalf("New without explicit geometry: %v", err)
	}
	defer s.Close()
	if got, err := s.Classify(sample(1, 4)); err != nil || got != 1 {
		t.Errorf("Classify = %d, %v; want 1", got, err)
	}
	if _, err := s.Classify(sample(1, 5)); err == nil {
		t.Error("wrong-length sample accepted: geometry not taken from engine")
	}
}

func TestClassifyRoundTrip(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	if got, err := s.Classify(sample(1, 4)); err != nil || got != 1 {
		t.Errorf("Classify(+) = %d, %v; want 1", got, err)
	}
	if got, err := s.Classify(sample(-1, 4)); err != nil || got != 0 {
		t.Errorf("Classify(-) = %d, %v; want 0", got, err)
	}
	if _, err := s.Classify(sample(1, 3)); !errors.Is(err, tensor.ErrShape) {
		t.Errorf("wrong sample length error = %v", err)
	}
}

// Concurrent clients must coalesce into shared batches (fewer engine
// calls than requests) without changing any result.
func TestMicroBatchingCoalesces(t *testing.T) {
	stub := &stubClassifier{delay: 2 * time.Millisecond}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		MaxBatch: 16, MaxDelay: 20 * time.Millisecond, Workers: 1,
	})
	const clients = 64
	var wg sync.WaitGroup
	var bad atomic32
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		i := i
		go func() {
			defer wg.Done()
			want := i % 2
			v := float32(1)
			if want == 0 {
				v = -1
			}
			got, err := s.Classify(sample(v, 4))
			if err != nil || got != want {
				bad.add(1)
			}
		}()
	}
	wg.Wait()
	if n := bad.load(); n != 0 {
		t.Errorf("%d clients got wrong answers", n)
	}
	st := s.Stats()
	if st.Requests != clients {
		t.Errorf("requests = %d, want %d", st.Requests, clients)
	}
	if st.Batches >= clients {
		t.Errorf("no batching: %d batches for %d requests", st.Batches, clients)
	}
	if st.MeanBatch <= 1 {
		t.Errorf("mean batch %.2f, want > 1", st.MeanBatch)
	}
	for _, n := range stub.batchSizes() {
		if n > 16 {
			t.Errorf("batch of %d exceeds MaxBatch", n)
		}
	}
	if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
		t.Errorf("bad latency quantiles: p50=%v p99=%v", st.P50Ms, st.P99Ms)
	}
}

// A full queue must reject immediately with ErrOverloaded, and the count
// must show up in stats.
func TestBackpressureRejectsWhenFull(t *testing.T) {
	gate := make(chan struct{})
	stub := &stubClassifier{gate: gate, entered: make(chan struct{}, 1)}
	s, _ := newTestServer(t, Config{
		Engine: stub, InC: 1, InH: 2, InW: 2,
		MaxBatch: 1, QueueCap: 1, Workers: 1, MaxDelay: time.Millisecond,
	})
	// First request occupies the worker (gated inside the engine).
	first := make(chan error, 1)
	go func() {
		_, err := s.Classify(sample(1, 4))
		first <- err
	}()
	select {
	case <-stub.entered: // worker is inside the engine; queue is empty
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the first request")
	}
	// Second request fills the one-slot queue.
	second := make(chan error, 1)
	go func() {
		_, err := s.Classify(sample(1, 4))
		second <- err
	}()
	deadline := time.After(5 * time.Second)
	for len(s.queue) != 1 {
		select {
		case <-deadline:
			t.Fatal("second request never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	// Third request must bounce immediately.
	if _, err := s.Classify(sample(1, 4)); !errors.Is(err, ErrOverloaded) {
		t.Errorf("third Classify = %v, want ErrOverloaded", err)
	}
	close(gate) // release the engine (closed gate passes all later batches)
	if err := <-first; err != nil {
		t.Errorf("first request failed: %v", err)
	}
	if err := <-second; err != nil {
		t.Errorf("second request failed: %v", err)
	}
	if s.Stats().Rejected == 0 {
		t.Error("rejected counter is zero")
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxDelay: time.Millisecond})
	if _, err := s.Classify(sample(1, 4)); err != nil {
		t.Fatalf("Classify before close: %v", err)
	}
	s.Close()
	s.Close() // idempotent
	if _, err := s.Classify(sample(1, 4)); !errors.Is(err, ErrClosed) {
		t.Errorf("Classify after close = %v, want ErrClosed", err)
	}
}

func TestHTTPClassify(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxDelay: time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp, m
	}

	resp, m := post(`{"input": [1, 0, 0, 0]}`)
	if resp.StatusCode != http.StatusOK || m["class"] != float64(1) {
		t.Errorf("single classify: status %d, body %v", resp.StatusCode, m)
	}
	resp, m = post(`{"inputs": [[1,0,0,0], [-1,0,0,0], [1,0,0,0]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("multi classify: status %d, body %v", resp.StatusCode, m)
	}
	if cs, ok := m["classes"].([]any); !ok || len(cs) != 3 || cs[0] != float64(1) || cs[1] != float64(0) {
		t.Errorf("multi classify body %v", m)
	}
	resp, m = post(`{"input": [1, 2]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short sample: status %d, body %v", resp.StatusCode, m)
	}
	resp, _ = post(`{not json`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: status %d", resp.StatusCode)
	}
	resp, _ = post(`{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty payload: status %d", resp.StatusCode)
	}
	// Over-long sample lists are rejected at admission, before queueing.
	var big bytes.Buffer
	big.WriteString(`{"inputs": [`)
	for i := 0; i <= maxInputsPerRequest; i++ {
		if i > 0 {
			big.WriteByte(',')
		}
		big.WriteString(`[1,0,0,0]`)
	}
	big.WriteString(`]}`)
	resp, m = post(big.String())
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized inputs list: status %d, body %v", resp.StatusCode, m)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil || hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %v %v", hresp, err)
	}
	if hresp != nil {
		hresp.Body.Close()
	}
	sresp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Requests < 4 {
		t.Errorf("stats requests = %d, want >= 4", st.Requests)
	}
}

func TestStatusFor(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrOverloaded, http.StatusServiceUnavailable},
		{ErrClosed, http.StatusServiceUnavailable},
		{ErrDeadline, http.StatusGatewayTimeout},
		{ErrCanceled, statusClientClosedRequest},
		{ErrEnginePanic, http.StatusInternalServerError},
		{tensor.ErrShape, http.StatusBadRequest},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// atomic32 is a tiny test counter.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
