package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW batch (Ioffe & Szegedy),
// with learnable per-channel scale (gamma) and shift (beta) and running
// statistics for evaluation mode. The paper trains all backbones with BN
// and no dropout.
type BatchNorm2D struct {
	name     string
	channels int
	eps      float64
	momentum float64 // running-stat update rate

	gamma *Param
	beta  *Param

	runMean []float64
	runVar  []float64

	// forward cache
	xhat    *tensor.Tensor
	std     []float64
	inShape []int
	ready   bool

	outA  arenaTensor // (N, C, H, W) forward output
	xhatA arenaTensor // (N, C, H, W) normalized activations
	dxA   arenaTensor // (N, C, H, W) input gradient
	stdA  []float64   // per-channel std scratch
}

// NewBatchNorm2D constructs a batch-norm layer for the given channel count.
func NewBatchNorm2D(name string, channels int) (*BatchNorm2D, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("batchnorm %q: %w: channels %d", name, tensor.ErrShape, channels)
	}
	g := tensor.New(channels)
	g.Fill(1)
	b := &BatchNorm2D{
		name:     name,
		channels: channels,
		eps:      1e-5,
		momentum: 0.1,
		gamma:    NewParam(name+".gamma", g),
		beta:     NewParam(name+".beta", tensor.New(channels)),
		runMean:  make([]float64, channels),
		runVar:   make([]float64, channels),
	}
	for i := range b.runVar {
		b.runVar[i] = 1
	}
	return b, nil
}

// Name implements Layer.
func (b *BatchNorm2D) Name() string { return b.name }

// Params implements Layer.
func (b *BatchNorm2D) Params() []*Param { return []*Param{b.gamma, b.beta} }

// Forward implements Layer.
func (b *BatchNorm2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != b.channels {
		return nil, fmt.Errorf("batchnorm %q: %w: input %v, want (N,%d,H,W)", b.name, tensor.ErrShape, x.Shape(), b.channels)
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	plane := h * w
	cnt := float64(n * plane)
	out := b.outA.get(x.Shape()...)
	xd, od := x.Data(), out.Data()
	gd, bd := b.gamma.Value.Data(), b.beta.Value.Data()

	if train {
		b.xhat = b.xhatA.get(x.Shape()...)
		b.std = growF64(&b.stdA, b.channels)
		b.inShape = x.Shape()
		b.ready = true
		xh := b.xhat.Data()
		tensor.ParallelFor(b.channels, func(c int) {
			var mean float64
			for i := 0; i < n; i++ {
				row := xd[(i*b.channels+c)*plane : (i*b.channels+c+1)*plane]
				for _, v := range row {
					mean += float64(v)
				}
			}
			mean /= cnt
			var variance float64
			for i := 0; i < n; i++ {
				row := xd[(i*b.channels+c)*plane : (i*b.channels+c+1)*plane]
				for _, v := range row {
					d := float64(v) - mean
					variance += d * d
				}
			}
			variance /= cnt
			std := math.Sqrt(variance + b.eps)
			b.std[c] = std
			b.runMean[c] = (1-b.momentum)*b.runMean[c] + b.momentum*mean
			b.runVar[c] = (1-b.momentum)*b.runVar[c] + b.momentum*variance
			g, bt := float64(gd[c]), float64(bd[c])
			for i := 0; i < n; i++ {
				off := (i*b.channels + c) * plane
				for j := 0; j < plane; j++ {
					xn := (float64(xd[off+j]) - mean) / std
					xh[off+j] = float32(xn)
					od[off+j] = float32(g*xn + bt)
				}
			}
		})
		return out, nil
	}

	tensor.ParallelFor(b.channels, func(c int) {
		mean := b.runMean[c]
		std := math.Sqrt(b.runVar[c] + b.eps)
		g, bt := float64(gd[c]), float64(bd[c])
		for i := 0; i < n; i++ {
			off := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				od[off+j] = float32(g*(float64(xd[off+j])-mean)/std + bt)
			}
		}
	})
	return out, nil
}

// Backward implements Layer using the standard batch-norm gradient.
func (b *BatchNorm2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if !b.ready {
		return nil, fmt.Errorf("batchnorm %q: backward before forward", b.name)
	}
	if dout.Rank() != 4 || dout.Dim(1) != b.channels {
		return nil, fmt.Errorf("batchnorm %q: %w: dout %v", b.name, tensor.ErrShape, dout.Shape())
	}
	n, h, w := dout.Dim(0), dout.Dim(2), dout.Dim(3)
	plane := h * w
	cnt := float64(n * plane)
	dx := b.dxA.get(b.inShape...)
	dd, xh, dxd := dout.Data(), b.xhat.Data(), dx.Data()
	gd := b.gamma.Value.Data()
	gg, gb := b.gamma.Grad.Data(), b.beta.Grad.Data()

	tensor.ParallelFor(b.channels, func(c int) {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			off := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				dy := float64(dd[off+j])
				sumDy += dy
				sumDyXhat += dy * float64(xh[off+j])
			}
		}
		gg[c] += float32(sumDyXhat)
		gb[c] += float32(sumDy)
		g := float64(gd[c])
		inv := g / (b.std[c] * cnt)
		for i := 0; i < n; i++ {
			off := (i*b.channels + c) * plane
			for j := 0; j < plane; j++ {
				dy := float64(dd[off+j])
				xn := float64(xh[off+j])
				dxd[off+j] = float32(inv * (cnt*dy - sumDy - xn*sumDyXhat))
			}
		}
	})
	b.ready = false
	return dx, nil
}

// RunningStats exposes the per-channel running mean and variance (used by
// checkpointing and tests).
func (b *BatchNorm2D) RunningStats() (mean, variance []float64) {
	m := make([]float64, b.channels)
	v := make([]float64, b.channels)
	copy(m, b.runMean)
	copy(v, b.runVar)
	return m, v
}

// SetRunningStats restores the per-channel running statistics (used when
// loading a checkpoint). Slice lengths must match the channel count.
func (b *BatchNorm2D) SetRunningStats(mean, variance []float64) error {
	if len(mean) != b.channels || len(variance) != b.channels {
		return fmt.Errorf("batchnorm %q: stats length (%d, %d) != channels %d",
			b.name, len(mean), len(variance), b.channels)
	}
	copy(b.runMean, mean)
	copy(b.runVar, variance)
	return nil
}
