// Package nn implements the neural-network layer framework the APT
// reproduction trains: convolution, linear, batch-norm, activations,
// pooling, residual and inverted-residual blocks, and a softmax
// cross-entropy loss. Layers operate on NCHW float32 batches from
// internal/tensor and expose their learnable state through Param so the
// optimizer (internal/optim) and the APT controller (internal/core) can
// quantize, update and profile them uniformly.
package nn

import (
	"fmt"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// Param is one learnable tensor of a layer together with its gradient and
// quantization state.
//
// Precision modes:
//   - Q == nil: full-precision fp32 parameter (the paper's fp32 baseline).
//   - Q != nil, Master == nil: the APT mode — the value itself lives on the
//     k-bit grid and is updated with the truncated rule (Eq. 3); the same
//     low-precision tensor is used by both FPROP and BPROP.
//   - Q != nil, Master != nil: the "fp32 master copy" mode used by the
//     comparison baselines (BNN, TWN, TTQ, DoReFa, …): updates are applied
//     to Master in fp32 and Value is re-quantized from it each step, so
//     training memory includes both copies.
type Param struct {
	Name   string
	Value  *tensor.Tensor
	Grad   *tensor.Tensor
	Q      *quant.State
	Master *tensor.Tensor

	// Underflowed accumulates, per optimizer step, how many elements of
	// the most recent update were dropped by quantization underflow.
	Underflowed int
}

// NewParam allocates a parameter and a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Bits returns the parameter's current storage bitwidth (32 when fp32).
func (p *Param) Bits() int {
	if p.Q == nil {
		return quant.MaxBits
	}
	return p.Q.Bits
}

// SetBits changes the parameter's bitwidth and re-quantizes its value onto
// the new grid, preserving an existing master copy if present. Passing
// quant.MaxBits keeps the State (so the controller can later reduce
// precision again) but the grid behaves as full precision.
func (p *Param) SetBits(k int) error {
	if k < quant.MinBits || k > quant.MaxBits {
		return fmt.Errorf("%w: %d", quant.ErrBits, k)
	}
	if p.Q == nil {
		st, err := quant.NewState(k)
		if err != nil {
			return err
		}
		p.Q = st
	} else {
		p.Q.Bits = k
	}
	src := p.Value
	if p.Master != nil {
		// Master-copy mode re-derives the quantized view from fp32.
		if err := p.Value.CopyFrom(p.Master); err != nil {
			return err
		}
		src = p.Value
	}
	p.Q.Quantize(src)
	return nil
}

// EnableMaster switches the parameter into fp32-master-copy mode, seeding
// the master with the current value.
func (p *Param) EnableMaster() {
	if p.Master == nil {
		p.Master = p.Value.Clone()
	}
}

// Eps returns the parameter's current minimum resolution ε (0 for fp32).
func (p *Param) Eps() float32 {
	if p.Q == nil {
		return 0
	}
	return p.Q.Eps
}

// Gavg evaluates Eq. 4 on the parameter's current gradient and resolution.
func (p *Param) Gavg() float64 {
	return quant.Gavg(p.Grad, p.Eps())
}

// SizeBits returns this parameter's training-time storage cost in bits:
// the (possibly quantized) working copy plus the fp32 master if present.
func (p *Param) SizeBits() int64 {
	bits := quant.SizeBits(p.Value.Len(), p.Bits())
	if p.Master != nil {
		bits += quant.SizeBits(p.Master.Len(), quant.MaxBits)
	}
	return bits
}
