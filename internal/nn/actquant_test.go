package nn

import (
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestActQuantForwardClipsAndSnaps(t *testing.T) {
	a, err := NewActQuant("aq", 6, 4)
	if err != nil {
		t.Fatalf("NewActQuant: %v", err)
	}
	x := tensor.MustFromSlice([]float32{-1, 0.5, 3, 7}, 4)
	out, err := a.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	d := out.Data()
	if d[0] != 0 {
		t.Errorf("negative input -> %v, want 0", d[0])
	}
	if d[3] != 6 {
		t.Errorf("above-clip input -> %v, want 6", d[3])
	}
	eps := quant.Epsilon(0, 6, 4)
	for _, v := range d[1:3] {
		steps := float64(v) / float64(eps)
		if math.Abs(steps-math.Round(steps)) > 1e-4 {
			t.Errorf("inside value %v not on the %v grid", v, eps)
		}
	}
}

func TestActQuantBackwardSTE(t *testing.T) {
	a, err := NewActQuant("aq", 2, 8)
	if err != nil {
		t.Fatalf("NewActQuant: %v", err)
	}
	x := tensor.MustFromSlice([]float32{-1, 1, 5}, 3)
	if _, err := a.Forward(x, true); err != nil {
		t.Fatalf("Forward: %v", err)
	}
	dout := tensor.MustFromSlice([]float32{10, 20, 30}, 3)
	dx, err := a.Backward(dout)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	want := []float32{0, 20, 0} // below: blocked; inside: pass; above: to alpha
	for i, v := range dx.Data() {
		if v != want[i] {
			t.Errorf("dx[%d] = %v, want %v", i, v, want[i])
		}
	}
	if got := a.alpha.Grad.Data()[0]; got != 30 {
		t.Errorf("dAlpha = %v, want 30 (gradient of the clipped element)", got)
	}
}

func TestActQuantAlphaIsControllable(t *testing.T) {
	a, err := NewActQuant("aq", 6, 6)
	if err != nil {
		t.Fatalf("NewActQuant: %v", err)
	}
	ps := a.Params()
	if len(ps) != 1 || ps[0].Bits() != 6 {
		t.Fatalf("params = %v", ps)
	}
	if err := ps[0].SetBits(8); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	if a.Bits() != 8 {
		t.Errorf("Bits = %d after controller adjustment, want 8", a.Bits())
	}
}

func TestActQuantValidation(t *testing.T) {
	if _, err := NewActQuant("aq", 0, 8); err == nil {
		t.Error("zero clip did not error")
	}
	if _, err := NewActQuant("aq", 6, 1); err == nil {
		t.Error("1-bit did not error")
	}
	a, err := NewActQuant("aq", 6, 8)
	if err != nil {
		t.Fatalf("NewActQuant: %v", err)
	}
	if _, err := a.Backward(tensor.New(3)); err == nil {
		t.Error("backward before forward did not error")
	}
}

func TestActQuantGradCheckInside(t *testing.T) {
	// Inside the clip range with a coarse grid, the STE treats the
	// quantizer as identity: dL/dx should equal the cotangent.
	a, err := NewActQuant("aq", 10, quant.MaxBits) // effectively no grid
	if err != nil {
		t.Fatalf("NewActQuant: %v", err)
	}
	rng := tensor.NewRNG(3)
	x := tensor.New(16)
	x.FillUniform(rng, 0.5, 9.5)
	checkInputGrad(t, a, x, 1e-2)
}
