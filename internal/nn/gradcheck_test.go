package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences, where loss
// is the sum of element-wise products of the layer output with a fixed
// random cotangent (so dL/dout = cot).
func numericalGrad(t *testing.T, l Layer, x *tensor.Tensor, cot *tensor.Tensor, i int) float64 {
	t.Helper()
	const h = 1e-3
	orig := x.Data()[i]

	eval := func(v float32) float64 {
		x.Data()[i] = v
		out, err := l.Forward(x, true)
		if err != nil {
			t.Fatalf("forward: %v", err)
		}
		var s float64
		for j, o := range out.Data() {
			s += float64(o) * float64(cot.Data()[j])
		}
		return s
	}
	plus := eval(orig + h)
	minus := eval(orig - h)
	x.Data()[i] = orig
	return (plus - minus) / (2 * h)
}

// checkInputGrad verifies Backward's input gradient against central
// differences at a handful of probe positions.
func checkInputGrad(t *testing.T, l Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	out, err := l.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	rng := tensor.NewRNG(99)
	cot := tensor.New(out.Shape()...)
	cot.FillNormal(rng, 0, 1)
	dx, err := l.Backward(cot)
	if err != nil {
		t.Fatalf("backward: %v", err)
	}
	if !dx.SameShape(x) {
		t.Fatalf("dx shape %v != x shape %v", dx.Shape(), x.Shape())
	}
	probes := probeIndices(x.Len())
	for _, i := range probes {
		num := numericalGrad(t, l, x, cot, i)
		got := float64(dx.Data()[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("input grad[%d]: analytic %.5f vs numeric %.5f", i, got, num)
		}
	}
}

// checkParamGrad verifies a parameter gradient against central differences.
func checkParamGrad(t *testing.T, l Layer, x *tensor.Tensor, p *Param, tol float64) {
	t.Helper()
	p.ZeroGrad()
	out, err := l.Forward(x, true)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	rng := tensor.NewRNG(77)
	cot := tensor.New(out.Shape()...)
	cot.FillNormal(rng, 0, 1)
	if _, err := l.Backward(cot); err != nil {
		t.Fatalf("backward: %v", err)
	}
	analytic := p.Grad.Clone()

	const h = 1e-3
	probes := probeIndices(p.Value.Len())
	for _, i := range probes {
		orig := p.Value.Data()[i]
		eval := func(v float32) float64 {
			p.Value.Data()[i] = v
			out, err := l.Forward(x, true)
			if err != nil {
				t.Fatalf("forward: %v", err)
			}
			// consume the cached state so the next Forward is clean
			if _, err := l.Backward(cot); err != nil {
				t.Fatalf("backward: %v", err)
			}
			var s float64
			for j, o := range out.Data() {
				s += float64(o) * float64(cot.Data()[j])
			}
			return s
		}
		plus := eval(orig + h)
		p.ZeroGrad()
		minus := eval(orig - h)
		p.ZeroGrad()
		p.Value.Data()[i] = orig
		num := (plus - minus) / (2 * h)
		got := float64(analytic.Data()[i])
		if math.Abs(num-got) > tol*(1+math.Abs(num)) {
			t.Errorf("param %s grad[%d]: analytic %.5f vs numeric %.5f", p.Name, i, got, num)
		}
	}
}

func probeIndices(n int) []int {
	if n <= 6 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	return []int{0, n / 5, 2 * n / 5, 3 * n / 5, 4 * n / 5, n - 1}
}

func TestConv2DGradCheck(t *testing.T) {
	rng := tensor.NewRNG(1)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := NewConv2D(Conv2DConfig{Name: "c", In: g, OutC: 3, Bias: true, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	x := tensor.New(2, 2, 6, 6)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, conv, x, 2e-2)
	checkParamGrad(t, conv, x, conv.weight, 2e-2)
	checkParamGrad(t, conv, x, conv.bias, 2e-2)
}

func TestConv2DStridedGradCheck(t *testing.T) {
	rng := tensor.NewRNG(2)
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1}
	conv, err := NewConv2D(Conv2DConfig{Name: "cs", In: g, OutC: 4, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	x := tensor.New(1, 3, 8, 8)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, conv, x, 2e-2)
	checkParamGrad(t, conv, x, conv.weight, 2e-2)
}

func TestLinearGradCheck(t *testing.T) {
	rng := tensor.NewRNG(3)
	lin, err := NewLinear("l", 7, 4, true, rng)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	x := tensor.New(3, 7)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, lin, x, 1e-2)
	checkParamGrad(t, lin, x, lin.weight, 1e-2)
	checkParamGrad(t, lin, x, lin.bias, 1e-2)
}

func TestDepthwiseGradCheck(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := tensor.ConvGeom{InC: 3, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	dw, err := NewDepthwiseConv2D("dw", g, rng)
	if err != nil {
		t.Fatalf("NewDepthwiseConv2D: %v", err)
	}
	x := tensor.New(2, 3, 6, 6)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, dw, x, 2e-2)
	checkParamGrad(t, dw, x, dw.weight, 2e-2)
}

func TestReLUGradCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	r := NewReLU("r")
	x := tensor.New(4, 5)
	x.FillNormal(rng, 0, 1)
	// Nudge values away from the kink where central differences lie.
	for i, v := range x.Data() {
		if v > -0.05 && v < 0.05 {
			x.Data()[i] = 0.1
		}
	}
	checkInputGrad(t, r, x, 1e-2)
}

func TestReLU6GradCheck(t *testing.T) {
	rng := tensor.NewRNG(6)
	r := NewReLU6("r6")
	x := tensor.New(4, 5)
	x.FillNormal(rng, 3, 3)
	for i, v := range x.Data() {
		if (v > -0.05 && v < 0.05) || (v > 5.95 && v < 6.05) {
			x.Data()[i] = 1
		}
	}
	checkInputGrad(t, r, x, 1e-2)
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := tensor.NewRNG(7)
	bn, err := NewBatchNorm2D("bn", 3)
	if err != nil {
		t.Fatalf("NewBatchNorm2D: %v", err)
	}
	// Randomize gamma/beta so gradients are generic.
	bn.gamma.Value.FillNormal(rng, 1, 0.2)
	bn.beta.Value.FillNormal(rng, 0, 0.2)
	x := tensor.New(4, 3, 3, 3)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, bn, x, 3e-2)
	checkParamGrad(t, bn, x, bn.gamma, 3e-2)
	checkParamGrad(t, bn, x, bn.beta, 3e-2)
}

func TestPoolGradChecks(t *testing.T) {
	rng := tensor.NewRNG(8)
	gap := NewGlobalAvgPool("gap")
	x := tensor.New(2, 3, 4, 4)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, gap, x, 1e-2)

	mp, err := NewMaxPool2D("mp", 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	x2 := tensor.New(2, 2, 4, 4)
	x2.FillNormal(rng, 0, 1)
	checkInputGrad(t, mp, x2, 1e-2)
}

func TestResidualGradCheck(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := NewConv2D(Conv2DConfig{Name: "rc", In: g, OutC: 2, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	res := NewResidual("res", conv, nil)
	x := tensor.New(2, 2, 4, 4)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, res, x, 2e-2)
	checkParamGrad(t, res, x, conv.weight, 2e-2)
}

func TestSequentialGradCheck(t *testing.T) {
	rng := tensor.NewRNG(10)
	g := tensor.ConvGeom{InC: 2, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := NewConv2D(Conv2DConfig{Name: "sc", In: g, OutC: 2, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	seq := NewSequential("seq", conv, NewReLU("sr"), NewGlobalAvgPool("sg"))
	x := tensor.New(2, 2, 4, 4)
	x.FillNormal(rng, 0, 1)
	checkInputGrad(t, seq, x, 2e-2)
}

func TestSoftmaxCrossEntropyGradCheck(t *testing.T) {
	rng := tensor.NewRNG(11)
	logits := tensor.New(3, 5)
	logits.FillNormal(rng, 0, 1)
	labels := []int{1, 4, 0}
	var loss SoftmaxCrossEntropy
	_, grad, err := loss.Forward(logits, labels)
	if err != nil {
		t.Fatalf("loss: %v", err)
	}
	const h = 1e-3
	for _, i := range probeIndices(logits.Len()) {
		orig := logits.Data()[i]
		logits.Data()[i] = orig + h
		plus, _, err := loss.Forward(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		logits.Data()[i] = orig - h
		minus, _, err := loss.Forward(logits, labels)
		if err != nil {
			t.Fatalf("loss: %v", err)
		}
		logits.Data()[i] = orig
		num := (plus - minus) / (2 * h)
		got := float64(grad.Data()[i])
		if math.Abs(num-got) > 1e-3*(1+math.Abs(num)) {
			t.Errorf("logit grad[%d]: analytic %.6f vs numeric %.6f", i, got, num)
		}
	}
}
