package nn

import "repro/internal/tensor"

// Scratch-arena helpers shared by the layers.
//
// Ownership rules (see PERF.md for the full contract):
//
//   - A layer owns every tensor it returns from Forward/Backward. The
//     caller may read it freely until the layer's next Forward/Backward
//     call, at which point the buffer is reused and overwritten. The
//     sequential trainer consumes each activation within the step, so
//     steady-state training performs near-zero allocations in the
//     conv/GEMM path.
//   - Callers that need a value to survive longer (checkpointing,
//     histories, cross-step comparisons) must Clone it.
//   - Arenas grow to the largest batch seen and are re-sliced for smaller
//     batches, so mixed train/eval batch sizes do not thrash.

// growF32 returns a zero-copy slice of length n backed by *buf, growing the
// backing array only when capacity is insufficient. Contents are undefined
// (possibly stale); callers must fully overwrite it.
func growF32(buf *[]float32, n int) []float32 {
	if cap(*buf) < n {
		*buf = make([]float32, n)
	}
	return (*buf)[:n]
}

// growBool is growF32 for boolean masks.
func growBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	return (*buf)[:n]
}

// growInt is growF32 for index buffers.
func growInt(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	return (*buf)[:n]
}

// growF64 is growF32 for float64 accumulators.
func growF64(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// growU8 is growF32 for byte masks.
func growU8(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	return (*buf)[:n]
}

// arenaTensor wraps a grown buffer in a cached tensor view. The cached
// tensor is rebuilt only when the requested shape changes, so steady-state
// steps reuse both the backing array and the tensor header.
type arenaTensor struct {
	buf   []float32
	shape []int
	t     *tensor.Tensor
}

// get returns a tensor of the given shape backed by the arena. Contents
// are stale; the caller must fully overwrite them (or zero explicitly).
func (a *arenaTensor) get(shape ...int) *tensor.Tensor {
	if a.t != nil && sameShape(a.shape, shape) {
		return a.t
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	data := growF32(&a.buf, n)
	t, err := tensor.FromSlice(data, shape...)
	if err != nil {
		panic(err) // programmer error: shapes are computed, not user input
	}
	a.shape = append(a.shape[:0], shape...)
	a.t = t
	return t
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
