package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ReLU applies max(0, x) element-wise. With a positive Cap it becomes the
// clipped variant (ReLU6 for Cap = 6) used by MobileNetV2.
type ReLU struct {
	name string
	cap  float32 // 0 = unbounded
	mask []bool

	outA  arenaTensor
	dxA   arenaTensor
	maskA []bool
}

// NewReLU returns an unbounded rectifier.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// NewReLU6 returns the clipped rectifier min(max(0,x),6).
func NewReLU6(name string) *ReLU { return &ReLU{name: name, cap: 6} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Cap returns the clipping point (0 = unbounded ReLU, 6 = ReLU6).
func (r *ReLU) Cap() float32 { return r.cap }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	out := r.outA.get(x.Shape()...)
	d := out.Data()
	xd := x.Data()
	r.mask = growBool(&r.maskA, len(xd))
	for i, v := range xd {
		switch {
		case v <= 0:
			d[i] = 0
			r.mask[i] = false
		case r.cap > 0 && v >= r.cap:
			d[i] = r.cap
			r.mask[i] = false
		default:
			d[i] = v
			r.mask[i] = true // pass-through region
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *ReLU) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if r.mask == nil {
		return nil, fmt.Errorf("relu %q: backward before forward", r.name)
	}
	if dout.Len() != len(r.mask) {
		return nil, fmt.Errorf("relu %q: %w: dout %v vs cached %d elems", r.name, tensor.ErrShape, dout.Shape(), len(r.mask))
	}
	dx := r.dxA.get(dout.Shape()...)
	d := dx.Data()
	dd := dout.Data()
	for i, v := range dd {
		if r.mask[i] {
			d[i] = v
		} else {
			d[i] = 0
		}
	}
	r.mask = nil
	return dx, nil
}
