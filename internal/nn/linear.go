package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is a fully-connected layer y = x·Wᵀ + b over (N, in) batches.
// Output, input-gradient and weight-gradient buffers are scratch arenas
// reused across steps (see the arena contract in arena.go).
type Linear struct {
	name   string
	in     int
	out    int
	weight *Param // (out, in)
	bias   *Param // (out), nil when disabled
	x      *tensor.Tensor

	outA arenaTensor // (N, out)
	dxA  arenaTensor // (N, in)
	dwA  arenaTensor // (out, in)

	// pb is the packed-operand arena for the weight-sided GEMMs (forward
	// x·Wᵀ and backward dout·W): W is repacked into it each call — the
	// weights change every optimizer step, so the panels cannot be cached
	// across steps — and only the storage is reused.
	pb tensor.PackedF32
}

// NewLinear constructs a fully-connected layer with He-normal weights.
func NewLinear(name string, in, out int, bias bool, rng *tensor.RNG) (*Linear, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("linear %q: %w: dims (%d,%d)", name, tensor.ErrShape, in, out)
	}
	w := tensor.New(out, in)
	w.FillHeNormal(rng, in)
	l := &Linear{name: name, in: in, out: out, weight: NewParam(name+".weight", w)}
	if bias {
		l.bias = NewParam(name+".bias", tensor.New(out))
	}
	return l, nil
}

// Name implements Layer.
func (l *Linear) Name() string { return l.name }

// Params implements Layer.
func (l *Linear) Params() []*Param {
	if l.bias == nil {
		return []*Param{l.weight}
	}
	return []*Param{l.weight, l.bias}
}

// MACs implements Coster.
func (l *Linear) MACs() int64 { return int64(l.in) * int64(l.out) }

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 2 || x.Dim(1) != l.in {
		return nil, fmt.Errorf("linear %q: %w: input %v, want (N,%d)", l.name, tensor.ErrShape, x.Shape(), l.in)
	}
	l.x = x
	n := x.Dim(0)
	out := l.outA.get(n, l.out)
	if tensor.PackWorthF32(n, l.in, l.out) { // (N,in)·(out,in)ᵀ on the packed micro-kernels
		if err := l.pb.PackBT(l.weight.Value.Data(), l.in, l.out); err != nil {
			return nil, fmt.Errorf("linear %q: %w", l.name, err)
		}
		if err := tensor.MatMulF32PackedInto(out.Data(), x.Data(), &l.pb, n, l.in); err != nil {
			return nil, fmt.Errorf("linear %q: %w", l.name, err)
		}
	} else if err := tensor.MatMulTransBInto(out, x, l.weight.Value); err != nil {
		return nil, fmt.Errorf("linear %q: %w", l.name, err)
	}
	if l.bias != nil {
		bd := l.bias.Value.Data()
		od := out.Data()
		for i := 0; i < n; i++ {
			row := od[i*l.out : (i+1)*l.out]
			for j := range row {
				row[j] += bd[j]
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (l *Linear) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if l.x == nil {
		return nil, fmt.Errorf("linear %q: backward before forward", l.name)
	}
	if dout.Rank() != 2 || dout.Dim(1) != l.out || dout.Dim(0) != l.x.Dim(0) {
		return nil, fmt.Errorf("linear %q: %w: dout %v", l.name, tensor.ErrShape, dout.Shape())
	}
	// dW = doutᵀ · x → (out, in)
	dw := l.dwA.get(l.out, l.in)
	if err := tensor.MatMulTransAInto(dw, dout, l.x); err != nil {
		return nil, fmt.Errorf("linear %q: %w", l.name, err)
	}
	if err := l.weight.Grad.Add(dw); err != nil {
		return nil, fmt.Errorf("linear %q: %w", l.name, err)
	}
	if l.bias != nil {
		n := dout.Dim(0)
		gb := l.bias.Grad.Data()
		dd := dout.Data()
		for i := 0; i < n; i++ {
			row := dd[i*l.out : (i+1)*l.out]
			for j, v := range row {
				gb[j] += v
			}
		}
	}
	// dx = dout · W → (N, in)
	dx := l.dxA.get(dout.Dim(0), l.in)
	if tensor.PackWorthF32(dout.Dim(0), l.out, l.in) {
		if err := l.pb.PackB(l.weight.Value.Data(), l.out, l.in); err != nil {
			return nil, fmt.Errorf("linear %q: %w", l.name, err)
		}
		if err := tensor.MatMulF32PackedInto(dx.Data(), dout.Data(), &l.pb, dout.Dim(0), l.out); err != nil {
			return nil, fmt.Errorf("linear %q: %w", l.name, err)
		}
	} else if err := tensor.MatMulInto(dx, dout, l.weight.Value); err != nil {
		return nil, fmt.Errorf("linear %q: %w", l.name, err)
	}
	l.x = nil
	return dx, nil
}
