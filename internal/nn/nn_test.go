package nn

import (
	"errors"
	"math"
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

func TestParamBitsLifecycle(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := tensor.New(64)
	v.FillNormal(rng, 0, 1)
	p := NewParam("w", v)
	if p.Bits() != quant.MaxBits {
		t.Errorf("fresh param bits = %d, want %d", p.Bits(), quant.MaxBits)
	}
	if p.Eps() != 0 {
		t.Errorf("fresh param eps = %v, want 0", p.Eps())
	}
	if err := p.SetBits(6); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	if p.Bits() != 6 || p.Eps() <= 0 {
		t.Errorf("after SetBits(6): bits=%d eps=%v", p.Bits(), p.Eps())
	}
	if err := p.SetBits(1); !errors.Is(err, quant.ErrBits) {
		t.Errorf("SetBits(1) err = %v, want ErrBits", err)
	}
	if err := p.SetBits(quant.MaxBits); err != nil {
		t.Fatalf("SetBits(32): %v", err)
	}
	if p.Eps() != 0 {
		t.Errorf("32-bit eps = %v, want 0", p.Eps())
	}
}

func TestParamSizeBitsWithMaster(t *testing.T) {
	v := tensor.New(100)
	p := NewParam("w", v)
	if got := p.SizeBits(); got != 3200 {
		t.Errorf("fp32 SizeBits = %d, want 3200", got)
	}
	v.FillNormal(tensor.NewRNG(2), 0, 1)
	if err := p.SetBits(8); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	if got := p.SizeBits(); got != 800 {
		t.Errorf("8-bit SizeBits = %d, want 800", got)
	}
	p.EnableMaster()
	if got := p.SizeBits(); got != 800+3200 {
		t.Errorf("8-bit+master SizeBits = %d, want 4000", got)
	}
}

func TestParamQuantizeSnapsValues(t *testing.T) {
	rng := tensor.NewRNG(3)
	v := tensor.New(256)
	v.FillNormal(rng, 0, 1)
	p := NewParam("w", v)
	if err := p.SetBits(3); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	distinct := make(map[float32]bool)
	for _, x := range p.Value.Data() {
		distinct[x] = true
	}
	if len(distinct) > 8 {
		t.Errorf("3-bit param has %d levels, want <= 8", len(distinct))
	}
}

func TestConv2DMACs(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c, err := NewConv2D(Conv2DConfig{Name: "c", In: g, OutC: 16, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	want := int64(16) * 32 * 32 * 3 * 3 * 3
	if got := c.MACs(); got != want {
		t.Errorf("MACs = %d, want %d", got, want)
	}
}

func TestConv2DShapeErrors(t *testing.T) {
	rng := tensor.NewRNG(5)
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c, err := NewConv2D(Conv2DConfig{Name: "c", In: g, OutC: 4, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	if _, err := c.Forward(tensor.New(1, 2, 8, 8), true); !errors.Is(err, tensor.ErrShape) {
		t.Errorf("wrong channels err = %v, want ErrShape", err)
	}
	if _, err := c.Backward(tensor.New(1, 4, 8, 8)); err == nil {
		t.Error("backward before forward did not error")
	}
	if _, err := NewConv2D(Conv2DConfig{Name: "bad", In: g, OutC: 0, RNG: rng}); err == nil {
		t.Error("OutC=0 did not error")
	}
}

func TestBatchNormNormalizesTraining(t *testing.T) {
	rng := tensor.NewRNG(6)
	bn, err := NewBatchNorm2D("bn", 4)
	if err != nil {
		t.Fatalf("NewBatchNorm2D: %v", err)
	}
	x := tensor.New(8, 4, 5, 5)
	x.FillNormal(rng, 3, 2) // deliberately off-center
	out, err := bn.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	// Per-channel mean ~0, var ~1 (gamma=1, beta=0 initially).
	n, c, plane := 8, 4, 25
	for ch := 0; ch < c; ch++ {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				v := float64(out.Data()[off+j])
				sum += v
				sumSq += v * v
			}
		}
		cnt := float64(n * plane)
		mean := sum / cnt
		variance := sumSq/cnt - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Errorf("channel %d mean = %v, want ~0", ch, mean)
		}
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("channel %d var = %v, want ~1", ch, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	rng := tensor.NewRNG(7)
	bn, err := NewBatchNorm2D("bn", 2)
	if err != nil {
		t.Fatalf("NewBatchNorm2D: %v", err)
	}
	// Train on shifted data for several steps so running stats converge.
	for i := 0; i < 50; i++ {
		x := tensor.New(8, 2, 4, 4)
		x.FillNormal(rng, 5, 1)
		if _, err := bn.Forward(x, true); err != nil {
			t.Fatalf("Forward: %v", err)
		}
		// Consume cache so the next training forward is clean.
		if _, err := bn.Backward(tensor.New(8, 2, 4, 4)); err != nil {
			t.Fatalf("Backward: %v", err)
		}
	}
	mean, _ := bn.RunningStats()
	for ch, m := range mean {
		if math.Abs(m-5) > 0.5 {
			t.Errorf("running mean[%d] = %v, want ~5", ch, m)
		}
	}
	// Eval mode must normalize the same distribution to ~0.
	x := tensor.New(8, 2, 4, 4)
	x.FillNormal(rng, 5, 1)
	out, err := bn.Forward(x, false)
	if err != nil {
		t.Fatalf("eval Forward: %v", err)
	}
	if m := out.Mean(); math.Abs(m) > 0.2 {
		t.Errorf("eval output mean = %v, want ~0", m)
	}
}

func TestReLUClipsAndMasks(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float32{-2, 0, 3}, 3)
	out, err := r.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want := []float32{0, 0, 3}
	for i, v := range out.Data() {
		if v != want[i] {
			t.Errorf("relu[%d] = %v, want %v", i, v, want[i])
		}
	}
	r6 := NewReLU6("r6")
	x6 := tensor.MustFromSlice([]float32{-1, 3, 9}, 3)
	out6, err := r6.Forward(x6, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	want6 := []float32{0, 3, 6}
	for i, v := range out6.Data() {
		if v != want6[i] {
			t.Errorf("relu6[%d] = %v, want %v", i, v, want6[i])
		}
	}
	dout := tensor.MustFromSlice([]float32{1, 1, 1}, 3)
	dx, err := r6.Backward(dout)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	wantDx := []float32{0, 1, 0} // clipped regions pass no gradient
	for i, v := range dx.Data() {
		if v != wantDx[i] {
			t.Errorf("relu6 dx[%d] = %v, want %v", i, v, wantDx[i])
		}
	}
}

func TestMaxPoolSelectsMaxAndRoutesGrad(t *testing.T) {
	mp, err := NewMaxPool2D("mp", 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	x := tensor.MustFromSlice([]float32{
		1, 2,
		3, 4,
	}, 1, 1, 2, 2)
	out, err := mp.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Len() != 1 || out.Data()[0] != 4 {
		t.Fatalf("maxpool out = %v, want [4]", out.Data())
	}
	dx, err := mp.Backward(tensor.MustFromSlice([]float32{10}, 1, 1, 1, 1))
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	want := []float32{0, 0, 0, 10}
	for i, v := range dx.Data() {
		if v != want[i] {
			t.Errorf("maxpool dx[%d] = %v, want %v", i, v, want[i])
		}
	}
	if _, err := mp.Forward(tensor.New(1, 1, 3, 3), true); !errors.Is(err, tensor.ErrShape) {
		t.Errorf("odd-size input err = %v, want ErrShape", err)
	}
}

func TestGlobalAvgPool(t *testing.T) {
	gap := NewGlobalAvgPool("gap")
	x := tensor.MustFromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out, err := gap.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 25 {
		t.Errorf("gap out = %v, want [2.5 25]", out.Data())
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("f")
	x := tensor.New(2, 3, 4, 4)
	out, err := f.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Dim(0) != 2 || out.Dim(1) != 48 {
		t.Fatalf("flatten shape = %v, want (2,48)", out.Shape())
	}
	dx, err := f.Backward(out)
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
	if !dx.SameShape(x) {
		t.Errorf("flatten backward shape = %v, want %v", dx.Shape(), x.Shape())
	}
}

func TestResidualIdentityAddsInput(t *testing.T) {
	// With a main branch that outputs zeros, the residual is relu(x).
	zero := &constLayer{}
	res := NewResidual("res", zero, nil)
	x := tensor.MustFromSlice([]float32{-1, 2}, 1, 2, 1, 1)
	out, err := res.Forward(x, true)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if out.Data()[0] != 0 || out.Data()[1] != 2 {
		t.Errorf("residual out = %v, want [0 2]", out.Data())
	}
}

// constLayer outputs zeros of the input shape; gradient passes through
// unchanged (it contributes nothing).
type constLayer struct{ shape []int }

func (c *constLayer) Name() string     { return "const" }
func (c *constLayer) Params() []*Param { return nil }
func (c *constLayer) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	c.shape = x.Shape()
	return tensor.New(x.Shape()...), nil
}
func (c *constLayer) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	return tensor.New(c.shape...), nil
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over K classes: loss = ln(K).
	logits := tensor.New(2, 4)
	var loss SoftmaxCrossEntropy
	l, grad, err := loss.Forward(logits, []int{0, 3})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if math.Abs(l-math.Log(4)) > 1e-6 {
		t.Errorf("uniform loss = %v, want ln 4", l)
	}
	// Gradient rows sum to zero.
	for i := 0; i < 2; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-6 {
			t.Errorf("grad row %d sums to %v, want 0", i, s)
		}
	}
	if _, _, err := loss.Forward(logits, []int{0}); err == nil {
		t.Error("label count mismatch did not error")
	}
	if _, _, err := loss.Forward(logits, []int{0, 9}); err == nil {
		t.Error("out-of-range label did not error")
	}
}

func TestSoftmaxCrossEntropyNumericalStability(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{1000, -1000, 500, 0}, 1, 4)
	var loss SoftmaxCrossEntropy
	l, grad, err := loss.Forward(logits, []int{0})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if math.IsNaN(l) || math.IsInf(l, 0) || grad.HasNaN() {
		t.Error("extreme logits produced NaN/Inf")
	}
	if math.Abs(l) > 1e-6 {
		t.Errorf("confident correct prediction loss = %v, want ~0", l)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.MustFromSlice([]float32{
		0.9, 0.1,
		0.2, 0.8,
		0.6, 0.4,
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
}

func TestCollectParamsAndTotalMACs(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c1, err := NewConv2D(Conv2DConfig{Name: "c1", In: g, OutC: 2, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	lin, err := NewLinear("l", 32, 3, true, rng)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	layers := []Layer{c1, NewReLU("r"), NewFlatten("f"), lin}
	ps := CollectParams(layers)
	if len(ps) != 3 { // conv weight, linear weight, linear bias
		t.Errorf("CollectParams returned %d params, want 3", len(ps))
	}
	if got := TotalMACs(layers); got != c1.MACs()+lin.MACs() {
		t.Errorf("TotalMACs = %d, want %d", got, c1.MACs()+lin.MACs())
	}
}
