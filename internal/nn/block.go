package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Sequential chains layers, threading forward activations and backward
// gradients through them in order.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Layers returns the contained layers in order.
func (s *Sequential) Layers() []Layer { return s.layers }

// Params implements Layer.
func (s *Sequential) Params() []*Param { return CollectParams(s.layers) }

// MACs implements Coster.
func (s *Sequential) MACs() int64 { return TotalMACs(s.layers) }

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	var err error
	for _, l := range s.layers {
		x, err = l.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return x, nil
}

// Backward implements Layer.
func (s *Sequential) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(s.layers) - 1; i >= 0; i-- {
		dout, err = s.layers[i].Backward(dout)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return dout, nil
}

// Residual computes relu(main(x) + shortcut(x)); a nil shortcut is the
// identity. It is the basic block of the CIFAR ResNets. When withReLU is
// false the block omits the output activation (used by MobileNetV2's
// linear bottlenecks, where the skip connection adds projection outputs
// directly).
type Residual struct {
	name     string
	main     Layer
	shortcut Layer // nil = identity
	withReLU bool
	mask     []bool

	outA  arenaTensor
	doutA arenaTensor
	dxA   arenaTensor
	maskA []bool
}

// NewResidual builds a residual block with an output ReLU.
func NewResidual(name string, main, shortcut Layer) *Residual {
	return &Residual{name: name, main: main, shortcut: shortcut, withReLU: true}
}

// NewLinearResidual builds a residual block without an output activation.
func NewLinearResidual(name string, main, shortcut Layer) *Residual {
	return &Residual{name: name, main: main, shortcut: shortcut}
}

// Name implements Layer.
func (r *Residual) Name() string { return r.name }

// Params implements Layer.
func (r *Residual) Params() []*Param {
	ps := r.main.Params()
	if r.shortcut != nil {
		ps = append(ps, r.shortcut.Params()...)
	}
	return ps
}

// Main returns the block's main branch.
func (r *Residual) Main() Layer { return r.main }

// Shortcut returns the block's shortcut branch, nil for identity.
func (r *Residual) Shortcut() Layer { return r.shortcut }

// WithReLU reports whether the block applies an output ReLU after the
// add (false for MobileNetV2-style linear bottlenecks).
func (r *Residual) WithReLU() bool { return r.withReLU }

// Inner returns the block's constituent layers (main branch, then the
// shortcut when present) so cost accounting can recurse to per-layer
// bitwidths.
func (r *Residual) Inner() []Layer {
	if r.shortcut == nil {
		return []Layer{r.main}
	}
	return []Layer{r.main, r.shortcut}
}

// MACs implements Coster.
func (r *Residual) MACs() int64 {
	var total int64
	if c, ok := r.main.(Coster); ok {
		total += c.MACs()
	}
	if r.shortcut != nil {
		if c, ok := r.shortcut.(Coster); ok {
			total += c.MACs()
		}
	}
	return total
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	my, err := r.main.Forward(x, train)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	sy := x
	if r.shortcut != nil {
		sy, err = r.shortcut.Forward(x, train)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
	}
	out := r.outA.get(my.Shape()...)
	if err := out.CopyFrom(my); err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if err := out.Add(sy); err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if r.withReLU {
		d := out.Data()
		r.mask = growBool(&r.maskA, len(d))
		for i, v := range d {
			if v > 0 {
				r.mask[i] = true
			} else {
				r.mask[i] = false
				d[i] = 0
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (r *Residual) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	d := dout
	if r.withReLU {
		if r.mask == nil {
			return nil, fmt.Errorf("%s: backward before forward", r.name)
		}
		if dout.Len() != len(r.mask) {
			return nil, fmt.Errorf("%s: %w: dout %v", r.name, tensor.ErrShape, dout.Shape())
		}
		d = r.doutA.get(dout.Shape()...)
		dd := d.Data()
		src := dout.Data()
		for i, v := range src {
			if r.mask[i] {
				dd[i] = v
			} else {
				dd[i] = 0
			}
		}
		r.mask = nil
	}
	dmain, err := r.main.Backward(d)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	dshort := d
	if r.shortcut != nil {
		dshort, err = r.shortcut.Backward(d)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.name, err)
		}
	}
	dx := r.dxA.get(dmain.Shape()...)
	if err := dx.CopyFrom(dmain); err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	if err := dx.Add(dshort); err != nil {
		return nil, fmt.Errorf("%s: %w", r.name, err)
	}
	return dx, nil
}
