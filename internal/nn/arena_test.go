package nn

import (
	"testing"

	"repro/internal/tensor"
)

// testConv builds the SmallCNN-shaped first convolution used by the arena
// and parallelism tests.
func testConv(t *testing.T, bias bool) (*Conv2D, *tensor.Tensor) {
	t.Helper()
	rng := tensor.NewRNG(7)
	conv, err := NewConv2D(Conv2DConfig{
		Name: "c",
		In:   tensor.ConvGeom{InC: 3, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1},
		OutC: 8, Bias: bias, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(4, 3, 16, 16)
	x.FillNormal(rng, 0, 1)
	return conv, x
}

// TestConvSteadyStateAllocs pins the zero-alloc property of the conv/GEMM
// hot path: once the arenas are warm, a forward+backward pair performs at
// most a handful of fixed-size header allocations (reshape views), not the
// per-sample buffer churn the per-sample im2col path had (~40 allocations
// per sample at batch 4).
func TestConvSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1) // serial: measure layer allocs, not pool jobs
	defer tensor.SetMaxWorkers(prev)
	conv, x := testConv(t, true)
	dout := tensor.New(4, 8, 16, 16)
	dout.Fill(0.01)
	step := func() {
		if _, err := conv.Forward(x, true); err != nil {
			t.Fatal(err)
		}
		if _, err := conv.Backward(dout); err != nil {
			t.Fatal(err)
		}
	}
	step() // warm the arenas
	allocs := testing.AllocsPerRun(10, step)
	if allocs > 16 {
		t.Fatalf("steady-state conv forward+backward allocates %.0f objects per step, want <= 16", allocs)
	}
}

// TestLinearSteadyStateAllocs pins the same property for the linear layer.
func TestLinearSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(8)
	lin, err := NewLinear("l", 64, 10, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.New(16, 64)
	x.FillNormal(rng, 0, 1)
	dout := tensor.New(16, 10)
	dout.Fill(0.05)
	step := func() {
		if _, err := lin.Forward(x, true); err != nil {
			t.Fatal(err)
		}
		if _, err := lin.Backward(dout); err != nil {
			t.Fatal(err)
		}
	}
	step()
	// The residual allocations are the ParallelFor closure headers of the
	// three GEMM calls (a few words each), not data buffers.
	allocs := testing.AllocsPerRun(10, step)
	if allocs > 12 {
		t.Fatalf("steady-state linear forward+backward allocates %.0f objects per step, want <= 12", allocs)
	}
}

// TestConvParallelMatchesSerial runs the batched conv forward/backward
// under several worker counts and demands bit-identical results; under
// `go test -race` this also exercises the parallel sections for data races
// (the seed's shared ferr write was one).
func TestConvParallelMatchesSerial(t *testing.T) {
	conv, x := testConv(t, true)
	dout := tensor.New(4, 8, 16, 16)
	rng := tensor.NewRNG(9)
	dout.FillNormal(rng, 0, 1)

	prev := tensor.SetMaxWorkers(1)
	outS, err := conv.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	outSer := outS.Clone()
	dxS, err := conv.Backward(dout)
	if err != nil {
		t.Fatal(err)
	}
	dxSer := dxS.Clone()
	gwSer := conv.weight.Grad.Clone()
	tensor.SetMaxWorkers(prev)

	for _, workers := range []int{2, 4, 8} {
		conv.weight.Grad.Zero()
		conv.bias.Grad.Zero()
		tensor.SetMaxWorkers(workers)
		outP, err := conv.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range outP.Data() {
			if v != outSer.Data()[i] {
				t.Fatalf("workers=%d: forward elem %d differs: %v vs %v", workers, i, v, outSer.Data()[i])
			}
		}
		dxP, err := conv.Backward(dout)
		if err != nil {
			t.Fatal(err)
		}
		tensor.SetMaxWorkers(prev)
		for i, v := range dxP.Data() {
			if v != dxSer.Data()[i] {
				t.Fatalf("workers=%d: dx elem %d differs: %v vs %v", workers, i, v, dxSer.Data()[i])
			}
		}
		for i, v := range conv.weight.Grad.Data() {
			if v != gwSer.Data()[i] {
				t.Fatalf("workers=%d: dW elem %d differs: %v vs %v", workers, i, v, gwSer.Data()[i])
			}
		}
	}
}

// TestConvArenaHandlesShrinkingBatch checks the arenas re-slice correctly
// when batch size drops (the trainer's last partial batch) and grows back.
func TestConvArenaHandlesShrinkingBatch(t *testing.T) {
	rng := tensor.NewRNG(11)
	conv, x := testConv(t, true)
	big, err := conv.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	bigClone := big.Clone()

	small := tensor.New(2, 3, 16, 16)
	small.FillNormal(rng, 0, 1)
	outSmall, err := conv.Forward(small, true)
	if err != nil {
		t.Fatal(err)
	}
	if outSmall.Dim(0) != 2 {
		t.Fatalf("small-batch output shape %v", outSmall.Shape())
	}
	doutSmall := tensor.New(2, 8, 16, 16)
	doutSmall.Fill(0.1)
	if _, err := conv.Backward(doutSmall); err != nil {
		t.Fatal(err)
	}

	// Growing back must reproduce the original full-batch output exactly.
	again, err := conv.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range again.Data() {
		if v != bigClone.Data()[i] {
			t.Fatalf("batch regrow: elem %d differs: %v vs %v", i, v, bigClone.Data()[i])
		}
	}
}

// TestConvBackwardBeforeForward preserves the layer's misuse diagnostics
// with the arena-based state tracking.
func TestConvBackwardBeforeForward(t *testing.T) {
	conv, x := testConv(t, false)
	dout := tensor.New(4, 8, 16, 16)
	if _, err := conv.Backward(dout); err == nil {
		t.Fatal("backward before any forward should error")
	}
	if _, err := conv.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Backward(dout); err != nil {
		t.Fatal(err)
	}
	if _, err := conv.Backward(dout); err == nil {
		t.Fatal("second backward without a new forward should error")
	}
}
