package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// SoftmaxCrossEntropy fuses the softmax activation with the cross-entropy
// loss, returning the mean loss over the batch and the gradient with
// respect to the logits (the usual (softmax − onehot)/N).
type SoftmaxCrossEntropy struct{}

// Forward computes the loss for logits (N, K) and integer labels. It
// returns the mean loss and dL/dlogits.
func (SoftmaxCrossEntropy) Forward(logits *tensor.Tensor, labels []int) (float64, *tensor.Tensor, error) {
	if logits.Rank() != 2 {
		return 0, nil, fmt.Errorf("loss: %w: logits %v", tensor.ErrShape, logits.Shape())
	}
	n, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		return 0, nil, fmt.Errorf("loss: %w: %d labels for batch of %d", tensor.ErrShape, len(labels), n)
	}
	grad := tensor.New(n, k)
	ld, gd := logits.Data(), grad.Data()
	var total float64
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		if labels[i] < 0 || labels[i] >= k {
			return 0, nil, fmt.Errorf("loss: label %d out of range [0,%d)", labels[i], k)
		}
		row := ld[i*k : (i+1)*k]
		// log-sum-exp with max subtraction for stability
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		lse := float64(m) + math.Log(sum)
		total += lse - float64(row[labels[i]])
		grow := gd[i*k : (i+1)*k]
		for j, v := range row {
			p := math.Exp(float64(v-m)) / sum
			grow[j] = float32(p) * invN
		}
		grow[labels[i]] -= invN
	}
	return total / float64(n), grad, nil
}

// Accuracy returns the top-1 accuracy of logits (N, K) against labels.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n := logits.Dim(0)
	if n == 0 {
		return 0
	}
	correct := 0
	for i := 0; i < n; i++ {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
