package nn

import "repro/internal/tensor"

// Layer is one differentiable stage of a network. Forward caches whatever
// it needs for the next Backward call; layers are therefore not safe for
// concurrent forward passes, matching the single training loop that owns
// them. train selects training-time behaviour (batch-norm statistics,
// dropout-style layers).
type Layer interface {
	// Name identifies the layer in traces and experiment output.
	Name() string
	// Forward computes the layer output for a batch.
	Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error)
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients into Params().Grad.
	Backward(dout *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the layer's learnable parameters (possibly empty).
	Params() []*Param
}

// Coster is implemented by layers that know their per-sample compute cost.
// MACs is the number of multiply-accumulate operations in one forward pass
// for a single sample; the energy model charges forward + 2× backward.
type Coster interface {
	MACs() int64
}

// CollectParams flattens the parameters of a layer list in order.
func CollectParams(layers []Layer) []*Param {
	var ps []*Param
	for _, l := range layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TotalMACs sums the per-sample MACs of every layer implementing Coster.
func TotalMACs(layers []Layer) int64 {
	var total int64
	for _, l := range layers {
		if c, ok := l.(Coster); ok {
			total += c.MACs()
		}
	}
	return total
}
