package nn

import (
	"testing"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// stateTestNet builds a small conv-bn-relu-linear stack with a mix of
// precision modes: a quantized conv weight, an fp32 bias, and a
// master-copy linear weight.
func stateTestNet(t *testing.T, seed uint64) []Layer {
	t.Helper()
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := NewConv2D(Conv2DConfig{Name: "t.conv", In: g, OutC: 3, RNG: rng})
	if err != nil {
		t.Fatalf("NewConv2D: %v", err)
	}
	bn, err := NewBatchNorm2D("t.bn", 3)
	if err != nil {
		t.Fatalf("NewBatchNorm2D: %v", err)
	}
	fc, err := NewLinear("t.fc", 3*6*6, 4, true, rng)
	if err != nil {
		t.Fatalf("NewLinear: %v", err)
	}
	layers := []Layer{NewSequential("t.stem", conv, bn, NewReLU("t.relu")), NewFlatten("t.flat"), fc}
	params := CollectParams(layers)
	if err := params[0].SetBits(6); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	last := params[len(params)-1]
	last.EnableMaster()
	return layers
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	src := stateTestNet(t, 7)
	snap := CaptureState(src)

	// Restore into a differently-seeded twin and require bit-identity of
	// every value, quant grid and batch-norm statistic.
	dst := stateTestNet(t, 99)
	if err := RestoreState(dst, snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	sp, dp := CollectParams(src), CollectParams(dst)
	for i := range sp {
		sd, dd := sp[i].Value.Data(), dp[i].Value.Data()
		for j := range sd {
			if sd[j] != dd[j] {
				t.Fatalf("%s[%d] = %v, want %v", sp[i].Name, j, dd[j], sd[j])
			}
		}
		if (sp[i].Q == nil) != (dp[i].Q == nil) {
			t.Fatalf("%s quant state mismatch", sp[i].Name)
		}
		if sp[i].Q != nil && *sp[i].Q != *dp[i].Q {
			t.Fatalf("%s quant grid = %+v, want %+v", sp[i].Name, *dp[i].Q, *sp[i].Q)
		}
		if (sp[i].Master == nil) != (dp[i].Master == nil) {
			t.Fatalf("%s master mismatch", sp[i].Name)
		}
	}
	sbn, dbn := CollectBatchNorms(src), CollectBatchNorms(dst)
	sm, sv := sbn[0].RunningStats()
	dm, dv := dbn[0].RunningStats()
	for c := range sm {
		if sm[c] != dm[c] || sv[c] != dv[c] {
			t.Fatalf("bn stats channel %d differ", c)
		}
	}
}

func TestSnapshotOwnsItsStorage(t *testing.T) {
	layers := stateTestNet(t, 3)
	params := CollectParams(layers)
	snap := CaptureState(layers)
	before := snap.Params[0].Value[0]
	params[0].Value.Data()[0] = before + 42
	if snap.Params[0].Value[0] != before {
		t.Error("snapshot aliases live tensor storage")
	}
	// Restoring must bring the mutated value back.
	if err := RestoreState(layers, snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if got := params[0].Value.Data()[0]; got != before {
		t.Errorf("restored value = %v, want %v", got, before)
	}
}

func TestRestoreStateRejectsMismatch(t *testing.T) {
	layers := stateTestNet(t, 3)
	snap := CaptureState(layers)

	snap.Params[0].Name = "other"
	if err := RestoreState(layers, snap); err == nil {
		t.Error("name mismatch did not error")
	}
	snap = CaptureState(layers)
	snap.Params = snap.Params[1:]
	if err := RestoreState(layers, snap); err == nil {
		t.Error("parameter count mismatch did not error")
	}
	snap = CaptureState(layers)
	snap.BatchNorms[0].Name = "ghost.bn"
	if err := RestoreState(layers, snap); err == nil {
		t.Error("unknown batch-norm did not error")
	}
}

func TestSyncParamsBitIdentical(t *testing.T) {
	src := CollectParams(stateTestNet(t, 7))
	dst := CollectParams(stateTestNet(t, 99))
	if err := SyncParams(dst, src); err != nil {
		t.Fatalf("SyncParams: %v", err)
	}
	for i := range src {
		sd, dd := src[i].Value.Data(), dst[i].Value.Data()
		for j := range sd {
			if sd[j] != dd[j] {
				t.Fatalf("%s[%d] = %v, want %v", src[i].Name, j, dd[j], sd[j])
			}
		}
		if src[i].Q != nil {
			if dst[i].Q == nil || *dst[i].Q != *src[i].Q {
				t.Fatalf("%s quant state not synced", src[i].Name)
			}
			if dst[i].Q == src[i].Q {
				t.Fatalf("%s quant state aliased, want copy", src[i].Name)
			}
		}
		if src[i].Master != nil {
			if dst[i].Master == nil {
				t.Fatalf("%s master not synced", src[i].Name)
			}
			if dst[i].Master == src[i].Master {
				t.Fatalf("%s master aliased, want copy", src[i].Name)
			}
		}
	}
	// Quant state must be a copy: mutating the source's grid afterwards
	// must not leak into the destination.
	for i := range src {
		if src[i].Q != nil {
			src[i].Q.Bits = quant.MaxBits
			if dst[i].Q.Bits == quant.MaxBits {
				t.Fatalf("%s quant state shared after sync", src[i].Name)
			}
			break
		}
	}
}

func TestSyncParamsRejectsMismatch(t *testing.T) {
	a := CollectParams(stateTestNet(t, 1))
	b := CollectParams(stateTestNet(t, 2))
	if err := SyncParams(a[:len(a)-1], b); err == nil {
		t.Error("length mismatch did not error")
	}
	b[0].Name = "other"
	if err := SyncParams(a, b); err == nil {
		t.Error("name mismatch did not error")
	}
}
