package nn

import (
	"fmt"
	"math"

	"repro/internal/quant"
	"repro/internal/tensor"
)

// ActQuant quantizes activations with a learnable clipping point, the
// PACT-style scheme §III-B alludes to when it notes that Gavg "applies to
// other parameters that need to be learned during training, e.g. ... the
// clipping point of activation". The forward pass computes
//
//	y = quantize_k( clamp(x, 0, α) )
//
// on a k-bit uniform grid over [0, α]; the backward pass uses the
// straight-through estimator inside the clipping range and routes the
// out-of-range gradient into α (dy/dα = 1 for x ≥ α). α is an nn.Param,
// so the APT controller adjusts the activation bitwidth with the same
// policy it applies to weights.
type ActQuant struct {
	name  string
	alpha *Param // scalar clipping point
	mask  []uint8

	outA  arenaTensor
	dxA   arenaTensor
	maskA []uint8
}

// ActQuant backward mask states.
const (
	actBelow = iota // x < 0: no gradient
	actInside
	actAbove // x > alpha: gradient flows to alpha
)

// NewActQuant constructs the layer with initial clip alpha and bitwidth
// k (use quant.MaxBits to start effectively unquantized).
func NewActQuant(name string, alpha float32, k int) (*ActQuant, error) {
	if alpha <= 0 {
		return nil, fmt.Errorf("actquant %q: clip %v must be positive", name, alpha)
	}
	p := NewParam(name+".alpha", tensor.MustFromSlice([]float32{alpha}, 1))
	a := &ActQuant{name: name, alpha: p}
	if err := p.SetBits(k); err != nil {
		return nil, fmt.Errorf("actquant %q: %w", name, err)
	}
	return a, nil
}

// Name implements Layer.
func (a *ActQuant) Name() string { return a.name }

// Params implements Layer: the clipping point is learnable.
func (a *ActQuant) Params() []*Param { return []*Param{a.alpha} }

// Alpha returns the current clipping point.
func (a *ActQuant) Alpha() float32 { return a.alpha.Value.Data()[0] }

// Bits returns the activation bitwidth (the clip parameter's bitwidth
// doubles as the activation grid's, keeping one knob per layer).
func (a *ActQuant) Bits() int { return a.alpha.Bits() }

// Forward implements Layer.
func (a *ActQuant) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	alpha := a.Alpha()
	if alpha <= 0 {
		return nil, fmt.Errorf("actquant %q: clip collapsed to %v", a.name, alpha)
	}
	k := a.Bits()
	eps := quant.Epsilon(0, alpha, k)
	out := a.outA.get(x.Shape()...)
	d := out.Data()
	copy(d, x.Data())
	a.mask = growU8(&a.maskA, len(d))
	for i, v := range d {
		switch {
		case v <= 0:
			d[i] = 0
			a.mask[i] = actBelow
		case v >= alpha:
			d[i] = alpha
			a.mask[i] = actAbove
		default:
			a.mask[i] = actInside
			if eps > 0 {
				d[i] = float32(math.Round(float64(v)/float64(eps))) * eps
			}
		}
	}
	return out, nil
}

// Backward implements Layer with the straight-through estimator.
func (a *ActQuant) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if a.mask == nil {
		return nil, fmt.Errorf("actquant %q: backward before forward", a.name)
	}
	if dout.Len() != len(a.mask) {
		return nil, fmt.Errorf("actquant %q: %w: dout %v vs cached %d", a.name, tensor.ErrShape, dout.Shape(), len(a.mask))
	}
	dx := a.dxA.get(dout.Shape()...)
	d := dx.Data()
	copy(d, dout.Data())
	var dAlpha float32
	for i, m := range a.mask {
		switch m {
		case actBelow:
			d[i] = 0
		case actAbove:
			dAlpha += d[i]
			d[i] = 0
		}
	}
	a.alpha.Grad.Data()[0] += dAlpha
	a.mask = nil
	return dx, nil
}
