package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a standard 2-D convolution over NCHW batches. The whole batch
// is packed with Im2ColBatch into one (C·KH·KW, N·OH·OW) column matrix so
// the forward pass is a single large GEMM against the (outC, C·KH·KW)
// weight view, and the backward pass is two GEMMs plus one batch col2im
// scatter. All large intermediates (columns, GEMM outputs, gradients) live
// in scratch arenas allocated at the first forward and reused every step,
// so steady-state training allocates nothing on this path. The input
// spatial size is fixed at construction (CIFAR-style pipelines have static
// geometry), which lets the layer report exact MAC counts to the energy
// model.
type Conv2D struct {
	name    string
	geom    tensor.ConvGeom
	outC    int
	weight  *Param         // (outC, inC, KH, KW) viewed as (outC, inC*KH*KW)
	w2d     *tensor.Tensor // cached (outC, kdim) view of weight.Value
	bias    *Param         // (outC), nil when disabled
	inShape []int
	ready   bool // forward ran since the last backward

	cols  arenaTensor // (kdim, N·OH·OW) im2col output, kept for backward
	gemm  arenaTensor // (outC, N·OH·OW) forward GEMM out / backward dout2d
	dcols arenaTensor // (kdim, N·OH·OW) column gradients
	dw    arenaTensor // (outC, kdim) weight-gradient scratch
	out   arenaTensor // (N, outC, OH, OW)
	dx    arenaTensor // (N, inC, InH, InW)

	// pb is the layer's packed-operand arena for the two wide GEMMs
	// (forward product and backward column gradients): the B matrix is
	// repacked into it every call — the contents are per-call, only the
	// storage is reused — so the packed micro-kernel path allocates
	// nothing at steady state and skips the shared pack pool.
	pb tensor.PackedF32
}

// Conv2DConfig configures NewConv2D.
type Conv2DConfig struct {
	Name string
	In   tensor.ConvGeom // InC/InH/InW/KH/KW/Stride/Pad
	OutC int
	Bias bool
	RNG  *tensor.RNG
}

// NewConv2D constructs a convolution with He-normal initialized weights.
func NewConv2D(cfg Conv2DConfig) (*Conv2D, error) {
	if err := cfg.In.Validate(); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", cfg.Name, err)
	}
	if cfg.OutC <= 0 {
		return nil, fmt.Errorf("conv2d %q: %w: outC %d", cfg.Name, tensor.ErrShape, cfg.OutC)
	}
	g := cfg.In
	w := tensor.New(cfg.OutC, g.InC, g.KH, g.KW)
	w.FillHeNormal(cfg.RNG, g.InC*g.KH*g.KW)
	c := &Conv2D{
		name:   cfg.Name,
		geom:   g,
		outC:   cfg.OutC,
		weight: NewParam(cfg.Name+".weight", w),
		w2d:    w.MustReshape(cfg.OutC, g.InC*g.KH*g.KW),
	}
	if cfg.Bias {
		c.bias = NewParam(cfg.Name+".bias", tensor.New(cfg.OutC))
	}
	return c, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias == nil {
		return []*Param{c.weight}
	}
	return []*Param{c.weight, c.bias}
}

// MACs implements Coster: outC · OH · OW · inC · KH · KW per sample.
func (c *Conv2D) MACs() int64 {
	oh, ow := c.geom.OutHW()
	return int64(c.outC) * int64(oh) * int64(ow) *
		int64(c.geom.InC) * int64(c.geom.KH) * int64(c.geom.KW)
}

// Geom exposes the convolution geometry (used by model builders).
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// Forward implements Layer. The returned tensor is owned by the layer and
// is overwritten by the next Forward call (see the arena contract).
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != c.geom.InC || x.Dim(2) != c.geom.InH || x.Dim(3) != c.geom.InW {
		return nil, fmt.Errorf("conv2d %q: %w: input %v, want (N,%d,%d,%d)",
			c.name, tensor.ErrShape, x.Shape(), c.geom.InC, c.geom.InH, c.geom.InW)
	}
	n := x.Dim(0)
	oh, ow := c.geom.OutHW()
	s := oh * ow
	kdim := c.geom.InC * c.geom.KH * c.geom.KW
	w2d := c.w2d
	c.inShape = append(c.inShape[:0], n, c.geom.InC, c.geom.InH, c.geom.InW)

	cols := c.cols.get(kdim, n*s)
	if err := tensor.Im2ColBatchInto(cols, x, c.geom); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
	}
	// Forward GEMM: (outC, kdim)·(kdim, N·S). Wide enough shapes pack the
	// column matrix into the layer arena and run the register-blocked
	// micro-kernels; narrow ones (tiny outC at small width multipliers)
	// keep the direct AXPY path, same rule the generic MatMul routing
	// applies.
	prod := c.gemm.get(c.outC, n*s)
	if tensor.PackWorthF32(c.outC, kdim, n*s) {
		if err := c.pb.PackB(cols.Data(), kdim, n*s); err != nil {
			return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
		}
		if err := tensor.MatMulF32PackedInto(prod.Data(), w2d.Data(), &c.pb, c.outC, kdim); err != nil {
			return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
		}
	} else if err := tensor.MatMulInto(prod, w2d, cols); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
	}

	// Reorder (outC, N·S) into NCHW and fold in the bias: out sample-major,
	// prod channel-major, so each (i, oc) plane is one contiguous block.
	out := c.out.get(n, c.outC, oh, ow)
	od, pd := out.Data(), prod.Data()
	var bd []float32
	if c.bias != nil {
		bd = c.bias.Value.Data()
	}
	tensor.ParallelFor(n, func(i int) {
		for oc := 0; oc < c.outC; oc++ {
			src := pd[oc*n*s+i*s : oc*n*s+(i+1)*s]
			dst := od[(i*c.outC+oc)*s : (i*c.outC+oc+1)*s]
			if bd == nil {
				copy(dst, src)
				continue
			}
			b := bd[oc]
			for j, v := range src {
				dst[j] = v + b
			}
		}
	})
	c.ready = true
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if !c.ready {
		return nil, fmt.Errorf("conv2d %q: backward before forward", c.name)
	}
	n := c.inShape[0]
	oh, ow := c.geom.OutHW()
	s := oh * ow
	if dout.Rank() != 4 || dout.Dim(0) != n || dout.Dim(1) != c.outC || dout.Dim(2) != oh || dout.Dim(3) != ow {
		return nil, fmt.Errorf("conv2d %q: %w: dout %v, want (%d,%d,%d,%d)",
			c.name, tensor.ErrShape, dout.Shape(), n, c.outC, oh, ow)
	}
	kdim := c.geom.InC * c.geom.KH * c.geom.KW
	w2d := c.w2d

	// Reorder dout (N, outC, S) into the channel-major (outC, N·S) layout
	// the GEMMs want, reusing the forward GEMM arena, and reduce the bias
	// gradient along the way.
	d2d := c.gemm.get(c.outC, n*s)
	dd, d2 := dout.Data(), d2d.Data()
	tensor.ParallelFor(c.outC, func(oc int) {
		for i := 0; i < n; i++ {
			copy(d2[oc*n*s+i*s:oc*n*s+(i+1)*s], dd[(i*c.outC+oc)*s:(i*c.outC+oc+1)*s])
		}
	})
	if c.bias != nil {
		gb := c.bias.Grad.Data()
		for oc := 0; oc < c.outC; oc++ {
			row := d2[oc*n*s : (oc+1)*n*s]
			var sum float32
			for _, v := range row {
				sum += v
			}
			gb[oc] += sum
		}
	}

	// dW = dout2d · colsᵀ → (outC, kdim), accumulated into the grad.
	cols := c.cols.get(kdim, n*s)
	dw := c.dw.get(c.outC, kdim)
	if err := tensor.MatMulTransBInto(dw, d2d, cols); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
	}
	gw := c.weight.Grad.Data()
	for j, v := range dw.Data() {
		gw[j] += v
	}

	// dcols = Wᵀ · dout2d → (kdim, N·S), scattered back to image space.
	// Like the forward product, wide shapes pack dout2d into the layer
	// arena (free after the dW product above) and run the transposed-A
	// packed kernel.
	dcols := c.dcols.get(kdim, n*s)
	if tensor.PackWorthF32(kdim, c.outC, n*s) {
		if err := c.pb.PackB(d2d.Data(), c.outC, n*s); err != nil {
			return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
		}
		if err := tensor.MatMulF32PackedTransAInto(dcols.Data(), w2d.Data(), &c.pb, kdim, kdim); err != nil {
			return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
		}
	} else if err := tensor.MatMulTransAInto(dcols, w2d, d2d); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
	}
	dx := c.dx.get(c.inShape...)
	if err := tensor.Col2ImBatchInto(dx, dcols, c.geom); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, err)
	}
	c.ready = false
	return dx, nil
}
