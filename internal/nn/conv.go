package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2D is a standard 2-D convolution over NCHW batches, computed as
// im2col + GEMM per sample with the batch parallelized across workers. The
// input spatial size is fixed at construction (CIFAR-style pipelines have
// static geometry), which lets the layer report exact MAC counts to the
// energy model.
type Conv2D struct {
	name    string
	geom    tensor.ConvGeom
	outC    int
	weight  *Param // (outC, inC, KH, KW) viewed as (outC, inC*KH*KW)
	bias    *Param // (outC), nil when disabled
	cols    []*tensor.Tensor
	inShape []int
}

// Conv2DConfig configures NewConv2D.
type Conv2DConfig struct {
	Name string
	In   tensor.ConvGeom // InC/InH/InW/KH/KW/Stride/Pad
	OutC int
	Bias bool
	RNG  *tensor.RNG
}

// NewConv2D constructs a convolution with He-normal initialized weights.
func NewConv2D(cfg Conv2DConfig) (*Conv2D, error) {
	if err := cfg.In.Validate(); err != nil {
		return nil, fmt.Errorf("conv2d %q: %w", cfg.Name, err)
	}
	if cfg.OutC <= 0 {
		return nil, fmt.Errorf("conv2d %q: %w: outC %d", cfg.Name, tensor.ErrShape, cfg.OutC)
	}
	g := cfg.In
	w := tensor.New(cfg.OutC, g.InC, g.KH, g.KW)
	w.FillHeNormal(cfg.RNG, g.InC*g.KH*g.KW)
	c := &Conv2D{
		name:   cfg.Name,
		geom:   g,
		outC:   cfg.OutC,
		weight: NewParam(cfg.Name+".weight", w),
	}
	if cfg.Bias {
		c.bias = NewParam(cfg.Name+".bias", tensor.New(cfg.OutC))
	}
	return c, nil
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param {
	if c.bias == nil {
		return []*Param{c.weight}
	}
	return []*Param{c.weight, c.bias}
}

// MACs implements Coster: outC · OH · OW · inC · KH · KW per sample.
func (c *Conv2D) MACs() int64 {
	oh, ow := c.geom.OutHW()
	return int64(c.outC) * int64(oh) * int64(ow) *
		int64(c.geom.InC) * int64(c.geom.KH) * int64(c.geom.KW)
}

// Geom exposes the convolution geometry (used by model builders).
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != c.geom.InC || x.Dim(2) != c.geom.InH || x.Dim(3) != c.geom.InW {
		return nil, fmt.Errorf("conv2d %q: %w: input %v, want (N,%d,%d,%d)",
			c.name, tensor.ErrShape, x.Shape(), c.geom.InC, c.geom.InH, c.geom.InW)
	}
	n := x.Dim(0)
	oh, ow := c.geom.OutHW()
	out := tensor.New(n, c.outC, oh, ow)
	kdim := c.geom.InC * c.geom.KH * c.geom.KW
	w2d := c.weight.Value.MustReshape(c.outC, kdim)
	c.cols = make([]*tensor.Tensor, n)
	c.inShape = x.Shape()

	inSz := c.geom.InC * c.geom.InH * c.geom.InW
	outSz := c.outC * oh * ow
	var ferr error
	tensor.ParallelFor(n, func(i int) {
		img, err := tensor.FromSlice(x.Data()[i*inSz:(i+1)*inSz], c.geom.InC, c.geom.InH, c.geom.InW)
		if err != nil {
			ferr = err
			return
		}
		cols, err := tensor.Im2Col(img, c.geom)
		if err != nil {
			ferr = err
			return
		}
		c.cols[i] = cols
		prod, err := tensor.MatMul(w2d, cols) // (outC, oh*ow)
		if err != nil {
			ferr = err
			return
		}
		copy(out.Data()[i*outSz:(i+1)*outSz], prod.Data())
	})
	if ferr != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, ferr)
	}
	if c.bias != nil {
		bd := c.bias.Value.Data()
		od := out.Data()
		plane := oh * ow
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.outC; oc++ {
				b := bd[oc]
				row := od[(i*c.outC+oc)*plane : (i*c.outC+oc+1)*plane]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (c *Conv2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if c.cols == nil {
		return nil, fmt.Errorf("conv2d %q: backward before forward", c.name)
	}
	n := dout.Dim(0)
	oh, ow := c.geom.OutHW()
	if dout.Rank() != 4 || dout.Dim(1) != c.outC || dout.Dim(2) != oh || dout.Dim(3) != ow || n != len(c.cols) {
		return nil, fmt.Errorf("conv2d %q: %w: dout %v, want (%d,%d,%d,%d)",
			c.name, tensor.ErrShape, dout.Shape(), len(c.cols), c.outC, oh, ow)
	}
	kdim := c.geom.InC * c.geom.KH * c.geom.KW
	w2d := c.weight.Value.MustReshape(c.outC, kdim)
	dx := tensor.New(c.inShape...)
	inSz := c.geom.InC * c.geom.InH * c.geom.InW
	outSz := c.outC * oh * ow

	dws := make([]*tensor.Tensor, n)
	var ferr error
	tensor.ParallelFor(n, func(i int) {
		d2d, err := tensor.FromSlice(dout.Data()[i*outSz:(i+1)*outSz], c.outC, oh*ow)
		if err != nil {
			ferr = err
			return
		}
		// dW contribution: dout2d · colsᵀ → (outC, kdim)
		dw, err := tensor.MatMulTransB(d2d, c.cols[i])
		if err != nil {
			ferr = err
			return
		}
		dws[i] = dw
		// dcols: Wᵀ · dout2d → (kdim, oh*ow)
		dcols, err := tensor.MatMulTransA(w2d, d2d)
		if err != nil {
			ferr = err
			return
		}
		dimg, err := tensor.Col2Im(dcols, c.geom)
		if err != nil {
			ferr = err
			return
		}
		copy(dx.Data()[i*inSz:(i+1)*inSz], dimg.Data())
	})
	if ferr != nil {
		return nil, fmt.Errorf("conv2d %q: %w", c.name, ferr)
	}
	gw := c.weight.Grad.Data()
	for _, dw := range dws {
		for j, v := range dw.Data() {
			gw[j] += v
		}
	}
	if c.bias != nil {
		gb := c.bias.Grad.Data()
		plane := oh * ow
		dd := dout.Data()
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.outC; oc++ {
				row := dd[(i*c.outC+oc)*plane : (i*c.outC+oc+1)*plane]
				var s float32
				for _, v := range row {
					s += v
				}
				gb[oc] += s
			}
		}
	}
	c.cols = nil // release cache
	return dx, nil
}
