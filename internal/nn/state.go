package nn

import (
	"fmt"

	"repro/internal/quant"
)

// Replica state export/import. Data-parallel training (internal/dist)
// keeps one full model replica per worker and must hold them bit-identical
// to the parameter server's canonical copy between rounds. That requires
// moving not just the weight values but the whole precision state: the
// affine quant grid of every parameter (bitwidth, range, ε), any fp32
// master copy, and the batch-norm running statistics the replica evaluates
// with. NetState is that complete snapshot; Capture/Restore convert a live
// layer tree to and from it, and SyncParams is the allocation-free fast
// path used on the broadcast hot loop.
//
// Ownership rules: a NetState owns its payload slices (CaptureState copies
// out of the live tensors), so a snapshot stays valid while training
// continues. RestoreState and SyncParams copy *into* the destination's
// existing tensors and never alias source storage, so a server and its
// replicas share nothing after a sync.

// ParamState is one parameter's exported state: the value payload, the
// optional fp32 master copy, and the affine quantization grid (nil for a
// full-precision parameter).
type ParamState struct {
	Name   string
	Value  []float32
	Master []float32
	Quant  *quant.State
}

// BatchNormState is one batch-norm layer's running statistics.
type BatchNormState struct {
	Name string
	Mean []float64
	Var  []float64
}

// NetState is a complete snapshot of a network's learnable and
// normalization state.
type NetState struct {
	Params     []ParamState
	BatchNorms []BatchNormState
}

// WalkLayers visits every layer of the tree depth-first, containers before
// their children.
func WalkLayers(layers []Layer, visit func(Layer)) {
	for _, l := range layers {
		visit(l)
		switch v := l.(type) {
		case *Sequential:
			WalkLayers(v.Layers(), visit)
		case *Residual:
			WalkLayers(v.Inner(), visit)
		}
	}
}

// CollectBatchNorms walks the layer tree for batch-norm layers in order.
func CollectBatchNorms(layers []Layer) []*BatchNorm2D {
	var out []*BatchNorm2D
	WalkLayers(layers, func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			out = append(out, bn)
		}
	})
	return out
}

// CaptureState snapshots every parameter (value, master, quant grid) and
// every batch-norm layer's running statistics. The returned state shares
// no storage with the live model.
func CaptureState(layers []Layer) *NetState {
	params := CollectParams(layers)
	st := &NetState{Params: make([]ParamState, 0, len(params))}
	for _, p := range params {
		ps := ParamState{Name: p.Name, Value: append([]float32(nil), p.Value.Data()...)}
		if p.Master != nil {
			ps.Master = append([]float32(nil), p.Master.Data()...)
		}
		if p.Q != nil {
			q := *p.Q
			ps.Quant = &q
		}
		st.Params = append(st.Params, ps)
	}
	for _, bn := range CollectBatchNorms(layers) {
		mean, variance := bn.RunningStats()
		st.BatchNorms = append(st.BatchNorms, BatchNormState{Name: bn.Name(), Mean: mean, Var: variance})
	}
	return st
}

// RestoreState imports a snapshot into a model of identical architecture
// (same parameter order, names, shapes and batch-norm layers). After it
// returns, the model's learnable state is bit-identical to the snapshot.
func RestoreState(layers []Layer, st *NetState) error {
	params := CollectParams(layers)
	if len(params) != len(st.Params) {
		return fmt.Errorf("nn: restore: snapshot has %d parameters, model has %d", len(st.Params), len(params))
	}
	for i, p := range params {
		ps := &st.Params[i]
		if p.Name != ps.Name {
			return fmt.Errorf("nn: restore: parameter %d is %q, snapshot has %q", i, p.Name, ps.Name)
		}
		if len(ps.Value) != p.Value.Len() {
			return fmt.Errorf("nn: restore %s: %d values for %d elements", p.Name, len(ps.Value), p.Value.Len())
		}
		copy(p.Value.Data(), ps.Value)
		if ps.Master != nil {
			if p.Master == nil {
				p.EnableMaster()
			}
			if len(ps.Master) != p.Master.Len() {
				return fmt.Errorf("nn: restore %s: %d master values for %d elements", p.Name, len(ps.Master), p.Master.Len())
			}
			copy(p.Master.Data(), ps.Master)
		} else {
			p.Master = nil
		}
		if ps.Quant != nil {
			q := *ps.Quant
			p.Q = &q
		} else {
			p.Q = nil
		}
	}
	bns := CollectBatchNorms(layers)
	byName := make(map[string]*BatchNorm2D, len(bns))
	for _, bn := range bns {
		byName[bn.Name()] = bn
	}
	for _, bs := range st.BatchNorms {
		bn, ok := byName[bs.Name]
		if !ok {
			return fmt.Errorf("nn: restore: batch-norm %q not in model", bs.Name)
		}
		if err := bn.SetRunningStats(bs.Mean, bs.Var); err != nil {
			return fmt.Errorf("nn: restore: %w", err)
		}
	}
	return nil
}

// SyncParams copies values, master copies and quant state from src into
// dst in place — the replica-broadcast fast path, with no intermediate
// buffers. The two lists must come from identically-built models. Batch
// norm running statistics are NOT synced (they are worker-local state in
// data-parallel training); use CaptureState/RestoreState for a full clone.
func SyncParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: sync: %d parameters vs %d", len(dst), len(src))
	}
	for i, d := range dst {
		s := src[i]
		if d.Name != s.Name {
			return fmt.Errorf("nn: sync: parameter %d is %q vs %q", i, d.Name, s.Name)
		}
		if err := d.Value.CopyFrom(s.Value); err != nil {
			return fmt.Errorf("nn: sync %s: %w", d.Name, err)
		}
		if s.Master != nil {
			if d.Master == nil {
				d.Master = s.Master.Clone()
			} else if err := d.Master.CopyFrom(s.Master); err != nil {
				return fmt.Errorf("nn: sync %s master: %w", d.Name, err)
			}
		} else {
			d.Master = nil
		}
		switch {
		case s.Q == nil:
			d.Q = nil
		case d.Q == nil:
			q := *s.Q
			d.Q = &q
		default:
			*d.Q = *s.Q // in place: no allocation on the broadcast hot loop
		}
	}
	return nil
}
