package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// GlobalAvgPool reduces an NCHW batch to (N, C) by averaging each channel
// plane; the CIFAR backbones in the paper all end with it.
type GlobalAvgPool struct {
	name    string
	inShape []int

	outA arenaTensor
	dxA  arenaTensor
}

// NewGlobalAvgPool constructs the layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Name implements Layer.
func (p *GlobalAvgPool) Name() string { return p.name }

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*Param { return nil }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("gap %q: %w: input %v", p.name, tensor.ErrShape, x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = x.Shape()
	out := p.outA.get(n, c)
	plane := h * w
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(plane)
	for i := 0; i < n; i++ {
		for cc := 0; cc < c; cc++ {
			row := xd[(i*c+cc)*plane : (i*c+cc+1)*plane]
			var s float32
			for _, v := range row {
				s += v
			}
			od[i*c+cc] = s * inv
		}
	}
	return out, nil
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if p.inShape == nil {
		return nil, fmt.Errorf("gap %q: backward before forward", p.name)
	}
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	if dout.Rank() != 2 || dout.Dim(0) != n || dout.Dim(1) != c {
		return nil, fmt.Errorf("gap %q: %w: dout %v, want (%d,%d)", p.name, tensor.ErrShape, dout.Shape(), n, c)
	}
	dx := p.dxA.get(p.inShape...)
	plane := h * w
	dd, dxd := dout.Data(), dx.Data()
	inv := 1 / float32(plane)
	for i := 0; i < n; i++ {
		for cc := 0; cc < c; cc++ {
			g := dd[i*c+cc] * inv
			row := dxd[(i*c+cc)*plane : (i*c+cc+1)*plane]
			for j := range row {
				row[j] = g
			}
		}
	}
	p.inShape = nil
	return dx, nil
}

// MaxPool2D is a max pooling layer with square window and stride equal to
// the window size (the common non-overlapping configuration).
type MaxPool2D struct {
	name    string
	k       int
	argmax  []int
	inShape []int
	ready   bool

	outA    arenaTensor
	dxA     arenaTensor
	argmaxA []int
}

// NewMaxPool2D constructs a k×k non-overlapping max pool.
func NewMaxPool2D(name string, k int) (*MaxPool2D, error) {
	if k <= 0 {
		return nil, fmt.Errorf("maxpool %q: %w: window %d", name, tensor.ErrShape, k)
	}
	return &MaxPool2D{name: name, k: k}, nil
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Window returns the pooling window size (stride equals the window).
func (p *MaxPool2D) Window() int { return p.k }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() != 4 {
		return nil, fmt.Errorf("maxpool %q: %w: input %v", p.name, tensor.ErrShape, x.Shape())
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%p.k != 0 || w%p.k != 0 {
		return nil, fmt.Errorf("maxpool %q: %w: input %dx%d not divisible by window %d", p.name, tensor.ErrShape, h, w, p.k)
	}
	oh, ow := h/p.k, w/p.k
	out := p.outA.get(n, c, oh, ow)
	p.inShape = x.Shape()
	p.argmax = growInt(&p.argmaxA, out.Len())
	p.ready = true
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for cc := 0; cc < c; cc++ {
			base := (i*c + cc) * h * w
			obase := (i*c + cc) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					bi := base + oy*p.k*w + ox*p.k
					bv := xd[bi]
					for ky := 0; ky < p.k; ky++ {
						for kx := 0; kx < p.k; kx++ {
							idx := base + (oy*p.k+ky)*w + ox*p.k + kx
							if xd[idx] > bv {
								bv = xd[idx]
								bi = idx
							}
						}
					}
					od[obase+oy*ow+ox] = bv
					p.argmax[obase+oy*ow+ox] = bi
				}
			}
		}
	}
	return out, nil
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if !p.ready {
		return nil, fmt.Errorf("maxpool %q: backward before forward", p.name)
	}
	if dout.Len() != len(p.argmax) {
		return nil, fmt.Errorf("maxpool %q: %w: dout %v", p.name, tensor.ErrShape, dout.Shape())
	}
	dx := p.dxA.get(p.inShape...)
	dx.Zero()
	dxd := dx.Data()
	for i, g := range dout.Data() {
		dxd[p.argmax[i]] += g
	}
	p.ready = false
	return dx, nil
}

// Flatten reshapes (N, C, H, W) to (N, C·H·W).
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs the layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	if x.Rank() < 2 {
		return nil, fmt.Errorf("flatten %q: %w: input %v", f.name, tensor.ErrShape, x.Shape())
	}
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if f.inShape == nil {
		return nil, fmt.Errorf("flatten %q: backward before forward", f.name)
	}
	dx, err := dout.Reshape(f.inShape...)
	f.inShape = nil
	return dx, err
}
