package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// DepthwiseConv2D convolves each input channel with its own k×k filter
// (groups == channels), the building block of MobileNetV2's inverted
// residuals.
type DepthwiseConv2D struct {
	name    string
	geom    tensor.ConvGeom // InC = channels; KH = KW = k
	weight  *Param          // (C, KH, KW)
	x       *tensor.Tensor
	inShape []int

	outA arenaTensor // (N, C, OH, OW)
	dxA  arenaTensor // (N, C, InH, InW)
	dws  []float32   // per-(sample, channel) weight-grad slots
}

// NewDepthwiseConv2D constructs a depthwise convolution.
func NewDepthwiseConv2D(name string, g tensor.ConvGeom, rng *tensor.RNG) (*DepthwiseConv2D, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dwconv %q: %w", name, err)
	}
	w := tensor.New(g.InC, g.KH, g.KW)
	w.FillHeNormal(rng, g.KH*g.KW)
	return &DepthwiseConv2D{name: name, geom: g, weight: NewParam(name+".weight", w)}, nil
}

// Name implements Layer.
func (d *DepthwiseConv2D) Name() string { return d.name }

// Params implements Layer.
func (d *DepthwiseConv2D) Params() []*Param { return []*Param{d.weight} }

// MACs implements Coster: C · OH · OW · KH · KW per sample.
func (d *DepthwiseConv2D) MACs() int64 {
	oh, ow := d.geom.OutHW()
	return int64(d.geom.InC) * int64(oh) * int64(ow) * int64(d.geom.KH) * int64(d.geom.KW)
}

// Forward implements Layer.
func (d *DepthwiseConv2D) Forward(x *tensor.Tensor, train bool) (*tensor.Tensor, error) {
	g := d.geom
	if x.Rank() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		return nil, fmt.Errorf("dwconv %q: %w: input %v, want (N,%d,%d,%d)", d.name, tensor.ErrShape, x.Shape(), g.InC, g.InH, g.InW)
	}
	n := x.Dim(0)
	oh, ow := g.OutHW()
	out := d.outA.get(n, g.InC, oh, ow)
	d.x = x
	d.inShape = x.Shape()
	xd, od, wd := x.Data(), out.Data(), d.weight.Value.Data()
	tensor.ParallelFor(n*g.InC, func(nc int) {
		c := nc % g.InC
		src := xd[nc*g.InH*g.InW : (nc+1)*g.InH*g.InW]
		dst := od[nc*oh*ow : (nc+1)*oh*ow]
		ker := wd[c*g.KH*g.KW : (c+1)*g.KH*g.KW]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						s += src[iy*g.InW+ix] * ker[ky*g.KW+kx]
					}
				}
				dst[oy*ow+ox] = s
			}
		}
	})
	return out, nil
}

// Backward implements Layer.
func (d *DepthwiseConv2D) Backward(dout *tensor.Tensor) (*tensor.Tensor, error) {
	if d.x == nil {
		return nil, fmt.Errorf("dwconv %q: backward before forward", d.name)
	}
	g := d.geom
	n := d.x.Dim(0)
	oh, ow := g.OutHW()
	if dout.Rank() != 4 || dout.Dim(0) != n || dout.Dim(1) != g.InC || dout.Dim(2) != oh || dout.Dim(3) != ow {
		return nil, fmt.Errorf("dwconv %q: %w: dout %v", d.name, tensor.ErrShape, dout.Shape())
	}
	dx := d.dxA.get(d.inShape...)
	dx.Zero()
	xd, dd, dxd := d.x.Data(), dout.Data(), dx.Data()
	wd := d.weight.Value.Data()
	// Per-(sample, channel) weight-grad slots in one flat scratch buffer,
	// reduced serially afterwards to keep the parallel section race-free.
	kk := g.KH * g.KW
	dws := growF32(&d.dws, n*g.InC*kk)
	tensor.ParallelFor(n*g.InC, func(nc int) {
		c := nc % g.InC
		src := xd[nc*g.InH*g.InW : (nc+1)*g.InH*g.InW]
		dsrc := dd[nc*oh*ow : (nc+1)*oh*ow]
		ddst := dxd[nc*g.InH*g.InW : (nc+1)*g.InH*g.InW]
		ker := wd[c*g.KH*g.KW : (c+1)*g.KH*g.KW]
		dw := dws[nc*kk : (nc+1)*kk]
		for j := range dw {
			dw[j] = 0
		}
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				gv := dsrc[oy*ow+ox]
				if gv == 0 {
					continue
				}
				for ky := 0; ky < g.KH; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for kx := 0; kx < g.KW; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dw[ky*g.KW+kx] += gv * src[iy*g.InW+ix]
						ddst[iy*g.InW+ix] += gv * ker[ky*g.KW+kx]
					}
				}
			}
		}
	})
	gw := d.weight.Grad.Data()
	for nc := 0; nc < n*g.InC; nc++ {
		c := nc % g.InC
		off := c * kk
		dw := dws[nc*kk : (nc+1)*kk]
		for j, v := range dw {
			gw[off+j] += v
		}
	}
	d.x = nil
	return dx, nil
}
