// Package benchkit defines the tensor-engine benchmark workloads shared
// by the root package's micro-benchmarks (go test -bench) and
// cmd/aptbench -kernels (the BENCH_tensor.json trajectory). Keeping the
// shapes, seeds and warm-up in one place guarantees both harnesses
// measure the same workload.
package benchkit

import (
	"repro/internal/nn"
	"repro/internal/tensor"
)

// MatMul256 returns the operands of the square mid-size GEMM benchmark.
func MatMul256() (x, y *tensor.Tensor) {
	rng := tensor.NewRNG(21)
	x = tensor.New(256, 256)
	y = tensor.New(256, 256)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	return x, y
}

// MatMul256Flops is the FLOP count (2·MACs) of one MatMul256 op.
const MatMul256Flops = 2 * 256 * 256 * 256

// ConvShapedGEMM returns the GEMM shape the batched conv path produces
// for SmallCNN's first layer at batch 64: (16, 27)·(27, 65536).
func ConvShapedGEMM() (w, cols *tensor.Tensor) {
	rng := tensor.NewRNG(22)
	w = tensor.New(16, 27)
	cols = tensor.New(27, 64*32*32)
	w.FillNormal(rng, 0, 1)
	cols.FillNormal(rng, 0, 1)
	return w, cols
}

// ConvShapedGEMMFlops is the FLOP count of one ConvShapedGEMM op.
const ConvShapedGEMMFlops = 2 * 16 * 27 * 64 * 32 * 32

// Conv64 builds the SmallCNN-shaped first convolution (3→16 channels,
// 3×3, stride 1, pad 1 on 32×32 inputs) and a batch-64 input — the
// steady-state training shape of the conv/GEMM hot path.
func Conv64() (*nn.Conv2D, *tensor.Tensor, error) {
	rng := tensor.NewRNG(23)
	conv, err := nn.NewConv2D(nn.Conv2DConfig{
		Name: "bench",
		In:   tensor.ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1},
		OutC: 16, Bias: true, RNG: rng,
	})
	if err != nil {
		return nil, nil, err
	}
	x := tensor.New(64, 3, 32, 32)
	x.FillNormal(rng, 0, 1)
	return conv, x, nil
}

// Conv64ForwardFlops is the FLOP count of one batch-64 conv forward.
const Conv64ForwardFlops = 2 * 64 * 16 * 32 * 32 * 27
