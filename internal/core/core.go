// Package core implements the paper's contribution: Adaptive Precision
// Training. It profiles each learnable tensor's quantization-underflow
// metric Gavg (Eq. 4) during training, smooths it with a moving average
// (Algorithm 2, line 8), and between epochs applies the precision
// adjustment policy (Algorithm 1): raise a layer's bitwidth when its Gavg
// falls below Tmin (the layer is starving — most updates underflow) and
// lower it when Gavg exceeds Tmax (the layer is over-provisioned).
//
// The controller owns no training state of its own beyond the per-layer
// moving averages and traces; it observes nn.Param objects and mutates
// only their bitwidth.
package core

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/quant"
)

// Config parameterizes APT. The zero value is not useful; use
// DefaultConfig and override fields.
type Config struct {
	// InitBits is the bitwidth every layer starts at (the paper uses 6
	// throughout and shows the choice is not critical).
	InitBits int
	// MinBits and MaxBits clamp the policy (Algorithm 1 uses 2 and 32).
	MinBits int
	MaxBits int
	// Tmin is the lower Gavg threshold: below it a layer gains a bit.
	// This is the paper's application-specific knob (§IV uses 6.0 for the
	// headline results and sweeps 0.1–100 in Figure 5).
	Tmin float64
	// Tmax is the upper threshold: above it a layer loses a bit. The
	// paper's headline setting is +Inf (never reduce).
	Tmax float64
	// Interval is the profiling period in iterations (Algorithm 2 line 6):
	// Gavg is evaluated every Interval-th iteration.
	Interval int
	// EMADecay is the smoothing factor for the moving average on Gavg:
	// avg ← (1−EMADecay)·avg + EMADecay·sample.
	EMADecay float64
	// Step is the per-adjustment bitwidth increment (1 in Algorithm 1;
	// the ablation benchmarks vary it).
	Step int
	// Metric selects the underflow statistic: MetricGavg is the paper's
	// Eq. 4; MetricUnderflowFraction is the ablation alternative.
	Metric Metric
}

// Metric selects which per-layer statistic drives the policy.
type Metric int

// Metric values.
const (
	// MetricGavg is the paper's Eq. 4: mean |g/ε|. Larger is healthier.
	MetricGavg Metric = iota
	// MetricUnderflowFraction is 1 − fraction of underflowing elements,
	// rescaled so the same Tmin/Tmax semantics apply (larger = healthier).
	MetricUnderflowFraction
)

// DefaultConfig returns the paper's experimental setting: start at 6 bits,
// (Tmin, Tmax) = (6.0, +Inf), profile a few times per epoch.
func DefaultConfig() Config {
	return Config{
		InitBits: 6,
		MinBits:  quant.MinBits,
		MaxBits:  quant.MaxBits,
		Tmin:     6.0,
		Tmax:     math.Inf(1),
		Interval: 10,
		EMADecay: 0.3,
		Step:     1,
		Metric:   MetricGavg,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.InitBits < c.MinBits || c.InitBits > c.MaxBits {
		return fmt.Errorf("core: init bits %d outside [%d, %d]", c.InitBits, c.MinBits, c.MaxBits)
	}
	if c.MinBits < quant.MinBits || c.MaxBits > quant.MaxBits || c.MinBits > c.MaxBits {
		return fmt.Errorf("core: bit range [%d, %d] outside [%d, %d]", c.MinBits, c.MaxBits, quant.MinBits, quant.MaxBits)
	}
	if c.Tmin >= c.Tmax {
		return fmt.Errorf("core: Tmin %g must be below Tmax %g", c.Tmin, c.Tmax)
	}
	if c.Interval <= 0 {
		return fmt.Errorf("core: non-positive interval %d", c.Interval)
	}
	if c.EMADecay <= 0 || c.EMADecay > 1 {
		return fmt.Errorf("core: EMA decay %g outside (0, 1]", c.EMADecay)
	}
	if c.Step <= 0 {
		return fmt.Errorf("core: non-positive step %d", c.Step)
	}
	return nil
}

// Change records one policy decision for tracing.
type Change struct {
	Param string
	From  int
	To    int
	Gavg  float64
}

// Controller drives APT for one training run.
type Controller struct {
	cfg    Config
	params []*nn.Param
	avg    map[*nn.Param]float64
	seen   map[*nn.Param]bool
	iter   int

	// traces, appended per ObserveBatch/AdjustEpoch for the experiment
	// harness (Figures 1 and 3).
	gavgTrace map[string][]float64
	bitsTrace map[string][]int
}

// NewController initializes every parameter to cfg.InitBits (Algorithm 2
// line 1) and returns the controller. Parameters already carrying a
// master copy are left untouched (the controller manages APT-mode
// parameters only).
func NewController(cfg Config, params []*nn.Param) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:       cfg,
		params:    params,
		avg:       make(map[*nn.Param]float64, len(params)),
		seen:      make(map[*nn.Param]bool, len(params)),
		gavgTrace: make(map[string][]float64),
		bitsTrace: make(map[string][]int),
	}
	for _, p := range params {
		if err := p.SetBits(cfg.InitBits); err != nil {
			return nil, fmt.Errorf("core: %s: %w", p.Name, err)
		}
	}
	return c, nil
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// ObserveBatch implements Algorithm 2 lines 6–9: on every Interval-th
// call it evaluates the metric on the current gradients and folds it into
// the per-layer moving average. Call it once per iteration, after the
// backward pass and before the optimizer clears gradients.
func (c *Controller) ObserveBatch() {
	c.iter++
	if (c.iter-1)%c.cfg.Interval != 0 {
		return
	}
	for _, p := range c.params {
		sample := c.metric(p)
		if !c.seen[p] {
			c.avg[p] = sample
			c.seen[p] = true
			continue
		}
		c.avg[p] = (1-c.cfg.EMADecay)*c.avg[p] + c.cfg.EMADecay*sample
	}
}

func (c *Controller) metric(p *nn.Param) float64 {
	switch c.cfg.Metric {
	case MetricUnderflowFraction:
		eps := p.Eps()
		if eps == 0 {
			return quant.GavgFullPrecision
		}
		// Map "fraction of healthy elements" onto the Gavg threshold
		// scale: healthy-fraction / (1 − healthy-fraction), which grows
		// without bound as underflow vanishes.
		uf := quant.UnderflowFraction(p.Grad, eps)
		healthy := 1 - uf
		if healthy >= 1 {
			return quant.GavgFullPrecision
		}
		return healthy / (1 - healthy)
	default:
		return p.Gavg()
	}
}

// Gavg returns the current moving-average metric for a parameter (0 when
// never observed).
func (c *Controller) Gavg(p *nn.Param) float64 { return c.avg[p] }

// AdjustEpoch implements Algorithm 1 at an epoch boundary: every
// parameter whose smoothed metric is below Tmin gains Step bits (up to
// MaxBits) and every parameter above Tmax loses Step bits (down to
// MinBits). It records traces and returns the changes made.
func (c *Controller) AdjustEpoch() ([]Change, error) {
	var changes []Change
	for _, p := range c.params {
		g := c.avg[p]
		if !c.seen[p] {
			// Never observed this epoch window: record the full-precision
			// sentinel, not 0 — a 0 would plot as "maximally starving" in
			// the Figure 1 harness and could be picked as the starved
			// layer. The adjustment below is already gated on seen.
			g = quant.GavgFullPrecision
		}
		c.gavgTrace[p.Name] = append(c.gavgTrace[p.Name], g)
		k := p.Bits()
		next := k
		if c.seen[p] {
			if g < c.cfg.Tmin && k < c.cfg.MaxBits {
				next = k + c.cfg.Step
				if next > c.cfg.MaxBits {
					next = c.cfg.MaxBits
				}
			}
			if g > c.cfg.Tmax && k > c.cfg.MinBits {
				next = k - c.cfg.Step
				if next < c.cfg.MinBits {
					next = c.cfg.MinBits
				}
			}
		}
		if next != k {
			if err := p.SetBits(next); err != nil {
				return nil, fmt.Errorf("core: %s: %w", p.Name, err)
			}
			changes = append(changes, Change{Param: p.Name, From: k, To: next, Gavg: g})
		}
		c.bitsTrace[p.Name] = append(c.bitsTrace[p.Name], p.Bits())
	}
	return changes, nil
}

// GavgTrace returns the per-epoch moving-average Gavg recorded for a
// parameter name (Figure 1).
func (c *Controller) GavgTrace(name string) []float64 { return c.gavgTrace[name] }

// BitsTrace returns the per-epoch bitwidth recorded for a parameter name
// (Figure 3).
func (c *Controller) BitsTrace(name string) []int { return c.bitsTrace[name] }

// TracedParams returns the names of all parameters the controller manages,
// in order.
func (c *Controller) TracedParams() []string {
	names := make([]string, 0, len(c.params))
	for _, p := range c.params {
		names = append(names, p.Name)
	}
	return names
}

// MeanBits returns the parameter-count-weighted mean bitwidth across the
// managed parameters — a single-number summary of the precision state.
func (c *Controller) MeanBits() float64 {
	var bits, n float64
	for _, p := range c.params {
		w := float64(p.Value.Len())
		bits += w * float64(p.Bits())
		n += w
	}
	if n == 0 {
		return 0
	}
	return bits / n
}
