package core

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func budgetParams(t *testing.T, sizes []int, bits int) []*nn.Param {
	t.Helper()
	rng := tensor.NewRNG(17)
	ps := make([]*nn.Param, len(sizes))
	for i, n := range sizes {
		v := tensor.New(n)
		v.FillNormal(rng, 0, 1)
		ps[i] = nn.NewParam(string(rune('a'+i)), v)
		if err := ps[i].SetBits(bits); err != nil {
			t.Fatalf("SetBits: %v", err)
		}
	}
	return ps
}

func TestBudgetPolicyGrowsStarvingLayers(t *testing.T) {
	ps := budgetParams(t, []int{100, 100}, 6)
	pol := BudgetPolicy{Tmin: 1.0}
	changes, err := pol.Apply(ps, []float64{0.1, 5.0})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if len(changes) != 1 || changes[0].Param != "a" || changes[0].To != 7 {
		t.Fatalf("changes = %+v, want a: 6->7", changes)
	}
	if ps[0].Bits() != 7 || ps[1].Bits() != 6 {
		t.Errorf("bits = (%d, %d), want (7, 6)", ps[0].Bits(), ps[1].Bits())
	}
}

func TestBudgetPolicyReclaimsFromRichest(t *testing.T) {
	ps := budgetParams(t, []int{100, 100, 100}, 8)
	// Budget allows only 22 bits total across the three layers' 300
	// params: 300*8 = 2400 > 2200, so 2 bits must be shaved — from the
	// layers with the highest Gavg first.
	pol := BudgetPolicy{Tmin: 0.01, BudgetBits: 2200}
	changes, err := pol.Apply(ps, []float64{0.5, 100.0, 50.0})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if ps[1].Bits() >= 8 {
		t.Errorf("highest-Gavg layer kept %d bits", ps[1].Bits())
	}
	if totalBits(ps) > 2200 {
		t.Errorf("still over budget: %d > 2200", totalBits(ps))
	}
	if ps[0].Bits() != 8 {
		t.Errorf("starving-ish layer lost bits first: %d", ps[0].Bits())
	}
	if len(changes) == 0 {
		t.Error("no changes recorded")
	}
}

func TestBudgetPolicyUnreachableBudget(t *testing.T) {
	ps := budgetParams(t, []int{100}, quant.MinBits)
	pol := BudgetPolicy{Tmin: 0.001, BudgetBits: 10} // 100 params can never fit 10 bits
	if _, err := pol.Apply(ps, []float64{5}); err == nil {
		t.Error("unreachable budget did not error")
	}
}

func TestBudgetPolicyMetricMismatch(t *testing.T) {
	ps := budgetParams(t, []int{10}, 6)
	pol := BudgetPolicy{Tmin: 1}
	if _, err := pol.Apply(ps, []float64{1, 2}); err == nil {
		t.Error("metric length mismatch did not error")
	}
}

// Property: after Apply, the model is within budget whenever the budget
// is attainable, and every bitwidth stays in [MinBits, MaxBits].
func TestBudgetPolicyInvariantProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(4)
		sizes := make([]int, n)
		var elems int64
		for i := range sizes {
			sizes[i] = 10 + rng.Intn(100)
			elems += int64(sizes[i])
		}
		ps := make([]*nn.Param, n)
		gavg := make([]float64, n)
		for i, sz := range sizes {
			v := tensor.New(sz)
			v.FillNormal(rng, 0, 1)
			ps[i] = nn.NewParam("p", v)
			if err := ps[i].SetBits(quant.MinBits + rng.Intn(12)); err != nil {
				return false
			}
			gavg[i] = 100 * rng.Float64()
		}
		// Budget somewhere between the floor and a roomy ceiling.
		floor := elems * int64(quant.MinBits)
		budget := floor + int64(rng.Intn(int(elems*14)))
		pol := BudgetPolicy{Tmin: 1.0, BudgetBits: budget}
		if _, err := pol.Apply(ps, gavg); err != nil {
			return false
		}
		if totalBits(ps) > budget {
			return false
		}
		for _, p := range ps {
			if p.Bits() < quant.MinBits || p.Bits() > quant.MaxBits {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
