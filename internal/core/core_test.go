package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/tensor"
)

func makeParams(t *testing.T, n, size int) []*nn.Param {
	t.Helper()
	rng := tensor.NewRNG(7)
	ps := make([]*nn.Param, n)
	for i := range ps {
		v := tensor.New(size)
		v.FillNormal(rng, 0, 1)
		ps[i] = nn.NewParam("p"+string(rune('a'+i)), v)
	}
	return ps
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", func(*Config) {}, true},
		{"init too low", func(c *Config) { c.InitBits = 1 }, false},
		{"init too high", func(c *Config) { c.InitBits = 33 }, false},
		{"tmin >= tmax", func(c *Config) { c.Tmin, c.Tmax = 5, 5 }, false},
		{"zero interval", func(c *Config) { c.Interval = 0 }, false},
		{"bad ema", func(c *Config) { c.EMADecay = 0 }, false},
		{"ema > 1", func(c *Config) { c.EMADecay = 1.5 }, false},
		{"zero step", func(c *Config) { c.Step = 0 }, false},
		{"finite tmax", func(c *Config) { c.Tmax = 50 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate: %v", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate accepted invalid config")
			}
		})
	}
}

func TestControllerInitializesBits(t *testing.T) {
	ps := makeParams(t, 3, 32)
	cfg := DefaultConfig()
	cfg.InitBits = 5
	if _, err := NewController(cfg, ps); err != nil {
		t.Fatalf("NewController: %v", err)
	}
	for _, p := range ps {
		if p.Bits() != 5 {
			t.Errorf("%s bits = %d, want 5", p.Name, p.Bits())
		}
	}
}

func TestPolicyRaisesOnStarvation(t *testing.T) {
	// A parameter with tiny gradients relative to eps (Gavg < Tmin) must
	// gain exactly Step bits at the epoch boundary.
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.InitBits = 6
	cfg.Tmin = 1.0
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	// Gradient far below eps -> underflow -> Gavg ~ 0.01.
	eps := p.Eps()
	p.Grad.Fill(eps / 100)
	ctrl.ObserveBatch()
	changes, err := ctrl.AdjustEpoch()
	if err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if len(changes) != 1 || changes[0].From != 6 || changes[0].To != 7 {
		t.Fatalf("changes = %+v, want one 6->7", changes)
	}
	if p.Bits() != 7 {
		t.Errorf("bits = %d, want 7", p.Bits())
	}
}

func TestPolicyLowersOnOversupply(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.InitBits = 8
	cfg.Tmin = 0.5
	cfg.Tmax = 10
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	p.Grad.Fill(p.Eps() * 100) // Gavg ~ 100 > Tmax
	ctrl.ObserveBatch()
	changes, err := ctrl.AdjustEpoch()
	if err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if len(changes) != 1 || changes[0].To != 7 {
		t.Fatalf("changes = %+v, want one 8->7", changes)
	}
}

func TestPolicyHoldsInBand(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.InitBits = 8
	cfg.Tmin = 0.5
	cfg.Tmax = 100
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	p.Grad.Fill(p.Eps() * 5) // Gavg ~ 5, inside (0.5, 100)
	ctrl.ObserveBatch()
	changes, err := ctrl.AdjustEpoch()
	if err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if len(changes) != 0 {
		t.Fatalf("changes = %+v, want none", changes)
	}
}

func TestPolicyClampsAtBounds(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.InitBits = quant.MaxBits
	cfg.Tmin = 1e6 // always starving
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	ps[0].Grad.Fill(1e-12)
	ctrl.ObserveBatch()
	if _, err := ctrl.AdjustEpoch(); err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if ps[0].Bits() != quant.MaxBits {
		t.Errorf("bits exceeded MaxBits: %d", ps[0].Bits())
	}

	// Lower clamp.
	ps2 := makeParams(t, 1, 64)
	cfg2 := DefaultConfig()
	cfg2.InitBits = quant.MinBits
	cfg2.Tmin = 1e-9
	cfg2.Tmax = 1e-6 // always over-supplied
	cfg2.Interval = 1
	ctrl2, err := NewController(cfg2, ps2)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	ps2[0].Grad.Fill(100)
	ctrl2.ObserveBatch()
	if _, err := ctrl2.AdjustEpoch(); err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if ps2[0].Bits() != quant.MinBits {
		t.Errorf("bits fell below MinBits: %d", ps2[0].Bits())
	}
}

// Property: Algorithm 1 never drives any bitwidth outside
// [MinBits, MaxBits], whatever the gradient stream, and one AdjustEpoch
// moves each layer by at most Step.
func TestPolicyInvariantsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		ps := make([]*nn.Param, 3)
		for i := range ps {
			v := tensor.New(16)
			v.FillNormal(rng, 0, 1)
			ps[i] = nn.NewParam("p", v)
		}
		cfg := DefaultConfig()
		cfg.InitBits = quant.MinBits + rng.Intn(quant.MaxBits-quant.MinBits)
		cfg.Tmin = math.Pow(10, 4*rng.Float64()-2)
		cfg.Tmax = cfg.Tmin * (1 + 10*rng.Float64()) * 1.01
		cfg.Interval = 1
		cfg.Step = 1 + rng.Intn(2)
		ctrl, err := NewController(cfg, ps)
		if err != nil {
			return false
		}
		for epoch := 0; epoch < 10; epoch++ {
			prev := make([]int, len(ps))
			for i, p := range ps {
				prev[i] = p.Bits()
				p.Grad.FillNormal(rng, 0, float32(math.Pow(10, 3*rng.Float64()-4)))
			}
			ctrl.ObserveBatch()
			if _, err := ctrl.AdjustEpoch(); err != nil {
				return false
			}
			for i, p := range ps {
				k := p.Bits()
				if k < quant.MinBits || k > quant.MaxBits {
					return false
				}
				if d := k - prev[i]; d > cfg.Step || d < -cfg.Step {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEMASmoothing(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.Interval = 1
	cfg.EMADecay = 0.5
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	eps := p.Eps()
	p.Grad.Fill(eps * 4) // Gavg = 4
	ctrl.ObserveBatch()
	if g := ctrl.Gavg(p); math.Abs(g-4) > 0.01 {
		t.Fatalf("first observation Gavg = %v, want 4 (seeded, not decayed)", g)
	}
	p.Grad.Fill(eps * 8) // Gavg = 8
	ctrl.ObserveBatch()
	if g := ctrl.Gavg(p); math.Abs(g-6) > 0.01 { // 0.5*4 + 0.5*8
		t.Fatalf("EMA Gavg = %v, want 6", g)
	}
}

func TestIntervalSkipsObservations(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.Interval = 3
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	eps := p.Eps()
	p.Grad.Fill(eps * 4)
	ctrl.ObserveBatch() // iter 1: sampled (Gavg 4)
	p.Grad.Fill(eps * 100)
	ctrl.ObserveBatch() // iter 2: skipped
	ctrl.ObserveBatch() // iter 3: skipped
	if g := ctrl.Gavg(p); math.Abs(g-4) > 0.01 {
		t.Errorf("Gavg = %v, want 4 (iters 2-3 skipped)", g)
	}
	ctrl.ObserveBatch() // iter 4: sampled
	if g := ctrl.Gavg(p); g < 5 {
		t.Errorf("Gavg = %v, want moved toward 100 after interval", g)
	}
}

func TestTracesRecorded(t *testing.T) {
	ps := makeParams(t, 2, 32)
	cfg := DefaultConfig()
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	for epoch := 0; epoch < 4; epoch++ {
		for _, p := range ps {
			p.Grad.Fill(p.Eps() / 50)
		}
		ctrl.ObserveBatch()
		if _, err := ctrl.AdjustEpoch(); err != nil {
			t.Fatalf("AdjustEpoch: %v", err)
		}
	}
	for _, name := range ctrl.TracedParams() {
		if got := len(ctrl.GavgTrace(name)); got != 4 {
			t.Errorf("GavgTrace(%s) length = %d, want 4", name, got)
		}
		if got := len(ctrl.BitsTrace(name)); got != 4 {
			t.Errorf("BitsTrace(%s) length = %d, want 4", name, got)
		}
	}
	bits := ctrl.BitsTrace(ctrl.TracedParams()[0])
	for i := 1; i < len(bits); i++ {
		if bits[i] < bits[i-1] {
			t.Error("starved layer lost bits")
		}
	}
}

// TestAdjustEpochUnseenRecordsSentinel is the regression test for the
// Figure 1 trace corruption: a parameter that was never observed in the
// epoch window must record the full-precision sentinel, not 0 — a 0 plots
// as "maximally starving" and would be picked as the starved layer by the
// harness's min-over-first-epoch selection.
func TestAdjustEpochUnseenRecordsSentinel(t *testing.T) {
	ps := makeParams(t, 2, 32)
	cfg := DefaultConfig()
	cfg.Interval = 1
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	// Epoch boundary with zero observations: trace gets the sentinel and
	// no bitwidths move.
	changes, err := ctrl.AdjustEpoch()
	if err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if len(changes) != 0 {
		t.Errorf("unseen params were adjusted: %v", changes)
	}
	for _, name := range ctrl.TracedParams() {
		tr := ctrl.GavgTrace(name)
		if len(tr) != 1 {
			t.Fatalf("GavgTrace(%s) length = %d, want 1", name, len(tr))
		}
		if tr[0] != quant.GavgFullPrecision {
			t.Errorf("GavgTrace(%s)[0] = %v, want sentinel %v", name, tr[0], quant.GavgFullPrecision)
		}
		if bt := ctrl.BitsTrace(name); len(bt) != 1 || bt[0] != cfg.InitBits {
			t.Errorf("BitsTrace(%s) = %v, want [%d]", name, bt, cfg.InitBits)
		}
	}
	// Once observed, the real moving average is recorded and the trace
	// stays one entry per epoch.
	for _, p := range ps {
		p.Grad.Fill(p.Eps() / 50) // starving: Gavg well under Tmin
	}
	ctrl.ObserveBatch()
	if _, err := ctrl.AdjustEpoch(); err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	for _, name := range ctrl.TracedParams() {
		tr := ctrl.GavgTrace(name)
		if len(tr) != 2 {
			t.Fatalf("GavgTrace(%s) length = %d, want 2", name, len(tr))
		}
		if tr[1] >= quant.GavgFullPrecision {
			t.Errorf("GavgTrace(%s)[1] = %v, want a real observation", name, tr[1])
		}
	}
}

func TestMeanBitsWeighted(t *testing.T) {
	rng := tensor.NewRNG(8)
	big := tensor.New(300)
	big.FillNormal(rng, 0, 1)
	small := tensor.New(100)
	small.FillNormal(rng, 0, 1)
	ps := []*nn.Param{nn.NewParam("big", big), nn.NewParam("small", small)}
	cfg := DefaultConfig()
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	if err := ps[0].SetBits(8); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	if err := ps[1].SetBits(16); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	want := (300.0*8 + 100.0*16) / 400.0
	if got := ctrl.MeanBits(); math.Abs(got-want) > 1e-9 {
		t.Errorf("MeanBits = %v, want %v", got, want)
	}
}

func TestUnderflowFractionMetricMode(t *testing.T) {
	ps := makeParams(t, 1, 64)
	cfg := DefaultConfig()
	cfg.Metric = MetricUnderflowFraction
	cfg.Interval = 1
	cfg.Tmin = 1.0
	ctrl, err := NewController(cfg, ps)
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p := ps[0]
	p.Grad.Fill(p.Eps() / 10) // every element underflows -> metric ~0
	ctrl.ObserveBatch()
	if _, err := ctrl.AdjustEpoch(); err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if p.Bits() != cfg.InitBits+1 {
		t.Errorf("underflow-fraction metric did not raise bits: %d", p.Bits())
	}
}

func TestAutoTminKneeSelection(t *testing.T) {
	points := []CalibrationPoint{
		{Tmin: 0.1, Accuracy: 0.70, Energy: 0.10},
		{Tmin: 1.0, Accuracy: 0.905, Energy: 0.20},
		{Tmin: 10, Accuracy: 0.91, Energy: 0.40},
		{Tmin: 100, Accuracy: 0.912, Energy: 0.80},
	}
	got, err := AutoTmin(points, 0.01)
	if err != nil {
		t.Fatalf("AutoTmin: %v", err)
	}
	if got != 1.0 {
		t.Errorf("AutoTmin = %v, want 1.0 (knee within 1%% of best)", got)
	}
	tight, err := AutoTmin(points, 0.001)
	if err != nil {
		t.Fatalf("AutoTmin: %v", err)
	}
	if tight != 100 {
		t.Errorf("AutoTmin(tight) = %v, want 100", tight)
	}
}

func TestAutoTminErrors(t *testing.T) {
	if _, err := AutoTmin(nil, 0.01); err == nil {
		t.Error("empty sweep did not error")
	}
	if _, err := AutoTmin([]CalibrationPoint{{Tmin: 1, Accuracy: 0.5}}, 0); err == nil {
		t.Error("zero tolerance did not error")
	}
}

// Property: AutoTmin always returns one of the sweep's Tmin values, and
// its accuracy is within tolerance of the best.
func TestAutoTminProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 2 + rng.Intn(8)
		pts := make([]CalibrationPoint, n)
		for i := range pts {
			pts[i] = CalibrationPoint{
				Tmin:     math.Pow(10, 4*rng.Float64()-2),
				Accuracy: rng.Float64(),
				Energy:   rng.Float64(),
			}
		}
		tol := 0.001 + 0.1*rng.Float64()
		got, err := AutoTmin(pts, tol)
		if err != nil {
			return false
		}
		best := 0.0
		var acc float64
		found := false
		for _, p := range pts {
			if p.Accuracy > best {
				best = p.Accuracy
			}
			if p.Tmin == got {
				acc = p.Accuracy
				found = true
			}
		}
		return found && best-acc <= tol+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
