package core

import (
	"fmt"
	"math"
	"sort"
)

// AutoTmin implements the paper's stated future work (§V): choosing Tmin
// automatically instead of requiring application-specific knowledge.
//
// The selector runs a short calibration sweep — the caller trains briefly
// at several candidate thresholds and reports (Tmin, accuracy, energy)
// triples — and picks the knee of the accuracy/energy curve: the smallest
// Tmin within tolerance of the best observed accuracy. This captures the
// plateau structure of Figure 5, where accuracy rises quickly up to
// Tmin ≈ 1 and flattens after, so spending energy past the knee buys
// little.
type CalibrationPoint struct {
	Tmin     float64
	Accuracy float64
	Energy   float64 // normalized training energy
}

// AutoTmin returns the knee-point Tmin from a calibration sweep.
// tolerance is the acceptable accuracy gap to the sweep's best point
// (e.g. 0.01 for "within 1%"). An error is returned for an empty sweep or
// a non-positive tolerance.
func AutoTmin(points []CalibrationPoint, tolerance float64) (float64, error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("core: empty calibration sweep")
	}
	if tolerance <= 0 {
		return 0, fmt.Errorf("core: non-positive tolerance %g", tolerance)
	}
	sorted := make([]CalibrationPoint, len(points))
	copy(sorted, points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Tmin < sorted[j].Tmin })

	best := math.Inf(-1)
	for _, p := range sorted {
		if p.Accuracy > best {
			best = p.Accuracy
		}
	}
	// Smallest Tmin whose accuracy is within tolerance of the best; ties
	// on accuracy resolve to the cheaper (lower-energy) point first
	// because the slice is ascending in Tmin and energy grows with Tmin.
	for _, p := range sorted {
		if best-p.Accuracy <= tolerance {
			return p.Tmin, nil
		}
	}
	// Unreachable: the best point itself is always within tolerance.
	return sorted[len(sorted)-1].Tmin, nil
}
