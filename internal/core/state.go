package core

import "fmt"

// Controller checkpointing. The APT controller carries real training
// history — the per-layer Gavg moving averages, the profiling iteration
// counter, and the per-epoch traces — and a resumed run that dropped it
// would make different precision decisions than the uninterrupted one.
// ControllerState is the serializable snapshot; Capture/Restore convert a
// live controller to and from it, keyed by parameter name so the snapshot
// survives a process restart.

// ParamAvg is one parameter's smoothed metric in a ControllerState.
type ParamAvg struct {
	Name string
	Avg  float64
	Seen bool
}

// ControllerState is a complete snapshot of a controller's mutable state.
// The configuration is not included: the resuming caller reconstructs the
// controller with the same Config it trained with.
type ControllerState struct {
	Iter      int
	Avgs      []ParamAvg
	GavgTrace map[string][]float64
	BitsTrace map[string][]int
}

// CaptureState snapshots the controller's moving averages, iteration
// counter, and traces. The snapshot shares no storage with the live
// controller. Per-parameter bitwidths are NOT included — they live in the
// parameters' quant grids, which nn.CaptureState snapshots.
func (c *Controller) CaptureState() *ControllerState {
	st := &ControllerState{
		Iter:      c.iter,
		Avgs:      make([]ParamAvg, 0, len(c.params)),
		GavgTrace: make(map[string][]float64, len(c.gavgTrace)),
		BitsTrace: make(map[string][]int, len(c.bitsTrace)),
	}
	for _, p := range c.params {
		st.Avgs = append(st.Avgs, ParamAvg{Name: p.Name, Avg: c.avg[p], Seen: c.seen[p]})
	}
	for name, tr := range c.gavgTrace {
		st.GavgTrace[name] = append([]float64(nil), tr...)
	}
	for name, tr := range c.bitsTrace {
		st.BitsTrace[name] = append([]int(nil), tr...)
	}
	return st
}

// RestoreState imports a snapshot captured from a controller managing the
// same parameters (matched by name and order). After it returns the
// controller's next ObserveBatch/AdjustEpoch behave exactly as they would
// have in the run the snapshot was taken from.
func (c *Controller) RestoreState(st *ControllerState) error {
	if len(st.Avgs) != len(c.params) {
		return fmt.Errorf("core: restore: snapshot has %d averages, controller manages %d parameters", len(st.Avgs), len(c.params))
	}
	for i, p := range c.params {
		rec := &st.Avgs[i]
		if rec.Name != p.Name {
			return fmt.Errorf("core: restore: average %d is %q, parameter is %q", i, rec.Name, p.Name)
		}
	}
	c.iter = st.Iter
	for i, p := range c.params {
		rec := &st.Avgs[i]
		if rec.Seen {
			c.avg[p] = rec.Avg
			c.seen[p] = true
		} else {
			delete(c.avg, p)
			delete(c.seen, p)
		}
	}
	c.gavgTrace = make(map[string][]float64, len(st.GavgTrace))
	for name, tr := range st.GavgTrace {
		c.gavgTrace[name] = append([]float64(nil), tr...)
	}
	c.bitsTrace = make(map[string][]int, len(st.BitsTrace))
	for name, tr := range st.BitsTrace {
		c.bitsTrace[name] = append([]int(nil), tr...)
	}
	return nil
}
