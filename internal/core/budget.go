package core

import (
	"fmt"
	"sort"

	"repro/internal/nn"
	"repro/internal/quant"
)

// BudgetPolicy is an extension beyond Algorithm 1 for devices with a hard
// memory ceiling: it applies the same Gavg semantics but keeps the total
// model size under a bit budget by *re-allocating* precision instead of
// only growing it. When every starving layer has been topped up the model
// may exceed the budget; the policy then reclaims bits from the layers
// with the highest Gavg (the ones that can best afford to lose
// resolution) until the model fits again.
//
// This addresses the deployment gap the paper leaves open: Algorithm 1
// with Tmax = ∞ grows monotonically, which an edge device with fixed RAM
// cannot accept.
type BudgetPolicy struct {
	// Tmin is the starvation threshold, as in Algorithm 1.
	Tmin float64
	// BudgetBits is the ceiling on Σ params·bits. Zero disables the
	// reclamation pass (pure Algorithm 1 growth).
	BudgetBits int64
	// MinBits/MaxBits clamp per-layer precision (defaults 2/32).
	MinBits int
	MaxBits int
}

// Apply performs one adjustment round over params using their smoothed
// metrics (gavg[i] corresponds to params[i]) and returns the changes.
func (b BudgetPolicy) Apply(params []*nn.Param, gavg []float64) ([]Change, error) {
	if len(params) != len(gavg) {
		return nil, fmt.Errorf("core: %d params but %d metrics", len(params), len(gavg))
	}
	minBits, maxBits := b.MinBits, b.MaxBits
	if minBits == 0 {
		minBits = quant.MinBits
	}
	if maxBits == 0 {
		maxBits = quant.MaxBits
	}
	var changes []Change

	// Growth pass: Algorithm 1's lower-threshold rule.
	for i, p := range params {
		if gavg[i] < b.Tmin && p.Bits() < maxBits {
			from := p.Bits()
			if err := p.SetBits(from + 1); err != nil {
				return nil, fmt.Errorf("core: budget grow %s: %w", p.Name, err)
			}
			changes = append(changes, Change{Param: p.Name, From: from, To: from + 1, Gavg: gavg[i]})
		}
	}
	if b.BudgetBits <= 0 {
		return changes, nil
	}

	// Reclamation pass: while over budget, shave one bit off the layer
	// with the highest metric that still has headroom above MinBits.
	type cand struct {
		idx  int
		gavg float64
	}
	for totalBits(params) > b.BudgetBits {
		cands := make([]cand, 0, len(params))
		for i, p := range params {
			if p.Bits() > minBits {
				cands = append(cands, cand{idx: i, gavg: gavg[i]})
			}
		}
		if len(cands) == 0 {
			return changes, fmt.Errorf("core: budget %d bits unreachable: every layer at the %d-bit floor", b.BudgetBits, minBits)
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].gavg > cands[b].gavg })
		p := params[cands[0].idx]
		from := p.Bits()
		if err := p.SetBits(from - 1); err != nil {
			return nil, fmt.Errorf("core: budget shrink %s: %w", p.Name, err)
		}
		changes = append(changes, Change{Param: p.Name, From: from, To: from - 1, Gavg: cands[0].gavg})
	}
	return changes, nil
}

func totalBits(params []*nn.Param) int64 {
	var n int64
	for _, p := range params {
		n += quant.SizeBits(p.Value.Len(), p.Bits())
	}
	return n
}
