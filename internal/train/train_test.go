package train

import (
	"math"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
)

func TestRunValidation(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if _, err := Run(Config{Train: tr, Test: te, BatchSize: 8, Epochs: 1}); err == nil {
		t.Error("missing model did not error")
	}
	if _, err := Run(Config{Model: m, Train: tr, Test: te, BatchSize: 0, Epochs: 1}); err == nil {
		t.Error("zero batch size did not error")
	}
	if _, err := Run(Config{Model: m, Train: tr, Test: te, BatchSize: 8, Epochs: 0}); err == nil {
		t.Error("zero epochs did not error")
	}
}

// TestEnergyToAccuracyProRatesReference is the regression test for the
// normalization bug where the denominator perEpochRef·len(Epochs)
// cancelled back to the full-run FP32Energy: a run that hits the target
// mid-run must be normalized against the fp32 energy of the epochs it
// actually spent, so an APT run cheaper than fp32 reports < 1 even when
// the target lands early.
func TestEnergyToAccuracyProRatesReference(t *testing.T) {
	h := &History{FP32Energy: 100, Epochs: make([]EpochStats, 10)}
	for i := range h.Epochs {
		h.Epochs[i] = EpochStats{Epoch: i, TestAcc: 0.1 * float64(i), CumEnergy: 6 * float64(i+1)}
	}
	// Target 0.4 is hit at epoch 4 (the fifth epoch): spent 30 against a
	// pro-rated fp32 reference of (100/10)·5 = 50.
	norm, reached := h.EnergyToAccuracy(0.4)
	if !reached {
		t.Fatal("mid-run target not reached")
	}
	if math.Abs(norm-30.0/50) > 1e-9 {
		t.Errorf("EnergyToAccuracy = %v, want 0.6 (pro-rated), not %v (full-run)", norm, 30.0/100)
	}
	// Hitting the target in the final epoch degenerates to the full-run
	// normalization.
	norm, reached = h.EnergyToAccuracy(0.9)
	if !reached || math.Abs(norm-60.0/100) > 1e-9 {
		t.Errorf("final-epoch EnergyToAccuracy = (%v, %v), want (0.6, true)", norm, reached)
	}
	if _, reached := h.EnergyToAccuracy(0.99); reached {
		t.Error("unreachable target reported reached")
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := &History{
		Epochs: []EpochStats{
			{Epoch: 0, TestAcc: 0.5, CumEnergy: 10, SizeBits: 100},
			{Epoch: 1, TestAcc: 0.8, CumEnergy: 20, SizeBits: 150},
			{Epoch: 2, TestAcc: 0.7, CumEnergy: 30, SizeBits: 120},
		},
		FP32Energy:   60,
		FP32SizeBits: 200,
	}
	if got := h.FinalAcc(); got != 0.7 {
		t.Errorf("FinalAcc = %v", got)
	}
	if got := h.BestAcc(); got != 0.8 {
		t.Errorf("BestAcc = %v", got)
	}
	if got := h.NormalizedEnergy(); got != 0.5 {
		t.Errorf("NormalizedEnergy = %v", got)
	}
	if got := h.NormalizedSize(); got != 0.75 { // peak 150/200
		t.Errorf("NormalizedSize = %v", got)
	}
	cum, epoch, reached := h.EnergyAtEpochTo(0.75)
	if !reached || epoch != 1 || cum != 20 {
		t.Errorf("EnergyAtEpochTo(0.75) = (%v, %v, %v)", cum, epoch, reached)
	}
	if _, _, reached := h.EnergyAtEpochTo(0.95); reached {
		t.Error("unreachable target reported reached")
	}
	// Target hit at epoch 1 (the second epoch): the fp32 reference is
	// pro-rated to the 2 epochs spent — (60/3)·2 = 40 — not the full-run
	// 60.
	norm, reached := h.EnergyToAccuracy(0.75)
	if !reached || math.Abs(norm-20.0/40) > 1e-9 {
		t.Errorf("EnergyToAccuracy = (%v, %v), want (0.5, true)", norm, reached)
	}
	empty := &History{}
	if empty.FinalAcc() != 0 || empty.BestAcc() != 0 || empty.NormalizedEnergy() != 0 {
		t.Error("empty history accessors not zero")
	}
}

func TestRunRecordsFullHistory(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if _, err := baselines.FixedBits(m.Params(), 8); err != nil {
		t.Fatalf("FixedBits: %v", err)
	}
	var log strings.Builder
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 3,
		Schedule: optim.StepSchedule{Base: 0.1, Milestones: []int{2}, Factor: 0.1},
		Momentum: 0.9, WeightDecay: 1e-4, Seed: 3, Log: &log,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hist.Epochs) != 3 {
		t.Fatalf("epochs recorded = %d", len(hist.Epochs))
	}
	for i, e := range hist.Epochs {
		if e.Epoch != i {
			t.Errorf("epoch %d numbered %d", i, e.Epoch)
		}
		if e.CumEnergy <= 0 || e.SizeBits <= 0 {
			t.Errorf("epoch %d has non-positive energy/size: %+v", i, e)
		}
		if i > 0 && e.CumEnergy <= hist.Epochs[i-1].CumEnergy {
			t.Error("cumulative energy not increasing")
		}
		if math.Abs(e.MeanBits-8) > 1e-9 {
			t.Errorf("fixed 8-bit run reports mean bits %v", e.MeanBits)
		}
	}
	// LR schedule applied: epoch 2 trains at 0.01.
	if math.Abs(hist.Epochs[2].LR-0.01) > 1e-12 {
		t.Errorf("epoch 2 LR = %v, want 0.01", hist.Epochs[2].LR)
	}
	if !strings.Contains(log.String(), "epoch   0") && !strings.Contains(log.String(), "epoch 0") {
		t.Errorf("log writer received nothing useful: %q", log.String())
	}
	// Passive Gavg profiling for fixed runs is recorded.
	if hist.Epochs[2].MeanGavg <= 0 {
		t.Error("fixed-bit run recorded no Gavg profile")
	}
}

func TestAPTRunTracksBitGrowth(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Tmin = 1e5 // force growth: every layer always starves
	cfg.Interval = 2
	ctrl, err := core.NewController(cfg, m.Params())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 3,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9,
		APT: ctrl, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// With forced growth the mean bits must increase by ~1 per epoch.
	if hist.Epochs[2].MeanBits <= hist.Epochs[0].MeanBits {
		t.Errorf("mean bits did not grow: %v -> %v",
			hist.Epochs[0].MeanBits, hist.Epochs[2].MeanBits)
	}
	// Model size must track bit growth.
	if hist.Epochs[2].SizeBits <= hist.Epochs[0].SizeBits {
		t.Error("model size did not grow with bits")
	}
}

func TestGradHookAndPostStepHookCalled(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	gradCalls, postCalls := 0, 0
	_, err = Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 100, Epochs: 1,
		Schedule: optim.ConstSchedule(0.01), Seed: 3,
		GradHook:     func([]*nn.Param) error { gradCalls++; return nil },
		PostStepHook: func([]*nn.Param) error { postCalls++; return nil },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	batches := (400 + 99) / 100
	if gradCalls != batches || postCalls != batches {
		t.Errorf("hooks called (%d, %d) times, want %d", gradCalls, postCalls, batches)
	}
}

func TestEvaluateEmptyAndErrors(t *testing.T) {
	tr, te := smokeData(t, 4)
	_ = tr
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	acc, err := Evaluate(m, te, 64)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if acc < 0 || acc > 1 {
		t.Errorf("accuracy %v outside [0,1]", acc)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		tr, te, err := data.NewSynth(data.SynthConfig{
			Classes: 3, Train: 120, Test: 60, Size: 12, Seed: 4, Noise: 0.3,
		})
		if err != nil {
			t.Fatalf("NewSynth: %v", err)
		}
		m, err := models.SmallCNN(models.Config{Classes: 3, InputSize: 12, Seed: 2})
		if err != nil {
			t.Fatalf("SmallCNN: %v", err)
		}
		hist, err := Run(Config{
			Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 2,
			Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: 8,
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		out := make([]float64, len(hist.Epochs))
		for i, e := range hist.Epochs {
			out[i] = e.TestAcc*1000 + e.TrainLoss
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at epoch %d: %v vs %v", i, a[i], b[i])
		}
	}
}
