package train

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
)

// smokeData builds a small SynthCIFAR task shared by the smoke tests.
func smokeData(t *testing.T, classes int) (train, test data.Dataset) {
	t.Helper()
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: classes, Train: 400, Test: 200, Size: 16, Seed: 7, Noise: 0.2,
	})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	return tr, te
}

func TestFP32TrainingLearns(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 5,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, WeightDecay: 1e-4,
		Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acc := hist.BestAcc(); acc < 0.6 {
		t.Fatalf("fp32 smoke training reached only %.3f accuracy, want >= 0.6", acc)
	}
}

func TestAPTWithQuantizedActivations(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNNQuantAct(models.Config{Classes: 4, InputSize: 16, Seed: 1}, 6)
	if err != nil {
		t.Fatalf("SmallCNNQuantAct: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Tmin = 2.0
	cfg.Interval = 2
	ctrl, err := core.NewController(cfg, m.Params())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 4,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, WeightDecay: 1e-4,
		APT: ctrl, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acc := hist.BestAcc(); acc < 0.4 {
		t.Fatalf("quant-act training reached only %.3f", acc)
	}
	// The activation clip parameters are under controller management:
	// they appear in the traces.
	foundAlpha := false
	for _, name := range ctrl.TracedParams() {
		if len(name) > 6 && name[len(name)-6:] == ".alpha" {
			foundAlpha = true
			if len(ctrl.BitsTrace(name)) == 0 {
				t.Errorf("alpha %s has no bits trace", name)
			}
		}
	}
	if !foundAlpha {
		t.Error("no activation clip parameter under APT management")
	}
}

func TestAPTTrainingLearns(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Tmin = 2.0
	ctrl, err := core.NewController(cfg, m.Params())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 6,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, WeightDecay: 1e-4,
		APT: ctrl, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if acc := hist.BestAcc(); acc < 0.55 {
		t.Fatalf("APT smoke training reached only %.3f accuracy, want >= 0.55", acc)
	}
	if ne := hist.NormalizedEnergy(); ne <= 0 || ne >= 1 {
		t.Fatalf("APT normalized energy %.3f, want in (0, 1)", ne)
	}
	if ns := hist.NormalizedSize(); ns <= 0 || ns >= 1 {
		t.Fatalf("APT normalized size %.3f, want in (0, 1)", ns)
	}
}
