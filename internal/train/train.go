// Package train runs the training loop of Algorithm 2: mini-batch SGD
// with per-INTERVAL Gavg profiling, per-epoch precision adjustment, test
// evaluation and full history recording (accuracy, loss, bitwidths, Gavg,
// energy and memory per epoch) for the experiment harness.
package train

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/energy"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Hook mutates parameters at a point in the training step; baselines use
// hooks to implement gradient quantization (TernGrad, DoReFa) and
// non-affine weight codes (binary, ternary).
type Hook func(params []*nn.Param) error

// Config assembles one training run.
type Config struct {
	Model     *models.Model
	Train     data.Dataset
	Test      data.Dataset
	BatchSize int
	Epochs    int

	// Optimizer settings (paper: SGD, momentum 0.9, weight decay 1e-4).
	Schedule    optim.Schedule
	Momentum    float64
	WeightDecay float64
	// Optimizer overrides the default SGD when non-nil (e.g. optim.Adam
	// for the comparison methods that originally trained with it).
	Optimizer optim.Optimizer

	// APT is the precision controller; nil trains at whatever precision
	// the parameters carry (fp32 or a fixed bitwidth set by the caller).
	APT *core.Controller

	// EnergyModel prices each iteration; the zero value is replaced by
	// energy.DefaultModel().
	EnergyModel energy.Model

	// GradHook runs after the backward pass, before profiling and the
	// optimizer step. PostStepHook runs after the optimizer step.
	GradHook     Hook
	PostStepHook Hook

	// GavgInterval controls the trainer's passive Gavg profiling for runs
	// without a controller (Figure 2's fixed-bitwidth investigations).
	// 0 defaults to 10.
	GavgInterval int

	// Seed drives batch shuffling and augmentation.
	Seed uint64

	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// EpochStats is one row of the training history.
type EpochStats struct {
	Epoch     int
	TrainLoss float64
	TestAcc   float64
	// CumEnergy is the accumulated training energy in cost-model units.
	CumEnergy float64
	// SizeBits is the training-time model size at the end of the epoch.
	SizeBits int64
	// MeanBits is the parameter-weighted mean bitwidth.
	MeanBits float64
	// MeanGavg is the mean smoothed Gavg across quantized parameters.
	MeanGavg float64
	// LR is the learning rate used this epoch.
	LR float64
	// UnderflowFrac is the mean fraction of weight elements whose updates
	// underflowed in the epoch's final step.
	UnderflowFrac float64
}

// History is the complete record of a run.
type History struct {
	Epochs []EpochStats
	// FP32Energy is what an fp32 run of identical geometry and sample
	// count would have spent, for normalization.
	FP32Energy float64
	// FP32SizeBits is the fp32 model size, for normalization.
	FP32SizeBits int64
	// Controller is the APT controller (nil for fixed runs), exposing
	// Gavg and bitwidth traces.
	Controller *core.Controller
}

// FinalAcc returns the last epoch's test accuracy (0 for an empty history).
func (h *History) FinalAcc() float64 {
	if len(h.Epochs) == 0 {
		return 0
	}
	return h.Epochs[len(h.Epochs)-1].TestAcc
}

// BestAcc returns the best test accuracy across epochs.
func (h *History) BestAcc() float64 {
	best := 0.0
	for _, e := range h.Epochs {
		if e.TestAcc > best {
			best = e.TestAcc
		}
	}
	return best
}

// NormalizedEnergy returns total energy relative to the fp32 reference.
func (h *History) NormalizedEnergy() float64 {
	if len(h.Epochs) == 0 || h.FP32Energy == 0 {
		return 0
	}
	return h.Epochs[len(h.Epochs)-1].CumEnergy / h.FP32Energy
}

// NormalizedSize returns the peak training model size relative to fp32.
func (h *History) NormalizedSize() float64 {
	if h.FP32SizeBits == 0 {
		return 0
	}
	var peak int64
	for _, e := range h.Epochs {
		if e.SizeBits > peak {
			peak = e.SizeBits
		}
	}
	return float64(peak) / float64(h.FP32SizeBits)
}

// EnergyToAccuracy returns the cumulative energy at the first epoch whose
// test accuracy reaches target, normalized to the fp32 reference of the
// same epoch count, and whether the target was reached (Figure 4's
// quantity). The fp32 reference is pro-rated to the epochs actually spent.
func (h *History) EnergyToAccuracy(target float64) (norm float64, reached bool) {
	if len(h.Epochs) == 0 || h.FP32Energy == 0 {
		return 0, false
	}
	perEpochRef := h.FP32Energy / float64(len(h.Epochs))
	for _, e := range h.Epochs {
		if e.TestAcc >= target {
			// Pro-rate the reference to the epochs actually spent: an fp32
			// run of the same geometry would have used perEpochRef·(e+1)
			// by this point, not the full-run FP32Energy.
			return e.CumEnergy / (perEpochRef * float64(e.Epoch+1)), true
		}
	}
	return 0, false
}

// EnergyAtEpochTo returns cumulative energy at the first epoch reaching
// target without normalization.
func (h *History) EnergyAtEpochTo(target float64) (cum float64, epoch int, reached bool) {
	for _, e := range h.Epochs {
		if e.TestAcc >= target {
			return e.CumEnergy, e.Epoch, true
		}
	}
	return 0, 0, false
}

// Run executes the training loop and returns the history.
func Run(cfg Config) (*History, error) {
	if cfg.Model == nil || cfg.Train == nil || cfg.Test == nil {
		return nil, fmt.Errorf("train: model and datasets are required")
	}
	if cfg.BatchSize <= 0 || cfg.Epochs <= 0 {
		return nil, fmt.Errorf("train: batch size %d and epochs %d must be positive", cfg.BatchSize, cfg.Epochs)
	}
	if cfg.Schedule == nil {
		cfg.Schedule = optim.ConstSchedule(0.1)
	}
	if cfg.GavgInterval <= 0 {
		cfg.GavgInterval = 10
	}
	em := cfg.EnergyModel
	if em == (energy.Model{}) {
		em = energy.DefaultModel()
	}

	rng := tensor.NewRNG(cfg.Seed ^ 0xA9F1)
	loader, err := data.NewLoader(cfg.Train, cfg.BatchSize, rng.Split())
	if err != nil {
		return nil, fmt.Errorf("train: %w", err)
	}
	params := cfg.Model.Params()
	var opt optim.Optimizer = cfg.Optimizer
	if opt == nil {
		opt = optim.NewSGD(cfg.Schedule.LR(0), cfg.Momentum, cfg.WeightDecay)
	}
	meter := energy.NewMeter(em)
	loss := nn.SoftmaxCrossEntropy{}

	hist := &History{Controller: cfg.APT, FP32SizeBits: energy.FP32SizeBits(params)}
	totalSamples := int64(cfg.Epochs) * int64(cfg.Train.Len())
	hist.FP32Energy = em.FP32Reference(energy.Snapshot(cfg.Model.Layers()), totalSamples)

	passiveGavg := -1.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.Schedule.LR(epoch)
		opt.SetLR(lr)
		var (
			lossSum float64
			batches int
			ufFrac  float64
			iter    int
		)
		for {
			batch, labels, ok := loader.Next()
			if !ok {
				break
			}
			logits, err := cfg.Model.Net.Forward(batch, true)
			if err != nil {
				return nil, fmt.Errorf("train: epoch %d forward: %w", epoch, err)
			}
			l, dlogits, err := loss.Forward(logits, labels)
			if err != nil {
				return nil, fmt.Errorf("train: epoch %d loss: %w", epoch, err)
			}
			lossSum += l
			if _, err := cfg.Model.Net.Backward(dlogits); err != nil {
				return nil, fmt.Errorf("train: epoch %d backward: %w", epoch, err)
			}
			if cfg.GradHook != nil {
				if err := cfg.GradHook(params); err != nil {
					return nil, fmt.Errorf("train: epoch %d grad hook: %w", epoch, err)
				}
			}
			if cfg.APT != nil {
				cfg.APT.ObserveBatch()
			} else if iter%cfg.GavgInterval == 0 {
				g := meanGavg(params)
				if passiveGavg < 0 {
					passiveGavg = g
				} else {
					passiveGavg = 0.7*passiveGavg + 0.3*g
				}
			}
			if err := opt.Step(params); err != nil {
				return nil, fmt.Errorf("train: epoch %d step: %w", epoch, err)
			}
			if cfg.PostStepHook != nil {
				if err := cfg.PostStepHook(params); err != nil {
					return nil, fmt.Errorf("train: epoch %d post-step hook: %w", epoch, err)
				}
			}
			meter.Charge(energy.Snapshot(cfg.Model.Layers()), len(labels))
			batches++
			iter++
			ufFrac = underflowFraction(params)
		}
		if cfg.APT != nil {
			if _, err := cfg.APT.AdjustEpoch(); err != nil {
				return nil, fmt.Errorf("train: epoch %d adjust: %w", epoch, err)
			}
		}
		acc, err := Evaluate(cfg.Model, cfg.Test, cfg.BatchSize)
		if err != nil {
			return nil, fmt.Errorf("train: epoch %d eval: %w", epoch, err)
		}
		st := EpochStats{
			Epoch:         epoch,
			TrainLoss:     lossSum / float64(max(batches, 1)),
			TestAcc:       acc,
			CumEnergy:     meter.Total(),
			SizeBits:      energy.ModelSizeBits(params),
			MeanBits:      meanBits(params),
			LR:            lr,
			UnderflowFrac: ufFrac,
		}
		if cfg.APT != nil {
			st.MeanGavg = controllerMeanGavg(cfg.APT, params)
		} else if passiveGavg >= 0 {
			st.MeanGavg = passiveGavg
		}
		hist.Epochs = append(hist.Epochs, st)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  lr %.4f  loss %.4f  acc %.4f  bits %.2f  Gavg %.3g  E %.3g\n",
				epoch, lr, st.TrainLoss, st.TestAcc, st.MeanBits, st.MeanGavg, st.CumEnergy)
		}
	}
	return hist, nil
}

// Evaluate computes test accuracy in evaluation mode (running BN stats,
// no augmentation randomness beyond the dataset's own Sample behaviour).
func Evaluate(m *models.Model, ds data.Dataset, batchSize int) (float64, error) {
	loader, err := data.NewLoader(ds, batchSize, nil)
	if err != nil {
		return 0, err
	}
	correct, total := 0, 0
	for {
		batch, labels, ok := loader.Next()
		if !ok {
			break
		}
		logits, err := m.Net.Forward(batch, false)
		if err != nil {
			return 0, err
		}
		for i := range labels {
			if logits.ArgMaxRow(i) == labels[i] {
				correct++
			}
		}
		total += len(labels)
	}
	if total == 0 {
		return 0, fmt.Errorf("train: empty test set")
	}
	return float64(correct) / float64(total), nil
}

func meanBits(params []*nn.Param) float64 {
	var bits, n float64
	for _, p := range params {
		w := float64(p.Value.Len())
		bits += w * float64(p.Bits())
		n += w
	}
	if n == 0 {
		return 0
	}
	return bits / n
}

// meanGavg averages the instantaneous Gavg across quantized parameters
// with a live grid. Degenerate tensors (ε = 0: constant-initialized BN
// scales and biases that have not yet developed a value range) behave as
// full precision and are excluded so their sentinel value cannot swamp
// the mean.
func meanGavg(params []*nn.Param) float64 {
	var sum float64
	var n int
	for _, p := range params {
		if p.Eps() == 0 {
			continue
		}
		g := p.Gavg()
		if g >= quant.GavgFullPrecision {
			continue
		}
		sum += g
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func controllerMeanGavg(c *core.Controller, params []*nn.Param) float64 {
	var sum float64
	var n int
	for _, p := range params {
		g := c.Gavg(p)
		if g <= 0 || g >= quant.GavgFullPrecision {
			continue
		}
		sum += g
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func underflowFraction(params []*nn.Param) float64 {
	var uf, n float64
	for _, p := range params {
		uf += float64(p.Underflowed)
		n += float64(p.Value.Len())
	}
	if n == 0 {
		return 0
	}
	return uf / n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
