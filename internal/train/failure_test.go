package train

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// Failure injection: the scenarios DESIGN.md §5 calls out — poisoned
// gradients, degenerate weight tensors, and bitwidth saturation — must
// not wedge the controller or the optimizer.

func TestNaNGradHookDoesNotWedgeController(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	cfg := core.DefaultConfig()
	cfg.Interval = 2
	ctrl, err := core.NewController(cfg, m.Params())
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	poisoned := false
	hook := func(params []*nn.Param) error {
		if !poisoned {
			// Inject a NaN into one gradient element once, early.
			params[0].Grad.Data()[0] = float32(math.NaN())
			poisoned = true
		}
		return nil
	}
	// The run must complete; a single poisoned element must not panic,
	// deadlock or error out the loop.
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 64, Epochs: 2,
		Schedule: optim.ConstSchedule(0.05), APT: ctrl,
		GradHook: hook, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run with NaN injection: %v", err)
	}
	if len(hist.Epochs) != 2 {
		t.Fatalf("run truncated: %d epochs", len(hist.Epochs))
	}
}

func TestDegenerateConstantTensorBehavesAsFP32(t *testing.T) {
	// A constant tensor has zero range: eps = 0 and the quantized update
	// degenerates to plain SGD until a range develops. The controller
	// must not adjust it based on the full-precision sentinel.
	v := tensor.New(16) // all zeros: degenerate
	p := nn.NewParam("const", v)
	if err := p.SetBits(6); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	if p.Eps() != 0 {
		t.Fatalf("constant tensor eps = %v, want 0", p.Eps())
	}
	cfg := core.DefaultConfig()
	cfg.Interval = 1
	cfg.Tmin = 6
	ctrl, err := core.NewController(cfg, []*nn.Param{p})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	p.Grad.Fill(0.1)
	ctrl.ObserveBatch()
	if _, err := ctrl.AdjustEpoch(); err != nil {
		t.Fatalf("AdjustEpoch: %v", err)
	}
	if p.Bits() != cfg.InitBits {
		t.Errorf("degenerate tensor's bits changed to %d; sentinel Gavg must hold it", p.Bits())
	}
	// The fp32-degenerate update path still applies the step.
	sgd := optim.NewSGD(1, 0, 0)
	p.Grad.Fill(0.1)
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if p.Value.Data()[0] == 0 {
		t.Error("degenerate tensor did not receive the fp32 bootstrap update")
	}
}

func TestBitwidthSaturationAtBounds(t *testing.T) {
	rng := tensor.NewRNG(3)
	v := tensor.New(32)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	cfg := core.DefaultConfig()
	cfg.InitBits = quant.MaxBits - 1
	cfg.Tmin = 1e9 // permanently starving: must clamp at MaxBits
	cfg.Interval = 1
	ctrl, err := core.NewController(cfg, []*nn.Param{p})
	if err != nil {
		t.Fatalf("NewController: %v", err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		p.Grad.Fill(1e-9)
		ctrl.ObserveBatch()
		if _, err := ctrl.AdjustEpoch(); err != nil {
			t.Fatalf("AdjustEpoch: %v", err)
		}
	}
	if p.Bits() != quant.MaxBits {
		t.Errorf("bits = %d, want saturated at %d", p.Bits(), quant.MaxBits)
	}
}

func TestExplodingGradientsDoNotPanic(t *testing.T) {
	tr, te := smokeData(t, 4)
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	hook := func(params []*nn.Param) error {
		for _, p := range params {
			p.Grad.Scale(1e6)
		}
		return nil
	}
	// An absurd LR with exploded gradients produces garbage accuracy but
	// must not crash the loop or the meter.
	hist, err := Run(Config{
		Model: m, Train: tr, Test: te, BatchSize: 64, Epochs: 1,
		Schedule: optim.ConstSchedule(10), GradHook: hook, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run with exploding grads: %v", err)
	}
	if hist.Epochs[0].CumEnergy <= 0 {
		t.Error("meter stopped accumulating")
	}
}
