package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// mbSetting is one (expansion t, channels c, repeats n, stride s) row of
// the MobileNetV2 architecture table.
type mbSetting struct {
	t, c, n, s int
}

// mobilenetV2CIFAR is the CIFAR adaptation of Sandler et al.'s table: the
// stem and the first strided stage run at stride 1 so a 32×32 input ends
// at 4×4 rather than collapsing to zero.
var mobilenetV2CIFAR = []mbSetting{
	{1, 16, 1, 1},
	{6, 24, 2, 1},
	{6, 32, 3, 2},
	{6, 64, 4, 2},
	{6, 96, 3, 1},
	{6, 160, 3, 2},
	{6, 320, 1, 1},
}

// MobileNetV2 builds the CIFAR-geometry MobileNetV2 with inverted
// residuals and linear bottlenecks, width-scalable via cfg.Width.
func MobileNetV2(cfg Config) (*Model, error) {
	cfg.fill()
	rng := tensor.NewRNG(cfg.Seed)
	const name = "mobilenetv2"

	hw := cfg.InputSize
	stemC := scaled(32, cfg.Width)
	stem, hw, err := convBNReLU(name+".stem", 3, stemC, hw, 3, 1, 1, rng, true)
	if err != nil {
		return nil, err
	}
	layers := stem
	inC := stemC
	for si, st := range mobilenetV2CIFAR {
		outC := scaled(st.c, cfg.Width)
		for b := 0; b < st.n; b++ {
			stride := 1
			if b == 0 {
				stride = st.s
			}
			bname := fmt.Sprintf("%s.ir%d_%d", name, si, b)
			block, outHW, err := invertedResidual(bname, inC, outC, hw, stride, st.t, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, block)
			hw = outHW
			inC = outC
		}
	}
	headC := scaled(1280, cfg.Width)
	head, hw, err := convBNReLU(name+".head", inC, headC, hw, 1, 1, 0, rng, true)
	if err != nil {
		return nil, err
	}
	layers = append(layers, head...)
	layers = append(layers, nn.NewGlobalAvgPool(name+".gap"))
	fc, err := nn.NewLinear(name+".fc", headC, cfg.Classes, true, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc)
	_ = hw
	return &Model{
		Name: name, Net: nn.NewSequential(name, layers...),
		InC: 3, InH: cfg.InputSize, InW: cfg.InputSize, Class: cfg.Classes,
		Width: cfg.Width,
	}, nil
}

// invertedResidual is the MBConv block: 1×1 expansion (t×) + BN + ReLU6,
// 3×3 depthwise (stride s) + BN + ReLU6, 1×1 linear projection + BN, with
// an identity skip when the shape is preserved.
func invertedResidual(name string, inC, outC, inHW, stride, expand int, rng *tensor.RNG) (nn.Layer, int, error) {
	var main []nn.Layer
	midC := inC * expand
	hw := inHW
	if expand != 1 {
		exp, outHW, err := convBNReLU(name+".expand", inC, midC, hw, 1, 1, 0, rng, true)
		if err != nil {
			return nil, 0, err
		}
		main = append(main, exp...)
		hw = outHW
	}
	gdw := tensor.ConvGeom{InC: midC, InH: hw, InW: hw, KH: 3, KW: 3, Stride: stride, Pad: 1}
	dw, err := nn.NewDepthwiseConv2D(name+".dw", gdw, rng)
	if err != nil {
		return nil, 0, err
	}
	bnDW, err := nn.NewBatchNorm2D(name+".dwbn", midC)
	if err != nil {
		return nil, 0, err
	}
	hw, _ = gdw.OutHW()
	main = append(main, dw, bnDW, nn.NewReLU6(name+".dwrelu6"))

	gproj := tensor.ConvGeom{InC: midC, InH: hw, InW: hw, KH: 1, KW: 1, Stride: 1, Pad: 0}
	proj, err := nn.NewConv2D(nn.Conv2DConfig{Name: name + ".proj", In: gproj, OutC: outC, RNG: rng})
	if err != nil {
		return nil, 0, err
	}
	bnProj, err := nn.NewBatchNorm2D(name+".projbn", outC)
	if err != nil {
		return nil, 0, err
	}
	main = append(main, proj, bnProj)
	seq := nn.NewSequential(name+".main", main...)

	if stride == 1 && inC == outC {
		return nn.NewLinearResidual(name, seq, nil), hw, nil
	}
	return seq, hw, nil
}
