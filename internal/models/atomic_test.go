package models

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSaveFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.apt")
	if err := SaveFileAtomic(path, trainedModel(t), 7); err != nil {
		t.Fatalf("SaveFileAtomic: %v", err)
	}
	v, ok, err := CheckpointVersion(path)
	if err != nil || !ok || v != 7 {
		t.Errorf("CheckpointVersion = (%d, %v, %v), want (7, true, nil)", v, ok, err)
	}
	if _, err := LoadAutoFile(path, "", 0, Config{Classes: 4, InputSize: 12, Seed: 1}); err != nil {
		t.Errorf("LoadAutoFile: %v", err)
	}
	leftovers, err := filepath.Glob(filepath.Join(dir, ".apt-tmp-*"))
	if err != nil {
		t.Fatalf("Glob: %v", err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}

// TestLegacyTrailerlessCheckpointLoads: serving checkpoints written
// before the trailer existed must keep loading; they just report no
// version, sending watchers to the mtime+size fallback.
func TestLegacyTrailerlessCheckpointLoads(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.apt")
	var buf bytes.Buffer
	if err := Save(&buf, trainedModel(t)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadAutoFile(path, "", 0, Config{Classes: 4, InputSize: 12, Seed: 1}); err != nil {
		t.Errorf("legacy checkpoint: %v", err)
	}
	if _, ok, err := CheckpointVersion(path); err != nil || ok {
		t.Errorf("legacy checkpoint reported a trailer: ok=%v err=%v", ok, err)
	}
}

// TestCorruptCheckpointRejected: a flipped payload byte must surface as
// ErrCorruptCheckpoint, not a confusing gob decode failure — this is what
// lets the serving reload path retry a torn write instead of swapping in
// garbage.
func TestCorruptCheckpointRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.apt")
	if err := SaveFileAtomic(path, trainedModel(t), 1); err != nil {
		t.Fatalf("SaveFileAtomic: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	raw[len(raw)/3] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadAutoFile(path, "", 0, Config{Classes: 4, InputSize: 12, Seed: 1}); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("corrupt checkpoint: err = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestTrainStateFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	st := &TrainState{
		Arch: "smallcnn", Width: 1, Seed: 9, Epoch: 2,
		Rounds: 17, UpBytes: 5, DownBytes: 6,
		Accs: []float64{0.5, 0.75}, RNGs: []uint64{1, 2}, Publishes: 3,
	}
	if err := SaveTrainState(path, st); err != nil {
		t.Fatalf("SaveTrainState: %v", err)
	}
	got, err := LoadTrainState(path)
	if err != nil {
		t.Fatalf("LoadTrainState: %v", err)
	}
	if got.Arch != st.Arch || got.Seed != st.Seed || got.Epoch != st.Epoch ||
		got.Rounds != st.Rounds || got.Publishes != st.Publishes ||
		len(got.Accs) != 2 || got.Accs[1] != 0.75 || len(got.RNGs) != 2 || got.RNGs[1] != 2 {
		t.Errorf("round trip mangled the state: %+v", got)
	}
	// The trailer version counts rounds, so successive snapshots are
	// distinguishable without decoding.
	v, ok, err := CheckpointVersion(path)
	if err != nil || !ok || v != 17 {
		t.Errorf("CheckpointVersion = (%d, %v, %v), want (17, true, nil)", v, ok, err)
	}
}

// TestTrainStateRejectsDamage: unlike serving checkpoints, train-state
// files have always carried a trailer, so a missing or mismatched one is
// an error — resuming from a torn snapshot must be impossible.
func TestTrainStateRejectsDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.state")
	st := &TrainState{Arch: "x", Rounds: 1}
	if err := SaveTrainState(path, st); err != nil {
		t.Fatalf("SaveTrainState: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x10
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadTrainState(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("corrupt train state: err = %v, want ErrCorruptCheckpoint", err)
	}

	if err := os.WriteFile(path, raw[:len(raw)-trailerSize], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, err := LoadTrainState(path); err == nil {
		t.Error("trailerless train state loaded")
	}
}
