package models

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Crash-consistent checkpoint files. Two mechanisms compose:
//
//   - Atomic replace: every checkpoint write lands in a temp file in the
//     destination directory, is fsynced, and is renamed over the final
//     path. A concurrent reader (aptserve hot-reloading a freshly
//     published model) observes either the old complete file or the new
//     complete file — never a torn in-between.
//   - Version/CRC trailer: the last 16 bytes of a checkpoint are
//     [crc32(payload) | version | magic]. The CRC rejects a file a
//     non-atomic writer (or a failing disk) tore mid-write with a clear
//     error instead of a confusing gob decode failure, and the version
//     gives watchers (aptserve -watch) a cheap monotonic change signal
//     they can read without decoding the payload.
//
// Files without a trailer (pre-trailer checkpoints) still load; they just
// forgo CRC protection and version polling.

// trailerMagic marks a checkpoint that carries a version/CRC trailer.
var trailerMagic = [4]byte{'A', 'P', 'T', 'C'}

// trailerSize is crc32 (4) + version (8) + magic (4).
const trailerSize = 16

// ErrCorruptCheckpoint is returned when a checkpoint's CRC trailer does
// not match its payload — a torn or corrupt write.
var ErrCorruptCheckpoint = errors.New("models: checkpoint CRC mismatch (torn or corrupt write)")

// appendTrailer appends the version/CRC trailer for payload to buf.
func appendTrailer(buf *bytes.Buffer, version uint64) {
	crc := crc32.ChecksumIEEE(buf.Bytes())
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint32(tr[0:4], crc)
	binary.LittleEndian.PutUint64(tr[4:12], version)
	copy(tr[12:16], trailerMagic[:])
	buf.Write(tr[:])
}

// splitTrailer detects and validates a trailer on data. It returns the
// payload with the trailer stripped, the version, and whether a trailer
// was present. A present-but-mismatched CRC returns ErrCorruptCheckpoint.
func splitTrailer(data []byte) (payload []byte, version uint64, ok bool, err error) {
	if len(data) < trailerSize || !bytes.Equal(data[len(data)-4:], trailerMagic[:]) {
		return data, 0, false, nil
	}
	tr := data[len(data)-trailerSize:]
	payload = data[:len(data)-trailerSize]
	version = binary.LittleEndian.Uint64(tr[4:12])
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(tr[0:4]) {
		return nil, 0, true, ErrCorruptCheckpoint
	}
	return payload, version, true, nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, fsyncing before the rename so a crash between
// the two leaves either the old file or the complete new one.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".apt-tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SaveFileAtomic writes m as a bit-packed checkpoint to path with a
// version/CRC trailer, atomically (temp file + fsync + rename). It is the
// publishing-side counterpart of LoadAutoFile: a serving process polling
// path (aptserve -watch) can never observe a torn file, and the version
// in the trailer tells it whether the file changed without decoding it.
func SaveFileAtomic(path string, m *Model, version uint64) error {
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		return err
	}
	appendTrailer(&buf, version)
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("models: write %s: %w", path, err)
	}
	return nil
}

// CheckpointVersion reads the version from a checkpoint's trailer without
// decoding the payload — the cheap polling primitive behind aptserve
// -watch. It returns ok=false (and version 0) for legacy checkpoints
// written without a trailer; watchers fall back to mtime+size for those.
func CheckpointVersion(path string) (version uint64, ok bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, false, err
	}
	if fi.Size() < trailerSize {
		return 0, false, nil
	}
	var tr [trailerSize]byte
	if _, err := f.ReadAt(tr[:], fi.Size()-trailerSize); err != nil && err != io.EOF {
		return 0, false, err
	}
	if !bytes.Equal(tr[12:16], trailerMagic[:]) {
		return 0, false, nil
	}
	return binary.LittleEndian.Uint64(tr[4:12]), true, nil
}
