// Package models builds the backbones the paper evaluates — ResNet-20 and
// ResNet-110 (He et al., CIFAR geometry), MobileNetV2 (Sandler et al.,
// CIFAR geometry) — plus the baselines' backbones: CifarNet (TernGrad) and
// a VGG-like network (WAGE). All builders accept a width multiplier and an
// input size so the experiment profiles can scale compute down to CPU
// minutes while preserving architecture shape (depth, stage structure,
// residual topology).
package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model couples a network with its input geometry. Name is the registry
// name Build accepts and Width the multiplier the backbone was built
// with; together they are the architecture header a checkpoint carries
// so loaders can rebuild the matching backbone without being told.
type Model struct {
	Name  string
	Net   *nn.Sequential
	InC   int
	InH   int
	InW   int
	Class int
	Width float64
}

// Params returns all learnable parameters of the network.
func (m *Model) Params() []*nn.Param { return m.Net.Params() }

// Layers returns the top-level layer list.
func (m *Model) Layers() []nn.Layer { return m.Net.Layers() }

// Config selects a backbone instantiation.
type Config struct {
	Classes   int     // number of output classes
	InputSize int     // spatial input size (paper: 32)
	Width     float64 // width multiplier (paper: 1.0)
	Seed      uint64  // weight-initialization seed
}

func (c *Config) fill() {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.InputSize == 0 {
		c.InputSize = 32
	}
	if c.Width == 0 {
		c.Width = 1
	}
}

func scaled(base int, width float64) int {
	w := int(float64(base)*width + 0.5)
	if w < 4 {
		w = 4
	}
	return w
}

// conv+bn+relu helper; returns the layers and the output spatial size.
func convBNReLU(name string, inC, outC, inHW, k, stride, pad int, rng *tensor.RNG, relu6 bool) ([]nn.Layer, int, error) {
	g := tensor.ConvGeom{InC: inC, InH: inHW, InW: inHW, KH: k, KW: k, Stride: stride, Pad: pad}
	conv, err := nn.NewConv2D(nn.Conv2DConfig{Name: name + ".conv", In: g, OutC: outC, RNG: rng})
	if err != nil {
		return nil, 0, err
	}
	bn, err := nn.NewBatchNorm2D(name+".bn", outC)
	if err != nil {
		return nil, 0, err
	}
	oh, _ := g.OutHW()
	var act nn.Layer
	if relu6 {
		act = nn.NewReLU6(name + ".relu6")
	} else {
		act = nn.NewReLU(name + ".relu")
	}
	return []nn.Layer{conv, bn, act}, oh, nil
}

// ResNet builds a CIFAR-style ResNet of the given depth (6n+2: 20, 110).
// Three stages of n basic blocks at widths {16, 32, 64}·Width, strides
// {1, 2, 2}, global average pooling and a linear classifier — exactly the
// He et al. (2016) CIFAR geometry the paper trains.
func ResNet(depth int, cfg Config) (*Model, error) {
	cfg.fill()
	if (depth-2)%6 != 0 || depth < 8 {
		return nil, fmt.Errorf("models: resnet depth %d is not 6n+2", depth)
	}
	n := (depth - 2) / 6
	rng := tensor.NewRNG(cfg.Seed)
	name := fmt.Sprintf("resnet%d", depth)

	widths := []int{scaled(16, cfg.Width), scaled(32, cfg.Width), scaled(64, cfg.Width)}
	hw := cfg.InputSize

	stem, hw, err := convBNReLU(name+".stem", 3, widths[0], hw, 3, 1, 1, rng, false)
	if err != nil {
		return nil, err
	}
	layers := stem
	inC := widths[0]
	for stage := 0; stage < 3; stage++ {
		outC := widths[stage]
		for b := 0; b < n; b++ {
			stride := 1
			if stage > 0 && b == 0 {
				stride = 2
			}
			bname := fmt.Sprintf("%s.s%db%d", name, stage+1, b)
			block, outHW, err := basicBlock(bname, inC, outC, hw, stride, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, block)
			hw = outHW
			inC = outC
		}
	}
	layers = append(layers, nn.NewGlobalAvgPool(name+".gap"))
	fc, err := nn.NewLinear(name+".fc", inC, cfg.Classes, true, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc)
	return &Model{
		Name: name, Net: nn.NewSequential(name, layers...),
		InC: 3, InH: cfg.InputSize, InW: cfg.InputSize, Class: cfg.Classes,
		Width: cfg.Width,
	}, nil
}

// basicBlock is the two-conv residual block: conv3x3-BN-ReLU-conv3x3-BN
// with a projection shortcut (1×1 conv + BN) when the shape changes.
func basicBlock(name string, inC, outC, inHW, stride int, rng *tensor.RNG) (nn.Layer, int, error) {
	g1 := tensor.ConvGeom{InC: inC, InH: inHW, InW: inHW, KH: 3, KW: 3, Stride: stride, Pad: 1}
	conv1, err := nn.NewConv2D(nn.Conv2DConfig{Name: name + ".conv1", In: g1, OutC: outC, RNG: rng})
	if err != nil {
		return nil, 0, err
	}
	bn1, err := nn.NewBatchNorm2D(name+".bn1", outC)
	if err != nil {
		return nil, 0, err
	}
	midHW, _ := g1.OutHW()
	g2 := tensor.ConvGeom{InC: outC, InH: midHW, InW: midHW, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv2, err := nn.NewConv2D(nn.Conv2DConfig{Name: name + ".conv2", In: g2, OutC: outC, RNG: rng})
	if err != nil {
		return nil, 0, err
	}
	bn2, err := nn.NewBatchNorm2D(name+".bn2", outC)
	if err != nil {
		return nil, 0, err
	}
	main := nn.NewSequential(name+".main", conv1, bn1, nn.NewReLU(name+".relu1"), conv2, bn2)

	var shortcut nn.Layer
	if stride != 1 || inC != outC {
		gs := tensor.ConvGeom{InC: inC, InH: inHW, InW: inHW, KH: 1, KW: 1, Stride: stride, Pad: 0}
		convS, err := nn.NewConv2D(nn.Conv2DConfig{Name: name + ".down", In: gs, OutC: outC, RNG: rng})
		if err != nil {
			return nil, 0, err
		}
		bnS, err := nn.NewBatchNorm2D(name+".downbn", outC)
		if err != nil {
			return nil, 0, err
		}
		shortcut = nn.NewSequential(name+".shortcut", convS, bnS)
	}
	return nn.NewResidual(name, main, shortcut), midHW, nil
}

// ResNet20 is ResNet(20, cfg).
func ResNet20(cfg Config) (*Model, error) { return ResNet(20, cfg) }

// ResNet110 is ResNet(110, cfg).
func ResNet110(cfg Config) (*Model, error) { return ResNet(110, cfg) }

// Build constructs a backbone by its command-line name — the shared
// registry behind apttrain -model and aptserve -arch (the checkpoint
// loader needs the matching architecture before models.Load can restore
// into it).
func Build(name string, cfg Config) (*Model, error) {
	switch name {
	case "resnet20":
		return ResNet20(cfg)
	case "resnet110":
		return ResNet110(cfg)
	case "mobilenetv2":
		return MobileNetV2(cfg)
	case "cifarnet":
		return CifarNet(cfg)
	case "vggsmall":
		return VGGSmall(cfg)
	case "smallcnn":
		return SmallCNN(cfg)
	default:
		return nil, fmt.Errorf("models: unknown backbone %q (want resnet20, resnet110, mobilenetv2, cifarnet, vggsmall or smallcnn)", name)
	}
}
