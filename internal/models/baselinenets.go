package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// CifarNet builds the small convnet TernGrad evaluates on (two 5×5 conv +
// pool stages followed by two hidden fully-connected layers). Widths scale
// with cfg.Width.
func CifarNet(cfg Config) (*Model, error) {
	cfg.fill()
	rng := tensor.NewRNG(cfg.Seed)
	const name = "cifarnet"
	hw := cfg.InputSize
	if hw%4 != 0 {
		return nil, fmt.Errorf("models: cifarnet input size %d must be divisible by 4", hw)
	}
	c1 := scaled(64, cfg.Width)
	b1, hw, err := convBNReLU(name+".b1", 3, c1, hw, 5, 1, 2, rng, false)
	if err != nil {
		return nil, err
	}
	p1, err := nn.NewMaxPool2D(name+".pool1", 2)
	if err != nil {
		return nil, err
	}
	hw /= 2
	b2, hw, err := convBNReLU(name+".b2", c1, c1, hw, 5, 1, 2, rng, false)
	if err != nil {
		return nil, err
	}
	p2, err := nn.NewMaxPool2D(name+".pool2", 2)
	if err != nil {
		return nil, err
	}
	hw /= 2
	flat := nn.NewFlatten(name + ".flatten")
	h1 := scaled(384, cfg.Width)
	h2 := scaled(192, cfg.Width)
	fc1, err := nn.NewLinear(name+".fc1", c1*hw*hw, h1, true, rng)
	if err != nil {
		return nil, err
	}
	fc2, err := nn.NewLinear(name+".fc2", h1, h2, true, rng)
	if err != nil {
		return nil, err
	}
	fc3, err := nn.NewLinear(name+".fc3", h2, cfg.Classes, true, rng)
	if err != nil {
		return nil, err
	}
	layers := append(b1, p1)
	layers = append(layers, b2...)
	layers = append(layers, p2, flat, fc1, nn.NewReLU(name+".relu3"), fc2, nn.NewReLU(name+".relu4"), fc3)
	return &Model{
		Name: name, Net: nn.NewSequential(name, layers...),
		InC: 3, InH: cfg.InputSize, InW: cfg.InputSize, Class: cfg.Classes,
		Width: cfg.Width,
	}, nil
}

// VGGSmall builds the VGG-like backbone WAGE evaluates on: stacked
// conv3×3 pairs with max-pooling, then a fully-connected classifier. The
// number of pooling stages adapts to how many times the input size halves
// cleanly (up to the canonical three).
func VGGSmall(cfg Config) (*Model, error) {
	cfg.fill()
	rng := tensor.NewRNG(cfg.Seed)
	const name = "vggsmall"
	hw := cfg.InputSize
	stages := 0
	for s := hw; s%2 == 0 && stages < 3; s /= 2 {
		stages++
	}
	if stages == 0 {
		return nil, fmt.Errorf("models: vggsmall input size %d must be divisible by 2", hw)
	}
	widths := []int{scaled(64, cfg.Width), scaled(128, cfg.Width), scaled(256, cfg.Width)}[:stages]
	var layers []nn.Layer
	inC := 3
	for si, outC := range widths {
		for b := 0; b < 2; b++ {
			blk, outHW, err := convBNReLU(fmt.Sprintf("%s.s%db%d", name, si, b), inC, outC, hw, 3, 1, 1, rng, false)
			if err != nil {
				return nil, err
			}
			layers = append(layers, blk...)
			hw = outHW
			inC = outC
		}
		pool, err := nn.NewMaxPool2D(fmt.Sprintf("%s.pool%d", name, si), 2)
		if err != nil {
			return nil, err
		}
		layers = append(layers, pool)
		hw /= 2
	}
	layers = append(layers, nn.NewFlatten(name+".flatten"))
	fc, err := nn.NewLinear(name+".fc", inC*hw*hw, cfg.Classes, true, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc)
	return &Model{
		Name: name, Net: nn.NewSequential(name, layers...),
		InC: 3, InH: cfg.InputSize, InW: cfg.InputSize, Class: cfg.Classes,
		Width: cfg.Width,
	}, nil
}

// SmallCNNQuantAct is SmallCNN with every rectifier replaced by an
// ActQuant layer (quantized activations with a learnable clipping point,
// the §III-B extension): the clip parameters join the model's Params(),
// so the APT controller manages activation precision with the same Gavg
// policy it applies to weights.
func SmallCNNQuantAct(cfg Config, actBits int) (*Model, error) {
	m, err := SmallCNN(cfg)
	if err != nil {
		return nil, err
	}
	layers := m.Net.Layers()
	swapped := make([]nn.Layer, len(layers))
	n := 0
	for i, l := range layers {
		if _, ok := l.(*nn.ReLU); ok {
			aq, err := nn.NewActQuant(fmt.Sprintf("%s.aq%d", m.Name, n), 6, actBits)
			if err != nil {
				return nil, err
			}
			swapped[i] = aq
			n++
			continue
		}
		swapped[i] = l
	}
	if n == 0 {
		return nil, fmt.Errorf("models: smallcnn had no rectifiers to quantize")
	}
	m.Net = nn.NewSequential(m.Name+"-qact", swapped...)
	return m, nil
}

// SmallCNN builds a compact 4-conv network used by the quickstart example
// and the fast unit tests: it trains to high accuracy on SynthCIFAR within
// seconds while still having enough layers for APT's per-layer dynamics to
// be visible.
func SmallCNN(cfg Config) (*Model, error) {
	cfg.fill()
	rng := tensor.NewRNG(cfg.Seed)
	const name = "smallcnn"
	hw := cfg.InputSize
	if hw%4 != 0 {
		return nil, fmt.Errorf("models: smallcnn input size %d must be divisible by 4", hw)
	}
	c1, c2 := scaled(16, cfg.Width), scaled(32, cfg.Width)
	b1, hw, err := convBNReLU(name+".b1", 3, c1, hw, 3, 1, 1, rng, false)
	if err != nil {
		return nil, err
	}
	b2, hw, err := convBNReLU(name+".b2", c1, c1, hw, 3, 2, 1, rng, false)
	if err != nil {
		return nil, err
	}
	b3, hw, err := convBNReLU(name+".b3", c1, c2, hw, 3, 1, 1, rng, false)
	if err != nil {
		return nil, err
	}
	b4, hw, err := convBNReLU(name+".b4", c2, c2, hw, 3, 2, 1, rng, false)
	if err != nil {
		return nil, err
	}
	_ = hw
	var layers []nn.Layer
	layers = append(layers, b1...)
	layers = append(layers, b2...)
	layers = append(layers, b3...)
	layers = append(layers, b4...)
	layers = append(layers, nn.NewGlobalAvgPool(name+".gap"))
	fc, err := nn.NewLinear(name+".fc", c2, cfg.Classes, true, rng)
	if err != nil {
		return nil, err
	}
	layers = append(layers, fc)
	return &Model{
		Name: name, Net: nn.NewSequential(name, layers...),
		InC: 3, InH: cfg.InputSize, InW: cfg.InputSize, Class: cfg.Classes,
		Width: cfg.Width,
	}, nil
}
