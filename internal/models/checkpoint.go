package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/nn"
	"repro/internal/quant"
)

// Checkpointing. A trained APT model is saved with its weights in their
// *quantized, bit-packed* form — the on-device storage story of the
// paper: a model trained to mixed 6–13-bit precision occupies a fraction
// of its fp32 size on flash, not just in RAM during training. fp32
// parameters (and optional master copies) are stored raw; batch-norm
// running statistics are captured alongside so a loaded model evaluates
// identically.
//
// The format is a gob stream of one checkpointFile. The header records
// the architecture (the Build registry name, which Save has always
// written) and, since this revision, the width multiplier — enough for
// LoadAuto to rebuild the matching backbone without the caller naming
// it. Loading restores into a model of the same architecture, matching
// parameters by name. Legacy checkpoints without the width field decode
// with Width 0 and fall back to the caller's value (or the default 1).

type paramRecord struct {
	Name   string
	Shape  []int
	Bits   int
	Packed *quant.Packed // quantized payload; nil for fp32
	Raw    []float32     // fp32 payload; nil when packed
	Master []float32     // optional fp32 master copy
}

type bnRecord struct {
	Name string
	Mean []float64
	Var  []float64
}

type checkpointFile struct {
	Model  string
	Width  float64 // width multiplier; 0 in legacy checkpoints
	Params []paramRecord
	BN     []bnRecord
}

// Save writes the model's state to w.
func Save(w io.Writer, m *Model) error {
	file := checkpointFile{Model: m.Name, Width: m.Width}
	for _, p := range m.Params() {
		rec := paramRecord{Name: p.Name, Shape: p.Value.Shape(), Bits: p.Bits()}
		if p.Q != nil && !p.Q.FullPrecision() {
			packed, err := quant.Pack(p.Value, p.Q)
			if err != nil {
				return fmt.Errorf("models: save %s: %w", p.Name, err)
			}
			rec.Packed = packed
		} else {
			rec.Raw = append([]float32(nil), p.Value.Data()...)
		}
		if p.Master != nil {
			rec.Master = append([]float32(nil), p.Master.Data()...)
		}
		file.Params = append(file.Params, rec)
	}
	for _, bn := range collectBatchNorms(m.Layers()) {
		mean, variance := bn.RunningStats()
		file.BN = append(file.BN, bnRecord{Name: bn.Name(), Mean: mean, Var: variance})
	}
	if err := gob.NewEncoder(w).Encode(&file); err != nil {
		return fmt.Errorf("models: encode checkpoint: %w", err)
	}
	return nil
}

// Load restores a checkpoint written by Save into m, which must have the
// same architecture (parameter names and shapes).
func Load(r io.Reader, m *Model) error {
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return fmt.Errorf("models: decode checkpoint: %w", err)
	}
	return restore(&file, m)
}

// LoadAuto decodes a checkpoint, builds the architecture its header
// names, and restores the state into it — the serving-side entry point
// that makes explicit -arch/-width flags optional. arch and width, when
// non-zero, override the header (the only way to load a legacy
// checkpoint written before the width field existed at a non-default
// width); cfg supplies the remaining build parameters and its own Width
// is ignored.
func LoadAuto(r io.Reader, arch string, width float64, cfg Config) (*Model, error) {
	var file checkpointFile
	if err := gob.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("models: decode checkpoint: %w", err)
	}
	if arch == "" {
		if file.Model == "" {
			return nil, fmt.Errorf("models: checkpoint has no architecture header; pass one explicitly")
		}
		arch = file.Model
	}
	if width == 0 {
		width = file.Width // 0 in legacy checkpoints: Config.fill defaults it to 1
	}
	cfg.Width = width
	m, err := Build(arch, cfg)
	if err != nil {
		return nil, err
	}
	if err := restore(&file, m); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadAutoFile is LoadAuto from a checkpoint file on disk — the shape
// serving needs for boot and for hot reload (aptserve re-reads the path
// on SIGHUP / POST /admin/reload, so a newly trained checkpoint swapped
// in under the same name is picked up without a restart). When the file
// carries a version/CRC trailer (SaveFileAtomic writes one), the payload
// is verified before decoding: a torn or corrupt write fails with
// ErrCorruptCheckpoint instead of a confusing partial-decode error, and
// the serving reload path retries rather than swapping in garbage.
func LoadAutoFile(path, arch string, width float64, cfg Config) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, _, _, err := splitTrailer(data)
	if err != nil {
		return nil, fmt.Errorf("models: load %s: %w", path, err)
	}
	m, err := LoadAuto(bytes.NewReader(payload), arch, width, cfg)
	if err != nil {
		return nil, fmt.Errorf("models: load %s: %w", path, err)
	}
	return m, nil
}

// restore copies a decoded checkpoint into m, which must match its
// architecture (model name, parameter names and shapes).
func restore(file *checkpointFile, m *Model) error {
	if file.Model != m.Name {
		return fmt.Errorf("models: checkpoint is for %q, model is %q", file.Model, m.Name)
	}
	byName := make(map[string]*nn.Param, len(m.Params()))
	for _, p := range m.Params() {
		byName[p.Name] = p
	}
	for _, rec := range file.Params {
		p, ok := byName[rec.Name]
		if !ok {
			return fmt.Errorf("models: checkpoint parameter %q not in model", rec.Name)
		}
		switch {
		case rec.Packed != nil:
			v, err := rec.Packed.Unpack(rec.Shape...)
			if err != nil {
				return fmt.Errorf("models: load %s: %w", rec.Name, err)
			}
			if err := p.Value.CopyFrom(v); err != nil {
				return fmt.Errorf("models: load %s: %w", rec.Name, err)
			}
			st, err := quant.NewState(rec.Bits)
			if err != nil {
				return fmt.Errorf("models: load %s: %w", rec.Name, err)
			}
			st.Refresh(p.Value)
			p.Q = st
		case rec.Raw != nil:
			if len(rec.Raw) != p.Value.Len() {
				return fmt.Errorf("models: load %s: %d values for %d elements", rec.Name, len(rec.Raw), p.Value.Len())
			}
			copy(p.Value.Data(), rec.Raw)
			p.Q = nil
		default:
			return fmt.Errorf("models: load %s: empty record", rec.Name)
		}
		if rec.Master != nil {
			p.EnableMaster()
			copy(p.Master.Data(), rec.Master)
		} else {
			p.Master = nil
		}
		delete(byName, rec.Name)
	}
	if len(byName) > 0 {
		for name := range byName {
			return fmt.Errorf("models: checkpoint missing parameter %q", name)
		}
	}
	bnByName := make(map[string]*nn.BatchNorm2D)
	for _, bn := range collectBatchNorms(m.Layers()) {
		bnByName[bn.Name()] = bn
	}
	for _, rec := range file.BN {
		bn, ok := bnByName[rec.Name]
		if !ok {
			return fmt.Errorf("models: checkpoint batch-norm %q not in model", rec.Name)
		}
		if err := bn.SetRunningStats(rec.Mean, rec.Var); err != nil {
			return fmt.Errorf("models: load %s: %w", rec.Name, err)
		}
	}
	return nil
}

// collectBatchNorms walks the layer tree for batch-norm layers, via the
// shared walker that also backs the replica snapshot facility (nn.WalkLayers).
func collectBatchNorms(layers []nn.Layer) []*nn.BatchNorm2D {
	return nn.CollectBatchNorms(layers)
}
