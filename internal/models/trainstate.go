package models

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/optim"
)

// Full-training-state checkpoints. A serving checkpoint (Save) captures
// only what inference needs; resuming a killed training run mid-epoch
// needs everything the trajectory depends on: the complete network state
// (weights, quant grids, fp32 masters, batch-norm statistics), the
// optimizer's momentum buffers, the APT controller's Gavg history, the
// data loader's shuffle position, and any auxiliary RNG streams
// (augmentation, stochastic gradient codecs). TrainState is that record;
// with it, `apttrain -resume` reproduces the uninterrupted run's weights
// bit-exactly in strict-barrier mode.
//
// The file format is a gob stream of TrainState followed by the same
// version/CRC trailer serving checkpoints use, written atomically — a
// checkpoint file either decodes completely and verifies, or is rejected
// with ErrCorruptCheckpoint. The trailer's version field counts writes,
// so an external watcher can tell successive snapshots apart cheaply.

// TrainStateFormat is the format version stamped into TrainState files;
// bump it when the layout changes incompatibly.
const TrainStateFormat = 1

// TrainState is a complete, resumable snapshot of a training run.
type TrainState struct {
	// Format is the TrainStateFormat the file was written with.
	Format int
	// Arch and Width identify the backbone (the Build registry name and
	// width multiplier), as in serving checkpoint headers.
	Arch  string
	Width float64
	// Seed is the run's master seed, recorded for sanity checking — a
	// resume under a different seed would silently diverge.
	Seed uint64

	// Epoch is the 0-based epoch in progress; Loader is the mid-epoch
	// position of the training loader.
	Epoch  int
	Loader data.Cursor

	// Net is the complete network state of the canonical (server) model.
	Net *nn.NetState
	// Replicas holds per-worker replica states for data-parallel runs
	// (batch-norm running statistics are worker-local, so the server copy
	// alone cannot reproduce them). Entry w belongs to worker slot w; a
	// nil entry (worker was mid-shard when the snapshot was taken, elastic
	// mode only) makes resume fall back to a clone of Net for that slot.
	// Nil for single-process and sequential-engine runs.
	Replicas []*nn.NetState
	// Opt is the optimizer snapshot (momentum buffers, hyperparameters).
	Opt *optim.SGDState
	// Ctrl is the APT controller snapshot; nil for runs without APT.
	Ctrl *core.ControllerState

	// RNGs are auxiliary RNG stream states (gradient codec, data
	// augmentation) in the order the trainer registered them.
	RNGs []uint64

	// Cumulative run statistics, restored so a resumed run's final
	// accounting matches the uninterrupted run's.
	Rounds    int
	UpBytes   int64
	DownBytes int64
	Accs      []float64
	// Publishes is how many serving checkpoints the run has published;
	// the next publish continues the version sequence.
	Publishes uint64
}

// SaveTrainState writes st to path atomically with a version/CRC trailer.
// The trailer version counts Rounds so successive snapshots are
// distinguishable without decoding.
func SaveTrainState(path string, st *TrainState) error {
	st.Format = TrainStateFormat
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return fmt.Errorf("models: encode train state: %w", err)
	}
	appendTrailer(&buf, uint64(st.Rounds))
	if err := writeFileAtomic(path, buf.Bytes()); err != nil {
		return fmt.Errorf("models: write %s: %w", path, err)
	}
	return nil
}

// LoadTrainState reads and verifies a TrainState written by
// SaveTrainState. A file with a mismatched CRC (torn or corrupt write)
// fails with ErrCorruptCheckpoint; a file without a trailer is rejected
// too — train-state checkpoints have always carried one, so its absence
// means the file is not a train-state checkpoint (or lost its tail).
func LoadTrainState(path string) (*TrainState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, _, hasTrailer, err := splitTrailer(data)
	if err != nil {
		return nil, fmt.Errorf("models: load %s: %w", path, err)
	}
	if !hasTrailer {
		return nil, fmt.Errorf("models: load %s: not a train-state checkpoint (missing version/CRC trailer)", path)
	}
	var st TrainState
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("models: decode train state %s: %w", path, err)
	}
	if st.Format != TrainStateFormat {
		return nil, fmt.Errorf("models: train state %s has format %d, this build reads %d", path, st.Format, TrainStateFormat)
	}
	return &st, nil
}
