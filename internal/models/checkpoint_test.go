package models

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainedModel returns a model whose weights, quantization states and BN
// running stats have been perturbed away from initialization, with a mix
// of quantized, fp32 and master-copy parameters.
func trainedModel(t *testing.T) *Model {
	t.Helper()
	m, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 3})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	rng := tensor.NewRNG(10)
	for i, p := range m.Params() {
		p.Value.FillNormal(rng, 0, 1)
		switch i % 3 {
		case 0:
			if err := p.SetBits(6); err != nil {
				t.Fatalf("SetBits: %v", err)
			}
		case 1:
			p.EnableMaster()
			if err := p.SetBits(4); err != nil {
				t.Fatalf("SetBits: %v", err)
			}
		}
	}
	// Push data through in training mode so BN stats move.
	x := tensor.New(4, 3, 12, 12)
	x.FillNormal(rng, 1, 2)
	if _, err := m.Net.Forward(x, true); err != nil {
		t.Fatalf("forward: %v", err)
	}
	return m
}

func TestCheckpointRoundTrip(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}

	fresh, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 99})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Parameter values, bits and master copies restored.
	orig, got := m.Params(), fresh.Params()
	for i := range orig {
		if orig[i].Bits() != got[i].Bits() {
			t.Errorf("%s bits %d != %d", orig[i].Name, got[i].Bits(), orig[i].Bits())
		}
		for j := range orig[i].Value.Data() {
			a, b := orig[i].Value.Data()[j], got[i].Value.Data()[j]
			if diff := a - b; diff > 1e-5 || diff < -1e-5 {
				t.Fatalf("%s value[%d] %v != %v", orig[i].Name, j, b, a)
			}
		}
		if (orig[i].Master == nil) != (got[i].Master == nil) {
			t.Errorf("%s master presence mismatch", orig[i].Name)
		}
	}

	// Identical evaluation behaviour.
	rng := tensor.NewRNG(20)
	x := tensor.New(2, 3, 12, 12)
	x.FillNormal(rng, 0, 1)
	outA, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("forward A: %v", err)
	}
	outB, err := fresh.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("forward B: %v", err)
	}
	for i := range outA.Data() {
		diff := outA.Data()[i] - outB.Data()[i]
		if diff > 1e-4 || diff < -1e-4 {
			t.Fatalf("loaded model diverges at logit %d: %v vs %v", i, outA.Data()[i], outB.Data()[i])
		}
	}
}

func TestCheckpointSizeReflectsQuantization(t *testing.T) {
	// A fully 6-bit-quantized model must checkpoint much smaller than the
	// same model in fp32.
	quantized, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 3})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	rng := tensor.NewRNG(11)
	for _, p := range quantized.Params() {
		p.Value.FillNormal(rng, 0, 1)
		if err := p.SetBits(6); err != nil {
			t.Fatalf("SetBits: %v", err)
		}
	}
	var qbuf bytes.Buffer
	if err := Save(&qbuf, quantized); err != nil {
		t.Fatalf("Save quantized: %v", err)
	}

	full, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 3})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	for _, p := range full.Params() {
		p.Value.FillNormal(rng, 0, 1)
	}
	var fbuf bytes.Buffer
	if err := Save(&fbuf, full); err != nil {
		t.Fatalf("Save fp32: %v", err)
	}
	if qbuf.Len() >= fbuf.Len()/2 {
		t.Errorf("6-bit checkpoint %dB not meaningfully smaller than fp32 %dB", qbuf.Len(), fbuf.Len())
	}
}

// TestLoadAutoFile round-trips a checkpoint through disk via the
// file-path helper the serving reload path uses.
func TestLoadAutoFile(t *testing.T) {
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "ckpt.apt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(f, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadAutoFile(path, "", 0, Config{Classes: 4, InputSize: 12, Seed: 99})
	if err != nil {
		t.Fatalf("LoadAutoFile: %v", err)
	}
	if got.Name != m.Name || got.Width != m.Width {
		t.Errorf("loaded %s (width %g), want %s (width %g)", got.Name, got.Width, m.Name, m.Width)
	}
	if _, err := LoadAutoFile(filepath.Join(t.TempDir(), "missing.apt"), "", 0, Config{}); err == nil {
		t.Error("missing file did not error")
	}
}

func TestLoadRejectsMismatches(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}

	other, err := ResNet20(Config{Classes: 4, InputSize: 12, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("loading into a different architecture did not error")
	}
	if err := Load(strings.NewReader("garbage"), m); err == nil {
		t.Error("garbage stream did not error")
	}
}

func TestBNStatsRestored(t *testing.T) {
	m := trainedModel(t)
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	fresh, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 99})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if err := Load(bytes.NewReader(buf.Bytes()), fresh); err != nil {
		t.Fatalf("Load: %v", err)
	}
	origBNs := collectBatchNorms(m.Layers())
	gotBNs := collectBatchNorms(fresh.Layers())
	if len(origBNs) == 0 || len(origBNs) != len(gotBNs) {
		t.Fatalf("BN counts: %d vs %d", len(origBNs), len(gotBNs))
	}
	for i := range origBNs {
		om, ov := origBNs[i].RunningStats()
		gm, gv := gotBNs[i].RunningStats()
		for c := range om {
			if om[c] != gm[c] || ov[c] != gv[c] {
				t.Fatalf("BN %s stats differ after load", origBNs[i].Name())
			}
		}
	}
}

var _ = nn.Param{}

// TestLoadAutoInfersArchAndWidth checks the checkpoint header end to
// end: a model saved at a non-default width is rebuilt by LoadAuto with
// no overrides, explicit overrides still apply, and a legacy checkpoint
// (no width field — gob omits zero values, so Width 0 is exactly what an
// old file decodes to) falls back to the caller's width.
func TestLoadAutoInfersArchAndWidth(t *testing.T) {
	cfg := Config{Classes: 4, InputSize: 12, Width: 0.5, Seed: 3}
	m, err := SmallCNN(cfg)
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if m.Width != 0.5 {
		t.Fatalf("Model.Width = %g, want 0.5", m.Width)
	}
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("Save: %v", err)
	}

	got, err := LoadAuto(bytes.NewReader(buf.Bytes()), "", 0, Config{Classes: 4, InputSize: 12, Seed: 99})
	if err != nil {
		t.Fatalf("LoadAuto: %v", err)
	}
	if got.Name != "smallcnn" || got.Width != 0.5 {
		t.Fatalf("LoadAuto rebuilt %q width %g, want smallcnn width 0.5", got.Name, got.Width)
	}
	for i, p := range m.Params() {
		q := got.Params()[i]
		if !bytes.Equal(f32Bytes(p.Value.Data()), f32Bytes(q.Value.Data())) {
			t.Fatalf("parameter %s differs after LoadAuto", p.Name)
		}
	}

	// Explicit overrides matching the header load too.
	if _, err := LoadAuto(bytes.NewReader(buf.Bytes()), "smallcnn", 0.5, Config{Classes: 4, InputSize: 12}); err != nil {
		t.Fatalf("LoadAuto with matching overrides: %v", err)
	}
	// A wrong arch override fails on the architecture check.
	if _, err := LoadAuto(bytes.NewReader(buf.Bytes()), "cifarnet", 0.5, Config{Classes: 4, InputSize: 12}); err == nil {
		t.Error("LoadAuto with mismatched arch override did not error")
	}
	// A wrong width override fails on parameter shapes.
	if _, err := LoadAuto(bytes.NewReader(buf.Bytes()), "", 1, Config{Classes: 4, InputSize: 12}); err == nil {
		t.Error("LoadAuto with mismatched width override did not error")
	}
}

func f32Bytes(v []float32) []byte {
	out := make([]byte, 0, 4*len(v))
	for _, f := range v {
		u := math.Float32bits(f)
		out = append(out, byte(u), byte(u>>8), byte(u>>16), byte(u>>24))
	}
	return out
}
