package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// forwardBackward pushes one batch through the model in both directions
// and checks output shape and gradient sanity.
func forwardBackward(t *testing.T, m *Model, batch int) {
	t.Helper()
	x := tensor.New(batch, m.InC, m.InH, m.InW)
	x.FillNormal(tensor.NewRNG(99), 0, 1)
	out, err := m.Net.Forward(x, true)
	if err != nil {
		t.Fatalf("%s forward: %v", m.Name, err)
	}
	if out.Rank() != 2 || out.Dim(0) != batch || out.Dim(1) != m.Class {
		t.Fatalf("%s output shape %v, want (%d,%d)", m.Name, out.Shape(), batch, m.Class)
	}
	if out.HasNaN() {
		t.Fatalf("%s forward produced NaN", m.Name)
	}
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % m.Class
	}
	var loss nn.SoftmaxCrossEntropy
	_, dlogits, err := loss.Forward(out, labels)
	if err != nil {
		t.Fatalf("%s loss: %v", m.Name, err)
	}
	dx, err := m.Net.Backward(dlogits)
	if err != nil {
		t.Fatalf("%s backward: %v", m.Name, err)
	}
	if !dx.SameShape(x) {
		t.Fatalf("%s input grad shape %v, want %v", m.Name, dx.Shape(), x.Shape())
	}
	nonZeroGrads := 0
	for _, p := range m.Params() {
		if p.Grad.L2Norm() > 0 {
			nonZeroGrads++
		}
		if p.Grad.HasNaN() {
			t.Fatalf("%s param %s gradient has NaN", m.Name, p.Name)
		}
	}
	if nonZeroGrads < len(m.Params())/2 {
		t.Errorf("%s: only %d/%d params received gradient", m.Name, nonZeroGrads, len(m.Params()))
	}
}

func TestResNet20Shape(t *testing.T) {
	m, err := ResNet20(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	// 6n+2 with n=3: stem + 9 blocks + gap + fc = 13 top-level layers
	// (stem is conv+bn+relu = 3 entries), so expect 3+9+2 = 14.
	if got := len(m.Layers()); got != 14 {
		t.Errorf("top-level layers = %d, want 14", got)
	}
	forwardBackward(t, m, 2)
}

func TestResNetRejectsBadDepth(t *testing.T) {
	if _, err := ResNet(21, Config{}); err == nil {
		t.Error("depth 21 (not 6n+2) did not error")
	}
	if _, err := ResNet(2, Config{}); err == nil {
		t.Error("depth 2 did not error")
	}
}

func TestResNet110Builds(t *testing.T) {
	m, err := ResNet110(Config{Classes: 10, InputSize: 8, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet110: %v", err)
	}
	// 54 blocks + 3 stem entries + gap + fc.
	if got := len(m.Layers()); got != 59 {
		t.Errorf("top-level layers = %d, want 59", got)
	}
	// One cheap forward to prove the deep graph is wired correctly.
	x := tensor.New(1, 3, 8, 8)
	x.FillNormal(tensor.NewRNG(5), 0, 1)
	out, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("forward: %v", err)
	}
	if out.Dim(1) != 10 {
		t.Errorf("output classes = %d", out.Dim(1))
	}
}

func TestMobileNetV2ForwardBackward(t *testing.T) {
	m, err := MobileNetV2(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("MobileNetV2: %v", err)
	}
	forwardBackward(t, m, 2)
}

func TestCifarNetForwardBackward(t *testing.T) {
	m, err := CifarNet(Config{Classes: 10, InputSize: 16, Width: 0.5, Seed: 1})
	if err != nil {
		t.Fatalf("CifarNet: %v", err)
	}
	forwardBackward(t, m, 2)
}

func TestVGGSmallForwardBackward(t *testing.T) {
	m, err := VGGSmall(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("VGGSmall: %v", err)
	}
	forwardBackward(t, m, 2)
}

func TestVGGSmallAdaptsStages(t *testing.T) {
	// 12 halves twice (12 -> 6 -> 3): two pooling stages.
	m, err := VGGSmall(Config{Classes: 4, InputSize: 12, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("VGGSmall(12): %v", err)
	}
	forwardBackward(t, m, 1)
	if _, err := VGGSmall(Config{Classes: 4, InputSize: 7, Width: 0.25, Seed: 1}); err == nil {
		t.Error("odd input size did not error")
	}
}

func TestSmallCNNForwardBackward(t *testing.T) {
	m, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	forwardBackward(t, m, 2)
}

func TestSmallCNNQuantActReplacesRectifiers(t *testing.T) {
	m, err := SmallCNNQuantAct(Config{Classes: 4, InputSize: 12, Seed: 1}, 6)
	if err != nil {
		t.Fatalf("SmallCNNQuantAct: %v", err)
	}
	var aq, relu int
	for _, l := range m.Layers() {
		switch l.(type) {
		case *nn.ActQuant:
			aq++
		case *nn.ReLU:
			relu++
		}
	}
	if aq != 4 || relu != 0 {
		t.Fatalf("layers: %d ActQuant, %d ReLU; want 4, 0", aq, relu)
	}
	// Clip parameters join Params(): 4 extra alphas vs the plain model.
	plain, err := SmallCNN(Config{Classes: 4, InputSize: 12, Seed: 1})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if len(m.Params()) != len(plain.Params())+4 {
		t.Errorf("params: %d vs plain %d, want +4 alphas", len(m.Params()), len(plain.Params()))
	}
	forwardBackward(t, m, 2)
}

func TestWidthScalesParameterCount(t *testing.T) {
	narrow, err := ResNet20(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	wide, err := ResNet20(Config{Classes: 10, InputSize: 16, Width: 1.0, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	count := func(m *Model) int {
		n := 0
		for _, p := range m.Params() {
			n += p.Value.Len()
		}
		return n
	}
	if count(wide) < 8*count(narrow) {
		t.Errorf("width 1.0 (%d params) should be ~16x width 0.25 (%d params)",
			count(wide), count(narrow))
	}
}

func TestDeterministicInit(t *testing.T) {
	a, err := ResNet20(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 7})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	b, err := ResNet20(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 7})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatal("param lists differ")
	}
	for i := range pa {
		for j := range pa[i].Value.Data() {
			if pa[i].Value.Data()[j] != pb[i].Value.Data()[j] {
				t.Fatalf("param %s differs at %d between same-seed builds", pa[i].Name, j)
			}
		}
	}
}

func TestModelMACsPositive(t *testing.T) {
	builders := map[string]func(Config) (*Model, error){
		"resnet20":    ResNet20,
		"mobilenetv2": MobileNetV2,
		"cifarnet":    CifarNet,
		"vggsmall":    VGGSmall,
		"smallcnn":    SmallCNN,
	}
	for name, build := range builders {
		m, err := build(Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Net.MACs() <= 0 {
			t.Errorf("%s MACs = %d, want > 0", name, m.Net.MACs())
		}
	}
}
