package optim

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, Adam's first step is ~lr in the gradient
	// direction regardless of gradient magnitude.
	for _, g := range []float32{0.001, 1, 1000} {
		p := singleParam([]float32{0})
		p.Grad.Data()[0] = g
		adam := NewAdam(0.1, 0, 0, 0)
		if err := adam.Step([]*nn.Param{p}); err != nil {
			t.Fatalf("Step: %v", err)
		}
		got := float64(p.Value.Data()[0])
		if math.Abs(got+0.1) > 0.01 {
			t.Errorf("grad %v: first step moved %v, want ~-0.1", g, got)
		}
	}
}

func TestAdamDirectionFollowsGradientSign(t *testing.T) {
	p := singleParam([]float32{0, 0})
	p.Grad.Data()[0] = 5
	p.Grad.Data()[1] = -5
	adam := NewAdam(0.01, 0, 0, 0)
	if err := adam.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if p.Value.Data()[0] >= 0 || p.Value.Data()[1] <= 0 {
		t.Errorf("step direction wrong: %v", p.Value.Data())
	}
}

func TestAdamZerosGradients(t *testing.T) {
	p := singleParam([]float32{1})
	p.Grad.Data()[0] = 1
	adam := NewAdam(0.01, 0, 0, 0)
	if err := adam.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if p.Grad.Data()[0] != 0 {
		t.Error("gradient not cleared")
	}
}

func TestAdamQuantizedPathUnderflows(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := tensor.New(32)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	if err := p.SetBits(3); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	before := p.Value.Clone()
	p.Grad.Fill(1) // Adam step ~ lr; with tiny lr the step underflows eps
	adam := NewAdam(1e-6, 0, 0, 0)
	if err := adam.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	for i := range before.Data() {
		if p.Value.Data()[i] != before.Data()[i] {
			t.Fatal("underflowing Adam step moved a 3-bit weight")
		}
	}
	if p.Underflowed == 0 {
		t.Error("underflow not recorded")
	}
}

func TestAdamMasterPathAccumulates(t *testing.T) {
	rng := tensor.NewRNG(2)
	v := tensor.New(32)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	p.EnableMaster()
	if err := p.SetBits(2); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	masterBefore := p.Master.Clone()
	p.Grad.Fill(0.01)
	adam := NewAdam(0.001, 0, 0, 0)
	if err := adam.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	moved := false
	for i := range masterBefore.Data() {
		if p.Master.Data()[i] != masterBefore.Data()[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("master did not accumulate Adam step")
	}
}

func TestAdamImplementsOptimizer(t *testing.T) {
	var _ Optimizer = NewAdam(0.1, 0, 0, 0)
	var _ Optimizer = NewSGD(0.1, 0.9, 0)
	a := NewAdam(0.1, 0, 0, 0)
	a.SetLR(0.5)
	if a.LR() != 0.5 {
		t.Errorf("LR = %v", a.LR())
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = (w-3)^2 — Adam should reach the optimum quickly.
	p := singleParam([]float32{0})
	adam := NewAdam(0.1, 0, 0, 0)
	for i := 0; i < 300; i++ {
		w := p.Value.Data()[0]
		p.Grad.Data()[0] = 2 * (w - 3)
		if err := adam.Step([]*nn.Param{p}); err != nil {
			t.Fatalf("Step: %v", err)
		}
	}
	if math.Abs(float64(p.Value.Data()[0])-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", p.Value.Data()[0])
	}
}
