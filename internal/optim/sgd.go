// Package optim implements the SGD optimizer the paper trains with
// (momentum 0.9, weight decay 1e-4) and its learning-rate schedules. The
// optimizer composes the full update (momentum + weight decay + learning
// rate) before handing it to the parameter's quantized update rule, so —
// as §III-B requires — training tricks compose with APT without entering
// the Gavg metric.
package optim

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Optimizer is the interface the training loop drives: one Step per
// mini-batch (which must also clear gradients) and a schedulable learning
// rate. SGD and Adam implement it.
type Optimizer interface {
	Step(params []*nn.Param) error
	SetLR(lr float64)
	LR() float64
}

// SGD is stochastic gradient descent with classical momentum and L2 weight
// decay. The zero value is unusable; use NewSGD.
type SGD struct {
	lr          float64
	momentum    float64
	weightDecay float64
	velocity    map[*nn.Param]*tensor.Tensor
	// scratch holds the composed step for the quantized update path; cached
	// per parameter so steady-state steps allocate nothing.
	scratch map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{
		lr:          lr,
		momentum:    momentum,
		weightDecay: weightDecay,
		velocity:    make(map[*nn.Param]*tensor.Tensor),
		scratch:     make(map[*nn.Param]*tensor.Tensor),
	}
}

// SetLR updates the learning rate (driven by a Schedule each epoch).
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// LR returns the current learning rate.
func (s *SGD) LR() float64 { return s.lr }

// Step applies one update to every parameter and zeroes the gradients.
//
// Per parameter it forms the raw step
//
//	v := momentum·v + g + weightDecay·w
//	step := lr·v
//
// and then applies w := w − step through one of three paths:
//   - fp32 parameter: plain subtraction;
//   - quantized, no master: the paper's Eq. 3 truncated update on the
//     k-bit grid, recording how many elements underflowed;
//   - quantized with fp32 master (baselines): update the master in fp32,
//     then re-quantize the working copy from it.
func (s *SGD) Step(params []*nn.Param) error {
	for _, p := range params {
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		ref := p.Value
		if p.Master != nil {
			ref = p.Master
		}
		vd, gd, wd := v.Data(), p.Grad.Data(), ref.Data()
		mom := float32(s.momentum)
		wdcy := float32(s.weightDecay)
		lr := float32(s.lr)

		switch {
		case p.Q == nil || p.Q.FullPrecision():
			for i := range vd {
				vd[i] = mom*vd[i] + gd[i] + wdcy*wd[i]
				wd[i] -= lr * vd[i]
			}
			p.Underflowed = 0

		case p.Master != nil:
			// fp32 master path: full-precision accumulation, quantized view.
			for i := range vd {
				vd[i] = mom*vd[i] + gd[i] + wdcy*wd[i]
				wd[i] -= lr * vd[i]
			}
			if err := p.Value.CopyFrom(p.Master); err != nil {
				return fmt.Errorf("optim: %s: %w", p.Name, err)
			}
			p.Q.Quantize(p.Value)
			p.Underflowed = 0

		default:
			// APT path: compose the step, then apply Eq. 3 on the grid.
			step := s.scratch[p]
			if step == nil {
				step = tensor.New(p.Value.Shape()...)
				s.scratch[p] = step
			}
			sd := step.Data()
			for i := range vd {
				vd[i] = mom*vd[i] + gd[i] + wdcy*wd[i]
				sd[i] = lr * vd[i]
			}
			uf, err := p.Q.UpdateInPlace(p.Value, step)
			if err != nil {
				return fmt.Errorf("optim: %s: %w", p.Name, err)
			}
			p.Underflowed = uf
			// Track the drifting value range so ε follows the live tensor,
			// as the affine scheme re-derives S and Z per tensor.
			p.Q.Refresh(p.Value)
		}
		p.ZeroGrad()
	}
	return nil
}

// SGDVelocity is one parameter's momentum buffer in an SGDState snapshot.
type SGDVelocity struct {
	Name string
	Data []float32
}

// SGDState is a checkpointable snapshot of the optimizer: the learning
// rate and every parameter's momentum buffer, keyed by parameter name.
// Together with the model's nn.NetState it makes a mid-run training
// trajectory resumable bit-identically — momentum carries history, so
// dropping it on resume would diverge from the uninterrupted run.
type SGDState struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	Velocity    []SGDVelocity
}

// CaptureState snapshots the optimizer's state for the given parameters.
// Parameters the optimizer has never stepped contribute a zero buffer, so
// Capture → Restore round-trips regardless of when the snapshot is taken.
func (s *SGD) CaptureState(params []*nn.Param) *SGDState {
	st := &SGDState{
		LR: s.lr, Momentum: s.momentum, WeightDecay: s.weightDecay,
		Velocity: make([]SGDVelocity, 0, len(params)),
	}
	for _, p := range params {
		rec := SGDVelocity{Name: p.Name}
		if v := s.velocity[p]; v != nil {
			rec.Data = append([]float32(nil), v.Data()...)
		} else {
			rec.Data = make([]float32, p.Value.Len())
		}
		st.Velocity = append(st.Velocity, rec)
	}
	return st
}

// RestoreState imports a snapshot captured with CaptureState, binding the
// velocity buffers to params by name and order. The hyperparameters
// travel with the snapshot so a resumed run steps identically even if the
// caller constructed the optimizer with defaults.
func (s *SGD) RestoreState(params []*nn.Param, st *SGDState) error {
	if len(params) != len(st.Velocity) {
		return fmt.Errorf("optim: restore: snapshot has %d velocity buffers, model has %d parameters", len(st.Velocity), len(params))
	}
	s.lr = st.LR
	s.momentum = st.Momentum
	s.weightDecay = st.WeightDecay
	for i, p := range params {
		rec := &st.Velocity[i]
		if rec.Name != p.Name {
			return fmt.Errorf("optim: restore: buffer %d is %q, parameter is %q", i, rec.Name, p.Name)
		}
		if len(rec.Data) != p.Value.Len() {
			return fmt.Errorf("optim: restore %s: %d values for %d elements", p.Name, len(rec.Data), p.Value.Len())
		}
		v := s.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Shape()...)
			s.velocity[p] = v
		}
		copy(v.Data(), rec.Data)
	}
	return nil
}

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	LR(epoch int) float64
}

// StepSchedule is the paper's CIFAR-10 schedule: a base rate divided by 10
// at each milestone (100 and 150 in the paper's 200-epoch runs; the
// experiment profiles scale the milestones with the epoch budget).
type StepSchedule struct {
	Base       float64
	Milestones []int
	Factor     float64
}

// LR implements Schedule.
func (s StepSchedule) LR(epoch int) float64 {
	lr := s.Base
	f := s.Factor
	if f == 0 {
		f = 0.1
	}
	for _, m := range s.Milestones {
		if epoch >= m {
			lr *= f
		}
	}
	return lr
}

// WarmupSchedule is the paper's CIFAR-100 schedule: the learning rate is
// held at Warm for the first WarmEpochs epochs, then follows Inner.
type WarmupSchedule struct {
	Warm       float64
	WarmEpochs int
	Inner      Schedule
}

// LR implements Schedule.
func (s WarmupSchedule) LR(epoch int) float64 {
	if epoch < s.WarmEpochs {
		return s.Warm
	}
	return s.Inner.LR(epoch)
}

// ConstSchedule keeps a fixed learning rate.
type ConstSchedule float64

// LR implements Schedule.
func (c ConstSchedule) LR(int) float64 { return float64(c) }
