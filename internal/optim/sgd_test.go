package optim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func singleParam(vals []float32) *nn.Param {
	v := tensor.MustFromSlice(append([]float32(nil), vals...), len(vals))
	return nn.NewParam("w", v)
}

func TestSGDPlainStep(t *testing.T) {
	p := singleParam([]float32{1, 2})
	p.Grad.Data()[0] = 0.5
	p.Grad.Data()[1] = -0.5
	sgd := NewSGD(0.1, 0, 0)
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(float64(p.Value.Data()[0])-0.95) > 1e-6 ||
		math.Abs(float64(p.Value.Data()[1])-2.05) > 1e-6 {
		t.Errorf("values = %v, want [0.95 2.05]", p.Value.Data())
	}
	// Gradients cleared after the step.
	if p.Grad.Data()[0] != 0 || p.Grad.Data()[1] != 0 {
		t.Error("gradients not zeroed after Step")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := singleParam([]float32{0})
	sgd := NewSGD(1, 0.9, 0)
	// Two steps with constant gradient 1: v1 = 1, v2 = 0.9 + 1 = 1.9
	// w after step 1: -1; after step 2: -2.9
	p.Grad.Data()[0] = 1
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	p.Grad.Data()[0] = 1
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(float64(p.Value.Data()[0])+2.9) > 1e-6 {
		t.Errorf("w = %v, want -2.9", p.Value.Data()[0])
	}
}

func TestSGDWeightDecay(t *testing.T) {
	p := singleParam([]float32{10})
	sgd := NewSGD(0.1, 0, 0.01)
	// zero gradient: step = lr * wd * w = 0.1*0.01*10 = 0.01
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if math.Abs(float64(p.Value.Data()[0])-9.99) > 1e-6 {
		t.Errorf("w = %v, want 9.99", p.Value.Data()[0])
	}
}

func TestSGDQuantizedPathUnderflows(t *testing.T) {
	rng := tensor.NewRNG(1)
	v := tensor.New(64)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	if err := p.SetBits(4); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	eps := p.Eps()
	before := p.Value.Clone()
	// Gradient so small that lr*g << eps everywhere: every update drops.
	p.Grad.Fill(eps / 1000)
	sgd := NewSGD(0.1, 0, 0)
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	for i := range before.Data() {
		if p.Value.Data()[i] != before.Data()[i] {
			t.Fatal("underflowing update moved a quantized weight")
		}
	}
	if p.Underflowed != 64 {
		t.Errorf("Underflowed = %d, want 64", p.Underflowed)
	}
}

func TestSGDQuantizedPathLargeStepMoves(t *testing.T) {
	rng := tensor.NewRNG(2)
	v := tensor.New(64)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	if err := p.SetBits(6); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	eps := p.Eps()
	before := p.Value.Clone()
	p.Grad.Fill(eps * 100) // lr 0.1 -> step = 10*eps
	sgd := NewSGD(0.1, 0, 0)
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	// Every element must take the full 10·eps step unless that would walk
	// it off the affine range, in which case it clamps to the grid floor
	// (quant.UpdateInPlace's Eq. 3 + clamp semantics).
	min := p.Q.Min
	moved, clamped := 0, 0
	for i := range before.Data() {
		got := p.Value.Data()[i]
		want := before.Data()[i] - 10*eps
		switch {
		case want < min:
			if got != min {
				t.Fatalf("w[%d] = %v, want clamp to range floor %v", i, got, min)
			}
			clamped++
		case math.Abs(float64(got-want)) > 1e-5:
			t.Fatalf("w[%d] = %v, want %v", i, got, want)
		default:
			if got != before.Data()[i] {
				moved++
			}
		}
	}
	if moved == 0 {
		t.Error("no weight took the large step")
	}
	if moved+clamped != 64 {
		t.Errorf("moved %d + clamped %d of 64 weights, want all accounted for", moved, clamped)
	}
}

func TestSGDMasterPathKeepsFP32Accumulation(t *testing.T) {
	rng := tensor.NewRNG(3)
	v := tensor.New(64)
	v.FillNormal(rng, 0, 1)
	p := nn.NewParam("w", v)
	p.EnableMaster()
	if err := p.SetBits(2); err != nil {
		t.Fatalf("SetBits: %v", err)
	}
	masterBefore := p.Master.Clone()
	// A tiny gradient that would underflow the 2-bit grid must still
	// accumulate in the fp32 master.
	p.Grad.Fill(1e-4)
	sgd := NewSGD(0.1, 0, 0)
	if err := sgd.Step([]*nn.Param{p}); err != nil {
		t.Fatalf("Step: %v", err)
	}
	changed := false
	for i := range masterBefore.Data() {
		if p.Master.Data()[i] != masterBefore.Data()[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("master copy did not accumulate a small update")
	}
	// The working copy stays on the 2-bit grid.
	distinct := make(map[float32]bool)
	for _, x := range p.Value.Data() {
		distinct[x] = true
	}
	if len(distinct) > 4 {
		t.Errorf("2-bit working copy has %d levels", len(distinct))
	}
}

// Property: with momentum and decay of zero, the fp32 path computes
// exactly w - lr*g.
func TestSGDPlainStepProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(16)
		p := nn.NewParam("w", tensor.New(n))
		p.Value.FillNormal(rng, 0, 1)
		p.Grad.FillNormal(rng, 0, 1)
		before := p.Value.Clone()
		grad := p.Grad.Clone()
		lr := rng.Float64()
		sgd := NewSGD(lr, 0, 0)
		if err := sgd.Step([]*nn.Param{p}); err != nil {
			return false
		}
		for i := range before.Data() {
			want := before.Data()[i] - float32(lr)*grad.Data()[i]
			if math.Abs(float64(p.Value.Data()[i]-want)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStepSchedule(t *testing.T) {
	s := StepSchedule{Base: 0.1, Milestones: []int{100, 150}, Factor: 0.1}
	cases := []struct {
		epoch int
		want  float64
	}{
		{0, 0.1}, {99, 0.1}, {100, 0.01}, {149, 0.01}, {150, 0.001}, {199, 0.001},
	}
	for _, tc := range cases {
		if got := s.LR(tc.epoch); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("LR(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
}

func TestStepScheduleDefaultFactor(t *testing.T) {
	s := StepSchedule{Base: 1, Milestones: []int{1}}
	if got := s.LR(1); got != 0.1 {
		t.Errorf("default factor LR = %v, want 0.1", got)
	}
}

func TestWarmupSchedule(t *testing.T) {
	s := WarmupSchedule{
		Warm: 0.01, WarmEpochs: 2,
		Inner: StepSchedule{Base: 0.1, Milestones: []int{100}, Factor: 0.1},
	}
	if got := s.LR(0); got != 0.01 {
		t.Errorf("warm LR(0) = %v, want 0.01", got)
	}
	if got := s.LR(1); got != 0.01 {
		t.Errorf("warm LR(1) = %v, want 0.01", got)
	}
	if got := s.LR(2); got != 0.1 {
		t.Errorf("post-warm LR(2) = %v, want 0.1", got)
	}
	if got := s.LR(150); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("post-milestone LR(150) = %v, want 0.01", got)
	}
}

func TestConstSchedule(t *testing.T) {
	if got := ConstSchedule(0.05).LR(123); got != 0.05 {
		t.Errorf("ConstSchedule LR = %v", got)
	}
}
