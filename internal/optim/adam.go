package optim

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Adam implements Kingma & Ba's optimizer. The paper trains APT with
// plain SGD to demonstrate the savings without optimizer tricks, but most
// of Table I's comparison methods (BNN, TTQ, DoReFa, TernGrad) used Adam
// originally; this implementation lets the harness reproduce them with
// their own optimizer and provides the SGD-vs-Adam ablation.
//
// Like SGD, Adam composes the full step first and then routes it through
// the parameter's precision path: fp32, quantized-no-master (Eq. 3
// truncation, APT mode) or fp32-master.
type Adam struct {
	lr      float64
	beta1   float64
	beta2   float64
	eps     float64
	t       int
	m       map[*nn.Param]*tensor.Tensor
	v       map[*nn.Param]*tensor.Tensor
	decayWD float64
}

// NewAdam constructs the optimizer with the canonical defaults when betas
// are zero: beta1 = 0.9, beta2 = 0.999, eps = 1e-8.
func NewAdam(lr, beta1, beta2, weightDecay float64) *Adam {
	if beta1 == 0 {
		beta1 = 0.9
	}
	if beta2 == 0 {
		beta2 = 0.999
	}
	return &Adam{
		lr: lr, beta1: beta1, beta2: beta2, eps: 1e-8,
		m:       make(map[*nn.Param]*tensor.Tensor),
		v:       make(map[*nn.Param]*tensor.Tensor),
		decayWD: weightDecay,
	}
}

// SetLR updates the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// LR returns the current learning rate.
func (a *Adam) LR() float64 { return a.lr }

// Step applies one Adam update to every parameter and zeroes gradients.
func (a *Adam) Step(params []*nn.Param) error {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for _, p := range params {
		m := a.m[p]
		v := a.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape()...)
			v = tensor.New(p.Value.Shape()...)
			a.m[p] = m
			a.v[p] = v
		}
		ref := p.Value
		if p.Master != nil {
			ref = p.Master
		}
		md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), ref.Data()
		b1, b2 := float32(a.beta1), float32(a.beta2)
		wdcy := float32(a.decayWD)

		step := tensor.New(p.Value.Shape()...)
		sd := step.Data()
		for i := range gd {
			g := gd[i] + wdcy*wd[i]
			md[i] = b1*md[i] + (1-b1)*g
			vd[i] = b2*vd[i] + (1-b2)*g*g
			mhat := float64(md[i]) / bc1
			vhat := float64(vd[i]) / bc2
			sd[i] = float32(a.lr * mhat / (math.Sqrt(vhat) + a.eps))
		}

		switch {
		case p.Q == nil || p.Q.FullPrecision():
			for i := range wd {
				wd[i] -= sd[i]
			}
			p.Underflowed = 0
		case p.Master != nil:
			for i := range wd {
				wd[i] -= sd[i]
			}
			if err := p.Value.CopyFrom(p.Master); err != nil {
				return fmt.Errorf("optim: adam %s: %w", p.Name, err)
			}
			p.Q.Quantize(p.Value)
			p.Underflowed = 0
		default:
			uf, err := p.Q.UpdateInPlace(p.Value, step)
			if err != nil {
				return fmt.Errorf("optim: adam %s: %w", p.Name, err)
			}
			p.Underflowed = uf
			p.Q.Refresh(p.Value)
		}
		p.ZeroGrad()
	}
	return nil
}
