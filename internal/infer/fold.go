package infer

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// stage is one fold-level unit of the float graph: a conv or linear with
// folded BN and an optional fused ReLU, a passthrough pooling/reshape
// layer, or a residual block of nested stages. It carries a float
// evaluator (the calibration pass, which also records the stage's output
// range) and the lowering rule.
type stage struct {
	label string

	// conv/linear payload (nil for passthrough and residual stages)
	weight *tensor.Tensor // conv: (outC, inC, KH, KW); linear: (out, in)
	bias   []float32
	geom   *tensor.ConvGeom // nil for linear
	relu   bool
	cap    float32 // clipped rectifier ceiling (ReLU6); 0 = unbounded

	// passthrough payload
	pass nn.Layer

	// residual payload
	res *resStage

	// outRange is the float range of this stage's output observed during
	// calibration.
	outRange [2]float32
}

// resStage is a folded residual block: two branch chains joined by a
// requantizing add (plus the block's output ReLU).
type resStage struct {
	main     []*stage
	shortcut []*stage // nil = identity shortcut
	relu     bool
}

// foldSequential walks a flat layer list, folding Conv→BN(→ReLU) and
// Linear(→ReLU) into stages, passing pooling/flatten through and
// recursing into residual blocks.
func foldSequential(layers []nn.Layer) ([]*stage, error) {
	flat, err := flatten(layers)
	if err != nil {
		return nil, err
	}
	var stages []*stage
	for i := 0; i < len(flat); i++ {
		switch l := flat[i].(type) {
		case *nn.Conv2D:
			st := &stage{label: l.Name()}
			g := l.Geom()
			st.geom = &g
			st.weight = l.Params()[0].Value.Clone()
			outC := st.weight.Dim(0)
			st.bias = make([]float32, outC)
			if ps := l.Params(); len(ps) > 1 {
				copy(st.bias, ps[1].Value.Data())
			}
			i += foldBNReLU(st, flat, i)
			stages = append(stages, st)
		case *nn.Linear:
			st := &stage{label: l.Name()}
			st.weight = l.Params()[0].Value.Clone()
			out := st.weight.Dim(0)
			st.bias = make([]float32, out)
			if ps := l.Params(); len(ps) > 1 {
				copy(st.bias, ps[1].Value.Data())
			}
			if i+1 < len(flat) {
				if r, ok := flat[i+1].(*nn.ReLU); ok {
					st.relu = true
					st.cap = r.Cap()
					i++
				}
			}
			stages = append(stages, st)
		case *nn.MaxPool2D, *nn.GlobalAvgPool, *nn.Flatten:
			stages = append(stages, &stage{label: l.Name(), pass: l})
		case *nn.Residual:
			st, err := foldResidual(l)
			if err != nil {
				return nil, err
			}
			stages = append(stages, st)
		case *nn.BatchNorm2D:
			return nil, fmt.Errorf("infer: batch-norm %q not preceded by a convolution", l.Name())
		case *nn.ReLU:
			return nil, fmt.Errorf("infer: bare activation %q cannot be fused", l.Name())
		default:
			return nil, fmt.Errorf("infer: unsupported layer %T (%s); integer lowering handles conv backbones with residual blocks", l, l.Name())
		}
	}
	return stages, nil
}

// foldResidual folds a residual block's branches recursively. Each branch
// lowers to its own stage chain; the block joins them with a requantizing
// integer add at lowering time.
func foldResidual(r *nn.Residual) (*stage, error) {
	main, err := foldSequential([]nn.Layer{r.Main()})
	if err != nil {
		return nil, fmt.Errorf("infer: residual %q main: %w", r.Name(), err)
	}
	if len(main) == 0 {
		return nil, fmt.Errorf("infer: residual %q has an empty main branch", r.Name())
	}
	res := &resStage{main: main, relu: r.WithReLU()}
	if sc := r.Shortcut(); sc != nil {
		short, err := foldSequential([]nn.Layer{sc})
		if err != nil {
			return nil, fmt.Errorf("infer: residual %q shortcut: %w", r.Name(), err)
		}
		if len(short) == 0 {
			return nil, fmt.Errorf("infer: residual %q has an empty shortcut branch", r.Name())
		}
		res.shortcut = short
	}
	return &stage{label: r.Name(), res: res}, nil
}

// foldBNReLU consumes a following BatchNorm2D and ReLU if present,
// folding them into st; it returns how many layers were consumed.
func foldBNReLU(st *stage, flat []nn.Layer, i int) int {
	consumed := 0
	if i+1 < len(flat) {
		if bn, ok := flat[i+1].(*nn.BatchNorm2D); ok {
			foldBN(st, bn)
			consumed++
		}
	}
	if i+consumed+1 < len(flat) {
		if r, ok := flat[i+consumed+1].(*nn.ReLU); ok {
			st.relu = true
			st.cap = r.Cap()
			consumed++
		}
	}
	return consumed
}

// foldBN rescales st's weights and bias by the batch-norm affine:
// w' = w·γ/σ, b' = (b − μ)·γ/σ + β, using the BN's running statistics.
func foldBN(st *stage, bn *nn.BatchNorm2D) {
	mean, variance := bn.RunningStats()
	ps := bn.Params()
	gamma := ps[0].Value.Data()
	beta := ps[1].Value.Data()
	outC := st.weight.Dim(0)
	per := st.weight.Len() / outC
	wd := st.weight.Data()
	for c := 0; c < outC; c++ {
		std := float32(math.Sqrt(variance[c] + 1e-5))
		scale := gamma[c] / std
		for j := 0; j < per; j++ {
			wd[c*per+j] *= scale
		}
		st.bias[c] = (st.bias[c]-float32(mean[c]))*scale + beta[c]
	}
}

// flatten expands Sequential containers into a flat list; Residual blocks
// pass through intact (foldSequential recurses into their branches).
func flatten(layers []nn.Layer) ([]nn.Layer, error) {
	var out []nn.Layer
	for _, l := range layers {
		switch v := l.(type) {
		case *nn.Sequential:
			inner, err := flatten(v.Layers())
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		default:
			out = append(out, l)
		}
	}
	return out, nil
}

// calibrate evaluates the stage on a float tensor, recording this stage's
// (and, for residual blocks, every inner stage's) output range.
func (st *stage) calibrate(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := st.floatForward(x)
	if err != nil {
		return nil, err
	}
	min, max := out.MinMax()
	st.outRange = [2]float32{min, max}
	return out, nil
}

// calibrateChain runs calibrate through a stage list.
func calibrateChain(stages []*stage, x *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for _, st := range stages {
		x, err = st.calibrate(x)
		if err != nil {
			return nil, fmt.Errorf("calibrate %s: %w", st.label, err)
		}
	}
	return x, nil
}

// floatForward evaluates the stage on float tensors (calibration pass).
func (st *stage) floatForward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if st.pass != nil {
		return st.pass.Forward(x, false)
	}
	if st.res != nil {
		return st.res.floatForward(x)
	}
	if st.geom != nil {
		return st.convFloat(x)
	}
	return st.linearFloat(x)
}

func (r *resStage) floatForward(x *tensor.Tensor) (*tensor.Tensor, error) {
	my, err := calibrateChain(r.main, x)
	if err != nil {
		return nil, err
	}
	sy := x
	if r.shortcut != nil {
		sy, err = calibrateChain(r.shortcut, x)
		if err != nil {
			return nil, err
		}
	}
	out := my.Clone()
	if err := out.Add(sy); err != nil {
		return nil, err
	}
	if r.relu {
		d := out.Data()
		for i, v := range d {
			if v < 0 {
				d[i] = 0
			}
		}
	}
	return out, nil
}

func (st *stage) convFloat(x *tensor.Tensor) (*tensor.Tensor, error) {
	g := *st.geom
	n := x.Dim(0)
	oh, ow := g.OutHW()
	outC := st.weight.Dim(0)
	out := tensor.New(n, outC, oh, ow)
	for i := 0; i < n; i++ {
		img, err := tensor.FromSlice(
			x.Data()[i*g.InC*g.InH*g.InW:(i+1)*g.InC*g.InH*g.InW], g.InC, g.InH, g.InW)
		if err != nil {
			return nil, err
		}
		res, err := tensor.ConvDirect(img, st.weight, g)
		if err != nil {
			return nil, err
		}
		copy(out.Data()[i*outC*oh*ow:(i+1)*outC*oh*ow], res.Data())
	}
	st.addBiasAct(out, outC, oh*ow)
	return out, nil
}

func (st *stage) linearFloat(x *tensor.Tensor) (*tensor.Tensor, error) {
	out, err := tensor.MatMulTransB(x, st.weight)
	if err != nil {
		return nil, err
	}
	st.addBiasAct(out, st.weight.Dim(0), 1)
	return out, nil
}

func (st *stage) addBiasAct(out *tensor.Tensor, channels, plane int) {
	d := out.Data()
	n := out.Dim(0)
	for i := 0; i < n; i++ {
		for c := 0; c < channels; c++ {
			b := st.bias[c]
			row := d[(i*channels+c)*plane : (i*channels+c+1)*plane]
			for j := range row {
				row[j] += b
				if st.relu && row[j] < 0 {
					row[j] = 0
				}
				if st.cap > 0 && row[j] > st.cap {
					row[j] = st.cap // clipped rectifier (ReLU6)
				}
			}
		}
	}
}
