package infer

import "math"

// Fixed-point requantization. The float multiplier M = S_x·S_w/S_y that
// maps an int32 accumulator onto the output grid is lowered at compile
// time to a Q31 mantissa and a right shift:
//
//	M ≈ m0 · 2^(−rsh)   with m0 ∈ [2^30, 2^31)
//
// so the hot loop applies it with one 64-bit multiply and one rounding
// shift — integer arithmetic end to end, the deployment property the
// paper's §III quantization scheme (Jacob et al., CVPR 2018) was chosen
// for.

// accClamp bounds the accumulator before the Q31 multiply so the 64-bit
// product cannot overflow (2^31 · 2^31 = 2^62 < 2^63). Real accumulators
// are far smaller; the clamp only matters for degenerate channels whose
// folded bias exploded the accumulator domain, and those saturate at the
// uint8 boundary anyway.
const accClamp = int64(1) << 31

// lowerMultiplier decomposes a positive real multiplier into (m0, rsh).
// Non-positive multipliers lower to (0, 31): everything requantizes to
// zero.
func lowerMultiplier(m float64) (m0 int32, rsh int32) {
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		return 0, 31
	}
	frac, exp := math.Frexp(m) // m = frac·2^exp, frac ∈ [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // frac rounded up to 1.0
		q >>= 1
		exp++
	}
	rsh = 31 - int32(exp)
	if rsh < 1 { // m ≥ 2^30: saturate (never hit by real grids)
		return math.MaxInt32, 1
	}
	if rsh > 62 { // m < 2^-31: rounds to zero for every int32 acc
		return 0, 31
	}
	return int32(q), rsh
}

// requantize applies a lowered multiplier to an accumulator:
// round(acc · m0 · 2^(−rsh)), rounding half away from zero toward +∞.
func requantize(acc int64, m0 int32, rsh int32) int64 {
	if acc > accClamp {
		acc = accClamp
	} else if acc < -accClamp {
		acc = -accClamp
	}
	prod := acc * int64(m0)
	return (prod + 1<<(uint(rsh)-1)) >> uint(rsh)
}

// clampU8 saturates a requantized value (already offset by the output
// zero point) onto [lo, 255].
func clampU8(y int64, lo int32) uint8 {
	if y < int64(lo) {
		y = int64(lo)
	}
	if y > 255 {
		y = 255
	}
	return uint8(y)
}
