package infer

import "math"

// Fixed-point requantization. The float multiplier M = S_x·S_w/S_y that
// maps an int32 accumulator onto the output grid is lowered at compile
// time to a Q31 mantissa and a right shift:
//
//	M ≈ m0 · 2^(−rsh)   with m0 ∈ [2^30, 2^31)
//
// so the hot loop applies it with one 64-bit multiply and one rounding
// shift — integer arithmetic end to end, the deployment property the
// paper's §III quantization scheme (Jacob et al., CVPR 2018) was chosen
// for.

// accMax/accMin saturate the accumulator to the int32 range before the
// Q31 multiply so the 64-bit product cannot overflow (2^31·2^31 = 2^62 <
// 2^63). The bounds are exactly int32 saturation — the semantics the
// vector requant kernels get for free from their hardware narrowing
// (SQXTN on NEON, compare/blend on AVX2) — so the scalar path here, the
// portable tensor kernels and the assembly are bit-identical everywhere.
// Real accumulators are far smaller; the clamp only matters for
// degenerate channels whose folded bias exploded the accumulator domain,
// and those saturate at the uint8 boundary anyway.
const (
	accMax = int64(math.MaxInt32)
	accMin = int64(math.MinInt32)
)

// lowerMultiplier decomposes a positive real multiplier into (m0, rsh).
// Non-positive multipliers lower to (0, 31): everything requantizes to
// zero.
func lowerMultiplier(m float64) (m0 int32, rsh int32) {
	if m <= 0 || math.IsNaN(m) || math.IsInf(m, 0) {
		return 0, 31
	}
	frac, exp := math.Frexp(m) // m = frac·2^exp, frac ∈ [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // frac rounded up to 1.0
		q >>= 1
		exp++
	}
	rsh = 31 - int32(exp)
	if rsh < 1 { // m ≥ 2^30: saturate (never hit by real grids)
		return math.MaxInt32, 1
	}
	if rsh > 62 { // m < 2^-31: rounds to zero for every int32 acc
		return 0, 31
	}
	return int32(q), rsh
}

// requantize applies a lowered multiplier to an accumulator:
// round(acc · m0 · 2^(−rsh)), rounding half toward +∞, with int32
// saturation on the way in and the way out. This is the scalar mirror of
// tensor.RequantQ31Rows/Transpose (the rounding contract is pinned by
// TestRequantizeRounding and the tensor package's bit-identity fuzz
// suite); the conv/linear epilogues run the vector form, while the
// residual join below applies it to values far inside both clamps.
func requantize(acc int64, m0 int32, rsh int32) int64 {
	if acc > accMax {
		acc = accMax
	} else if acc < accMin {
		acc = accMin
	}
	r := (acc*int64(m0) + 1<<(uint(rsh)-1)) >> uint(rsh)
	if r > accMax {
		r = accMax
	} else if r < accMin {
		r = accMin
	}
	return r
}

// clampU8 saturates a requantized value (already offset by the output
// zero point) onto [lo, 255].
func clampU8(y int64, lo int32) uint8 {
	if y < int64(lo) {
		y = int64(lo)
	}
	if y > 255 {
		y = 255
	}
	return uint8(y)
}
