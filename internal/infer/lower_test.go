package infer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestQuantizeWeightsSymProperties(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.New(256)
	w.FillNormal(rng, 0, 0.5)
	q, scale := quantizeWeightsSym(w)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	for i, v := range q {
		if v < -127 || v > 127 {
			t.Fatalf("q[%d] = %d outside int8 symmetric range", i, v)
		}
		recon := float64(scale) * float64(v)
		if math.Abs(recon-float64(w.Data()[i])) > float64(scale)/2+1e-6 {
			t.Fatalf("weight %d reconstruction error exceeds scale/2", i)
		}
	}
}

func TestQuantizeWeightsSymDegenerate(t *testing.T) {
	w := tensor.New(8) // all zero
	q, scale := quantizeWeightsSym(w)
	if scale <= 0 {
		t.Fatalf("degenerate scale = %v", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero weights did not quantize to zero")
		}
	}
}

func TestRequantClampsAndRounds(t *testing.T) {
	// acc*m + bias maps into the output grid with zero point.
	got := requant(100, 0.01, 0.5, 0.1, 10, false)
	// f = 1.0 + 0.5 = 1.5; y = round(1.5/0.1) + 10 = 25
	if got != 25 {
		t.Errorf("requant = %d, want 25", got)
	}
	// ReLU clamp applies before the grid mapping.
	if got := requant(-1000, 0.01, 0, 0.1, 10, true); got != 10 {
		t.Errorf("relu requant = %d, want zero point 10", got)
	}
	// Saturation at the uint8 bounds.
	if got := requant(1<<30, 1, 0, 0.1, 0, false); got != 255 {
		t.Errorf("overflow requant = %d, want 255", got)
	}
	if got := requant(-(1 << 30), 1, 0, 0.1, 0, false); got != 0 {
		t.Errorf("underflow requant = %d, want 0", got)
	}
}

// Property: the integer linear stage matches a float matmul within the
// combined quantization error budget for random small problems.
func TestIntegerLinearMatchesFloatProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(3)
		inF := 2 + rng.Intn(8)
		outF := 1 + rng.Intn(4)
		w := tensor.New(outF, inF)
		w.FillNormal(rng, 0, 0.5)
		x := tensor.New(n, inF)
		x.FillNormal(rng, 0, 1)
		bias := make([]float32, outF)
		for i := range bias {
			bias[i] = float32(rng.Norm()) * 0.1
		}
		// Float reference.
		want, err := tensor.MatMulTransB(x, w)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for o := 0; o < outF; o++ {
				want.Set(want.At(i, o)+bias[o], i, o)
			}
		}
		wmin, wmax := want.MinMax()

		qw, wscale := quantizeWeightsSym(w)
		q := &qaffine{
			label: "lin", weights: qw, wscale: wscale, bias: bias,
			outC: outF, inF: inF, outMin: wmin, outMax: wmax,
		}
		xmin, xmax := x.MinMax()
		qx := quantize(x, xmin, xmax)
		out, err := q.forward(qx)
		if err != nil {
			return false
		}
		back := out.dequantize()
		// Error budget: input quantum propagated through the weights plus
		// one output quantum.
		inBudget := float64(qx.scale) * float64(inF) * 0.6
		outBudget := float64(out.scale)
		for i := range back.Data() {
			if math.Abs(float64(back.Data()[i]-want.Data()[i])) > inBudget+2*outBudget+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
