package infer

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestQuantizeWeightsSymProperties(t *testing.T) {
	rng := tensor.NewRNG(1)
	w := tensor.New(256)
	w.FillNormal(rng, 0, 0.5)
	q, scale := quantizeWeightsSym(w)
	if scale <= 0 {
		t.Fatalf("scale = %v", scale)
	}
	for i, v := range q {
		if v < -127 || v > 127 {
			t.Fatalf("q[%d] = %d outside int8 symmetric range", i, v)
		}
		recon := float64(scale) * float64(v)
		if math.Abs(recon-float64(w.Data()[i])) > float64(scale)/2+1e-6 {
			t.Fatalf("weight %d reconstruction error exceeds scale/2", i)
		}
	}
}

func TestQuantizeWeightsSymDegenerate(t *testing.T) {
	w := tensor.New(8) // all zero
	q, scale := quantizeWeightsSym(w)
	if scale <= 0 {
		t.Fatalf("degenerate scale = %v", scale)
	}
	for _, v := range q {
		if v != 0 {
			t.Fatal("zero weights did not quantize to zero")
		}
	}
}

// Per-channel scales must reconstruct a tensor with heterogeneous channel
// magnitudes strictly tighter than the single per-tensor scale: the small
// channels get their own fine grid instead of the widest channel's.
func TestQuantizeWeightsPerChannelTighter(t *testing.T) {
	rng := tensor.NewRNG(3)
	const outC, per = 8, 32
	w := tensor.New(outC, per)
	w.FillNormal(rng, 0, 1)
	wd := w.Data()
	for c := 0; c < outC; c++ {
		// Channel magnitudes spanning two orders of magnitude.
		mag := float32(math.Pow(10, float64(c)/3.5-1))
		for j := 0; j < per; j++ {
			wd[c*per+j] *= mag
		}
	}
	qt, st := quantizeWeightsSym(w)
	qc, sc := quantizeWeightsPerChannel(w)
	if len(sc) != outC {
		t.Fatalf("per-channel scales = %d, want %d", len(sc), outC)
	}
	errAt := func(q []int8, scale float32, i int) float64 {
		return math.Abs(float64(scale)*float64(q[i]) - float64(wd[i]))
	}
	var sumT, sumC float64
	for c := 0; c < outC; c++ {
		for j := 0; j < per; j++ {
			i := c*per + j
			sumT += errAt(qt, st, i)
			sumC += errAt(qc, sc[c], i)
		}
	}
	if sumC >= sumT/2 {
		t.Errorf("per-channel reconstruction error %v not well below per-tensor %v", sumC, sumT)
	}
}

// A range observed entirely below zero must still produce a grid whose
// zero point fits in uint8 and encodes float 0 exactly (it becomes the
// im2col padding byte).
func TestGridForNegativeOnlyRange(t *testing.T) {
	for _, r := range [][2]float32{{-1.0, -0.1}, {-3, -2.5}, {0.2, 0.9}, {-0.5, 0.5}} {
		g := gridFor(r[0], r[1])
		if g.zero < 0 || g.zero > 255 {
			t.Errorf("gridFor(%v) zero point %d outside uint8", r, g.zero)
		}
		if q := g.quantize(0); int32(q) != g.zero {
			t.Errorf("gridFor(%v): quantize(0) = %d, want zero point %d", r, q, g.zero)
		}
	}
}

// lowerMultiplier must satisfy requantize(acc, m0, rsh) ≈ round(acc·m)
// across magnitudes spanning the multipliers real grids produce (the
// expectation saturates to int32 like requantize itself: the output
// clamp is part of the pinned kernel semantics).
func TestLowerMultiplierRoundTrip(t *testing.T) {
	ms := []float64{1e-6, 3.7e-4, 0.0021, 0.04, 0.5, 0.9999, 1.0, 3.25, 117.0}
	accs := []int64{0, 1, -1, 7, -13, 100, -255, 1 << 15, -(1 << 20), 1 << 28}
	for _, m := range ms {
		m0, rsh := lowerMultiplier(m)
		for _, a := range accs {
			got := requantize(a, m0, rsh)
			want := float64(a) * m
			if want > float64(accMax) {
				want = float64(accMax)
			} else if want < float64(accMin) {
				want = float64(accMin)
			}
			// One unit of slack plus the Q31 mantissa's relative error.
			tol := 1.0 + math.Abs(want)*1e-8
			if math.Abs(float64(got)-want) > tol {
				t.Errorf("m=%v acc=%d: requantize = %d, want ~%v", m, a, got, want)
			}
		}
	}
}

func TestLowerMultiplierDegenerate(t *testing.T) {
	if m0, _ := lowerMultiplier(0); m0 != 0 {
		t.Errorf("m=0 lowered to m0=%d", m0)
	}
	if m0, _ := lowerMultiplier(-1); m0 != 0 {
		t.Errorf("m<0 lowered to m0=%d", m0)
	}
	if m0, _ := lowerMultiplier(math.NaN()); m0 != 0 {
		t.Errorf("NaN lowered to m0=%d", m0)
	}
	// Absurdly small multipliers requantize everything to zero.
	m0, rsh := lowerMultiplier(1e-12)
	if got := requantize(1<<28, m0, rsh); got != 0 {
		t.Errorf("tiny multiplier requantized %d", got)
	}
}

func TestRequantizeSaturates(t *testing.T) {
	m0, rsh := lowerMultiplier(1.0)
	// Accumulators beyond ±2^31 clamp instead of overflowing the product.
	big := int64(1) << 40
	if got := requantize(big, m0, rsh); got < (1<<31)-2 || got > (1<<31)+1 {
		t.Errorf("overflowing acc requantized to %d", got)
	}
	if got := requantize(-big, m0, rsh); got > -(1<<31)+2 || got < -(1<<31)-1 {
		t.Errorf("underflowing acc requantized to %d", got)
	}
	if got := clampU8(300, 0); got != 255 {
		t.Errorf("clampU8(300) = %d", got)
	}
	if got := clampU8(-7, 0); got != 0 {
		t.Errorf("clampU8(-7) = %d", got)
	}
	if got := clampU8(3, 12); got != 12 {
		t.Errorf("clampU8 below ReLU floor = %d, want 12", got)
	}
}

// Property: a lowered linear stage matches the float affine map within
// the combined quantization error budget for random small problems.
func TestIntegerLinearMatchesFloatProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(3)
		inF := 2 + rng.Intn(8)
		outF := 1 + rng.Intn(4)
		w := tensor.New(outF, inF)
		w.FillNormal(rng, 0, 0.5)
		x := tensor.New(n, inF)
		x.FillNormal(rng, 0, 1)
		bias := make([]float32, outF)
		for i := range bias {
			bias[i] = float32(rng.Norm()) * 0.1
		}
		// Float reference.
		want, err := tensor.MatMulTransB(x, w)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			for o := 0; o < outF; o++ {
				want.Set(want.At(i, o)+bias[o], i, o)
			}
		}
		wmin, wmax := want.MinMax()

		st := &stage{label: "lin", weight: w, bias: bias, outRange: [2]float32{wmin, wmax}}
		xmin, xmax := x.MinMax()
		in := gridFor(xmin, xmax)
		id := 0
		ql, outG, err := st.lower(in, Config{}, func() int { i := id; id++; return i })
		if err != nil {
			return false
		}
		s := newScratch(id)
		qx := &qtensor{}
		quantizeInto(qx, x, in)
		out, err := ql.forward(qx, s)
		if err != nil {
			return false
		}
		back := out.dequantize()
		// Error budget: input quantum propagated through the weights plus
		// output quanta.
		inBudget := float64(in.scale) * float64(inF) * 0.6
		outBudget := float64(outG.scale)
		for i := range back.Data() {
			if math.Abs(float64(back.Data()[i]-want.Data()[i])) > inBudget+2*outBudget+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
