package infer

import (
	"strings"
	"testing"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// compileSmall compiles the shared SmallCNN fixture with the given
// lowering override.
func compileSmall(t *testing.T, force string) (*Engine, *tensor.Tensor) {
	t.Helper()
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib, ForceConvLowering: force})
	if err != nil {
		t.Fatalf("Compile(force=%q): %v", force, err)
	}
	x, _ := testBatch(t, te, 24)
	return eng, x
}

// TestConvLoweringPerGeometry pins the compile-time lowering rule on the
// CIFAR-shape backbone: every stride-1 conv goes implicit, every strided
// conv stays materialized, and the decisions are reported in forward
// order with their reasons. This is also the CI smoke assertion that the
// implicit path cannot silently regress to materialized.
func TestConvLoweringPerGeometry(t *testing.T) {
	eng, _ := compileSmall(t, "")
	lows := eng.ConvLowerings()
	if len(lows) == 0 {
		t.Fatal("no conv lowerings reported")
	}
	implicit, materialized := 0, 0
	for _, l := range lows {
		switch l.Mode {
		case "implicit":
			implicit++
			if !strings.Contains(l.Why, "stride 1") {
				t.Errorf("%s: implicit reason %q does not name the stride rule", l.Layer, l.Why)
			}
		case "materialized":
			materialized++
			if !strings.Contains(l.Why, "stride") {
				t.Errorf("%s: materialized reason %q does not name the stride rule", l.Layer, l.Why)
			}
		default:
			t.Errorf("%s: unknown lowering mode %q", l.Layer, l.Mode)
		}
		if l.Why == "" {
			t.Errorf("%s: empty lowering reason", l.Layer)
		}
	}
	// SmallCNN interleaves stride-1 and stride-2 conv blocks: both
	// lowerings must be live or the per-geometry rule has regressed.
	if implicit == 0 {
		t.Fatal("CIFAR-shape model compiled zero layers onto the implicit path")
	}
	if materialized == 0 {
		t.Fatal("CIFAR-shape model compiled zero layers onto the materialized path")
	}
}

// TestForceConvLoweringBitIdentical checks the ablation knob and the
// core tentpole contract in one move: the same trained model compiled
// with default, all-implicit and all-materialized lowerings must produce
// bit-identical logits on the same batch.
func TestForceConvLoweringBitIdentical(t *testing.T) {
	engDef, x := compileSmall(t, "")
	engImp, _ := compileSmall(t, "implicit")
	engMat, _ := compileSmall(t, "materialized")

	for _, l := range engImp.ConvLowerings() {
		if l.Mode != "implicit" {
			t.Fatalf("force implicit: %s lowered %s", l.Layer, l.Mode)
		}
	}
	for _, l := range engMat.ConvLowerings() {
		if l.Mode != "materialized" {
			t.Fatalf("force materialized: %s lowered %s", l.Layer, l.Mode)
		}
	}

	ref, err := engDef.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for name, eng := range map[string]*Engine{"implicit": engImp, "materialized": engMat} {
		got, err := eng.Forward(x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, v := range got.Data() {
			if v != ref.Data()[i] {
				t.Fatalf("force %s: logit %d = %v, default %v", name, i, v, ref.Data()[i])
			}
		}
	}

	if _, err := Compile(smallModel, Config{Calibration: smallCalib, ForceConvLowering: "bogus"}); err == nil {
		t.Error("bogus ForceConvLowering did not error")
	}
}

// strideFirstModel builds a tiny net whose FIRST conv is strided, so the
// default lowering materializes it and the engine fuses the input
// quantize into its packer.
func strideFirstModel(t *testing.T) *models.Model {
	t.Helper()
	rng := tensor.NewRNG(17)
	conv1, err := nn.NewConv2D(nn.Conv2DConfig{
		Name: "c1",
		In:   tensor.ConvGeom{InC: 3, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 2, Pad: 1},
		OutC: 8, Bias: true, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	conv2, err := nn.NewConv2D(nn.Conv2DConfig{
		Name: "c2",
		In:   tensor.ConvGeom{InC: 8, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		OutC: 8, Bias: true, RNG: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := nn.NewLinear("fc", 8*6*6, 4, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewSequential("stridefirst",
		conv1, nn.NewReLU("r1"), conv2, nn.NewReLU("r2"), nn.NewFlatten("fl"), fc)
	return &models.Model{Name: "stridefirst", Net: net, InC: 3, InH: 12, InW: 12, Class: 4}
}

// TestFusedInputQuantizeBitIdentical: a strided first conv lowers
// materialized and fuses the input quantize into its packer; the fused
// engine must match, bit for bit, an engine whose first conv is forced
// implicit (which stages the quantized input the classic way).
func TestFusedInputQuantizeBitIdentical(t *testing.T) {
	m := strideFirstModel(t)
	rng := tensor.NewRNG(99)
	calib := tensor.New(8, 3, 12, 12)
	calib.FillNormal(rng, 0, 1)
	x := tensor.New(5, 3, 12, 12)
	x.FillNormal(rng, 0, 1)

	fused, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatal(err)
	}
	if fused.fused == nil {
		t.Fatal("strided first conv did not fuse the input quantize")
	}
	if why := fused.ConvLowerings()[0].Why; !strings.Contains(why, "fused") {
		t.Errorf("fused conv reason %q does not mention fusion", why)
	}
	staged, err := Compile(m, Config{Calibration: calib, ForceConvLowering: "implicit"})
	if err != nil {
		t.Fatal(err)
	}
	if staged.fused != nil {
		t.Fatal("implicit first conv must not fuse the input quantize")
	}

	a, err := fused.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	b, err := staged.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			t.Fatalf("fused logit %d = %v, staged %v", i, v, b.Data()[i])
		}
	}

	// The fused path must also hold across worker counts.
	prev := tensor.SetMaxWorkers(3)
	c, err := fused.Forward(x)
	tensor.SetMaxWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range a.Data() {
		if v != c.Data()[i] {
			t.Fatalf("fused logit %d = %v under 3 workers, serial %v", i, v, c.Data()[i])
		}
	}
}

// TestForwardProfileMatchesForward pins that profiling changes no output
// bit and yields a sane stage split (stages sum to at most the total,
// every stage non-negative, conv stages actually attributed).
func TestForwardProfileMatchesForward(t *testing.T) {
	eng, x := compileSmall(t, "")
	ref, err := eng.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, prof, err := eng.ForwardProfile(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got.Data() {
		if v != ref.Data()[i] {
			t.Fatalf("profiled logit %d = %v, plain %v", i, v, ref.Data()[i])
		}
	}
	if prof.Total <= 0 {
		t.Fatalf("profile total %v, want > 0", prof.Total)
	}
	if prof.Im2col < 0 || prof.GEMM < 0 || prof.Requant < 0 || prof.Other < 0 {
		t.Fatalf("negative stage in profile %+v", prof)
	}
	if sum := prof.Im2col + prof.GEMM + prof.Requant + prof.Other; sum > prof.Total+prof.Total/8 {
		t.Fatalf("stage sum %v exceeds total %v", sum, prof.Total)
	}
	if prof.GEMM == 0 {
		t.Fatalf("profile attributed no GEMM time: %+v", prof)
	}
}
