package infer

import (
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// benchEngine compiles a lightly-trained SmallCNN at the deploy example's
// 16×16 geometry (matching the seed interpreter baseline recorded in
// PERF.md) and packs a 64-sample batch.
func benchEngine(b *testing.B) (*Engine, *models.Model, *tensor.Tensor) {
	b.Helper()
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 320, Test: 160, Size: 16, Seed: 21, Noise: 0.3,
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := train.Run(train.Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 1,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: 2,
	}); err != nil {
		b.Fatal(err)
	}
	calib := tensor.New(32, 3, 16, 16)
	for i := 0; i < 32; i++ {
		img, _ := tr.Sample(i)
		copy(calib.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
	}
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		b.Fatal(err)
	}
	x := tensor.New(64, 3, 16, 16)
	for i := 0; i < 64; i++ {
		img, _ := te.Sample(i % te.Len())
		copy(x.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
	}
	return eng, m, x
}

func BenchmarkEngineForward64(b *testing.B) {
	eng, _, x := benchEngine(b)
	if _, err := eng.Forward(x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineForward1(b *testing.B) {
	eng, _, x := benchEngine(b)
	one, err := tensor.FromSlice(x.Data()[:3*16*16], 1, 3, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Forward(one); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Forward(one); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFloatForward64(b *testing.B) {
	_, m, x := benchEngine(b)
	if _, err := m.Net.Forward(x, false); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}
