package infer

import (
	"math"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// trainedModel trains a backbone to usable accuracy so integer-vs-float
// agreement is measured on meaningful predictions.
func trainedModel(t *testing.T, build func(models.Config) (*models.Model, error), epochs int) (*models.Model, data.Dataset, *tensor.Tensor) {
	t.Helper()
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 320, Test: 160, Size: 12, Seed: 21, Noise: 0.3,
	})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	m, err := build(models.Config{Classes: 4, InputSize: 12, Seed: 6})
	if err != nil {
		t.Fatalf("build model: %v", err)
	}
	if _, err := train.Run(train.Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: epochs,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: 2,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	// Calibration batch from the training split.
	calib, _, err := data.PackBatch(tr, 32)
	if err != nil {
		t.Fatalf("PackBatch: %v", err)
	}
	return m, te, calib
}

// The SmallCNN fixture is shared across tests (training it once keeps the
// race-detector runs fast); tests must not mutate the model, dataset or
// calibration batch.
var (
	smallOnce  sync.Once
	smallModel *models.Model
	smallTest  data.Dataset
	smallCalib *tensor.Tensor
)

func trainedSmallCNN(t *testing.T) (*models.Model, data.Dataset, *tensor.Tensor) {
	t.Helper()
	smallOnce.Do(func() {
		smallModel, smallTest, smallCalib = trainedModel(t, models.SmallCNN, 4)
	})
	if smallModel == nil {
		t.Fatal("shared SmallCNN fixture failed to train")
	}
	return smallModel, smallTest, smallCalib
}

// testBatch packs n test samples and their labels.
func testBatch(t *testing.T, te data.Dataset, n int) (*tensor.Tensor, []int) {
	t.Helper()
	x, labels, err := data.PackBatch(te, n)
	if err != nil {
		t.Fatalf("PackBatch: %v", err)
	}
	return x, labels
}

// agreement returns the engine-vs-float agreement rate and both accuracy
// counts.
func agreement(t *testing.T, m *models.Model, eng *Engine, x *tensor.Tensor, labels []int) (agree float64, floatCorrect, intCorrect int) {
	t.Helper()
	floatLogits, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("float forward: %v", err)
	}
	intPred, err := eng.Classify(x)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	n := len(labels)
	agreeN := 0
	for i := 0; i < n; i++ {
		fp := floatLogits.ArgMaxRow(i)
		if fp == intPred[i] {
			agreeN++
		}
		if fp == labels[i] {
			floatCorrect++
		}
		if intPred[i] == labels[i] {
			intCorrect++
		}
	}
	return float64(agreeN) / float64(n), floatCorrect, intCorrect
}

func TestCompileRequiresCalibration(t *testing.T) {
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 6})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if _, err := Compile(m, Config{}); err == nil {
		t.Error("missing calibration did not error")
	}
}

// TestNaNInputQuantizesDeterministically pins the serving-tier contract
// that a hostile payload cannot make the engine nondeterministic:
// uint8(NaN) is platform-defined in Go, so the input quantizer pins NaN
// to the grid's zero point — a NaN sample must classify bit-identically
// to the same sample with the NaN replaced by 0.0, and ±Inf must clamp
// to the grid edges, on every architecture.
func TestNaNInputQuantizesDeterministically(t *testing.T) {
	g := gridFor(-2, 2)
	if got, want := g.quantize(float32(math.NaN())), g.quantize(0); got != want {
		t.Errorf("quantize(NaN) = %d, want zero point %d", got, want)
	}
	if got := g.quantize(float32(math.Inf(1))); got != 255 {
		t.Errorf("quantize(+Inf) = %d, want 255", got)
	}
	if got := g.quantize(float32(math.Inf(-1))); got != 0 {
		t.Errorf("quantize(-Inf) = %d, want 0", got)
	}

	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	x, _ := testBatch(t, te, 4)
	poisoned := tensor.MustFromSlice(append([]float32(nil), x.Data()...), x.Shape()...)
	clean := tensor.MustFromSlice(append([]float32(nil), x.Data()...), x.Shape()...)
	poisoned.Data()[5] = float32(math.NaN())
	clean.Data()[5] = 0
	got, err := eng.Forward(poisoned)
	if err != nil {
		t.Fatalf("Forward(poisoned): %v", err)
	}
	want, err := eng.Forward(clean)
	if err != nil {
		t.Fatalf("Forward(clean): %v", err)
	}
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("logit %d: NaN batch %v != zeroed batch %v", i, v, want.Data()[i])
		}
	}
}

func TestIntegerEngineMatchesFloatModel(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	x, labels := testBatch(t, te, 96)
	agree, floatCorrect, intCorrect := agreement(t, m, eng, x, labels)
	if agree < 0.85 {
		t.Errorf("int8 engine agrees with float on %.0f%% of predictions, want >= 85%%", 100*agree)
	}
	if float64(intCorrect) < 0.8*float64(floatCorrect) {
		t.Errorf("int8 accuracy %d/%d collapsed vs float %d/%d", intCorrect, len(labels), floatCorrect, len(labels))
	}
}

// The engine must agree with the float model on every supported backbone,
// including the residual topology the seed rejected at compile time.
func TestEngineMatchesFloatAcrossBackbones(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping multi-backbone training sweep")
	}
	backbones := []struct {
		name   string
		build  func(models.Config) (*models.Model, error)
		epochs int
		agree  float64
	}{
		{"cifarnet", func(cfg models.Config) (*models.Model, error) {
			cfg.Width = 0.5
			return models.CifarNet(cfg)
		}, 3, 0.85},
		{"vggsmall", func(cfg models.Config) (*models.Model, error) {
			cfg.Width = 0.25
			return models.VGGSmall(cfg)
		}, 3, 0.85},
		{"resnet20", func(cfg models.Config) (*models.Model, error) {
			cfg.Width = 0.25
			return models.ResNet20(cfg)
		}, 3, 0.75}, // ~20 quantized stages compound more grid error
	}
	for _, bb := range backbones {
		bb := bb
		t.Run(bb.name, func(t *testing.T) {
			m, te, calib := trainedModel(t, bb.build, bb.epochs)
			eng, err := Compile(m, Config{Calibration: calib})
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			x, labels := testBatch(t, te, 96)
			agree, floatCorrect, intCorrect := agreement(t, m, eng, x, labels)
			if agree < bb.agree {
				t.Errorf("agreement %.0f%%, want >= %.0f%%", 100*agree, 100*bb.agree)
			}
			if float64(intCorrect) < 0.75*float64(floatCorrect) {
				t.Errorf("int8 accuracy %d collapsed vs float %d", intCorrect, floatCorrect)
			}
		})
	}
}

// Per-output-channel weight scales must track the float model at least as
// tightly as one per-tensor scale — that is the point of carrying a scale
// per filter.
func TestPerChannelScalesTightenAgreement(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	perChan, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile per-channel: %v", err)
	}
	perTensor, err := Compile(m, Config{Calibration: calib, PerTensorWeights: true})
	if err != nil {
		t.Fatalf("Compile per-tensor: %v", err)
	}
	x, _ := testBatch(t, te, 96)
	want, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("float forward: %v", err)
	}
	meanErr := func(e *Engine) float64 {
		got, err := e.Forward(x)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		var sum float64
		for i := range got.Data() {
			sum += math.Abs(float64(got.Data()[i] - want.Data()[i]))
		}
		return sum / float64(got.Len())
	}
	ec, et := meanErr(perChan), meanErr(perTensor)
	if ec >= et {
		t.Errorf("per-channel mean logit error %v not below per-tensor %v", ec, et)
	}
}

// Batched inference must be bit-identical to running each sample alone:
// the micro-batching server depends on batch size never changing results.
func TestBatchedForwardMatchesPerSample(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const n = 16
	x, _ := testBatch(t, te, n)
	batched, err := eng.Forward(x)
	if err != nil {
		t.Fatalf("batched Forward: %v", err)
	}
	per := x.Len() / n
	classes := batched.Dim(1)
	for i := 0; i < n; i++ {
		one, err := tensor.FromSlice(x.Data()[i*per:(i+1)*per], 1, 3, 12, 12)
		if err != nil {
			t.Fatal(err)
		}
		single, err := eng.Forward(one)
		if err != nil {
			t.Fatalf("single Forward: %v", err)
		}
		for c := 0; c < classes; c++ {
			if single.At(0, c) != batched.At(i, c) {
				t.Fatalf("sample %d class %d: single %v != batched %v", i, c, single.At(0, c), batched.At(i, c))
			}
		}
	}
}

// Concurrent Forward calls on one engine must be race-clean (run with
// -race) and bit-identical to sequential execution.
func TestConcurrentForwardMatchesSequential(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const batches, bs = 8, 8
	inputs := make([]*tensor.Tensor, batches)
	want := make([]*tensor.Tensor, batches)
	for b := 0; b < batches; b++ {
		x := tensor.New(bs, 3, 12, 12)
		for i := 0; i < bs; i++ {
			img, _ := te.Sample((b*bs + i) % te.Len())
			copy(x.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
		}
		inputs[b] = x
		out, err := eng.Forward(x)
		if err != nil {
			t.Fatalf("sequential Forward: %v", err)
		}
		want[b] = out
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*batches)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				out, err := eng.Forward(inputs[b])
				if err != nil {
					errs <- err
					return
				}
				for i := range out.Data() {
					if out.Data()[i] != want[b].Data()[i] {
						t.Errorf("batch %d diverged at %d under concurrency", b, i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Forward: %v", err)
	}
}

// Steady-state Forward must stay within the alloc budget: the output
// tensor plus nothing else (scratch is leased, workers pinned to 1 so no
// ParallelFor jobs are published).
func TestEngineForwardSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	m, _, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	x := tensor.New(64, 3, 12, 12)
	rng := tensor.NewRNG(17)
	x.FillNormal(rng, 0, 1)
	// Warm up the scratch arenas at this batch size.
	if _, err := eng.Forward(x); err != nil {
		t.Fatalf("warm-up Forward: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := eng.Forward(x); err != nil {
			t.Fatalf("Forward: %v", err)
		}
	})
	if allocs > 8 {
		t.Errorf("Engine.Forward allocates %v objects/op steady-state, want <= 8", allocs)
	}
}

// TestEngineForwardSIMDPortableIdentical pins the dispatch contract: the
// assembly integer kernels and the portable Go fallback produce
// bit-identical engine outputs (integer arithmetic, exact kernels — the
// saturating fast path is only ever selected when it cannot saturate).
// On hosts without SIMD kernels both runs take the portable path and the
// test degenerates to a determinism check.
func TestEngineForwardSIMDPortableIdentical(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	x, _ := testBatch(t, te, 32)
	prev := tensor.SetSIMD(true)
	defer tensor.SetSIMD(prev)
	simd, err := eng.Forward(x)
	if err != nil {
		t.Fatalf("Forward (simd): %v", err)
	}
	tensor.SetSIMD(false)
	portable, err := eng.Forward(x)
	if err != nil {
		t.Fatalf("Forward (portable): %v", err)
	}
	for i, v := range simd.Data() {
		if v != portable.Data()[i] {
			t.Fatalf("logit[%d]: simd %v != portable %v", i, v, portable.Data()[i])
		}
	}
}

// ReLU6 must fold as a clipped rectifier: the calibration graph (and
// therefore the lowered grids) must apply the upper clamp, not treat the
// activation as an unbounded ReLU.
func TestReLU6FoldsWithCap(t *testing.T) {
	rng := tensor.NewRNG(31)
	g := tensor.ConvGeom{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv2D(nn.Conv2DConfig{Name: "c", In: g, OutC: 4, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	bn, err := nn.NewBatchNorm2D("bn", 4)
	if err != nil {
		t.Fatal(err)
	}
	fc, err := nn.NewLinear("fc", 4, 3, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.NewSequential("relu6net", conv, bn, nn.NewReLU6("r6"), nn.NewGlobalAvgPool("gap"), fc)
	m := &models.Model{Name: "relu6net", Net: net, InC: 2, InH: 6, InW: 6, Class: 3}

	// Inputs scaled so pre-activations comfortably exceed the cap.
	x := tensor.New(8, 2, 6, 6)
	x.FillNormal(rng, 0, 40)
	want, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	stages, err := foldSequential(m.Layers())
	if err != nil {
		t.Fatalf("foldSequential: %v", err)
	}
	got := x
	for _, st := range stages {
		if got, err = st.floatForward(got); err != nil {
			t.Fatalf("stage %s: %v", st.label, err)
		}
	}
	for i := range want.Data() {
		if d := math.Abs(float64(got.Data()[i] - want.Data()[i])); d > 1e-3 {
			t.Fatalf("folded ReLU6 graph deviates at %d by %v (cap dropped?)", i, d)
		}
	}
	// The compiled engine must agree with the float model bit-for-class.
	eng, err := Compile(m, Config{Calibration: x})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	logits, err := eng.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	agreeN := 0
	for i := 0; i < 8; i++ {
		if logits.ArgMaxRow(i) == want.ArgMaxRow(i) {
			agreeN++
		}
	}
	if agreeN < 6 {
		t.Errorf("relu6 engine agrees on %d/8 predictions", agreeN)
	}
}

func TestBNFoldingPreservesFunction(t *testing.T) {
	// The folded float stages must compute the same function as the
	// original model in eval mode (folding is exact up to fp rounding).
	m, _, calib := trainedSmallCNN(t)
	stages, err := foldSequential(m.Layers())
	if err != nil {
		t.Fatalf("foldSequential: %v", err)
	}
	want, err := m.Net.Forward(calib, false)
	if err != nil {
		t.Fatalf("model forward: %v", err)
	}
	got := calib
	for _, st := range stages {
		got, err = st.floatForward(got)
		if err != nil {
			t.Fatalf("stage %s: %v", st.label, err)
		}
	}
	if !got.SameShape(want) {
		t.Fatalf("folded output shape %v != %v", got.Shape(), want.Shape())
	}
	var maxDiff float64
	for i := range got.Data() {
		d := math.Abs(float64(got.Data()[i] - want.Data()[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("folded graph deviates from model by %v", maxDiff)
	}
}

func TestEngineSizeIsInt8(t *testing.T) {
	m, _, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var weightElems int
	for _, p := range m.Params() {
		if p.Value.Rank() > 1 {
			weightElems += p.Value.Len()
		}
	}
	size := eng.SizeBytes()
	// int8 weights plus a few int32 biases: well under the fp32 total and
	// at least one byte per weight element.
	if size < weightElems || size > 2*weightElems {
		t.Errorf("engine size %dB for %d weights; want ~1 byte/weight (+biases)", size, weightElems)
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.New(100)
	x.FillNormal(rng, 0, 1)
	min, max := x.MinMax()
	q := quantizeNew(x, min, max)
	back := q.dequantize()
	scale := float64(q.g.scale)
	for i := range x.Data() {
		if math.Abs(float64(x.Data()[i]-back.Data()[i])) > scale {
			t.Fatalf("round-trip error at %d exceeds one quantum", i)
		}
	}
	if q.len() != 100 {
		t.Errorf("len = %d", q.len())
	}
}

func TestMaxPoolCommutesWithQuantization(t *testing.T) {
	mp, err := nn.NewMaxPool2D("mp", 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	rng := tensor.NewRNG(10)
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(rng, 0, 1)
	min, max := x.MinMax()
	q := quantizeNew(x, min, max)
	qp := &qmaxpool{label: "mp", buf: 0, k: mp.Window()}
	s := newScratch(1)
	got, err := qp.forward(q, s)
	if err != nil {
		t.Fatalf("qmaxpool: %v", err)
	}
	want, err := mp.Forward(q.dequantize(), false)
	if err != nil {
		t.Fatalf("float pool: %v", err)
	}
	back := got.dequantize()
	for i := range want.Data() {
		if math.Abs(float64(want.Data()[i]-back.Data()[i])) > float64(q.g.scale) {
			t.Fatalf("int maxpool deviates at %d", i)
		}
	}
}

// The integer global average pool must match the float mean within one
// quantum of the shared grid.
func TestGlobalAvgPoolIntegerMatchesFloat(t *testing.T) {
	gap := nn.NewGlobalAvgPool("gap")
	rng := tensor.NewRNG(11)
	x := tensor.New(2, 3, 4, 4)
	x.FillNormal(rng, 0, 1)
	min, max := x.MinMax()
	q := quantizeNew(x, min, max)
	qg := &qgap{label: "gap", buf: 0}
	s := newScratch(1)
	got, err := qg.forward(q, s)
	if err != nil {
		t.Fatalf("qgap: %v", err)
	}
	want, err := gap.Forward(q.dequantize(), false)
	if err != nil {
		t.Fatalf("float gap: %v", err)
	}
	back := got.dequantize()
	for i := range want.Data() {
		if math.Abs(float64(want.Data()[i]-back.Data()[i])) > float64(q.g.scale) {
			t.Fatalf("int gap deviates at %d: %v vs %v", i, back.Data()[i], want.Data()[i])
		}
	}
}
