package infer

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// trainedSmallCNN trains a small sequential backbone to usable accuracy
// so integer-vs-float agreement is measured on meaningful predictions.
func trainedSmallCNN(t *testing.T) (*models.Model, data.Dataset, *tensor.Tensor) {
	t.Helper()
	tr, te, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 320, Test: 160, Size: 12, Seed: 21, Noise: 0.3,
	})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 6})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if _, err := train.Run(train.Config{
		Model: m, Train: tr, Test: te, BatchSize: 32, Epochs: 4,
		Schedule: optim.ConstSchedule(0.05), Momentum: 0.9, Seed: 2,
	}); err != nil {
		t.Fatalf("train: %v", err)
	}
	// Calibration batch from the training split.
	calib := tensor.New(32, 3, 12, 12)
	for i := 0; i < 32; i++ {
		img, _ := tr.Sample(i)
		copy(calib.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
	}
	return m, te, calib
}

func TestCompileRequiresCalibration(t *testing.T) {
	m, err := models.SmallCNN(models.Config{Classes: 4, InputSize: 12, Seed: 6})
	if err != nil {
		t.Fatalf("SmallCNN: %v", err)
	}
	if _, err := Compile(m, Config{}); err == nil {
		t.Error("missing calibration did not error")
	}
}

func TestCompileRejectsResiduals(t *testing.T) {
	m, err := models.ResNet20(models.Config{Classes: 4, InputSize: 12, Width: 0.25, Seed: 1})
	if err != nil {
		t.Fatalf("ResNet20: %v", err)
	}
	calib := tensor.New(2, 3, 12, 12)
	if _, err := Compile(m, Config{Calibration: calib}); err == nil {
		t.Error("residual model did not error")
	}
}

func TestIntegerEngineMatchesFloatModel(t *testing.T) {
	m, te, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	// Batch up the test set.
	n := 96
	x := tensor.New(n, 3, 12, 12)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		img, l := te.Sample(i)
		copy(x.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
		labels[i] = l
	}
	floatLogits, err := m.Net.Forward(x, false)
	if err != nil {
		t.Fatalf("float forward: %v", err)
	}
	intPred, err := eng.Classify(x)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}

	agree := 0
	floatCorrect, intCorrect := 0, 0
	for i := 0; i < n; i++ {
		fp := floatLogits.ArgMaxRow(i)
		if fp == intPred[i] {
			agree++
		}
		if fp == labels[i] {
			floatCorrect++
		}
		if intPred[i] == labels[i] {
			intCorrect++
		}
	}
	if float64(agree)/float64(n) < 0.85 {
		t.Errorf("int8 engine agrees with float on %d/%d predictions, want >= 85%%", agree, n)
	}
	if float64(intCorrect) < 0.8*float64(floatCorrect) {
		t.Errorf("int8 accuracy %d/%d collapsed vs float %d/%d", intCorrect, n, floatCorrect, n)
	}
}

func TestBNFoldingPreservesFunction(t *testing.T) {
	// The folded float stages must compute the same function as the
	// original model in eval mode (folding is exact up to fp rounding).
	m, _, calib := trainedSmallCNN(t)
	stages, err := foldSequential(m.Layers())
	if err != nil {
		t.Fatalf("foldSequential: %v", err)
	}
	want, err := m.Net.Forward(calib, false)
	if err != nil {
		t.Fatalf("model forward: %v", err)
	}
	got := calib
	for _, st := range stages {
		got, err = st.floatForward(got)
		if err != nil {
			t.Fatalf("stage %s: %v", st.label, err)
		}
	}
	if !got.SameShape(want) {
		t.Fatalf("folded output shape %v != %v", got.Shape(), want.Shape())
	}
	var maxDiff float64
	for i := range got.Data() {
		d := math.Abs(float64(got.Data()[i] - want.Data()[i]))
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 1e-3 {
		t.Errorf("folded graph deviates from model by %v", maxDiff)
	}
}

func TestEngineSizeIsInt8(t *testing.T) {
	m, _, calib := trainedSmallCNN(t)
	eng, err := Compile(m, Config{Calibration: calib})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	var weightElems int
	for _, p := range m.Params() {
		if p.Value.Rank() > 1 {
			weightElems += p.Value.Len()
		}
	}
	size := eng.SizeBytes()
	// int8 weights plus a few float biases: well under the fp32 total and
	// at least one byte per weight element.
	if size < weightElems || size > 2*weightElems {
		t.Errorf("engine size %dB for %d weights; want ~1 byte/weight (+biases)", size, weightElems)
	}
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(9)
	x := tensor.New(100)
	x.FillNormal(rng, 0, 1)
	min, max := x.MinMax()
	q := quantize(x, min, max)
	back := q.dequantize()
	scale := float64(q.scale)
	for i := range x.Data() {
		if math.Abs(float64(x.Data()[i]-back.Data()[i])) > scale {
			t.Fatalf("round-trip error at %d exceeds one quantum", i)
		}
	}
	if q.len() != 100 {
		t.Errorf("len = %d", q.len())
	}
}

func TestMaxPoolCommutesWithQuantization(t *testing.T) {
	mp, err := nn.NewMaxPool2D("mp", 2)
	if err != nil {
		t.Fatalf("NewMaxPool2D: %v", err)
	}
	rng := tensor.NewRNG(10)
	x := tensor.New(1, 2, 4, 4)
	x.FillNormal(rng, 0, 1)
	min, max := x.MinMax()
	q := quantize(x, min, max)
	got, err := maxPoolInt(q, mp)
	if err != nil {
		t.Fatalf("maxPoolInt: %v", err)
	}
	want, err := mp.Forward(q.dequantize(), false)
	if err != nil {
		t.Fatalf("float pool: %v", err)
	}
	back := got.dequantize()
	for i := range want.Data() {
		if math.Abs(float64(want.Data()[i]-back.Data()[i])) > float64(q.scale) {
			t.Fatalf("int maxpool deviates at %d", i)
		}
	}
}
