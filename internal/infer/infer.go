// Package infer compiles a trained float model into an integer-only
// inference engine, completing the edge-deployment story of the paper's
// quantization scheme: §III adopts the affine map r = S(q − Z) from Jacob
// et al. (CVPR 2018) precisely because it admits integer-arithmetic-only
// inference, and a model trained with APT is deployed this way.
//
// Compilation performs the standard pipeline:
//
//  1. batch-norm folding — each Conv→BN pair collapses into one
//     convolution with rescaled weights and a bias;
//  2. range calibration — a calibration batch runs through the float
//     graph recording each activation tensor's min/max, fixing every
//     quantization grid at compile time;
//  3. integer lowering — weights become symmetric int8 with
//     per-output-channel scales (zero point 0), activations affine uint8;
//     convolutions and linears run as one batched uint8×int8→int32 GEMM
//     (im2col'd with the zero point as padding, so no border
//     special-casing) and requantize through the fixed-point multiplier
//     M = S_x·S_w/S_y ≈ m0·2^−rsh, fusing the ReLU as a clamp at the
//     output zero point. Residual blocks lower to a requantizing integer
//     add; pooling/reshape layers run directly on the uint8 payload.
//
// The hot path is integer-only end to end (floats appear only at the
// input/output boundary, as in a deployed runtime) and allocation-free at
// steady state: all intermediates live in per-call scratch workspaces
// leased from the engine's free list, which also makes concurrent
// Forward calls on one Engine safe — the compiled layers are immutable.
//
// Supported graphs are the sequential conv backbones (SmallCNN, CifarNet,
// VGGSmall) and residual topologies (ResNet): Conv2D, BatchNorm2D, ReLU
// (including the clipped ReLU6 variant, whose cap folds into the
// calibration clamp), MaxPool2D, GlobalAvgPool, Flatten, Linear,
// Residual.
package infer

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/models"
	"repro/internal/tensor"
)

// qlayer is one integer-lowered stage. forward reads x (a scratch slot
// owned by the producing layer) and writes this layer's own slot in s.
// Implementations hold only immutable compiled data, so one qlayer may
// run concurrently against different scratches.
type qlayer interface {
	name() string
	forward(x *qtensor, s *scratch) (*qtensor, error)
}

// Engine is a compiled integer inference graph. It is safe for
// concurrent use: every Forward call leases a private scratch workspace
// from a free list (allocating one only when all are in flight).
type Engine struct {
	layers        []qlayer
	in            grid
	inC, inH, inW int
	nbuf          int
	pool          chan *scratch
	// fused, when non-nil, is layers[0] — a materialized-lowering conv
	// whose input quantize runs inside its packer (quantize → pack in
	// one pass from a per-worker image buffer), so Forward skips the
	// whole-batch quantize staging for it.
	fused *qaffine
}

// Config controls Compile.
type Config struct {
	// Calibration provides representative inputs (N, C, H, W); the more
	// representative, the tighter the activation grids.
	Calibration *tensor.Tensor
	// PerTensorWeights falls back to one symmetric scale per weight
	// tensor instead of the default per-output-channel scales. It exists
	// as an ablation knob (per-channel is strictly tighter); see
	// TestPerChannelScalesTightenAgreement.
	PerTensorWeights bool
	// ForceConvLowering overrides the per-geometry conv lowering choice:
	// "implicit" routes every conv through the in-place band-gather
	// driver, "materialized" through the patch-matrix im2col. Empty
	// selects per geometry (stride 1 → implicit). Both lowerings are
	// bit-identical; this is an ablation/benchmark knob.
	ForceConvLowering string
}

// Compile folds, calibrates and lowers a float model. The model is not
// modified.
func Compile(m *models.Model, cfg Config) (*Engine, error) {
	if cfg.Calibration == nil || cfg.Calibration.Rank() != 4 {
		return nil, fmt.Errorf("infer: calibration batch (N,C,H,W) is required")
	}
	switch cfg.ForceConvLowering {
	case "", "implicit", "materialized":
	default:
		return nil, fmt.Errorf("infer: unknown ForceConvLowering %q (want \"\", \"implicit\" or \"materialized\")",
			cfg.ForceConvLowering)
	}
	stages, err := foldSequential(m.Layers())
	if err != nil {
		return nil, err
	}
	// Calibration pass: record per-stage output ranges on the float graph.
	x := cfg.Calibration
	inMin, inMax := x.MinMax()
	if _, err := calibrateChain(stages, x); err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}

	nbuf := 0
	nextID := func() int { id := nbuf; nbuf++; return id }
	nextID() // slot 0: the quantized input
	in := gridFor(inMin, inMax)
	layers, _, err := lowerChain(stages, in, cfg, nextID)
	if err != nil {
		return nil, fmt.Errorf("infer: %w", err)
	}
	caps := runtime.GOMAXPROCS(0)
	if caps < 4 {
		caps = 4
	}
	e := &Engine{
		layers: layers,
		in:     in,
		inC:    m.InC, inH: m.InH, inW: m.InW,
		nbuf: nbuf,
		pool: make(chan *scratch, caps),
	}
	// When the first layer is a materialized-lowering conv, fuse the input
	// quantize into its packer: each sample quantizes into a per-worker
	// image buffer and packs straight from it, so the float input is
	// touched once and the whole-batch quantized staging tensor is never
	// written. (Implicit-lowering first convs gather each input row KH
	// times, so they keep the staged quantize — one pass over the input —
	// instead of re-quantizing per tap row.)
	if len(layers) > 0 {
		if q, ok := layers[0].(*qaffine); ok && q.geom != nil && q.plan == nil {
			q.fuseQuant = true
			q.lowerWhy += "; input quantize fused into packer"
			e.fused = q
		}
	}
	return e, nil
}

// lease takes a scratch workspace from the free list, building a fresh
// one only when every pooled scratch is in flight.
func (e *Engine) lease() *scratch {
	select {
	case s := <-e.pool:
		return s
	default:
		return newScratch(e.nbuf)
	}
}

// release returns a scratch to the free list (dropping it when the list
// is full, e.g. after a burst of concurrent calls).
func (e *Engine) release(s *scratch) {
	select {
	case e.pool <- s:
	default:
	}
}

// Forward runs integer inference on a float input batch and returns float
// logits (dequantized at the boundary, as a deployed runtime would). The
// returned tensor is freshly allocated and owned by the caller. Forward
// is safe to call concurrently on one Engine; identical inputs produce
// bit-identical outputs regardless of concurrency or worker count
// (integer arithmetic has no reduction-order sensitivity).
func (e *Engine) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	if x.Rank() != 4 || x.Dim(1) != e.inC || x.Dim(2) != e.inH || x.Dim(3) != e.inW {
		return nil, fmt.Errorf("infer: %w: input %v, want (N,%d,%d,%d)",
			tensor.ErrShape, x.Shape(), e.inC, e.inH, e.inW)
	}
	s := e.lease()
	defer e.release(s)
	return e.run(x, s)
}

// run executes the compiled graph in scratch s (shared by Forward and
// ForwardProfile).
func (e *Engine) run(x *tensor.Tensor, s *scratch) (*tensor.Tensor, error) {
	var q *qtensor
	var err error
	layers := e.layers
	if e.fused != nil {
		// First layer consumes the float input directly: quantize+pack in
		// one pass (bit-identical to staging the quantized batch first).
		q, err = e.fused.convFloat(x, s)
		if err != nil {
			return nil, fmt.Errorf("infer: %s: %w", e.fused.name(), err)
		}
		layers = layers[1:]
	} else {
		q = &s.acts[0]
		quantizeInto(q, x, e.in)
	}
	for _, l := range layers {
		q, err = l.forward(q, s)
		if err != nil {
			return nil, fmt.Errorf("infer: %s: %w", l.name(), err)
		}
	}
	return q.dequantize(), nil
}

// ForwardProfile runs one forward pass with per-stage timing: the
// returned profile splits wall time into im2col/gather packing, packed
// GEMM, requantization and everything else. Outputs are bit-identical to
// Forward (profiling only inserts clock reads and forces the conv band
// tasks serial so gather and GEMM attribute separately); it is meant for
// benchmarking, not the serving hot path.
func (e *Engine) ForwardProfile(x *tensor.Tensor) (*tensor.Tensor, *ForwardProfile, error) {
	if x.Rank() != 4 || x.Dim(1) != e.inC || x.Dim(2) != e.inH || x.Dim(3) != e.inW {
		return nil, nil, fmt.Errorf("infer: %w: input %v, want (N,%d,%d,%d)",
			tensor.ErrShape, x.Shape(), e.inC, e.inH, e.inW)
	}
	s := e.lease()
	defer e.release(s)
	p := &ForwardProfile{}
	s.prof = p
	t0 := time.Now()
	out, err := e.run(x, s)
	p.Total = time.Since(t0)
	s.prof = nil
	if err != nil {
		return nil, nil, err
	}
	p.Other = p.Total - p.Im2col - p.GEMM - p.Requant
	if p.Other < 0 {
		p.Other = 0
	}
	return out, p, nil
}

// ConvLowering describes one conv layer's compile-time lowering choice,
// surfaced for inspection tools and benchmarks.
type ConvLowering struct {
	Layer string // stage label
	Mode  string // "implicit" or "materialized"
	Why   string // the rule that picked the mode
}

// ConvLowerings reports every conv layer's lowering decision in forward
// order, residual branches included.
func (e *Engine) ConvLowerings() []ConvLowering {
	var out []ConvLowering
	collectLowerings(e.layers, &out)
	return out
}

func collectLowerings(layers []qlayer, out *[]ConvLowering) {
	for _, l := range layers {
		switch q := l.(type) {
		case *qaffine:
			if q.geom == nil {
				continue
			}
			mode := "materialized"
			if q.plan != nil {
				mode = "implicit"
			}
			*out = append(*out, ConvLowering{Layer: q.label, Mode: mode, Why: q.lowerWhy})
		case *qresidual:
			collectLowerings(q.main, out)
			collectLowerings(q.shortcut, out)
		}
	}
}

// Classify returns the argmax class of each sample.
func (e *Engine) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := e.Forward(x)
	if err != nil {
		return nil, err
	}
	n := logits.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = logits.ArgMaxRow(i)
	}
	return out, nil
}

// InputShape returns the per-sample input geometry (C, H, W);
// serve.New reads it to default its sample validation.
func (e *Engine) InputShape() (c, h, w int) { return e.inC, e.inH, e.inW }

// SizeBytes returns the engine's parameter storage (int8 weights + int32
// biases), the deployed footprint.
func (e *Engine) SizeBytes() int {
	total := 0
	for _, l := range e.layers {
		if s, ok := l.(interface{ sizeBytes() int }); ok {
			total += s.sizeBytes()
		}
	}
	return total
}

// ---------------------------------------------------------------------------
// Integer layers
// ---------------------------------------------------------------------------

// qaffine is an integer conv or linear stage: prepacked int8 weight
// panels, uint8 activations, int32 accumulation through the packed
// integer GEMM, and fixed-point requantization onto the compile-time
// output grid with the fused activation clamp.
//
// The weight panels are built once at Compile time (tensor.PackI8PanelsBT
// over the symmetric int8 weights) and are immutable afterwards, so every
// concurrent Forward call shares them; the per-call GEMM does zero
// repacking. Pack time also decides the kernel route: panels whose
// adjacent weight pairs could saturate the int16 SIMD kernel run the
// exact widening kernel instead (see tensor.PackedI8.Saturating).
type qaffine struct {
	label   string
	buf     int
	packed  *tensor.PackedI8 // conv: (kdim, outC); linear: (inF, outC)
	geom    *tensor.ConvGeom // nil => linear
	outC    int
	kdim    int // conv GEMM depth (inC·KH·KW)
	inF     int // linear input features
	in, out grid
	m0      []int32 // per-channel fixed-point multiplier mantissa
	rsh     []int32 // per-channel right shift
	corr    []int64 // per-channel int32-domain bias − Z_x·Σq_w
	nbias   int
	relu    bool
	// Conv lowering, fixed at Compile per geometry (see lowerAffine):
	// plan non-nil routes the layer through the implicit-im2col band
	// driver; nil keeps the materialized patch-matrix packer. fuseQuant
	// marks the engine's first materialized conv, whose packer quantizes
	// the float input itself. lowerWhy records the decision for
	// Engine.ConvLowerings.
	plan      *tensor.ConvPlanU8
	fuseQuant bool
	lowerWhy  string
}

func (q *qaffine) name() string { return q.label }

func (q *qaffine) sizeBytes() int { return q.packed.SizeBytes() + 4*q.nbias }

func (q *qaffine) forward(x *qtensor, s *scratch) (*qtensor, error) {
	if q.geom != nil {
		return q.conv(x, s)
	}
	return q.linear(x, s)
}

// conv runs the layer's compiled lowering. Implicit (plan != nil): the
// band driver gathers receptive fields into cache-resident per-worker
// lanes and runs the packed kernels against them in place — the patch
// matrix is never materialized. Materialized: the batch packs into the
// patch-major uint8 im2col arena and one packed GEMM consumes it. Both
// pad with Z_x (which represents exact float zero, so the per-channel
// correction term is position-independent), both feed the identical
// position-major accumulator to the requant pass, and both produce
// bit-identical payloads.
func (q *qaffine) conv(x *qtensor, s *scratch) (*qtensor, error) {
	g := *q.geom
	if len(x.shape) != 4 || x.shape[1] != g.InC || x.shape[2] != g.InH || x.shape[3] != g.InW {
		return nil, fmt.Errorf("input %v does not match geometry %+v", x.shape, g)
	}
	n := x.dim(0)
	if q.plan != nil {
		return q.convImplicit(x.data, n, s)
	}
	oh, ow := g.OutHW()
	ns := n * oh * ow
	// The packed kernels read operand rows in 4-tap quads; reserve the
	// spare bytes past the last patch row (they multiply zero weights).
	cols := s.colsBuf(q.kdim*ns + quadPad)
	t0 := profClock(s)
	if err := tensor.Im2ColBatchU8PatchesInto(cols[:q.kdim*ns], x.data, n, g, uint8(q.in.zero)); err != nil {
		return nil, err
	}
	profSpan(s, stageIm2col, t0)
	return q.convGEMM(cols, n, s)
}

// convFloat is the fused quantize+pack entry of the engine's first
// materialized conv: each sample's float image quantizes into a
// per-worker image buffer and packs straight from it, so the input is
// read once and the whole-batch quantized tensor is never staged.
// Packed bytes — and therefore everything downstream — are bit-identical
// to quantizeInto followed by conv.
func (q *qaffine) convFloat(x *tensor.Tensor, s *scratch) (*qtensor, error) {
	g := *q.geom
	n := x.Dim(0)
	oh, ow := g.OutHW()
	ns := n * oh * ow
	inSz := g.InC * g.InH * g.InW
	sp := oh * ow
	cols := s.colsBuf(q.kdim*ns + quadPad)
	lanes := tensor.MaxWorkers()
	if lanes > n {
		lanes = n
	}
	imgs := s.imgBuf(lanes * inSz)
	xd := x.Data()
	t0 := profClock(s)
	if lanes == 1 {
		img := imgs[:inSz]
		for i := 0; i < n; i++ {
			q.quantPackSample(cols, xd, img, i, sp, inSz)
		}
	} else {
		tensor.ParallelForWorker(n, func(i, lane int) {
			q.quantPackSample(cols, xd, imgs[lane*inSz:(lane+1)*inSz], i, sp, inSz)
		})
	}
	profSpan(s, stageIm2col, t0)
	return q.convGEMM(cols, n, s)
}

// quantPackSample quantizes sample i into img and packs its patch rows.
func (q *qaffine) quantPackSample(cols []uint8, xd []float32, img []uint8, i, sp, inSz int) {
	quantizeRowU8(img, xd[i*inSz:(i+1)*inSz], q.in)
	// Geometry and payload were validated at compile/entry; the packer
	// cannot fail on a per-sample slice of them.
	_ = tensor.Im2ColSampleU8PatchesInto(cols[i*sp*q.kdim:(i+1)*sp*q.kdim], img, *q.geom, uint8(q.in.zero))
}

// convImplicit runs the implicit-im2col lowering: per-worker gather
// lanes live at the head of the cols arena (a few tens of KB, versus the
// megabytes the materialized patch matrix needs), and the band driver
// streams them against the weight panels.
func (q *qaffine) convImplicit(src []uint8, n int, s *scratch) (*qtensor, error) {
	oh, ow := q.plan.Geom().OutHW()
	ns := n * oh * ow
	acc := s.accBuf(q.outC * ns)
	tasks := n * q.plan.Bands()
	lanes := tensor.MaxWorkers()
	if lanes > tasks {
		lanes = tasks
	}
	work := s.colsBuf(lanes * q.plan.BandLen())
	if s.prof != nil {
		// Profiled forward: run the band tasks serially so gather and GEMM
		// time attribute separately (the fused driver otherwise interleaves
		// them per task across workers).
		buf := work[:q.plan.BandLen()]
		for t := 0; t < tasks; t++ {
			t0 := profClock(s)
			m := q.plan.GatherBandInto(buf, src, uint8(q.in.zero), t)
			profSpan(s, stageIm2col, t0)
			t0 = profClock(s)
			q.plan.GEMMBand(acc, buf, q.packed, t, m)
			profSpan(s, stageGEMM, t0)
		}
		return q.requantConv(acc, n, oh, ow, s)
	}
	if err := tensor.ConvU8I8ImplicitInto(acc, src, n, q.packed, q.plan, uint8(q.in.zero), work); err != nil {
		return nil, err
	}
	return q.requantConv(acc, n, oh, ow, s)
}

// convGEMM runs the packed GEMM over a materialized patch matrix and
// requantizes.
func (q *qaffine) convGEMM(cols []uint8, n int, s *scratch) (*qtensor, error) {
	oh, ow := q.geom.OutHW()
	ns := n * oh * ow
	acc := s.accBuf(q.outC * ns)
	aspan := (ns-1)*q.kdim + q.packed.PaddedK()
	t0 := profClock(s)
	if err := tensor.MatMulU8I8PackedInto(acc, cols[:aspan], q.packed, ns, q.kdim); err != nil {
		return nil, err
	}
	profSpan(s, stageGEMM, t0)
	return q.requantConv(acc, n, oh, ow, s)
}

// requantConv requantizes the position-major accumulator into the
// layer's NCHW output slot.
func (q *qaffine) requantConv(acc []int32, n, oh, ow int, s *scratch) (*qtensor, error) {
	sp := oh * ow
	out := s.act(q.buf, n, q.outC, oh, ow)
	out.g = q.out
	chunks := (sp + requantChunk - 1) / requantChunk
	t0 := profClock(s)
	if tensor.MaxWorkers() == 1 || s.prof != nil {
		for t := 0; t < n*chunks; t++ {
			q.requantPositions(acc, out.data, sp, chunks, t)
		}
		profSpan(s, stageRequant, t0)
		return out, nil
	}
	tensor.ParallelFor(n*chunks, func(t int) { q.requantPositions(acc, out.data, sp, chunks, t) })
	profSpan(s, stageRequant, t0)
	return out, nil
}

// requantChunk is the position-tile width of the conv requantization.
// The accumulator is position-major (row per output position, column per
// channel), the output NCHW (plane per channel): requantizing a whole
// channel plane at once would re-stream the entire accumulator per
// channel (each int32 read strided by outC), so instead each task
// requantizes every channel of a 256-position tile — the tile's
// accumulator rows (256·outC int32) stay in L1 while all outC planes
// consume them.
const requantChunk = 256

// requantPositions requantizes all channels of one sample's position
// tile into the NCHW output payload: the accumulator rows for positions
// [p0, p1) feed the transposing vector kernel, which emits each channel's
// contiguous plane run (tensor.RequantQ31Transpose pins the rounding
// contract shared with the scalar requantize).
func (q *qaffine) requantPositions(acc []int32, dst []uint8, sp, chunks, t int) {
	i, ch := t/chunks, t%chunks
	p0 := ch * requantChunk
	p1 := p0 + requantChunk
	if p1 > sp {
		p1 = sp
	}
	lo := int32(0)
	if q.relu {
		lo = q.out.zero
	}
	tensor.RequantQ31Transpose(dst[i*q.outC*sp+p0:], acc[(i*sp+p0)*q.outC:],
		q.m0, q.rsh, q.corr, q.out.zero, lo, p1-p0, q.outC, q.outC, sp)
}

// linear runs the batch as one packed integer GEMM against the prepacked
// weight panels and requantizes per output feature.
func (q *qaffine) linear(x *qtensor, s *scratch) (*qtensor, error) {
	if len(x.shape) != 2 || x.shape[1] != q.inF {
		return nil, fmt.Errorf("input %v does not match linear (N,%d)", x.shape, q.inF)
	}
	n := x.dim(0)
	acc := s.accBuf(n * q.outC)
	// Scratch payloads carry quadPad spare capacity past their length for
	// exactly this re-slice (see qtensor.setShape).
	aspan := (n-1)*q.inF + q.packed.PaddedK()
	t0 := profClock(s)
	if err := tensor.MatMulU8I8PackedInto(acc, x.data[:aspan], q.packed, n, q.inF); err != nil {
		return nil, err
	}
	profSpan(s, stageGEMM, t0)
	out := s.act(q.buf, n, q.outC)
	out.g = q.out
	lo := int32(0)
	if q.relu {
		lo = q.out.zero
	}
	t0 = profClock(s)
	tensor.RequantQ31Rows(out.data, acc, q.m0, q.rsh, q.corr, q.out.zero, lo,
		n, q.outC, q.outC, q.outC)
	profSpan(s, stageRequant, t0)
	return out, nil
}

// qmaxpool is a non-overlapping k×k max pool running directly on the
// uint8 payload: max commutes with the monotone affine map, so the output
// stays on the input grid.
type qmaxpool struct {
	label string
	buf   int
	k     int
}

func (p *qmaxpool) name() string { return p.label }

func (p *qmaxpool) forward(x *qtensor, s *scratch) (*qtensor, error) {
	if len(x.shape) != 4 {
		return nil, fmt.Errorf("%w: maxpool input %v", tensor.ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	if h%p.k != 0 || w%p.k != 0 {
		return nil, fmt.Errorf("%w: maxpool input %dx%d not divisible by window %d", tensor.ErrShape, h, w, p.k)
	}
	oh, ow := h/p.k, w/p.k
	out := s.act(p.buf, n, c, oh, ow)
	out.g = x.g
	if tensor.MaxWorkers() == 1 {
		for t := 0; t < n*c; t++ {
			p.poolPlane(x.data, out.data, h, w, t)
		}
		return out, nil
	}
	tensor.ParallelFor(n*c, func(t int) { p.poolPlane(x.data, out.data, h, w, t) })
	return out, nil
}

// poolPlane max-pools one channel plane of the uint8 payload.
func (p *qmaxpool) poolPlane(src, dst []uint8, h, w, t int) {
	k := p.k
	oh, ow := h/k, w/k
	in := src[t*h*w : (t+1)*h*w]
	out := dst[t*oh*ow : (t+1)*oh*ow]
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			bv := in[oy*k*w+ox*k]
			for ky := 0; ky < k; ky++ {
				row := in[(oy*k+ky)*w+ox*k : (oy*k+ky)*w+ox*k+k]
				for _, v := range row {
					if v > bv {
						bv = v
					}
				}
			}
			out[oy*ow+ox] = bv
		}
	}
}

// qgap is a global average pool on the uint8 payload: the mean of grid
// points is the grid point of the mean (up to one rounding quantum), so
// the output stays on the input grid, computed with integer rounding.
type qgap struct {
	label string
	buf   int
}

func (p *qgap) name() string { return p.label }

func (p *qgap) forward(x *qtensor, s *scratch) (*qtensor, error) {
	if len(x.shape) != 4 {
		return nil, fmt.Errorf("%w: gap input %v", tensor.ErrShape, x.shape)
	}
	n, c, h, w := x.shape[0], x.shape[1], x.shape[2], x.shape[3]
	plane := h * w
	out := s.act(p.buf, n, c)
	out.g = x.g
	for t := 0; t < n*c; t++ {
		row := x.data[t*plane : (t+1)*plane]
		var sum int32
		for _, v := range row {
			sum += int32(v)
		}
		// Round half up: (2·sum + plane) / (2·plane).
		out.data[t] = uint8((2*sum + int32(plane)) / int32(2*plane))
	}
	return out, nil
}

// qflatten reshapes (N, C, H, W) to (N, C·H·W) without moving data.
type qflatten struct {
	label string
	buf   int
}

func (f *qflatten) name() string { return f.label }

func (f *qflatten) forward(x *qtensor, s *scratch) (*qtensor, error) {
	if len(x.shape) < 2 {
		return nil, fmt.Errorf("%w: flatten input %v", tensor.ErrShape, x.shape)
	}
	n := x.shape[0]
	return s.actView(f.buf, x, n, x.len()/n), nil
}

// qresidual joins two lowered branch chains with a requantizing integer
// add: each branch output rescales onto the block's output grid through
// its own fixed-point multiplier (M_b = S_b/S_y), and the block ReLU is
// the clamp at the output zero point.
type qresidual struct {
	label    string
	buf      int
	main     []qlayer
	shortcut []qlayer // nil = identity
	mainZ    int32
	shortZ   int32
	out      grid
	m0Main   int32
	rshMain  int32
	m0Short  int32
	rshShort int32
	relu     bool
}

func (r *qresidual) name() string { return r.label }

func (r *qresidual) sizeBytes() int {
	total := 0
	for _, l := range append(append([]qlayer{}, r.main...), r.shortcut...) {
		if s, ok := l.(interface{ sizeBytes() int }); ok {
			total += s.sizeBytes()
		}
	}
	return total
}

func (r *qresidual) forward(x *qtensor, s *scratch) (*qtensor, error) {
	my := x
	var err error
	for _, l := range r.main {
		my, err = l.forward(my, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.name(), err)
		}
	}
	sy := x
	for _, l := range r.shortcut {
		sy, err = l.forward(sy, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", l.name(), err)
		}
	}
	if my.len() != sy.len() {
		return nil, fmt.Errorf("%w: residual branches %v vs %v", tensor.ErrShape, my.shape, sy.shape)
	}
	out := s.act(r.buf, my.shape...)
	out.g = r.out
	n := my.shape[0]
	per := my.len() / n
	if tensor.MaxWorkers() == 1 {
		for i := 0; i < n; i++ {
			r.addRow(my.data, sy.data, out.data, per, i)
		}
		return out, nil
	}
	tensor.ParallelFor(n, func(i int) { r.addRow(my.data, sy.data, out.data, per, i) })
	return out, nil
}

// addRow rescales and sums one sample's branch payloads onto the output
// grid.
func (r *qresidual) addRow(main, short, dst []uint8, per, i int) {
	ms := main[i*per : (i+1)*per]
	ss := short[i*per : (i+1)*per]
	row := dst[i*per : (i+1)*per]
	lo := int32(0)
	if r.relu {
		lo = r.out.zero
	}
	zy := int64(r.out.zero)
	zm, zs := int64(r.mainZ), int64(r.shortZ)
	for j := range row {
		y := requantize(int64(ms[j])-zm, r.m0Main, r.rshMain) +
			requantize(int64(ss[j])-zs, r.m0Short, r.rshShort) + zy
		row[j] = clampU8(y, lo)
	}
}
