// Package infer compiles a trained float model into an integer-only
// inference engine, completing the edge-deployment story of the paper's
// quantization scheme: §III adopts the affine map r = S(q − Z) from Jacob
// et al. (CVPR 2018) precisely because it admits integer-arithmetic-only
// inference, and a model trained with APT is deployed this way.
//
// Compilation performs the standard pipeline:
//
//  1. batch-norm folding — each Conv→BN pair collapses into one
//     convolution with rescaled weights and a bias;
//  2. range calibration — a calibration batch runs through the float
//     graph recording each activation tensor's min/max;
//  3. integer lowering — weights become symmetric int8 (zero point 0),
//     activations affine uint8; convolutions and linears accumulate in
//     int32 and requantize with the float multiplier M = S_x·S_w / S_y,
//     fusing the ReLU as a clamp at the output zero point.
//
// Supported graphs are the sequential backbones (SmallCNN, CifarNet,
// VGGSmall): Conv2D, BatchNorm2D, ReLU, MaxPool2D, GlobalAvgPool,
// Flatten, Linear. Residual topologies would additionally need a
// rescaling integer add; they are rejected at compile time.
package infer

import (
	"fmt"
	"math"

	"repro/internal/models"
	"repro/internal/tensor"
)

// qtensor is an affine-quantized activation: uint8 payload with scale and
// zero point, NCHW.
type qtensor struct {
	shape []int
	data  []uint8
	scale float32
	zero  int32
}

func (q *qtensor) len() int { return len(q.data) }

// quantize converts a float tensor onto the uint8 grid of [min, max].
func quantize(t *tensor.Tensor, min, max float32) *qtensor {
	if min > 0 {
		min = 0 // keep 0 exactly representable (padding, ReLU floor)
	}
	if max <= min {
		max = min + 1e-3
	}
	scale := (max - min) / 255
	zero := int32(math.Round(float64(-min) / float64(scale)))
	q := &qtensor{shape: t.Shape(), data: make([]uint8, t.Len()), scale: scale, zero: zero}
	for i, v := range t.Data() {
		x := math.Round(float64(v)/float64(scale)) + float64(zero)
		if x < 0 {
			x = 0
		} else if x > 255 {
			x = 255
		}
		q.data[i] = uint8(x)
	}
	return q
}

// dequantize restores the float view.
func (q *qtensor) dequantize() *tensor.Tensor {
	out := tensor.New(q.shape...)
	d := out.Data()
	for i, v := range q.data {
		d[i] = q.scale * float32(int32(v)-q.zero)
	}
	return out
}

// qlayer is one integer-lowered stage.
type qlayer interface {
	name() string
	forward(x *qtensor) (*qtensor, error)
}

// Engine is a compiled integer inference graph.
type Engine struct {
	layers []qlayer
	inMin  float32
	inMax  float32
	class  int
}

// Config controls Compile.
type Config struct {
	// Calibration provides representative inputs (N, C, H, W); the more
	// representative, the tighter the activation grids.
	Calibration *tensor.Tensor
}

// Compile folds, calibrates and lowers a float model. The model is not
// modified.
func Compile(m *models.Model, cfg Config) (*Engine, error) {
	if cfg.Calibration == nil || cfg.Calibration.Rank() != 4 {
		return nil, fmt.Errorf("infer: calibration batch (N,C,H,W) is required")
	}
	stages, err := foldSequential(m.Layers())
	if err != nil {
		return nil, err
	}
	// Calibration pass: record per-stage output ranges on the float graph.
	x := cfg.Calibration
	inMin, inMax := x.MinMax()
	ranges := make([][2]float32, len(stages))
	for i, st := range stages {
		x, err = st.floatForward(x)
		if err != nil {
			return nil, fmt.Errorf("infer: calibrate %s: %w", st.label, err)
		}
		min, max := x.MinMax()
		ranges[i] = [2]float32{min, max}
	}
	eng := &Engine{inMin: inMin, inMax: inMax, class: m.Class}
	for i, st := range stages {
		ql, err := st.lower(ranges[i])
		if err != nil {
			return nil, fmt.Errorf("infer: lower %s: %w", st.label, err)
		}
		eng.layers = append(eng.layers, ql)
	}
	return eng, nil
}

// Forward runs integer inference on a float input batch and returns float
// logits (dequantized at the boundary, as a deployed runtime would).
func (e *Engine) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	q := quantize(x, e.inMin, e.inMax)
	var err error
	for _, l := range e.layers {
		q, err = l.forward(q)
		if err != nil {
			return nil, fmt.Errorf("infer: %s: %w", l.name(), err)
		}
	}
	return q.dequantize(), nil
}

// Classify returns the argmax class of each sample.
func (e *Engine) Classify(x *tensor.Tensor) ([]int, error) {
	logits, err := e.Forward(x)
	if err != nil {
		return nil, err
	}
	n := logits.Dim(0)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = logits.ArgMaxRow(i)
	}
	return out, nil
}

// SizeBytes returns the engine's parameter storage (int8 weights + int32
// biases), the deployed footprint.
func (e *Engine) SizeBytes() int {
	total := 0
	for _, l := range e.layers {
		if s, ok := l.(interface{ sizeBytes() int }); ok {
			total += s.sizeBytes()
		}
	}
	return total
}
