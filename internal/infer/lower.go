package infer

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// lowerChain converts a calibrated stage list into integer layers,
// threading the activation grid from one layer to the next (every grid is
// fixed at compile time, so the forward path never touches float scale
// arithmetic). nextID allocates scratch buffer slots.
func lowerChain(stages []*stage, in grid, cfg Config, nextID func() int) ([]qlayer, grid, error) {
	layers := make([]qlayer, 0, len(stages))
	g := in
	for _, st := range stages {
		ql, out, err := st.lower(g, cfg, nextID)
		if err != nil {
			return nil, grid{}, fmt.Errorf("lower %s: %w", st.label, err)
		}
		layers = append(layers, ql)
		g = out
	}
	return layers, g, nil
}

// lower converts one calibrated stage into its integer form given the
// input activation grid; it returns the lowered layer and its output grid.
func (st *stage) lower(in grid, cfg Config, nextID func() int) (qlayer, grid, error) {
	switch {
	case st.pass != nil:
		return lowerPass(st, in, nextID)
	case st.res != nil:
		return lowerResidual(st, in, cfg, nextID)
	default:
		return lowerAffine(st, in, cfg, nextID)
	}
}

// outGrid derives the stage's output grid from its calibrated range, with
// the fused ReLU pinning the floor at zero.
func (st *stage) outGrid() grid {
	min, max := st.outRange[0], st.outRange[1]
	if st.relu && min < 0 {
		min = 0
	}
	return gridFor(min, max)
}

// lowerPass lowers pooling/reshape layers, which stay on the input grid:
// max commutes with the monotone affine map, the channel mean is computed
// with integer rounding on the same grid, and flatten moves no data.
func lowerPass(st *stage, in grid, nextID func() int) (qlayer, grid, error) {
	switch l := st.pass.(type) {
	case *nn.MaxPool2D:
		return &qmaxpool{label: st.label, buf: nextID(), k: l.Window()}, in, nil
	case *nn.GlobalAvgPool:
		return &qgap{label: st.label, buf: nextID()}, in, nil
	case *nn.Flatten:
		return &qflatten{label: st.label, buf: nextID()}, in, nil
	default:
		return nil, grid{}, fmt.Errorf("unsupported passthrough layer %T", st.pass)
	}
}

// lowerAffine lowers a folded conv or linear stage: symmetric int8
// weights (per-output-channel scales unless cfg.PerTensorWeights), int32
// bias and zero-point corrections folded into one per-channel constant,
// and the requantization multiplier M = S_x·S_w[oc]/S_y lowered to fixed
// point.
func lowerAffine(st *stage, in grid, cfg Config, nextID func() int) (qlayer, grid, error) {
	out := st.outGrid()
	outC := st.weight.Dim(0)
	per := st.weight.Len() / outC

	var weights []int8
	var wscale []float32
	if cfg.PerTensorWeights {
		var s float32
		weights, s = quantizeWeightsSym(st.weight)
		wscale = make([]float32, outC)
		for c := range wscale {
			wscale[c] = s
		}
	} else {
		weights, wscale = quantizeWeightsPerChannel(st.weight)
	}

	// Lower the weights to prepacked column panels once, here: the weight
	// tensor's (outC, per) layout is exactly the transposed-B orientation
	// the packer consumes, and the hot path never repacks. Pack time also
	// fixes the kernel route for this layer (fast saturating-int16 kernel
	// vs exact widening kernel; see tensor.PackedI8.Saturating).
	packed, err := tensor.PackI8PanelsBT(weights, per, outC)
	if err != nil {
		return nil, grid{}, err
	}
	q := &qaffine{
		label:  st.label,
		buf:    nextID(),
		packed: packed,
		outC:   outC,
		in:     in,
		out:    out,
		m0:     make([]int32, outC),
		rsh:    make([]int32, outC),
		corr:   make([]int64, outC),
		nbias:  len(st.bias),
		relu:   st.relu,
	}
	if st.geom != nil {
		q.geom = st.geom
		q.kdim = per
		if err := lowerConvPath(q, *st.geom, cfg); err != nil {
			return nil, grid{}, err
		}
	} else {
		q.inF = per
	}
	for c := 0; c < outC; c++ {
		// Σ q_w for the zero-point correction: with the im2col padding
		// value equal to Z_x, acc − Z_x·Σq_w is exact at every position.
		var ksum int64
		for _, w := range weights[c*per : (c+1)*per] {
			ksum += int64(w)
		}
		sw := float64(in.scale) * float64(wscale[c])
		q.m0[c], q.rsh[c] = lowerMultiplier(sw / float64(out.scale))
		biasq := math.Round(float64(st.bias[c]) / sw)
		if biasq > float64(accMax) {
			biasq = float64(accMax)
		} else if biasq < float64(accMin) {
			biasq = float64(accMin)
		}
		q.corr[c] = int64(biasq) - int64(in.zero)*ksum
	}
	return q, out, nil
}

// LoweringFor reports the compile-time conv lowering rule for a
// geometry without building an engine: the mode ("implicit" or
// "materialized") and the reason. Stride-1 geometries — the entire
// CIFAR zoo — take the implicit path: the band gather touches each
// activation byte from cache while every weight panel consumes it, and
// the patch matrix (KH·KW× the activation volume) is never
// materialized. Strided geometries keep the materialized packer: their
// receptive fields overlap little or not at all, so patch bytes see no
// cross-position reuse for the band buffer to capture, and the
// batch-wide packer's word-wide row copies are the better fit.
// Inspection tools (aptinspect) share this with lowerConvPath so the
// printed decision cannot drift from the lowered one.
func LoweringFor(g tensor.ConvGeom) (mode, why string) {
	if g.Stride == 1 {
		return "implicit", "stride 1: receptive fields overlap, band gather feeds kernels in place"
	}
	return "materialized", fmt.Sprintf("stride %d: sparse receptive-field overlap, materialized packer", g.Stride)
}

// lowerConvPath fixes a conv layer's im2col lowering at compile time
// per the LoweringFor rule. Config.ForceConvLowering overrides either
// way (both paths are bit-identical; the knob exists for ablations and
// benchmarks).
func lowerConvPath(q *qaffine, g tensor.ConvGeom, cfg Config) error {
	mode, why := LoweringFor(g)
	implicit := mode == "implicit"
	switch cfg.ForceConvLowering {
	case "implicit":
		implicit, q.lowerWhy = true, "forced by ForceConvLowering"
	case "materialized":
		implicit, q.lowerWhy = false, "forced by ForceConvLowering"
	default:
		q.lowerWhy = why
	}
	if !implicit {
		return nil
	}
	plan, err := tensor.NewConvPlanU8(g)
	if err != nil {
		return err
	}
	q.plan = plan
	return nil
}

// lowerResidual lowers a residual block: both branch chains recursively,
// then the joining add as a pair of fixed-point rescales onto the block's
// output grid.
func lowerResidual(st *stage, in grid, cfg Config, nextID func() int) (qlayer, grid, error) {
	main, mainOut, err := lowerChain(st.res.main, in, cfg, nextID)
	if err != nil {
		return nil, grid{}, err
	}
	r := &qresidual{label: st.label, buf: nextID(), main: main, relu: st.res.relu}
	shortOut := in
	if st.res.shortcut != nil {
		r.shortcut, shortOut, err = lowerChain(st.res.shortcut, in, cfg, nextID)
		if err != nil {
			return nil, grid{}, err
		}
	}
	st.relu = st.res.relu // outGrid clamps the floor when the block ReLUs
	out := st.outGrid()
	r.mainZ = mainOut.zero
	r.shortZ = shortOut.zero
	r.out = out
	r.m0Main, r.rshMain = lowerMultiplier(float64(mainOut.scale) / float64(out.scale))
	r.m0Short, r.rshShort = lowerMultiplier(float64(shortOut.scale) / float64(out.scale))
	return r, out, nil
}

// quantizeWeightsSym maps weights onto symmetric int8 with one per-tensor
// scale: w ≈ scale·q with q ∈ [−127, 127] and zero point 0 (a zero zero
// point removes the cross terms from the integer GEMM).
func quantizeWeightsSym(w *tensor.Tensor) ([]int8, float32) {
	min, max := w.MinMax()
	absMax := float32(math.Max(math.Abs(float64(min)), math.Abs(float64(max))))
	scale := symScale(absMax)
	out := make([]int8, w.Len())
	quantizeRow(out, w.Data(), scale)
	return out, scale
}

// quantizeWeightsPerChannel maps weights onto symmetric int8 with one
// scale per output channel (axis 0). Per-channel scales let every filter
// use the full int8 range regardless of the widest filter in the tensor,
// measurably tightening quantized-vs-float agreement.
func quantizeWeightsPerChannel(w *tensor.Tensor) ([]int8, []float32) {
	outC := w.Dim(0)
	per := w.Len() / outC
	out := make([]int8, w.Len())
	scales := make([]float32, outC)
	wd := w.Data()
	for c := 0; c < outC; c++ {
		row := wd[c*per : (c+1)*per]
		var absMax float32
		for _, v := range row {
			a := float32(math.Abs(float64(v)))
			if a > absMax {
				absMax = a
			}
		}
		scales[c] = symScale(absMax)
		quantizeRow(out[c*per:(c+1)*per], row, scales[c])
	}
	return out, scales
}

func symScale(absMax float32) float32 {
	if absMax == 0 {
		absMax = 1e-6
	}
	return absMax / 127
}

func quantizeRow(dst []int8, src []float32, scale float32) {
	for i, v := range src {
		q := math.Round(float64(v) / float64(scale))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
}
