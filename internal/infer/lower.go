package infer

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// lower converts a calibrated stage into its integer form. outRange is
// the float range of this stage's output observed during calibration.
func (st *stage) lower(outRange [2]float32) (qlayer, error) {
	if st.pass != nil {
		return &qpass{label: st.label, layer: st.pass}, nil
	}
	min, max := outRange[0], outRange[1]
	if st.relu && min < 0 {
		min = 0
	}
	w, wscale := quantizeWeightsSym(st.weight)
	q := &qaffine{
		label:   st.label,
		weights: w,
		wscale:  wscale,
		bias:    st.bias,
		geom:    st.geom,
		outMin:  min,
		outMax:  max,
		relu:    st.relu,
	}
	if st.geom == nil {
		q.outC = st.weight.Dim(0)
		q.inF = st.weight.Dim(1)
	} else {
		q.outC = st.weight.Dim(0)
	}
	return q, nil
}

// quantizeWeightsSym maps weights onto symmetric int8: w ≈ scale · q with
// q ∈ [−127, 127] and zero point 0 (the standard weight scheme — a zero
// zero-point removes the cross terms from the integer GEMM).
func quantizeWeightsSym(w *tensor.Tensor) ([]int8, float32) {
	min, max := w.MinMax()
	absMax := float32(math.Max(math.Abs(float64(min)), math.Abs(float64(max))))
	if absMax == 0 {
		absMax = 1e-6
	}
	scale := absMax / 127
	out := make([]int8, w.Len())
	for i, v := range w.Data() {
		q := math.Round(float64(v) / float64(scale))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		out[i] = int8(q)
	}
	return out, scale
}

// qaffine is an integer conv or linear stage: int8 weights, uint8
// activations, int32 accumulation, requantization to the calibrated
// output grid with the fused activation clamp.
type qaffine struct {
	label   string
	weights []int8
	wscale  float32
	bias    []float32
	geom    *tensor.ConvGeom // nil => linear
	outC    int
	inF     int // linear input features
	outMin  float32
	outMax  float32
	relu    bool
}

func (q *qaffine) name() string { return q.label }

func (q *qaffine) sizeBytes() int { return len(q.weights) + 4*len(q.bias) }

func (q *qaffine) forward(x *qtensor) (*qtensor, error) {
	if q.geom != nil {
		return q.conv(x)
	}
	return q.linear(x)
}

// outGrid prepares the output quantization parameters.
func (q *qaffine) outGrid() (scale float32, zero int32) {
	min, max := q.outMin, q.outMax
	if min > 0 {
		min = 0
	}
	if max <= min {
		max = min + 1e-3
	}
	scale = (max - min) / 255
	zero = int32(math.Round(float64(-min) / float64(scale)))
	return scale, zero
}

// requant maps an int32 accumulator to the output uint8 grid:
// y_q = clamp( round(M·(acc − corrections)) + Z_y ) with
// M = S_x·S_w/S_y; the bias is folded in float for clarity.
func requant(acc int32, m float64, bias float32, yscale float32, yzero int32, relu bool) uint8 {
	f := float64(acc)*m + float64(bias)
	if relu && f < 0 {
		f = 0
	}
	y := math.Round(f/float64(yscale)) + float64(yzero)
	if y < 0 {
		y = 0
	} else if y > 255 {
		y = 255
	}
	return uint8(y)
}

func (q *qaffine) conv(x *qtensor) (*qtensor, error) {
	g := *q.geom
	if len(x.shape) != 4 || x.shape[1] != g.InC || x.shape[2] != g.InH || x.shape[3] != g.InW {
		return nil, fmt.Errorf("input %v does not match geometry %+v", x.shape, g)
	}
	n := x.shape[0]
	oh, ow := g.OutHW()
	yscale, yzero := q.outGrid()
	out := &qtensor{shape: []int{n, q.outC, oh, ow}, data: make([]uint8, n*q.outC*oh*ow), scale: yscale, zero: yzero}
	m := float64(x.scale) * float64(q.wscale)
	kArea := g.KH * g.KW
	inPlane := g.InH * g.InW
	for b := 0; b < n; b++ {
		src := x.data[b*g.InC*inPlane : (b+1)*g.InC*inPlane]
		for oc := 0; oc < q.outC; oc++ {
			ker := q.weights[oc*g.InC*kArea : (oc+1)*g.InC*kArea]
			// Integer-only inner loops: acc accumulates q_w·(q_x − Z_x)
			// via the expanded form Σ q_w·q_x − Z_x·Σ q_w.
			var kerSum int32
			for _, w := range ker {
				kerSum += int32(w)
			}
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc int32
					var taps int32 // zero-padding contributes Z_x-relative zeros
					for c := 0; c < g.InC; c++ {
						for ky := 0; ky < g.KH; ky++ {
							iy := oy*g.Stride + ky - g.Pad
							if iy < 0 || iy >= g.InH {
								continue
							}
							rowOff := c*inPlane + iy*g.InW
							kerOff := c*kArea + ky*g.KW
							for kx := 0; kx < g.KW; kx++ {
								ix := ox*g.Stride + kx - g.Pad
								if ix < 0 || ix >= g.InW {
									continue
								}
								acc += int32(ker[kerOff+kx]) * int32(src[rowOff+ix])
								taps++
							}
						}
					}
					// Subtract the zero-point term for in-bounds taps; the
					// zero-padded taps encode exact float zero, which the
					// affine input grid represents as q = Z_x, so padding
					// contributes nothing after the correction — but only
					// the in-bounds kernel sum must be corrected.
					var inKerSum int32
					if taps == int32(g.InC*kArea) {
						inKerSum = kerSum
					} else {
						inKerSum = q.kernelSumInBounds(oc, oy, ox, g)
					}
					acc -= x.zero * inKerSum
					out.data[((b*q.outC+oc)*oh+oy)*ow+ox] =
						requant(acc, m, q.bias[oc], yscale, yzero, q.relu)
				}
			}
		}
	}
	return out, nil
}

// kernelSumInBounds recomputes Σ q_w over the in-bounds taps of a border
// position.
func (q *qaffine) kernelSumInBounds(oc, oy, ox int, g tensor.ConvGeom) int32 {
	kArea := g.KH * g.KW
	ker := q.weights[oc*g.InC*kArea : (oc+1)*g.InC*kArea]
	var s int32
	for c := 0; c < g.InC; c++ {
		for ky := 0; ky < g.KH; ky++ {
			iy := oy*g.Stride + ky - g.Pad
			if iy < 0 || iy >= g.InH {
				continue
			}
			for kx := 0; kx < g.KW; kx++ {
				ix := ox*g.Stride + kx - g.Pad
				if ix < 0 || ix >= g.InW {
					continue
				}
				s += int32(ker[c*kArea+ky*g.KW+kx])
			}
		}
	}
	return s
}

func (q *qaffine) linear(x *qtensor) (*qtensor, error) {
	if len(x.shape) != 2 || x.shape[1] != q.inF {
		return nil, fmt.Errorf("input %v does not match linear (N,%d)", x.shape, q.inF)
	}
	n := x.shape[0]
	yscale, yzero := q.outGrid()
	out := &qtensor{shape: []int{n, q.outC}, data: make([]uint8, n*q.outC), scale: yscale, zero: yzero}
	m := float64(x.scale) * float64(q.wscale)
	for b := 0; b < n; b++ {
		row := x.data[b*q.inF : (b+1)*q.inF]
		for o := 0; o < q.outC; o++ {
			w := q.weights[o*q.inF : (o+1)*q.inF]
			var acc, wsum int32
			for j, wv := range w {
				acc += int32(wv) * int32(row[j])
				wsum += int32(wv)
			}
			acc -= x.zero * wsum
			out.data[b*q.outC+o] = requant(acc, m, q.bias[o], yscale, yzero, q.relu)
		}
	}
	return out, nil
}

// qpass runs a pooling/reshape layer in the integer domain. MaxPool
// commutes with the monotone affine map so it runs directly on the uint8
// payload; GlobalAvgPool and Flatten round-trip through float (averaging
// is exact in int only up to rounding; the float detour is the reference
// behaviour and these layers are a negligible fraction of compute).
type qpass struct {
	label string
	layer nn.Layer
}

func (p *qpass) name() string { return p.label }

func (p *qpass) forward(x *qtensor) (*qtensor, error) {
	if mp, ok := p.layer.(*nn.MaxPool2D); ok {
		return maxPoolInt(x, mp)
	}
	f := x.dequantize()
	out, err := p.layer.Forward(f, false)
	if err != nil {
		return nil, err
	}
	min, max := out.MinMax()
	return quantize(out, min, max), nil
}

func maxPoolInt(x *qtensor, mp *nn.MaxPool2D) (*qtensor, error) {
	// Re-run the float layer's geometry logic directly on uint8 — max is
	// order-preserving under the affine map.
	f := x.dequantize()
	out, err := mp.Forward(f, false)
	if err != nil {
		return nil, err
	}
	q := &qtensor{shape: out.Shape(), data: make([]uint8, out.Len()), scale: x.scale, zero: x.zero}
	for i, v := range out.Data() {
		y := math.Round(float64(v)/float64(x.scale)) + float64(x.zero)
		if y < 0 {
			y = 0
		} else if y > 255 {
			y = 255
		}
		q.data[i] = uint8(y)
	}
	return q, nil
}
