package infer

import (
	"math"
	"time"

	"repro/internal/tensor"
)

// grid is an affine uint8 quantization grid: r = scale·(q − zero).
type grid struct {
	scale float32
	zero  int32
}

// gridFor derives the uint8 grid covering [min, max]. Both bounds are
// clamped to include 0, so zero is always exactly representable (padding
// and ReLU floors must quantize exactly and the zero point must fit in a
// uint8 even for ranges observed entirely on one side of 0).
func gridFor(min, max float32) grid {
	if min > 0 {
		min = 0
	}
	if max < 0 {
		max = 0
	}
	if max <= min {
		max = min + 1e-3
	}
	scale := (max - min) / 255
	zero := int32(math.Round(float64(-min) / float64(scale)))
	return grid{scale: scale, zero: zero}
}

// quantize maps a float value onto the grid. NaN pins to the zero point
// (the grid's representation of 0.0): uint8(NaN) is platform-defined in
// Go, and a serving tier fed a hostile payload must stay deterministic
// across amd64 and the portable arm64 kernels, not inherit whatever the
// hardware's conversion does.
func (g grid) quantize(v float32) uint8 {
	x := math.Round(float64(v)/float64(g.scale)) + float64(g.zero)
	switch {
	case math.IsNaN(x):
		x = float64(g.zero)
	case x < 0:
		x = 0
	case x > 255:
		x = 255
	}
	return uint8(x)
}

// dequantize restores the float value of a grid point.
func (g grid) dequantize(q uint8) float32 {
	return g.scale * float32(int32(q)-g.zero)
}

// qtensor is an affine-quantized activation: uint8 payload on a grid,
// NCHW. Inside the engine every qtensor is a view into a scratch slot;
// shape and data are reused across Forward calls.
type qtensor struct {
	shape []int
	data  []uint8
	g     grid
}

func (q *qtensor) len() int { return len(q.data) }

func (q *qtensor) dim(i int) int { return q.shape[i] }

// quadPad is the spare capacity kept past every activation payload: the
// packed integer GEMM consumes operand rows in 4-tap quads and may read
// up to 3 bytes past the final row's features (multiplying zero weights),
// so layers can re-slice a payload to the kernel's padded span without
// copying. Mirrors tensor.PackedI8.PaddedK.
const quadPad = 3

// setShape resizes the qtensor in place: the shape slice is rewritten and
// the payload grown (never shrunk) to the element count, always keeping
// quadPad spare bytes of capacity for the packed-GEMM re-slice. Contents
// are stale; callers fully overwrite them.
func (q *qtensor) setShape(shape ...int) {
	q.shape = append(q.shape[:0], shape...)
	n := 1
	for _, d := range shape {
		n *= d
	}
	if cap(q.data) < n+quadPad {
		q.data = make([]uint8, n, n+quadPad)
	}
	q.data = q.data[:n]
}

// quantizeInto fills q with t quantized onto g.
func quantizeInto(q *qtensor, t *tensor.Tensor, g grid) {
	q.setShape(t.Shape()...)
	q.g = g
	quantizeRowU8(q.data, t.Data(), g)
}

// quantizeRowU8 quantizes a float row onto g. The fused quantize+pack
// conv path calls it per sample; sharing the element loop with
// quantizeInto is what keeps the fused and staged paths bit-identical.
func quantizeRowU8(dst []uint8, src []float32, g grid) {
	for i, v := range src {
		dst[i] = g.quantize(v)
	}
}

// quantizeNew allocates a fresh qtensor for t on the [min, max] grid
// (test/calibration convenience; the engine path reuses scratch slots).
func quantizeNew(t *tensor.Tensor, min, max float32) *qtensor {
	q := &qtensor{}
	quantizeInto(q, t, gridFor(min, max))
	return q
}

// dequantize restores the float view as a fresh tensor.
func (q *qtensor) dequantize() *tensor.Tensor {
	out := tensor.New(q.shape...)
	d := out.Data()
	for i, v := range q.data {
		d[i] = q.g.dequantize(v)
	}
	return out
}

// scratch is the workspace one Forward call runs in: an activation slot
// per compiled layer buffer plus shared im2col and accumulator arenas.
// Engines keep a free list of scratches (see Engine.lease); a scratch is
// only ever touched by the goroutine that leased it, which is what makes
// concurrent Forward calls on one Engine safe — the compiled layers
// themselves are immutable after Compile.
type scratch struct {
	acts []qtensor
	cols []uint8
	acc  []int32
	img  []uint8 // fused quantize+pack: per-worker quantized image lanes
	// prof, when non-nil, makes the conv/linear stages accumulate
	// per-stage wall time into it (ForwardProfile sets it for the call).
	prof *ForwardProfile
}

func newScratch(nbuf int) *scratch {
	return &scratch{acts: make([]qtensor, nbuf)}
}

// ForwardProfile is the per-stage wall-time split of one profiled
// forward pass: the im2col/gather packing work, the packed GEMM, the
// requantization, and everything else (quantize, pooling, residual adds,
// dequantize).
type ForwardProfile struct {
	Im2col  time.Duration
	GEMM    time.Duration
	Requant time.Duration
	Other   time.Duration
	Total   time.Duration
}

// Profiled stage identifiers for profSpan.
const (
	stageIm2col = iota
	stageGEMM
	stageRequant
)

// profClock samples the clock only on profiled calls; the hot path pays
// one nil check.
func profClock(s *scratch) time.Time {
	if s.prof == nil {
		return time.Time{}
	}
	return time.Now()
}

// profSpan accrues the elapsed span to a profile stage.
func profSpan(s *scratch, stage int, t0 time.Time) {
	if s.prof == nil {
		return
	}
	d := time.Since(t0)
	switch stage {
	case stageIm2col:
		s.prof.Im2col += d
	case stageGEMM:
		s.prof.GEMM += d
	case stageRequant:
		s.prof.Requant += d
	}
}

// act returns slot id shaped as requested (payload grown, contents
// stale).
func (s *scratch) act(id int, shape ...int) *qtensor {
	q := &s.acts[id]
	q.setShape(shape...)
	return q
}

// actView returns slot id as a reshaped alias of src's payload (used by
// flatten, which moves no data).
func (s *scratch) actView(id int, src *qtensor, shape ...int) *qtensor {
	q := &s.acts[id]
	q.shape = append(q.shape[:0], shape...)
	q.data = src.data
	q.g = src.g
	return q
}

// colsBuf returns the shared im2col arena grown to n elements.
func (s *scratch) colsBuf(n int) []uint8 {
	if cap(s.cols) < n {
		s.cols = make([]uint8, n)
	}
	return s.cols[:n]
}

// accBuf returns the shared int32 accumulator arena grown to n elements.
func (s *scratch) accBuf(n int) []int32 {
	if cap(s.acc) < n {
		s.acc = make([]int32, n)
	}
	return s.acc[:n]
}

// imgBuf returns the fused-quantize image arena grown to n elements.
func (s *scratch) imgBuf(n int) []uint8 {
	if cap(s.img) < n {
		s.img = make([]uint8, n)
	}
	return s.img[:n]
}
