package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// requantRef recomputes the pinned semantics independently of
// requantQ31One, using big-ish arithmetic spelled out step by step, so a
// bug in the shared scalar helper cannot hide from the kernels it
// anchors.
func requantRef(acc int32, corr int64, m0, rsh, zp, lo int32) uint8 {
	v := int64(acc) + corr
	if v > math.MaxInt32 {
		v = math.MaxInt32
	}
	if v < math.MinInt32 {
		v = math.MinInt32
	}
	// Rounding shift, half toward +∞: floor((v·m0 + 2^(rsh−1)) / 2^rsh).
	num := v*int64(m0) + int64(1)<<(uint(rsh)-1)
	r := num >> uint(rsh)
	if r > math.MaxInt32 {
		r = math.MaxInt32
	}
	if r < math.MinInt32 {
		r = math.MinInt32
	}
	y := r + int64(zp)
	if y < int64(lo) {
		y = int64(lo)
	}
	if y > 255 {
		y = 255
	}
	return uint8(y)
}

// requantCase is one fuzz draw: a channel parameter set plus accumulator
// extremes designed to hit both int32 saturations and the Q31 ties.
type requantCase struct {
	m0, rsh int32
	corr    int64
}

func randRequantCase(rng *rand.Rand) requantCase {
	c := requantCase{
		m0:   rng.Int31(),                   // [0, 2^31)
		rsh:  1 + rng.Int31n(62),            // [1, 62]
		corr: rng.Int63n(1<<33) - (1 << 32), // beyond int32 range both ways
	}
	switch rng.Intn(8) {
	case 0:
		c.m0 = 0
	case 1:
		c.m0 = math.MaxInt32
	case 2:
		c.rsh = 1
	case 3:
		c.rsh = 62
	case 4:
		c.corr = math.MaxInt32 * 2
	case 5:
		c.corr = math.MinInt32 * 2
	}
	return c
}

func randAcc(rng *rand.Rand) int32 {
	switch rng.Intn(6) {
	case 0:
		return math.MaxInt32
	case 1:
		return math.MinInt32
	case 2:
		return 0
	default:
		return int32(rng.Uint32())
	}
}

// TestRequantQ31ScalarPinned pins the rounding contract: the shared
// scalar helper must agree with the independently written reference on
// directed tie cases and saturation extremes.
func TestRequantQ31ScalarPinned(t *testing.T) {
	cases := []struct {
		acc     int32
		corr    int64
		m0, rsh int32
		zp, lo  int32
	}{
		// Q31 ties: v·m0 exactly half a quantum. With m0 = 2^30 and
		// rsh = 31, acc = 1 gives prod = 2^30 = 1<<(rsh−1): rounds up to 1.
		{1, 0, 1 << 30, 31, 0, 0},
		// Negative tie: acc = −1 gives prod = −2^30, plus 2^30 = 0: rounds
		// to 0 (half toward +∞, not away from zero).
		{-1, 0, 1 << 30, 31, 0, 0},
		// Odd multiples of the tie: ±3·2^30.
		{3, 0, 1 << 30, 31, 0, 0},
		{-3, 0, 1 << 30, 31, 0, 0},
		// Saturating adds on both sides.
		{math.MaxInt32, 1 << 40, 1 << 30, 31, 0, 0},
		{math.MinInt32, -(1 << 40), 1 << 30, 31, 10, 0},
		// Output saturation through a huge multiplier and tiny shift.
		{math.MaxInt32, 0, math.MaxInt32, 1, 0, 0},
		{math.MinInt32, 0, math.MaxInt32, 1, 7, 3},
		// Degenerate zero multiplier: everything lands on zp (clamped).
		{12345, 678, 0, 31, 100, 0},
		{12345, 678, 0, 31, 100, 200},
	}
	for _, c := range cases {
		got := requantQ31One(c.acc, c.corr, c.m0, c.rsh, c.zp, c.lo)
		want := requantRef(c.acc, c.corr, c.m0, c.rsh, c.zp, c.lo)
		if got != want {
			t.Errorf("requantQ31One(%d, %d, %d, %d, %d, %d) = %d, want %d",
				c.acc, c.corr, c.m0, c.rsh, c.zp, c.lo, got, want)
		}
	}
	// The documented tie direction, explicitly: +0.5 → 1, −0.5 → 0.
	if got := requantQ31One(1, 0, 1<<30, 31, 0, 0); got != 1 {
		t.Errorf("positive tie rounded to %d, want 1", got)
	}
	if got := requantQ31One(-1, 0, 1<<30, 31, 0, 0); got != 0 {
		t.Errorf("negative tie rounded to %d, want 0 (half toward +∞)", got)
	}
}

// runBothDispatches runs fn under the portable and (when available) the
// assembly dispatch.
func runBothDispatches(t *testing.T, fn func(t *testing.T, simd bool)) {
	t.Helper()
	for _, on := range []bool{false, true} {
		prev := SetSIMD(on)
		if on && !SIMDActive() {
			SetSIMD(prev)
			t.Log("no SIMD kernels on this host; asm side skipped")
			continue
		}
		fn(t, on)
		SetSIMD(prev)
	}
}

// TestRequantQ31RowsFuzz drives the rows kernel across random shapes,
// strides and parameter draws (including saturation extremes and ties)
// and demands bit-identity with the scalar reference under both
// dispatches.
func TestRequantQ31RowsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runBothDispatches(t, func(t *testing.T, simd bool) {
		for trial := 0; trial < 200; trial++ {
			m := 1 + rng.Intn(9)
			nc := 1 + rng.Intn(21)
			lda := nc + rng.Intn(5)
			ldd := nc + rng.Intn(5)
			zp := int32(rng.Intn(256))
			lo := int32(rng.Intn(256))
			m0 := make([]int32, nc)
			rsh := make([]int32, nc)
			corr := make([]int64, nc)
			for c := range m0 {
				cs := randRequantCase(rng)
				m0[c], rsh[c], corr[c] = cs.m0, cs.rsh, cs.corr
			}
			acc := make([]int32, (m-1)*lda+nc)
			for i := range acc {
				acc[i] = randAcc(rng)
			}
			dst := make([]uint8, (m-1)*ldd+nc)
			RequantQ31Rows(dst, acc, m0, rsh, corr, zp, lo, m, nc, lda, ldd)
			for i := 0; i < m; i++ {
				for c := 0; c < nc; c++ {
					want := requantRef(acc[i*lda+c], corr[c], m0[c], rsh[c], zp, lo)
					if got := dst[i*ldd+c]; got != want {
						t.Fatalf("simd=%v trial %d: rows(%d,%d) lda=%d ldd=%d at (%d,%d): got %d, want %d (acc=%d m0=%d rsh=%d corr=%d zp=%d lo=%d)",
							simd, trial, m, nc, lda, ldd, i, c, got, want,
							acc[i*lda+c], m0[c], rsh[c], corr[c], zp, lo)
					}
				}
			}
		}
	})
}

// TestRequantQ31TransposeFuzz does the same for the transposing conv
// epilogue form, covering position counts around the 8-wide tile edge.
func TestRequantQ31TransposeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	runBothDispatches(t, func(t *testing.T, simd bool) {
		for trial := 0; trial < 200; trial++ {
			np := 1 + rng.Intn(40)
			nc := 1 + rng.Intn(13)
			lda := nc + rng.Intn(4)
			ldd := np + rng.Intn(4)
			zp := int32(rng.Intn(256))
			lo := int32(rng.Intn(256))
			m0 := make([]int32, nc)
			rsh := make([]int32, nc)
			corr := make([]int64, nc)
			for c := range m0 {
				cs := randRequantCase(rng)
				m0[c], rsh[c], corr[c] = cs.m0, cs.rsh, cs.corr
			}
			acc := make([]int32, (np-1)*lda+nc)
			for i := range acc {
				acc[i] = randAcc(rng)
			}
			dst := make([]uint8, (nc-1)*ldd+np)
			RequantQ31Transpose(dst, acc, m0, rsh, corr, zp, lo, np, nc, lda, ldd)
			for p := 0; p < np; p++ {
				for c := 0; c < nc; c++ {
					want := requantRef(acc[p*lda+c], corr[c], m0[c], rsh[c], zp, lo)
					if got := dst[c*ldd+p]; got != want {
						t.Fatalf("simd=%v trial %d: trans(%d,%d) lda=%d ldd=%d at (p=%d,c=%d): got %d, want %d (acc=%d m0=%d rsh=%d corr=%d zp=%d lo=%d)",
							simd, trial, np, nc, lda, ldd, p, c, got, want,
							acc[p*lda+c], m0[c], rsh[c], corr[c], zp, lo)
					}
				}
			}
		}
	})
}

// TestRequantQ31PerTensor exercises the broadcast convenience form over
// lengths straddling the 4-wide grouping.
func TestRequantQ31PerTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	runBothDispatches(t, func(t *testing.T, simd bool) {
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.Intn(70)
			cs := randRequantCase(rng)
			zp := int32(rng.Intn(256))
			lo := int32(rng.Intn(256))
			acc := make([]int32, n)
			for i := range acc {
				acc[i] = randAcc(rng)
			}
			dst := make([]uint8, n)
			RequantQ31(dst, acc, cs.m0, cs.rsh, cs.corr, zp, lo)
			for i := range dst {
				want := requantRef(acc[i], cs.corr, cs.m0, cs.rsh, zp, lo)
				if dst[i] != want {
					t.Fatalf("simd=%v trial %d: perTensor n=%d at %d: got %d, want %d",
						simd, trial, n, i, dst[i], want)
				}
			}
		}
	})
}

// TestRequantQ31ContractPanics pins the argument contract: domain
// violations must fail loudly, not corrupt memory.
func TestRequantQ31ContractPanics(t *testing.T) {
	dst := make([]uint8, 8)
	acc := make([]int32, 8)
	ok := []int32{1 << 30}
	cases := []struct {
		name string
		fn   func()
	}{
		{"rsh0", func() {
			RequantQ31Rows(dst, acc, ok, []int32{0}, []int64{0}, 0, 0, 1, 1, 1, 1)
		}},
		{"rsh63", func() {
			RequantQ31Rows(dst, acc, ok, []int32{63}, []int64{0}, 0, 0, 1, 1, 1, 1)
		}},
		{"negM0", func() {
			RequantQ31Rows(dst, acc, []int32{-1}, []int32{31}, []int64{0}, 0, 0, 1, 1, 1, 1)
		}},
		{"zp256", func() {
			RequantQ31Rows(dst, acc, ok, []int32{31}, []int64{0}, 256, 0, 1, 1, 1, 1)
		}},
		{"shortAcc", func() {
			RequantQ31Rows(dst, acc[:3], ok, []int32{31}, []int64{0}, 0, 0, 2, 2, 2, 2)
		}},
		{"shortDstTrans", func() {
			RequantQ31Transpose(dst[:3], acc, ok, []int32{31}, []int64{0}, 0, 0, 4, 1, 1, 4)
		}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func BenchmarkRequantQ31Transpose(b *testing.B) {
	// The conv epilogue shape: one 256-position tile across 64 channels.
	const np, nc = 256, 64
	m0 := make([]int32, nc)
	rsh := make([]int32, nc)
	corr := make([]int64, nc)
	for c := range m0 {
		m0[c] = 1<<30 + int32(c)*12345
		rsh[c] = 38
		corr[c] = int64(c) * 1000
	}
	acc := make([]int32, np*nc)
	for i := range acc {
		acc[i] = int32(i*2654435761) % (1 << 20)
	}
	dst := make([]uint8, nc*np)
	for _, simd := range []bool{false, true} {
		prev := SetSIMD(simd)
		if simd && !SIMDActive() {
			SetSIMD(prev)
			continue
		}
		b.Run(fmt.Sprintf("simd=%v", simd), func(b *testing.B) {
			b.SetBytes(np * nc * 4)
			for i := 0; i < b.N; i++ {
				RequantQ31Transpose(dst, acc, m0, rsh, corr, 3, 0, np, nc, nc, np)
			}
		})
		SetSIMD(prev)
	}
}

// TestRequantZipTransposeModel validates, on any architecture, the ZIP
// cascade the NEON transposed-form kernel (kernels_requant_arm64.s) uses
// to turn four position-major int32x4 results into channel-major rows.
// zip1/zip2 are modeled exactly per the ARM pseudocode on .4S (int32
// lanes) and .2D (adjacent int32 pairs); the cascade must be a 4×4
// transpose. This pins the algebra so an encoding or operand-order slip
// in the assembly cannot hide behind "only fails under qemu".
func TestRequantZipTransposeModel(t *testing.T) {
	type vec = [4]int32
	zip1s := func(n, m vec) vec { return vec{n[0], m[0], n[1], m[1]} }
	zip2s := func(n, m vec) vec { return vec{n[2], m[2], n[3], m[3]} }
	zip1d := func(n, m vec) vec { return vec{n[0], n[1], m[0], m[1]} }
	zip2d := func(n, m vec) vec { return vec{n[2], n[3], m[2], m[3]} }

	// Position p's requantized quad: lane c holds channel c's value.
	var pos [4]vec
	for p := range pos {
		for c := range pos[p] {
			pos[p][c] = int32(100*p + c)
		}
	}
	v0 := zip1s(pos[0], pos[1])
	v1 := zip2s(pos[0], pos[1])
	v2 := zip1s(pos[2], pos[3])
	v3 := zip2s(pos[2], pos[3])
	ch := [4]vec{zip1d(v0, v2), zip2d(v0, v2), zip1d(v1, v3), zip2d(v1, v3)}
	for c := 0; c < 4; c++ {
		for p := 0; p < 4; p++ {
			if got, want := ch[c][p], pos[p][c]; got != want {
				t.Fatalf("channel %d position %d: got %d want %d", c, p, got, want)
			}
		}
	}
}
