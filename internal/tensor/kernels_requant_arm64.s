//go:build arm64

#include "textflag.h"

// NEON Q31 requantization kernels (see requant.go for the pinned
// semantics). The per-lane chain maps 1:1 onto NEON saturating ops:
//
//	sxtl/sxtl2 widen the four int32 accumulators to 2×int64 → add
//	corr (2D) → sqxtn/sqxtn2 narrow with saturation = sat32(acc+corr)
//	→ smull/smull2 by m0 (exact 64-bit products) → srshl by −rsh
//	(ARM's rounding shift computes (x + 2^(rsh−1)) >> rsh, exactly
//	the pinned round-half-toward-+∞) → sqxtn/sqxtn2 = the int32
//	output saturation → smax (lo−zp) / smin (255−zp) → add zp.
//
// The clamp runs before the zero-point add (against shifted bounds),
// which is equivalent to clamping [lo, 255] after it — see requant.go —
// and keeps every intermediate inside int32. Per channel group of four,
// the parameters live in V16–V21 (m0, corr ×2, −rsh ×2) with the
// zp/lo-derived broadcasts in V28–V30; the chain itself uses V0–V3.
// Bit-identical to the portable reference for every input in the
// contract domain.
//
// The signed widening/saturating instructions are missing from the Go
// 1.24 arm64 assembler, hence the WORD encodings (ARM mnemonic on each;
// operand roles: op vd, vn, vm).

// func requantQ31RowsNEON(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, m, nc4, lda, ldd int)
TEXT ·requantQ31RowsNEON(SB), NOSPLIT, $0-88
	MOVD dst+0(FP), R0
	MOVD acc+8(FP), R1
	MOVD m0+16(FP), R2
	MOVD rsh+24(FP), R3
	MOVD corr+32(FP), R4
	MOVD zp+40(FP), R5
	MOVD lo+48(FP), R6
	MOVD m+56(FP), R7
	MOVD nc4+64(FP), R8
	MOVD lda+72(FP), R9
	LSL  $2, R9, R9           // accumulator row stride in bytes
	MOVD ldd+80(FP), R10
	SUB  R5, R6, R11          // lo − zp
	MOVD $255, R12
	SUB  R5, R12, R12         // 255 − zp
	VDUP R5, V28.S4
	VDUP R11, V29.S4
	VDUP R12, V30.S4
	VEOR V31.B16, V31.B16, V31.B16
	MOVD $0, R13              // g: channel group base

rowsgroup:
	VLD1.P 16(R2), [V16.S4]          // m0[g..g+3]
	VLD1.P 16(R3), [V19.S4]          // rsh[g..g+3]
	VLD1.P 32(R4), [V17.D2, V18.D2]  // corr[g..g+3]
	WORD $0x0F20A674 // sxtl  v20.2d, v19.2s
	WORD $0x4F20A675 // sxtl2 v21.2d, v19.4s
	VSUB V20.D2, V31.D2, V20.D2      // −rsh, low channel pair
	VSUB V21.D2, V31.D2, V21.D2      // −rsh, high channel pair
	ADD  R13<<2, R1, R17             // &acc[g]
	ADD  R13, R0, R19                // &dst[g]
	MOVD R7, R20                     // remaining rows

rowsrow:
	VLD1 (R17), [V0.S4]
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V3.S4
	WORD $0x0E612863 // xtn v3.4h, v3.4s
	WORD $0x0E212863 // xtn v3.8b, v3.8h
	VMOV V3.S[0], R21
	MOVW R21, (R19)
	ADD  R9, R17, R17
	ADD  R10, R19, R19
	SUB  $1, R20, R20
	CBNZ R20, rowsrow

	ADD $4, R13, R13
	CMP R8, R13
	BLT rowsgroup
	RET

// func requantQ31TransNEON(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, np8, nc4, lda, ldd int)
//
// Position-major accumulators → channel-major bytes. Each tile
// requantizes 8 positions × 4 channels into V8–V15 (one int32x4 result
// per position), transposes the two 4×4 int32 blocks with ZIP cascades
// into per-channel rows (positions 0–3 in V4–V7, 4–7 in V22–V25),
// narrows each channel's eight values to bytes (already clamped to
// [0, 255], so truncating xtn is exact) and stores one contiguous
// 8-byte run per channel.
TEXT ·requantQ31TransNEON(SB), NOSPLIT, $0-88
	MOVD dst+0(FP), R0
	MOVD acc+8(FP), R1
	MOVD m0+16(FP), R2
	MOVD rsh+24(FP), R3
	MOVD corr+32(FP), R4
	MOVD zp+40(FP), R5
	MOVD lo+48(FP), R6
	MOVD np8+56(FP), R7
	MOVD nc4+64(FP), R8
	MOVD lda+72(FP), R9
	LSL  $2, R9, R9           // position stride in bytes
	MOVD ldd+80(FP), R10
	SUB  R5, R6, R11
	MOVD $255, R12
	SUB  R5, R12, R12
	VDUP R5, V28.S4
	VDUP R11, V29.S4
	VDUP R12, V30.S4
	VEOR V31.B16, V31.B16, V31.B16
	MOVD $0, R13              // g: channel group base

transgroup:
	VLD1.P 16(R2), [V16.S4]
	VLD1.P 16(R3), [V19.S4]
	VLD1.P 32(R4), [V17.D2, V18.D2]
	WORD $0x0F20A674 // sxtl  v20.2d, v19.2s
	WORD $0x4F20A675 // sxtl2 v21.2d, v19.4s
	VSUB V20.D2, V31.D2, V20.D2
	VSUB V21.D2, V31.D2, V21.D2
	ADD  R13<<2, R1, R17      // &acc[g], walks 8 positions per tile
	MUL  R10, R13, R19
	ADD  R0, R19, R19         // &dst[g·ldd]: channel g's plane run
	MOVD R7, R20              // remaining positions (multiple of 8)

transtile:
	// Eight chain runs; the final native VADD (+zp) retargets each
	// position's result register, so the WORD body stays fixed.
	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V8.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V9.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V10.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V11.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V12.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V13.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V14.S4

	VLD1 (R17), [V0.S4]
	ADD  R9, R17, R17
	WORD $0x0F20A401 // sxtl  v1.2d, v0.2s
	WORD $0x4F20A402 // sxtl2 v2.2d, v0.4s
	VADD V17.D2, V1.D2, V1.D2
	VADD V18.D2, V2.D2, V2.D2
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x0EB0C061 // smull  v1.2d, v3.2s, v16.2s
	WORD $0x4EB0C062 // smull2 v2.2d, v3.4s, v16.4s
	WORD $0x4EF45421 // srshl  v1.2d, v1.2d, v20.2d
	WORD $0x4EF55442 // srshl  v2.2d, v2.2d, v21.2d
	WORD $0x0EA14823 // sqxtn  v3.2s, v1.2d
	WORD $0x4EA14843 // sqxtn2 v3.4s, v2.2d
	WORD $0x4EBD6463 // smax   v3.4s, v3.4s, v29.4s
	WORD $0x4EBE6C63 // smin   v3.4s, v3.4s, v30.4s
	VADD V28.S4, V3.S4, V15.S4

	// Transpose positions 0–3 (V8–V11): 4×4 int32 ZIP cascade into
	// per-channel rows V4–V7.
	VZIP1 V9.S4, V8.S4, V0.S4
	VZIP2 V9.S4, V8.S4, V1.S4
	VZIP1 V11.S4, V10.S4, V2.S4
	VZIP2 V11.S4, V10.S4, V3.S4
	VZIP1 V2.D2, V0.D2, V4.D2
	VZIP2 V2.D2, V0.D2, V5.D2
	VZIP1 V3.D2, V1.D2, V6.D2
	VZIP2 V3.D2, V1.D2, V7.D2
	// Positions 4–7 (V12–V15) into V22–V25.
	VZIP1 V13.S4, V12.S4, V0.S4
	VZIP2 V13.S4, V12.S4, V1.S4
	VZIP1 V15.S4, V14.S4, V2.S4
	VZIP2 V15.S4, V14.S4, V3.S4
	VZIP1 V2.D2, V0.D2, V22.D2
	VZIP2 V2.D2, V0.D2, V23.D2
	VZIP1 V3.D2, V1.D2, V24.D2
	VZIP2 V3.D2, V1.D2, V25.D2

	// Per channel: merge the two position quads to eight halfwords,
	// narrow to bytes, store one 8-byte run.
	MOVD R19, R21
	WORD $0x0E612881 // xtn  v1.4h, v4.4s
	WORD $0x4E612AC1 // xtn2 v1.8h, v22.4s
	WORD $0x0E212821 // xtn  v1.8b, v1.8h
	VMOV V1.D[0], R22
	MOVD R22, (R21)
	ADD  R10, R21, R21
	WORD $0x0E6128A1 // xtn  v1.4h, v5.4s
	WORD $0x4E612AE1 // xtn2 v1.8h, v23.4s
	WORD $0x0E212821 // xtn  v1.8b, v1.8h
	VMOV V1.D[0], R22
	MOVD R22, (R21)
	ADD  R10, R21, R21
	WORD $0x0E6128C1 // xtn  v1.4h, v6.4s
	WORD $0x4E612B01 // xtn2 v1.8h, v24.4s
	WORD $0x0E212821 // xtn  v1.8b, v1.8h
	VMOV V1.D[0], R22
	MOVD R22, (R21)
	ADD  R10, R21, R21
	WORD $0x0E6128E1 // xtn  v1.4h, v7.4s
	WORD $0x4E612B21 // xtn2 v1.8h, v25.4s
	WORD $0x0E212821 // xtn  v1.8b, v1.8h
	VMOV V1.D[0], R22
	MOVD R22, (R21)

	ADD $8, R19, R19
	SUB $8, R20, R20
	CBNZ R20, transtile

	ADD $4, R13, R13
	CMP R8, R13
	BLT transgroup
	RET
