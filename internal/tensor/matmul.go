package tensor

import "fmt"

// MatMul returns the matrix product a·b for 2-D tensors. It parallelizes
// over rows of a and uses a k-inner loop ordered for cache-friendly access
// to b.
func MatMul(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmul wants rank-2 operands, got %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmul inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	ParallelFor(m, func(i int) {
		orow := od[i*n : (i+1)*n]
		arow := ad[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	return out, nil
}

// MatMulTransA returns aᵀ·b where a is (k, m) and b is (k, n), producing
// (m, n). Used for weight gradients without materializing transposes.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTA wants rank-2 operands, got %v x %v", ErrShape, a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTA inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	ParallelFor(m, func(i int) {
		orow := od[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := ad[p*m+i]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	})
	return out, nil
}

// MatMulTransB returns a·bᵀ where a is (m, k) and b is (n, k), producing
// (m, n). Used for input gradients without materializing transposes.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, fmt.Errorf("%w: matmulTB wants rank-2 operands, got %v x %v", ErrShape, a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, fmt.Errorf("%w: matmulTB inner dims %d != %d", ErrShape, k, k2)
	}
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	ParallelFor(m, func(i int) {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	})
	return out, nil
}
