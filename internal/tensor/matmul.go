package tensor

import "fmt"

// GEMM blocking parameters. Column blocks keep one output row segment plus
// four B-row segments inside L1/L2 while the AXPY kernels stream them; row
// blocks bound task granularity so ParallelFor has enough chunks to balance
// even when one dimension is small (e.g. conv GEMMs with 16 output rows or
// linear backward with narrow outputs).
const (
	gemmColBlock = 2048
	gemmRowBlock = 8
)

func blocks(n, block int) int { return (n + block - 1) / block }

// checkMatMul2D validates rank-2 operands sharing inner dimension k and
// returns (m, k, n) for out = (m, n).
func checkMatMul2D(op string, a, b *Tensor, aT, bT bool) (m, k, n int, err error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return 0, 0, 0, fmt.Errorf("%w: %s wants rank-2 operands, got %v x %v", ErrShape, op, a.shape, b.shape)
	}
	m, k = a.shape[0], a.shape[1]
	if aT {
		m, k = k, m
	}
	k2, n := b.shape[0], b.shape[1]
	if bT {
		k2, n = n, k2
	}
	if k != k2 {
		return 0, 0, 0, fmt.Errorf("%w: %s inner dims %d != %d", ErrShape, op, k, k2)
	}
	return m, k, n, nil
}

func checkDst(op string, dst *Tensor, m, n int) error {
	if dst.Rank() != 2 || dst.shape[0] != m || dst.shape[1] != n {
		return fmt.Errorf("%w: %s destination %v, want (%d, %d)", ErrShape, op, dst.shape, m, n)
	}
	return nil
}

// MatMul returns the matrix product a·b for 2-D tensors.
func MatMul(a, b *Tensor) (*Tensor, error) {
	m, _, n, err := checkMatMul2D("matmul", a, b, false, false)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matMulKernel(out.data, a.data, b.data, m, a.shape[1], n)
	return out, nil
}

// MatMulInto computes dst = a·b without allocating, overwriting dst. dst
// must have shape (a.rows, b.cols) and must not alias a or b.
func MatMulInto(dst, a, b *Tensor) error {
	m, k, n, err := checkMatMul2D("matmul", a, b, false, false)
	if err != nil {
		return err
	}
	if err := checkDst("matmul", dst, m, n); err != nil {
		return err
	}
	matMulKernel(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matMulKernel computes od = ad·bd for row-major (m, k)·(k, n), blocked
// over output tiles and driven through the worker pool. Each output element
// is written by exactly one task with a fixed accumulation order, so the
// result is identical for any worker count. The dense path deliberately has
// no zero-skip branch: on real weight and activation matrices the branch
// mispredicts far more than it saves (sparse fast paths live only where
// gradients are provably sparse, e.g. ReLU-masked depthwise backward).
//
// When the shape amortizes it (PackWorthF32), B is repacked per call into
// pooled column panels and the product runs the register-blocked 4×16
// micro-kernels (matmul_packed.go) instead of the AXPY loop below.
func matMulKernel(od, ad, bd []float32, m, k, n int) {
	if PackWorthF32(m, k, n) {
		pb := f32PackPool.Get().(*PackedF32)
		if pb.PackB(bd[:k*n], k, n) == nil {
			matMulF32PackedDriver(od, ad, pb, m, k, 1)
			f32PackPool.Put(pb)
			return
		}
		f32PackPool.Put(pb)
	}
	matMulAXPYKernel(od, ad, bd, m, k, n)
}

// matMulAXPYKernel is the direct AXPY-shaped path, kept for shapes below
// the packing threshold.
func matMulAXPYKernel(od, ad, bd []float32, m, k, n int) {
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	ParallelFor(mb*nb, func(t int) {
		ib, jb := t/nb, t%nb
		i1 := min((ib+1)*gemmRowBlock, m)
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		for i := ib * gemmRowBlock; i < i1; i++ {
			orow := od[i*n+j0 : i*n+j1]
			for j := range orow {
				orow[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			p := 0
			for ; p+3 < k; p += 4 {
				axpy4(orow,
					bd[p*n+j0:p*n+j1],
					bd[(p+1)*n+j0:(p+1)*n+j1],
					bd[(p+2)*n+j0:(p+2)*n+j1],
					bd[(p+3)*n+j0:(p+3)*n+j1],
					arow[p], arow[p+1], arow[p+2], arow[p+3])
			}
			for ; p < k; p++ {
				axpy1(orow, bd[p*n+j0:p*n+j1], arow[p])
			}
		}
	})
}

// MatMulTransA returns aᵀ·b where a is (k, m) and b is (k, n), producing
// (m, n). Used for weight gradients without materializing transposes.
func MatMulTransA(a, b *Tensor) (*Tensor, error) {
	m, _, n, err := checkMatMul2D("matmulTA", a, b, true, false)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matMulTransAKernel(out.data, a.data, b.data, m, a.shape[0], n)
	return out, nil
}

// MatMulTransAInto computes dst = aᵀ·b without allocating. dst must have
// shape (a.cols, b.cols) and must not alias a or b.
func MatMulTransAInto(dst, a, b *Tensor) error {
	m, k, n, err := checkMatMul2D("matmulTA", a, b, true, false)
	if err != nil {
		return err
	}
	if err := checkDst("matmulTA", dst, m, n); err != nil {
		return err
	}
	matMulTransAKernel(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matMulTransAKernel computes od = adᵀ·bd where ad is (k, m): identical
// blocking to matMulKernel, with the A element gathered down a column.
// Shapes above the packing threshold take the packed micro-kernels — the
// strided-A orientation reuses the same 4×16 kernel with swapped operand
// strides (MatMulF32PackedTransAInto).
func matMulTransAKernel(od, ad, bd []float32, m, k, n int) {
	if PackWorthF32(m, k, n) {
		pb := f32PackPool.Get().(*PackedF32)
		if pb.PackB(bd[:k*n], k, n) == nil {
			matMulF32PackedDriver(od, ad, pb, m, 1, m)
			f32PackPool.Put(pb)
			return
		}
		f32PackPool.Put(pb)
	}
	matMulTransAAXPYKernel(od, ad, bd, m, k, n)
}

func matMulTransAAXPYKernel(od, ad, bd []float32, m, k, n int) {
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	ParallelFor(mb*nb, func(t int) {
		ib, jb := t/nb, t%nb
		i1 := min((ib+1)*gemmRowBlock, m)
		j0 := jb * gemmColBlock
		j1 := min(j0+gemmColBlock, n)
		for i := ib * gemmRowBlock; i < i1; i++ {
			orow := od[i*n+j0 : i*n+j1]
			for j := range orow {
				orow[j] = 0
			}
			p := 0
			for ; p+3 < k; p += 4 {
				axpy4(orow,
					bd[p*n+j0:p*n+j1],
					bd[(p+1)*n+j0:(p+1)*n+j1],
					bd[(p+2)*n+j0:(p+2)*n+j1],
					bd[(p+3)*n+j0:(p+3)*n+j1],
					ad[p*m+i], ad[(p+1)*m+i], ad[(p+2)*m+i], ad[(p+3)*m+i])
			}
			for ; p < k; p++ {
				axpy1(orow, bd[p*n+j0:p*n+j1], ad[p*m+i])
			}
		}
	})
}

// MatMulTransB returns a·bᵀ where a is (m, k) and b is (n, k), producing
// (m, n). Used for input gradients without materializing transposes.
func MatMulTransB(a, b *Tensor) (*Tensor, error) {
	m, _, n, err := checkMatMul2D("matmulTB", a, b, false, true)
	if err != nil {
		return nil, err
	}
	out := New(m, n)
	matMulTransBKernel(out.data, a.data, b.data, m, a.shape[1], n)
	return out, nil
}

// MatMulTransBInto computes dst = a·bᵀ without allocating. dst must have
// shape (a.rows, b.rows) and must not alias a or b.
func MatMulTransBInto(dst, a, b *Tensor) error {
	m, k, n, err := checkMatMul2D("matmulTB", a, b, false, true)
	if err != nil {
		return err
	}
	if err := checkDst("matmulTB", dst, m, n); err != nil {
		return err
	}
	matMulTransBKernel(dst.data, a.data, b.data, m, k, n)
	return nil
}

// matMulTransBKernel computes od = ad·bdᵀ where bd is (n, k). Below the
// packing threshold both operands are traversed along contiguous k-rows,
// each output element one SIMD-friendly inner product; larger shapes pack
// bdᵀ into column panels so B is streamed once per four output rows
// instead of once per row.
func matMulTransBKernel(od, ad, bd []float32, m, k, n int) {
	if PackWorthF32(m, k, n) {
		pb := f32PackPool.Get().(*PackedF32)
		if pb.PackBT(bd[:n*k], k, n) == nil {
			matMulF32PackedDriver(od, ad, pb, m, k, 1)
			f32PackPool.Put(pb)
			return
		}
		f32PackPool.Put(pb)
	}
	ParallelFor(m, func(i int) {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := range orow {
			orow[j] = dot(arow, bd[j*k:(j+1)*k])
		}
	})
}
