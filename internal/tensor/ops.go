package tensor

import (
	"fmt"
	"math"
)

// Add adds o into t element-wise, in place.
func (t *Tensor) Add(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: add %v to %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] += v
	}
	return nil
}

// Sub subtracts o from t element-wise, in place.
func (t *Tensor) Sub(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: sub %v from %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] -= v
	}
	return nil
}

// Mul multiplies t by o element-wise, in place.
func (t *Tensor) Mul(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: mul %v by %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] *= v
	}
	return nil
}

// Scale multiplies every element by s, in place.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScalar adds s to every element, in place.
func (t *Tensor) AddScalar(s float32) {
	for i := range t.data {
		t.data[i] += s
	}
}

// AxpyFrom computes t += alpha * o, in place.
func (t *Tensor) AxpyFrom(alpha float32, o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: axpy %v into %v", ErrShape, o.shape, t.shape)
	}
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
	return nil
}

// Apply replaces every element x with f(x), in place.
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// Sum returns the sum of all elements as float64 for numerical stability.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// AbsMean returns the mean of |x| over all elements.
func (t *Tensor) AbsMean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s / float64(len(t.data))
}

// MinMax returns the minimum and maximum element. For an empty tensor it
// returns (0, 0).
func (t *Tensor) MinMax() (min, max float32) {
	if len(t.data) == 0 {
		return 0, 0
	}
	min, max = t.data[0], t.data[0]
	for _, v := range t.data[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns, for a 2-D tensor, the column index of the maximum in
// row r.
func (t *Tensor) ArgMaxRow(r int) int {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRow on rank-%d tensor", t.Rank()))
	}
	cols := t.shape[1]
	row := t.data[r*cols : (r+1)*cols]
	bi := 0
	bv := row[0]
	for i := 1; i < len(row); i++ {
		if row[i] > bv {
			bv = row[i]
			bi = i
		}
	}
	return bi
}

// HasNaN reports whether any element is NaN or ±Inf.
func (t *Tensor) HasNaN() bool {
	for _, v := range t.data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return true
		}
	}
	return false
}

// ClampInPlace limits every element to [lo, hi].
func (t *Tensor) ClampInPlace(lo, hi float32) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}
