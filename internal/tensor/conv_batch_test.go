package tensor

import (
	"math"
	"testing"
)

func batchGeoms() []ConvGeom {
	return []ConvGeom{
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 7, InW: 5, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 6, InW: 6, KH: 1, KW: 1, Stride: 1, Pad: 0},
		{InC: 4, InH: 9, InW: 9, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 2, InH: 8, InW: 8, KH: 2, KW: 2, Stride: 2, Pad: 0},
	}
}

// TestIm2ColBatchMatchesPerSample checks that the batched packing is
// column-for-column identical to running the per-sample Im2Col on each
// image: column i·S+s of the batch matrix must equal column s of sample i.
func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	rng := NewRNG(42)
	for _, g := range batchGeoms() {
		const n = 3
		x := New(n, g.InC, g.InH, g.InW)
		x.FillNormal(rng, 0, 1)
		cols, err := Im2ColBatch(x, g)
		if err != nil {
			t.Fatalf("Im2ColBatch(%+v): %v", g, err)
		}
		oh, ow := g.OutHW()
		s := oh * ow
		kdim := g.InC * g.KH * g.KW
		inSz := g.InC * g.InH * g.InW
		for i := 0; i < n; i++ {
			img := MustFromSlice(x.Data()[i*inSz:(i+1)*inSz], g.InC, g.InH, g.InW)
			want, err := Im2Col(img, g)
			if err != nil {
				t.Fatalf("Im2Col: %v", err)
			}
			for r := 0; r < kdim; r++ {
				for c := 0; c < s; c++ {
					got := cols.At(r, i*s+c)
					if got != want.At(r, c) {
						t.Fatalf("geom %+v sample %d: col[%d,%d] = %v, want %v", g, i, r, c, got, want.At(r, c))
					}
				}
			}
		}
	}
}

// TestIm2ColBatchIntoOverwritesStaleScratch ensures the Into variant fully
// overwrites a reused destination: packing into a poisoned buffer must
// yield the same matrix as packing into a fresh one (padding zeros
// included).
func TestIm2ColBatchIntoOverwritesStaleScratch(t *testing.T) {
	rng := NewRNG(43)
	for _, g := range batchGeoms() {
		const n = 2
		x := New(n, g.InC, g.InH, g.InW)
		x.FillNormal(rng, 0, 1)
		fresh, err := Im2ColBatch(x, g)
		if err != nil {
			t.Fatalf("Im2ColBatch: %v", err)
		}
		oh, ow := g.OutHW()
		stale := New(g.InC*g.KH*g.KW, n*oh*ow)
		stale.Fill(float32(math.NaN()))
		if err := Im2ColBatchInto(stale, x, g); err != nil {
			t.Fatalf("Im2ColBatchInto: %v", err)
		}
		matEq(t, stale, fresh, 0)
	}
}

// TestCol2ImBatchMatchesPerSample checks the batched adjoint against the
// per-sample Col2Im scatter, including reuse of a poisoned destination.
func TestCol2ImBatchMatchesPerSample(t *testing.T) {
	rng := NewRNG(44)
	for _, g := range batchGeoms() {
		const n = 3
		oh, ow := g.OutHW()
		s := oh * ow
		kdim := g.InC * g.KH * g.KW
		cols := New(kdim, n*s)
		cols.FillNormal(rng, 0, 1)
		dst := New(n, g.InC, g.InH, g.InW)
		dst.Fill(float32(math.NaN()))
		if err := Col2ImBatchInto(dst, cols, g); err != nil {
			t.Fatalf("Col2ImBatchInto(%+v): %v", g, err)
		}
		inSz := g.InC * g.InH * g.InW
		for i := 0; i < n; i++ {
			// Extract sample i's columns into a per-sample matrix.
			sub := New(kdim, s)
			for r := 0; r < kdim; r++ {
				for c := 0; c < s; c++ {
					sub.Set(cols.At(r, i*s+c), r, c)
				}
			}
			want, err := Col2Im(sub, g)
			if err != nil {
				t.Fatalf("Col2Im: %v", err)
			}
			got := dst.Data()[i*inSz : (i+1)*inSz]
			for j, w := range want.Data() {
				if math.Abs(float64(got[j]-w)) > 1e-6 {
					t.Fatalf("geom %+v sample %d: elem %d = %v, want %v", g, i, j, got[j], w)
				}
			}
		}
	}
}

// TestBatchConvRoundTripGEMM runs the full batched conv forward path
// (im2col + GEMM) against ConvDirect per sample, the same cross-check the
// per-sample path has, to pin the layout conventions end to end.
func TestBatchConvRoundTripGEMM(t *testing.T) {
	rng := NewRNG(45)
	g := ConvGeom{InC: 3, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1}
	const n, outC = 2, 4
	x := New(n, g.InC, g.InH, g.InW)
	x.FillNormal(rng, 0, 1)
	w := New(outC, g.InC, g.KH, g.KW)
	w.FillNormal(rng, 0, 1)

	cols, err := Im2ColBatch(x, g)
	if err != nil {
		t.Fatal(err)
	}
	w2d := w.MustReshape(outC, g.InC*g.KH*g.KW)
	prod, err := MatMul(w2d, cols)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := g.OutHW()
	s := oh * ow
	inSz := g.InC * g.InH * g.InW
	for i := 0; i < n; i++ {
		img := MustFromSlice(x.Data()[i*inSz:(i+1)*inSz], g.InC, g.InH, g.InW)
		want, err := ConvDirect(img, w, g)
		if err != nil {
			t.Fatal(err)
		}
		for oc := 0; oc < outC; oc++ {
			for p := 0; p < s; p++ {
				got := prod.At(oc, i*s+p)
				if math.Abs(float64(got-want.Data()[oc*s+p])) > 1e-4 {
					t.Fatalf("sample %d oc %d pos %d: got %v, want %v", i, oc, p, got, want.Data()[oc*s+p])
				}
			}
		}
	}
}
