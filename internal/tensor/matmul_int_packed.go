package tensor

import "fmt"

// Packed-operand integer GEMM: the serving-engine fast path. The weight
// matrix B of dst = A(u8)·B(i8) is reorganized ONCE (at model compile
// time) into cache-resident column panels shaped for the AVX2 integer
// kernels (the gemmlowp layout), so the per-call GEMM streams A rows
// against contiguous panel bytes instead of striding B every call.
// Rows run in register-blocked groups of four: the 4×8 micro-kernels
// hold four rows' int32 accumulators in registers and reuse every
// loaded panel quad across all four rows (4× fewer B-panel loads than
// the one-row kernels, which the remainder rows still take).
//
// Panel layout: columns are grouped 8 at a time (one YMM register of
// int32 accumulators) and the k dimension 4 at a time (one 32-bit lane of
// the VPMADDUBSW kernel). Panel p, k-quad q occupies the 32 bytes at
// (p·kq + q)·32, holding b[4q+t][8p+j] at byte 4j+t — for each of the 8
// columns, 4 consecutive k values. Both k and n are zero-padded to their
// group sizes; padded weights are exactly zero, so the padded products
// vanish and results are exact.
//
// The VPMADDUBSW kernel pairs adjacent k taps in a saturating int16
// multiply-add: sat16(a[2s]·b[2s] + a[2s+1]·b[2s+1]). With a ∈ [0, 255]
// that saturates iff some even-pair weight magnitude sum exceeds 128
// (255·128 = 32640 ≤ 32767 < 32895 = 255·129, and −255·128 ≥ −32768).
// Pack time detects the hazard per 8-column panel; saturating panels are
// routed to an exact widening kernel (u8/s8 → int16, VPMADDWD into int32)
// and are never silently wrong, while the matrix's clean panels keep the
// fast kernel. The portable Go kernel accumulates straight into int32 and
// is exact for any weights, so SIMD and portable paths are bit-identical
// in all cases.

// PackedI8 is an int8 matrix repacked into column panels for
// MatMulU8I8PackedInto. A packed matrix is immutable: build it once (at
// model compile time), then share it freely across concurrent GEMM calls.
type PackedI8 struct {
	k, n   int
	kq     int // k quads: ceil(k/4)
	panels int // column panels: ceil(n/8)
	data   []int8
	sat    bool   // some even k-pair can saturate the int16 fast kernel
	satp   []bool // the same hazard, resolved per 8-column panel
}

// Rows returns the packed matrix's k (inner) dimension.
func (p *PackedI8) Rows() int { return p.k }

// Cols returns the packed matrix's n (output) dimension.
func (p *PackedI8) Cols() int { return p.n }

// PaddedK returns k rounded up to the kernel's 4-tap quad size. A GEMM
// operand row must be addressable for PaddedK bytes (see
// MatMulU8I8PackedInto); the padding taps multiply zero weights.
func (p *PackedI8) PaddedK() int { return 4 * p.kq }

// Saturating reports whether some adjacent even-aligned k-pair of weights
// could overflow the saturating int16 SIMD kernel against a 255
// activation (|w₀|+|w₁| > 128). The hazard is tracked per 8-column panel
// — only the affected panels run the exact widening kernel, the rest keep
// the fast one — and this reports the OR over all panels. Results are
// identical either way.
func (p *PackedI8) Saturating() bool { return p.sat }

// SizeBytes returns the packed storage footprint.
func (p *PackedI8) SizeBytes() int { return len(p.data) }

// PackI8PanelsB packs a row-major (k, n) int8 matrix into column panels.
func PackI8PanelsB(b []int8, k, n int) (*PackedI8, error) {
	if err := checkPackI8("packB", len(b), k, n); err != nil {
		return nil, err
	}
	return packI8(k, n, func(kk, j int) int8 { return b[kk*n+j] }), nil
}

// PackI8PanelsBT packs the transpose of a row-major (n, k) int8 matrix —
// the natural orientation of weight tensors, whose rows are output
// channels — into column panels: PackI8PanelsBT(w, k, n) packs B = wᵀ.
func PackI8PanelsBT(bt []int8, k, n int) (*PackedI8, error) {
	if err := checkPackI8("packBT", len(bt), k, n); err != nil {
		return nil, err
	}
	return packI8(k, n, func(kk, j int) int8 { return bt[j*k+kk] }), nil
}

func checkPackI8(op string, lenB, k, n int) error {
	if k <= 0 || n <= 0 {
		return fmt.Errorf("%w: %s dims (%d,%d) must be positive", ErrShape, op, k, n)
	}
	if lenB < k*n {
		return fmt.Errorf("%w: %s operand has %d elements, want >= %d", ErrShape, op, lenB, k*n)
	}
	return nil
}

func packI8(k, n int, at func(kk, j int) int8) *PackedI8 {
	p := &PackedI8{
		k: k, n: n,
		kq:     (k + 3) / 4,
		panels: (n + 7) / 8,
	}
	p.data = make([]int8, p.panels*p.kq*32)
	for pi := 0; pi < p.panels; pi++ {
		for q := 0; q < p.kq; q++ {
			seg := p.data[(pi*p.kq+q)*32 : (pi*p.kq+q)*32+32]
			for j := 0; j < 8; j++ {
				col := pi*8 + j
				if col >= n {
					continue // zero padding columns
				}
				for t := 0; t < 4; t++ {
					if kk := 4*q + t; kk < k {
						seg[4*j+t] = at(kk, col)
					}
				}
			}
		}
	}
	// Saturation hazard scan over even-aligned adjacent k-pairs — exactly
	// the pairs VPMADDUBSW fuses (quads start at multiples of 4, so pair
	// boundaries never straddle a quad). The hazard is resolved per
	// 8-column panel, not per matrix: the GEMM picks the fast or the exact
	// widening kernel panel by panel, so one hot output channel does not
	// drag a whole layer onto the slower kernel.
	p.satp = make([]bool, p.panels)
	for j := 0; j < n; j++ {
		pi := j / 8
		if p.satp[pi] {
			continue
		}
		for s := 0; 2*s < k; s++ {
			sum := absI8(at(2*s, j))
			if 2*s+1 < k {
				sum += absI8(at(2*s+1, j))
			}
			if sum > 128 {
				p.satp[pi] = true
				p.sat = true
				break
			}
		}
	}
	return p
}

func absI8(v int8) int {
	if v < 0 {
		return -int(v)
	}
	return int(v)
}

// Assembly micro-kernels, repointed by the per-arch SIMD dispatch (nil
// where unavailable). Each computes one full 8-column panel against m
// operand rows: dst row stride ldd int32s, operand row stride lda bytes.
// The 4-row variants are the register-blocked shape (m must be a
// positive multiple of 4): four rows' accumulators live in registers and
// every panel quad is loaded once per four rows instead of once per row.
var (
	packedAsmFast  func(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int)
	packedAsmWide  func(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int)
	packedAsmFast4 func(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int)
	packedAsmWide4 func(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int)
	// packedAsmEdge covers the final partial panel (nr < 8 valid
	// columns): exact widening arithmetic regardless of the matrix's
	// saturation hazard, masked stores so lanes past nr are never
	// written.
	packedAsmEdge func(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd, nr int)
)

// MatMulU8I8PackedInto computes dst = a·b where a is a uint8 (m, k)
// matrix with row stride lda ≥ k and b is a prepacked int8 (k, n) matrix.
// dst is row-major (m, n), accumulated in int32 and fully overwritten; it
// must not alias a.
//
// Because the kernels consume k in 4-tap quads, a must be addressable for
// (m−1)·lda + b.PaddedK() elements — up to 3 bytes past the last row's k
// values when k is not a multiple of 4. The contents of those padding
// bytes are irrelevant (they multiply zero weights); callers typically
// over-allocate their operand buffer by 3 bytes.
func MatMulU8I8PackedInto(dst []int32, a []uint8, b *PackedI8, m, lda int) error {
	if m <= 0 {
		return fmt.Errorf("%w: matmulU8I8Packed m %d must be positive", ErrShape, m)
	}
	if lda < b.k {
		return fmt.Errorf("%w: matmulU8I8Packed row stride %d < k %d", ErrShape, lda, b.k)
	}
	if need := (m-1)*lda + b.PaddedK(); len(a) < need {
		return fmt.Errorf("%w: matmulU8I8Packed operand a has %d elements, want >= %d (incl. quad padding)",
			ErrShape, len(a), need)
	}
	if len(dst) < m*b.n {
		return fmt.Errorf("%w: matmulU8I8Packed destination has %d elements, want >= %d", ErrShape, len(dst), m*b.n)
	}
	mb := blocks(m, gemmRowBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*b.panels; t++ {
			gemmPackedBlock(dst, a, b, m, lda, t)
		}
		return nil
	}
	ParallelFor(mb*b.panels, func(t int) { gemmPackedBlock(dst, a, b, m, lda, t) })
	return nil
}

// gemmPackedBlock computes one (row block × panel) output tile.
func gemmPackedBlock(dst []int32, a []uint8, b *PackedI8, m, lda, t int) {
	ib, pi := t/b.panels, t%b.panels
	i0 := ib * gemmRowBlock
	mr := min(gemmRowBlock, m-i0)
	runPackedPanel(dst[i0*b.n:], a[i0*lda:], b, pi, mr, lda, b.n)
}

// runPackedPanel computes one weight panel against mr operand rows: dst
// and a point at the tile's first row (dst row stride ldd int32s, operand
// row stride lda bytes); the panel's column offset within dst is derived
// from pi. Kernel selection is per panel — saturating weight panels take
// the exact widening kernels, everything else the fast VPMADDUBSW kernels
// — and per row count: groups of four rows run the register-blocked 4-row
// micro-kernel (one panel-quad load per four rows), the remainder rows
// the one-row kernel. mr is arbitrary (the 4-row kernels loop internally),
// which is what lets the implicit-im2col conv driver run a whole gathered
// row band through one call per panel.
func runPackedPanel(dst []int32, a []uint8, b *PackedI8, pi, mr, lda, ldd int) {
	j0 := pi * 8
	nr := min(8, b.n-j0)
	panel := b.data[pi*b.kq*32 : (pi+1)*b.kq*32]
	if nr < 8 {
		if packedAsmEdge != nil {
			packedAsmEdge(dst[j0:], a, panel, mr, b.kq, lda, ldd, nr)
		} else {
			packedPanelGo(dst[j0:], a, panel, mr, b.kq, lda, ldd, nr)
		}
		return
	}
	asm1, asm4 := packedAsmFast, packedAsmFast4
	if b.satp[pi] {
		asm1, asm4 = packedAsmWide, packedAsmWide4
	}
	m4 := mr &^ 3
	if m4 > 0 {
		if asm4 != nil {
			asm4(dst[j0:], a, panel, m4, b.kq, lda, ldd)
		} else {
			packedPanelGo8x4(dst[j0:], a, panel, m4, b.kq, lda, ldd)
		}
	}
	if m4 == mr {
		return
	}
	if asm1 != nil {
		asm1(dst[m4*ldd+j0:], a[m4*lda:], panel, mr-m4, b.kq, lda, ldd)
		return
	}
	packedPanelGo8(dst[m4*ldd+j0:], a[m4*lda:], panel, mr-m4, b.kq, lda, ldd)
}

// packedPanelGo8 is the portable kernel for full 8-column panels: the 8
// dot products live in registers across the k loop, and the packed quad
// is indexed with constant offsets (one bounds check per quad). Exact
// int32 accumulation, bit-identical to both assembly kernels.
func packedPanelGo8(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	for i := 0; i < m; i++ {
		arow := a[i*lda:]
		var o0, o1, o2, o3, o4, o5, o6, o7 int32
		for q := 0; q < kq; q++ {
			a0 := int32(arow[4*q])
			a1 := int32(arow[4*q+1])
			a2 := int32(arow[4*q+2])
			a3 := int32(arow[4*q+3])
			pq := panel[q*32 : q*32+32 : q*32+32]
			o0 += a0*int32(pq[0]) + a1*int32(pq[1]) + a2*int32(pq[2]) + a3*int32(pq[3])
			o1 += a0*int32(pq[4]) + a1*int32(pq[5]) + a2*int32(pq[6]) + a3*int32(pq[7])
			o2 += a0*int32(pq[8]) + a1*int32(pq[9]) + a2*int32(pq[10]) + a3*int32(pq[11])
			o3 += a0*int32(pq[12]) + a1*int32(pq[13]) + a2*int32(pq[14]) + a3*int32(pq[15])
			o4 += a0*int32(pq[16]) + a1*int32(pq[17]) + a2*int32(pq[18]) + a3*int32(pq[19])
			o5 += a0*int32(pq[20]) + a1*int32(pq[21]) + a2*int32(pq[22]) + a3*int32(pq[23])
			o6 += a0*int32(pq[24]) + a1*int32(pq[25]) + a2*int32(pq[26]) + a3*int32(pq[27])
			o7 += a0*int32(pq[28]) + a1*int32(pq[29]) + a2*int32(pq[30]) + a3*int32(pq[31])
		}
		orow := dst[i*ldd : i*ldd+8 : i*ldd+8]
		orow[0], orow[1], orow[2], orow[3] = o0, o1, o2, o3
		orow[4], orow[5], orow[6], orow[7] = o4, o5, o6, o7
	}
}

// packedPanelGo8x4 is the portable register-blocked kernel for full
// panels (m a positive multiple of 4): the packed quad's 32 weights are
// loaded once per four rows and multiplied against each row's
// activation quad, mirroring the data reuse of the 4-row assembly
// kernels. Exact int32 accumulation, bit-identical to every other
// packed kernel (integer addition is associative).
func packedPanelGo8x4(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	for i := 0; i+3 < m; i += 4 {
		r0 := a[i*lda:]
		r1 := a[(i+1)*lda:]
		r2 := a[(i+2)*lda:]
		r3 := a[(i+3)*lda:]
		var o0, o1, o2, o3 [8]int32
		for q := 0; q < kq; q++ {
			a00, a01, a02, a03 := int32(r0[4*q]), int32(r0[4*q+1]), int32(r0[4*q+2]), int32(r0[4*q+3])
			a10, a11, a12, a13 := int32(r1[4*q]), int32(r1[4*q+1]), int32(r1[4*q+2]), int32(r1[4*q+3])
			a20, a21, a22, a23 := int32(r2[4*q]), int32(r2[4*q+1]), int32(r2[4*q+2]), int32(r2[4*q+3])
			a30, a31, a32, a33 := int32(r3[4*q]), int32(r3[4*q+1]), int32(r3[4*q+2]), int32(r3[4*q+3])
			pq := panel[q*32 : q*32+32 : q*32+32]
			for j := 0; j < 8; j++ {
				w0 := int32(pq[4*j])
				w1 := int32(pq[4*j+1])
				w2 := int32(pq[4*j+2])
				w3 := int32(pq[4*j+3])
				o0[j] += a00*w0 + a01*w1 + a02*w2 + a03*w3
				o1[j] += a10*w0 + a11*w1 + a12*w2 + a13*w3
				o2[j] += a20*w0 + a21*w1 + a22*w2 + a23*w3
				o3[j] += a30*w0 + a31*w1 + a32*w2 + a33*w3
			}
		}
		copy(dst[i*ldd:i*ldd+8], o0[:])
		copy(dst[(i+1)*ldd:(i+1)*ldd+8], o1[:])
		copy(dst[(i+2)*ldd:(i+2)*ldd+8], o2[:])
		copy(dst[(i+3)*ldd:(i+3)*ldd+8], o3[:])
	}
}

// packedPanelGo is the portable kernel for the final partial panel
// (nr < 8 valid columns): straight int32 multiply-accumulate over the
// packed layout, exact for any weights.
func packedPanelGo(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd, nr int) {
	for i := 0; i < m; i++ {
		arow := a[i*lda:]
		orow := dst[i*ldd : i*ldd+nr]
		for j := range orow {
			orow[j] = 0
		}
		for q := 0; q < kq; q++ {
			a0 := int32(arow[4*q])
			a1 := int32(arow[4*q+1])
			a2 := int32(arow[4*q+2])
			a3 := int32(arow[4*q+3])
			pq := panel[q*32 : q*32+32]
			for j := 0; j < nr; j++ {
				pj := pq[4*j : 4*j+4]
				orow[j] += a0*int32(pj[0]) + a1*int32(pj[1]) + a2*int32(pj[2]) + a3*int32(pj[3])
			}
		}
	}
}
