//go:build arm64

#include "textflag.h"

// NEON integer packed-GEMM micro-kernel. One routine serves every
// dispatch slot (fast/wide, 1-row/4-row): the widening SMLAL form is
// exact for any weights — u8 activations widened to u16 (≤ 255) times
// s8 weights widened to s16 (≤ 127 in magnitude) cannot overflow the
// 32-bit accumulator lanes for any realistic k — so there is no
// saturating-fast/exact-wide split like the AVX2 VPMADDUBSW pair.
// Results are bit-identical to the portable kernels (int32 addition is
// associative and each product is exact).
//
// Layout recap (matmul_int_packed.go): panel quad q holds the 8
// columns' weights for k taps 4q..4q+3 at byte 4j+t. SXTL widens the 32
// panel bytes to four int16x8 registers, each covering two columns
// (V2 = cols 0,1 | V3 = cols 2,3 | V4 = cols 4,5 | V5 = cols 6,7).
// LD1R replicates a row's 4-byte activation quad to all four S lanes;
// UXTL makes that [a0..a3 a0..a3] as u16×8, which lines up with the
// column-pair layout so SMLAL (low halves) accumulates one column and
// SMLAL2 (high halves) its pair partner. Each accumulator register
// holds four per-tap partial sums of one column, folded with an ADDP
// tree after the k loop.
//
// Rows run in pairs (16 accumulator registers); an odd tail row runs
// the same body with the row-1 instructions dropped.
//
// The signed widening/multiply instructions are not in the Go 1.24
// arm64 assembler's vocabulary, hence the WORD encodings; each carries
// its ARM mnemonic. Operand roles: smlal vd, vn, vm ⇒ vd += vn·vm.

// func packedGEMMNEON(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
TEXT ·packedGEMMNEON(SB), NOSPLIT, $0-56
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD panel+16(FP), R2
	MOVD m+24(FP), R3
	MOVD kq+32(FP), R4
	MOVD lda+40(FP), R5
	MOVD ldd+48(FP), R6
	LSL  $2, R6, R6           // dst row stride in bytes

pairloop:
	CMP  $2, R3
	BLT  tail
	MOVD R1, R7               // row 0 activation cursor
	ADD  R5, R7, R8           // row 1
	MOVD R2, R9               // panel cursor
	MOVD R4, R10              // quad counter
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16
	VEOR V20.B16, V20.B16, V20.B16
	VEOR V21.B16, V21.B16, V21.B16
	VEOR V22.B16, V22.B16, V22.B16
	VEOR V23.B16, V23.B16, V23.B16

pairquad:
	VLD1.P 32(R9), [V0.B16, V1.B16]
	WORD $0x0F08A402 // sxtl  v2.8h, v0.8b   (cols 0,1)
	WORD $0x4F08A403 // sxtl2 v3.8h, v0.16b  (cols 2,3)
	WORD $0x0F08A424 // sxtl  v4.8h, v1.8b   (cols 4,5)
	WORD $0x4F08A425 // sxtl2 v5.8h, v1.16b  (cols 6,7)
	VLD1R  (R7), [V6.S4]
	ADD    $4, R7, R7
	VUXTL  V6.B8, V6.H8
	VLD1R  (R8), [V7.S4]
	ADD    $4, R8, R8
	VUXTL  V7.B8, V7.H8
	WORD $0x0E668048 // smlal  v8.4s, v2.4h, v6.4h
	WORD $0x4E668049 // smlal2 v9.4s, v2.8h, v6.8h
	WORD $0x0E66806A // smlal  v10.4s, v3.4h, v6.4h
	WORD $0x4E66806B // smlal2 v11.4s, v3.8h, v6.8h
	WORD $0x0E66808C // smlal  v12.4s, v4.4h, v6.4h
	WORD $0x4E66808D // smlal2 v13.4s, v4.8h, v6.8h
	WORD $0x0E6680AE // smlal  v14.4s, v5.4h, v6.4h
	WORD $0x4E6680AF // smlal2 v15.4s, v5.8h, v6.8h
	WORD $0x0E678050 // smlal  v16.4s, v2.4h, v7.4h
	WORD $0x4E678051 // smlal2 v17.4s, v2.8h, v7.8h
	WORD $0x0E678072 // smlal  v18.4s, v3.4h, v7.4h
	WORD $0x4E678073 // smlal2 v19.4s, v3.8h, v7.8h
	WORD $0x0E678094 // smlal  v20.4s, v4.4h, v7.4h
	WORD $0x4E678095 // smlal2 v21.4s, v4.8h, v7.8h
	WORD $0x0E6780B6 // smlal  v22.4s, v5.4h, v7.4h
	WORD $0x4E6780B7 // smlal2 v23.4s, v5.8h, v7.8h
	SUB  $1, R10, R10
	CBNZ R10, pairquad

	// Fold each column's four partial lanes: ADDP(ADDP(c0,c1),
	// ADDP(c2,c3)) yields [c0 c1 c2 c3] in one register.
	VADDP V9.S4, V8.S4, V24.S4
	VADDP V11.S4, V10.S4, V25.S4
	VADDP V25.S4, V24.S4, V24.S4
	VADDP V13.S4, V12.S4, V25.S4
	VADDP V15.S4, V14.S4, V26.S4
	VADDP V26.S4, V25.S4, V25.S4
	VST1  [V24.S4, V25.S4], (R0)
	ADD   R6, R0, R11
	VADDP V17.S4, V16.S4, V24.S4
	VADDP V19.S4, V18.S4, V25.S4
	VADDP V25.S4, V24.S4, V24.S4
	VADDP V21.S4, V20.S4, V25.S4
	VADDP V23.S4, V22.S4, V26.S4
	VADDP V26.S4, V25.S4, V25.S4
	VST1  [V24.S4, V25.S4], (R11)

	ADD R5<<1, R1, R1         // two activation rows
	ADD R6<<1, R0, R0         // two dst rows
	SUB $2, R3, R3
	B   pairloop

tail:
	CBZ  R3, done
	MOVD R1, R7
	MOVD R2, R9
	MOVD R4, R10
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

tailquad:
	VLD1.P 32(R9), [V0.B16, V1.B16]
	WORD $0x0F08A402 // sxtl  v2.8h, v0.8b
	WORD $0x4F08A403 // sxtl2 v3.8h, v0.16b
	WORD $0x0F08A424 // sxtl  v4.8h, v1.8b
	WORD $0x4F08A425 // sxtl2 v5.8h, v1.16b
	VLD1R  (R7), [V6.S4]
	ADD    $4, R7, R7
	VUXTL  V6.B8, V6.H8
	WORD $0x0E668048 // smlal  v8.4s, v2.4h, v6.4h
	WORD $0x4E668049 // smlal2 v9.4s, v2.8h, v6.8h
	WORD $0x0E66806A // smlal  v10.4s, v3.4h, v6.4h
	WORD $0x4E66806B // smlal2 v11.4s, v3.8h, v6.8h
	WORD $0x0E66808C // smlal  v12.4s, v4.4h, v6.4h
	WORD $0x4E66808D // smlal2 v13.4s, v4.8h, v6.8h
	WORD $0x0E6680AE // smlal  v14.4s, v5.4h, v6.4h
	WORD $0x4E6680AF // smlal2 v15.4s, v5.8h, v6.8h
	SUB  $1, R10, R10
	CBNZ R10, tailquad

	VADDP V9.S4, V8.S4, V24.S4
	VADDP V11.S4, V10.S4, V25.S4
	VADDP V25.S4, V24.S4, V24.S4
	VADDP V13.S4, V12.S4, V25.S4
	VADDP V15.S4, V14.S4, V26.S4
	VADDP V26.S4, V25.S4, V25.S4
	VST1  [V24.S4, V25.S4], (R0)

	ADD R5, R1, R1
	ADD R6, R0, R0
	SUB $1, R3, R3
	B   tail

done:
	RET
