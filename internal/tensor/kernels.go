package tensor

import (
	"fmt"
	"runtime"
)

// Low-level fused kernels behind the GEMM routines. Every kernel has a
// portable Go implementation here; on amd64 with AVX2+FMA (see
// kernels_amd64.go) and on arm64 with NEON (see kernels_arm64.go) the
// dispatch variables are repointed at assembly versions during init.
// Dispatch is per-row-block, so the indirection cost is negligible next
// to the O(n) work of each call. The portable kernels are the cross-arch
// reference: the integer and requant assembly must match them
// bit-for-bit on both architectures.
//
// All kernels are deterministic: for a given input they produce the same
// bits regardless of the worker count driving them, which is what keeps
// ParallelFor-partitioned GEMMs bit-identical to their serial runs.

// SIMD dispatch state. simdApply is overridden by the per-arch init when
// usable vector kernels exist; it repoints every dispatch variable (float
// AXPY/dot and the packed integer panel kernels) at either the assembly
// or the portable implementations. The APT_NOSIMD environment variable
// keeps the portable kernels in place at startup, so the fallback path is
// testable on SIMD hardware.
var (
	simdOn       bool
	simdFeatures string
	simdApply    = func(bool) {}
)

// SetSIMD enables or disables the assembly kernel dispatch at runtime and
// returns the previous setting. On hosts without usable SIMD kernels it
// is a no-op (SIMDActive stays false). Like SetMaxWorkers, this is meant
// for tests and benchmarks and is not synchronized with in-flight
// operations.
func SetSIMD(on bool) bool {
	prev := simdOn
	simdApply(on)
	return prev
}

// SIMDActive reports whether the assembly kernels are currently
// dispatched.
func SIMDActive() bool { return simdOn }

// SIMDFeatures names the CPU features backing the assembly kernels
// (e.g. "avx2,fma"), or "" when no SIMD path exists on this host. The
// feature set is reported even while dispatch is disabled via APT_NOSIMD
// or SetSIMD(false).
func SIMDFeatures() string { return simdFeatures }

// KernelSummary describes the active kernel routing in one line for
// diagnostic output (aptinspect, bench headers): architecture, feature
// set, and which of the serving-path kernel families — packed GEMM,
// the partial-panel edge kernel, and the Q31 requant epilogue — are on
// assembly versus the portable Go reference.
func KernelSummary() string {
	if !simdOn {
		reason := "APT_NOSIMD or SetSIMD(false)"
		if simdFeatures == "" {
			reason = "no SIMD kernels for " + runtime.GOARCH
		}
		return fmt.Sprintf("%s: portable Go reference kernels (%s)", runtime.GOARCH, reason)
	}
	edge := "portable edge"
	if packedAsmEdge != nil {
		edge = "masked-store edge"
	}
	requant := "portable requant"
	if requantRowsAsm != nil && requantTransAsm != nil {
		requant = "SIMD requant"
	}
	return fmt.Sprintf("%s: %s packed GEMM + %s + %s", runtime.GOARCH, simdFeatures, edge, requant)
}

// axpy4 computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j].
// The b slices must be at least len(dst) long.
var axpy4 = axpy4Go

// axpy1 computes dst[j] += a * b[j]. b must be at least len(dst) long.
var axpy1 = axpy1Go

// dot returns the inner product of a and b (len(a) elements; b must be at
// least as long).
var dot = dotGo

func axpy4Go(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range dst {
		dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

func axpy1Go(dst, b []float32, a float32) {
	b = b[:len(dst)]
	for j := range dst {
		dst[j] += a * b[j]
	}
}

// f32Panel4Go is the portable 4×16 packed-panel micro-kernel: one
// accumulator per output element, k ascending — the same order as the
// FMA assembly, so the two agree to float32 rounding (the assembly fuses
// each multiply-add into one rounding; see matmul_packed.go). Row r,
// tap q of the operand lives at a[r*ars + q*aks].
func f32Panel4Go(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	for i := 0; i+3 < m; i += 4 {
		a0 := a[(i+0)*ars:]
		a1 := a[(i+1)*ars:]
		a2 := a[(i+2)*ars:]
		a3 := a[(i+3)*ars:]
		var c0, c1, c2, c3 [16]float32
		for q := 0; q < k; q++ {
			pq := panel[q*16 : q*16+16 : q*16+16]
			v0, v1, v2, v3 := a0[q*aks], a1[q*aks], a2[q*aks], a3[q*aks]
			for j := 0; j < 16; j++ {
				w := pq[j]
				c0[j] += v0 * w
				c1[j] += v1 * w
				c2[j] += v2 * w
				c3[j] += v3 * w
			}
		}
		copy(dst[(i+0)*ldd:(i+0)*ldd+16], c0[:])
		copy(dst[(i+1)*ldd:(i+1)*ldd+16], c1[:])
		copy(dst[(i+2)*ldd:(i+2)*ldd+16], c2[:])
		copy(dst[(i+3)*ldd:(i+3)*ldd+16], c3[:])
	}
}

// f32Panel1Go is the portable one-row packed-panel kernel (writes
// dst[0:16]); same accumulation order as f32Panel4Go.
func f32Panel1Go(dst, a, panel []float32, k, aks int) {
	var c [16]float32
	for q := 0; q < k; q++ {
		pq := panel[q*16 : q*16+16 : q*16+16]
		v := a[q*aks]
		for j := 0; j < 16; j++ {
			c[j] += v * pq[j]
		}
	}
	copy(dst[:16], c[:])
}

// f32Panel4x8Go is the portable 4×8 narrow-panel micro-kernel: the
// register-blocked shape over 8-wide panels (one YMM of accumulators
// per output row in the assembly), which keeps narrow-output products
// — the first-layer weight gradient (n = kdim) and classifier heads —
// off the scalar edge path. Same accumulation contract as f32Panel4Go.
func f32Panel4x8Go(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	for i := 0; i+3 < m; i += 4 {
		a0 := a[(i+0)*ars:]
		a1 := a[(i+1)*ars:]
		a2 := a[(i+2)*ars:]
		a3 := a[(i+3)*ars:]
		var c0, c1, c2, c3 [8]float32
		for q := 0; q < k; q++ {
			pq := panel[q*8 : q*8+8 : q*8+8]
			v0, v1, v2, v3 := a0[q*aks], a1[q*aks], a2[q*aks], a3[q*aks]
			for j := 0; j < 8; j++ {
				w := pq[j]
				c0[j] += v0 * w
				c1[j] += v1 * w
				c2[j] += v2 * w
				c3[j] += v3 * w
			}
		}
		copy(dst[(i+0)*ldd:(i+0)*ldd+8], c0[:])
		copy(dst[(i+1)*ldd:(i+1)*ldd+8], c1[:])
		copy(dst[(i+2)*ldd:(i+2)*ldd+8], c2[:])
		copy(dst[(i+3)*ldd:(i+3)*ldd+8], c3[:])
	}
}

// f32Panel1x8Go is the portable one-row narrow-panel kernel (writes
// dst[0:8]); same accumulation order as f32Panel4x8Go.
func f32Panel1x8Go(dst, a, panel []float32, k, aks int) {
	var c [8]float32
	for q := 0; q < k; q++ {
		pq := panel[q*8 : q*8+8 : q*8+8]
		v := a[q*aks]
		for j := 0; j < 8; j++ {
			c[j] += v * pq[j]
		}
	}
	copy(dst[:8], c[:])
}

// f32PanelEdgeGo handles the right-edge partial panel (nr < pw valid
// columns of a pw-wide panel); always portable — the zero-padded panel
// tail would make the full-width kernels write past dst.
func f32PanelEdgeGo(dst, a, panel []float32, m, k, ars, aks, ldd, pw, nr int) {
	for i := 0; i < m; i++ {
		var cbuf [f32PanelCols]float32
		c := cbuf[:nr]
		ar := a[i*ars:]
		for q := 0; q < k; q++ {
			pq := panel[q*pw : q*pw+nr : q*pw+nr]
			v := ar[q*aks]
			for j, w := range pq {
				c[j] += v * w
			}
		}
		copy(dst[i*ldd:i*ldd+nr], c)
	}
}

func dotGo(a, b []float32) float32 {
	b = b[:len(a)]
	// Four partial sums break the add dependency chain; the same shape the
	// assembly kernel uses, so results agree closely (not bitwise: the
	// vector kernel folds eight lanes per partial).
	var s0, s1, s2, s3 float32
	j := 0
	for ; j+3 < len(a); j += 4 {
		s0 += a[j] * b[j]
		s1 += a[j+1] * b[j+1]
		s2 += a[j+2] * b[j+2]
		s3 += a[j+3] * b[j+3]
	}
	for ; j < len(a); j++ {
		s0 += a[j] * b[j]
	}
	return (s0 + s1) + (s2 + s3)
}
