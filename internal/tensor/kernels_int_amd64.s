//go:build amd64

#include "textflag.h"

// Integer GEMM micro-kernels for the packed u8×s8 path (see
// matmul_int_packed.go for the panel layout). Both kernels compute m rows
// of one 8-column panel: for each row, 8 int32 dot products of the uint8
// operand row against the packed int8 panel, k consumed in 4-tap quads.
//
//	dst: *int32, row stride ldd (int32 units), 8 values stored per row
//	a:   *uint8, row stride lda (bytes), each row readable for 4·kq bytes
//	panel: kq · 32 bytes of packed weights
//
// packedGEMMFastAVX2 is the gemmlowp shape: VPMADDUBSW fuses adjacent
// u8·s8 tap pairs into saturating int16, VPMADDWD × ones widens pairs to
// int32, VPADDD accumulates. Exact only when no even k-pair of weights
// can saturate the int16 stage (pack time guarantees |w0|+|w1| ≤ 128
// before routing a matrix here).
//
// packedGEMMWideAVX2 widens both operands to int16 first (VPMOVZXBW /
// VPMOVSXBW) and accumulates VPMADDWD products — exact for any weights
// (|255·w0| + |255·w1| always fits int32). It holds column pair-sums in
// an interleaved order and fixes up with VPHADDD+VPERMQ once per row.

// func packedGEMMFastAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
TEXT ·packedGEMMFastAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11              // dst row stride in bytes

	// Y7 = 16 × int16(1) for the VPMADDWD pair-collapse.
	VPCMPEQW Y7, Y7, Y7
	VPSRLW   $15, Y7, Y7

rowloop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0          // even-quad accumulator
	VPXOR Y1, Y1, Y1          // odd-quad accumulator
	MOVQ  SI, R12             // a cursor
	MOVQ  DX, BX              // panel cursor
	MOVQ  R9, CX

pair:                             // two k-quads per iteration
	CMPQ CX, $2
	JLT  quad1
	VPBROADCASTD (R12), Y4    // a[4q..4q+3] replicated to 8 lanes
	VPMADDUBSW   (BX), Y4, Y5 // sat16(a0·b0 + a1·b1), per column ×2
	VPMADDWD     Y7, Y5, Y5   // pair-sum → int32 per column
	VPADDD       Y5, Y0, Y0
	VPBROADCASTD 4(R12), Y4
	VPMADDUBSW   32(BX), Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y1, Y1
	ADDQ $8, R12
	ADDQ $64, BX
	SUBQ $2, CX
	JMP  pair

quad1:
	TESTQ CX, CX
	JZ    rowend
	VPBROADCASTD (R12), Y4
	VPMADDUBSW   (BX), Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y0, Y0

rowend:
	VPADDD  Y1, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    R11, DI
	ADDQ    R10, SI
	DECQ    R8
	JMP     rowloop

done:
	VZEROUPPER
	RET

// func packedGEMMWideAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
TEXT ·packedGEMMWideAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11

rowloop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0          // pair-sums, columns 0–3 interleaved
	VPXOR Y1, Y1, Y1          // pair-sums, columns 4–7 interleaved
	MOVQ  SI, R12
	MOVQ  DX, BX
	MOVQ  R9, CX

quad:
	TESTQ CX, CX
	JZ    rowend
	VPBROADCASTD (R12), X4
	VPMOVZXBW    X4, Y4       // activations widened: [a0..a3] × 4, int16
	VPMOVSXBW    (BX), Y5     // panel low half: cols 0–3, int16
	VPMADDWD     Y4, Y5, Y5   // a0·b0+a1·b1, a2·b2+a3·b3 per column
	VPADDD       Y5, Y0, Y0
	VPMOVSXBW    16(BX), Y5   // panel high half: cols 4–7
	VPMADDWD     Y4, Y5, Y5
	VPADDD       Y5, Y1, Y1
	ADDQ $4, R12
	ADDQ $32, BX
	DECQ CX
	JMP  quad

rowend:
	// Fold adjacent pair-sums: VPHADDD leaves [c0 c1 c4 c5 | c2 c3 c6 c7];
	// VPERMQ restores column order.
	VPHADDD Y1, Y0, Y0
	VPERMQ  $0xD8, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    R11, DI
	ADDQ    R10, SI
	DECQ    R8
	JMP     rowloop

done:
	VZEROUPPER
	RET
