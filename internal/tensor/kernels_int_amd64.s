//go:build amd64

#include "textflag.h"

// Integer GEMM micro-kernels for the packed u8×s8 path (see
// matmul_int_packed.go for the panel layout). Both kernels compute m rows
// of one 8-column panel: for each row, 8 int32 dot products of the uint8
// operand row against the packed int8 panel, k consumed in 4-tap quads.
//
//	dst: *int32, row stride ldd (int32 units), 8 values stored per row
//	a:   *uint8, row stride lda (bytes), each row readable for 4·kq bytes
//	panel: kq · 32 bytes of packed weights
//
// packedGEMMFastAVX2 is the gemmlowp shape: VPMADDUBSW fuses adjacent
// u8·s8 tap pairs into saturating int16, VPMADDWD × ones widens pairs to
// int32, VPADDD accumulates. Exact only when no even k-pair of weights
// can saturate the int16 stage (pack time guarantees |w0|+|w1| ≤ 128
// before routing a matrix here).
//
// packedGEMMWideAVX2 widens both operands to int16 first (VPMOVZXBW /
// VPMOVSXBW) and accumulates VPMADDWD products — exact for any weights
// (|255·w0| + |255·w1| always fits int32). It holds column pair-sums in
// an interleaved order and fixes up with VPHADDD+VPERMQ once per row.
//
// packedGEMMFast4AVX2 / packedGEMMWide4AVX2 are the register-blocked
// multi-row shapes (m must be a positive multiple of 4): four activation
// rows' int32 accumulators stay in YMM registers across the k loop, so
// every packed panel quad is loaded from L1 ONCE and multiplied against
// all four rows — 4× fewer B-panel loads than running the one-row kernel
// four times, which is what bounds the one-row kernels (two load-port
// µops per row-quad against a two-port machine). The remainder rows
// (m mod 4) take the one-row kernels above.

// func packedGEMMFastAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
TEXT ·packedGEMMFastAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11              // dst row stride in bytes

	// Y7 = 16 × int16(1) for the VPMADDWD pair-collapse.
	VPCMPEQW Y7, Y7, Y7
	VPSRLW   $15, Y7, Y7

rowloop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0          // even-quad accumulator
	VPXOR Y1, Y1, Y1          // odd-quad accumulator
	MOVQ  SI, R12             // a cursor
	MOVQ  DX, BX              // panel cursor
	MOVQ  R9, CX

pair:                             // two k-quads per iteration
	CMPQ CX, $2
	JLT  quad1
	VPBROADCASTD (R12), Y4    // a[4q..4q+3] replicated to 8 lanes
	VPMADDUBSW   (BX), Y4, Y5 // sat16(a0·b0 + a1·b1), per column ×2
	VPMADDWD     Y7, Y5, Y5   // pair-sum → int32 per column
	VPADDD       Y5, Y0, Y0
	VPBROADCASTD 4(R12), Y4
	VPMADDUBSW   32(BX), Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y1, Y1
	ADDQ $8, R12
	ADDQ $64, BX
	SUBQ $2, CX
	JMP  pair

quad1:
	TESTQ CX, CX
	JZ    rowend
	VPBROADCASTD (R12), Y4
	VPMADDUBSW   (BX), Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y0, Y0

rowend:
	VPADDD  Y1, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    R11, DI
	ADDQ    R10, SI
	DECQ    R8
	JMP     rowloop

done:
	VZEROUPPER
	RET

// func packedGEMMWideAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
TEXT ·packedGEMMWideAVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11

rowloop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0          // pair-sums, columns 0–3 interleaved
	VPXOR Y1, Y1, Y1          // pair-sums, columns 4–7 interleaved
	MOVQ  SI, R12
	MOVQ  DX, BX
	MOVQ  R9, CX

quad:
	TESTQ CX, CX
	JZ    rowend
	VPBROADCASTD (R12), X4
	VPMOVZXBW    X4, Y4       // activations widened: [a0..a3] × 4, int16
	VPMOVSXBW    (BX), Y5     // panel low half: cols 0–3, int16
	VPMADDWD     Y4, Y5, Y5   // a0·b0+a1·b1, a2·b2+a3·b3 per column
	VPADDD       Y5, Y0, Y0
	VPMOVSXBW    16(BX), Y5   // panel high half: cols 4–7
	VPMADDWD     Y4, Y5, Y5
	VPADDD       Y5, Y1, Y1
	ADDQ $4, R12
	ADDQ $32, BX
	DECQ CX
	JMP  quad

rowend:
	// Fold adjacent pair-sums: VPHADDD leaves [c0 c1 c4 c5 | c2 c3 c6 c7];
	// VPERMQ restores column order.
	VPHADDD Y1, Y0, Y0
	VPERMQ  $0xD8, Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    R11, DI
	ADDQ    R10, SI
	DECQ    R8
	JMP     rowloop

done:
	VZEROUPPER
	RET

// func packedGEMMFast4AVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
//
// Four-row register-blocked VPMADDUBSW kernel; m must be a positive
// multiple of 4. Y0–Y3 hold the four rows' int32 accumulators, Y6 holds
// the panel quad shared by all four rows, Y7 the int16 ones. Same
// saturation precondition as packedGEMMFastAVX2.
TEXT ·packedGEMMFast4AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	SHRQ $2, R8               // four-row groups
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11              // dst row stride in bytes
	LEAQ (R10)(R10*2), R13    // 3·lda
	LEAQ (R11)(R11*2), R15    // 3·ldd bytes

	// Y7 = 16 × int16(1) for the VPMADDWD pair-collapse.
	VPCMPEQW Y7, Y7, Y7
	VPSRLW   $15, Y7, Y7

grouploop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	MOVQ  SI, R12             // a cursor (row 0; rows 1–3 via lda offsets)
	MOVQ  DX, BX              // panel cursor
	MOVQ  R9, CX

pair:                             // two k-quads per iteration
	CMPQ CX, $2
	JLT  quad1
	VMOVDQU      (BX), Y6     // even panel quad, loaded once per 4 rows
	VMOVDQU      32(BX), Y12  // odd panel quad
	VPBROADCASTD (R12), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y0, Y0
	VPBROADCASTD 4(R12), Y4
	VPMADDUBSW   Y12, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y0, Y0
	VPBROADCASTD (R12)(R10*1), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y1, Y1
	VPBROADCASTD 4(R12)(R10*1), Y4
	VPMADDUBSW   Y12, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y1, Y1
	VPBROADCASTD (R12)(R10*2), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y2, Y2
	VPBROADCASTD 4(R12)(R10*2), Y4
	VPMADDUBSW   Y12, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y2, Y2
	VPBROADCASTD (R12)(R13*1), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y3, Y3
	VPBROADCASTD 4(R12)(R13*1), Y4
	VPMADDUBSW   Y12, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y3, Y3
	ADDQ $8, R12
	ADDQ $64, BX
	SUBQ $2, CX
	JMP  pair

quad1:
	TESTQ CX, CX
	JZ    groupend
	VMOVDQU      (BX), Y6
	VPBROADCASTD (R12), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y0, Y0
	VPBROADCASTD (R12)(R10*1), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y1, Y1
	VPBROADCASTD (R12)(R10*2), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y2, Y2
	VPBROADCASTD (R12)(R13*1), Y4
	VPMADDUBSW   Y6, Y4, Y5
	VPMADDWD     Y7, Y5, Y5
	VPADDD       Y5, Y3, Y3

groupend:
	VMOVDQU Y0, (DI)
	VMOVDQU Y1, (DI)(R11*1)
	VMOVDQU Y2, (DI)(R11*2)
	VMOVDQU Y3, (DI)(R15*1)
	LEAQ    (SI)(R10*4), SI
	LEAQ    (DI)(R11*4), DI
	DECQ    R8
	JMP     grouploop

done:
	VZEROUPPER
	RET

// func packedGEMMWide4AVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)
//
// Four-row exact widening kernel; m must be a positive multiple of 4.
// Y0–Y7 hold the rows' interleaved column pair-sums (two registers per
// row), Y8/Y9 the sign-extended panel halves shared by all four rows,
// Y10 the zero-extended activation quad, Y11 the product. Exact for any
// weights, like packedGEMMWideAVX2.
TEXT ·packedGEMMWide4AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	SHRQ $2, R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11
	LEAQ (R10)(R10*2), R13    // 3·lda
	LEAQ (R11)(R11*2), R15    // 3·ldd bytes

grouploop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7
	MOVQ  SI, R12
	MOVQ  DX, BX
	MOVQ  R9, CX

quad:
	VPMOVSXBW    (BX), Y8     // panel cols 0–3 as int16, loaded once
	VPMOVSXBW    16(BX), Y9   // panel cols 4–7
	VPBROADCASTD (R12), X10
	VPMOVZXBW    X10, Y10     // row 0 activations widened
	VPMADDWD     Y10, Y8, Y11
	VPADDD       Y11, Y0, Y0
	VPMADDWD     Y10, Y9, Y11
	VPADDD       Y11, Y1, Y1
	VPBROADCASTD (R12)(R10*1), X10
	VPMOVZXBW    X10, Y10
	VPMADDWD     Y10, Y8, Y11
	VPADDD       Y11, Y2, Y2
	VPMADDWD     Y10, Y9, Y11
	VPADDD       Y11, Y3, Y3
	VPBROADCASTD (R12)(R10*2), X10
	VPMOVZXBW    X10, Y10
	VPMADDWD     Y10, Y8, Y11
	VPADDD       Y11, Y4, Y4
	VPMADDWD     Y10, Y9, Y11
	VPADDD       Y11, Y5, Y5
	VPBROADCASTD (R12)(R13*1), X10
	VPMOVZXBW    X10, Y10
	VPMADDWD     Y10, Y8, Y11
	VPADDD       Y11, Y6, Y6
	VPMADDWD     Y10, Y9, Y11
	VPADDD       Y11, Y7, Y7
	ADDQ $4, R12
	ADDQ $32, BX
	DECQ CX
	JNZ  quad

	// Per row: fold pair-sums and restore column order (see the one-row
	// kernel's rowend comment).
	VPHADDD Y1, Y0, Y0
	VPERMQ  $0xD8, Y0, Y0
	VMOVDQU Y0, (DI)
	VPHADDD Y3, Y2, Y2
	VPERMQ  $0xD8, Y2, Y2
	VMOVDQU Y2, (DI)(R11*1)
	VPHADDD Y5, Y4, Y4
	VPERMQ  $0xD8, Y4, Y4
	VMOVDQU Y4, (DI)(R11*2)
	VPHADDD Y7, Y6, Y6
	VPERMQ  $0xD8, Y6, Y6
	VMOVDQU Y6, (DI)(R15*1)
	LEAQ    (SI)(R10*4), SI
	LEAQ    (DI)(R11*4), DI
	DECQ    R8
	JMP     grouploop

done:
	VZEROUPPER
	RET

// edgeMask holds eight set dwords followed by eight clear ones; loading
// 32 bytes at offset (8−nr)·4 yields a VPMASKMOVD mask whose first nr
// lanes are set.
DATA edgeMask<>+0(SB)/8, $0xffffffffffffffff
DATA edgeMask<>+8(SB)/8, $0xffffffffffffffff
DATA edgeMask<>+16(SB)/8, $0xffffffffffffffff
DATA edgeMask<>+24(SB)/8, $0xffffffffffffffff
DATA edgeMask<>+32(SB)/8, $0x0000000000000000
DATA edgeMask<>+40(SB)/8, $0x0000000000000000
DATA edgeMask<>+48(SB)/8, $0x0000000000000000
DATA edgeMask<>+56(SB)/8, $0x0000000000000000
GLOBL edgeMask<>(SB), RODATA|NOPTR, $64

// func packedGEMMEdgeAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd, nr int)
//
// Partial-panel kernel (nr < 8 valid columns): the widening exact
// arithmetic of packedGEMMWideAVX2 — correct for any weights, so one
// kernel serves saturating and non-saturating matrices — with a
// VPMASKMOVD store that writes exactly nr int32 lanes. The panel loads
// stay full-width (panel storage is always padded to 8 columns); only
// the store is masked, because dst may end at column nr.
TEXT ·packedGEMMEdgeAVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	MOVQ kq+32(FP), R9
	MOVQ lda+40(FP), R10
	MOVQ ldd+48(FP), R11
	SHLQ $2, R11              // dst row stride in bytes
	MOVQ nr+56(FP), AX
	MOVQ $8, BX
	SUBQ AX, BX
	SHLQ $2, BX               // (8−nr)·4
	LEAQ edgeMask<>(SB), AX
	VMOVDQU (AX)(BX*1), Y6    // store mask: lanes 0..nr−1 set

rowloop:
	TESTQ R8, R8
	JZ    done
	VPXOR Y0, Y0, Y0          // pair-sums, columns 0–3 interleaved
	VPXOR Y1, Y1, Y1          // pair-sums, columns 4–7 interleaved
	MOVQ  SI, R12
	MOVQ  DX, BX
	MOVQ  R9, CX

quad:
	TESTQ CX, CX
	JZ    rowend
	VPBROADCASTD (R12), X4
	VPMOVZXBW    X4, Y4       // activations widened: [a0..a3] × 4, int16
	VPMOVSXBW    (BX), Y5     // panel low half: cols 0–3, int16
	VPMADDWD     Y4, Y5, Y5   // a0·b0+a1·b1, a2·b2+a3·b3 per column
	VPADDD       Y5, Y0, Y0
	VPMOVSXBW    16(BX), Y5   // panel high half: cols 4–7
	VPMADDWD     Y4, Y5, Y5
	VPADDD       Y5, Y1, Y1
	ADDQ $4, R12
	ADDQ $32, BX
	DECQ CX
	JMP  quad

rowend:
	// Fold adjacent pair-sums and restore column order, then store only
	// the valid columns.
	VPHADDD    Y1, Y0, Y0
	VPERMQ     $0xD8, Y0, Y0
	VPMASKMOVD Y0, Y6, (DI)
	ADDQ       R11, DI
	ADDQ       R10, SI
	DECQ       R8
	JMP        rowloop

done:
	VZEROUPPER
	RET

// func im2colPack3AVX2(dst, r0, r1, r2 *uint8, n, nc, kdim, stride, plane int)
//
// Interior gather kernel for the 3×3 im2col packers: for each of n
// output positions, composes nc channels' 9-tap patch blocks from three
// receptive-field row cursors. Each block is three 4-byte row loads
// merged in an XMM register (VPSHUFB compacting the 3×4 loaded bytes
// down to the 9 taps) and written with ONE 16-byte store — the 7
// trailing bytes are zeros spilling into the next channel's block at the
// same position, which a later pass overwrites (callers only route
// channels with p+16 ≤ kdim here; the final channel keeps the exact Go
// stores, so nc is at most InC-1).
//
//	dst: position stride kdim bytes, channel stride 9 bytes
//	r0, r1, r2: channel-0 cursors; `stride` bytes per position,
//	            `plane` bytes per channel, 4 bytes readable per load
TEXT ·im2colPack3AVX2(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ r0+8(FP), SI
	MOVQ r1+16(FP), R8
	MOVQ r2+24(FP), R9
	MOVQ n+32(FP), CX
	MOVQ nc+40(FP), R12
	MOVQ kdim+48(FP), R10
	MOVQ stride+56(FP), R11
	MOVQ plane+64(FP), R13
	VMOVDQU pack3Mask<>(SB), X3

pos:
	MOVQ DI, AX               // block cursor: +9 per channel
	MOVQ SI, R14              // per-channel source cursors: +plane each
	MOVQ R8, R15
	MOVQ R9, BX
	MOVQ R12, DX

chan:
	VMOVD   (R14), X0         // r0[x..x+3] → bytes 0-3
	VPINSRD $1, (R15), X0, X0 // r1[x..x+3] → bytes 4-7
	VPINSRD $2, (BX), X0, X0  // r2[x..x+3] → bytes 8-11
	VPSHUFB X3, X0, X0        // compact to 9 taps + 7 zero bytes
	VMOVDQU X0, (AX)
	ADDQ    R13, R14
	ADDQ    R13, R15
	ADDQ    R13, BX
	ADDQ    $9, AX
	DECQ    DX
	JNZ     chan

	ADDQ R11, SI              // next output position
	ADDQ R11, R8
	ADDQ R11, R9
	ADDQ R10, DI
	DECQ CX
	JNZ  pos
	VZEROUPPER
	RET

// 16-byte VPSHUFB mask: [0 1 2 | 4 5 6 | 8 9 10] then high-bit (zero
// fill) for the 7 spill bytes.
DATA pack3Mask<>+0(SB)/8, $0x0908060504020100
DATA pack3Mask<>+8(SB)/8, $0x808080808080800A
GLOBL pack3Mask<>(SB), RODATA|NOPTR, $16
