package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution: input spatial size,
// kernel, stride and symmetric zero padding.
type ConvGeom struct {
	InC, InH, InW int // input channels / height / width
	KH, KW        int // kernel height / width
	Stride        int
	Pad           int
}

// OutHW returns the spatial output size of the convolution.
func (g ConvGeom) OutHW() (int, int) {
	oh := (g.InH+2*g.Pad-g.KH)/g.Stride + 1
	ow := (g.InW+2*g.Pad-g.KW)/g.Stride + 1
	return oh, ow
}

// Validate returns an error when the geometry is degenerate.
func (g ConvGeom) Validate() error {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("%w: conv geometry %+v has non-positive dims", ErrShape, g)
	}
	if g.Stride <= 0 {
		return fmt.Errorf("%w: conv stride %d must be positive", ErrShape, g.Stride)
	}
	if g.Pad < 0 {
		return fmt.Errorf("%w: conv pad %d must be non-negative", ErrShape, g.Pad)
	}
	oh, ow := g.OutHW()
	if oh <= 0 || ow <= 0 {
		return fmt.Errorf("%w: conv geometry %+v yields empty output %dx%d", ErrShape, g, oh, ow)
	}
	return nil
}

// Im2Col unrolls one image (C, H, W) into a matrix of shape
// (C*KH*KW, OH*OW) so convolution becomes a GEMM with the (outC, C*KH*KW)
// weight matrix. Out-of-bounds taps contribute zeros (zero padding).
func Im2Col(img *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if img.Rank() != 3 || img.shape[0] != g.InC || img.shape[1] != g.InH || img.shape[2] != g.InW {
		return nil, fmt.Errorf("%w: im2col image %v does not match geometry %+v", ErrShape, img.shape, g)
	}
	oh, ow := g.OutHW()
	cols := New(g.InC*g.KH*g.KW, oh*ow)
	src := img.data
	dst := cols.data
	ncols := oh * ow
	row := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dst[row*ncols : (row+1)*ncols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue // stays zero
					}
					srow := src[base+iy*g.InW:]
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						drow[oy*ow+ox] = srow[ix]
					}
				}
				row++
			}
		}
	}
	return cols, nil
}

// Im2ColBatch unrolls a whole NCHW batch into one column matrix of shape
// (C*KH*KW, N·OH·OW), where column i·OH·OW + s holds output position s of
// sample i. Packing the batch once lets convolution run as a single large
// GEMM with the (outC, C*KH*KW) weight matrix instead of N small ones.
func Im2ColBatch(x *Tensor, g ConvGeom) (*Tensor, error) {
	if err := validateBatchImage(x, g); err != nil {
		return nil, err
	}
	oh, ow := g.OutHW()
	cols := New(g.InC*g.KH*g.KW, x.shape[0]*oh*ow)
	if err := Im2ColBatchInto(cols, x, g); err != nil {
		return nil, err
	}
	return cols, nil
}

// Im2ColBatchInto is Im2ColBatch into a caller-owned destination of shape
// (C*KH*KW, N·OH·OW), e.g. a scratch arena reused across training steps.
// Every element of dst is written (zeros included), so stale contents are
// harmless.
func Im2ColBatchInto(dst, x *Tensor, g ConvGeom) error {
	if err := validateBatchImage(x, g); err != nil {
		return err
	}
	n := x.shape[0]
	oh, ow := g.OutHW()
	s := oh * ow
	ns := n * s
	if dst.Rank() != 2 || dst.shape[0] != g.InC*g.KH*g.KW || dst.shape[1] != ns {
		return fmt.Errorf("%w: im2col batch dst %v does not match geometry %+v for batch %d", ErrShape, dst.shape, g, n)
	}
	src := x.data
	out := dst.data
	inSz := g.InC * g.InH * g.InW
	ParallelFor(n, func(i int) {
		img := src[i*inSz : (i+1)*inSz]
		row := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					drow := out[row*ns+i*s : row*ns+(i+1)*s]
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						dseg := drow[oy*ow : (oy+1)*ow]
						if iy < 0 || iy >= g.InH {
							for ox := range dseg {
								dseg[ox] = 0
							}
							continue
						}
						srow := img[base+iy*g.InW : base+(iy+1)*g.InW]
						if g.Stride == 1 && kw >= g.Pad && g.InW-ow >= kw-g.Pad {
							// Interior fast path: the tap row is a straight copy.
							copy(dseg, srow[kw-g.Pad:])
							continue
						}
						for ox := range dseg {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								dseg[ox] = 0
							} else {
								dseg[ox] = srow[ix]
							}
						}
					}
					row++
				}
			}
		}
	})
	return nil
}

// Col2ImBatchInto is the adjoint of Im2ColBatchInto: it scatters a
// (C*KH*KW, N·OH·OW) column-gradient matrix back into an NCHW batch image,
// accumulating overlapping taps. dst is fully overwritten (it is zeroed
// before accumulation), so it can be a reused scratch arena.
func Col2ImBatchInto(dst, cols *Tensor, g ConvGeom) error {
	if err := validateBatchImage(dst, g); err != nil {
		return err
	}
	n := dst.shape[0]
	oh, ow := g.OutHW()
	s := oh * ow
	ns := n * s
	if cols.Rank() != 2 || cols.shape[0] != g.InC*g.KH*g.KW || cols.shape[1] != ns {
		return fmt.Errorf("%w: col2im batch cols %v does not match geometry %+v for batch %d", ErrShape, cols.shape, g, n)
	}
	src := cols.data
	out := dst.data
	inSz := g.InC * g.InH * g.InW
	ParallelFor(n, func(i int) {
		img := out[i*inSz : (i+1)*inSz]
		for j := range img {
			img[j] = 0
		}
		row := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for kh := 0; kh < g.KH; kh++ {
				for kw := 0; kw < g.KW; kw++ {
					srow := src[row*ns+i*s : row*ns+(i+1)*s]
					for oy := 0; oy < oh; oy++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						sseg := srow[oy*ow : (oy+1)*ow]
						drow := img[base+iy*g.InW : base+(iy+1)*g.InW]
						if g.Stride == 1 && kw >= g.Pad && g.InW-ow >= kw-g.Pad {
							axpy1(drow[kw-g.Pad:][:ow], sseg, 1)
							continue
						}
						for ox := range sseg {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							drow[ix] += sseg[ox]
						}
					}
					row++
				}
			}
		}
	})
	return nil
}

func validateBatchImage(x *Tensor, g ConvGeom) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if x.Rank() != 4 || x.shape[1] != g.InC || x.shape[2] != g.InH || x.shape[3] != g.InW {
		return fmt.Errorf("%w: batch image %v does not match geometry %+v", ErrShape, x.shape, g)
	}
	return nil
}

// Col2Im is the adjoint of Im2Col: it scatters a (C*KH*KW, OH*OW) column
// matrix back into an image (C, H, W), accumulating overlapping taps. It is
// used to back-propagate through the im2col transform.
func Col2Im(cols *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	oh, ow := g.OutHW()
	if cols.Rank() != 2 || cols.shape[0] != g.InC*g.KH*g.KW || cols.shape[1] != oh*ow {
		return nil, fmt.Errorf("%w: col2im matrix %v does not match geometry %+v", ErrShape, cols.shape, g)
	}
	img := New(g.InC, g.InH, g.InW)
	src := cols.data
	dst := img.data
	ncols := oh * ow
	row := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				srow := src[row*ncols : (row+1)*ncols]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					if iy < 0 || iy >= g.InH {
						continue
					}
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							continue
						}
						dst[base+iy*g.InW+ix] += srow[oy*ow+ox]
					}
				}
				row++
			}
		}
	}
	return img, nil
}

// ConvDirect computes a 2-D convolution of a single image the naive way.
// It exists purely as a reference implementation for testing the
// im2col+GEMM path. weight has shape (outC, inC, KH, KW).
func ConvDirect(img, weight *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	outC := weight.shape[0]
	oh, ow := g.OutHW()
	out := New(outC, oh, ow)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						iy := oy*g.Stride + kh - g.Pad
						if iy < 0 || iy >= g.InH {
							continue
						}
						for kw := 0; kw < g.KW; kw++ {
							ix := ox*g.Stride + kw - g.Pad
							if ix < 0 || ix >= g.InW {
								continue
							}
							s += img.At(c, iy, ix) * weight.At(oc, c, kh, kw)
						}
					}
				}
				out.Set(s, oc, oy, ox)
			}
		}
	}
	return out, nil
}
