package tensor

import "testing"

// Conv-shaped integer GEMM: SmallCNN layer 3 at the deploy geometry
// (32 filters, depth 144, 64-sample batch of 8×8 outputs).
func benchIntOperandsConv() (a []int8, b []uint8, m, k, n int) {
	rng := NewRNG(7)
	m, k, n = 32, 144, 4096
	return randI8(rng, m*k), randU8(rng, k*n), m, k, n
}

func BenchmarkMatMulI8U8ConvShaped(b *testing.B) {
	wa, xb, m, k, n := benchIntOperandsConv()
	dst := make([]int32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulI8U8Into(dst, wa, xb, m, k, n); err != nil {
			b.Fatal(err)
		}
	}
}
