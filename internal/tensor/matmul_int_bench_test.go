package tensor

import "testing"

// Conv-shaped integer GEMM: SmallCNN layer 3 at the deploy geometry
// (32 filters, depth 144, 64-sample batch of 8×8 outputs).
func benchIntOperandsConv() (a []int8, b []uint8, m, k, n int) {
	rng := NewRNG(7)
	m, k, n = 32, 144, 4096
	return randI8(rng, m*k), randU8(rng, k*n), m, k, n
}

func BenchmarkMatMulI8U8ConvShaped(b *testing.B) {
	wa, xb, m, k, n := benchIntOperandsConv()
	dst := make([]int32, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulI8U8Into(dst, wa, xb, m, k, n); err != nil {
			b.Fatal(err)
		}
	}
}

// The same conv-shaped product through the packed path (activations ×
// prepacked weight panels, the serving-engine orientation): m = 4096
// output positions, k = 144, n = 32 filters.
func benchPackedOperandsConv(b *testing.B) (a []uint8, pb *PackedI8, m, lda int) {
	rng := NewRNG(7)
	m, k, n := 4096, 144, 32
	bt := randI8(rng, n*k)
	pb, err := PackI8PanelsBT(bt, k, n)
	if err != nil {
		b.Fatal(err)
	}
	return padForQuads(randU8(rng, m*k)), pb, m, k
}

func BenchmarkMatMulU8I8Packed(b *testing.B) {
	a, pb, m, lda := benchPackedOperandsConv(b)
	dst := make([]int32, m*pb.Cols())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulU8I8PackedInto(dst, a, pb, m, lda); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulU8I8PackedPortable(b *testing.B) {
	a, pb, m, lda := benchPackedOperandsConv(b)
	prev := SetSIMD(false)
	defer SetSIMD(prev)
	dst := make([]int32, m*pb.Cols())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMulU8I8PackedInto(dst, a, pb, m, lda); err != nil {
			b.Fatal(err)
		}
	}
}
