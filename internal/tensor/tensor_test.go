package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{1, 1, 1, 1}, 1},
	}
	for _, tc := range cases {
		tr := New(tc.shape...)
		if tr.Len() != tc.want {
			t.Errorf("New(%v).Len() = %d, want %d", tc.shape, tr.Len(), tc.want)
		}
		if tr.Rank() != len(tc.shape) {
			t.Errorf("New(%v).Rank() = %d, want %d", tc.shape, tr.Rank(), len(tc.shape))
		}
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]float32{1, 2, 3}, 2, 2); !errors.Is(err, ErrShape) {
		t.Errorf("FromSlice with wrong count: err = %v, want ErrShape", err)
	}
	if _, err := FromSlice([]float32{1, 2, 3, 4}, 2, 2); err != nil {
		t.Errorf("FromSlice valid: err = %v", err)
	}
	if _, err := FromSlice(nil, 0); !errors.Is(err, ErrShape) {
		t.Errorf("FromSlice zero dim: err = %v, want ErrShape", err)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	tr := New(2, 3, 4)
	tr.Set(42, 1, 2, 3)
	if got := tr.At(1, 2, 3); got != 42 {
		t.Errorf("At(1,2,3) = %v, want 42", got)
	}
	// row-major layout: offset = ((1*3)+2)*4+3 = 23
	if tr.Data()[23] != 42 {
		t.Errorf("row-major offset mismatch: data[23] = %v", tr.Data()[23])
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data()[0] = 99
	if a.Data()[0] != 1 {
		t.Error("Clone shares backing storage")
	}
}

func TestReshape(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatalf("Reshape: %v", err)
	}
	if b.At(2, 1) != 6 {
		t.Errorf("reshaped At(2,1) = %v, want 6", b.At(2, 1))
	}
	if _, err := a.Reshape(4, 2); !errors.Is(err, ErrShape) {
		t.Errorf("bad reshape err = %v, want ErrShape", err)
	}
	// Reshape is a view.
	b.Data()[0] = 77
	if a.Data()[0] != 77 {
		t.Error("Reshape did not alias storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4}, 4)
	b := MustFromSlice([]float32{10, 20, 30, 40}, 4)
	if err := a.Add(b); err != nil {
		t.Fatalf("Add: %v", err)
	}
	want := []float32{11, 22, 33, 44}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Errorf("Add[%d] = %v, want %v", i, v, want[i])
		}
	}
	if err := a.Sub(b); err != nil {
		t.Fatalf("Sub: %v", err)
	}
	for i, v := range a.Data() {
		if v != float32(i+1) {
			t.Errorf("Sub[%d] = %v, want %v", i, v, i+1)
		}
	}
	a.Scale(2)
	if a.Data()[3] != 8 {
		t.Errorf("Scale: got %v, want 8", a.Data()[3])
	}
	c := MustFromSlice([]float32{1, 1}, 2)
	if err := a.Add(c); !errors.Is(err, ErrShape) {
		t.Errorf("shape-mismatched Add err = %v, want ErrShape", err)
	}
}

func TestReductions(t *testing.T) {
	a := MustFromSlice([]float32{-1, 2, -3, 4}, 4)
	if got := a.Sum(); got != 2 {
		t.Errorf("Sum = %v, want 2", got)
	}
	if got := a.Mean(); got != 0.5 {
		t.Errorf("Mean = %v, want 0.5", got)
	}
	if got := a.AbsMean(); got != 2.5 {
		t.Errorf("AbsMean = %v, want 2.5", got)
	}
	min, max := a.MinMax()
	if min != -3 || max != 4 {
		t.Errorf("MinMax = (%v, %v), want (-3, 4)", min, max)
	}
	if got := a.L2Norm(); math.Abs(got-math.Sqrt(30)) > 1e-9 {
		t.Errorf("L2Norm = %v, want sqrt(30)", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	a := MustFromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	if got := a.ArgMaxRow(0); got != 1 {
		t.Errorf("ArgMaxRow(0) = %d, want 1", got)
	}
	if got := a.ArgMaxRow(1); got != 0 {
		t.Errorf("ArgMaxRow(1) = %d, want 0", got)
	}
}

func TestHasNaN(t *testing.T) {
	a := MustFromSlice([]float32{1, 2}, 2)
	if a.HasNaN() {
		t.Error("HasNaN on clean tensor")
	}
	a.Data()[1] = float32(math.NaN())
	if !a.HasNaN() {
		t.Error("HasNaN missed NaN")
	}
	a.Data()[1] = float32(math.Inf(1))
	if !a.HasNaN() {
		t.Error("HasNaN missed Inf")
	}
}

func TestClampInPlace(t *testing.T) {
	a := MustFromSlice([]float32{-5, 0, 5}, 3)
	a.ClampInPlace(-1, 1)
	want := []float32{-1, 0, 1}
	for i, v := range a.Data() {
		if v != want[i] {
			t.Errorf("Clamp[%d] = %v, want %v", i, v, want[i])
		}
	}
}

// Property: Add then Sub restores the original values exactly (float32
// addition of the same operand is exactly invertible only when no rounding
// occurs, so keep values in a safe integer range).
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(vals []int16) bool {
		if len(vals) == 0 {
			return true
		}
		a := New(len(vals))
		b := New(len(vals))
		for i, v := range vals {
			a.Data()[i] = float32(v)
			b.Data()[i] = float32(v / 2)
		}
		orig := a.Clone()
		if err := a.Add(b); err != nil {
			return false
		}
		if err := a.Sub(b); err != nil {
			return false
		}
		for i := range a.Data() {
			if a.Data()[i] != orig.Data()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MinMax brackets every element.
func TestMinMaxBracketsProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) {
				vals[i] = 0
			}
		}
		a := New(len(vals))
		copy(a.Data(), vals)
		min, max := a.MinMax()
		for _, v := range vals {
			if v < min || v > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		prev := SetMaxWorkers(workers)
		n := 1000
		hits := make([]int32, n)
		ParallelFor(n, func(i int) { hits[i]++ })
		SetMaxWorkers(prev)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestParallelForEmpty(t *testing.T) {
	called := false
	ParallelFor(0, func(int) { called = true })
	ParallelFor(-3, func(int) { called = true })
	if called {
		t.Error("ParallelFor called fn for non-positive n")
	}
}
