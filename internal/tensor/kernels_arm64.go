//go:build arm64

package tensor

import "os"

// NEON dispatch for arm64. Advanced SIMD is baseline on AArch64, so there
// is no feature probe: the NEON kernels from kernels_arm64.s,
// kernels_int_arm64.s and kernels_requant_arm64.s are installed
// unconditionally unless APT_NOSIMD is set (or SetSIMD(false) is called),
// in which case the portable Go kernels — the cross-arch reference —
// stay in place.
//
// Deliberately left portable on arm64: the dot/AXPY fallbacks (the packed
// panels carry all the GEMM weight here) and the nr<8 integer edge kernel
// (packedAsmEdge stays nil; the portable edge loop handles partial
// panels, which only ever cover the last few columns of a layer).

//go:noescape
func packedGEMMNEON(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)

//go:noescape
func packedF32GEMM4x16NEON(dst, a, panel *float32, m, k, ars, aks, ldd int)

//go:noescape
func packedF32GEMM1x16NEON(dst, a, panel *float32, k, aks int)

//go:noescape
func packedF32GEMM4x8NEON(dst, a, panel *float32, m, k, ars, aks, ldd int)

//go:noescape
func packedF32GEMM1x8NEON(dst, a, panel *float32, k, aks int)

//go:noescape
func requantQ31RowsNEON(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, m, nc4, lda, ldd int)

//go:noescape
func requantQ31TransNEON(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, np8, nc4, lda, ldd int)

func init() {
	simdFeatures = "neon"
	simdApply = applySIMDArm64
	simdApply(os.Getenv("APT_NOSIMD") == "")
}

// applySIMDArm64 mirrors applySIMDAmd64: it points every kernel dispatch
// variable at the NEON assembly or the portable implementation, backing
// SetSIMD so both paths stay testable on one machine.
func applySIMDArm64(on bool) {
	simdOn = on
	if !on {
		packedAsmFast, packedAsmWide = nil, nil
		packedAsmFast4, packedAsmWide4 = nil, nil
		f32Panel4, f32Panel1 = f32Panel4Go, f32Panel1Go
		f32Panel4w8, f32Panel1w8 = f32Panel4x8Go, f32Panel1x8Go
		requantRowsAsm, requantTransAsm = nil, nil
		return
	}
	// One integer routine serves all four slots: the widening SMLAL
	// kernel is exact for any weights, so the fast/wide (saturation
	// hazard) split that AVX2's VPMADDUBSW forces does not exist here.
	packedAsmFast = packedNEONAsm
	packedAsmWide = packedNEONAsm
	packedAsmFast4 = packedNEONAsm
	packedAsmWide4 = packedNEONAsm
	f32Panel4 = f32Panel4NEONWrap
	f32Panel1 = f32Panel1NEONWrap
	f32Panel4w8 = f32Panel4w8NEONWrap
	f32Panel1w8 = f32Panel1w8NEONWrap
	requantRowsAsm = requantRowsNEONWrap
	requantTransAsm = requantTransNEONWrap
}

func packedNEONAsm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	// Bounds asserted by MatMulU8I8PackedInto; the kernel reads 4·kq bytes
	// per operand row and writes 8 int32 per dst row.
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+7]
	_ = panel[kq*32-1]
	packedGEMMNEON(&dst[0], &a[0], &panel[0], m, kq, lda, ldd)
}

func f32Panel4NEONWrap(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	// m is a positive multiple of 4; each row reads k strided taps of a
	// and writes 16 consecutive dst floats.
	_ = a[(m-1)*ars+(k-1)*aks]
	_ = dst[(m-1)*ldd+15]
	_ = panel[k*16-1]
	packedF32GEMM4x16NEON(&dst[0], &a[0], &panel[0], m, k, ars, aks, ldd)
}

func f32Panel1NEONWrap(dst, a, panel []float32, k, aks int) {
	_ = a[(k-1)*aks]
	_ = dst[15]
	_ = panel[k*16-1]
	packedF32GEMM1x16NEON(&dst[0], &a[0], &panel[0], k, aks)
}

func f32Panel4w8NEONWrap(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	_ = a[(m-1)*ars+(k-1)*aks]
	_ = dst[(m-1)*ldd+7]
	_ = panel[k*8-1]
	packedF32GEMM4x8NEON(&dst[0], &a[0], &panel[0], m, k, ars, aks, ldd)
}

func f32Panel1w8NEONWrap(dst, a, panel []float32, k, aks int) {
	_ = a[(k-1)*aks]
	_ = dst[7]
	_ = panel[k*8-1]
	packedF32GEMM1x8NEON(&dst[0], &a[0], &panel[0], k, aks)
}

func requantRowsNEONWrap(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, m, nc4, lda, ldd int) {
	// Bounds asserted by RequantQ31Rows; re-pin the extremes the kernel
	// touches (last row's last group and every per-channel parameter).
	_ = acc[(m-1)*lda+nc4-1]
	_ = dst[(m-1)*ldd+nc4-1]
	_ = m0[nc4-1]
	_ = rsh[nc4-1]
	_ = corr[nc4-1]
	requantQ31RowsNEON(&dst[0], &acc[0], &m0[0], &rsh[0], &corr[0], int(zp), int(lo), m, nc4, lda, ldd)
}

func requantTransNEONWrap(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, np8, nc4, lda, ldd int) {
	_ = acc[(np8-1)*lda+nc4-1]
	_ = dst[(nc4-1)*ldd+np8-1]
	_ = m0[nc4-1]
	_ = rsh[nc4-1]
	_ = corr[nc4-1]
	requantQ31TransNEON(&dst[0], &acc[0], &m0[0], &rsh[0], &corr[0], int(zp), int(lo), np8, nc4, lda, ldd)
}
