package tensor

import "fmt"

// Implicit-im2col integer convolution: the conv GEMM consumes NCHW uint8
// activations in place instead of reading a materialized patch matrix.
//
// The materialized path (Im2ColBatchU8PatchesInto + MatMulU8I8PackedInto)
// writes N·OH·OW·C·KH·KW patch bytes to a scratch arena and immediately
// streams them back — for the CIFAR-scale serving models that buffer is
// multiple megabytes per call, so every activation byte round-trips RAM
// KH·KW times before the kernels ever see it, and the packer dominates
// the forward profile. The implicit driver instead walks the activation
// tensor directly with the precomputed (tap, row, col) strides of a
// ConvPlanU8: output positions are processed in bands of a few output
// rows, each band's receptive fields gathered into a small per-worker
// buffer sized to stay L1/L2-resident, and all weight panels run against
// the band while it is hot. The gather is the exact store sequence of the
// materialized packer (both call im2colU8PatchRow), zero-point padding
// included, so the two lowerings are bit-identical by construction; the
// difference is purely where the patch rows live — a cache-resident band
// reused across every weight panel versus a RAM-resident batch matrix
// written once and read once.
//
// The micro-kernels are untouched: runPackedPanel dispatches the same
// 4×8 fast/widening/edge kernels over the band with lda = kdim, exactly
// as the materialized GEMM does, so SIMD and portable dispatch stay
// bit-identical too.

// implicitBandTarget is the output-position count one gather band aims
// for: enough rows that the 4-row micro-kernels amortize their panel
// loads across a long m, small enough that band·kdim bytes stay cache
// resident for every conv shape in the zoo.
const implicitBandTarget = 128

// implicitBandBytes caps the gather buffer; bands shrink to fit (a band
// never shrinks below one output row — a single row of a huge conv still
// beats materializing the whole batch).
const implicitBandBytes = 48 << 10

// ConvPlanU8 is the compile-time gather schedule of the implicit-im2col
// conv driver: the conv geometry with everything the per-call hot loop
// would otherwise rederive — patch row width, the interior output-column
// range (every tap in-bounds) and the output-row banding — resolved
// once. Plans are immutable and shared across concurrent calls.
type ConvPlanU8 struct {
	g        ConvGeom
	oh, ow   int
	kdim     int // patch row width: InC·KH·KW
	xlo, xhi int // interior output columns (see im2colXRange)
	brows    int // output rows gathered per band
	bands    int // bands per sample: ceil(oh/brows)
	// 3×3 staged-gather layout (zero when KH·KW ≠ 3×3): each band first
	// copies its receptive-field rows into a zero-point-padded staging
	// strip — vertical and horizontal padding pre-materialized — so the
	// per-position compose loop (and the SIMD pack kernel) runs with
	// unconditional word loads over every output column, no border or
	// tail branches anywhere in the band.
	srw   int // staged row width: InW + 2·Pad + word-load slack
	sbr   int // staged rows per full band: (brows-1)·Stride + KH
	stage int // staging strip bytes: InC·sbr·srw
}

// NewConvPlanU8 builds the implicit-im2col schedule for a geometry.
func NewConvPlanU8(g ConvGeom) (*ConvPlanU8, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	xlo, xhi := im2colXRange(g, ow)
	fast3 := g.KH == 3 && g.KW == 3
	srw := g.InW + 2*g.Pad + 4
	stageBytes := func(brows int) int {
		if !fast3 {
			return 0
		}
		return g.InC * ((brows-1)*g.Stride + g.KH) * srw
	}
	brows := (implicitBandTarget + ow - 1) / ow
	for brows > 1 && brows*ow*kdim+stageBytes(brows) > implicitBandBytes {
		brows--
	}
	if brows > oh {
		brows = oh
	}
	p := &ConvPlanU8{
		g: g, oh: oh, ow: ow,
		kdim: kdim, xlo: xlo, xhi: xhi,
		brows: brows,
		bands: (oh + brows - 1) / brows,
	}
	if fast3 {
		p.srw = srw
		p.sbr = (brows-1)*g.Stride + g.KH
		p.stage = g.InC * p.sbr * srw
	}
	return p, nil
}

// Geom returns the plan's conv geometry.
func (p *ConvPlanU8) Geom() ConvGeom { return p.g }

// Bands returns the number of gather bands per sample.
func (p *ConvPlanU8) Bands() int { return p.bands }

// BandRows returns the output rows gathered per band (the last band of a
// sample may cover fewer).
func (p *ConvPlanU8) BandRows() int { return p.brows }

// BandLen returns the byte length of one gather lane: a full band of
// patch rows, the 3 spare bytes the packed kernels may read past the
// last row (they multiply zero weights; see PackedI8.PaddedK), and — for
// 3×3 geometries — the padded staging strip the band gather copies its
// receptive-field rows into.
func (p *ConvPlanU8) BandLen() int { return p.brows*p.ow*p.kdim + 3 + p.stage }

// ConvU8I8ImplicitInto computes the conv GEMM acc = patches(src)·b for a
// quantized NCHW batch (n samples, plan geometry) without materializing
// the patch matrix: each (sample, output-row band) task gathers its
// receptive fields into a lane of work and runs every weight panel of b
// against the band in place. acc is the position-major accumulator
// ((N·OH·OW, outC), fully overwritten) — identical layout and, bit for
// bit, identical contents to the materialized path. Out-of-bounds taps
// read as pad (the activation zero point). work provides the gather
// lanes: min(MaxWorkers(), n·plan.Bands()) × plan.BandLen() bytes, owned
// by the caller so steady-state calls allocate nothing.
func ConvU8I8ImplicitInto(acc []int32, src []uint8, n int, b *PackedI8, p *ConvPlanU8, pad uint8, work []uint8) error {
	if n <= 0 {
		return fmt.Errorf("%w: conv implicit batch size %d", ErrShape, n)
	}
	if b.k != p.kdim {
		return fmt.Errorf("%w: conv implicit packed k %d != plan kdim %d", ErrShape, b.k, p.kdim)
	}
	inSz := p.g.InC * p.g.InH * p.g.InW
	if len(src) < n*inSz {
		return fmt.Errorf("%w: conv implicit src has %d elements, want >= %d", ErrShape, len(src), n*inSz)
	}
	if len(acc) < n*p.oh*p.ow*b.n {
		return fmt.Errorf("%w: conv implicit acc has %d elements, want >= %d", ErrShape, len(acc), n*p.oh*p.ow*b.n)
	}
	tasks := n * p.bands
	lanes := maxWorkers
	if lanes > tasks {
		lanes = tasks
	}
	if len(work) < lanes*p.BandLen() {
		return fmt.Errorf("%w: conv implicit work has %d bytes, want >= %d (%d lanes × %d)",
			ErrShape, len(work), lanes*p.BandLen(), lanes, p.BandLen())
	}
	if lanes == 1 {
		buf := work[:p.BandLen()]
		for t := 0; t < tasks; t++ {
			m := p.GatherBandInto(buf, src, pad, t)
			p.GEMMBand(acc, buf, b, t, m)
		}
		return nil
	}
	bl := p.BandLen()
	ParallelForWorker(tasks, func(t, lane int) {
		buf := work[lane*bl : (lane+1)*bl]
		m := p.GatherBandInto(buf, src, pad, t)
		p.GEMMBand(acc, buf, b, t, m)
	})
	return nil
}

// bandSpan resolves task t into its sample index and output-row range.
func (p *ConvPlanU8) bandSpan(t int) (i, oy0, oy1 int) {
	i, band := t/p.bands, t%p.bands
	oy0 = band * p.brows
	oy1 = oy0 + p.brows
	if oy1 > p.oh {
		oy1 = p.oh
	}
	return i, oy0, oy1
}

// GatherBandInto packs task t's receptive fields (sample t/Bands(),
// band t%Bands() of its output rows) into buf and returns the band's
// position count m. It is one half of ConvU8I8ImplicitInto's band task,
// exported (with GEMMBand) so the serving engine's profiled forward can
// time the gather and the GEMM separately; the driver entry point is the
// validated way in, and buf must hold BandLen() bytes.
func (p *ConvPlanU8) GatherBandInto(buf, src []uint8, pad uint8, t int) int {
	i, oy0, oy1 := p.bandSpan(t)
	inSz := p.g.InC * p.g.InH * p.g.InW
	img := src[i*inSz : (i+1)*inSz]
	if p.stage != 0 {
		p.gatherBand3(buf, img, pad, oy0, oy1)
		return (oy1 - oy0) * p.ow
	}
	rowLen := p.ow * p.kdim
	for oy := oy0; oy < oy1; oy++ {
		im2colU8PatchRow(buf[(oy-oy0)*rowLen:][:rowLen], img, p.g, pad, oy, p.xlo, p.xhi)
	}
	return (oy1 - oy0) * p.ow
}

// gatherBand3 is the staged 3×3 band gather. Phase one copies the band's
// receptive-field rows per channel into the zero-point-padded staging
// strip (rows outside the image become whole pad rows, in-range rows get
// pad bytes on both flanks), which materializes the position-independent
// padding contract once. Phase two composes every patch row from the
// strip with unconditional word loads: the SIMD pack kernel sweeps all
// output columns and channels in one call per output row, and the Go
// loop (portable dispatch) uses the same exact 8-byte + 1-byte stores as
// im2colU8PatchRow3's interior — the produced bytes are identical to the
// unstaged path's.
//
// Spill safety for the kernel's 16-byte stores (9 patch bytes + 7 zero
// bytes): within a row every spill lands in the next channel's block at
// the same position, rewritten later in the same call; the last block's
// spill crosses into the next output row's first block, rewritten by the
// next row's call; and the final row's last spill lands in the 3 spare
// kernel-slack bytes plus the first 4 staging bytes — staged row 0 of
// channel 0, which only the first compose of the band reads (strictly
// before any spill) and which the next band's phase one rewrites whole.
// buf is the full BandLen() lane: patch rows, slack, staging strip.
func (p *ConvPlanU8) gatherBand3(buf, img []uint8, pad uint8, oy0, oy1 int) {
	g := p.g
	srw := p.srw
	rows := (oy1-1-oy0)*g.Stride + 3 // staged rows this band actually uses
	plane := rows * srw
	gl := p.brows*p.ow*p.kdim + 3
	stage := buf[gl : gl+p.stage]
	iyLo := oy0*g.Stride - g.Pad
	for c := 0; c < g.InC; c++ {
		sp := stage[c*plane : (c+1)*plane]
		base := c * g.InH * g.InW
		for r := 0; r < rows; r++ {
			row := sp[r*srw : (r+1)*srw]
			iy := iyLo + r
			if iy < 0 || iy >= g.InH {
				for j := range row {
					row[j] = pad
				}
				continue
			}
			for j := 0; j < g.Pad; j++ {
				row[j] = pad
			}
			copy(row[g.Pad:g.Pad+g.InW], img[base+iy*g.InW:base+(iy+1)*g.InW])
			for j := g.Pad + g.InW; j < srw; j++ {
				row[j] = pad
			}
		}
	}
	kdim := p.kdim
	for oy := oy0; oy < oy1; oy++ {
		drow := buf[(oy-oy0)*p.ow*kdim:]
		r := (oy - oy0) * g.Stride
		c0 := 0
		if pack3Asm != nil {
			c0 = g.InC
			pack3Asm(drow, stage[r*srw:], stage[(r+1)*srw:], stage[(r+2)*srw:],
				p.ow, c0, kdim, g.Stride, plane)
		}
		for c := c0; c < g.InC; c++ {
			cp := c*plane + r*srw
			t0 := stage[cp:]
			t1 := stage[cp+srw:]
			t2 := stage[cp+2*srw:]
			d := c * 9
			sx := 0
			for ox := 0; ox < p.ow; ox++ {
				w0 := getU32(t0[sx : sx+4])
				w1 := getU32(t1[sx : sx+4])
				w2 := getU32(t2[sx : sx+4])
				putU64(drow[d:d+8],
					uint64(w0&0xFFFFFF)|uint64(w1&0xFFFFFF)<<24|uint64(w2&0xFFFF)<<48)
				drow[d+8] = uint8(w2 >> 16)
				d += kdim
				sx += g.Stride
			}
		}
	}
}

// GEMMBand runs every weight panel of b against task t's gathered band
// (m positions in buf), writing the band's rows of the position-major
// accumulator. See GatherBandInto.
func (p *ConvPlanU8) GEMMBand(acc []int32, buf []uint8, b *PackedI8, t, m int) {
	i, oy0, _ := p.bandSpan(t)
	d := acc[(i*p.oh+oy0)*p.ow*b.n:]
	for pi := 0; pi < b.panels; pi++ {
		runPackedPanel(d, buf, b, pi, m, p.kdim, b.n)
	}
}
