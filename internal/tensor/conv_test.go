package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestConvGeomOutHW(t *testing.T) {
	cases := []struct {
		g        ConvGeom
		oh, ow   int
		validErr bool
	}{
		{ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 1, Pad: 1}, 32, 32, false},
		{ConvGeom{InC: 3, InH: 32, InW: 32, KH: 3, KW: 3, Stride: 2, Pad: 1}, 16, 16, false},
		{ConvGeom{InC: 1, InH: 5, InW: 5, KH: 5, KW: 5, Stride: 1, Pad: 0}, 1, 1, false},
		{ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0}, 0, 0, true},
		{ConvGeom{InC: 0, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1}, 0, 0, true},
		{ConvGeom{InC: 1, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 0}, 0, 0, true},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if tc.validErr {
			if !errors.Is(err, ErrShape) {
				t.Errorf("%+v: Validate = %v, want ErrShape", tc.g, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%+v: Validate = %v", tc.g, err)
			continue
		}
		oh, ow := tc.g.OutHW()
		if oh != tc.oh || ow != tc.ow {
			t.Errorf("%+v: OutHW = (%d,%d), want (%d,%d)", tc.g, oh, ow, tc.oh, tc.ow)
		}
	}
}

// Property: the im2col+GEMM convolution matches the naive direct
// convolution for random geometries, including strides and padding.
func TestIm2ColGEMMMatchesDirectProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		g := ConvGeom{
			InC:    1 + rng.Intn(3),
			InH:    4 + rng.Intn(6),
			KH:     1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(2),
		}
		g.InW = g.InH
		g.KW = g.KH
		if g.Validate() != nil {
			return true // skip degenerate draws
		}
		outC := 1 + rng.Intn(4)
		img := New(g.InC, g.InH, g.InW)
		img.FillNormal(rng, 0, 1)
		w := New(outC, g.InC, g.KH, g.KW)
		w.FillNormal(rng, 0, 1)

		direct, err := ConvDirect(img, w, g)
		if err != nil {
			return false
		}
		cols, err := Im2Col(img, g)
		if err != nil {
			return false
		}
		w2d := w.MustReshape(outC, g.InC*g.KH*g.KW)
		prod, err := MatMul(w2d, cols)
		if err != nil {
			return false
		}
		oh, ow := g.OutHW()
		gemm := prod.MustReshape(outC, oh, ow)
		for i := range gemm.Data() {
			if math.Abs(float64(gemm.Data()[i]-direct.Data()[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Col2Im is the adjoint of Im2Col: for random x and y,
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the property the
// backward pass relies on.
func TestCol2ImAdjointProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		g := ConvGeom{
			InC:    1 + rng.Intn(2),
			InH:    4 + rng.Intn(4),
			KH:     1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(2),
		}
		g.InW = g.InH
		g.KW = g.KH
		if g.Validate() != nil {
			return true
		}
		x := New(g.InC, g.InH, g.InW)
		x.FillNormal(rng, 0, 1)
		cols, err := Im2Col(x, g)
		if err != nil {
			return false
		}
		y := New(cols.Shape()...)
		y.FillNormal(rng, 0, 1)
		back, err := Col2Im(y, g)
		if err != nil {
			return false
		}
		var lhs, rhs float64
		for i := range cols.Data() {
			lhs += float64(cols.Data()[i]) * float64(y.Data()[i])
		}
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(back.Data()[i])
		}
		return math.Abs(lhs-rhs) <= 1e-2*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIm2ColShapeValidation(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	img := New(1, 8, 8) // wrong channel count
	if _, err := Im2Col(img, g); !errors.Is(err, ErrShape) {
		t.Errorf("Im2Col channel mismatch err = %v, want ErrShape", err)
	}
	cols := New(5, 5) // wrong matrix shape
	if _, err := Col2Im(cols, g); !errors.Is(err, ErrShape) {
		t.Errorf("Col2Im shape mismatch err = %v, want ErrShape", err)
	}
}

func TestPadCropFlip(t *testing.T) {
	img := MustFromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	padded, err := Pad2D(img, 1)
	if err != nil {
		t.Fatalf("Pad2D: %v", err)
	}
	if got := padded.Shape(); got[1] != 4 || got[2] != 4 {
		t.Fatalf("padded shape %v, want (1,4,4)", got)
	}
	if padded.At(0, 0, 0) != 0 || padded.At(0, 1, 1) != 1 || padded.At(0, 2, 2) != 4 {
		t.Error("Pad2D misplaced content")
	}
	crop, err := Crop2D(padded, 1, 1, 2, 2)
	if err != nil {
		t.Fatalf("Crop2D: %v", err)
	}
	for i := range img.Data() {
		if crop.Data()[i] != img.Data()[i] {
			t.Fatal("Crop2D(pad(x)) center != x")
		}
	}
	flipped, err := FlipH(img)
	if err != nil {
		t.Fatalf("FlipH: %v", err)
	}
	want := []float32{2, 1, 4, 3}
	for i, v := range flipped.Data() {
		if v != want[i] {
			t.Errorf("FlipH[%d] = %v, want %v", i, v, want[i])
		}
	}
	dbl, err := FlipH(flipped)
	if err != nil {
		t.Fatalf("FlipH: %v", err)
	}
	for i := range img.Data() {
		if dbl.Data()[i] != img.Data()[i] {
			t.Fatal("FlipH is not an involution")
		}
	}
	if _, err := Crop2D(img, 1, 1, 3, 3); !errors.Is(err, ErrShape) {
		t.Errorf("out-of-bounds crop err = %v, want ErrShape", err)
	}
	if _, err := Pad2D(img, -1); !errors.Is(err, ErrShape) {
		t.Errorf("negative pad err = %v, want ErrShape", err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 64; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look correlated")
	}
}

func TestRNGNormMoments(t *testing.T) {
	rng := NewRNG(7)
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := rng.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	rng := NewRNG(3)
	p := rng.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestFillHeNormalScale(t *testing.T) {
	rng := NewRNG(12)
	tt := New(20000)
	tt.FillHeNormal(rng, 50)
	var sumSq float64
	for _, v := range tt.Data() {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / float64(tt.Len()))
	want := math.Sqrt(2.0 / 50.0)
	if math.Abs(std-want) > 0.01 {
		t.Errorf("He std = %v, want ~%v", std, want)
	}
}
