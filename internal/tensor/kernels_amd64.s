//go:build amd64

#include "textflag.h"

// CPUID/XGETBV helpers for runtime feature detection (kernels_amd64.go).

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4fma(dst, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)
//
// dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n).
// Main loop handles 16 floats per iteration with two YMM accumulators;
// remainders fall through to an 8-wide loop and a scalar tail.
TEXT ·axpy4fma(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3

loop16:
	CMPQ CX, $16
	JLT  loop8
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS 32(SI), Y0, Y5
	VFMADD231PS (R8), Y1, Y4
	VFMADD231PS 32(R8), Y1, Y5
	VFMADD231PS (R9), Y2, Y4
	VFMADD231PS 32(R9), Y2, Y5
	VFMADD231PS (R10), Y3, Y4
	VFMADD231PS 32(R10), Y3, Y5
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	SUBQ $16, CX
	JMP  loop16

loop8:
	CMPQ CX, $8
	JLT  tail
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS (R8), Y1, Y4
	VFMADD231PS (R9), Y2, Y4
	VFMADD231PS (R10), Y3, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	SUBQ $8, CX
	JMP  loop8

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (DI), X4
	VFMADD231SS (SI), X0, X4
	VFMADD231SS (R8), X1, X4
	VFMADD231SS (R9), X2, X4
	VFMADD231SS (R10), X3, X4
	VMOVSS X4, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpy1fma(dst, b *float32, n int, a float32)
//
// dst[j] += a * b[j] for j in [0, n).
TEXT ·axpy1fma(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS a+24(FP), Y0

loop16:
	CMPQ CX, $16
	JLT  loop8
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS 32(SI), Y0, Y5
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ $64, DI
	ADDQ $64, SI
	SUBQ $16, CX
	JMP  loop16

loop8:
	CMPQ CX, $8
	JLT  tail
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y0, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  loop8

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (DI), X4
	VFMADD231SS (SI), X0, X4
	VMOVSS X4, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	RET

// func dotfma(a, b *float32, n int) float32
//
// Inner product with four YMM partial accumulators (32 floats/iteration),
// folded to one lane before the scalar tail.
TEXT ·dotfma(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop32:
	CMPQ CX, $32
	JLT  loop8
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, CX
	JMP  loop32

loop8:
	CMPQ CX, $8
	JLT  reduce
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  loop8

reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (SI), X4
	VFMADD231SS (DI), X4, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET

// func packedF32GEMM4x16FMA(dst, a, panel *float32, m, k, ars, aks, ldd int)
//
// Register-blocked 4×16 micro-kernel over a packed column panel (see
// matmul_packed.go for the layout). m must be a positive multiple of 4;
// all strides are in float32 units. Y0–Y7 hold the four rows' two-YMM
// accumulators across the whole k loop, so each packed panel row (two
// 32-byte loads) is multiplied against all four rows and dst is written
// exactly once per tile — no dst reload/restore per k tap, unlike the
// AXPY kernels. Operand row r, tap q is read at a[r·ars + q·aks], which
// serves both the normal (ars=lda, aks=1) and transposed-A (ars=1,
// aks=lda) orientations with the same code.
TEXT ·packedF32GEMM4x16FMA(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	SHRQ $2, R8               // four-row groups
	MOVQ k+32(FP), R9
	MOVQ ars+40(FP), R10
	SHLQ $2, R10              // row stride in bytes
	MOVQ aks+48(FP), R14
	SHLQ $2, R14              // k stride in bytes
	MOVQ ldd+56(FP), R11
	SHLQ $2, R11              // dst row stride in bytes
	LEAQ (R10)(R10*2), R13    // 3·ars bytes
	LEAQ (R11)(R11*2), R15    // 3·ldd bytes

grouploop:
	TESTQ  R8, R8
	JZ     done
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	MOVQ   SI, R12            // a cursor (row 0; rows 1–3 via ars offsets)
	MOVQ   DX, BX             // panel cursor
	MOVQ   R9, CX

kloop:
	VMOVUPS      (BX), Y8     // panel row, loaded once per 4 rows
	VMOVUPS      32(BX), Y9
	VBROADCASTSS (R12), Y10
	VFMADD231PS  Y8, Y10, Y0
	VFMADD231PS  Y9, Y10, Y1
	VBROADCASTSS (R12)(R10*1), Y10
	VFMADD231PS  Y8, Y10, Y2
	VFMADD231PS  Y9, Y10, Y3
	VBROADCASTSS (R12)(R10*2), Y10
	VFMADD231PS  Y8, Y10, Y4
	VFMADD231PS  Y9, Y10, Y5
	VBROADCASTSS (R12)(R13*1), Y10
	VFMADD231PS  Y8, Y10, Y6
	VFMADD231PS  Y9, Y10, Y7
	ADDQ R14, R12
	ADDQ $64, BX
	DECQ CX
	JNZ  kloop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, (DI)(R11*1)
	VMOVUPS Y3, 32(DI)(R11*1)
	VMOVUPS Y4, (DI)(R11*2)
	VMOVUPS Y5, 32(DI)(R11*2)
	VMOVUPS Y6, (DI)(R15*1)
	VMOVUPS Y7, 32(DI)(R15*1)
	LEAQ    (SI)(R10*4), SI
	LEAQ    (DI)(R11*4), DI
	DECQ    R8
	JMP     grouploop

done:
	VZEROUPPER
	RET

// func packedF32GEMM1x16FMA(dst, a, panel *float32, k, aks int)
//
// One-row remainder kernel: 16 accumulators in Y0/Y1, panel rows
// consumed as FMA memory operands, dst[0:16] written once.
TEXT ·packedF32GEMM1x16FMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ aks+32(FP), R14
	SHLQ $2, R14
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

kloop:
	VBROADCASTSS (SI), Y10
	VFMADD231PS  (BX), Y10, Y0
	VFMADD231PS  32(BX), Y10, Y1
	ADDQ R14, SI
	ADDQ $64, BX
	DECQ CX
	JNZ  kloop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VZEROUPPER
	RET

// func packedF32GEMM4x8FMA(dst, a, panel *float32, m, k, ars, aks, ldd int)
//
// Narrow-panel variant of packedF32GEMM4x16FMA: 8-column panels, one
// YMM accumulator per row (Y0–Y3), each packed panel row loaded once
// and multiplied against all four rows. Same operand addressing and
// accumulation order contract as the 16-wide kernel.
TEXT ·packedF32GEMM4x8FMA(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), DX
	MOVQ m+24(FP), R8
	SHRQ $2, R8               // four-row groups
	MOVQ k+32(FP), R9
	MOVQ ars+40(FP), R10
	SHLQ $2, R10              // row stride in bytes
	MOVQ aks+48(FP), R14
	SHLQ $2, R14              // k stride in bytes
	MOVQ ldd+56(FP), R11
	SHLQ $2, R11              // dst row stride in bytes
	LEAQ (R10)(R10*2), R13    // 3·ars bytes
	LEAQ (R11)(R11*2), R15    // 3·ldd bytes

grouploop:
	TESTQ  R8, R8
	JZ     done
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	MOVQ   SI, R12            // a cursor (row 0; rows 1–3 via ars offsets)
	MOVQ   DX, BX             // panel cursor
	MOVQ   R9, CX

kloop:
	VMOVUPS      (BX), Y8     // panel row, loaded once per 4 rows
	VBROADCASTSS (R12), Y10
	VFMADD231PS  Y8, Y10, Y0
	VBROADCASTSS (R12)(R10*1), Y10
	VFMADD231PS  Y8, Y10, Y1
	VBROADCASTSS (R12)(R10*2), Y10
	VFMADD231PS  Y8, Y10, Y2
	VBROADCASTSS (R12)(R13*1), Y10
	VFMADD231PS  Y8, Y10, Y3
	ADDQ R14, R12
	ADDQ $32, BX
	DECQ CX
	JNZ  kloop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, (DI)(R11*1)
	VMOVUPS Y2, (DI)(R11*2)
	VMOVUPS Y3, (DI)(R15*1)
	LEAQ    (SI)(R10*4), SI
	LEAQ    (DI)(R11*4), DI
	DECQ    R8
	JMP     grouploop

done:
	VZEROUPPER
	RET

// func packedF32GEMM1x8FMA(dst, a, panel *float32, k, aks int)
//
// One-row narrow-panel remainder kernel: 8 accumulators in Y0, panel
// rows consumed as FMA memory operands, dst[0:8] written once.
TEXT ·packedF32GEMM1x8FMA(SB), NOSPLIT, $0-40
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ panel+16(FP), BX
	MOVQ k+24(FP), CX
	MOVQ aks+32(FP), R14
	SHLQ $2, R14
	VXORPS Y0, Y0, Y0

kloop:
	VBROADCASTSS (SI), Y10
	VFMADD231PS  (BX), Y10, Y0
	ADDQ R14, SI
	ADDQ $32, BX
	DECQ CX
	JNZ  kloop

	VMOVUPS Y0, (DI)
	VZEROUPPER
	RET
