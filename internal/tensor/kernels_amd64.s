//go:build amd64

#include "textflag.h"

// CPUID/XGETBV helpers for runtime feature detection (kernels_amd64.go).

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4fma(dst, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)
//
// dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j] for j in [0, n).
// Main loop handles 16 floats per iteration with two YMM accumulators;
// remainders fall through to an 8-wide loop and a scalar tail.
TEXT ·axpy4fma(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	VBROADCASTSS a0+48(FP), Y0
	VBROADCASTSS a1+52(FP), Y1
	VBROADCASTSS a2+56(FP), Y2
	VBROADCASTSS a3+60(FP), Y3

loop16:
	CMPQ CX, $16
	JLT  loop8
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS 32(SI), Y0, Y5
	VFMADD231PS (R8), Y1, Y4
	VFMADD231PS 32(R8), Y1, Y5
	VFMADD231PS (R9), Y2, Y4
	VFMADD231PS 32(R9), Y2, Y5
	VFMADD231PS (R10), Y3, Y4
	VFMADD231PS 32(R10), Y3, Y5
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ $64, DI
	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	SUBQ $16, CX
	JMP  loop16

loop8:
	CMPQ CX, $8
	JLT  tail
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS (R8), Y1, Y4
	VFMADD231PS (R9), Y2, Y4
	VFMADD231PS (R10), Y3, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	SUBQ $8, CX
	JMP  loop8

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (DI), X4
	VFMADD231SS (SI), X0, X4
	VFMADD231SS (R8), X1, X4
	VFMADD231SS (R9), X2, X4
	VFMADD231SS (R10), X3, X4
	VMOVSS X4, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpy1fma(dst, b *float32, n int, a float32)
//
// dst[j] += a * b[j] for j in [0, n).
TEXT ·axpy1fma(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ b+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS a+24(FP), Y0

loop16:
	CMPQ CX, $16
	JLT  loop8
	VMOVUPS (DI), Y4
	VMOVUPS 32(DI), Y5
	VFMADD231PS (SI), Y0, Y4
	VFMADD231PS 32(SI), Y0, Y5
	VMOVUPS Y4, (DI)
	VMOVUPS Y5, 32(DI)
	ADDQ $64, DI
	ADDQ $64, SI
	SUBQ $16, CX
	JMP  loop16

loop8:
	CMPQ CX, $8
	JLT  tail
	VMOVUPS (DI), Y4
	VFMADD231PS (SI), Y0, Y4
	VMOVUPS Y4, (DI)
	ADDQ $32, DI
	ADDQ $32, SI
	SUBQ $8, CX
	JMP  loop8

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (DI), X4
	VFMADD231SS (SI), X0, X4
	VMOVSS X4, (DI)
	ADDQ $4, DI
	ADDQ $4, SI
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	RET

// func dotfma(a, b *float32, n int) float32
//
// Inner product with four YMM partial accumulators (32 floats/iteration),
// folded to one lane before the scalar tail.
TEXT ·dotfma(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

loop32:
	CMPQ CX, $32
	JLT  loop8
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VFMADD231PS (DI), Y4, Y0
	VFMADD231PS 32(DI), Y5, Y1
	VFMADD231PS 64(DI), Y6, Y2
	VFMADD231PS 96(DI), Y7, Y3
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $32, CX
	JMP  loop32

loop8:
	CMPQ CX, $8
	JLT  reduce
	VMOVUPS (SI), Y4
	VFMADD231PS (DI), Y4, Y0
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $8, CX
	JMP  loop8

reduce:
	VADDPS Y1, Y0, Y0
	VADDPS Y3, Y2, Y2
	VADDPS Y2, Y0, Y0
	VEXTRACTF128 $1, Y0, X1
	VADDPS X1, X0, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0

tail:
	TESTQ CX, CX
	JZ   done
	VMOVSS (SI), X4
	VFMADD231SS (DI), X4, X0
	ADDQ $4, SI
	ADDQ $4, DI
	DECQ CX
	JMP  tail

done:
	VZEROUPPER
	MOVSS X0, ret+24(FP)
	RET
