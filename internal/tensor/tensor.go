// Package tensor implements a small, deterministic float32 tensor library
// used as the numerical substrate for the APT reproduction. Tensors are
// dense, row-major and CPU-resident; convolutional data uses NCHW layout.
//
// The package is intentionally minimal: it provides exactly the operations
// the neural-network layers in internal/nn need (element-wise arithmetic,
// GEMM, im2col/col2im, padding/cropping/flipping, reductions) plus a
// deterministic random number generator so every experiment in the
// repository is reproducible bit-for-bit from a seed.
package tensor

import (
	"errors"
	"fmt"
	"strings"
)

// ErrShape is returned (wrapped) by operations whose operand shapes are
// incompatible.
var ErrShape = errors.New("tensor: shape mismatch")

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or FromSlice to create usable instances.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape. New panics only on
// a programmer error (non-positive dimension); all data-dependent failure
// modes return errors from the respective operations instead.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it is the caller's responsibility not to alias it
// unexpectedly. An error is returned when the element count does not match
// the shape.
func FromSlice(data []float32, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: invalid dimension %d in shape %v", ErrShape, d, shape)
		}
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("%w: shape %v wants %d elements, slice has %d", ErrShape, shape, n, len(data))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}, nil
}

// MustFromSlice is FromSlice for statically-known-correct literals, used in
// tests and examples.
func MustFromSlice(data []float32, shape ...int) *Tensor {
	t, err := FromSlice(data, shape...)
	if err != nil {
		panic(err)
	}
	return t
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int {
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return s
}

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor.
func (t *Tensor) Data() []float32 { return t.data }

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float32, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// Reshape returns a view of the same data with a new shape. The element
// count must be preserved.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			return nil, fmt.Errorf("%w: invalid dimension %d", ErrShape, d)
		}
		n *= d
	}
	if n != len(t.data) {
		return nil, fmt.Errorf("%w: cannot reshape %v (%d elems) to %v (%d elems)", ErrShape, t.shape, len(t.data), shape, n)
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: t.data}, nil
}

// MustReshape is Reshape that panics on error; for statically-correct
// internal call sites.
func (t *Tensor) MustReshape(shape ...int) *Tensor {
	r, err := t.Reshape(shape...)
	if err != nil {
		panic(err)
	}
	return r
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// Zero sets every element to zero in place.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v in place.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// CopyFrom copies o's data into t. Shapes must match.
func (t *Tensor) CopyFrom(o *Tensor) error {
	if !t.SameShape(o) {
		return fmt.Errorf("%w: copy %v into %v", ErrShape, o.shape, t.shape)
	}
	copy(t.data, o.data)
	return nil
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 8 {
		fmt.Fprintf(&b, "%v", t.data)
	}
	return b.String()
}
