package tensor

import (
	"encoding/binary"
	"fmt"
)

// Integer GEMM kernels for the int8 inference engine. The affine
// quantization scheme (r = S(q − Z), Jacob et al., CVPR 2018) turns every
// conv and linear layer into a uint8×int8 matrix product accumulated in
// int32; these kernels are the integer mirror of the float GEMMs in
// matmul.go — the same (8-row × column-block) output tiling, the same
// 4-way-unrolled AXPY/dot inner loops, and the same ParallelFor task
// decomposition, so an integer GEMM is bit-identical for any worker count.
//
// Operands are raw slices (the tensor type is float32-only); shapes are
// passed explicitly and validated against slice lengths. There is no
// assembly path: the portable loops keep the multiply-accumulate in int32,
// which Go compiles to clean scalar code on every architecture.
//
// Each kernel dispatches its block body through a named helper and runs a
// plain serial loop when the worker bound is 1: the inference engine's
// zero-allocation contract counts on the serial path creating no
// ParallelFor closures (a closure passed to ParallelFor escapes to the
// heap; a direct call does not).

// checkGEMMInt validates that the slices cover the requested shapes.
func checkGEMMInt(op string, lenDst, lenA, lenB, m, k, n int) error {
	if m <= 0 || k <= 0 || n <= 0 {
		return fmt.Errorf("%w: %s dims (%d,%d,%d) must be positive", ErrShape, op, m, k, n)
	}
	if lenA < m*k {
		return fmt.Errorf("%w: %s operand a has %d elements, want >= %d", ErrShape, op, lenA, m*k)
	}
	if lenB < k*n {
		return fmt.Errorf("%w: %s operand b has %d elements, want >= %d", ErrShape, op, lenB, k*n)
	}
	if lenDst < m*n {
		return fmt.Errorf("%w: %s destination has %d elements, want >= %d", ErrShape, op, lenDst, m*n)
	}
	return nil
}

// MatMulU8I8Into computes dst = a·b where a is a row-major uint8 (m, k)
// matrix (quantized activations), b is a row-major int8 (k, n) matrix and
// dst accumulates in int32. dst is fully overwritten and must not alias
// the operands.
func MatMulU8I8Into(dst []int32, a []uint8, b []int8, m, k, n int) error {
	if err := checkGEMMInt("matmulU8I8", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmU8I8Block(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmU8I8Block(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmU8I8Block(dst []int32, a []uint8, b []int8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		p := 0
		for ; p+3 < k; p += 4 {
			axpy4I8(orow,
				b[p*n+j0:p*n+j1],
				b[(p+1)*n+j0:(p+1)*n+j1],
				b[(p+2)*n+j0:(p+2)*n+j1],
				b[(p+3)*n+j0:(p+3)*n+j1],
				int32(arow[p]), int32(arow[p+1]), int32(arow[p+2]), int32(arow[p+3]))
		}
		for ; p < k; p++ {
			axpy1I8(orow, b[p*n+j0:p*n+j1], int32(arow[p]))
		}
	}
}

// MatMulU8I8TransBInto computes dst = a·bᵀ where a is uint8 (m, k) and b
// is int8 (n, k) — the integer linear layer (activations × weightᵀ), with
// both operands streamed along contiguous k-rows so each output element is
// one inner product. Output tiles follow the same (row block × column
// block) decomposition as the other integer GEMMs, so narrow-batch tall
// products still fan out across the worker pool. dst is fully
// overwritten.
func MatMulU8I8TransBInto(dst []int32, a []uint8, b []int8, m, k, n int) error {
	if err := checkGEMMInt("matmulU8I8TB", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmU8I8TransBBlock(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmU8I8TransBBlock(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmU8I8TransBBlock(dst []int32, a []uint8, b []int8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = dotU8I8(arow, b[(j0+j)*k:(j0+j+1)*k])
		}
	}
}

// MatMulI8U8Into computes dst = a·b where a is int8 (m, k) (quantized
// weights) and b is uint8 (k, n) (im2col'd activations) — the integer
// convolution GEMM, producing the channel-major (outC, N·OH·OW) layout the
// requantization pass reorders into NCHW. dst is fully overwritten.
func MatMulI8U8Into(dst []int32, a []int8, b []uint8, m, k, n int) error {
	if err := checkGEMMInt("matmulI8U8", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmI8U8Block(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmI8U8Block(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmI8U8Block(dst []int32, a []int8, b []uint8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		p := 0
		for ; p+3 < k; p += 4 {
			axpy4U8(orow,
				b[p*n+j0:p*n+j1],
				b[(p+1)*n+j0:(p+1)*n+j1],
				b[(p+2)*n+j0:(p+2)*n+j1],
				b[(p+3)*n+j0:(p+3)*n+j1],
				int32(arow[p]), int32(arow[p+1]), int32(arow[p+2]), int32(arow[p+3]))
		}
		for ; p < k; p++ {
			axpy1U8(orow, b[p*n+j0:p*n+j1], int32(arow[p]))
		}
	}
}

// axpy4I8 computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
// with int8 row segments widened to int32.
func axpy4I8(dst []int32, b0, b1, b2, b3 []int8, a0, a1, a2, a3 int32) {
	n := len(dst)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range dst {
		dst[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
	}
}

func axpy1I8(dst []int32, b []int8, a int32) {
	b = b[:len(dst)]
	for j := range dst {
		dst[j] += a * int32(b[j])
	}
}

// axpy4U8 is axpy4I8 for uint8 row segments.
func axpy4U8(dst []int32, b0, b1, b2, b3 []uint8, a0, a1, a2, a3 int32) {
	n := len(dst)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range dst {
		dst[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
	}
}

func axpy1U8(dst []int32, b []uint8, a int32) {
	b = b[:len(dst)]
	for j := range dst {
		dst[j] += a * int32(b[j])
	}
}

// dotU8I8 returns the int32 inner product of a uint8 row and an int8 row.
// Four partial accumulators break the add dependency chain, mirroring the
// float dot kernel (integer adds are associative, so this is exact).
func dotU8I8(a []uint8, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	j := 0
	for ; j+3 < len(a); j += 4 {
		s0 += int32(a[j]) * int32(b[j])
		s1 += int32(a[j+1]) * int32(b[j+1])
		s2 += int32(a[j+2]) * int32(b[j+2])
		s3 += int32(a[j+3]) * int32(b[j+3])
	}
	for ; j < len(a); j++ {
		s0 += int32(a[j]) * int32(b[j])
	}
	return s0 + s1 + s2 + s3
}

// Im2ColBatchU8Into unrolls a quantized NCHW batch (raw uint8 payload,
// geometry g, n samples) into a (C·KH·KW, N·OH·OW) column matrix, exactly
// like the float Im2ColBatchInto. Out-of-bounds taps are filled with pad —
// the activation grid's zero point, which represents exact float zero — so
// the consuming GEMM needs no border special-casing: subtracting
// Z_x·Σq_w over the full kernel is the exact zero-point correction at
// every output position. dst is fully overwritten.
func Im2ColBatchU8Into(dst, src []uint8, n int, g ConvGeom, pad uint8) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("%w: im2col u8 batch size %d", ErrShape, n)
	}
	inSz := g.InC * g.InH * g.InW
	if len(src) < n*inSz {
		return fmt.Errorf("%w: im2col u8 src has %d elements, want >= %d", ErrShape, len(src), n*inSz)
	}
	oh, ow := g.OutHW()
	if len(dst) < g.InC*g.KH*g.KW*n*oh*ow {
		return fmt.Errorf("%w: im2col u8 dst has %d elements, want >= %d", ErrShape, len(dst), g.InC*g.KH*g.KW*n*oh*ow)
	}
	if maxWorkers == 1 {
		for i := 0; i < n; i++ {
			im2colU8Sample(dst, src, n, g, pad, i)
		}
		return nil
	}
	ParallelFor(n, func(i int) { im2colU8Sample(dst, src, n, g, pad, i) })
	return nil
}

// Im2ColBatchU8PatchesInto unrolls a quantized NCHW batch into the
// patch-major (N·OH·OW, C·KH·KW) layout the packed integer GEMM consumes:
// one row per output position holding that position's receptive field,
// sample-major so batched results are bit-identical to per-sample runs.
// Out-of-bounds taps are filled with pad (the activation zero point), as
// in Im2ColBatchU8Into. dst is fully overwritten over the first
// N·OH·OW·C·KH·KW elements.
func Im2ColBatchU8PatchesInto(dst, src []uint8, n int, g ConvGeom, pad uint8) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("%w: im2col u8 patches batch size %d", ErrShape, n)
	}
	inSz := g.InC * g.InH * g.InW
	if len(src) < n*inSz {
		return fmt.Errorf("%w: im2col u8 patches src has %d elements, want >= %d", ErrShape, len(src), n*inSz)
	}
	oh, ow := g.OutHW()
	if len(dst) < n*oh*ow*g.InC*g.KH*g.KW {
		return fmt.Errorf("%w: im2col u8 patches dst has %d elements, want >= %d",
			ErrShape, len(dst), n*oh*ow*g.InC*g.KH*g.KW)
	}
	if maxWorkers == 1 {
		for i := 0; i < n; i++ {
			im2colU8Patch(dst, src, g, pad, i)
		}
		return nil
	}
	ParallelFor(n, func(i int) { im2colU8Patch(dst, src, g, pad, i) })
	return nil
}

// im2colXRange computes the interior output-column range [xlo, xhi] of a
// conv geometry: the columns where every kernel tap reads in-bounds. The
// range may be empty (a kernel wider than InW+Pad, e.g. a 7×7 over a
// tiny feature map): it is clamped to [xlo, xlo-1] so the edge loops
// cover every column and neither starts below zero. A negative numerator
// means NO column is interior — it must not go through Go's toward-zero
// division, which would round (−1)/2 up to 0 and admit an out-of-bounds
// column into the unrolled fast path.
func im2colXRange(g ConvGeom, ow int) (xlo, xhi int) {
	xlo = (g.Pad + g.Stride - 1) / g.Stride
	if xlo > ow {
		xlo = ow
	}
	xhi = -1
	if num := g.InW - g.KW + g.Pad; num >= 0 {
		xhi = num / g.Stride
	}
	if xhi > ow-1 {
		xhi = ow - 1
	}
	if xhi < xlo-1 {
		xhi = xlo - 1
	}
	return xlo, xhi
}

// Im2ColSampleU8PatchesInto packs a single sample's patch-major rows:
// dst holds OH·OW rows of C·KH·KW bytes, exactly the slice of an
// Im2ColBatchU8PatchesInto destination that sample would own. The
// serving engine's fused quantize+pack path uses it to pack each sample
// straight out of a small per-worker image buffer (quantize → pack in
// one pass) instead of staging the whole quantized batch first; packed
// bytes are bit-identical to the batch packer's.
func Im2ColSampleU8PatchesInto(dst, img []uint8, g ConvGeom, pad uint8) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if len(img) < g.InC*g.InH*g.InW {
		return fmt.Errorf("%w: im2col u8 sample src has %d elements, want >= %d",
			ErrShape, len(img), g.InC*g.InH*g.InW)
	}
	oh, ow := g.OutHW()
	if len(dst) < oh*ow*g.InC*g.KH*g.KW {
		return fmt.Errorf("%w: im2col u8 sample dst has %d elements, want >= %d",
			ErrShape, len(dst), oh*ow*g.InC*g.KH*g.KW)
	}
	im2colU8Patch(dst, img, g, pad, 0)
	return nil
}

// im2colU8Patch packs one sample's patch-major rows: the materialized
// im2col path, one call per sample, row core shared with the implicit
// driver's band gather (bit-identity between the two lowerings reduces
// to both running this exact store sequence).
func im2colU8Patch(dst, src []uint8, g ConvGeom, pad uint8, i int) {
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	inSz := g.InC * g.InH * g.InW
	img := src[i*inSz : (i+1)*inSz]
	sp := oh * ow
	xlo, xhi := im2colXRange(g, ow)
	for oy := 0; oy < oh; oy++ {
		im2colU8PatchRow(dst[(i*sp+oy*ow)*kdim:][:ow*kdim], img, g, pad, oy, xlo, xhi)
	}
}

// im2colU8PatchRow packs one output row's ow patch rows into rows
// (ow·kdim bytes). The loop nest runs (channel, kernel row) outermost
// with the output COLUMN innermost, so all per-row decisions — the
// vertical padding case, the source row slice, the interior x range —
// are hoisted out of the inner loop, which then does nothing but direct
// stores from a sliding source window (this is the hottest store loop of
// the integer conv path; with the naive position-major nest it cost more
// than the GEMM it feeds).
//
// Interior segments go through word-wide copies (4 bytes for KW=3, 8 for
// KW=5) wherever both ends are safe: the source word must not read past
// the input row (sx+w ≤ InW; a scalar tail covers the rest), and the
// store's spill bytes — a 4-byte store of a 3-byte segment lands one
// byte into offset p+KW, the first byte of the NEXT tap row at the same
// position — are only allowed when that tap row is still unwritten,
// i.e. on every tap row except the last (the last row's spill would land
// in the next position's already-written tap row 0, so it stays scalar).
func im2colU8PatchRow(rows, img []uint8, g ConvGeom, pad uint8, oy, xlo, xhi int) {
	if g.KH == 3 && g.KW == 3 {
		im2colU8PatchRow3(rows, img, g, pad, oy, xlo, xhi)
		return
	}
	kdim := g.InC * g.KH * g.KW
	ow := len(rows) / kdim
	p := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			iy := oy*g.Stride + kh - g.Pad
			if iy < 0 || iy >= g.InH {
				for ox := 0; ox < ow; ox++ {
					seg := rows[ox*kdim+p:][:g.KW]
					for t := range seg {
						seg[t] = pad
					}
				}
				p += g.KW
				continue
			}
			srow := img[base+iy*g.InW : base+(iy+1)*g.InW]
			edge := func(ox int) { // per-tap checks, left/right borders only
				ix0 := ox*g.Stride - g.Pad
				seg := rows[ox*kdim+p:][:g.KW]
				for t := range seg {
					if ix := ix0 + t; ix < 0 || ix >= g.InW {
						seg[t] = pad
					} else {
						seg[t] = srow[ix]
					}
				}
			}
			// Borders of the ubiquitous 3×3/stride-1/pad-1 conv (one
			// padded tap on each side, ow == InW): written directly,
			// skipping the per-tap bounds checks of the generic edge
			// closure — the borders are a fixed share of every row, so
			// the closure's per-byte compare-and-branch shows up in
			// serving profiles.
			fast3 := g.KW == 3 && g.Stride == 1 && g.Pad == 1 && xlo == 1 && xhi == ow-2
			if fast3 {
				rows[p] = pad
				rows[p+1] = srow[0]
				rows[p+2] = srow[1]
				dr := (ow-1)*kdim + p
				rows[dr] = srow[g.InW-2]
				rows[dr+1] = srow[g.InW-1]
				rows[dr+2] = pad
			} else {
				for ox := 0; ox < xlo; ox++ {
					edge(ox)
				}
			}
			// Interior: incremented indices only — no per-iteration
			// slicing, one multiply-free sliding window.
			ox := xlo
			d := xlo*kdim + p
			sx := xlo*g.Stride - g.Pad
			switch g.KW {
			case 3: // the dominant conv kernel
				if p+3 < kdim { // spill lands in the next tap row: allowed
					for ; ox <= xhi && sx+4 <= g.InW; ox++ {
						putU32(rows[d:d+4], getU32(srow[sx:sx+4]))
						d += kdim
						sx += g.Stride
					}
				}
				for ; ox <= xhi; ox++ {
					rows[d] = srow[sx]
					rows[d+1] = srow[sx+1]
					rows[d+2] = srow[sx+2]
					d += kdim
					sx += g.Stride
				}
			case 5:
				if p+5 < kdim {
					for ; ox <= xhi && sx+8 <= g.InW; ox++ {
						putU64(rows[d:d+8], getU64(srow[sx:sx+8]))
						d += kdim
						sx += g.Stride
					}
				}
				for ; ox <= xhi; ox++ {
					rows[d] = srow[sx]
					rows[d+1] = srow[sx+1]
					rows[d+2] = srow[sx+2]
					rows[d+3] = srow[sx+3]
					rows[d+4] = srow[sx+4]
					d += kdim
					sx += g.Stride
				}
			case 1:
				for ; ox <= xhi; ox++ {
					rows[d] = srow[sx]
					d += kdim
					sx += g.Stride
				}
			default:
				for ; ox <= xhi; ox++ {
					copy(rows[d:d+g.KW], srow[sx:])
					d += kdim
					sx += g.Stride
				}
			}
			if !fast3 {
				for ox := xhi + 1; ox < ow; ox++ {
					edge(ox)
				}
			}
			p += g.KW
		}
	}
}

// pack3Asm, when non-nil, is the SIMD interior gather for 3×3 patch
// blocks: for each of n output positions it composes nc channels' 9-tap
// blocks from three receptive-field row cursors (position stride
// `stride`, channel stride `plane`) and stores them at position stride
// kdim / channel stride 9. Its 16-byte stores spill 7 zero bytes into
// the NEXT channel's block at the same position — invisible because a
// later pass fully rewrites that block — so nc must leave the final
// channel to the exact Go stores (nc ≤ InC-1, i.e. p+16 ≤ kdim for
// every routed channel).
var pack3Asm func(dst, r0, r1, r2 []uint8, n, nc, kdim, stride, plane int)

// im2colU8PatchRow3 packs one output row for the dominant 3×3 kernel.
// Instead of the generic nest's three separate tap-row sweeps (each a
// strided scatter of 3-byte groups), it walks positions once per channel
// and composes the whole 9-tap block in registers: three word loads —
// one per receptive-field row — merge into a single 8-byte store plus a
// byte store, cutting both the store count and the per-iteration loop
// overhead roughly in half. Vertical padding folds into the same path as
// a preloaded 3×pad word, so out-of-range field rows cost nothing extra.
// Interior positions too close to the row end for a 4-byte load fall
// back to merged 3-byte loads, not to the per-tap edge path — on 8-wide
// feature maps those tails are a third of every row.
func im2colU8PatchRow3(rows, img []uint8, g ConvGeom, pad uint8, oy, xlo, xhi int) {
	kdim := g.InC * 9
	ow := len(rows) / kdim
	padW := uint32(pad) * 0x010101 // three pad bytes, high byte clear
	iy0 := oy*g.Stride - g.Pad
	ok0 := iy0 >= 0 && iy0 < g.InH
	ok1 := iy0+1 >= 0 && iy0+1 < g.InH
	ok2 := iy0+2 >= 0 && iy0+2 < g.InH
	// SIMD sweep: one kernel call covers the word-loadable interior span
	// for every channel except the last (whose 16-byte stores would spill
	// past the position row). Needs all three field rows in-bounds; rows
	// with vertical padding stay on the scalar compose below.
	sweepC, nw := 0, 0
	sx0 := xlo*g.Stride - g.Pad
	if pack3Asm != nil && ok0 && ok1 && ok2 && g.InC > 1 &&
		xhi >= xlo && sx0+4 <= g.InW {
		nw = (g.InW-4-sx0)/g.Stride + 1
		if m := xhi - xlo + 1; nw > m {
			nw = m
		}
		sweepC = g.InC - 1
		plane := g.InH * g.InW
		s := iy0*g.InW + sx0
		pack3Asm(rows[xlo*kdim:], img[s:], img[s+g.InW:], img[s+2*g.InW:],
			nw, sweepC, kdim, g.Stride, plane)
	}
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		p := c * 9
		// The three receptive-field rows; a nil row means vertical padding.
		var r0, r1, r2 []uint8
		if ok0 {
			r0 = img[base+iy0*g.InW : base+(iy0+1)*g.InW]
		}
		if ok1 {
			r1 = img[base+(iy0+1)*g.InW : base+(iy0+2)*g.InW]
		}
		if ok2 {
			r2 = img[base+(iy0+2)*g.InW : base+(iy0+3)*g.InW]
		}
		for ox := 0; ox < xlo; ox++ {
			im2colU8Edge3(rows, r0, r1, r2, g, pad, ox*kdim+p, ox*g.Stride-g.Pad)
		}
		ox := xlo
		if c < sweepC {
			ox = xlo + nw // interior span already packed by the SIMD sweep
		}
		d := ox*kdim + p
		sx := ox*g.Stride - g.Pad
		w0, w1, w2 := padW, padW, padW
		for ; ox <= xhi && sx+4 <= g.InW; ox++ {
			if r0 != nil {
				w0 = getU32(r0[sx : sx+4])
			}
			if r1 != nil {
				w1 = getU32(r1[sx : sx+4])
			}
			if r2 != nil {
				w2 = getU32(r2[sx : sx+4])
			}
			putU64(rows[d:d+8],
				uint64(w0&0xFFFFFF)|uint64(w1&0xFFFFFF)<<24|uint64(w2&0xFFFF)<<48)
			rows[d+8] = uint8(w2 >> 16)
			d += kdim
			sx += g.Stride
		}
		// Interior tail: taps are in-bounds (ox ≤ xhi) but a 4-byte load
		// would run past the input row; merge exact 3-byte loads instead.
		for ; ox <= xhi; ox++ {
			if r0 != nil {
				w0 = getU24(r0[sx : sx+3])
			}
			if r1 != nil {
				w1 = getU24(r1[sx : sx+3])
			}
			if r2 != nil {
				w2 = getU24(r2[sx : sx+3])
			}
			putU64(rows[d:d+8],
				uint64(w0&0xFFFFFF)|uint64(w1&0xFFFFFF)<<24|uint64(w2&0xFFFF)<<48)
			rows[d+8] = uint8(w2 >> 16)
			d += kdim
			sx += g.Stride
		}
		for ox := xhi + 1; ox < ow; ox++ {
			im2colU8Edge3(rows, r0, r1, r2, g, pad, ox*kdim+p, ox*g.Stride-g.Pad)
		}
	}
}

// im2colU8Edge3 composes one border position's 9-tap block with per-tap
// bounds checks; nil receptive-field rows mean vertical padding. A plain
// function rather than a closure so the hot interior loop above keeps
// its locals in registers.
func im2colU8Edge3(rows, r0, r1, r2 []uint8, g ConvGeom, pad uint8, d, ix0 int) {
	for t := 0; t < 3; t++ {
		v0, v1, v2 := pad, pad, pad
		if ix := ix0 + t; ix >= 0 && ix < g.InW {
			if r0 != nil {
				v0 = r0[ix]
			}
			if r1 != nil {
				v1 = r1[ix]
			}
			if r2 != nil {
				v2 = r2[ix]
			}
		}
		rows[d+t] = v0
		rows[d+3+t] = v1
		rows[d+6+t] = v2
	}
}

// putU32/getU32/putU64/getU64 are the word-wide copy primitives of the
// interior store loops; encoding/binary's fixed-width forms compile to
// single unaligned load/store instructions on amd64 and arm64.
func getU32(b []uint8) uint32 { return binary.LittleEndian.Uint32(b) }
func getU24(b []uint8) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16
}
func putU32(b []uint8, v uint32) { binary.LittleEndian.PutUint32(b, v) }
func getU64(b []uint8) uint64    { return binary.LittleEndian.Uint64(b) }
func putU64(b []uint8, v uint64) { binary.LittleEndian.PutUint64(b, v) }

func im2colU8Sample(dst, src []uint8, n int, g ConvGeom, pad uint8, i int) {
	oh, ow := g.OutHW()
	s := oh * ow
	ns := n * s
	inSz := g.InC * g.InH * g.InW
	img := src[i*inSz : (i+1)*inSz]
	row := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dst[row*ns+i*s : row*ns+(i+1)*s]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					dseg := drow[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= g.InH {
						for ox := range dseg {
							dseg[ox] = pad
						}
						continue
					}
					srow := img[base+iy*g.InW : base+(iy+1)*g.InW]
					if g.Stride == 1 && kw >= g.Pad && g.InW-ow >= kw-g.Pad {
						// Interior fast path: the tap row is a straight copy.
						copy(dseg, srow[kw-g.Pad:])
						continue
					}
					for ox := range dseg {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							dseg[ox] = pad
						} else {
							dseg[ox] = srow[ix]
						}
					}
				}
				row++
			}
		}
	}
}
