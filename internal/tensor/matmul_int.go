package tensor

import "fmt"

// Integer GEMM kernels for the int8 inference engine. The affine
// quantization scheme (r = S(q − Z), Jacob et al., CVPR 2018) turns every
// conv and linear layer into a uint8×int8 matrix product accumulated in
// int32; these kernels are the integer mirror of the float GEMMs in
// matmul.go — the same (8-row × column-block) output tiling, the same
// 4-way-unrolled AXPY/dot inner loops, and the same ParallelFor task
// decomposition, so an integer GEMM is bit-identical for any worker count.
//
// Operands are raw slices (the tensor type is float32-only); shapes are
// passed explicitly and validated against slice lengths. There is no
// assembly path: the portable loops keep the multiply-accumulate in int32,
// which Go compiles to clean scalar code on every architecture.
//
// Each kernel dispatches its block body through a named helper and runs a
// plain serial loop when the worker bound is 1: the inference engine's
// zero-allocation contract counts on the serial path creating no
// ParallelFor closures (a closure passed to ParallelFor escapes to the
// heap; a direct call does not).

// checkGEMMInt validates that the slices cover the requested shapes.
func checkGEMMInt(op string, lenDst, lenA, lenB, m, k, n int) error {
	if m <= 0 || k <= 0 || n <= 0 {
		return fmt.Errorf("%w: %s dims (%d,%d,%d) must be positive", ErrShape, op, m, k, n)
	}
	if lenA < m*k {
		return fmt.Errorf("%w: %s operand a has %d elements, want >= %d", ErrShape, op, lenA, m*k)
	}
	if lenB < k*n {
		return fmt.Errorf("%w: %s operand b has %d elements, want >= %d", ErrShape, op, lenB, k*n)
	}
	if lenDst < m*n {
		return fmt.Errorf("%w: %s destination has %d elements, want >= %d", ErrShape, op, lenDst, m*n)
	}
	return nil
}

// MatMulU8I8Into computes dst = a·b where a is a row-major uint8 (m, k)
// matrix (quantized activations), b is a row-major int8 (k, n) matrix and
// dst accumulates in int32. dst is fully overwritten and must not alias
// the operands.
func MatMulU8I8Into(dst []int32, a []uint8, b []int8, m, k, n int) error {
	if err := checkGEMMInt("matmulU8I8", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmU8I8Block(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmU8I8Block(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmU8I8Block(dst []int32, a []uint8, b []int8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		p := 0
		for ; p+3 < k; p += 4 {
			axpy4I8(orow,
				b[p*n+j0:p*n+j1],
				b[(p+1)*n+j0:(p+1)*n+j1],
				b[(p+2)*n+j0:(p+2)*n+j1],
				b[(p+3)*n+j0:(p+3)*n+j1],
				int32(arow[p]), int32(arow[p+1]), int32(arow[p+2]), int32(arow[p+3]))
		}
		for ; p < k; p++ {
			axpy1I8(orow, b[p*n+j0:p*n+j1], int32(arow[p]))
		}
	}
}

// MatMulU8I8TransBInto computes dst = a·bᵀ where a is uint8 (m, k) and b
// is int8 (n, k) — the integer linear layer (activations × weightᵀ), with
// both operands streamed along contiguous k-rows so each output element is
// one inner product. Output tiles follow the same (row block × column
// block) decomposition as the other integer GEMMs, so narrow-batch tall
// products still fan out across the worker pool. dst is fully
// overwritten.
func MatMulU8I8TransBInto(dst []int32, a []uint8, b []int8, m, k, n int) error {
	if err := checkGEMMInt("matmulU8I8TB", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmU8I8TransBBlock(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmU8I8TransBBlock(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmU8I8TransBBlock(dst []int32, a []uint8, b []int8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		arow := a[i*k : (i+1)*k]
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = dotU8I8(arow, b[(j0+j)*k:(j0+j+1)*k])
		}
	}
}

// MatMulI8U8Into computes dst = a·b where a is int8 (m, k) (quantized
// weights) and b is uint8 (k, n) (im2col'd activations) — the integer
// convolution GEMM, producing the channel-major (outC, N·OH·OW) layout the
// requantization pass reorders into NCHW. dst is fully overwritten.
func MatMulI8U8Into(dst []int32, a []int8, b []uint8, m, k, n int) error {
	if err := checkGEMMInt("matmulI8U8", len(dst), len(a), len(b), m, k, n); err != nil {
		return err
	}
	mb, nb := blocks(m, gemmRowBlock), blocks(n, gemmColBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*nb; t++ {
			gemmI8U8Block(dst, a, b, m, k, n, nb, t)
		}
		return nil
	}
	ParallelFor(mb*nb, func(t int) { gemmI8U8Block(dst, a, b, m, k, n, nb, t) })
	return nil
}

func gemmI8U8Block(dst []int32, a []int8, b []uint8, m, k, n, nb, t int) {
	ib, jb := t/nb, t%nb
	i1 := min((ib+1)*gemmRowBlock, m)
	j0 := jb * gemmColBlock
	j1 := min(j0+gemmColBlock, n)
	for i := ib * gemmRowBlock; i < i1; i++ {
		orow := dst[i*n+j0 : i*n+j1]
		for j := range orow {
			orow[j] = 0
		}
		arow := a[i*k : (i+1)*k]
		p := 0
		for ; p+3 < k; p += 4 {
			axpy4U8(orow,
				b[p*n+j0:p*n+j1],
				b[(p+1)*n+j0:(p+1)*n+j1],
				b[(p+2)*n+j0:(p+2)*n+j1],
				b[(p+3)*n+j0:(p+3)*n+j1],
				int32(arow[p]), int32(arow[p+1]), int32(arow[p+2]), int32(arow[p+3]))
		}
		for ; p < k; p++ {
			axpy1U8(orow, b[p*n+j0:p*n+j1], int32(arow[p]))
		}
	}
}

// axpy4I8 computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
// with int8 row segments widened to int32.
func axpy4I8(dst []int32, b0, b1, b2, b3 []int8, a0, a1, a2, a3 int32) {
	n := len(dst)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range dst {
		dst[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
	}
}

func axpy1I8(dst []int32, b []int8, a int32) {
	b = b[:len(dst)]
	for j := range dst {
		dst[j] += a * int32(b[j])
	}
}

// axpy4U8 is axpy4I8 for uint8 row segments.
func axpy4U8(dst []int32, b0, b1, b2, b3 []uint8, a0, a1, a2, a3 int32) {
	n := len(dst)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for j := range dst {
		dst[j] += a0*int32(b0[j]) + a1*int32(b1[j]) + a2*int32(b2[j]) + a3*int32(b3[j])
	}
}

func axpy1U8(dst []int32, b []uint8, a int32) {
	b = b[:len(dst)]
	for j := range dst {
		dst[j] += a * int32(b[j])
	}
}

// dotU8I8 returns the int32 inner product of a uint8 row and an int8 row.
// Four partial accumulators break the add dependency chain, mirroring the
// float dot kernel (integer adds are associative, so this is exact).
func dotU8I8(a []uint8, b []int8) int32 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int32
	j := 0
	for ; j+3 < len(a); j += 4 {
		s0 += int32(a[j]) * int32(b[j])
		s1 += int32(a[j+1]) * int32(b[j+1])
		s2 += int32(a[j+2]) * int32(b[j+2])
		s3 += int32(a[j+3]) * int32(b[j+3])
	}
	for ; j < len(a); j++ {
		s0 += int32(a[j]) * int32(b[j])
	}
	return s0 + s1 + s2 + s3
}

// Im2ColBatchU8Into unrolls a quantized NCHW batch (raw uint8 payload,
// geometry g, n samples) into a (C·KH·KW, N·OH·OW) column matrix, exactly
// like the float Im2ColBatchInto. Out-of-bounds taps are filled with pad —
// the activation grid's zero point, which represents exact float zero — so
// the consuming GEMM needs no border special-casing: subtracting
// Z_x·Σq_w over the full kernel is the exact zero-point correction at
// every output position. dst is fully overwritten.
func Im2ColBatchU8Into(dst, src []uint8, n int, g ConvGeom, pad uint8) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("%w: im2col u8 batch size %d", ErrShape, n)
	}
	inSz := g.InC * g.InH * g.InW
	if len(src) < n*inSz {
		return fmt.Errorf("%w: im2col u8 src has %d elements, want >= %d", ErrShape, len(src), n*inSz)
	}
	oh, ow := g.OutHW()
	if len(dst) < g.InC*g.KH*g.KW*n*oh*ow {
		return fmt.Errorf("%w: im2col u8 dst has %d elements, want >= %d", ErrShape, len(dst), g.InC*g.KH*g.KW*n*oh*ow)
	}
	if maxWorkers == 1 {
		for i := 0; i < n; i++ {
			im2colU8Sample(dst, src, n, g, pad, i)
		}
		return nil
	}
	ParallelFor(n, func(i int) { im2colU8Sample(dst, src, n, g, pad, i) })
	return nil
}

// Im2ColBatchU8PatchesInto unrolls a quantized NCHW batch into the
// patch-major (N·OH·OW, C·KH·KW) layout the packed integer GEMM consumes:
// one row per output position holding that position's receptive field,
// sample-major so batched results are bit-identical to per-sample runs.
// Out-of-bounds taps are filled with pad (the activation zero point), as
// in Im2ColBatchU8Into. dst is fully overwritten over the first
// N·OH·OW·C·KH·KW elements.
func Im2ColBatchU8PatchesInto(dst, src []uint8, n int, g ConvGeom, pad uint8) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if n <= 0 {
		return fmt.Errorf("%w: im2col u8 patches batch size %d", ErrShape, n)
	}
	inSz := g.InC * g.InH * g.InW
	if len(src) < n*inSz {
		return fmt.Errorf("%w: im2col u8 patches src has %d elements, want >= %d", ErrShape, len(src), n*inSz)
	}
	oh, ow := g.OutHW()
	if len(dst) < n*oh*ow*g.InC*g.KH*g.KW {
		return fmt.Errorf("%w: im2col u8 patches dst has %d elements, want >= %d",
			ErrShape, len(dst), n*oh*ow*g.InC*g.KH*g.KW)
	}
	if maxWorkers == 1 {
		for i := 0; i < n; i++ {
			im2colU8Patch(dst, src, g, pad, i)
		}
		return nil
	}
	ParallelFor(n, func(i int) { im2colU8Patch(dst, src, g, pad, i) })
	return nil
}

// im2colU8Patch packs one sample's patch-major rows. The loop nest runs
// (output row, channel, kernel row) outermost with the output COLUMN
// innermost, so all per-row decisions — the vertical padding case, the
// source row slice, the interior x range — are hoisted out of the inner
// loop, which then does nothing but direct byte stores from a sliding
// source window (this is the hottest scalar loop of the integer conv
// path; with the naive position-major nest it cost more than the GEMM
// it feeds).
func im2colU8Patch(dst, src []uint8, g ConvGeom, pad uint8, i int) {
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	inSz := g.InC * g.InH * g.InW
	img := src[i*inSz : (i+1)*inSz]
	sp := oh * ow
	// Interior output columns [xlo, xhi]: every tap reads in-bounds. The
	// range may be empty (a kernel wider than InW+Pad, e.g. a 7×7 over a
	// tiny feature map): clamp it to [xlo, xlo-1] so the edge loops cover
	// every column and neither starts below zero. A negative numerator
	// means NO column is interior — it must not go through Go's
	// toward-zero division, which would round (−1)/2 up to 0 and admit
	// an out-of-bounds column into the unrolled fast path.
	xlo := (g.Pad + g.Stride - 1) / g.Stride
	if xlo > ow {
		xlo = ow
	}
	xhi := -1
	if num := g.InW - g.KW + g.Pad; num >= 0 {
		xhi = num / g.Stride
	}
	if xhi > ow-1 {
		xhi = ow - 1
	}
	if xhi < xlo-1 {
		xhi = xlo - 1
	}
	for oy := 0; oy < oh; oy++ {
		rows := dst[(i*sp+oy*ow)*kdim:][:ow*kdim] // this output row's patch rows
		p := 0
		for c := 0; c < g.InC; c++ {
			base := c * g.InH * g.InW
			for kh := 0; kh < g.KH; kh++ {
				iy := oy*g.Stride + kh - g.Pad
				if iy < 0 || iy >= g.InH {
					for ox := 0; ox < ow; ox++ {
						seg := rows[ox*kdim+p:][:g.KW]
						for t := range seg {
							seg[t] = pad
						}
					}
					p += g.KW
					continue
				}
				srow := img[base+iy*g.InW : base+(iy+1)*g.InW]
				edge := func(ox int) { // per-tap checks, left/right borders only
					ix0 := ox*g.Stride - g.Pad
					seg := rows[ox*kdim+p:][:g.KW]
					for t := range seg {
						if ix := ix0 + t; ix < 0 || ix >= g.InW {
							seg[t] = pad
						} else {
							seg[t] = srow[ix]
						}
					}
				}
				// Borders of the ubiquitous 3×3/stride-1/pad-1 conv (one
				// padded tap on each side, ow == InW): written directly,
				// skipping the per-tap bounds checks of the generic edge
				// closure — the borders are a fixed share of every row, so
				// the closure's per-byte compare-and-branch shows up in
				// serving profiles.
				fast3 := g.KW == 3 && g.Stride == 1 && g.Pad == 1 && xlo == 1 && xhi == ow-2
				if fast3 {
					rows[p] = pad
					rows[p+1] = srow[0]
					rows[p+2] = srow[1]
					dr := (ow-1)*kdim + p
					rows[dr] = srow[g.InW-2]
					rows[dr+1] = srow[g.InW-1]
					rows[dr+2] = pad
				} else {
					for ox := 0; ox < xlo; ox++ {
						edge(ox)
					}
				}
				// Interior: incremented indices only — no per-iteration
				// slicing, one multiply-free sliding window.
				d := xlo*kdim + p
				sx := xlo*g.Stride - g.Pad
				switch g.KW {
				case 3: // the dominant conv kernel: three unrolled stores
					for ox := xlo; ox <= xhi; ox++ {
						rows[d] = srow[sx]
						rows[d+1] = srow[sx+1]
						rows[d+2] = srow[sx+2]
						d += kdim
						sx += g.Stride
					}
				case 5:
					for ox := xlo; ox <= xhi; ox++ {
						rows[d] = srow[sx]
						rows[d+1] = srow[sx+1]
						rows[d+2] = srow[sx+2]
						rows[d+3] = srow[sx+3]
						rows[d+4] = srow[sx+4]
						d += kdim
						sx += g.Stride
					}
				case 1:
					for ox := xlo; ox <= xhi; ox++ {
						rows[d] = srow[sx]
						d += kdim
						sx += g.Stride
					}
				default:
					for ox := xlo; ox <= xhi; ox++ {
						copy(rows[d:d+g.KW], srow[sx:])
						d += kdim
						sx += g.Stride
					}
				}
				if !fast3 {
					for ox := xhi + 1; ox < ow; ox++ {
						edge(ox)
					}
				}
				p += g.KW
			}
		}
	}
}

func im2colU8Sample(dst, src []uint8, n int, g ConvGeom, pad uint8, i int) {
	oh, ow := g.OutHW()
	s := oh * ow
	ns := n * s
	inSz := g.InC * g.InH * g.InW
	img := src[i*inSz : (i+1)*inSz]
	row := 0
	for c := 0; c < g.InC; c++ {
		base := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := dst[row*ns+i*s : row*ns+(i+1)*s]
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.Stride + kh - g.Pad
					dseg := drow[oy*ow : (oy+1)*ow]
					if iy < 0 || iy >= g.InH {
						for ox := range dseg {
							dseg[ox] = pad
						}
						continue
					}
					srow := img[base+iy*g.InW : base+(iy+1)*g.InW]
					if g.Stride == 1 && kw >= g.Pad && g.InW-ow >= kw-g.Pad {
						// Interior fast path: the tap row is a straight copy.
						copy(dseg, srow[kw-g.Pad:])
						continue
					}
					for ox := range dseg {
						ix := ox*g.Stride + kw - g.Pad
						if ix < 0 || ix >= g.InW {
							dseg[ox] = pad
						} else {
							dseg[ox] = srow[ix]
						}
					}
				}
				row++
			}
		}
	}
}
