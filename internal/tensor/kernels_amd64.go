//go:build amd64

package tensor

// Runtime CPU dispatch for the amd64 SIMD kernels. The assembly in
// kernels_amd64.s needs AVX2 and FMA3; both are checked via CPUID along
// with OS support for saving YMM state (OSXSAVE + XCR0), following the
// standard detection sequence. When any check fails the portable Go
// kernels stay in place.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func axpy4fma(dst, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)

//go:noescape
func axpy1fma(dst, b *float32, n int, a float32)

//go:noescape
func dotfma(a, b *float32, n int) float32

// hasFMA reports whether AVX2+FMA kernels are usable on this CPU/OS.
var hasFMA = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// OS must save XMM (bit 1) and YMM (bit 2) state.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func init() {
	if !hasFMA {
		return
	}
	axpy4 = func(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
		n := len(dst)
		if n == 0 {
			return
		}
		_ = b0[n-1]
		_ = b1[n-1]
		_ = b2[n-1]
		_ = b3[n-1]
		axpy4fma(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], n, a0, a1, a2, a3)
	}
	axpy1 = func(dst, b []float32, a float32) {
		n := len(dst)
		if n == 0 {
			return
		}
		_ = b[n-1]
		axpy1fma(&dst[0], &b[0], n, a)
	}
	dot = func(a, b []float32) float32 {
		n := len(a)
		if n == 0 {
			return 0
		}
		_ = b[n-1]
		return dotfma(&a[0], &b[0], n)
	}
}
