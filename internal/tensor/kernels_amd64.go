//go:build amd64

package tensor

import "os"

// Runtime CPU dispatch for the amd64 SIMD kernels. The float assembly in
// kernels_amd64.s needs AVX2 and FMA3; the integer panel kernels in
// kernels_int_amd64.s need AVX2. Both are checked via CPUID along with OS
// support for saving YMM state (OSXSAVE + XCR0), following the standard
// detection sequence. When any check fails — or APT_NOSIMD is set in the
// environment — the portable Go kernels stay in place.

//go:noescape
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbv0() (eax, edx uint32)

//go:noescape
func axpy4fma(dst, b0, b1, b2, b3 *float32, n int, a0, a1, a2, a3 float32)

//go:noescape
func axpy1fma(dst, b *float32, n int, a float32)

//go:noescape
func dotfma(a, b *float32, n int) float32

//go:noescape
func packedGEMMFastAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)

//go:noescape
func packedGEMMWideAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)

//go:noescape
func packedGEMMFast4AVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)

//go:noescape
func packedGEMMWide4AVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd int)

//go:noescape
func packedGEMMEdgeAVX2(dst *int32, a *uint8, panel *int8, m, kq, lda, ldd, nr int)

//go:noescape
func im2colPack3AVX2(dst, r0, r1, r2 *uint8, n, nc, kdim, stride, plane int)

//go:noescape
func packedF32GEMM4x16FMA(dst, a, panel *float32, m, k, ars, aks, ldd int)

//go:noescape
func packedF32GEMM1x16FMA(dst, a, panel *float32, k, aks int)

//go:noescape
func packedF32GEMM4x8FMA(dst, a, panel *float32, m, k, ars, aks, ldd int)

//go:noescape
func packedF32GEMM1x8FMA(dst, a, panel *float32, k, aks int)

//go:noescape
func requantQ31RowsAVX2(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, m, nc4, lda, ldd int)

//go:noescape
func requantQ31TransAVX2(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, np8, nc4, lda, ldd int)

// hasFMA reports whether AVX2+FMA kernels are usable on this CPU/OS.
var hasFMA = detectFMA()

func detectFMA() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// OS must save XMM (bit 1) and YMM (bit 2) state.
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

func init() {
	if !hasFMA {
		return
	}
	simdFeatures = "avx2,fma"
	simdApply = applySIMDAmd64
	simdApply(os.Getenv("APT_NOSIMD") == "")
}

// applySIMDAmd64 points every kernel dispatch variable at the assembly or
// the portable implementation. It backs SetSIMD, so both paths stay
// testable on one machine.
func applySIMDAmd64(on bool) {
	simdOn = on
	if !on {
		axpy4, axpy1, dot = axpy4Go, axpy1Go, dotGo
		packedAsmFast, packedAsmWide = nil, nil
		packedAsmFast4, packedAsmWide4 = nil, nil
		packedAsmEdge = nil
		pack3Asm = nil
		f32Panel4, f32Panel1 = f32Panel4Go, f32Panel1Go
		f32Panel4w8, f32Panel1w8 = f32Panel4x8Go, f32Panel1x8Go
		requantRowsAsm, requantTransAsm = nil, nil
		return
	}
	axpy4 = axpy4Asm
	axpy1 = axpy1Asm
	dot = dotAsm
	packedAsmFast = packedFastAsm
	packedAsmWide = packedWideAsm
	packedAsmFast4 = packedFast4Asm
	packedAsmWide4 = packedWide4Asm
	packedAsmEdge = packedEdgeAsm
	pack3Asm = pack3AVX2Wrap
	f32Panel4 = f32Panel4Asm
	f32Panel1 = f32Panel1Asm
	f32Panel4w8 = f32Panel4w8Asm
	f32Panel1w8 = f32Panel1w8Asm
	requantRowsAsm = requantRowsAVX2Wrap
	requantTransAsm = requantTransAVX2Wrap
}

func pack3AVX2Wrap(dst, r0, r1, r2 []uint8, n, nc, kdim, stride, plane int) {
	// Pin the extreme bytes the kernel touches: the last block's 16-byte
	// store and each cursor's final 4-byte load.
	_ = dst[(n-1)*kdim+(nc-1)*9+15]
	e := (nc-1)*plane + (n-1)*stride
	_ = r0[e+3]
	_ = r1[e+3]
	_ = r2[e+3]
	im2colPack3AVX2(&dst[0], &r0[0], &r1[0], &r2[0], n, nc, kdim, stride, plane)
}

func requantRowsAVX2Wrap(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, m, nc4, lda, ldd int) {
	// Bounds asserted by RequantQ31Rows; re-pin the extremes the kernel
	// touches (last row's last group and every per-channel parameter).
	_ = acc[(m-1)*lda+nc4-1]
	_ = dst[(m-1)*ldd+nc4-1]
	_ = m0[nc4-1]
	_ = rsh[nc4-1]
	_ = corr[nc4-1]
	requantQ31RowsAVX2(&dst[0], &acc[0], &m0[0], &rsh[0], &corr[0], int(zp), int(lo), m, nc4, lda, ldd)
}

func requantTransAVX2Wrap(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, np8, nc4, lda, ldd int) {
	_ = acc[(np8-1)*lda+nc4-1]
	_ = dst[(nc4-1)*ldd+np8-1]
	_ = m0[nc4-1]
	_ = rsh[nc4-1]
	_ = corr[nc4-1]
	requantQ31TransAVX2(&dst[0], &acc[0], &m0[0], &rsh[0], &corr[0], int(zp), int(lo), np8, nc4, lda, ldd)
}

func axpy4Asm(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	if n == 0 {
		return
	}
	_ = b0[n-1]
	_ = b1[n-1]
	_ = b2[n-1]
	_ = b3[n-1]
	axpy4fma(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], n, a0, a1, a2, a3)
}

func axpy1Asm(dst, b []float32, a float32) {
	n := len(dst)
	if n == 0 {
		return
	}
	_ = b[n-1]
	axpy1fma(&dst[0], &b[0], n, a)
}

func dotAsm(a, b []float32) float32 {
	n := len(a)
	if n == 0 {
		return 0
	}
	_ = b[n-1]
	return dotfma(&a[0], &b[0], n)
}

func packedFastAsm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	// Bounds asserted by MatMulU8I8PackedInto; the kernel reads 4·kq bytes
	// per operand row and writes 8 int32 per dst row.
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+7]
	_ = panel[kq*32-1]
	packedGEMMFastAVX2(&dst[0], &a[0], &panel[0], m, kq, lda, ldd)
}

func packedWideAsm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+7]
	_ = panel[kq*32-1]
	packedGEMMWideAVX2(&dst[0], &a[0], &panel[0], m, kq, lda, ldd)
}

func packedFast4Asm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	// m is a positive multiple of 4 (asserted by the caller's row split).
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+7]
	_ = panel[kq*32-1]
	packedGEMMFast4AVX2(&dst[0], &a[0], &panel[0], m, kq, lda, ldd)
}

func packedWide4Asm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd int) {
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+7]
	_ = panel[kq*32-1]
	packedGEMMWide4AVX2(&dst[0], &a[0], &panel[0], m, kq, lda, ldd)
}

func packedEdgeAsm(dst []int32, a []uint8, panel []int8, m, kq, lda, ldd, nr int) {
	// nr ∈ [1, 7] (checked by gemmPackedBlock's panel split); the masked
	// store writes exactly nr int32 per row.
	_ = a[(m-1)*lda+4*kq-1]
	_ = dst[(m-1)*ldd+nr-1]
	_ = panel[kq*32-1]
	packedGEMMEdgeAVX2(&dst[0], &a[0], &panel[0], m, kq, lda, ldd, nr)
}

func f32Panel4Asm(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	// m is a positive multiple of 4; each row reads k strided taps of a
	// and writes 16 consecutive dst floats.
	_ = a[(m-1)*ars+(k-1)*aks]
	_ = dst[(m-1)*ldd+15]
	_ = panel[k*16-1]
	packedF32GEMM4x16FMA(&dst[0], &a[0], &panel[0], m, k, ars, aks, ldd)
}

func f32Panel1Asm(dst, a, panel []float32, k, aks int) {
	_ = a[(k-1)*aks]
	_ = dst[15]
	_ = panel[k*16-1]
	packedF32GEMM1x16FMA(&dst[0], &a[0], &panel[0], k, aks)
}

func f32Panel4w8Asm(dst, a, panel []float32, m, k, ars, aks, ldd int) {
	_ = a[(m-1)*ars+(k-1)*aks]
	_ = dst[(m-1)*ldd+7]
	_ = panel[k*8-1]
	packedF32GEMM4x8FMA(&dst[0], &a[0], &panel[0], m, k, ars, aks, ldd)
}

func f32Panel1w8Asm(dst, a, panel []float32, k, aks int) {
	_ = a[(k-1)*aks]
	_ = dst[7]
	_ = panel[k*8-1]
	packedF32GEMM1x8FMA(&dst[0], &a[0], &panel[0], k, aks)
}
