//go:build amd64

#include "textflag.h"

// AVX2 Q31 requantization kernels (see requant.go for the pinned
// semantics and PERF.md for the register layout). Both kernels process
// channel groups of four: one YMM register holds the group's four int64
// lanes through the whole chain
//
//	widen acc → +corr → saturate to int32 (compare/blend against
//	±2^31) → VPMULDQ by m0 → +2^(rsh−1) → arithmetic shift right by
//	rsh (VPSRLVQ + sign fill through a precomputed himask) → +zp →
//	clamp [lo, 255] → low-byte extract
//
// with the per-channel parameters (m0, corr, rsh, the derived rounding
// constant and himask) hoisted into Y8–Y12 once per group, amortized
// over every row/position the group covers. AVX2 has no 64-bit
// arithmetic variable shift or 64-bit min/max, hence the sign-fill OR
// and the compare/blend clamps; both produce exactly the int64
// semantics of the portable reference, so SIMD and portable bytes are
// identical for every input in the contract domain.

// Constant pool: 4×int64 replicas so compares/adds can use memory
// operands, plus the byte-gather shuffle for the low-byte extract.
DATA rqConsts<>+0(SB)/8, $0x000000007fffffff   // MaxInt32
DATA rqConsts<>+8(SB)/8, $0x000000007fffffff
DATA rqConsts<>+16(SB)/8, $0x000000007fffffff
DATA rqConsts<>+24(SB)/8, $0x000000007fffffff
DATA rqConsts<>+32(SB)/8, $0xffffffff80000000  // MinInt32
DATA rqConsts<>+40(SB)/8, $0xffffffff80000000
DATA rqConsts<>+48(SB)/8, $0xffffffff80000000
DATA rqConsts<>+56(SB)/8, $0xffffffff80000000
DATA rqConsts<>+64(SB)/8, $0x00000000000000ff  // 255
DATA rqConsts<>+72(SB)/8, $0x00000000000000ff
DATA rqConsts<>+80(SB)/8, $0x00000000000000ff
DATA rqConsts<>+88(SB)/8, $0x00000000000000ff
DATA rqConsts<>+96(SB)/8, $0x0000000000000040  // 64 (himask shift base)
DATA rqConsts<>+104(SB)/8, $0x0000000000000040
DATA rqConsts<>+112(SB)/8, $0x0000000000000040
DATA rqConsts<>+120(SB)/8, $0x0000000000000040
DATA rqConsts<>+128(SB)/8, $0x8080808080800800 // VPSHUFB: qword low bytes → b0,b1
DATA rqConsts<>+136(SB)/8, $0x8080808080808080
DATA rqConsts<>+144(SB)/8, $0x8080808080800800
DATA rqConsts<>+152(SB)/8, $0x8080808080808080
GLOBL rqConsts<>(SB), RODATA|NOPTR, $160

// rqGroupSetup loads the parameters of channel group g (GPR R15) into
//
//	Y8  m0 (widened to int64)
//	Y9  corr
//	Y10 rsh
//	Y11 1 << (rsh−1)
//	Y12 himask = ^0 << (64−rsh)
//
// clobbering Y13–Y15.
#define rqGroupSetup                   \
	VPMOVSXDQ (R8)(R15*4), Y8      \
	VMOVDQU   (R10)(R15*8), Y9     \
	VPMOVSXDQ (R9)(R15*4), Y10     \
	VPCMPEQD  Y13, Y13, Y13        \
	VPSRLQ    $63, Y13, Y14        \
	VPSUBQ    Y14, Y10, Y15        \
	VPSLLVQ   Y15, Y14, Y11        \
	VMOVDQU   rqConsts<>+96(SB), Y15 \
	VPSUBQ    Y10, Y15, Y15        \
	VPSLLVQ   Y15, Y13, Y12

// rqChain requantizes the four int32 accumulators at (ptr) through the
// group parameters, leaving the four result bytes in the low dword of
// the named X register. Clobbers Y13–Y15.
#define rqChain(ptr, xout)                          \
	VPMOVSXDQ (ptr), Y13                        \
	VPADDQ    Y9, Y13, Y13                      \
	VPCMPGTQ  rqConsts<>+0(SB), Y13, Y14        \
	VPBLENDVB Y14, rqConsts<>+0(SB), Y13, Y13   \
	VMOVDQU   rqConsts<>+32(SB), Y15            \
	VPCMPGTQ  Y13, Y15, Y14                     \
	VPBLENDVB Y14, Y15, Y13, Y13                \
	VPMULDQ   Y8, Y13, Y13                      \
	VPADDQ    Y11, Y13, Y13                     \
	VPSRLVQ   Y10, Y13, Y14                     \
	VPXOR     Y15, Y15, Y15                     \
	VPCMPGTQ  Y13, Y15, Y15                     \
	VPAND     Y12, Y15, Y15                     \
	VPOR      Y15, Y14, Y13                     \
	VPADDQ    0(SP), Y13, Y13                   \
	VMOVDQU   32(SP), Y15                       \
	VPCMPGTQ  Y13, Y15, Y14                     \
	VPBLENDVB Y14, Y15, Y13, Y13                \
	VPCMPGTQ  rqConsts<>+64(SB), Y13, Y14       \
	VPBLENDVB Y14, rqConsts<>+64(SB), Y13, Y13  \
	VPSHUFB   rqConsts<>+128(SB), Y13, Y13      \
	VEXTRACTI128 $1, Y13, X14                   \
	VPUNPCKLWD X14, X13, xout

// func requantQ31RowsAVX2(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, m, nc4, lda, ldd int)
TEXT ·requantQ31RowsAVX2(SB), NOSPLIT, $64-88
	MOVQ dst+0(FP), DI
	MOVQ acc+8(FP), SI
	MOVQ m0+16(FP), R8
	MOVQ rsh+24(FP), R9
	MOVQ corr+32(FP), R10
	MOVQ zp+40(FP), AX
	MOVQ AX, 0(SP)
	MOVQ AX, 8(SP)
	MOVQ AX, 16(SP)
	MOVQ AX, 24(SP)
	MOVQ lo+48(FP), AX
	MOVQ AX, 32(SP)
	MOVQ AX, 40(SP)
	MOVQ AX, 48(SP)
	MOVQ AX, 56(SP)
	MOVQ m+56(FP), R11
	MOVQ nc4+64(FP), R12
	MOVQ lda+72(FP), DX
	SHLQ $2, DX              // row stride in bytes
	MOVQ ldd+80(FP), R14
	XORQ R15, R15            // g: channel group base

rowsGroup:
	rqGroupSetup
	LEAQ (SI)(R15*4), AX     // &acc[g]
	LEAQ (DI)(R15*1), BX     // &dst[g]
	MOVQ R11, CX             // remaining rows

rowsRow:
	rqChain(AX, X13)
	VMOVD X13, (BX)
	ADDQ  DX, AX
	ADDQ  R14, BX
	DECQ  CX
	JNZ   rowsRow

	ADDQ $4, R15
	CMPQ R15, R12
	JLT  rowsGroup
	VZEROUPPER
	RET

// func requantQ31TransAVX2(dst *uint8, acc *int32, m0, rsh *int32, corr *int64, zp, lo, np8, nc4, lda, ldd int)
//
// Position-major accumulator → channel-major bytes: each iteration
// requantizes an 8-position × 4-channel tile into X0–X7 (one low dword
// per position), transposes the 8×4 bytes in registers (VPUNPCKLBW/WD/DQ
// cascade) and stores one contiguous 8-byte run per channel.
TEXT ·requantQ31TransAVX2(SB), NOSPLIT, $64-88
	MOVQ dst+0(FP), DI
	MOVQ acc+8(FP), SI
	MOVQ m0+16(FP), R8
	MOVQ rsh+24(FP), R9
	MOVQ corr+32(FP), R10
	MOVQ zp+40(FP), AX
	MOVQ AX, 0(SP)
	MOVQ AX, 8(SP)
	MOVQ AX, 16(SP)
	MOVQ AX, 24(SP)
	MOVQ lo+48(FP), AX
	MOVQ AX, 32(SP)
	MOVQ AX, 40(SP)
	MOVQ AX, 48(SP)
	MOVQ AX, 56(SP)
	MOVQ np8+56(FP), R11
	MOVQ nc4+64(FP), R12
	MOVQ lda+72(FP), R13
	SHLQ $2, R13             // position stride in bytes
	MOVQ ldd+80(FP), R14
	XORQ R15, R15            // g: channel group base

transGroup:
	rqGroupSetup
	MOVQ R15, DX
	IMULQ R14, DX
	LEAQ (DI)(DX*1), BX      // &dst[g*ldd]: channel g's plane run
	LEAQ (SI)(R15*4), AX     // &acc[g], walks 8 positions per tile
	MOVQ R11, CX             // remaining positions (multiple of 8)

transTile:
	rqChain(AX, X0)
	ADDQ R13, AX
	rqChain(AX, X1)
	ADDQ R13, AX
	rqChain(AX, X2)
	ADDQ R13, AX
	rqChain(AX, X3)
	ADDQ R13, AX
	rqChain(AX, X4)
	ADDQ R13, AX
	rqChain(AX, X5)
	ADDQ R13, AX
	rqChain(AX, X6)
	ADDQ R13, AX
	rqChain(AX, X7)
	ADDQ R13, AX

	// 8 positions × 4 channels byte transpose.
	VPUNPCKLBW X1, X0, X0    // c?p0,c?p1 pairs
	VPUNPCKLBW X3, X2, X2
	VPUNPCKLBW X5, X4, X4
	VPUNPCKLBW X7, X6, X6
	VPUNPCKLWD X2, X0, X1    // channel-major p0..p3 dwords
	VPUNPCKLWD X6, X4, X5    // channel-major p4..p7 dwords
	VPUNPCKLDQ X5, X1, X0    // qwords: c0 row, c1 row
	VPUNPCKHDQ X5, X1, X2    // qwords: c2 row, c3 row

	MOVQ    X0, (BX)
	VPEXTRQ $1, X0, (BX)(R14*1)
	LEAQ    (BX)(R14*2), DX
	MOVQ    X2, (DX)
	VPEXTRQ $1, X2, (DX)(R14*1)

	ADDQ $8, BX
	SUBQ $8, CX
	JNZ  transTile

	ADDQ $4, R15
	CMPQ R15, R12
	JLT  transGroup
	VZEROUPPER
	RET
