package tensor

import "math"

// RNG is a deterministic SplitMix64 pseudo-random generator. It is cheap,
// has excellent statistical quality for simulation purposes, and — unlike
// math/rand's global state — makes every experiment reproducible from a
// seed and safe to shard across goroutines (give each worker its own RNG
// derived via Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Split derives an independent generator from the current one. The derived
// stream is decorrelated from the parent by a fixed odd multiplier.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64()*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9}
}

// State exposes the generator's internal state for checkpointing: a
// training run that must resume bit-identically after a crash snapshots
// every RNG stream it owns (loader shuffle, augmentation, stochastic
// codecs) and restores them with SetState.
func (r *RNG) State() uint64 { return r.state }

// SetState rewinds (or fast-forwards) the generator to a state captured
// with State. The next Uint64 after SetState(s) equals the one that
// followed when State returned s.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 { return float32(r.Float64()) }

// Intn returns a uniform integer in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal sample via Box–Muller.
func (r *RNG) Norm() float64 {
	// Guard against log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a random permutation of [0, n) using Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills t with N(mean, std²) samples.
func (t *Tensor) FillNormal(rng *RNG, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*float32(rng.Norm())
	}
}

// FillUniform fills t with uniform samples in [lo, hi).
func (t *Tensor) FillUniform(rng *RNG, lo, hi float32) {
	for i := range t.data {
		t.data[i] = lo + (hi-lo)*rng.Float32()
	}
}

// FillHeNormal applies the He et al. (2015) initialization used by the
// paper: N(0, sqrt(2/fanIn)).
func (t *Tensor) FillHeNormal(rng *RNG, fanIn int) {
	if fanIn <= 0 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2 / float64(fanIn)))
	t.FillNormal(rng, 0, std)
}
