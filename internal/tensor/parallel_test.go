package tensor

import (
	"math"
	"sync/atomic"
	"testing"
)

// TestParallelForDeterministicAcrossWorkerCounts verifies the pool's core
// contract: for independent iterations the result is identical to a serial
// loop no matter the fan-out, because every index runs exactly once.
func TestParallelForDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 1337
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = math.Sqrt(float64(i)) * 1.5
	}
	for _, workers := range []int{1, 2, 3, 4, 7, 16, 64} {
		prev := SetMaxWorkers(workers)
		got := make([]float64, n)
		ParallelFor(n, func(i int) { got[i] = math.Sqrt(float64(i)) * 1.5 })
		SetMaxWorkers(prev)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: index %d = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestParallelForNested ensures nested ParallelFor calls cannot deadlock:
// the caller participates in its own job, so progress never depends on a
// free pool worker.
func TestParallelForNested(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	const outer, inner = 16, 32
	sums := make([]int64, outer)
	ParallelFor(outer, func(i int) {
		part := make([]int64, inner)
		ParallelFor(inner, func(j int) { part[j] = int64(i*inner + j) })
		var s int64
		for _, v := range part {
			s += v
		}
		sums[i] = s
	})
	var total int64
	for _, s := range sums {
		total += s
	}
	n := int64(outer * inner)
	if want := n * (n - 1) / 2; total != want {
		t.Fatalf("nested sum = %d, want %d", total, want)
	}
}

// TestParallelForReentryAfterCompletion runs many small jobs back to back
// to exercise stale-job handoff in the pool queue.
func TestParallelForReentryAfterCompletion(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	for round := 0; round < 200; round++ {
		hits := make([]int32, 37)
		ParallelFor(len(hits), func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, h)
			}
		}
	}
}

// TestParallelForWorkerCoversAllIndices pins ParallelForWorker's index
// contract (each i exactly once) and its lane contract: every lane
// ordinal stays below MaxWorkers(), and a participant keeps one lane for
// the whole job, so no index observes a torn lane assignment.
func TestParallelForWorkerCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 8, 32} {
		prev := SetMaxWorkers(workers)
		for round := 0; round < 50; round++ {
			const n = 211
			hits := make([]int32, n)
			lanes := make([]int32, n)
			ParallelForWorker(n, func(i, lane int) {
				hits[i]++
				lanes[i] = int32(lane)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d round=%d: index %d ran %d times", workers, round, i, h)
				}
				if lanes[i] < 0 || int(lanes[i]) >= workers {
					t.Fatalf("workers=%d: index %d saw lane %d, want [0,%d)", workers, i, lanes[i], workers)
				}
			}
		}
		SetMaxWorkers(prev)
	}
}

// TestParallelForWorkerLanesAreExclusive checks that no two concurrent
// participants share a lane: each iteration increments and decrements a
// per-lane depth counter, which must never exceed 1.
func TestParallelForWorkerLanesAreExclusive(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)
	depth := make([]int32, MaxWorkers())
	var bad int32
	for round := 0; round < 20; round++ {
		ParallelForWorker(512, func(i, lane int) {
			if d := atomic.AddInt32(&depth[lane], 1); d != 1 {
				atomic.StoreInt32(&bad, 1)
			}
			atomic.AddInt32(&depth[lane], -1)
		})
	}
	if bad != 0 {
		t.Fatal("two concurrent participants shared a lane")
	}
}

// TestParallelForWorkerSerialIsLaneZero pins the serial fast path: one
// worker means a plain loop with lane 0 throughout (the engine's
// zero-allocation serial contract sizes scratch for exactly one lane).
func TestParallelForWorkerSerialIsLaneZero(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	order := make([]int, 0, 9)
	ParallelForWorker(9, func(i, lane int) {
		if lane != 0 {
			t.Fatalf("serial lane = %d, want 0", lane)
		}
		order = append(order, i)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order[%d] = %d, want %d", i, v, i)
		}
	}
}

// naiveMatMul is an independent float64 triple loop used as ground truth
// for the blocked kernels.
func naiveMatMul(a, b *Tensor, aT, bT bool) *Tensor {
	ad, bd := a.Data(), b.Data()
	var m, k, n int
	at := func(i, p int) float32 { return ad[i*a.Dim(1)+p] }
	bt := func(p, j int) float32 { return bd[p*b.Dim(1)+j] }
	if aT {
		k, m = a.Dim(0), a.Dim(1)
		at = func(i, p int) float32 { return ad[p*a.Dim(1)+i] }
	} else {
		m, k = a.Dim(0), a.Dim(1)
	}
	if bT {
		n = b.Dim(0)
		bt = func(p, j int) float32 { return bd[j*b.Dim(1)+p] }
	} else {
		n = b.Dim(1)
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(at(i, p)) * float64(bt(p, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func checkClose(t *testing.T, got, want *Tensor, tol float64, label string) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("%s: shape %v != %v", label, got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		g, w := float64(got.Data()[i]), float64(want.Data()[i])
		if math.Abs(g-w) > tol*(1+math.Abs(w)) {
			t.Fatalf("%s: elem %d: got %v, want %v", label, i, g, w)
		}
	}
}

// TestTiledGEMMAgainstNaiveReference checks all three GEMM variants against
// an independent float64 triple loop within 1e-5 across shapes that cover
// every unroll tail (k % 4 in 0..3, n crossing the column-block boundary).
func TestTiledGEMMAgainstNaiveReference(t *testing.T) {
	rng := NewRNG(77)
	shapes := [][3]int{
		{1, 1, 1}, {3, 4, 5}, {8, 27, 33}, {16, 13, 64},
		{5, 16, 2100}, // n crosses gemmColBlock
		{17, 6, 31}, {2, 9, 7},
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		got, err := MatMul(a, b)
		if err != nil {
			t.Fatalf("MatMul(%v): %v", s, err)
		}
		checkClose(t, got, naiveMatMul(a, b, false, false), 1e-5, "matmul")

		at := randMat(rng, k, m)
		gotTA, err := MatMulTransA(at, b)
		if err != nil {
			t.Fatalf("MatMulTransA(%v): %v", s, err)
		}
		checkClose(t, gotTA, naiveMatMul(at, b, true, false), 1e-5, "matmulTA")

		bt := randMat(rng, n, k)
		gotTB, err := MatMulTransB(a, bt)
		if err != nil {
			t.Fatalf("MatMulTransB(%v): %v", s, err)
		}
		checkClose(t, gotTB, naiveMatMul(a, bt, false, true), 1e-5, "matmulTB")
	}
}

// TestMatMulIntoMatchesAlloc checks the zero-alloc variants write the same
// values as their allocating counterparts into a poisoned destination.
func TestMatMulIntoMatchesAlloc(t *testing.T) {
	rng := NewRNG(78)
	a := randMat(rng, 9, 14)
	b := randMat(rng, 14, 21)
	at := randMat(rng, 14, 9)
	bt := randMat(rng, 21, 14)

	poison := func(m, n int) *Tensor {
		d := New(m, n)
		d.Fill(float32(math.NaN()))
		return d
	}

	dst := poison(9, 21)
	if err := MatMulInto(dst, a, b); err != nil {
		t.Fatalf("MatMulInto: %v", err)
	}
	want, _ := MatMul(a, b)
	matEq(t, dst, want, 0)

	dst = poison(9, 21)
	if err := MatMulTransAInto(dst, at, b); err != nil {
		t.Fatalf("MatMulTransAInto: %v", err)
	}
	want, _ = MatMulTransA(at, b)
	matEq(t, dst, want, 0)

	dst = poison(9, 21)
	if err := MatMulTransBInto(dst, a, bt); err != nil {
		t.Fatalf("MatMulTransBInto: %v", err)
	}
	want, _ = MatMulTransB(a, bt)
	matEq(t, dst, want, 0)

	// Shape mismatches must error, not corrupt memory.
	bad := New(3, 3)
	if err := MatMulInto(bad, a, b); err == nil {
		t.Fatal("MatMulInto accepted a mis-shaped destination")
	}
}

// TestGEMMDeterministicAcrossWorkerCounts pins the blocked kernels'
// bit-stability: partitioning work differently must not change any output
// bit, because accumulation order per element is fixed by the blocking,
// not by the scheduler.
func TestGEMMDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := NewRNG(79)
	a := randMat(rng, 33, 19)
	b := randMat(rng, 19, 2100)
	prev := SetMaxWorkers(1)
	ref, err := MatMul(a, b)
	SetMaxWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		SetMaxWorkers(workers)
		got, err := MatMul(a, b)
		SetMaxWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		matEq(t, got, ref, 0)
	}
}

// TestKernelsAgainstReference exercises the dispatched AXPY/dot kernels
// (SIMD assembly on capable amd64 hosts) against plain Go loops, covering
// the vector widths and scalar tails.
func TestKernelsAgainstReference(t *testing.T) {
	rng := NewRNG(80)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 100, 1023} {
		mk := func() []float32 {
			s := make([]float32, n)
			for i := range s {
				s[i] = float32(rng.Norm())
			}
			return s
		}
		dst := mk()
		ref := append([]float32(nil), dst...)
		b0, b1, b2, b3 := mk(), mk(), mk(), mk()
		a0, a1, a2, a3 := float32(0.7), float32(-1.3), float32(0.01), float32(2.5)

		axpy4(dst, b0, b1, b2, b3, a0, a1, a2, a3)
		for j := 0; j < n; j++ {
			ref[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
		for j := 0; j < n; j++ {
			if math.Abs(float64(dst[j]-ref[j])) > 1e-5*(1+math.Abs(float64(ref[j]))) {
				t.Fatalf("axpy4 n=%d: elem %d got %v want %v", n, j, dst[j], ref[j])
			}
		}

		dst2 := mk()
		ref2 := append([]float32(nil), dst2...)
		axpy1(dst2, b0, a1)
		for j := 0; j < n; j++ {
			ref2[j] += a1 * b0[j]
		}
		for j := 0; j < n; j++ {
			if math.Abs(float64(dst2[j]-ref2[j])) > 1e-5*(1+math.Abs(float64(ref2[j]))) {
				t.Fatalf("axpy1 n=%d: elem %d got %v want %v", n, j, dst2[j], ref2[j])
			}
		}

		var want float64
		for j := 0; j < n; j++ {
			want += float64(b0[j]) * float64(b1[j])
		}
		got := float64(dot(b0, b1))
		if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
			t.Fatalf("dot n=%d: got %v want %v", n, got, want)
		}
	}
}
