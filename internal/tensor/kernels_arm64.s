//go:build arm64

#include "textflag.h"

// NEON packed-panel float micro-kernels, the arm64 counterparts of the
// AVX2 kernels in kernels_amd64.s. Same contracts: one accumulator per
// output element held in registers across the whole k loop, k ascending,
// operand row r tap q read at a[r·ars + q·aks], dst written exactly
// once per tile. FMLA fuses each multiply-add into one rounding, so —
// exactly like the amd64 FMA kernels — results agree with the portable
// kernels to float32 rounding, not bitwise.
//
// The activation broadcast is LD1R (load one float replicated to four
// lanes); the packed panel rows are contiguous, consumed with
// post-incremented LD1 multi-register loads.

// func packedF32GEMM4x16NEON(dst, a, panel *float32, m, k, ars, aks, ldd int)
//
// 4 rows × 16 columns: sixteen V-register accumulators (V8–V23, four
// per row), each panel row (64 bytes, V0–V3) loaded once per four rows.
// m must be a positive multiple of 4.
TEXT ·packedF32GEMM4x16NEON(SB), NOSPLIT, $0-64
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD panel+16(FP), R2
	MOVD m+24(FP), R3
	LSR  $2, R3, R3          // four-row groups
	MOVD k+32(FP), R4
	MOVD ars+40(FP), R5
	LSL  $2, R5, R5          // row stride in bytes
	MOVD aks+48(FP), R6
	LSL  $2, R6, R6          // k stride in bytes
	MOVD ldd+56(FP), R7
	LSL  $2, R7, R7          // dst row stride in bytes

grouploop:
	CBZ  R3, done
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	VEOR V16.B16, V16.B16, V16.B16
	VEOR V17.B16, V17.B16, V17.B16
	VEOR V18.B16, V18.B16, V18.B16
	VEOR V19.B16, V19.B16, V19.B16
	VEOR V20.B16, V20.B16, V20.B16
	VEOR V21.B16, V21.B16, V21.B16
	VEOR V22.B16, V22.B16, V22.B16
	VEOR V23.B16, V23.B16, V23.B16
	MOVD R1, R8              // row 0 cursor
	ADD  R5, R8, R9          // row 1
	ADD  R5, R9, R10         // row 2
	ADD  R5, R10, R11        // row 3
	MOVD R2, R12             // panel cursor
	MOVD R4, R13             // k counter

kloop:
	VLD1.P 64(R12), [V0.S4, V1.S4, V2.S4, V3.S4]
	VLD1R  (R8), [V4.S4]
	ADD    R6, R8, R8
	VFMLA  V0.S4, V4.S4, V8.S4
	VFMLA  V1.S4, V4.S4, V9.S4
	VFMLA  V2.S4, V4.S4, V10.S4
	VFMLA  V3.S4, V4.S4, V11.S4
	VLD1R  (R9), [V5.S4]
	ADD    R6, R9, R9
	VFMLA  V0.S4, V5.S4, V12.S4
	VFMLA  V1.S4, V5.S4, V13.S4
	VFMLA  V2.S4, V5.S4, V14.S4
	VFMLA  V3.S4, V5.S4, V15.S4
	VLD1R  (R10), [V6.S4]
	ADD    R6, R10, R10
	VFMLA  V0.S4, V6.S4, V16.S4
	VFMLA  V1.S4, V6.S4, V17.S4
	VFMLA  V2.S4, V6.S4, V18.S4
	VFMLA  V3.S4, V6.S4, V19.S4
	VLD1R  (R11), [V7.S4]
	ADD    R6, R11, R11
	VFMLA  V0.S4, V7.S4, V20.S4
	VFMLA  V1.S4, V7.S4, V21.S4
	VFMLA  V2.S4, V7.S4, V22.S4
	VFMLA  V3.S4, V7.S4, V23.S4
	SUB    $1, R13, R13
	CBNZ   R13, kloop

	MOVD R0, R14
	VST1 [V8.S4, V9.S4, V10.S4, V11.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V12.S4, V13.S4, V14.S4, V15.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V16.S4, V17.S4, V18.S4, V19.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V20.S4, V21.S4, V22.S4, V23.S4], (R14)
	ADD  R5<<2, R1, R1
	ADD  R7<<2, R0, R0
	SUB  $1, R3, R3
	B    grouploop

done:
	RET

// func packedF32GEMM1x16NEON(dst, a, panel *float32, k, aks int)
//
// One-row remainder kernel: 16 accumulators in V8–V11, dst[0:16]
// written once.
TEXT ·packedF32GEMM1x16NEON(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD panel+16(FP), R2
	MOVD k+24(FP), R3
	MOVD aks+32(FP), R4
	LSL  $2, R4, R4
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16

kloop:
	VLD1.P 64(R2), [V0.S4, V1.S4, V2.S4, V3.S4]
	VLD1R  (R1), [V4.S4]
	ADD    R4, R1, R1
	VFMLA  V0.S4, V4.S4, V8.S4
	VFMLA  V1.S4, V4.S4, V9.S4
	VFMLA  V2.S4, V4.S4, V10.S4
	VFMLA  V3.S4, V4.S4, V11.S4
	SUB    $1, R3, R3
	CBNZ   R3, kloop

	VST1 [V8.S4, V9.S4, V10.S4, V11.S4], (R0)
	RET

// func packedF32GEMM4x8NEON(dst, a, panel *float32, m, k, ars, aks, ldd int)
//
// Narrow-panel 4×8 kernel: two accumulators per row (V8–V15), 32-byte
// panel rows. m must be a positive multiple of 4.
TEXT ·packedF32GEMM4x8NEON(SB), NOSPLIT, $0-64
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD panel+16(FP), R2
	MOVD m+24(FP), R3
	LSR  $2, R3, R3
	MOVD k+32(FP), R4
	MOVD ars+40(FP), R5
	LSL  $2, R5, R5
	MOVD aks+48(FP), R6
	LSL  $2, R6, R6
	MOVD ldd+56(FP), R7
	LSL  $2, R7, R7

grouploop:
	CBZ  R3, done
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16
	MOVD R1, R8
	ADD  R5, R8, R9
	ADD  R5, R9, R10
	ADD  R5, R10, R11
	MOVD R2, R12
	MOVD R4, R13

kloop:
	VLD1.P 32(R12), [V0.S4, V1.S4]
	VLD1R  (R8), [V4.S4]
	ADD    R6, R8, R8
	VFMLA  V0.S4, V4.S4, V8.S4
	VFMLA  V1.S4, V4.S4, V9.S4
	VLD1R  (R9), [V5.S4]
	ADD    R6, R9, R9
	VFMLA  V0.S4, V5.S4, V10.S4
	VFMLA  V1.S4, V5.S4, V11.S4
	VLD1R  (R10), [V6.S4]
	ADD    R6, R10, R10
	VFMLA  V0.S4, V6.S4, V12.S4
	VFMLA  V1.S4, V6.S4, V13.S4
	VLD1R  (R11), [V7.S4]
	ADD    R6, R11, R11
	VFMLA  V0.S4, V7.S4, V14.S4
	VFMLA  V1.S4, V7.S4, V15.S4
	SUB    $1, R13, R13
	CBNZ   R13, kloop

	MOVD R0, R14
	VST1 [V8.S4, V9.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V10.S4, V11.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V12.S4, V13.S4], (R14)
	ADD  R7, R14, R14
	VST1 [V14.S4, V15.S4], (R14)
	ADD  R5<<2, R1, R1
	ADD  R7<<2, R0, R0
	SUB  $1, R3, R3
	B    grouploop

done:
	RET

// func packedF32GEMM1x8NEON(dst, a, panel *float32, k, aks int)
TEXT ·packedF32GEMM1x8NEON(SB), NOSPLIT, $0-40
	MOVD dst+0(FP), R0
	MOVD a+8(FP), R1
	MOVD panel+16(FP), R2
	MOVD k+24(FP), R3
	MOVD aks+32(FP), R4
	LSL  $2, R4, R4
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16

kloop:
	VLD1.P 32(R2), [V0.S4, V1.S4]
	VLD1R  (R1), [V4.S4]
	ADD    R4, R1, R1
	VFMLA  V0.S4, V4.S4, V8.S4
	VFMLA  V1.S4, V4.S4, V9.S4
	SUB    $1, R3, R3
	CBNZ   R3, kloop

	VST1 [V8.S4, V9.S4], (R0)
	RET
