package tensor

import (
	"math"
	"testing"
)

// randF32 fills a slice with values in [-1, 1).
func randF32(rng *RNG, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = 2*rng.Float32() - 1
	}
	return out
}

// naiveF32Ref computes dst = a·b for (m, k with row stride lda)·(k, n) in
// the kernels' accumulation order (one float32 accumulator per element,
// k ascending), the reference for the packed float GEMM.
func naiveF32Ref(a []float32, lda int, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*lda+p] * b[p*n+j]
			}
			out[i*n+j] = s
		}
	}
	return out
}

// f32Close fails unless got ≈ want to float32 rounding noise: the FMA
// kernels fuse each multiply-add into one rounding, portable Go and the
// naive reference round twice per tap, so results differ in the last
// few ulps but share the accumulation order.
func f32Close(t *testing.T, label string, got, want []float32, k int) {
	t.Helper()
	// Error grows with the accumulation length; 4 ulps per tap is a loose
	// cover for the single- vs double-rounding difference.
	for i := range want {
		diff := math.Abs(float64(got[i]) - float64(want[i]))
		scale := math.Max(math.Abs(float64(want[i])), 1)
		if diff > 1e-6*scale*float64(k+1) {
			t.Fatalf("%s: got[%d] = %g, want %g (diff %g)", label, i, got[i], want[i], diff)
		}
	}
}

func TestPackF32PanelsLayoutAndErrors(t *testing.T) {
	// Narrow (n < 64) matrices pack 8-wide, wide ones 16-wide; both
	// layouts share the same structure: panel pi, k-row q holds
	// b[q][pi·pw .. pi·pw+pw−1] contiguously, the rightmost panel
	// zero-padded.
	cases := []struct{ k, n, pw, panels int }{
		{3, 18, 8, 3},  // narrow: two full 8-panels + 2-column edge
		{3, 66, 16, 5}, // wide: four full 16-panels + 2-column edge
	}
	for _, tc := range cases {
		b := make([]float32, tc.k*tc.n)
		for i := range b {
			b[i] = float32(i + 1)
		}
		pb, err := PackF32PanelsB(b, tc.k, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if pb.Rows() != tc.k || pb.Cols() != tc.n || pb.PanelWidth() != tc.pw || pb.panels != tc.panels {
			t.Fatalf("n=%d pack geometry: rows %d cols %d pw %d panels %d, want (%d,%d,%d,%d)",
				tc.n, pb.Rows(), pb.Cols(), pb.PanelWidth(), pb.panels, tc.k, tc.n, tc.pw, tc.panels)
		}
		if pb.SizeBytes() != 4*tc.panels*tc.k*tc.pw {
			t.Fatalf("n=%d SizeBytes = %d, want %d", tc.n, pb.SizeBytes(), 4*tc.panels*tc.k*tc.pw)
		}
		pw := tc.pw
		for pi := 0; pi < tc.panels; pi++ {
			panel := pb.data[pi*tc.k*pw : (pi+1)*tc.k*pw]
			for q := 0; q < tc.k; q++ {
				for j := 0; j < pw; j++ {
					want := float32(0)
					if col := pi*pw + j; col < tc.n {
						want = b[q*tc.n+col]
					}
					if panel[q*pw+j] != want {
						t.Fatalf("n=%d panel%d[%d][%d] = %g, want %g",
							tc.n, pi, q, j, panel[q*pw+j], want)
					}
				}
			}
		}

		// The transposed form packs identically.
		bt := make([]float32, tc.n*tc.k)
		for j := 0; j < tc.n; j++ {
			for p := 0; p < tc.k; p++ {
				bt[j*tc.k+p] = b[p*tc.n+j]
			}
		}
		pb2, err := PackF32PanelsBT(bt, tc.k, tc.n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pb.data {
			if pb.data[i] != pb2.data[i] {
				t.Fatalf("n=%d: PackF32PanelsB and PackF32PanelsBT disagree at %d", tc.n, i)
			}
		}
	}

	b := make([]float32, 3*18)
	if _, err := PackF32PanelsB(b[:4], 3, 18); err == nil {
		t.Error("short operand did not error")
	}
	if _, err := PackF32PanelsB(b, 0, 18); err == nil {
		t.Error("zero k did not error")
	}
}

// TestMatMulF32PackedMatchesNaive drives deliberate edge shapes through
// both kernel dispatches: quad/panel/row-block boundaries, lda > k
// strided operands, and M remainders that exercise the 4-row/1-row
// split.
func TestMatMulF32PackedMatchesNaive(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(61)
		shapes := []struct{ m, k, n, lda int }{
			{1, 1, 1, 1}, {4, 8, 16, 8}, {5, 7, 17, 9}, {8, 27, 48, 27},
			{16, 27, 128, 27}, {33, 40, 50, 41}, {64, 144, 32, 144}, {3, 5, 90, 6},
		}
		for _, s := range shapes {
			a := randF32(rng, s.m*s.lda)
			b := randF32(rng, s.k*s.n)
			pb, err := PackF32PanelsB(b, s.k, s.n)
			if err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			want := naiveF32Ref(a, s.lda, b, s.m, s.k, s.n)
			got := make([]float32, s.m*s.n)
			if err := MatMulF32PackedInto(got, a, pb, s.m, s.lda); err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			f32Close(t, "packed", got, want, s.k)
		}
	})
}

// TestMatMulF32PackedTransAMatchesNaive checks the strided-A orientation
// (the weight-gradient shape) under both dispatches.
func TestMatMulF32PackedTransAMatchesNaive(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(62)
		shapes := []struct{ m, k, n, lda int }{
			{4, 8, 16, 4}, {27, 16, 64, 27}, {9, 5, 33, 12}, {32, 3, 100, 32},
		}
		for _, s := range shapes {
			at := randF32(rng, s.k*s.lda) // (k, m) with row stride lda ≥ m
			b := randF32(rng, s.k*s.n)
			pb, err := PackF32PanelsB(b, s.k, s.n)
			if err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			// Reference via the explicit transpose.
			a := make([]float32, s.m*s.k)
			for i := 0; i < s.m; i++ {
				for p := 0; p < s.k; p++ {
					a[i*s.k+p] = at[p*s.lda+i]
				}
			}
			want := naiveF32Ref(a, s.k, b, s.m, s.k, s.n)
			got := make([]float32, s.m*s.n)
			if err := MatMulF32PackedTransAInto(got, at, pb, s.m, s.lda); err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			f32Close(t, "packedTA", got, want, s.k)
		}
	})
}

// TestMatMulF32PackedFuzzAgainstNaive mirrors the integer fuzz harness:
// random shapes and operands through every dispatch, compared against
// the naive triple loop.
func TestMatMulF32PackedFuzzAgainstNaive(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(63)
		for trial := 0; trial < 60; trial++ {
			m := 1 + rng.Intn(40)
			k := 1 + rng.Intn(70)
			n := 1 + rng.Intn(80)
			lda := k + rng.Intn(5)
			a := randF32(rng, m*lda)
			b := randF32(rng, k*n)
			pb, err := PackF32PanelsB(b, k, n)
			if err != nil {
				t.Fatal(err)
			}
			want := naiveF32Ref(a, lda, b, m, k, n)
			got := make([]float32, m*n)
			if err := MatMulF32PackedInto(got, a, pb, m, lda); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				diff := math.Abs(float64(got[i]) - float64(want[i]))
				scale := math.Max(math.Abs(float64(want[i])), 1)
				if diff > 1e-6*scale*float64(k+1) {
					t.Fatalf("trial %d (m=%d k=%d n=%d lda=%d): got[%d] = %g, want %g",
						trial, m, k, n, lda, i, got[i], want[i])
				}
			}
		}
	})
}

// TestMatMulF32PackedNarrowSweep walks every output width through the
// narrow-panel machinery: n = 1..7 runs the scalar edge kernel alone,
// n = 8..17 mixes full 8-wide panels with every possible edge
// remainder, and the m values cover the 4-row/1-row split. Both
// dispatches, so the 4×8/1×8 assembly is pinned against the portable
// kernels and the naive reference.
func TestMatMulF32PackedNarrowSweep(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(68)
		k := 13
		lda := k + 1
		for n := 1; n <= 17; n++ {
			for _, m := range []int{1, 2, 3, 4, 5, 9} {
				a := randF32(rng, m*lda)
				b := randF32(rng, k*n)
				pb, err := PackF32PanelsB(b, k, n)
				if err != nil {
					t.Fatal(err)
				}
				if pb.PanelWidth() != f32PanelColsNarrow {
					t.Fatalf("n=%d: panel width %d, want %d", n, pb.PanelWidth(), f32PanelColsNarrow)
				}
				want := naiveF32Ref(a, lda, b, m, k, n)
				got := make([]float32, m*n)
				if err := MatMulF32PackedInto(got, a, pb, m, lda); err != nil {
					t.Fatal(err)
				}
				f32Close(t, "narrow", got, want, k)
			}
		}
	})
}

// TestMatMulU8I8PackedEdgeColumnSweep drives every partial-panel width
// (n mod 8 = 1..7) and row remainder through the integer packed GEMM,
// for saturating and non-saturating matrices under both dispatches —
// the masked-store edge kernel must write exactly nr columns and match
// the portable kernel bit for bit.
func TestMatMulU8I8PackedEdgeColumnSweep(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(69)
		k := 21
		lda := k + 3
		for n := 1; n <= 15; n++ {
			for _, m := range []int{1, 3, 4, 5} {
				for _, sat := range []bool{false, true} {
					a := padForQuads(randU8(rng, m*lda))
					bt := randI8(rng, n*k)
					if !sat {
						for i := range bt {
							bt[i] = int8(rng.Intn(129) - 64)
						}
					} else {
						bt[0], bt[1] = 127, 127
					}
					pb, err := PackI8PanelsBT(bt, k, n)
					if err != nil {
						t.Fatal(err)
					}
					want := naivePackedRef(a, lda, bt, m, k, n)
					// Sentinel-guarded dst: one extra slot past the end must
					// survive the masked store of the final row's edge panel.
					got := make([]int32, m*n+1)
					got[m*n] = 0x5ca1ab1e
					if err := MatMulU8I8PackedInto(got[:m*n], a, pb, m, lda); err != nil {
						t.Fatal(err)
					}
					if got[m*n] != 0x5ca1ab1e {
						t.Fatalf("n=%d m=%d sat=%v: kernel wrote past dst", n, m, sat)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("n=%d m=%d sat=%v: got[%d] = %d, want %d", n, m, sat, i, got[i], want[i])
						}
					}
				}
			}
		}
	})
}

// TestRoutedMatMulMatchesAXPY pins the per-call pack routing: above the
// threshold MatMul/MatMulTransA/MatMulTransB answers must agree with the
// direct kernels they replaced (to rounding), under both dispatches.
func TestRoutedMatMulMatchesAXPY(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(64)
		m, k, n := 24, 31, 130
		if !PackWorthF32(m, k, n) {
			t.Fatalf("test shape (%d,%d,%d) no longer routes", m, k, n)
		}
		ad := randF32(rng, m*k)
		bd := randF32(rng, k*n)
		od := make([]float32, m*n)
		want := make([]float32, m*n)
		matMulKernel(od, ad, bd, m, k, n)
		matMulAXPYKernel(want, ad, bd, m, k, n)
		f32Close(t, "matmul", od, want, k)

		atd := randF32(rng, k*m) // (k, m)
		matMulTransAKernel(od, atd, bd, m, k, n)
		matMulTransAAXPYKernel(want, atd, bd, m, k, n)
		f32Close(t, "matmulTA", od, want, k)

		btd := randF32(rng, n*k) // (n, k)
		pbWant := naiveF32Ref(ad, k, transposeF32(btd, n, k), m, k, n)
		matMulTransBKernel(od, ad, btd, m, k, n)
		f32Close(t, "matmulTB", od, pbWant, k)
	})
}

func transposeF32(src []float32, rows, cols int) []float32 {
	out := make([]float32, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			out[c*rows+r] = src[r*cols+c]
		}
	}
	return out
}

func TestMatMulF32PackedDeterministicAcrossWorkers(t *testing.T) {
	rng := NewRNG(65)
	m, k, n := 37, 60, 70
	a := randF32(rng, m*k)
	b := randF32(rng, k*n)
	pb, err := PackF32PanelsB(b, k, n)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	serial := make([]float32, m*n)
	if err := MatMulF32PackedInto(serial, a, pb, m, k); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		SetMaxWorkers(w)
		// Repack under the parallel pack path too: panels must come out
		// identical for any worker count.
		pb2, err := PackF32PanelsB(b, k, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pb.data {
			if pb.data[i] != pb2.data[i] {
				t.Fatalf("workers=%d: pack differs at %d", w, i)
			}
		}
		got := make([]float32, m*n)
		if err := MatMulF32PackedInto(got, a, pb2, m, k); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: got[%d] = %g, want %g (bitwise)", w, i, got[i], serial[i])
			}
		}
	}
}

func TestMatMulF32PackedErrors(t *testing.T) {
	b := make([]float32, 5*20)
	pb, err := PackF32PanelsB(b, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float32, 3*5)
	dst := make([]float32, 3*20)
	if err := MatMulF32PackedInto(dst, a[:10], pb, 3, 5); err == nil {
		t.Error("short operand did not error")
	}
	if err := MatMulF32PackedInto(dst, a, pb, 3, 4); err == nil {
		t.Error("lda < k did not error")
	}
	if err := MatMulF32PackedInto(dst[:5], a, pb, 3, 5); err == nil {
		t.Error("short destination did not error")
	}
	if err := MatMulF32PackedInto(dst, a, pb, 0, 5); err == nil {
		t.Error("zero m did not error")
	}
	at := make([]float32, 5*3)
	if err := MatMulF32PackedTransAInto(dst, at, pb, 3, 2); err == nil {
		t.Error("TransA lda < m did not error")
	}
	if err := MatMulF32PackedTransAInto(dst, at[:8], pb, 3, 3); err == nil {
		t.Error("TransA short operand did not error")
	}
}

// TestMatMulU8I8PackedRemainderRows hammers the 4-row/1-row split of the
// integer packed GEMM at every M remainder (1..5 plus the row-block
// boundary), for both the fast and the widening route, under both
// dispatches — the shapes where a wrong group split silently corrupts
// the tail rows.
func TestMatMulU8I8PackedRemainderRows(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(66)
		for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 13} {
			for _, sat := range []bool{false, true} {
				k, n := 21, 16
				lda := k + 2
				a := padForQuads(randU8(rng, m*lda))
				bt := randI8(rng, n*k)
				if !sat {
					for i := range bt {
						bt[i] = int8(rng.Intn(129) - 64)
					}
				} else {
					// Force a hazardous pair so the widening kernels run.
					bt[0], bt[1] = 127, 127
				}
				pb, err := PackI8PanelsBT(bt, k, n)
				if err != nil {
					t.Fatal(err)
				}
				if pb.Saturating() != sat {
					t.Fatalf("m=%d: Saturating() = %v, want %v", m, pb.Saturating(), sat)
				}
				want := naivePackedRef(a, lda, bt, m, k, n)
				got := make([]int32, m*n)
				if err := MatMulU8I8PackedInto(got, a, pb, m, lda); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("m=%d sat=%v: got[%d] = %d, want %d", m, sat, i, got[i], want[i])
					}
				}
			}
		}
	})
}

// TestF32PackedSerialPathAllocs pins the zero-allocation contract of the
// serial packed float path (pack + GEMM into reused buffers) — the nn
// layers' steady-state training steps count on it.
func TestF32PackedSerialPathAllocs(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := NewRNG(67)
	m, k, n := 32, 27, 160
	a := randF32(rng, m*k)
	b := randF32(rng, k*n)
	pb := &PackedF32{}
	dst := make([]float32, m*n)
	allocs := testing.AllocsPerRun(20, func() {
		if err := pb.PackB(b, k, n); err != nil {
			t.Fatal(err)
		}
		if err := MatMulF32PackedInto(dst, a, pb, m, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial packed float path allocates %v objects/op, want 0", allocs)
	}
}
