package tensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func matEq(t *testing.T, got, want *Tensor, tol float64) {
	t.Helper()
	if !got.SameShape(want) {
		t.Fatalf("shape %v != %v", got.Shape(), want.Shape())
	}
	for i := range got.Data() {
		if math.Abs(float64(got.Data()[i]-want.Data()[i])) > tol {
			t.Fatalf("elem %d: got %v, want %v", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := MustFromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := MustFromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	want := MustFromSlice([]float32{58, 64, 139, 154}, 2, 2)
	matEq(t, got, want, 0)
}

func TestMatMulShapeErrors(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MatMul(a, b); !errors.Is(err, ErrShape) {
		t.Errorf("inner-dim mismatch err = %v, want ErrShape", err)
	}
	if _, err := MatMul(New(2), b); !errors.Is(err, ErrShape) {
		t.Errorf("rank mismatch err = %v, want ErrShape", err)
	}
}

// naive transposes for cross-checking the fused variants.
func transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(a.At(i, j), j, i)
		}
	}
	return out
}

func randMat(rng *RNG, m, n int) *Tensor {
	t := New(m, n)
	t.FillNormal(rng, 0, 1)
	return t
}

func TestMatMulTransAAgainstExplicitTranspose(t *testing.T) {
	rng := NewRNG(5)
	a := randMat(rng, 7, 4) // (k, m)
	b := randMat(rng, 7, 5) // (k, n)
	got, err := MatMulTransA(a, b)
	if err != nil {
		t.Fatalf("MatMulTransA: %v", err)
	}
	want, err := MatMul(transpose(a), b)
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	matEq(t, got, want, 1e-4)
}

func TestMatMulTransBAgainstExplicitTranspose(t *testing.T) {
	rng := NewRNG(6)
	a := randMat(rng, 3, 8) // (m, k)
	b := randMat(rng, 5, 8) // (n, k)
	got, err := MatMulTransB(a, b)
	if err != nil {
		t.Fatalf("MatMulTransB: %v", err)
	}
	want, err := MatMul(a, transpose(b))
	if err != nil {
		t.Fatalf("MatMul: %v", err)
	}
	matEq(t, got, want, 1e-4)
}

// Property: (A·B)·e_j column selection equals A·(B e_j): matmul respects
// linearity for random small matrices against a naive triple loop.
func TestMatMulAgainstNaiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		got, err := MatMul(a, b)
		if err != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += float64(a.At(i, p)) * float64(b.At(p, j))
				}
				if math.Abs(float64(got.At(i, j))-s) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMatMulSerialMatchesParallel(t *testing.T) {
	rng := NewRNG(9)
	a := randMat(rng, 33, 17)
	b := randMat(rng, 17, 29)
	prev := SetMaxWorkers(1)
	serial, err := MatMul(a, b)
	SetMaxWorkers(8)
	parallel, err2 := MatMul(a, b)
	SetMaxWorkers(prev)
	if err != nil || err2 != nil {
		t.Fatalf("MatMul: %v / %v", err, err2)
	}
	matEq(t, parallel, serial, 0) // identical partitioned arithmetic
}
