package tensor

import (
	"testing"
)

// naiveU8I8 is the reference for dst = a·b, a uint8 (m,k), b int8 (k,n).
func naiveU8I8(a []uint8, b []int8, m, k, n int) []int32 {
	out := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(a[i*k+p]) * int32(b[p*n+j])
			}
			out[i*n+j] = s
		}
	}
	return out
}

func randU8(rng *RNG, n int) []uint8 {
	out := make([]uint8, n)
	for i := range out {
		out[i] = uint8(rng.Intn(256))
	}
	return out
}

func randI8(rng *RNG, n int) []int8 {
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(rng.Intn(255) - 127)
	}
	return out
}

func TestMatMulU8I8MatchesNaive(t *testing.T) {
	rng := NewRNG(41)
	// Shapes straddling the row/column block boundaries.
	shapes := [][3]int{{1, 1, 1}, {3, 7, 5}, {8, 16, 9}, {17, 27, 33}, {5, 64, 130}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randU8(rng, m*k)
		b := randI8(rng, k*n)
		want := naiveU8I8(a, b, m, k, n)
		got := make([]int32, m*n)
		if err := MatMulU8I8Into(got, a, b, m, k, n); err != nil {
			t.Fatalf("MatMulU8I8Into(%v): %v", s, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: got[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulU8I8TransBMatchesNaive(t *testing.T) {
	rng := NewRNG(42)
	shapes := [][3]int{{1, 1, 1}, {4, 9, 3}, {10, 33, 7}, {2, 130, 11}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randU8(rng, m*k)
		bT := randI8(rng, n*k) // (n, k)
		// Materialize b = bTᵀ for the reference.
		b := make([]int8, k*n)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				b[p*n+j] = bT[j*k+p]
			}
		}
		want := naiveU8I8(a, b, m, k, n)
		got := make([]int32, m*n)
		if err := MatMulU8I8TransBInto(got, a, bT, m, k, n); err != nil {
			t.Fatalf("MatMulU8I8TransBInto(%v): %v", s, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: got[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestMatMulI8U8MatchesNaive(t *testing.T) {
	rng := NewRNG(43)
	shapes := [][3]int{{1, 1, 1}, {16, 27, 100}, {9, 13, 65}, {3, 150, 12}}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a := randI8(rng, m*k)
		b := randU8(rng, k*n)
		want := make([]int32, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc int32
				for p := 0; p < k; p++ {
					acc += int32(a[i*k+p]) * int32(b[p*n+j])
				}
				want[i*n+j] = acc
			}
		}
		got := make([]int32, m*n)
		if err := MatMulI8U8Into(got, a, b, m, k, n); err != nil {
			t.Fatalf("MatMulI8U8Into(%v): %v", s, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shape %v: got[%d] = %d, want %d", s, i, got[i], want[i])
			}
		}
	}
}

func TestIntGEMMDeterministicAcrossWorkers(t *testing.T) {
	rng := NewRNG(44)
	m, k, n := 13, 40, 257
	a := randI8(rng, m*k)
	b := randU8(rng, k*n)
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	serial := make([]int32, m*n)
	if err := MatMulI8U8Into(serial, a, b, m, k, n); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		SetMaxWorkers(w)
		got := make([]int32, m*n)
		if err := MatMulI8U8Into(got, a, b, m, k, n); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, got[i], serial[i])
			}
		}
	}
}

func TestIntGEMMShapeErrors(t *testing.T) {
	dst := make([]int32, 4)
	a := make([]uint8, 4)
	b := make([]int8, 4)
	if err := MatMulU8I8Into(dst, a, b, 2, 3, 2); err == nil {
		t.Error("short operand a did not error")
	}
	if err := MatMulU8I8Into(dst, a, b, 0, 2, 2); err == nil {
		t.Error("zero dim did not error")
	}
	if err := MatMulU8I8TransBInto(dst[:1], a, b, 2, 2, 2); err == nil {
		t.Error("short dst did not error")
	}
	if err := MatMulI8U8Into(dst, b, a, 2, 3, 2); err == nil {
		t.Error("short operand did not error")
	}
}

// TestIm2ColBatchU8MatchesFloat checks the uint8 packer against the float
// Im2ColBatch on the same geometry, with pad = the quantization zero point.
func TestIm2ColBatchU8MatchesFloat(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 5, InW: 7, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 2, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 2, Pad: 0},
	}
	rng := NewRNG(45)
	const n = 3
	const pad = uint8(7)
	for _, g := range geoms {
		inSz := g.InC * g.InH * g.InW
		src := randU8(rng, n*inSz)
		// Float reference input: the same values minus the pad level, so
		// float zero padding corresponds to the uint8 pad value.
		x := New(n, g.InC, g.InH, g.InW)
		for i, v := range src {
			x.Data()[i] = float32(v) - float32(pad)
		}
		want, err := Im2ColBatch(x, g)
		if err != nil {
			t.Fatalf("Im2ColBatch(%+v): %v", g, err)
		}
		oh, ow := g.OutHW()
		got := make([]uint8, g.InC*g.KH*g.KW*n*oh*ow)
		if err := Im2ColBatchU8Into(got, src, n, g, pad); err != nil {
			t.Fatalf("Im2ColBatchU8Into(%+v): %v", g, err)
		}
		for i := range got {
			if float32(got[i])-float32(pad) != want.Data()[i] {
				t.Fatalf("geom %+v: col[%d] = %d (−pad: %v), want %v",
					g, i, got[i], float32(got[i])-float32(pad), want.Data()[i])
			}
		}
	}
}

func TestIm2ColBatchU8Errors(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	src := make([]uint8, 16)
	dst := make([]uint8, 9*16)
	if err := Im2ColBatchU8Into(dst, src, 2, g, 0); err == nil {
		t.Error("short src did not error")
	}
	if err := Im2ColBatchU8Into(dst[:3], src, 1, g, 0); err == nil {
		t.Error("short dst did not error")
	}
	if err := Im2ColBatchU8Into(dst, src, 0, g, 0); err == nil {
		t.Error("zero batch did not error")
	}
}
