package tensor

import (
	"fmt"
	"sync"
)

// Packed-operand float GEMM: the register-blocked shape behind the
// training spine's large products. The B matrix of dst = A·B is
// reorganized into column panels of pw consecutive columns — k rows of
// pw floats each, zero-padded at the right edge — so the inner kernel
// streams one contiguous panel row per k tap instead of striding B.
// The panel width is 16 columns (two YMM registers of accumulators per
// output row) by default, dropping to 8 for narrow matrices so small-n
// products still fill whole panels. The micro-kernel is 4×pw: four
// output rows' accumulators stay in registers across the whole k loop,
// each loaded B panel row is multiplied against all four rows, and dst
// is touched exactly once per tile. That is the BLIS/gemmlowp shape;
// the AXPY kernels it replaces reload and restore the dst row every
// four k taps and stream B once per output row.
//
// Packing is cheap relative to the multiply when there are enough output
// rows to amortize it: the pack streams k·n floats once while the GEMM
// performs m·k·n FMAs, so the pack overhead is ~1/m of the arithmetic.
// MatMul/MatMulTransA/MatMulTransB route through a pooled per-call pack
// when m ≥ f32PackMinM (see PackWorthF32); layers with a steady-state
// shape (conv/linear in internal/nn) hold their own PackedF32 arena and
// call MatMulF32PackedInto directly, so the hot training path packs into
// reused storage and allocates nothing.
//
// Unlike the integer kernels, SIMD and portable float kernels are not
// bitwise identical: the assembly accumulates with fused multiply-adds
// (one rounding per tap) while portable Go rounds the multiply and the
// add separately. Both accumulate in the same k-ascending order with one
// accumulator per output element, so they agree to float32 rounding —
// the same contract the AXPY/dot kernels already have.

// f32PanelCols is the default packed panel width: 16 columns = two YMM
// registers of float32 accumulators per output row.
const f32PanelCols = 16

// f32PanelColsNarrow is the narrow panel width, one YMM register of
// accumulators per output row. Products too narrow to fill 16-wide
// panels (n < f32NarrowPanelMaxN) pack 8-wide instead, so shapes like
// the first-layer weight gradient (n = kdim = 27) or a classifier head
// still run the register-blocked kernels over mostly-full panels
// rather than pushing most of their columns through the scalar edge
// kernel.
const f32PanelColsNarrow = 8

// f32NarrowPanelMaxN is the column count below which reset picks the
// narrow panel width: under 4 full wide panels, the partial-panel
// fraction of a 16-wide layout is large enough that 8-wide panels win.
const f32NarrowPanelMaxN = 4 * f32PanelCols

// f32PackedRowBlock bounds the rows of one packed-GEMM task. Taller than
// the AXPY path's gemmRowBlock on purpose: a task streams its B panel
// from cache once for every row block, so 32 rows (eight 4-row groups)
// cut that re-streaming 4× while ceil(m/32)·panels still leaves plenty
// of tasks for the worker pool (panels dominate on every large shape).
const f32PackedRowBlock = 32

// PackedF32 is a float32 matrix repacked into column panels for
// MatMulF32PackedInto. Unlike PackedI8 (packed once at model-compile
// time), a PackedF32 is a reusable buffer: PackB/PackBT overwrite it in
// place, growing storage only when the shape outgrows it, so per-call
// packing is allocation-free at steady state. A packed matrix must not
// be repacked while a GEMM is reading it.
type PackedF32 struct {
	k, n   int
	pw     int // panel width: f32PanelCols, or f32PanelColsNarrow for small n
	panels int // column panels: ceil(n/pw)
	data   []float32
}

// Rows returns the packed matrix's k (inner) dimension.
func (p *PackedF32) Rows() int { return p.k }

// Cols returns the packed matrix's n (output) dimension.
func (p *PackedF32) Cols() int { return p.n }

// PanelWidth returns the column-panel width the pack chose (16, or 8
// for narrow matrices), which selects the micro-kernel pair the GEMM
// runs.
func (p *PackedF32) PanelWidth() int { return p.pw }

// SizeBytes returns the packed storage footprint.
func (p *PackedF32) SizeBytes() int { return 4 * len(p.data) }

// PackF32PanelsB packs a row-major (k, n) matrix into fresh column
// panels.
func PackF32PanelsB(b []float32, k, n int) (*PackedF32, error) {
	p := &PackedF32{}
	if err := p.PackB(b, k, n); err != nil {
		return nil, err
	}
	return p, nil
}

// PackF32PanelsBT packs the transpose of a row-major (n, k) matrix — the
// natural orientation of weight tensors — into fresh column panels:
// PackF32PanelsBT(w, k, n) packs B = wᵀ.
func PackF32PanelsBT(bt []float32, k, n int) (*PackedF32, error) {
	p := &PackedF32{}
	if err := p.PackBT(bt, k, n); err != nil {
		return nil, err
	}
	return p, nil
}

// PackB repacks a row-major (k, n) matrix into p, reusing p's storage.
func (p *PackedF32) PackB(b []float32, k, n int) error {
	if err := checkPackF32("packB", len(b), k, n); err != nil {
		return err
	}
	p.reset(k, n)
	if maxWorkers == 1 {
		for pi := 0; pi < p.panels; pi++ {
			p.packPanelB(b, pi)
		}
		return nil
	}
	ParallelFor(p.panels, func(pi int) { p.packPanelB(b, pi) })
	return nil
}

// PackBT repacks the transpose of a row-major (n, k) matrix into p,
// reusing p's storage: B = btᵀ.
func (p *PackedF32) PackBT(bt []float32, k, n int) error {
	if err := checkPackF32("packBT", len(bt), k, n); err != nil {
		return err
	}
	p.reset(k, n)
	if maxWorkers == 1 {
		for pi := 0; pi < p.panels; pi++ {
			p.packPanelBT(bt, pi)
		}
		return nil
	}
	ParallelFor(p.panels, func(pi int) { p.packPanelBT(bt, pi) })
	return nil
}

func checkPackF32(op string, lenB, k, n int) error {
	if k <= 0 || n <= 0 {
		return fmt.Errorf("%w: %s dims (%d,%d) must be positive", ErrShape, op, k, n)
	}
	if lenB < k*n {
		return fmt.Errorf("%w: %s operand has %d elements, want >= %d", ErrShape, op, lenB, k*n)
	}
	return nil
}

func (p *PackedF32) reset(k, n int) {
	p.k, p.n = k, n
	p.pw = f32PanelCols
	if n < f32NarrowPanelMaxN {
		p.pw = f32PanelColsNarrow
	}
	p.panels = (n + p.pw - 1) / p.pw
	need := p.panels * k * p.pw
	if cap(p.data) < need {
		p.data = make([]float32, need)
	}
	p.data = p.data[:need]
}

// packPanelB fills panel pi from a row-major (k, n) source: contiguous
// pw-float copies per k row, the rightmost panel zero-padded.
func (p *PackedF32) packPanelB(b []float32, pi int) {
	pw := p.pw
	j0 := pi * pw
	nr := min(pw, p.n-j0)
	dst := p.data[pi*p.k*pw : (pi+1)*p.k*pw]
	if nr == pw {
		for q := 0; q < p.k; q++ {
			copy(dst[q*pw:q*pw+pw], b[q*p.n+j0:q*p.n+j0+pw])
		}
		return
	}
	for q := 0; q < p.k; q++ {
		seg := dst[q*pw : (q+1)*pw]
		copy(seg, b[q*p.n+j0:q*p.n+j0+nr])
		for j := nr; j < pw; j++ {
			seg[j] = 0
		}
	}
}

// packPanelBT fills panel pi from the transposed (n, k) source: each
// source row is one panel column, read contiguously and scattered at
// stride pw.
func (p *PackedF32) packPanelBT(bt []float32, pi int) {
	pw := p.pw
	j0 := pi * pw
	nr := min(pw, p.n-j0)
	dst := p.data[pi*p.k*pw : (pi+1)*p.k*pw]
	if nr < pw {
		for i := range dst {
			dst[i] = 0
		}
	}
	for jj := 0; jj < nr; jj++ {
		src := bt[(j0+jj)*p.k : (j0+jj+1)*p.k]
		for q, v := range src {
			dst[q*pw+jj] = v
		}
	}
}

// Micro-kernel dispatch (see kernels.go for the portable definitions and
// kernels_amd64.go for the FMA assembly repointing). Each kernel pair
// computes full panels of one width; a addresses row r, tap q at
// a[r*ars + q*aks], which lets one kernel serve the normal (ars=lda,
// aks=1) and transposed-A (ars=1, aks=lda) orientations.
var (
	f32Panel4   = f32Panel4Go   // 4 rows × 16 cols (dst rows at ldd stride)
	f32Panel1   = f32Panel1Go   // 1 row × 16 cols (writes dst[0:16])
	f32Panel4w8 = f32Panel4x8Go // 4 rows × 8 cols (narrow panels)
	f32Panel1w8 = f32Panel1x8Go // 1 row × 8 cols (writes dst[0:8])
)

// MatMulF32PackedInto computes dst = a·b where a is a float32 (m, k)
// matrix with row stride lda ≥ k and b is a packed (k, n) matrix. dst is
// row-major (m, n), fully overwritten; it must not alias a or b's
// storage. Results are identical for any worker count.
func MatMulF32PackedInto(dst, a []float32, b *PackedF32, m, lda int) error {
	if m <= 0 {
		return fmt.Errorf("%w: matmulF32Packed m %d must be positive", ErrShape, m)
	}
	if lda < b.k {
		return fmt.Errorf("%w: matmulF32Packed row stride %d < k %d", ErrShape, lda, b.k)
	}
	if need := (m-1)*lda + b.k; len(a) < need {
		return fmt.Errorf("%w: matmulF32Packed operand a has %d elements, want >= %d", ErrShape, len(a), need)
	}
	if len(dst) < m*b.n {
		return fmt.Errorf("%w: matmulF32Packed destination has %d elements, want >= %d", ErrShape, len(dst), m*b.n)
	}
	matMulF32PackedDriver(dst, a, b, m, lda, 1)
	return nil
}

// MatMulF32PackedTransAInto computes dst = aᵀ·b where a is a float32
// (k, m) matrix with row stride lda ≥ m and b is a packed (k, n)
// matrix — the weight-gradient orientation, consumed without
// materializing the transpose. dst is row-major (m, n), fully
// overwritten.
func MatMulF32PackedTransAInto(dst, a []float32, b *PackedF32, m, lda int) error {
	if m <= 0 {
		return fmt.Errorf("%w: matmulF32PackedTA m %d must be positive", ErrShape, m)
	}
	if lda < m {
		return fmt.Errorf("%w: matmulF32PackedTA row stride %d < m %d", ErrShape, lda, m)
	}
	if need := (b.k-1)*lda + m; len(a) < need {
		return fmt.Errorf("%w: matmulF32PackedTA operand a has %d elements, want >= %d", ErrShape, len(a), need)
	}
	if len(dst) < m*b.n {
		return fmt.Errorf("%w: matmulF32PackedTA destination has %d elements, want >= %d", ErrShape, len(dst), m*b.n)
	}
	matMulF32PackedDriver(dst, a, b, m, 1, lda)
	return nil
}

// matMulF32PackedDriver tiles the packed GEMM over (row block × panel)
// tasks on the worker pool; dst row stride is b.n. Each output element
// is written by exactly one task with a fixed k order, so results are
// bit-identical across worker counts.
func matMulF32PackedDriver(dst, a []float32, b *PackedF32, m, ars, aks int) {
	mb := blocks(m, f32PackedRowBlock)
	if maxWorkers == 1 {
		for t := 0; t < mb*b.panels; t++ {
			f32PackedTile(dst, a, b, m, ars, aks, t)
		}
		return
	}
	ParallelFor(mb*b.panels, func(t int) { f32PackedTile(dst, a, b, m, ars, aks, t) })
}

// f32PackedTile computes one (row block × panel) output tile: groups of
// four rows through the register-blocked 4-row kernel of the pack's
// panel width, remainder rows through the matching one-row kernel,
// partial right-edge panels through the portable edge kernel.
func f32PackedTile(dst, a []float32, b *PackedF32, m, ars, aks, t int) {
	ib, pi := t/b.panels, t%b.panels
	i0 := ib * f32PackedRowBlock
	mr := min(f32PackedRowBlock, m-i0)
	pw := b.pw
	j0 := pi * pw
	nr := min(pw, b.n-j0)
	panel := b.data[pi*b.k*pw : (pi+1)*b.k*pw]
	if nr < pw {
		f32PanelEdgeGo(dst[i0*b.n+j0:], a[i0*ars:], panel, mr, b.k, ars, aks, b.n, pw, nr)
		return
	}
	kern4, kern1 := f32Panel4, f32Panel1
	if pw == f32PanelColsNarrow {
		kern4, kern1 = f32Panel4w8, f32Panel1w8
	}
	m4 := mr &^ 3
	if m4 > 0 {
		kern4(dst[i0*b.n+j0:], a[i0*ars:], panel, m4, b.k, ars, aks, b.n)
	}
	for i := m4; i < mr; i++ {
		kern1(dst[(i0+i)*b.n+j0:], a[(i0+i)*ars:], panel, b.k, aks)
	}
}

// f32PackPool recycles packed-B buffers for the routed MatMul entry
// points (matmul.go), so per-call packing costs no steady-state
// allocations there either.
var f32PackPool = sync.Pool{New: func() any { return new(PackedF32) }}

// f32PackMinM is the row threshold above which per-call B-packing pays
// for itself: the pack streams k·n floats once (~2 memory ops per
// element) while the packed kernel saves roughly one dst load+store and
// three quarters of the B loads per output element — with m rows
// sharing one pack, the crossover sits well below 8 rows on every shape
// benchmarked, and below it the AXPY/dot kernels are already close to
// load-port bound.
const f32PackMinM = 8

// PackWorthF32 reports whether the routed GEMMs should take the packed
// path for an (m, k, n) product. Products narrower than one narrow
// panel keep the direct kernels: below 8 columns every panel is a
// partial edge, so the packed path degenerates to the scalar edge
// kernel plus pack overhead, while the dot/AXPY paths are strongest
// exactly there. From 8 columns up the pack picks 8-wide panels (see
// reset), which keeps shapes like the first-layer weight gradient
// (n = kdim) register-blocked. Tiny-k products skip packing because
// the per-panel pack setup is not amortized.
func PackWorthF32(m, k, n int) bool {
	return m >= f32PackMinM && n >= f32PanelColsNarrow && k >= 4
}
