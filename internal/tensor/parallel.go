package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// maxWorkers bounds the parallel fan-out of ParallelFor. It is a variable
// (not a constant) so tests can force serial execution.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the parallel fan-out used by ParallelFor. Values
// below 1 are clamped to 1; 1 forces fully serial, deterministic-order
// execution. It returns the previous setting so callers can restore it.
// This is intended for tests and benchmarks; it is not synchronized with
// in-flight operations.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return prev
}

// MaxWorkers reports the current fan-out bound.
func MaxWorkers() int { return maxWorkers }

// ---------------------------------------------------------------------------
// Persistent worker pool.
//
// Tensor ops run ParallelFor on every call, so spawning goroutines per
// operation puts the scheduler on the hot path. Instead a fixed set of
// workers (GOMAXPROCS-1, started lazily on the first parallel operation)
// stays parked on a channel and picks up jobs as they are published.
//
// The submitting goroutine always participates in its own job: it publishes
// the job to idle workers with non-blocking sends and then drains chunks
// itself until the index space is exhausted. This has two consequences that
// make the pool safe by construction:
//
//   - No deadlock under nesting or pool exhaustion: even if every worker is
//     busy (or the pool is saturated by concurrent jobs), the caller alone
//     completes all chunks.
//   - Work distribution is dynamic (atomic chunk claiming), but each index
//     is executed exactly once, so results are independent of scheduling
//     for the independent-iteration contract ParallelFor requires.
// ---------------------------------------------------------------------------

// parJob is one ParallelFor/ParallelForWorker invocation flowing through
// the pool. Exactly one of fn and fnw is set.
type parJob struct {
	fn    func(int)
	fnw   func(int, int) // iteration body with a participant lane ordinal
	n     int64
	chunk int64
	next  atomic.Int64 // next unclaimed index
	left  atomic.Int64 // indices not yet completed
	lanes atomic.Int64 // next unclaimed lane ordinal (fnw jobs)
	done  chan struct{}
}

// run claims and executes chunks until the index space is exhausted. The
// last participant to finish closes done. For lane-carrying jobs each
// participant claims its lane ordinal only after securing its first
// chunk, so participants that arrive to an exhausted index space never
// consume a lane; at most workers run() invocations exist per job (one
// per published copy plus the caller), so ordinals stay below the
// fan-out bound the submitter sized its lane state for.
func (j *parJob) run() {
	lane := -1
	for {
		lo := j.next.Add(j.chunk) - j.chunk
		if lo >= j.n {
			return
		}
		hi := lo + j.chunk
		if hi > j.n {
			hi = j.n
		}
		if j.fnw != nil {
			if lane < 0 {
				lane = int(j.lanes.Add(1) - 1)
			}
			for i := lo; i < hi; i++ {
				j.fnw(int(i), lane)
			}
		} else {
			for i := lo; i < hi; i++ {
				j.fn(int(i))
			}
		}
		if j.left.Add(lo-hi) == 0 {
			close(j.done)
		}
	}
}

var (
	poolOnce sync.Once
	poolJobs chan *parJob
)

// startPool launches the persistent workers. One slot is left for the
// submitting goroutine, which always works on its own job.
func startPool() {
	workers := runtime.GOMAXPROCS(0) - 1
	if workers < 1 {
		workers = 1
	}
	poolJobs = make(chan *parJob, 4*workers)
	for i := 0; i < workers; i++ {
		go func() {
			for j := range poolJobs {
				j.run()
			}
		}()
	}
}

// ParallelFor runs fn(i) for i in [0, n) across the persistent worker pool,
// blocking until all iterations complete. Each index is processed exactly
// once, so for independent iterations the result is identical to a serial
// loop regardless of scheduling. fn must not panic; iterations must be
// independent. Nested calls are safe: the caller participates in its own
// job, so progress never depends on a free pool worker.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	submitJob(&parJob{fn: fn}, n, workers)
}

// ParallelForWorker runs fn(i, lane) for i in [0, n) across the worker
// pool, blocking until all iterations complete. lane is a dense ordinal
// in [0, MaxWorkers()) identifying the participating goroutine for the
// duration of the call: every iteration a participant executes sees the
// same lane, and no two concurrent participants share one. Callers use
// it to index per-participant scratch (e.g. the implicit-im2col gather
// buffers) without locking. Like ParallelFor, each index runs exactly
// once and iterations must be independent; unlike ParallelFor, results
// may depend on lane assignment only if the caller makes them (the
// tensor drivers never do — lanes select disjoint scratch, not data).
func ParallelForWorker(n int, fn func(i, lane int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i, 0)
		}
		return
	}
	submitJob(&parJob{fnw: fn}, n, workers)
}

// submitJob publishes a prepared job to up to workers-1 pool workers and
// participates until every index completes.
func submitJob(j *parJob, n, workers int) {
	poolOnce.Do(startPool)
	// Over-decompose by 4x for dynamic load balance without measurable
	// claiming overhead (one atomic add per chunk).
	chunk := int64(n) / int64(4*workers)
	if chunk < 1 {
		chunk = 1
	}
	j.n = int64(n)
	j.chunk = chunk
	j.done = make(chan struct{})
	j.left.Store(int64(n))
	// Enlist up to workers-1 helpers; if the queue is full the caller just
	// does a larger share itself.
offer:
	for i := 0; i < workers-1; i++ {
		select {
		case poolJobs <- j:
		default:
			break offer
		}
	}
	j.run()
	<-j.done
}
