package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the per-operation goroutine fan-out. It is a variable
// (not a constant) so tests can force serial execution.
var maxWorkers = runtime.NumCPU()

// SetMaxWorkers overrides the parallel fan-out used by ParallelFor. Values
// below 1 are clamped to 1. It returns the previous setting so callers can
// restore it. This is intended for tests and benchmarks; it is not
// synchronized with in-flight operations.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = 1
	}
	maxWorkers = n
	return prev
}

// ParallelFor runs fn(i) for i in [0, n) across up to maxWorkers
// goroutines, blocking until all iterations complete. Work is partitioned
// into contiguous chunks so each index is processed exactly once and
// results are independent of scheduling. fn must not panic; iterations must
// be independent.
func ParallelFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := maxWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
