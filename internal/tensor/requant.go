package tensor

import (
	"fmt"
	"math"
)

// Fused Q31 requantization: the integer serving engine's epilogue. A GEMM
// accumulator lowers onto the uint8 output grid through a fixed-point
// multiplier M ≈ m0·2^−rsh (m0 ∈ [0, 2^31), rsh ∈ [1, 62]); the fused
// kernel applies, per element,
//
//	v = sat32(acc + corr)                     // int64 add, saturate to int32
//	r = sat32((v·m0 + 1<<(rsh−1)) >> rsh)     // 64-bit product, arithmetic
//	                                          // shift, round half toward +∞
//	y = min(max(r+zp, lo), 255)               // zero point + activation clamp
//
// and stores y as one uint8. These semantics are pinned: every
// implementation — portable Go here, AVX2 and NEON assembly behind the
// SetSIMD dispatch — produces identical bytes for identical inputs,
// including the Q31 rounding ties and both saturation edges (the
// requantization is elementwise, so there is no accumulation-order
// freedom to lose). The int32 saturations match the hardware narrowing
// the vector kernels use (VPCMPGTQ blends on AVX2, SQXTN on NEON); they
// only engage for degenerate channels whose folded bias exploded the
// accumulator domain, and those saturate at the uint8 boundary anyway.
//
// Argument contract (checked; violations panic like an out-of-range slice
// index, since the epilogue runs inside parallel workers with no error
// path): m0 ∈ [0, 2^31) and rsh ∈ [1, 62] per channel, zp and lo in
// [0, 255]. corr is int64 because the folded bias−zero·Σw correction can
// exceed the int32 range before the saturating add.

// requantQ31One is the scalar reference for the pinned semantics above;
// the portable kernels apply it elementwise and the assembly kernels are
// fuzz-tested bit-identical against it.
func requantQ31One(acc int32, corr int64, m0, rsh, zp, lo int32) uint8 {
	v := int64(acc) + corr
	if v > math.MaxInt32 {
		v = math.MaxInt32
	} else if v < math.MinInt32 {
		v = math.MinInt32
	}
	r := (v*int64(m0) + 1<<(uint(rsh)-1)) >> uint(rsh)
	if r > math.MaxInt32 {
		r = math.MaxInt32
	} else if r < math.MinInt32 {
		r = math.MinInt32
	}
	y := r + int64(zp)
	if y < int64(lo) {
		y = int64(lo)
	}
	if y > 255 {
		y = 255
	}
	return uint8(y)
}

// Assembly requant kernels, repointed by the per-arch SIMD dispatch (nil
// where unavailable). Both process channel groups of four — one vector
// register of int64 lanes per group on both ISAs — with per-group
// parameters hoisted out of the row/position loop:
//
//   - requantRowsAsm covers m rows × nc4 channels of a row-major
//     accumulator (stride lda int32s) into a row-major uint8 destination
//     (stride ldd bytes); nc4 is a positive multiple of 4.
//   - requantTransAsm covers np8 positions × nc4 channels of a
//     position-major accumulator into a channel-major destination
//     (dst[c·ldd+p]), transposing 8×4 byte tiles in registers; np8 is a
//     positive multiple of 8.
//
// Remainder channels and positions always take the scalar reference.
var (
	requantRowsAsm  func(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, m, nc4, lda, ldd int)
	requantTransAsm func(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, np8, nc4, lda, ldd int)
)

func checkRequantParams(m0, rsh []int32, corr []int64, zp, lo int32, nc int) {
	if len(m0) < nc || len(rsh) < nc || len(corr) < nc {
		panic(fmt.Sprintf("tensor: requantQ31 params cover %d/%d/%d channels, want >= %d",
			len(m0), len(rsh), len(corr), nc))
	}
	if zp < 0 || zp > 255 || lo < 0 || lo > 255 {
		panic(fmt.Sprintf("tensor: requantQ31 zero point %d / floor %d outside [0, 255]", zp, lo))
	}
	for c := 0; c < nc; c++ {
		if m0[c] < 0 {
			panic(fmt.Sprintf("tensor: requantQ31 multiplier m0[%d] = %d negative", c, m0[c]))
		}
		if rsh[c] < 1 || rsh[c] > 62 {
			panic(fmt.Sprintf("tensor: requantQ31 shift rsh[%d] = %d outside [1, 62]", c, rsh[c]))
		}
	}
}

// RequantQ31Rows requantizes a row-major (m, nc) int32 accumulator (row
// stride lda ≥ nc) into a row-major uint8 destination (row stride
// ldd ≥ nc) with per-channel multipliers: the linear-layer epilogue
// shape, rows are samples and columns output features.
func RequantQ31Rows(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, m, nc, lda, ldd int) {
	if m <= 0 || nc <= 0 {
		panic(fmt.Sprintf("tensor: requantQ31Rows dims (%d,%d) must be positive", m, nc))
	}
	if lda < nc || ldd < nc {
		panic(fmt.Sprintf("tensor: requantQ31Rows strides (%d,%d) < nc %d", lda, ldd, nc))
	}
	if need := (m-1)*lda + nc; len(acc) < need {
		panic(fmt.Sprintf("tensor: requantQ31Rows accumulator has %d elements, want >= %d", len(acc), need))
	}
	if need := (m-1)*ldd + nc; len(dst) < need {
		panic(fmt.Sprintf("tensor: requantQ31Rows destination has %d elements, want >= %d", len(dst), need))
	}
	checkRequantParams(m0, rsh, corr, zp, lo, nc)
	nc4 := nc &^ 3
	if nc4 > 0 {
		if f := requantRowsAsm; f != nil {
			f(dst, acc, m0, rsh, corr, zp, lo, m, nc4, lda, ldd)
		} else {
			requantRowsGo(dst, acc, m0, rsh, corr, zp, lo, m, nc4, lda, ldd)
		}
	}
	if nc4 == nc {
		return
	}
	for i := 0; i < m; i++ {
		arow := acc[i*lda:]
		drow := dst[i*ldd:]
		for c := nc4; c < nc; c++ {
			drow[c] = requantQ31One(arow[c], corr[c], m0[c], rsh[c], zp, lo)
		}
	}
}

// requantRowsGo is the portable mirror of the rows kernel (any traversal
// order is bit-identical: the map is elementwise).
func requantRowsGo(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, m, nc4, lda, ldd int) {
	for i := 0; i < m; i++ {
		arow := acc[i*lda : i*lda+nc4]
		drow := dst[i*ldd : i*ldd+nc4]
		for c, a := range arow {
			drow[c] = requantQ31One(a, corr[c], m0[c], rsh[c], zp, lo)
		}
	}
}

// RequantQ31Transpose requantizes a position-major (np, nc) int32
// accumulator (position stride lda ≥ nc) into a channel-major uint8
// destination — element (p, c) lands at dst[c·ldd+p] — with per-channel
// multipliers: the convolution epilogue shape, where the packed GEMM
// emits rows per output position but the NCHW output wants contiguous
// channel planes. The vector kernels requantize 8 positions × 4 channels
// at a time and transpose the byte tile in registers, so the destination
// is written in contiguous 8-byte runs.
func RequantQ31Transpose(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, np, nc, lda, ldd int) {
	if np <= 0 || nc <= 0 {
		panic(fmt.Sprintf("tensor: requantQ31Transpose dims (%d,%d) must be positive", np, nc))
	}
	if lda < nc || ldd < np {
		panic(fmt.Sprintf("tensor: requantQ31Transpose strides (%d,%d) < (nc %d, np %d)", lda, ldd, nc, np))
	}
	if need := (np-1)*lda + nc; len(acc) < need {
		panic(fmt.Sprintf("tensor: requantQ31Transpose accumulator has %d elements, want >= %d", len(acc), need))
	}
	if need := (nc-1)*ldd + np; len(dst) < need {
		panic(fmt.Sprintf("tensor: requantQ31Transpose destination has %d elements, want >= %d", len(dst), need))
	}
	checkRequantParams(m0, rsh, corr, zp, lo, nc)
	np8, nc4 := np&^7, nc&^3
	if np8 > 0 && nc4 > 0 {
		if f := requantTransAsm; f != nil {
			f(dst, acc, m0, rsh, corr, zp, lo, np8, nc4, lda, ldd)
		} else {
			requantTransGo(dst, acc, m0, rsh, corr, zp, lo, np8, nc4, lda, ldd)
		}
	}
	// Channel remainder over the vectorized positions, then the position
	// remainder over every channel.
	for c := nc4; c < nc; c++ {
		row := dst[c*ldd:]
		corrc, m0c, rshc := corr[c], m0[c], rsh[c]
		for p := 0; p < np8; p++ {
			row[p] = requantQ31One(acc[p*lda+c], corrc, m0c, rshc, zp, lo)
		}
	}
	for c := 0; c < nc; c++ {
		row := dst[c*ldd:]
		corrc, m0c, rshc := corr[c], m0[c], rsh[c]
		for p := np8; p < np; p++ {
			row[p] = requantQ31One(acc[p*lda+c], corrc, m0c, rshc, zp, lo)
		}
	}
}

// requantTransGo is the portable mirror of the transposing kernel,
// walking channel-outer like the destination layout wants.
func requantTransGo(dst []uint8, acc []int32, m0, rsh []int32, corr []int64, zp, lo int32, np8, nc4, lda, ldd int) {
	for c := 0; c < nc4; c++ {
		row := dst[c*ldd : c*ldd+np8]
		src := acc[c:]
		corrc, m0c, rshc := corr[c], m0[c], rsh[c]
		for p := range row {
			row[p] = requantQ31One(src[p*lda], corrc, m0c, rshc, zp, lo)
		}
	}
}

// RequantQ31 requantizes n = len(dst) accumulators through one shared
// (per-tensor) multiplier. It reuses the per-channel kernels by treating
// the run as (n/4, 4) rows against broadcast parameters, so the vector
// path serves this form too.
func RequantQ31(dst []uint8, acc []int32, m0, rsh int32, corr int64, zp, lo int32) {
	n := len(dst)
	if len(acc) < n {
		panic(fmt.Sprintf("tensor: requantQ31 accumulator has %d elements, want >= %d", len(acc), n))
	}
	m0v := [4]int32{m0, m0, m0, m0}
	rshv := [4]int32{rsh, rsh, rsh, rsh}
	corrv := [4]int64{corr, corr, corr, corr}
	if rows := n / 4; rows > 0 {
		RequantQ31Rows(dst, acc, m0v[:], rshv[:], corrv[:], zp, lo, rows, 4, 4, 4)
	}
	if tail := n &^ 3; tail < n {
		checkRequantParams(m0v[:], rshv[:], corrv[:], zp, lo, 1)
		for i := tail; i < n; i++ {
			dst[i] = requantQ31One(acc[i], corr, m0, rsh, zp, lo)
		}
	}
}
