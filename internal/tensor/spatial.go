package tensor

import "fmt"

// Pad2D zero-pads a (C, H, W) image by p pixels on each spatial side.
func Pad2D(img *Tensor, p int) (*Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("%w: pad2d wants rank-3 image, got %v", ErrShape, img.shape)
	}
	if p < 0 {
		return nil, fmt.Errorf("%w: negative padding %d", ErrShape, p)
	}
	if p == 0 {
		return img.Clone(), nil
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	out := New(c, h+2*p, w+2*p)
	ow := w + 2*p
	for ch := 0; ch < c; ch++ {
		for y := 0; y < h; y++ {
			srcOff := (ch*h + y) * w
			dstOff := (ch*(h+2*p)+y+p)*ow + p
			copy(out.data[dstOff:dstOff+w], img.data[srcOff:srcOff+w])
		}
	}
	return out, nil
}

// Crop2D extracts an (C, ch, cw) window whose top-left corner is (y, x)
// from a (C, H, W) image.
func Crop2D(img *Tensor, y, x, ch, cw int) (*Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("%w: crop2d wants rank-3 image, got %v", ErrShape, img.shape)
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	if y < 0 || x < 0 || ch <= 0 || cw <= 0 || y+ch > h || x+cw > w {
		return nil, fmt.Errorf("%w: crop (%d,%d,%d,%d) out of bounds for %v", ErrShape, y, x, ch, cw, img.shape)
	}
	out := New(c, ch, cw)
	for cc := 0; cc < c; cc++ {
		for yy := 0; yy < ch; yy++ {
			srcOff := (cc*h+y+yy)*w + x
			dstOff := (cc*ch + yy) * cw
			copy(out.data[dstOff:dstOff+cw], img.data[srcOff:srcOff+cw])
		}
	}
	return out, nil
}

// FlipH mirrors a (C, H, W) image horizontally, returning a new tensor.
func FlipH(img *Tensor) (*Tensor, error) {
	if img.Rank() != 3 {
		return nil, fmt.Errorf("%w: fliph wants rank-3 image, got %v", ErrShape, img.shape)
	}
	c, h, w := img.shape[0], img.shape[1], img.shape[2]
	out := New(c, h, w)
	for cc := 0; cc < c; cc++ {
		for y := 0; y < h; y++ {
			off := (cc*h + y) * w
			for x := 0; x < w; x++ {
				out.data[off+x] = img.data[off+w-1-x]
			}
		}
	}
	return out, nil
}
