package tensor

import (
	"fmt"
	"math/rand"
	"testing"
)

// naiveConvAccRef computes the position-major conv accumulator
// ((N·OH·OW, outC) int32) by direct tap enumeration: the ground truth
// both the materialized and the implicit drivers must match bit for bit.
// Out-of-bounds taps read the pad value (the activation zero point).
func naiveConvAccRef(src []uint8, n int, g ConvGeom, pad uint8, wt []int8, outC int) []int32 {
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	inSz := g.InC * g.InH * g.InW
	out := make([]int32, n*oh*ow*outC)
	for i := 0; i < n; i++ {
		img := src[i*inSz : (i+1)*inSz]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				row := out[((i*oh+oy)*ow+ox)*outC:][:outC]
				for oc := 0; oc < outC; oc++ {
					var s int32
					w := wt[oc*kdim:]
					p := 0
					for c := 0; c < g.InC; c++ {
						for kh := 0; kh < g.KH; kh++ {
							iy := oy*g.Stride + kh - g.Pad
							for kw := 0; kw < g.KW; kw++ {
								ix := ox*g.Stride + kw - g.Pad
								a := pad
								if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
									a = img[(c*g.InH+iy)*g.InW+ix]
								}
								s += int32(a) * int32(w[p])
								p++
							}
						}
					}
					row[oc] = s
				}
			}
		}
	}
	return out
}

// implicitWork allocates the gather lanes ConvU8I8ImplicitInto needs at
// the current worker bound, poisoned so stale bytes cannot pass as
// correct gathers.
func implicitWork(p *ConvPlanU8, tasks int) []uint8 {
	lanes := MaxWorkers()
	if lanes > tasks {
		lanes = tasks
	}
	w := make([]uint8, lanes*p.BandLen())
	for i := range w {
		w[i] = 0xA5
	}
	return w
}

// TestConvImplicitMatchesMaterializedAndNaive sweeps the kernel-size ×
// stride × pad × batch grid of the serving zoo and checks, per dispatch,
// that the implicit driver, the materialized im2col + packed GEMM and
// the naive tap enumeration produce the same accumulator bit for bit.
func TestConvImplicitMatchesMaterializedAndNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eachDispatch(t, func(t *testing.T) {
		for _, k := range []int{1, 3, 5} {
			for _, stride := range []int{1, 2} {
				for _, pad := range []int{0, 1, 2} {
					for _, n := range []int{1, 2, 5} {
						g := ConvGeom{InC: 3, InH: 9, InW: 11, KH: k, KW: k, Stride: stride, Pad: pad}
						if g.Validate() != nil {
							continue
						}
						name := fmt.Sprintf("k%d_s%d_p%d_n%d", k, stride, pad, n)
						t.Run(name, func(t *testing.T) {
							checkConvImplicit(t, rng, g, n, 6)
						})
					}
				}
			}
		}
	})
}

// TestConvImplicitBandBoundaries exercises geometries whose output-row
// count collides with the banding in awkward ways (single row, exact
// band multiple, one spare row) plus a wide-image case where the gather
// crosses the word-copy tail.
func TestConvImplicitBandBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	geoms := []ConvGeom{
		{InC: 1, InH: 1, InW: 40, KH: 1, KW: 3, Stride: 1, Pad: 1},
		{InC: 2, InH: 40, InW: 3, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 8, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 4, InH: 16, InW: 16, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 3, InH: 7, InW: 7, KH: 7, KW: 7, Stride: 1, Pad: 0},
		{InC: 16, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
	}
	eachDispatch(t, func(t *testing.T) {
		for _, g := range geoms {
			g := g
			t.Run(fmt.Sprintf("c%d_%dx%d_k%dx%d_s%d", g.InC, g.InH, g.InW, g.KH, g.KW, g.Stride), func(t *testing.T) {
				checkConvImplicit(t, rng, g, 3, 9)
			})
		}
	})
}

// TestConvImplicitFuzz drives random geometries through the three-way
// comparison, random zero points included.
func TestConvImplicitFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	eachDispatch(t, func(t *testing.T) {
		for trial := 0; trial < 40; trial++ {
			g := ConvGeom{
				InC:    1 + rng.Intn(5),
				InH:    1 + rng.Intn(14),
				InW:    1 + rng.Intn(14),
				KH:     1 + rng.Intn(5),
				KW:     1 + rng.Intn(5),
				Stride: 1 + rng.Intn(2),
				Pad:    rng.Intn(3),
			}
			if g.Validate() != nil {
				continue
			}
			checkConvImplicit(t, rng, g, 1+rng.Intn(4), 1+rng.Intn(16))
		}
	})
}

// checkConvImplicit runs one geometry through naive, materialized and
// implicit paths and requires bit-identical accumulators.
func checkConvImplicit(t *testing.T, rng *rand.Rand, g ConvGeom, n, outC int) {
	t.Helper()
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	inSz := g.InC * g.InH * g.InW
	src := make([]uint8, n*inSz)
	for i := range src {
		src[i] = uint8(rng.Intn(256))
	}
	wt := make([]int8, outC*kdim)
	for i := range wt {
		wt[i] = int8(rng.Intn(255) - 127)
	}
	pad := uint8(rng.Intn(256))
	packed, err := PackI8PanelsBT(wt, kdim, outC)
	if err != nil {
		t.Fatal(err)
	}
	want := naiveConvAccRef(src, n, g, pad, wt, outC)

	ns := n * oh * ow
	cols := make([]uint8, kdim*ns+3)
	if err := Im2ColBatchU8PatchesInto(cols[:kdim*ns], src, n, g, pad); err != nil {
		t.Fatal(err)
	}
	mat := make([]int32, ns*outC)
	if err := MatMulU8I8PackedInto(mat, cols, packed, ns, kdim); err != nil {
		t.Fatal(err)
	}

	plan, err := NewConvPlanU8(g)
	if err != nil {
		t.Fatal(err)
	}
	imp := make([]int32, ns*outC)
	work := implicitWork(plan, n*plan.Bands())
	if err := ConvU8I8ImplicitInto(imp, src, n, packed, plan, pad, work); err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if mat[i] != want[i] {
			t.Fatalf("%+v n=%d outC=%d: materialized[%d] = %d, naive %d", g, n, outC, i, mat[i], want[i])
		}
		if imp[i] != want[i] {
			t.Fatalf("%+v n=%d outC=%d: implicit[%d] = %d, naive %d", g, n, outC, i, imp[i], want[i])
		}
	}
}

// TestGatherBand3MatchesUnstaged pins the staged 3×3 band gather (the
// padded staging strip + branch-free compose, SIMD pack kernel
// included) byte-for-byte against the unstaged per-row packer on every
// band of every sample — including the spill contract of the 16-byte
// pack-kernel stores: a spilled byte that survives anywhere in the
// band's patch rows shows up as a mismatch here.
func TestGatherBand3MatchesUnstaged(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	geoms := []ConvGeom{
		{InC: 1, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 16, InW: 16, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 16, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 4, InH: 9, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 2},
		{InC: 2, InH: 11, InW: 11, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 5, InH: 7, InW: 9, KH: 3, KW: 3, Stride: 1, Pad: 0},
	}
	eachDispatch(t, func(t *testing.T) {
		for _, g := range geoms {
			g := g
			t.Run(fmt.Sprintf("c%d_%dx%d_s%d_p%d", g.InC, g.InH, g.InW, g.Stride, g.Pad), func(t *testing.T) {
				plan, err := NewConvPlanU8(g)
				if err != nil {
					t.Fatal(err)
				}
				if plan.stage == 0 {
					t.Fatal("3×3 plan did not enable the staged gather")
				}
				n := 2
				src := make([]uint8, n*g.InC*g.InH*g.InW)
				for i := range src {
					src[i] = uint8(rng.Intn(256))
				}
				pad := uint8(rng.Intn(256))
				kdim := plan.kdim
				rowLen := plan.ow * kdim
				buf := make([]uint8, plan.BandLen())
				want := make([]uint8, plan.brows*rowLen)
				for task := 0; task < n*plan.Bands(); task++ {
					for i := range buf {
						buf[i] = 0xA5 // stale lane bytes must not leak through
					}
					m := plan.GatherBandInto(buf, src, pad, task)
					i, oy0, oy1 := plan.bandSpan(task)
					img := src[i*g.InC*g.InH*g.InW:][:g.InC*g.InH*g.InW]
					for oy := oy0; oy < oy1; oy++ {
						im2colU8PatchRow(want[(oy-oy0)*rowLen:][:rowLen], img, g, pad, oy, plan.xlo, plan.xhi)
					}
					if m != (oy1-oy0)*plan.ow {
						t.Fatalf("task %d: m = %d, want %d", task, m, (oy1-oy0)*plan.ow)
					}
					for j := 0; j < m*kdim; j++ {
						if buf[j] != want[j] {
							t.Fatalf("task %d: staged byte %d = %d, unstaged %d", task, j, buf[j], want[j])
						}
					}
				}
			})
		}
	})
}

// TestConvImplicitDeterministicAcrossWorkers pins the bit-identity
// contract across worker counts: the implicit driver's banding and lane
// assignment must not leak into results.
func TestConvImplicitDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := ConvGeom{InC: 4, InH: 13, InW: 13, KH: 3, KW: 3, Stride: 1, Pad: 1}
	n, outC := 4, 10
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	src := make([]uint8, n*g.InC*g.InH*g.InW)
	for i := range src {
		src[i] = uint8(rng.Intn(256))
	}
	wt := make([]int8, outC*kdim)
	for i := range wt {
		wt[i] = int8(rng.Intn(255) - 127)
	}
	packed, err := PackI8PanelsBT(wt, kdim, outC)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewConvPlanU8(g)
	if err != nil {
		t.Fatal(err)
	}
	ns := n * oh * ow
	var ref []int32
	for _, workers := range []int{1, 2, 3, 8} {
		prev := SetMaxWorkers(workers)
		acc := make([]int32, ns*outC)
		work := implicitWork(plan, n*plan.Bands())
		err := ConvU8I8ImplicitInto(acc, src, n, packed, plan, 128, work)
		SetMaxWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = acc
			continue
		}
		for i := range ref {
			if acc[i] != ref[i] {
				t.Fatalf("workers=%d: acc[%d] = %d, want %d", workers, i, acc[i], ref[i])
			}
		}
	}
}

// TestConvImplicitErrors covers the driver's validation surface.
func TestConvImplicitErrors(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, Stride: 1, Pad: 1}
	plan, err := NewConvPlanU8(g)
	if err != nil {
		t.Fatal(err)
	}
	kdim := g.InC * g.KH * g.KW
	packed, err := PackI8PanelsBT(make([]int8, 4*kdim), kdim, 4)
	if err != nil {
		t.Fatal(err)
	}
	oh, ow := g.OutHW()
	src := make([]uint8, 2*g.InC*g.InH*g.InW)
	acc := make([]int32, 2*oh*ow*4)
	work := implicitWork(plan, 2*plan.Bands())

	if err := ConvU8I8ImplicitInto(acc, src, 0, packed, plan, 0, work); err == nil {
		t.Error("zero batch did not error")
	}
	if err := ConvU8I8ImplicitInto(acc, src[:5], 2, packed, plan, 0, work); err == nil {
		t.Error("short src did not error")
	}
	if err := ConvU8I8ImplicitInto(acc[:5], src, 2, packed, plan, 0, work); err == nil {
		t.Error("short acc did not error")
	}
	if err := ConvU8I8ImplicitInto(acc, src, 2, packed, plan, 0, work[:2]); err == nil {
		t.Error("short work did not error")
	}
	wrongK, err := PackI8PanelsBT(make([]int8, 4*(kdim+1)), kdim+1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ConvU8I8ImplicitInto(acc, src, 2, wrongK, plan, 0, work); err == nil {
		t.Error("mismatched packed k did not error")
	}
	if _, err := NewConvPlanU8(ConvGeom{InC: 1, InH: 2, InW: 2, KH: 5, KW: 5, Stride: 1, Pad: 0}); err == nil {
		t.Error("degenerate geometry did not error")
	}
}

// TestConvImplicitSerialPathAllocs pins the zero-allocation contract of
// the serial driver: plan, packed weights and work lanes are built once;
// the per-call path allocates nothing.
func TestConvImplicitSerialPathAllocs(t *testing.T) {
	g := ConvGeom{InC: 4, InH: 12, InW: 12, KH: 3, KW: 3, Stride: 1, Pad: 1}
	n, outC := 2, 8
	oh, ow := g.OutHW()
	kdim := g.InC * g.KH * g.KW
	src := make([]uint8, n*g.InC*g.InH*g.InW)
	wt := make([]int8, outC*kdim)
	for i := range wt {
		wt[i] = int8(i%13 - 6)
	}
	packed, err := PackI8PanelsBT(wt, kdim, outC)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewConvPlanU8(g)
	if err != nil {
		t.Fatal(err)
	}
	acc := make([]int32, n*oh*ow*outC)
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	work := implicitWork(plan, n*plan.Bands())
	allocs := testing.AllocsPerRun(20, func() {
		if err := ConvU8I8ImplicitInto(acc, src, n, packed, plan, 7, work); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("serial implicit conv allocates %v objects per call, want 0", allocs)
	}
}
