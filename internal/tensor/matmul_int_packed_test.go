package tensor

import (
	"fmt"
	"testing"
)

// naivePackedRef computes dst = a·b for a uint8 (m,k) with row stride lda
// and b int8 given as its transpose bt (n,k) — the reference for the
// packed GEMM.
func naivePackedRef(a []uint8, lda int, bt []int8, m, k, n int) []int32 {
	out := make([]int32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s int32
			for p := 0; p < k; p++ {
				s += int32(a[i*lda+p]) * int32(bt[j*k+p])
			}
			out[i*n+j] = s
		}
	}
	return out
}

// padForQuads returns a with the 3 spare bytes the packed kernels may
// read past the final row's k values (filled with a poison value: the
// kernels must multiply them by zero weights only).
func padForQuads(a []uint8) []uint8 {
	return append(a, 0xA5, 0xA5, 0xA5)
}

// eachDispatch runs the test body once per reachable kernel dispatch. On
// hosts without SIMD kernels (or under APT_NOSIMD) only the portable path
// runs.
func eachDispatch(t *testing.T, body func(t *testing.T)) {
	t.Helper()
	modes := []bool{false}
	if SIMDFeatures() != "" {
		modes = append(modes, true)
	}
	for _, on := range modes {
		name := "portable"
		if on {
			name = "simd"
		}
		t.Run(name, func(t *testing.T) {
			prev := SetSIMD(on)
			defer SetSIMD(prev)
			if SIMDActive() != on {
				t.Fatalf("SetSIMD(%v): dispatch did not switch", on)
			}
			body(t)
		})
	}
}

func TestPackI8PanelsLayoutAndErrors(t *testing.T) {
	// 3 columns, k=5: padded to 2 quads × 1 panel.
	bt := []int8{ // (n=3, k=5)
		1, 2, 3, 4, 5,
		-1, -2, -3, -4, -5,
		10, 20, 30, 40, 50,
	}
	pb, err := PackI8PanelsBT(bt, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Rows() != 5 || pb.Cols() != 3 || pb.PaddedK() != 8 {
		t.Fatalf("pack geometry: rows %d cols %d paddedK %d", pb.Rows(), pb.Cols(), pb.PaddedK())
	}
	if pb.SizeBytes() != 2*32 {
		t.Fatalf("SizeBytes = %d, want 64", pb.SizeBytes())
	}
	// Quad 0, column 0 = bt row 0 taps k0..k3; column 3 is padding.
	want := []int8{1, 2, 3, 4}
	for tdx, w := range want {
		if pb.data[tdx] != w {
			t.Fatalf("panel[0][col0][%d] = %d, want %d", tdx, pb.data[tdx], w)
		}
	}
	for tdx := 0; tdx < 4; tdx++ {
		if pb.data[4*3+tdx] != 0 {
			t.Fatalf("padding column byte %d = %d, want 0", tdx, pb.data[4*3+tdx])
		}
	}
	// Quad 1 holds k4 plus three k-padding zeros.
	if pb.data[32] != 5 || pb.data[33] != 0 {
		t.Fatalf("quad 1 col 0 = [%d %d ...], want [5 0 ...]", pb.data[32], pb.data[33])
	}

	// The same matrix in row-major (k, n) form packs identically.
	b := make([]int8, 5*3)
	for j := 0; j < 3; j++ {
		for p := 0; p < 5; p++ {
			b[p*3+j] = bt[j*5+p]
		}
	}
	pb2, err := PackI8PanelsB(b, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pb.data {
		if pb.data[i] != pb2.data[i] {
			t.Fatalf("PackI8PanelsB and PackI8PanelsBT disagree at byte %d", i)
		}
	}

	if _, err := PackI8PanelsBT(bt[:4], 5, 3); err == nil {
		t.Error("short operand did not error")
	}
	if _, err := PackI8PanelsB(b, 0, 3); err == nil {
		t.Error("zero k did not error")
	}
}

func TestPackI8SaturationFlag(t *testing.T) {
	cases := []struct {
		name string
		bt   []int8
		k    int
		sat  bool
	}{
		// |64|+|64| = 128: the exact boundary, still safe.
		{"boundary-128", []int8{64, 64}, 2, false},
		{"over-129", []int8{64, 65}, 2, true},
		{"max-pair", []int8{127, 127}, 2, true},
		{"neg-pair", []int8{-127, -127}, 2, true},
		// A lone -128 pairs with implicit zero padding: |−128| = 128, safe.
		{"min-alone", []int8{-128}, 1, false},
		{"min-plus-one", []int8{-128, 1}, 2, true},
		// The hazard is per even-aligned pair: (127, 0, 0, 127) never puts
		// two big taps in one VPMADDUBSW pair.
		{"split-pairs", []int8{127, 0, 0, 127}, 4, false},
		// Odd k: last pair is (w, padding-zero).
		{"odd-tail", []int8{0, 0, 127}, 3, false},
	}
	for _, c := range cases {
		pb, err := PackI8PanelsBT(c.bt, c.k, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if pb.Saturating() != c.sat {
			t.Errorf("%s: Saturating() = %v, want %v", c.name, pb.Saturating(), c.sat)
		}
	}
}

func TestMatMulU8I8PackedMatchesNaive(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(51)
		// Shapes straddle quad, panel and row-block boundaries; lda > k
		// exercises strided operand rows.
		shapes := []struct{ m, k, n, lda int }{
			{1, 1, 1, 1}, {3, 5, 3, 5}, {8, 16, 8, 16}, {9, 27, 8, 27},
			{17, 30, 20, 33}, {64, 144, 32, 144}, {5, 7, 9, 11}, {2, 4, 17, 4},
		}
		for _, s := range shapes {
			a := padForQuads(randU8(rng, s.m*s.lda))
			bt := randI8(rng, s.n*s.k)
			pb, err := PackI8PanelsBT(bt, s.k, s.n)
			if err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			want := naivePackedRef(a, s.lda, bt, s.m, s.k, s.n)
			got := make([]int32, s.m*s.n)
			if err := MatMulU8I8PackedInto(got, a, pb, s.m, s.lda); err != nil {
				t.Fatalf("%+v: %v", s, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%+v: got[%d] = %d, want %d", s, i, got[i], want[i])
				}
			}
		}
	})
}

// TestPackedSaturationAdversarial drives the worst-case operands through
// the packed GEMM: all-255 activations against ±127 weight pairs, which
// overflow the saturating int16 kernel by design and must be routed to
// the exact path. Every dispatch mode must produce the exact int32
// result.
func TestPackedSaturationAdversarial(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		const m, k, n = 9, 32, 16
		a := make([]uint8, m*k)
		for i := range a {
			a[i] = 255
		}
		a = padForQuads(a)
		patterns := [][2]int8{{127, 127}, {-127, -127}, {127, -127}, {-128, 127}}
		for _, pat := range patterns {
			bt := make([]int8, n*k)
			for j := 0; j < n; j++ {
				for p := 0; p < k; p += 2 {
					bt[j*k+p] = pat[0]
					bt[j*k+p+1] = pat[1]
				}
			}
			pb, err := PackI8PanelsBT(bt, k, n)
			if err != nil {
				t.Fatal(err)
			}
			if !pb.Saturating() {
				t.Fatalf("pattern %v: pack did not flag the saturation hazard", pat)
			}
			want := naivePackedRef(a, k, bt, m, k, n)
			got := make([]int32, m*n)
			if err := MatMulU8I8PackedInto(got, a, pb, m, k); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("pattern %v: got[%d] = %d, want %d (saturation leaked)", pat, i, got[i], want[i])
				}
			}
		}
	})
}

// TestPackedFastPathStaysExact pins weights below the saturation bound so
// the fast VPMADDUBSW kernel is eligible, and checks exactness against
// the naive reference — including all-255 activations at the |w₀|+|w₁| =
// 128 boundary.
func TestPackedFastPathStaysExact(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		const m, k, n = 11, 40, 24
		a := make([]uint8, m*k)
		for i := range a {
			a[i] = 255
		}
		a = padForQuads(a)
		bt := make([]int8, n*k)
		for j := 0; j < n; j++ {
			for p := 0; p < k; p += 2 {
				bt[j*k+p] = 64
				bt[j*k+p+1] = -64
			}
		}
		pb, err := PackI8PanelsBT(bt, k, n)
		if err != nil {
			t.Fatal(err)
		}
		if pb.Saturating() {
			t.Fatal("boundary weights must stay on the fast kernel")
		}
		want := naivePackedRef(a, k, bt, m, k, n)
		got := make([]int32, m*n)
		if err := MatMulU8I8PackedInto(got, a, pb, m, k); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("got[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

// TestPackedFuzzAgainstNaive hammers random shapes and full-range random
// operands through every dispatch; whatever kernel the pack routes to
// must be exact.
func TestPackedFuzzAgainstNaive(t *testing.T) {
	eachDispatch(t, func(t *testing.T) {
		rng := NewRNG(52)
		for trial := 0; trial < 60; trial++ {
			m := 1 + rng.Intn(20)
			k := 1 + rng.Intn(70)
			n := 1 + rng.Intn(40)
			lda := k + rng.Intn(5)
			a := padForQuads(randU8(rng, m*lda))
			bt := randI8(rng, n*k)
			if trial%3 == 0 {
				// Keep a third of the trials saturation-free so the fuzz
				// also covers the fast kernel, not just the widening route.
				for i := range bt {
					bt[i] = int8(rng.Intn(129) - 64)
				}
			}
			pb, err := PackI8PanelsBT(bt, k, n)
			if err != nil {
				t.Fatal(err)
			}
			want := naivePackedRef(a, lda, bt, m, k, n)
			got := make([]int32, m*n)
			if err := MatMulU8I8PackedInto(got, a, pb, m, lda); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d (m=%d k=%d n=%d lda=%d sat=%v): got[%d] = %d, want %d",
						trial, m, k, n, lda, pb.Saturating(), i, got[i], want[i])
				}
			}
		}
	})
}

func TestPackedDeterministicAcrossWorkers(t *testing.T) {
	rng := NewRNG(53)
	m, k, n := 37, 60, 26
	a := padForQuads(randU8(rng, m*k))
	bt := randI8(rng, n*k)
	pb, err := PackI8PanelsBT(bt, k, n)
	if err != nil {
		t.Fatal(err)
	}
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	serial := make([]int32, m*n)
	if err := MatMulU8I8PackedInto(serial, a, pb, m, k); err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		SetMaxWorkers(w)
		got := make([]int32, m*n)
		if err := MatMulU8I8PackedInto(got, a, pb, m, k); err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, got[i], serial[i])
			}
		}
	}
}

func TestMatMulU8I8PackedErrors(t *testing.T) {
	bt := make([]int8, 2*5)
	pb, err := PackI8PanelsBT(bt, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := make([]uint8, 3*5)
	dst := make([]int32, 3*2)
	// k=5 pads to 8, so a plain m×k operand is 3 bytes short.
	if err := MatMulU8I8PackedInto(dst, a, pb, 3, 5); err == nil {
		t.Error("unpadded operand did not error")
	}
	if err := MatMulU8I8PackedInto(dst, padForQuads(a), pb, 3, 4); err == nil {
		t.Error("lda < k did not error")
	}
	if err := MatMulU8I8PackedInto(dst[:5], padForQuads(a), pb, 3, 5); err == nil {
		t.Error("short destination did not error")
	}
	if err := MatMulU8I8PackedInto(dst, padForQuads(a), pb, 0, 5); err == nil {
		t.Error("zero m did not error")
	}
}

// TestIm2ColBatchU8PatchesMatchesColumnMajor checks the patch-major
// packer against the established column-major one: dst_patches is exactly
// the transpose of dst_cols.
func TestIm2ColBatchU8PatchesMatchesColumnMajor(t *testing.T) {
	geoms := []ConvGeom{
		{InC: 2, InH: 6, InW: 6, KH: 3, KW: 3, Stride: 1, Pad: 1},
		{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 2, Pad: 1},
		{InC: 1, InH: 5, InW: 7, KH: 5, KW: 5, Stride: 1, Pad: 2},
		{InC: 2, InH: 4, InW: 4, KH: 1, KW: 1, Stride: 2, Pad: 0},
		// Kernel wider than InW+Pad: the interior column range is empty
		// and every position is an edge (regression: the hoisted-range
		// packer once sliced at a negative offset here).
		{InC: 1, InH: 2, InW: 2, KH: 7, KW: 7, Stride: 1, Pad: 3},
		{InC: 2, InH: 3, InW: 3, KH: 4, KW: 4, Stride: 2, Pad: 1},
		// Negative interior numerator with Pad 0 / small Pad: Go's
		// toward-zero division would round (InW−KW+Pad)/Stride up to 0
		// and let the fast path read past the source row (regression).
		{InC: 1, InH: 2, InW: 2, KH: 1, KW: 3, Stride: 2, Pad: 0},
		{InC: 1, InH: 4, InW: 3, KH: 2, KW: 6, Stride: 1, Pad: 2},
		// Minimal 3×3/stride-1/pad-1 width: the specialized border path
		// fires with an empty interior (xlo=1, xhi=ow−2=0), so the two
		// border columns are the whole row.
		{InC: 2, InH: 3, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1},
	}
	rng := NewRNG(54)
	const n = 3
	const pad = uint8(11)
	for _, g := range geoms {
		inSz := g.InC * g.InH * g.InW
		src := randU8(rng, n*inSz)
		oh, ow := g.OutHW()
		kdim := g.InC * g.KH * g.KW
		ns := n * oh * ow
		cols := make([]uint8, kdim*ns)
		if err := Im2ColBatchU8Into(cols, src, n, g, pad); err != nil {
			t.Fatalf("Im2ColBatchU8Into(%+v): %v", g, err)
		}
		patches := make([]uint8, ns*kdim)
		if err := Im2ColBatchU8PatchesInto(patches, src, n, g, pad); err != nil {
			t.Fatalf("Im2ColBatchU8PatchesInto(%+v): %v", g, err)
		}
		for r := 0; r < ns; r++ {
			for c := 0; c < kdim; c++ {
				if patches[r*kdim+c] != cols[c*ns+r] {
					t.Fatalf("geom %+v: patches[%d][%d] = %d, want %d",
						g, r, c, patches[r*kdim+c], cols[c*ns+r])
				}
			}
		}
	}
}

func TestIm2ColBatchU8PatchesErrors(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 4, InW: 4, KH: 3, KW: 3, Stride: 1, Pad: 1}
	src := make([]uint8, 16)
	dst := make([]uint8, 16*9)
	if err := Im2ColBatchU8PatchesInto(dst, src, 2, g, 0); err == nil {
		t.Error("short src did not error")
	}
	if err := Im2ColBatchU8PatchesInto(dst[:3], src, 1, g, 0); err == nil {
		t.Error("short dst did not error")
	}
	if err := Im2ColBatchU8PatchesInto(dst, src, 0, g, 0); err == nil {
		t.Error("zero batch did not error")
	}
}

// TestPackedSerialPathAllocs pins the zero-allocation contract of the
// serial packed GEMM — the inference engine's steady state counts on it.
func TestPackedSerialPathAllocs(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	rng := NewRNG(55)
	m, k, n := 32, 64, 16
	a := padForQuads(randU8(rng, m*k))
	bt := randI8(rng, n*k)
	pb, err := PackI8PanelsBT(bt, k, n)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]int32, m*n)
	allocs := testing.AllocsPerRun(20, func() {
		if err := MatMulU8I8PackedInto(dst, a, pb, m, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial packed GEMM allocates %v objects/op, want 0", allocs)
	}
}

func ExamplePackI8PanelsBT() {
	// Two output columns of three weights each, in the (n, k) layout
	// weight tensors use; activations with row stride 4 > k exercise the
	// strided-operand form.
	w := []int8{1, 2, 3, -1, -2, -3}
	pb, _ := PackI8PanelsBT(w, 3, 2)
	a := []uint8{1, 1, 1, 0, 2, 2, 2, 0, 0, 0, 0} // 2 rows, lda 4, +3 pad
	dst := make([]int32, 2*2)
	_ = MatMulU8I8PackedInto(dst, a, pb, 2, 4)
	fmt.Println(dst, pb.Saturating())
	// Output: [6 -6 12 -12] false
}
