// Package data provides the synthetic stand-in for CIFAR-10/CIFAR-100 plus
// the paper's augmentation pipeline and a deterministic mini-batch loader.
//
// The real CIFAR archives are not available in this offline environment, so
// SynthCIFAR generates a procedural multi-class image-classification task
// with the same tensor geometry (3×32×32 by default, 10 or 100 classes):
// each class is defined by a deterministic texture prototype — a mixture of
// oriented sinusoidal gratings, a colour field and soft blobs — and each
// sample perturbs the prototype with instance-level jitter (phase shifts,
// blob displacement, amplitude scaling) plus pixel noise. The task is
// learnable but non-trivial: classes overlap in pixel space and separating
// them requires the convolutional features to pick up orientation and
// colour statistics, which produces the gradient dynamics (plateaus,
// per-layer heterogeneity) that drive APT. See DESIGN.md §1 for the
// substitution rationale.
package data

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Dataset is a finite supervised image-classification dataset.
type Dataset interface {
	// Len returns the number of samples.
	Len() int
	// Sample returns the i-th image as a (C, H, W) tensor and its label.
	// Implementations may return a shared or freshly-allocated tensor;
	// callers must not mutate it.
	Sample(i int) (*tensor.Tensor, int)
	// NumClasses returns the number of distinct labels.
	NumClasses() int
}

// SynthConfig configures NewSynth.
type SynthConfig struct {
	Classes  int    // number of classes (10 for SynthCIFAR-10, 100 for -100)
	Train    int    // number of training samples
	Test     int    // number of test samples
	Size     int    // spatial size (CIFAR: 32)
	Channels int    // colour channels (CIFAR: 3)
	Seed     uint64 // master seed; all content derives from it
	// Noise is the per-pixel Gaussian noise std in [0,1] image units.
	// Higher values make the task harder. Default 0.25.
	Noise float64
}

func (c *SynthConfig) fill() {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.Size == 0 {
		c.Size = 32
	}
	if c.Channels == 0 {
		c.Channels = 3
	}
	if c.Noise == 0 {
		c.Noise = 0.25
	}
}

// grating is one oriented sinusoid component of a class prototype.
type grating struct {
	fx, fy float64    // spatial frequency components
	phase  float64    // base phase
	amp    [3]float64 // per-channel amplitude (first Channels used)
}

// blob is one soft Gaussian bump of a class prototype.
type blob struct {
	cx, cy float64    // centre in [0,1] image coordinates
	sigma  float64    // radius
	amp    [3]float64 // per-channel amplitude
}

// classProto is the deterministic generative description of one class.
type classProto struct {
	gratings []grating
	blobs    []blob
	base     [3]float64 // per-channel DC colour
}

// Synth is the procedural SynthCIFAR dataset. It pre-generates the full
// train and test splits at construction so sampling is cheap and the
// loader stays deterministic.
type Synth struct {
	cfg    SynthConfig
	images []*tensor.Tensor
	labels []int
}

// NewSynth generates both splits and returns them as two datasets sharing
// one generative model. An error is returned for non-positive sizes.
func NewSynth(cfg SynthConfig) (train, test *Synth, err error) {
	cfg.fill()
	if cfg.Train <= 0 || cfg.Test <= 0 {
		return nil, nil, fmt.Errorf("data: non-positive split sizes train=%d test=%d", cfg.Train, cfg.Test)
	}
	if cfg.Classes < 2 {
		return nil, nil, fmt.Errorf("data: need at least 2 classes, got %d", cfg.Classes)
	}
	rng := tensor.NewRNG(cfg.Seed)
	protos := make([]classProto, cfg.Classes)
	for c := range protos {
		protos[c] = makeProto(rng.Split())
	}
	gen := func(n int, seed *tensor.RNG) *Synth {
		s := &Synth{cfg: cfg, images: make([]*tensor.Tensor, n), labels: make([]int, n)}
		for i := 0; i < n; i++ {
			label := i % cfg.Classes // balanced classes
			s.labels[i] = label
			s.images[i] = renderSample(protos[label], cfg, seed.Split())
		}
		return s
	}
	return gen(cfg.Train, rng.Split()), gen(cfg.Test, rng.Split()), nil
}

func makeProto(rng *tensor.RNG) classProto {
	var p classProto
	ng := 2 + rng.Intn(2) // 2–3 gratings
	for i := 0; i < ng; i++ {
		freq := 1.5 + 6*rng.Float64() // cycles across the image
		theta := 2 * math.Pi * rng.Float64()
		g := grating{
			fx:    freq * math.Cos(theta),
			fy:    freq * math.Sin(theta),
			phase: 2 * math.Pi * rng.Float64(),
		}
		for ch := range g.amp {
			g.amp[ch] = 0.15 + 0.25*rng.Float64()
		}
		p.gratings = append(p.gratings, g)
	}
	nb := 1 + rng.Intn(2) // 1–2 blobs
	for i := 0; i < nb; i++ {
		b := blob{
			cx:    0.2 + 0.6*rng.Float64(),
			cy:    0.2 + 0.6*rng.Float64(),
			sigma: 0.08 + 0.12*rng.Float64(),
		}
		for ch := range b.amp {
			b.amp[ch] = (rng.Float64() - 0.5) * 0.9
		}
		p.blobs = append(p.blobs, b)
	}
	for ch := range p.base {
		p.base[ch] = 0.35 + 0.3*rng.Float64()
	}
	return p
}

func renderSample(p classProto, cfg SynthConfig, rng *tensor.RNG) *tensor.Tensor {
	sz := cfg.Size
	img := tensor.New(cfg.Channels, sz, sz)
	d := img.Data()
	// Instance jitter: phase offsets, blob displacement, amplitude scale.
	phaseJit := make([]float64, len(p.gratings))
	for i := range phaseJit {
		phaseJit[i] = (rng.Float64() - 0.5) * 1.2
	}
	dxs := make([]float64, len(p.blobs))
	dys := make([]float64, len(p.blobs))
	for i := range p.blobs {
		dxs[i] = (rng.Float64() - 0.5) * 0.15
		dys[i] = (rng.Float64() - 0.5) * 0.15
	}
	ampScale := 0.8 + 0.4*rng.Float64()

	inv := 1 / float64(sz)
	for ch := 0; ch < cfg.Channels; ch++ {
		for y := 0; y < sz; y++ {
			fy := float64(y) * inv
			for x := 0; x < sz; x++ {
				fx := float64(x) * inv
				v := p.base[ch%3]
				for gi, g := range p.gratings {
					v += ampScale * g.amp[ch%3] * math.Sin(2*math.Pi*(g.fx*fx+g.fy*fy)+g.phase+phaseJit[gi])
				}
				for bi, b := range p.blobs {
					ddx := fx - (b.cx + dxs[bi])
					ddy := fy - (b.cy + dys[bi])
					v += b.amp[ch%3] * math.Exp(-(ddx*ddx+ddy*ddy)/(2*b.sigma*b.sigma))
				}
				d[(ch*sz+y)*sz+x] = float32(v)
			}
		}
	}
	// Pixel noise, then normalise roughly to zero mean unit-ish scale,
	// mirroring the mean/std normalisation of CIFAR pipelines.
	noise := float32(cfg.Noise)
	for i := range d {
		d[i] += noise * float32(rng.Norm())
		d[i] = (d[i] - 0.5) * 2
	}
	return img
}

// Len implements Dataset.
func (s *Synth) Len() int { return len(s.images) }

// NumClasses implements Dataset.
func (s *Synth) NumClasses() int { return s.cfg.Classes }

// Sample implements Dataset.
func (s *Synth) Sample(i int) (*tensor.Tensor, int) {
	return s.images[i], s.labels[i]
}

// Size returns the spatial size of the images.
func (s *Synth) Size() int { return s.cfg.Size }

// Channels returns the number of colour channels.
func (s *Synth) Channels() int { return s.cfg.Channels }
