package data

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPackBatch(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 3, Train: 5, Test: 3, Size: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Wraps modulo the dataset length.
	x, labels, err := PackBatch(tr, 7)
	if err != nil {
		t.Fatalf("PackBatch: %v", err)
	}
	if got := x.Shape(); got[0] != 7 || got[1] != 3 || got[2] != 8 || got[3] != 8 {
		t.Fatalf("batch shape %v", got)
	}
	if len(labels) != 7 {
		t.Fatalf("labels %d", len(labels))
	}
	img0, l0 := tr.Sample(0)
	per := img0.Len()
	for j := 0; j < per; j++ {
		if x.Data()[j] != img0.Data()[j] {
			t.Fatalf("sample 0 not copied at %d", j)
		}
		if x.Data()[5*per+j] != img0.Data()[j] {
			t.Fatalf("sample 5 did not wrap to sample 0 at %d", j)
		}
	}
	if labels[0] != l0 || labels[5] != l0 {
		t.Errorf("labels did not wrap: %v vs %d", labels, l0)
	}
	if _, _, err := PackBatch(tr, 0); err == nil {
		t.Error("zero-size batch did not error")
	}
	if _, _, err := PackBatch(nil, 4); err == nil {
		t.Error("nil dataset did not error")
	}
}

func TestNewSynthValidation(t *testing.T) {
	if _, _, err := NewSynth(SynthConfig{Train: 0, Test: 10}); err == nil {
		t.Error("zero train size did not error")
	}
	if _, _, err := NewSynth(SynthConfig{Train: 10, Test: 0}); err == nil {
		t.Error("zero test size did not error")
	}
	if _, _, err := NewSynth(SynthConfig{Classes: 1, Train: 10, Test: 10}); err == nil {
		t.Error("single class did not error")
	}
}

func TestSynthGeometryAndBalance(t *testing.T) {
	tr, te, err := NewSynth(SynthConfig{Classes: 5, Train: 50, Test: 25, Size: 16, Seed: 1})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	if tr.Len() != 50 || te.Len() != 25 {
		t.Fatalf("split sizes = (%d, %d)", tr.Len(), te.Len())
	}
	if tr.NumClasses() != 5 {
		t.Fatalf("NumClasses = %d", tr.NumClasses())
	}
	counts := make([]int, 5)
	for i := 0; i < tr.Len(); i++ {
		img, label := tr.Sample(i)
		if label < 0 || label >= 5 {
			t.Fatalf("label %d out of range", label)
		}
		counts[label]++
		s := img.Shape()
		if len(s) != 3 || s[0] != 3 || s[1] != 16 || s[2] != 16 {
			t.Fatalf("image shape %v, want (3,16,16)", s)
		}
		if img.HasNaN() {
			t.Fatal("image contains NaN")
		}
	}
	for c, n := range counts {
		if n != 10 {
			t.Errorf("class %d has %d samples, want 10 (balanced)", c, n)
		}
	}
}

func TestSynthDeterministicAcrossConstructions(t *testing.T) {
	cfg := SynthConfig{Classes: 3, Train: 12, Test: 6, Size: 8, Seed: 9}
	tr1, _, err := NewSynth(cfg)
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	tr2, _, err := NewSynth(cfg)
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	for i := 0; i < tr1.Len(); i++ {
		a, la := tr1.Sample(i)
		b, lb := tr2.Sample(i)
		if la != lb {
			t.Fatalf("labels differ at %d", i)
		}
		for j := range a.Data() {
			if a.Data()[j] != b.Data()[j] {
				t.Fatalf("pixel %d of sample %d differs", j, i)
			}
		}
	}
}

func TestSynthSeedsProduceDifferentData(t *testing.T) {
	a, _, err := NewSynth(SynthConfig{Classes: 3, Train: 6, Test: 3, Size: 8, Seed: 1})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	b, _, err := NewSynth(SynthConfig{Classes: 3, Train: 6, Test: 3, Size: 8, Seed: 2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	imgA, _ := a.Sample(0)
	imgB, _ := b.Sample(0)
	same := true
	for j := range imgA.Data() {
		if imgA.Data()[j] != imgB.Data()[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

// Property: same-class samples are more alike than cross-class samples on
// average (the task is learnable), measured by mean squared distance over
// a handful of pairs.
func TestSynthClassStructureProperty(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 4, Train: 64, Test: 8, Size: 12, Seed: 3, Noise: 0.3})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	dist := func(a, b *tensor.Tensor) float64 {
		var s float64
		for i := range a.Data() {
			d := float64(a.Data()[i] - b.Data()[i])
			s += d * d
		}
		return s / float64(a.Len())
	}
	var within, across float64
	var nw, na int
	for i := 0; i < tr.Len(); i++ {
		for j := i + 1; j < tr.Len(); j += 7 {
			ai, li := tr.Sample(i)
			aj, lj := tr.Sample(j)
			d := dist(ai, aj)
			if li == lj {
				within += d
				nw++
			} else {
				across += d
				na++
			}
		}
	}
	if nw == 0 || na == 0 {
		t.Fatal("degenerate pair sampling")
	}
	if within/float64(nw) >= across/float64(na) {
		t.Errorf("within-class distance %.4f >= across-class %.4f; task has no class structure",
			within/float64(nw), across/float64(na))
	}
}

func TestAugmentedPreservesGeometry(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 3, Train: 9, Test: 3, Size: 16, Seed: 5})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	aug, err := NewAugmented(tr, 2, 16, tensor.NewRNG(1))
	if err != nil {
		t.Fatalf("NewAugmented: %v", err)
	}
	if aug.Len() != tr.Len() || aug.NumClasses() != tr.NumClasses() {
		t.Error("augmentation changed dataset size or classes")
	}
	img, label := aug.Sample(0)
	_, wantLabel := tr.Sample(0)
	if label != wantLabel {
		t.Error("augmentation changed the label")
	}
	s := img.Shape()
	if s[1] != 16 || s[2] != 16 {
		t.Errorf("augmented shape %v, want 16x16", s)
	}
}

func TestAugmentedVariesAcrossCalls(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 3, Train: 9, Test: 3, Size: 16, Seed: 5})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	aug, err := NewAugmented(tr, 2, 16, tensor.NewRNG(1))
	if err != nil {
		t.Fatalf("NewAugmented: %v", err)
	}
	a, _ := aug.Sample(0)
	aCopy := a.Clone()
	different := false
	for trial := 0; trial < 8; trial++ {
		b, _ := aug.Sample(0)
		for i := range aCopy.Data() {
			if b.Data()[i] != aCopy.Data()[i] {
				different = true
				break
			}
		}
		if different {
			break
		}
	}
	if !different {
		t.Error("8 augmented views of the same image were identical")
	}
}

func TestAugmentedValidation(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 3, Train: 9, Test: 3, Size: 16, Seed: 5})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	if _, err := NewAugmented(tr, -1, 16, tensor.NewRNG(1)); err == nil {
		t.Error("negative pad did not error")
	}
	if _, err := NewAugmented(tr, 2, 0, tensor.NewRNG(1)); err == nil {
		t.Error("zero size did not error")
	}
	if _, err := NewAugmented(tr, 2, 16, nil); err == nil {
		t.Error("nil rng did not error")
	}
}

func TestLoaderCoversEpochExactlyOnce(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 2, Train: 10, Test: 2, Size: 8, Seed: 2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	loader, err := NewLoader(tr, 3, tensor.NewRNG(4))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if loader.Batches() != 4 { // ceil(10/3)
		t.Errorf("Batches = %d, want 4", loader.Batches())
	}
	total := 0
	batches := 0
	for {
		batch, labels, ok := loader.Next()
		if !ok {
			break
		}
		if batch.Dim(0) != len(labels) {
			t.Fatalf("batch dim %d != %d labels", batch.Dim(0), len(labels))
		}
		total += len(labels)
		batches++
	}
	if total != 10 || batches != 4 {
		t.Errorf("epoch covered %d samples in %d batches, want 10 in 4", total, batches)
	}
	// Next epoch restarts.
	batch, _, ok := loader.Next()
	if !ok || batch == nil {
		t.Error("loader did not restart after epoch end")
	}
}

func TestLoaderShufflesBetweenEpochs(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 2, Train: 32, Test: 2, Size: 8, Seed: 2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	loader, err := NewLoader(tr, 32, tensor.NewRNG(4))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, labels1, _ := loader.Next()
	loader.Next() // consume epoch end
	_, labels2, _ := loader.Next()
	same := true
	for i := range labels1 {
		if labels1[i] != labels2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("two epochs produced identical order")
	}
}

func TestLoaderUnshuffledIsSequential(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 2, Train: 6, Test: 2, Size: 8, Seed: 2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	loader, err := NewLoader(tr, 6, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, labels, _ := loader.Next()
	for i, l := range labels {
		_, want := tr.Sample(i)
		if l != want {
			t.Errorf("unshuffled label[%d] = %d, want %d", i, l, want)
		}
	}
}

func TestLoaderValidation(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 2, Train: 6, Test: 2, Size: 8, Seed: 2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	if _, err := NewLoader(tr, 0, nil); err == nil {
		t.Error("zero batch size did not error")
	}
}

// Property: every generated pixel is finite and within a sane range for
// arbitrary seeds and noise levels.
func TestSynthPixelsBoundedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _, err := NewSynth(SynthConfig{
			Classes: 2, Train: 4, Test: 2, Size: 8, Seed: seed, Noise: 0.5,
		})
		if err != nil {
			return false
		}
		for i := 0; i < tr.Len(); i++ {
			img, _ := tr.Sample(i)
			if img.HasNaN() {
				return false
			}
			min, max := img.MinMax()
			if min < -50 || max > 50 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
