package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Loader iterates a dataset in shuffled mini-batches, assembling NCHW
// batch tensors. One Loader drives one training run; it is not safe for
// concurrent use.
type Loader struct {
	ds        Dataset
	batchSize int
	rng       *tensor.RNG
	order     []int
	cursor    int
	// epochRNG is the shuffle RNG's state captured immediately before the
	// current epoch's permutation was drawn; replaying reset() from it
	// regenerates the identical order. Meaningless when rng is nil.
	epochRNG uint64
}

// NewLoader constructs a loader. A nil rng disables shuffling (evaluation
// order).
func NewLoader(ds Dataset, batchSize int, rng *tensor.RNG) (*Loader, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("data: non-positive batch size %d", batchSize)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("data: empty dataset")
	}
	l := &Loader{ds: ds, batchSize: batchSize, rng: rng}
	l.reset()
	return l, nil
}

func (l *Loader) reset() {
	n := l.ds.Len()
	if l.rng != nil {
		l.epochRNG = l.rng.State()
		l.order = l.rng.Perm(n)
	} else if l.order == nil {
		l.order = make([]int, n)
		for i := range l.order {
			l.order[i] = i
		}
	}
	l.cursor = 0
}

// Cursor snapshots the loader's position for checkpointing: the shuffle
// RNG state that produced the current epoch's order plus the offset within
// it. Seek on an identically-constructed loader restores the exact batch
// boundary, so a resumed run replays the remaining batches of the epoch
// (and every following epoch's shuffle) bit-identically.
type Cursor struct {
	// EpochRNG is the shuffle RNG state captured before the current
	// epoch's permutation was drawn (0 and unused for unshuffled loaders).
	EpochRNG uint64
	// Offset is the position within the epoch's sample order.
	Offset int
	// Shuffled records whether the loader shuffles; Seek refuses a cursor
	// captured from the other kind.
	Shuffled bool
}

// Cursor returns the loader's current position.
func (l *Loader) Cursor() Cursor {
	return Cursor{EpochRNG: l.epochRNG, Offset: l.cursor, Shuffled: l.rng != nil}
}

// Seek restores a position captured by Cursor on a loader built over the
// same dataset with the same batch size. For shuffled loaders it rewinds
// the RNG to the cursor's epoch state, regenerates the epoch's order, and
// fast-forwards to the offset — the next call to Next returns the exact
// batch the checkpointed run would have drawn next.
func (l *Loader) Seek(c Cursor) error {
	if c.Shuffled != (l.rng != nil) {
		return fmt.Errorf("data: seek: cursor shuffled=%v, loader shuffled=%v", c.Shuffled, l.rng != nil)
	}
	if c.Offset < 0 || c.Offset > l.ds.Len() {
		return fmt.Errorf("data: seek: offset %d outside dataset of %d samples", c.Offset, l.ds.Len())
	}
	if l.rng != nil {
		l.rng.SetState(c.EpochRNG)
	}
	l.reset()
	l.cursor = c.Offset
	return nil
}

// Batches returns the number of batches per epoch (ceiling division).
func (l *Loader) Batches() int {
	return (l.ds.Len() + l.batchSize - 1) / l.batchSize
}

// Next returns the next mini-batch as an (N, C, H, W) tensor plus labels.
// At the end of an epoch it returns ok=false and reshuffles; the following
// call starts the next epoch.
func (l *Loader) Next() (batch *tensor.Tensor, labels []int, ok bool) {
	if l.cursor >= len(l.order) {
		l.reset()
		return nil, nil, false
	}
	end := l.cursor + l.batchSize
	if end > len(l.order) {
		end = len(l.order)
	}
	idx := l.order[l.cursor:end]
	l.cursor = end

	first, _ := l.ds.Sample(idx[0])
	shape := first.Shape()
	n := len(idx)
	batch = tensor.New(append([]int{n}, shape...)...)
	labels = make([]int, n)
	sz := first.Len()
	for i, id := range idx {
		img, label := l.ds.Sample(id)
		copy(batch.Data()[i*sz:(i+1)*sz], img.Data())
		labels[i] = label
	}
	return batch, labels, true
}
