package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Loader iterates a dataset in shuffled mini-batches, assembling NCHW
// batch tensors. One Loader drives one training run; it is not safe for
// concurrent use.
type Loader struct {
	ds        Dataset
	batchSize int
	rng       *tensor.RNG
	order     []int
	cursor    int
}

// NewLoader constructs a loader. A nil rng disables shuffling (evaluation
// order).
func NewLoader(ds Dataset, batchSize int, rng *tensor.RNG) (*Loader, error) {
	if batchSize <= 0 {
		return nil, fmt.Errorf("data: non-positive batch size %d", batchSize)
	}
	if ds.Len() == 0 {
		return nil, fmt.Errorf("data: empty dataset")
	}
	l := &Loader{ds: ds, batchSize: batchSize, rng: rng}
	l.reset()
	return l, nil
}

func (l *Loader) reset() {
	n := l.ds.Len()
	if l.rng != nil {
		l.order = l.rng.Perm(n)
	} else if l.order == nil {
		l.order = make([]int, n)
		for i := range l.order {
			l.order[i] = i
		}
	}
	l.cursor = 0
}

// Batches returns the number of batches per epoch (ceiling division).
func (l *Loader) Batches() int {
	return (l.ds.Len() + l.batchSize - 1) / l.batchSize
}

// Next returns the next mini-batch as an (N, C, H, W) tensor plus labels.
// At the end of an epoch it returns ok=false and reshuffles; the following
// call starts the next epoch.
func (l *Loader) Next() (batch *tensor.Tensor, labels []int, ok bool) {
	if l.cursor >= len(l.order) {
		l.reset()
		return nil, nil, false
	}
	end := l.cursor + l.batchSize
	if end > len(l.order) {
		end = len(l.order)
	}
	idx := l.order[l.cursor:end]
	l.cursor = end

	first, _ := l.ds.Sample(idx[0])
	shape := first.Shape()
	n := len(idx)
	batch = tensor.New(append([]int{n}, shape...)...)
	labels = make([]int, n)
	sz := first.Len()
	for i, id := range idx {
		img, label := l.ds.Sample(id)
		copy(batch.Data()[i*sz:(i+1)*sz], img.Data())
		labels[i] = label
	}
	return batch, labels, true
}
