package data

import (
	"fmt"

	"repro/internal/tensor"
)

// PackBatch copies n samples of ds — indices 0..n−1, wrapping modulo the
// dataset length — into one (n, C, H, W) batch tensor, returning the
// batch and the corresponding labels. It is the shared packing step for
// calibration batches, evaluation batches and serving benchmarks.
func PackBatch(ds Dataset, n int) (*tensor.Tensor, []int, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, nil, fmt.Errorf("data: pack batch from an empty dataset")
	}
	if n <= 0 {
		return nil, nil, fmt.Errorf("data: pack batch of %d samples", n)
	}
	first, _ := ds.Sample(0)
	if first.Rank() != 3 {
		return nil, nil, fmt.Errorf("data: %w: sample shape %v, want (C,H,W)", tensor.ErrShape, first.Shape())
	}
	c, h, w := first.Dim(0), first.Dim(1), first.Dim(2)
	x := tensor.New(n, c, h, w)
	labels := make([]int, n)
	per := first.Len()
	for i := 0; i < n; i++ {
		img, label := ds.Sample(i % ds.Len())
		if img.Len() != per {
			return nil, nil, fmt.Errorf("data: %w: sample %d has %d values, want %d", tensor.ErrShape, i, img.Len(), per)
		}
		copy(x.Data()[i*per:(i+1)*per], img.Data())
		labels[i] = label
	}
	return x, labels, nil
}
