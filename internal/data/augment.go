package data

import (
	"fmt"

	"repro/internal/tensor"
)

// Augmented wraps a dataset with the paper's CIFAR training augmentation
// (§IV): pad Pad pixels on each side, take a random Size×Size crop of the
// padded image or of its horizontal flip. Sampling is randomized through
// the loader's RNG, so the wrapper itself is stateless; use WithRNG to
// bind a generator when sampling directly.
type Augmented struct {
	base Dataset
	pad  int
	size int
	rng  *tensor.RNG
}

// NewAugmented wraps base with pad-and-crop plus random flip augmentation.
// size is the output spatial size (the crop window).
func NewAugmented(base Dataset, pad, size int, rng *tensor.RNG) (*Augmented, error) {
	if pad < 0 || size <= 0 {
		return nil, fmt.Errorf("data: invalid augmentation pad=%d size=%d", pad, size)
	}
	if rng == nil {
		return nil, fmt.Errorf("data: augmentation requires an RNG")
	}
	return &Augmented{base: base, pad: pad, size: size, rng: rng}, nil
}

// Len implements Dataset.
func (a *Augmented) Len() int { return a.base.Len() }

// NumClasses implements Dataset.
func (a *Augmented) NumClasses() int { return a.base.NumClasses() }

// Sample implements Dataset: it returns a freshly augmented view of the
// underlying image. Consecutive calls with the same index differ.
func (a *Augmented) Sample(i int) (*tensor.Tensor, int) {
	img, label := a.base.Sample(i)
	out, err := a.apply(img)
	if err != nil {
		// Geometry errors are programmer errors (mismatched base size);
		// surface them loudly rather than training on silent garbage.
		panic(fmt.Sprintf("data: augmentation failed: %v", err))
	}
	return out, label
}

func (a *Augmented) apply(img *tensor.Tensor) (*tensor.Tensor, error) {
	padded, err := tensor.Pad2D(img, a.pad)
	if err != nil {
		return nil, err
	}
	maxOff := padded.Dim(1) - a.size
	if maxOff < 0 {
		return nil, fmt.Errorf("crop size %d exceeds padded size %d", a.size, padded.Dim(1))
	}
	y, x := 0, 0
	if maxOff > 0 {
		y = a.rng.Intn(maxOff + 1)
		x = a.rng.Intn(maxOff + 1)
	}
	crop, err := tensor.Crop2D(padded, y, x, a.size, a.size)
	if err != nil {
		return nil, err
	}
	if a.rng.Float64() < 0.5 {
		return tensor.FlipH(crop)
	}
	return crop, nil
}
