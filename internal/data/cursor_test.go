package data

import (
	"testing"

	"repro/internal/tensor"
)

type drawRec struct {
	data   []float32
	labels []int
	ok     bool
}

func drawOne(l *Loader) drawRec {
	b, labels, ok := l.Next()
	r := drawRec{labels: labels, ok: ok}
	if ok {
		r.data = append([]float32(nil), b.Data()...)
	}
	return r
}

// TestLoaderCursorSeekBitIdentical: a freshly built loader Seek'd to a
// mid-epoch cursor must replay the remaining batches of that epoch — and
// every following epoch's shuffle — bit-identically to the loader that
// never stopped. This is the loader half of the resume-determinism
// contract.
func TestLoaderCursorSeekBitIdentical(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 3, Train: 50, Test: 10, Size: 6, Seed: 11, Noise: 0.3})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	a, err := NewLoader(tr, 8, tensor.NewRNG(99))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	// Walk into the second epoch (7 batches per epoch plus the end-of-epoch
	// return) and snapshot mid-epoch.
	for i := 0; i < 11; i++ {
		drawOne(a)
	}
	cur := a.Cursor()
	var want []drawRec
	for i := 0; i < 20; i++ {
		want = append(want, drawOne(a))
	}

	b, err := NewLoader(tr, 8, tensor.NewRNG(99))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := b.Seek(cur); err != nil {
		t.Fatalf("Seek: %v", err)
	}
	for i, w := range want {
		g := drawOne(b)
		if g.ok != w.ok {
			t.Fatalf("draw %d: ok = %v, want %v", i, g.ok, w.ok)
		}
		if !g.ok {
			continue
		}
		if len(g.labels) != len(w.labels) {
			t.Fatalf("draw %d: %d labels, want %d", i, len(g.labels), len(w.labels))
		}
		for j := range g.labels {
			if g.labels[j] != w.labels[j] {
				t.Fatalf("draw %d label %d: %d, want %d", i, j, g.labels[j], w.labels[j])
			}
		}
		for j := range g.data {
			if g.data[j] != w.data[j] {
				t.Fatalf("draw %d: pixel %d differs after seek", i, j)
			}
		}
	}
}

func TestLoaderSeekValidation(t *testing.T) {
	tr, _, err := NewSynth(SynthConfig{Classes: 2, Train: 20, Test: 4, Size: 4, Seed: 5, Noise: 0.2})
	if err != nil {
		t.Fatalf("NewSynth: %v", err)
	}
	shuffled, err := NewLoader(tr, 8, tensor.NewRNG(1))
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	plain, err := NewLoader(tr, 8, nil)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if err := plain.Seek(shuffled.Cursor()); err == nil {
		t.Error("shuffled cursor into an unshuffled loader did not error")
	}
	if err := shuffled.Seek(Cursor{Shuffled: true, Offset: 1000}); err == nil {
		t.Error("out-of-range offset did not error")
	}
}
