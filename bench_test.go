package repro

import (
	"io"
	"testing"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/quant"
	"repro/internal/tensor"
	"repro/internal/train"
)

// runWithController trains a model under an explicit APT controller with
// a scale profile's hyper-parameters (used by the ablation benches, which
// need direct access to core.Config knobs the facade does not expose).
func runWithController(m *models.Model, trainSet, testSet data.Dataset,
	ctrl *core.Controller, s experiments.Scale) (*train.History, error) {
	return train.Run(train.Config{
		Model: m, Train: trainSet, Test: testSet,
		BatchSize: s.Batch, Epochs: s.Epochs,
		Schedule: optim.StepSchedule{Base: s.LR, Milestones: s.Milestones, Factor: 0.1},
		Momentum: 0.9, WeightDecay: 1e-4,
		APT: ctrl, Seed: 9,
	})
}

// ---------------------------------------------------------------------------
// Paper artefacts: one benchmark per table and figure. Each runs the full
// experiment pipeline at the Micro scale (seconds per iteration) and
// reports the artefact's key quantities as custom metrics. The CI- and
// Paper-scale versions of the same artefacts are produced by
// cmd/aptbench (-scale ci|paper); the numbers recorded in EXPERIMENTS.md
// come from the CI scale.
// ---------------------------------------------------------------------------

func benchArtifact(b *testing.B, id string) *experiments.Report {
	b.Helper()
	runner, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var rep *experiments.Report
	for i := 0; i < b.N; i++ {
		rep, err = runner(experiments.Micro(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rep
}

// BenchmarkFig1 regenerates Figure 1 (Gavg vs epoch for two layers).
func BenchmarkFig1(b *testing.B) {
	rep := benchArtifact(b, "fig1")
	ga := rep.Series["gavgA"]
	if len(ga) > 0 {
		b.ReportMetric(ga[0], "gavgA_first")
		b.ReportMetric(ga[len(ga)-1], "gavgA_last")
	}
}

// BenchmarkFig2 regenerates Figure 2 (accuracy vs epoch across precisions).
func BenchmarkFig2(b *testing.B) {
	rep := benchArtifact(b, "fig2")
	if acc := rep.Series["APT (init 6-bit)"]; len(acc) > 0 {
		b.ReportMetric(acc[len(acc)-1]*100, "apt_final_acc_%")
	}
	if acc := rep.Series["fp32"]; len(acc) > 0 {
		b.ReportMetric(acc[len(acc)-1]*100, "fp32_final_acc_%")
	}
}

// BenchmarkFig3 regenerates Figure 3 (layer-wise bitwidth vs epoch).
func BenchmarkFig3(b *testing.B) {
	rep := benchArtifact(b, "fig3")
	var maxBits float64
	for name, series := range rep.Series {
		_ = name
		for _, v := range series {
			if v > maxBits {
				maxBits = v
			}
		}
	}
	b.ReportMetric(maxBits, "max_layer_bits")
}

// BenchmarkFig4 regenerates Figure 4 (energy to reach target accuracy).
func BenchmarkFig4(b *testing.B) {
	rep := benchArtifact(b, "fig4")
	if e := rep.Series["fullenergy/APT"]; len(e) == 1 {
		b.ReportMetric(e[0], "apt_full_energy_vs_fp32")
	}
	if e := rep.Series["fullenergy/12-bit"]; len(e) == 1 {
		b.ReportMetric(e[0], "12bit_full_energy_vs_fp32")
	}
}

// BenchmarkFig5 regenerates Figure 5 (Tmin sweep scatter).
func BenchmarkFig5(b *testing.B) {
	rep := benchArtifact(b, "fig5")
	es := rep.Series["energy"]
	if len(es) > 1 {
		b.ReportMetric(es[0], "energy_lowest_tmin")
		b.ReportMetric(es[len(es)-1], "energy_highest_tmin")
	}
}

// BenchmarkTable1 regenerates Table I (method comparison).
func BenchmarkTable1(b *testing.B) {
	rep := benchArtifact(b, "table1")
	if m := rep.Series["mem/APT"]; len(m) == 1 {
		b.ReportMetric(m[0], "apt_mem_vs_fp32")
	}
	if m := rep.Series["mem/TWN"]; len(m) == 1 {
		b.ReportMetric(m[0], "twn_mem_vs_fp32")
	}
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices called out in DESIGN.md §5:
// policy step size, EMA decay, metric variant and profiling interval.
// Each trains the same micro workload with one knob changed and reports
// final accuracy and normalized energy so the ablation grid can be read
// straight off the bench output.
// ---------------------------------------------------------------------------

func ablationRun(b *testing.B, mutate func(*core.Config)) {
	b.Helper()
	s := experiments.Micro()
	for i := 0; i < b.N; i++ {
		trainSet, testSet, err := SynthDataset(SynthConfig{
			Classes: 4, Train: s.TrainN, Test: s.TestN, Size: s.InputSize,
			Seed: 5, Noise: s.Noise,
		})
		if err != nil {
			b.Fatal(err)
		}
		model, err := SmallCNN(ModelConfig{Classes: 4, InputSize: s.InputSize, Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Tmin = 6
		cfg.Interval = 2
		mutate(&cfg)
		ctrl, err := core.NewController(cfg, model.Params())
		if err != nil {
			b.Fatal(err)
		}
		hist, err := runWithController(model, trainSet, testSet, ctrl, s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(hist.BestAcc()*100, "best_acc_%")
		b.ReportMetric(hist.NormalizedEnergy(), "energy_vs_fp32")
	}
}

func BenchmarkAblationPolicyStep1(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Step = 1 })
}

func BenchmarkAblationPolicyStep2(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Step = 2 })
}

func BenchmarkAblationEMAFast(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.EMADecay = 0.9 })
}

func BenchmarkAblationEMASlow(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.EMADecay = 0.1 })
}

func BenchmarkAblationMetricGavg(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Metric = core.MetricGavg })
}

func BenchmarkAblationMetricUnderflowFraction(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Metric = core.MetricUnderflowFraction })
}

func BenchmarkAblationInterval1(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Interval = 1 })
}

func BenchmarkAblationInterval8(b *testing.B) {
	ablationRun(b, func(c *core.Config) { c.Interval = 8 })
}

// ---------------------------------------------------------------------------
// Component micro-benchmarks: the numeric kernels the training loop spends
// its time in.
// ---------------------------------------------------------------------------

func BenchmarkMatMul64(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.New(64, 64)
	y := tensor.New(64, 64)
	x.FillNormal(rng, 0, 1)
	y.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul measures the dense GEMM kernel at a mid-size square
// shape; reported as GFLOP/s-relevant ns/op with allocation counts.
func BenchmarkMatMul(b *testing.B) {
	x, y := benchkit.MatMul256()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMulConvShaped measures the GEMM shape the batched conv path
// produces for SmallCNN's first layer at batch 64: (16, 27)·(27, 65536).
func BenchmarkMatMulConvShaped(b *testing.B) {
	w, cols := benchkit.ConvShapedGEMM()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tensor.MatMul(w, cols); err != nil {
			b.Fatal(err)
		}
	}
}

// benchConv64 builds the shared SmallCNN-shaped batch-64 convolution
// workload (see internal/benchkit), the steady-state training shape the
// conv/GEMM hot path runs at.
func benchConv64(b *testing.B) (*nn.Conv2D, *tensor.Tensor) {
	b.Helper()
	conv, x, err := benchkit.Conv64()
	if err != nil {
		b.Fatal(err)
	}
	return conv, x
}

// BenchmarkConvForward64 measures one steady-state Conv2D forward at
// batch 64. Allocation counts expose whether the scratch arenas are
// actually reused (first iteration warms them up before the timer).
func BenchmarkConvForward64(b *testing.B) {
	conv, x := benchConv64(b)
	if _, err := conv.Forward(x, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvBackward64 measures one steady-state Conv2D forward+backward
// at batch 64 (backward requires the forward cache, so the pair is the
// realistic training-step unit).
func BenchmarkConvBackward64(b *testing.B) {
	conv, x := benchConv64(b)
	out, err := conv.Forward(x, true)
	if err != nil {
		b.Fatal(err)
	}
	dout := tensor.New(out.Shape()...)
	dout.Fill(0.01)
	if _, err := conv.Backward(dout); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conv.Forward(x, true); err != nil {
			b.Fatal(err)
		}
		if _, err := conv.Backward(dout); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvForward(b *testing.B) {
	m, err := models.ResNet20(models.Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	x := tensor.New(8, 3, 16, 16)
	x.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Net.Forward(x, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuantizeSnap(b *testing.B) {
	rng := tensor.NewRNG(3)
	v := tensor.New(64 * 1024)
	v.FillNormal(rng, 0, 1)
	st, err := quant.NewState(8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Quantize(v)
	}
}

func BenchmarkGavg(b *testing.B) {
	rng := tensor.NewRNG(4)
	g := tensor.New(64 * 1024)
	g.FillNormal(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = quant.Gavg(g, 0.01)
	}
}

func BenchmarkEnergySnapshot(b *testing.B) {
	m, err := models.ResNet20(models.Config{Classes: 10, InputSize: 16, Width: 0.25, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = energy.Snapshot(m.Layers())
	}
}
