// Distributed training with gradient compression: the setting TernGrad
// (one of Table I's comparison methods) was designed for. Two data-
// parallel workers train a shared model through a parameter server; the
// worker→server gradient link runs uncompressed (fp32), with DoReFa-style
// 8-bit quantization, and with TernGrad's ternary code — the example
// prints the accuracy each reaches and the wire traffic each spent.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
)

func main() {
	trainSet, testSet, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 51, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := func() (*models.Model, error) {
		return models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 9})
	}

	codecs := []dist.GradCodec{
		dist.FP32Codec{},
		dist.KBitCodec{Bits: 8},
		dist.NewTernaryCodec(99),
	}
	fmt.Println("codec     accuracy   uplink        downlink      rounds")
	for _, codec := range codecs {
		stats, err := dist.Run(dist.Config{
			Workers: 2, Build: build, Train: trainSet, Test: testSet,
			BatchSize: 32, Epochs: 6, LR: 0.05, Momentum: 0.9,
			Codec: codec, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %6.1f%%    %-13s %-13s %d\n",
			codec.Name(), 100*stats.FinalAcc(),
			fmtBytes(stats.UpBytes), fmtBytes(stats.DownBytes), stats.Rounds)
	}
	fmt.Println("\nternary gradients cut the up-link ~16x (2 bits + scale vs 32 bits/element);")
	fmt.Println("weights still broadcast in fp32, as in the original TernGrad.")
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
