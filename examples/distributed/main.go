// Distributed training with compressed links: the setting TernGrad (one
// of Table I's comparison methods) was designed for, now with APT running
// on the parameter server. Two concurrent data-parallel workers train
// through the server; the first table compares gradient codecs on the
// worker→server uplink (fp32, DoReFa-style 8-bit, TernGrad's ternary),
// and the second compares the server→worker downlink with fp32 weight
// broadcast against the bitwidth-aware broadcast, where weights ship
// bit-packed at each layer's current APT bitwidth.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dist"
	"repro/internal/models"
)

func main() {
	trainSet, testSet, err := data.NewSynth(data.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 51, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	build := func() (*models.Model, error) {
		return models.SmallCNN(models.Config{Classes: 4, InputSize: 16, Seed: 9})
	}
	base := dist.Config{
		Workers: 2, Build: build, Train: trainSet, Test: testSet,
		BatchSize: 32, Epochs: 6, LR: 0.05, Momentum: 0.9,
		Seed: 3, Concurrent: true,
	}

	codecs := []dist.GradCodec{
		dist.FP32Codec{},
		dist.KBitCodec{Bits: 8},
		dist.NewTernaryCodec(99),
	}
	fmt.Println("uplink codecs (fp32 weight broadcast):")
	fmt.Println("codec     accuracy   uplink        downlink      rounds")
	for _, codec := range codecs {
		cfg := base
		cfg.Codec = codec
		stats, err := dist.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %6.1f%%    %-13s %-13s %d\n",
			codec.Name(), 100*stats.FinalAcc(),
			fmtBytes(stats.UpBytes), fmtBytes(stats.DownBytes), stats.Rounds)
	}
	fmt.Println("\nternary gradients cut the up-link ~16x (2 bits + scale vs 32 bits/element).")

	fmt.Println("\nweight broadcast (8-bit uplink, APT on the server):")
	fmt.Println("broadcast       accuracy   downlink      mean bits")
	for _, quantBcast := range []bool{false, true} {
		aptCfg := core.DefaultConfig()
		aptCfg.Interval = 1 // observe every parameter-server round
		cfg := base
		cfg.Codec = dist.KBitCodec{Bits: 8}
		cfg.APT = &aptCfg
		cfg.QuantBroadcast = quantBcast
		stats, err := dist.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		name := "fp32"
		if quantBcast {
			name = "APT bit-packed"
		}
		fmt.Printf("%-15s %6.1f%%    %-13s %.2f\n",
			name, 100*stats.FinalAcc(), fmtBytes(stats.DownBytes), stats.MeanBits)
	}
	fmt.Println("\nwith the bitwidth-aware broadcast the downlink shrinks with APT's")
	fmt.Println("precision state: layers at 6 bits ship 6-bit weights, not fp32.")
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
