// Trade-off sweep: the paper's Figure 5 knob in miniature, plus the
// AutoTmin future-work extension.
//
// APT exposes one application-specific hyper-parameter, the Gavg
// threshold Tmin. Sweeping it trades accuracy against training energy and
// memory; AutoTmin then picks the knee of the sweep automatically ("the
// smallest threshold within 1% of the best accuracy").
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	trainSet, testSet, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 21, Noise: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	aug, err := repro.Augment(trainSet, 2, 16, 22)
	if err != nil {
		log.Fatal(err)
	}

	tmins := []float64{0.1, 1, 10, 100}
	var sweep []repro.CalibrationPoint
	fmt.Println("Tmin     accuracy   energy(vs fp32)   memory(vs fp32)")
	for _, tmin := range tmins {
		model, err := repro.SmallCNN(repro.ModelConfig{Classes: 4, InputSize: 16, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		sess, err := repro.New(repro.Config{
			Model: model, Train: aug, Test: testSet,
			Epochs: 12, BatchSize: 64,
			Mode: repro.ModeAPT, Tmin: tmin, InitBits: 6, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		hist, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8g %6.1f%%    %6.1f%%           %6.1f%%\n",
			tmin, 100*hist.BestAcc(), 100*hist.NormalizedEnergy(), 100*hist.NormalizedSize())
		sweep = append(sweep, repro.CalibrationPoint{
			Tmin: tmin, Accuracy: hist.BestAcc(), Energy: hist.NormalizedEnergy(),
		})
	}

	pick, err := repro.AutoTmin(sweep, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAutoTmin (within 1%% of best accuracy): Tmin = %g\n", pick)
}
