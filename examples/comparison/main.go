// Comparison: APT against the fixed-precision regimes of the paper's
// Figure 2 on one workload — fp32, 16-bit, 8-bit, and APT from a 6-bit
// start — reporting accuracy, energy and training memory side by side.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	trainSet, testSet, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 31, Noise: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	aug, err := repro.Augment(trainSet, 2, 16, 32)
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		label string
		mode  repro.Mode
		bits  int
	}
	variants := []variant{
		{"fp32", repro.ModeFP32, 0},
		{"16-bit fixed", repro.ModeFixed, 16},
		{"8-bit fixed", repro.ModeFixed, 8},
		{"APT (6-bit start)", repro.ModeAPT, 0},
	}

	fmt.Println("method              accuracy   energy(vs fp32)   memory(vs fp32)")
	for _, v := range variants {
		model, err := repro.SmallCNN(repro.ModelConfig{Classes: 4, InputSize: 16, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		sess, err := repro.New(repro.Config{
			Model: model, Train: aug, Test: testSet,
			Epochs: 12, BatchSize: 64,
			Mode: v.mode, FixedBits: v.bits, Tmin: 6, InitBits: 6, Seed: 5,
		})
		if err != nil {
			log.Fatal(err)
		}
		hist, err := sess.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-19s %6.1f%%    %6.1f%%           %6.1f%%\n",
			v.label, 100*hist.BestAcc(), 100*hist.NormalizedEnergy(), 100*hist.NormalizedSize())
	}
}
