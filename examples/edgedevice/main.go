// Edge-device scenario: the paper's motivating use case (§I) — a deployed
// model must learn in-situ under an energy budget.
//
// A ResNet-20 is first pre-trained on the "factory" distribution, then the
// device encounters a personalized distribution (new class prototypes —
// the user's own environment) with only a small on-device dataset and a
// hard energy budget. We fine-tune twice — once in fp32 and once with APT
// — and compare how much adaptation each buys within the same budget.
//
//	go run ./examples/edgedevice
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		classes = 4
		size    = 16
	)
	// Factory distribution.
	factoryTrain, _, err := repro.SynthDataset(repro.SynthConfig{
		Classes: classes, Train: 768, Test: 128, Size: size, Seed: 100, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The user's distribution: same geometry, different generative seed —
	// the model must adapt.
	userTrain, userTest, err := repro.SynthDataset(repro.SynthConfig{
		Classes: classes, Train: 256, Test: 192, Size: size, Seed: 777, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, mode repro.Mode, epochs int) {
		model, err := repro.SmallCNN(repro.ModelConfig{Classes: classes, InputSize: size, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		// Phase 1: factory pre-training (fp32, as done before shipping).
		pre, err := repro.New(repro.Config{
			Model: model, Train: factoryTrain, Test: userTest,
			Epochs: 8, BatchSize: 64, Mode: repro.ModeFP32, Seed: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		preHist, err := pre.Run()
		if err != nil {
			log.Fatal(err)
		}

		// Phase 2: on-device fine-tuning on the user's data.
		ft, err := repro.New(repro.Config{
			Model: model, Train: userTrain, Test: userTest,
			Epochs: epochs, BatchSize: 32, LR: 0.02,
			Mode: mode, Tmin: 6, InitBits: 6, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		ftHist, err := ft.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s before adaptation %.1f%% -> after %.1f%% | fine-tune energy %.1f%% of fp32, memory %.1f%%\n",
			label,
			100*preHist.FinalAcc(), 100*ftHist.BestAcc(),
			100*ftHist.NormalizedEnergy(), 100*ftHist.NormalizedSize())
	}

	fmt.Println("in-situ personalization on the edge (lower energy = longer battery):")
	run("fp32", repro.ModeFP32, 10)
	run("APT", repro.ModeAPT, 10)
}
