// Quickstart: train a small CNN with Adaptive Precision Training on the
// SynthCIFAR task and print the accuracy it reaches together with the
// energy and memory it saved relative to an fp32 run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// A small synthetic 4-class task: ~20 seconds on one CPU.
	trainSet, testSet, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 42, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The paper's training augmentation: pad, random crop, random flip.
	augmented, err := repro.Augment(trainSet, 2, 16, 43)
	if err != nil {
		log.Fatal(err)
	}

	model, err := repro.SmallCNN(repro.ModelConfig{
		Classes: 4, InputSize: 16, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// APT with the paper's defaults: start every layer at 6 bits, raise a
	// layer's precision whenever its Gavg moving average drops below Tmin.
	sess, err := repro.New(repro.Config{
		Model: model, Train: augmented, Test: testSet,
		Epochs: 15, BatchSize: 64,
		Mode: repro.ModeAPT, Tmin: 6, InitBits: 6,
		Seed: 1, Log: os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("final accuracy : %.1f%% (best %.1f%%)\n", 100*hist.FinalAcc(), 100*hist.BestAcc())
	fmt.Printf("training energy: %.1f%% of an fp32 run\n", 100*hist.NormalizedEnergy())
	fmt.Printf("training memory: %.1f%% of an fp32 run\n", 100*hist.NormalizedSize())

	// Per-layer precision the controller settled on.
	fmt.Println("\nfinal layer bitwidths:")
	ctrl := sess.Controller()
	for _, name := range ctrl.TracedParams() {
		trace := ctrl.BitsTrace(name)
		if len(trace) == 0 {
			continue
		}
		fmt.Printf("  %-22s %2d bits\n", name, trace[len(trace)-1])
	}
}
