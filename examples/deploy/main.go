// Deploy: the full edge pipeline the paper's quantization scheme was
// chosen for — train with APT (quantized weights, adaptive per-layer
// precision), checkpoint the model with bit-packed weights, compile it
// to an integer-only (int8/uint8/int32) inference engine, compare the
// deployed engine against the float model on held-out data, and finally
// serve it under concurrent load through the micro-batching server,
// reporting p50/p99 latency and throughput.
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/data"
	"repro/internal/infer"
	"repro/internal/serve"
)

func main() {
	trainSet, testSet, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 61, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.SmallCNN(repro.ModelConfig{Classes: 4, InputSize: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Train in-situ with APT.
	sess, err := repro.New(repro.Config{
		Model: model, Train: trainSet, Test: testSet,
		Epochs: 12, BatchSize: 64, Mode: repro.ModeAPT, Tmin: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained with APT: accuracy %.1f%%, training energy %.1f%% of fp32\n",
		100*hist.BestAcc(), 100*hist.NormalizedEnergy())

	// 2. Checkpoint with bit-packed weights.
	var ckpt bytes.Buffer
	if err := repro.SaveModel(&ckpt, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint (bit-packed quantized weights): %.1f KiB\n", float64(ckpt.Len())/1024)

	// 3. Compile to the integer-only engine (calibrating activation
	// ranges on a training batch).
	calib, _, err := data.PackBatch(trainSet, 64)
	if err != nil {
		log.Fatal(err)
	}
	engine, err := infer.Compile(model, infer.Config{Calibration: calib})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("int8 engine parameters: %.1f KiB\n", float64(engine.SizeBytes())/1024)

	// 4. Compare deployed vs float accuracy on the test set.
	n := testSet.Len()
	x, labels, err := data.PackBatch(testSet, n)
	if err != nil {
		log.Fatal(err)
	}
	floatLogits, err := model.Net.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	intPred, err := engine.Classify(x)
	if err != nil {
		log.Fatal(err)
	}
	floatCorrect, intCorrect, agree := 0, 0, 0
	for i := 0; i < n; i++ {
		fp := floatLogits.ArgMaxRow(i)
		if fp == labels[i] {
			floatCorrect++
		}
		if intPred[i] == labels[i] {
			intCorrect++
		}
		if intPred[i] == fp {
			agree++
		}
	}
	fmt.Printf("\nfloat model accuracy : %.1f%%\n", 100*float64(floatCorrect)/float64(n))
	fmt.Printf("int8 engine accuracy : %.1f%%\n", 100*float64(intCorrect)/float64(n))
	fmt.Printf("prediction agreement : %.1f%%\n", 100*float64(agree)/float64(n))

	// 5. Serve the engine under concurrent load: requests from many
	// clients coalesce into shared integer GEMM batches.
	timeForward := func(f func() error) time.Duration {
		start := time.Now()
		const reps = 5
		for i := 0; i < reps; i++ {
			if err := f(); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start) / reps
	}
	floatLat := timeForward(func() error { _, err := model.Net.Forward(x, false); return err })
	intLat := timeForward(func() error { _, err := engine.Forward(x); return err })
	fmt.Printf("\nbatch-%d forward     : float %s, int8 %s\n", n, floatLat.Round(time.Microsecond), intLat.Round(time.Microsecond))

	srv, err := serve.New(serve.Config{
		Engine:  engine, // sample geometry defaults from engine.InputShape
		Workers: 2, MaxBatch: 32, MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	const clients, perClient = 12, 16
	sample := 3 * 16 * 16
	var wg sync.WaitGroup
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				img := x.Data()[((c*perClient+r)%n)*sample:][:sample]
				if _, err := srv.Classify(img); err != nil {
					log.Fatal(err)
				}
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	srv.Close()
	fmt.Printf("served %d requests   : %d batches (mean %.1f), p50 %.1fms, p99 %.1fms, %.0f req/s\n",
		st.Requests, st.Batches, st.MeanBatch, st.P50Ms, st.P99Ms, st.Throughput)
}
