// Deploy: the full edge pipeline the paper's quantization scheme was
// chosen for — train with APT (quantized weights, adaptive per-layer
// precision), checkpoint the model with bit-packed weights, then compile
// it to an integer-only (int8/uint8/int32) inference engine and compare
// the deployed engine against the float model on held-out data.
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro"
	"repro/internal/infer"
	"repro/internal/tensor"
)

func main() {
	trainSet, testSet, err := repro.SynthDataset(repro.SynthConfig{
		Classes: 4, Train: 512, Test: 256, Size: 16, Seed: 61, Noise: 0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := repro.SmallCNN(repro.ModelConfig{Classes: 4, InputSize: 16, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Train in-situ with APT.
	sess, err := repro.New(repro.Config{
		Model: model, Train: trainSet, Test: testSet,
		Epochs: 12, BatchSize: 64, Mode: repro.ModeAPT, Tmin: 6, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	hist, err := sess.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained with APT: accuracy %.1f%%, training energy %.1f%% of fp32\n",
		100*hist.BestAcc(), 100*hist.NormalizedEnergy())

	// 2. Checkpoint with bit-packed weights.
	var ckpt bytes.Buffer
	if err := repro.SaveModel(&ckpt, model); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint (bit-packed quantized weights): %.1f KiB\n", float64(ckpt.Len())/1024)

	// 3. Compile to the integer-only engine (calibrating activation
	// ranges on a training batch).
	calib := tensor.New(64, 3, 16, 16)
	for i := 0; i < 64; i++ {
		img, _ := trainSet.Sample(i)
		copy(calib.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
	}
	engine, err := infer.Compile(model, infer.Config{Calibration: calib})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("int8 engine parameters: %.1f KiB\n", float64(engine.SizeBytes())/1024)

	// 4. Compare deployed vs float accuracy on the test set.
	n := testSet.Len()
	x := tensor.New(n, 3, 16, 16)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		img, l := testSet.Sample(i)
		copy(x.Data()[i*img.Len():(i+1)*img.Len()], img.Data())
		labels[i] = l
	}
	floatLogits, err := model.Net.Forward(x, false)
	if err != nil {
		log.Fatal(err)
	}
	intPred, err := engine.Classify(x)
	if err != nil {
		log.Fatal(err)
	}
	floatCorrect, intCorrect, agree := 0, 0, 0
	for i := 0; i < n; i++ {
		fp := floatLogits.ArgMaxRow(i)
		if fp == labels[i] {
			floatCorrect++
		}
		if intPred[i] == labels[i] {
			intCorrect++
		}
		if intPred[i] == fp {
			agree++
		}
	}
	fmt.Printf("\nfloat model accuracy : %.1f%%\n", 100*float64(floatCorrect)/float64(n))
	fmt.Printf("int8 engine accuracy : %.1f%%\n", 100*float64(intCorrect)/float64(n))
	fmt.Printf("prediction agreement : %.1f%%\n", 100*float64(agree)/float64(n))
}
